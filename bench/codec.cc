// Experiment E9 — wire-codec microbenchmarks (google-benchmark).
//
// The spec argues CBT-mode encapsulation is cheap ("decapsulation is
// relatively efficient", section 5); these benchmarks measure our
// implementation's per-packet costs: header encode/decode, checksum, and
// the full CBT-mode encapsulate/decapsulate round trip.
#include <benchmark/benchmark.h>

#include "common/checksum.h"
#include "packet/encap.h"

namespace {

using namespace cbt;          // NOLINT
using namespace cbt::packet;  // NOLINT

ControlPacket MakeJoin() {
  ControlPacket pkt;
  pkt.type = ControlType::kJoinRequest;
  pkt.code = static_cast<std::uint8_t>(JoinSubcode::kActiveJoin);
  pkt.group = Ipv4Address(239, 0, 0, 7);
  pkt.origin = Ipv4Address(10, 4, 0, 1);
  pkt.target_core = Ipv4Address(10, 99, 0, 1);
  pkt.cores = {Ipv4Address(10, 99, 0, 1), Ipv4Address(10, 98, 0, 1),
               Ipv4Address(10, 97, 0, 1)};
  return pkt;
}

void BM_ControlEncode(benchmark::State& state) {
  const ControlPacket pkt = MakeJoin();
  for (auto _ : state) {
    benchmark::DoNotOptimize(pkt.Encode());
  }
}
BENCHMARK(BM_ControlEncode);

void BM_ControlDecode(benchmark::State& state) {
  const auto bytes = MakeJoin().Encode();
  for (auto _ : state) {
    benchmark::DoNotOptimize(ControlPacket::Decode(bytes));
  }
}
BENCHMARK(BM_ControlDecode);

void BM_DataHeaderEncode(benchmark::State& state) {
  CbtDataHeader hdr;
  hdr.group = Ipv4Address(239, 1, 2, 3);
  hdr.core = Ipv4Address(10, 5, 0, 1);
  hdr.origin = Ipv4Address(10, 1, 0, 100);
  hdr.ip_ttl = 64;
  for (auto _ : state) {
    benchmark::DoNotOptimize(hdr.EncodeToBytes());
  }
}
BENCHMARK(BM_DataHeaderEncode);

void BM_DataHeaderDecode(benchmark::State& state) {
  CbtDataHeader hdr;
  hdr.group = Ipv4Address(239, 1, 2, 3);
  hdr.ip_ttl = 64;
  const auto bytes = hdr.EncodeToBytes();
  for (auto _ : state) {
    BufferReader reader(bytes);
    benchmark::DoNotOptimize(CbtDataHeader::Decode(reader));
  }
}
BENCHMARK(BM_DataHeaderDecode);

void BM_InternetChecksum(benchmark::State& state) {
  std::vector<std::uint8_t> data(static_cast<std::size_t>(state.range(0)));
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i * 31);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(InternetChecksum(data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_InternetChecksum)->Arg(28)->Arg(256)->Arg(1500);

void BM_CbtModeEncapsulate(benchmark::State& state) {
  const std::vector<std::uint8_t> payload(
      static_cast<std::size_t>(state.range(0)), 0xAB);
  const auto inner = BuildAppDatagram(Ipv4Address(10, 10, 0, 100),
                                      Ipv4Address(239, 1, 2, 3), payload);
  CbtDataHeader hdr;
  hdr.group = Ipv4Address(239, 1, 2, 3);
  hdr.core = Ipv4Address(10, 5, 0, 1);
  hdr.origin = Ipv4Address(10, 10, 0, 100);
  hdr.ip_ttl = 64;
  for (auto _ : state) {
    benchmark::DoNotOptimize(BuildCbtModeDatagram(
        Ipv4Address(10, 3, 0, 1), Ipv4Address(10, 4, 0, 1), hdr, inner));
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(inner.size()));
}
BENCHMARK(BM_CbtModeEncapsulate)->Arg(64)->Arg(512)->Arg(1400);

void BM_CbtModeDecapsulate(benchmark::State& state) {
  const std::vector<std::uint8_t> payload(
      static_cast<std::size_t>(state.range(0)), 0xAB);
  const auto inner = BuildAppDatagram(Ipv4Address(10, 10, 0, 100),
                                      Ipv4Address(239, 1, 2, 3), payload);
  CbtDataHeader hdr;
  hdr.group = Ipv4Address(239, 1, 2, 3);
  hdr.ip_ttl = 64;
  const auto bytes = BuildCbtModeDatagram(Ipv4Address(10, 3, 0, 1),
                                          Ipv4Address(10, 4, 0, 1), hdr,
                                          inner);
  for (auto _ : state) {
    const auto parsed = ParseDatagram(bytes);
    benchmark::DoNotOptimize(ExtractCbtModeData(*parsed));
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(bytes.size()));
}
BENCHMARK(BM_CbtModeDecapsulate)->Arg(64)->Arg(512)->Arg(1400);

void BM_TtlDecrement(benchmark::State& state) {
  const auto dgram = BuildAppDatagram(Ipv4Address(10, 10, 0, 100),
                                      Ipv4Address(239, 1, 2, 3),
                                      std::vector<std::uint8_t>(512, 1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(WithDecrementedTtl(dgram));
  }
}
BENCHMARK(BM_TtlDecrement);

void BM_IgmpCoreReportRoundTrip(benchmark::State& state) {
  IgmpMessage msg;
  msg.type = IgmpType::kRpCoreReport;
  msg.group = Ipv4Address(239, 1, 2, 3);
  msg.cores = {Ipv4Address(10, 99, 0, 1), Ipv4Address(10, 98, 0, 1)};
  for (auto _ : state) {
    const auto bytes = msg.Encode();
    benchmark::DoNotOptimize(IgmpMessage::Decode(bytes));
  }
}
BENCHMARK(BM_IgmpCoreReportRoundTrip);

}  // namespace
