// Experiment E9 — wire-codec microbenchmarks (google-benchmark engine,
// bench::Options dialect).
//
// The spec argues CBT-mode encapsulation is cheap ("decapsulation is
// relatively efficient", section 5); these benchmarks measure our
// implementation's per-packet costs: header encode/decode, checksum, and
// the full CBT-mode encapsulate/decapsulate round trip.
//
// The binary speaks the shared bench flag dialect (--smoke, --json/--out,
// --filter, ...) and writes the common BENCH_codec.json schema; google-
// benchmark stays the measurement engine underneath (its console output
// is unchanged, and its native flags are reachable via --filter /
// --smoke rather than exposed raw).
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "bench_util.h"
#include "common/checksum.h"
#include "packet/encap.h"

namespace {

using namespace cbt;          // NOLINT
using namespace cbt::packet;  // NOLINT

ControlPacket MakeJoin() {
  ControlPacket pkt;
  pkt.type = ControlType::kJoinRequest;
  pkt.code = static_cast<std::uint8_t>(JoinSubcode::kActiveJoin);
  pkt.group = Ipv4Address(239, 0, 0, 7);
  pkt.origin = Ipv4Address(10, 4, 0, 1);
  pkt.target_core = Ipv4Address(10, 99, 0, 1);
  pkt.cores = {Ipv4Address(10, 99, 0, 1), Ipv4Address(10, 98, 0, 1),
               Ipv4Address(10, 97, 0, 1)};
  return pkt;
}

void BM_ControlEncode(benchmark::State& state) {
  const ControlPacket pkt = MakeJoin();
  for (auto _ : state) {
    benchmark::DoNotOptimize(pkt.Encode());
  }
}
BENCHMARK(BM_ControlEncode);

void BM_ControlDecode(benchmark::State& state) {
  const auto bytes = MakeJoin().Encode();
  for (auto _ : state) {
    benchmark::DoNotOptimize(ControlPacket::Decode(bytes));
  }
}
BENCHMARK(BM_ControlDecode);

void BM_DataHeaderEncode(benchmark::State& state) {
  CbtDataHeader hdr;
  hdr.group = Ipv4Address(239, 1, 2, 3);
  hdr.core = Ipv4Address(10, 5, 0, 1);
  hdr.origin = Ipv4Address(10, 1, 0, 100);
  hdr.ip_ttl = 64;
  for (auto _ : state) {
    benchmark::DoNotOptimize(hdr.EncodeToBytes());
  }
}
BENCHMARK(BM_DataHeaderEncode);

void BM_DataHeaderDecode(benchmark::State& state) {
  CbtDataHeader hdr;
  hdr.group = Ipv4Address(239, 1, 2, 3);
  hdr.ip_ttl = 64;
  const auto bytes = hdr.EncodeToBytes();
  for (auto _ : state) {
    BufferReader reader(bytes);
    benchmark::DoNotOptimize(CbtDataHeader::Decode(reader));
  }
}
BENCHMARK(BM_DataHeaderDecode);

void BM_InternetChecksum(benchmark::State& state) {
  std::vector<std::uint8_t> data(static_cast<std::size_t>(state.range(0)));
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i * 31);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(InternetChecksum(data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_InternetChecksum)->Arg(28)->Arg(256)->Arg(1500);

void BM_CbtModeEncapsulate(benchmark::State& state) {
  const std::vector<std::uint8_t> payload(
      static_cast<std::size_t>(state.range(0)), 0xAB);
  const auto inner = BuildAppDatagram(Ipv4Address(10, 10, 0, 100),
                                      Ipv4Address(239, 1, 2, 3), payload);
  CbtDataHeader hdr;
  hdr.group = Ipv4Address(239, 1, 2, 3);
  hdr.core = Ipv4Address(10, 5, 0, 1);
  hdr.origin = Ipv4Address(10, 10, 0, 100);
  hdr.ip_ttl = 64;
  for (auto _ : state) {
    benchmark::DoNotOptimize(BuildCbtModeDatagram(
        Ipv4Address(10, 3, 0, 1), Ipv4Address(10, 4, 0, 1), hdr, inner));
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(inner.size()));
}
BENCHMARK(BM_CbtModeEncapsulate)->Arg(64)->Arg(512)->Arg(1400);

void BM_CbtModeDecapsulate(benchmark::State& state) {
  const std::vector<std::uint8_t> payload(
      static_cast<std::size_t>(state.range(0)), 0xAB);
  const auto inner = BuildAppDatagram(Ipv4Address(10, 10, 0, 100),
                                      Ipv4Address(239, 1, 2, 3), payload);
  CbtDataHeader hdr;
  hdr.group = Ipv4Address(239, 1, 2, 3);
  hdr.ip_ttl = 64;
  const auto bytes = BuildCbtModeDatagram(Ipv4Address(10, 3, 0, 1),
                                          Ipv4Address(10, 4, 0, 1), hdr,
                                          inner);
  for (auto _ : state) {
    const auto parsed = ParseDatagram(bytes);
    benchmark::DoNotOptimize(ExtractCbtModeData(*parsed));
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(bytes.size()));
}
BENCHMARK(BM_CbtModeDecapsulate)->Arg(64)->Arg(512)->Arg(1400);

void BM_TtlDecrement(benchmark::State& state) {
  const auto dgram = BuildAppDatagram(Ipv4Address(10, 10, 0, 100),
                                      Ipv4Address(239, 1, 2, 3),
                                      std::vector<std::uint8_t>(512, 1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(WithDecrementedTtl(dgram));
  }
}
BENCHMARK(BM_TtlDecrement);

void BM_IgmpCoreReportRoundTrip(benchmark::State& state) {
  IgmpMessage msg;
  msg.type = IgmpType::kRpCoreReport;
  msg.group = Ipv4Address(239, 1, 2, 3);
  msg.cores = {Ipv4Address(10, 99, 0, 1), Ipv4Address(10, 98, 0, 1)};
  for (auto _ : state) {
    const auto bytes = msg.Encode();
    benchmark::DoNotOptimize(IgmpMessage::Decode(bytes));
  }
}
BENCHMARK(BM_IgmpCoreReportRoundTrip);

/// Console reporter that also keeps every per-iteration run so main()
/// can emit the shared BENCH_*.json schema after the engine finishes.
class CollectingReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) collected.push_back(run);
    ConsoleReporter::ReportRuns(runs);
  }
  std::vector<Run> collected;
};

}  // namespace

int main(int argc, char** argv) {
  cbt::bench::Options opts("codec",
                           "E9: wire-codec microbenchmarks "
                           "(google-benchmark engine)");
  opts.json_path = "BENCH_codec.json";  // always reported
  opts.jobs = 1;  // timing microbench; google-benchmark runs serially
  std::string filter;
  opts.Str("filter", &filter, "run only benchmarks matching this regex");
  opts.Parse(argc, argv);

  // Re-assemble an argv for google-benchmark from the shared dialect:
  // --smoke shrinks min_time to a correctness-only pass, --filter maps
  // to --benchmark_filter.
  std::vector<std::string> engine_args = {argv[0]};
  if (opts.smoke) engine_args.push_back("--benchmark_min_time=0.01");
  if (!filter.empty()) {
    engine_args.push_back("--benchmark_filter=" + filter);
  }
  std::vector<char*> engine_argv;
  engine_argv.reserve(engine_args.size());
  for (std::string& arg : engine_args) engine_argv.push_back(arg.data());
  int engine_argc = static_cast<int>(engine_argv.size());
  benchmark::Initialize(&engine_argc, engine_argv.data());

  CollectingReporter reporter;
  const std::size_t ran = benchmark::RunSpecifiedBenchmarks(&reporter);

  if (!opts.json_path.empty()) {
    cbt::bench::JsonReporter report(opts.bench_name());
    report.Param("engine", "google-benchmark");
    report.Param("mode", opts.smoke ? "smoke" : "full");
    report.Param("benchmarks", static_cast<std::uint64_t>(ran));
    auto& real_series = report.AddSeries("real_time", "ns");
    auto& cpu_series = report.AddSeries("cpu_time", "ns");
    auto& iter_series = report.AddSeries("iterations", "iterations");
    auto& bytes_series = report.AddSeries("bytes_per_second", "B/s");
    for (const auto& run : reporter.collected) {
      if (run.run_type != benchmark::BenchmarkReporter::Run::RT_Iteration) {
        continue;
      }
      const std::string label = run.benchmark_name();
      real_series.Add(label, run.GetAdjustedRealTime());
      cpu_series.Add(label, run.GetAdjustedCPUTime());
      iter_series.Add(label, static_cast<std::uint64_t>(run.iterations));
      const auto bytes = run.counters.find("bytes_per_second");
      if (bytes != run.counters.end()) {
        bytes_series.Add(label, static_cast<double>(bytes->second));
      }
    }
    report.WriteFile(opts.json_path);
  }
  benchmark::Shutdown();
  return 0;
}
