// Churn scale — the aggregate host model vs the per-host reference
// under million-member membership churn (ISSUE 8 tentpole workload).
//
// Two sweeps share one binary:
//
//  * calibration — the identical churn schedule driven twice over a
//    small grid, once with one HostAgent per member (fresh host per
//    join, FIFO retirement per leave) and once with one
//    igmp::MembershipAggregate per LAN (kCoalesced). Same routers, same
//    groups, same seed; the wall-clock ratio and object-count ratio are
//    the measured cost of simulating hosts individually.
//
//  * scale — aggregate-only rows sweeping routers x members x churn
//    rate up to the 10k-router / 1M-member zipf workload that is
//    infeasible per-host. Members concentrate on --member-lans stub
//    LANs (zipf group popularity; Poisson arrivals; exponential
//    holding), with optional flash-crowd / leave-storm profiles.
//
// Each row reports membership-event totals, CBT + IGMP control cost,
// coalescing effectiveness, a final invariant audit, and the Cho &
// Breen-style tree-quality ratio (shared-tree links / mean per-source
// SPT links over the end-state member set, analysis::CompareTreeQuality).
//
// Determinism contract: stdout and the --json report are byte-identical
// for every --jobs and --shards value ONLY under --deterministic, which
// omits the wall-clock / RSS series (those legitimately vary run to
// run). Default runs additionally record per-row wall seconds, the
// calibration speedup, and bench::MemorySample series — peak RSS is
// process-wide, so the memory series are meaningful under --jobs 1,
// where rows run serially with the aggregate calibration row first.
#include <algorithm>
#include <array>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <deque>
#include <functional>
#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "analysis/invariant_auditor.h"
#include "analysis/table.h"
#include "analysis/tree_metrics.h"
#include "bench_util.h"
#include "cbt/churn.h"
#include "cbt/domain.h"
#include "exec/pdes/runtime.h"
#include "igmp/membership_aggregate.h"
#include "netsim/topologies.h"

namespace {

using namespace cbt;  // NOLINT

/// Group index -> multicast address (239.10.x.y).
Ipv4Address GroupAddress(std::uint32_t g) {
  return Ipv4Address(239, 10, static_cast<std::uint8_t>((g >> 8) & 0xff),
                     static_cast<std::uint8_t>(g & 0xff));
}

/// Soak-style timers so query/report machinery cycles several times
/// inside a short simulated window.
igmp::IgmpConfig ChurnIgmpConfig() {
  igmp::IgmpConfig config;
  config.query_interval = 15 * kSecond;
  config.query_response_interval = 4 * kSecond;
  return config;
}

struct RowSpec {
  std::string label;
  int side = 4;                    // grid side; side*side routers
  std::uint64_t members = 0;       // warm-start members
  double churn = 1.0;              // arrival-rate multiplier
  std::uint32_t member_lans = 0;   // 0 = every router LAN
  bool per_host = false;           // reference model instead of aggregate
  std::uint64_t seed = 1;
};

struct RowResult {
  std::string label;
  int routers = 0;
  std::uint32_t lans = 0;
  std::uint64_t schedule_events = 0;
  std::uint64_t joins = 0;
  std::uint64_t leaves = 0;
  std::uint64_t peak_members = 0;
  std::uint64_t final_members = 0;
  std::uint64_t control_messages = 0;  // CBT router control traffic
  std::uint64_t station_messages = 0;  // host-side IGMP (reports+leaves)
  std::uint64_t suppressed = 0;        // responses coalescing elided
  bool audit_clean = false;
  analysis::TreeQuality quality;
  int quality_groups = 0;          // groups large enough to measure
  std::uint64_t sim_nodes = 0;     // node objects at end (memory proxy)
  std::uint64_t data_sends = 0;         // --data-rate sender packets
  std::uint64_t data_forwarded = 0;     // router data_forwarded_tree total
  std::uint64_t data_delivered = 0;     // router data_delivered_lan total
  std::uint64_t cache_hits = 0;         // flow-cache hits across routers
  std::uint64_t cache_misses = 0;       // flow-cache cold misses
  std::uint64_t cache_invalidates = 0;  // generation-mismatch rebuilds
  double wall_s = 0;               // nondeterministic; kept off stdout
  bench::MemorySample memory;      // nondeterministic (RSS fields)
  std::string error;
};

/// Per-host reference driver: a fresh HostAgent per join (attachment
/// order == join order, matching the aggregate's slot order) and FIFO
/// retirement per leave — never pooled, never reused.
class PerHostDriver {
 public:
  PerHostDriver(core::CbtDomain& domain, const netsim::Topology& topo,
                const std::vector<std::uint32_t>& lans)
      : domain_(&domain), topo_(&topo), lans_(&lans) {}

  void Apply(const scenario::MembershipEvent& e) {
    const Ipv4Address group = GroupAddress(e.group);
    auto& fifo = fifos_[{e.lan, e.group}];
    if (e.join) {
      core::HostAgent& host = domain_->AddHost(
          topo_->router_lans[(*lans_)[e.lan]],
          "h" + std::to_string(next_host_++));
      host.JoinGroup(group);
      fifo.push_back(&host);
    } else if (!fifo.empty()) {
      fifo.front()->LeaveGroup(group);
      fifo.pop_front();
    }
  }

  std::uint64_t MemberCount(std::uint32_t lan, std::uint32_t group) const {
    const auto it = fifos_.find({lan, group});
    return it == fifos_.end() ? 0 : it->second.size();
  }

 private:
  core::CbtDomain* domain_;
  const netsim::Topology* topo_;
  const std::vector<std::uint32_t>* lans_;
  std::map<std::pair<std::uint32_t, std::uint32_t>, std::deque<core::HostAgent*>>
      fifos_;
  std::uint64_t next_host_ = 0;
};

RowResult RunRow(const RowSpec& spec, const scenario::ChurnParams& params,
                 int shards, int data_rate, core::DataplaneMode dataplane) {
  const auto wall_start = std::chrono::steady_clock::now();
  RowResult result;
  result.label = spec.label;

  // Destroyed after the domain: timer destructors must still route
  // through the installed PDES backend (same pattern as bench_chaos_soak).
  std::unique_ptr<exec::pdes::Runtime> pdes;

  netsim::Simulator sim(1);
  netsim::Topology topo = netsim::MakeGrid(sim, spec.side, spec.side);
  result.routers = spec.side * spec.side;

  core::CbtConfig cbt_config;
  cbt_config.dataplane = dataplane;
  core::CbtDomain domain(sim, topo, cbt_config, ChurnIgmpConfig());
  if (shards > 0) {
    pdes = std::make_unique<exec::pdes::Runtime>(sim, shards);
    pdes->Install();
    domain.ShardRoutes(pdes->region_count(),
                       [&pdes](NodeId id) { return pdes->RegionOf(id); });
  }

  // Members concentrate on a contiguous block of stub LANs; cores sit
  // inside the block so join paths stay local (the other routers still
  // run their full CBT/IGMP machinery, they just never host members).
  const std::uint32_t lan_count = static_cast<std::uint32_t>(
      std::min<std::size_t>(topo.router_lans.size(),
                            spec.member_lans == 0
                                ? topo.router_lans.size()
                                : spec.member_lans));
  result.lans = lan_count;
  std::vector<std::uint32_t> lans(lan_count);
  for (std::uint32_t i = 0; i < lan_count; ++i) lans[i] = i;

  std::vector<NodeId> cores;
  for (std::uint32_t g = 0; g < params.groups; ++g) {
    const std::uint32_t at = ((g + 1) * lan_count) / (params.groups + 1);
    const NodeId core = topo.routers[std::min(at, lan_count - 1)];
    cores.push_back(core);
    domain.RegisterGroup(GroupAddress(g), {core});
  }

  std::vector<igmp::MembershipAggregate*> stations;
  if (!spec.per_host) {
    stations.reserve(lan_count);
    for (std::uint32_t i = 0; i < lan_count; ++i) {
      stations.push_back(&domain.AddAggregate(
          topo.router_lans[i], "agg" + std::to_string(i),
          igmp::MembershipAggregate::Mode::kCoalesced));
    }
  }
  PerHostDriver per_host(domain, topo, lans);

  const scenario::ChurnSchedule schedule =
      scenario::ChurnSchedule::Generate(params, lan_count, spec.seed);
  result.schedule_events = schedule.events().size();
  result.joins = schedule.join_count();
  result.leaves = schedule.leave_count();
  result.peak_members = schedule.peak_members();

  scenario::ChurnRunner runner(
      sim, schedule, [&](const scenario::MembershipEvent& e) {
        if (spec.per_host) {
          per_host.Apply(e);
        } else if (e.join) {
          stations[e.lan]->Join(GroupAddress(e.group));
        } else {
          stations[e.lan]->Leave(GroupAddress(e.group));
        }
      });

  domain.Start();
  runner.Start();

  // Sustained sender traffic (--data-rate): one non-member host on the
  // last router LAN pumps each group at data_rate packets/sec, driving
  // the full data plane (DR relay toward the core, then tree fan-out
  // and member-LAN delivery) under the live churn workload.
  core::HostAgent* sender = nullptr;
  const SimDuration period =
      data_rate > 0 ? std::max<SimDuration>(1, kSecond / data_rate) : 0;
  std::function<void(std::uint32_t, std::uint32_t)> pump =
      [&](std::uint32_t g, std::uint32_t seq) {
        std::array<std::uint8_t, 8> payload{};
        payload[0] = static_cast<std::uint8_t>(g >> 8);
        payload[1] = static_cast<std::uint8_t>(g);
        payload[4] = static_cast<std::uint8_t>(seq >> 24);
        payload[5] = static_cast<std::uint8_t>(seq >> 16);
        payload[6] = static_cast<std::uint8_t>(seq >> 8);
        payload[7] = static_cast<std::uint8_t>(seq);
        sender->SendToGroup(GroupAddress(g), payload);
        ++result.data_sends;
        if (sim.Now() + period < params.duration) {
          sim.Schedule(period, [&pump, g, seq] { pump(g, seq + 1); });
        }
      };
  if (data_rate > 0) {
    sender = &domain.AddHost(topo.router_lans.back(), "datasrc");
    for (std::uint32_t g = 0; g < params.groups; ++g) {
      // Stagger streams across one period; start after trees warm up.
      sim.Schedule(10 * kSecond + (period * g) / params.groups,
                   [&pump, g] { pump(g, 0); });
    }
  }

  sim.RunUntil(params.duration);

  // Drain: let leave-triggered queries expire and the tree settle, then
  // demand a clean audit over whatever membership remains.
  result.audit_clean =
      analysis::RunUntilInvariantsHold(domain, sim.Now() + 60 * kSecond)
          .has_value();

  // End-state membership per (lan, group) feeds the tree-quality oracle.
  for (std::uint32_t g = 0; g < params.groups; ++g) {
    std::vector<NodeId> member_routers;
    for (std::uint32_t i = 0; i < lan_count; ++i) {
      const std::uint64_t count =
          spec.per_host ? per_host.MemberCount(i, g)
                        : stations[i]->MemberCount(GroupAddress(g));
      result.final_members += count;
      if (count > 0) member_routers.push_back(topo.routers[i]);
    }
    if (member_routers.size() < 2) continue;
    // Up to 3 senders spread evenly across the member list.
    const std::size_t sender_count =
        std::min<std::size_t>(3, member_routers.size());
    std::vector<NodeId> senders;
    for (std::size_t s = 0; s < sender_count; ++s) {
      senders.push_back(member_routers[s * (member_routers.size() - 1) /
                                       std::max<std::size_t>(1,
                                                             sender_count - 1)]);
    }
    const analysis::TreeQuality q = analysis::CompareTreeQuality(
        domain.routes(), cores[g], member_routers, senders);
    result.quality.shared_cost += q.shared_cost;
    result.quality.mean_source_cost += q.mean_source_cost;
    ++result.quality_groups;
  }
  if (result.quality.mean_source_cost > 0) {
    result.quality.cost_ratio =
        static_cast<double>(result.quality.shared_cost) /
        result.quality.mean_source_cost;
  }

  result.control_messages = domain.TotalControlMessages();
  for (const NodeId id : domain.router_ids()) {
    const core::RouterStats& rs = domain.router(id).stats();
    result.data_forwarded += rs.data_forwarded_tree;
    result.data_delivered += rs.data_delivered_lan;
    result.cache_hits += rs.dataplane_cache_hits;
    result.cache_misses += rs.dataplane_cache_misses;
    result.cache_invalidates += rs.dataplane_cache_invalidates;
  }
  for (igmp::MembershipAggregate* station : stations) {
    const auto& stats = station->stats();
    result.station_messages +=
        stats.reports_sent + stats.core_reports_sent + stats.leaves_sent;
    result.suppressed += stats.responses_suppressed;
  }
  result.sim_nodes = sim.node_count();
  result.memory = bench::SampleMemory(sim.packet_arena());
  result.wall_s = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - wall_start)
                      .count();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Options opts("churn_scale",
                      "aggregate host model vs per-host under heavy churn");
  opts.json_path = "BENCH_churn_scale.json";
  std::string profile = "zipf";
  int groups = 8;
  int duration_s = 120;
  int member_lans = 256;
  int routers = 0;          // >0: replace the scale sweep with one row
  std::uint64_t members = 0;  // with --routers: members for that row
  double churn = 1.0;
  int data_rate = 0;
  std::string dataplane_name = "fast";
  bool deterministic = false;
  bool skip_calibration = false;
  opts.Str("profile", &profile,
           "churn profile: zipf | flash (crowd joins) | storm (mass leave)");
  opts.Int("groups", &groups, "multicast groups (zipf-ranked)");
  opts.Int("duration", &duration_s, "simulated seconds per row");
  opts.Int("member-lans", &member_lans,
           "stub LANs hosting members per row (0 = every router LAN)");
  opts.Int("routers", &routers,
           "custom scale row: one ~N-router grid instead of the sweep");
  opts.U64("members", &members, "custom scale row: warm-start members");
  opts.Int("data-rate", &data_rate,
           "sender packets/sec per group pushed through the data plane "
           "while churn runs (0 = membership churn only)");
  opts.Str("dataplane", &dataplane_name,
           "forwarding path: fast (flow cache) | slow (per-packet oracle)");
  opts.Flag("deterministic", &deterministic,
            "omit wall-clock/RSS series so stdout AND --json are "
            "byte-identical across --jobs/--shards (differential mode)");
  opts.Flag("skip-calibration", &skip_calibration,
            "scale rows only (skip the per-host reference comparison)");
  opts.EnableShards();
  opts.Parse(argc, argv);
  if (groups < 1 || duration_s < 1) {
    std::cerr << "bench_churn_scale: --groups and --duration must be >= 1\n";
    return 2;
  }
  if (profile != "zipf" && profile != "flash" && profile != "storm") {
    std::cerr << "bench_churn_scale: unknown --profile '" << profile
              << "' (known: zipf flash storm)\n";
    return 2;
  }
  if (dataplane_name != "fast" && dataplane_name != "slow") {
    std::cerr << "bench_churn_scale: unknown --dataplane '" << dataplane_name
              << "' (known: fast slow)\n";
    return 2;
  }
  const core::DataplaneMode dataplane = dataplane_name == "slow"
                                            ? core::DataplaneMode::kSlow
                                            : core::DataplaneMode::kFast;
  if (opts.smoke) duration_s = std::min(duration_s, 60);
  const SimDuration duration = duration_s * kSecond;

  bench::TraceSession trace(opts.trace_path);

  // Row plan: calibration pair (aggregate first, so its RSS sample is
  // not polluted by the per-host allocations) then the scale rows.
  // --repeat replays the whole plan with seeds seed, seed+1, ...
  std::vector<RowSpec> specs;
  for (int rep = 0; rep < opts.repeat; ++rep) {
    const std::uint64_t seed = opts.seed + static_cast<std::uint64_t>(rep);
    const std::string tag = opts.repeat > 1 ? "/s" + std::to_string(seed) : "";
    if (!skip_calibration) {
      const std::uint64_t cal_members = opts.smoke ? 400 : 2000;
      specs.push_back({"cal-aggregate" + tag, 4, cal_members, 1.0, 0, false,
                       seed});
      specs.push_back({"cal-perhost" + tag, 4, cal_members, 1.0, 0, true,
                       seed});
    }
    const auto lans = static_cast<std::uint32_t>(std::max(0, member_lans));
    if (routers > 0) {
      const int side = std::max(
          2, static_cast<int>(
                 std::ceil(std::sqrt(static_cast<double>(routers)))));
      const std::uint64_t m = members > 0 ? members : 10000;
      specs.push_back({"scale-" + std::to_string(side * side) + "r" + tag,
                       side, m, churn, lans, false, seed});
    } else if (opts.smoke) {
      specs.push_back({"scale-64r-5k" + tag, 8, 5000, 1.0, 32, false, seed});
    } else {
      specs.push_back(
          {"scale-1024r-100k" + tag, 32, 100000, 1.0, lans, false, seed});
      specs.push_back(
          {"scale-1024r-100k-hot" + tag, 32, 100000, 4.0, lans, false, seed});
      specs.push_back(
          {"scale-10000r-1m" + tag, 100, 1000000, 1.0, lans, false, seed});
    }
  }

  const auto params_for = [&](const RowSpec& spec) {
    scenario::ChurnParams params;
    params.groups = static_cast<std::uint32_t>(groups);
    params.zipf_s = 1.0;
    params.initial_members = spec.members;
    params.mean_holding = 60 * kSecond;
    params.duration = duration;
    // Equilibrium arrival rate (members / mean holding) scaled by the
    // row's churn multiplier, so expected population stays ~flat.
    params.arrivals_per_second =
        spec.churn * static_cast<double>(spec.members) / 60.0;
    if (profile == "flash") {
      scenario::FlashCrowd flash;
      flash.at = duration / 2;
      flash.group = params.groups - 1;  // coldest group floods
      flash.members = std::max<std::uint64_t>(100, spec.members / 4);
      flash.window = 5 * kSecond;
      params.flashes.push_back(flash);
    } else if (profile == "storm") {
      scenario::LeaveStorm storm;
      storm.at = duration / 2;
      storm.group = 0;  // hottest group empties
      storm.fraction = 0.5;
      storm.window = 5 * kSecond;
      params.storms.push_back(storm);
    }
    return params;
  };

  exec::Pool pool(opts.jobs);
  bench::ExecReport exec_report(opts.bench_name());
  exec::SweepOptions sweep = bench::MakeSweepOptions(opts, trace);
  sweep.seeds.reserve(specs.size());
  for (const RowSpec& spec : specs) sweep.seeds.push_back(spec.seed);

  std::vector<RowResult> results;
  const exec::SweepTiming timing = exec::RunSweep(
      pool, specs.size(), sweep,
      [&](exec::RunContext& ctx) {
        const RowSpec& spec = specs[ctx.index];
        return RunRow(spec, params_for(spec), opts.shards, data_rate,
                      dataplane);
      },
      [&](exec::RunContext& ctx, RowResult result) {
        results.push_back(std::move(result));
        trace.Adopt(std::move(ctx.trace));
      });
  exec_report.Add("churn", timing);
  exec_report.WriteIfRequested(opts);

  analysis::Table rows({"row", "routers", "lans", "events", "joins", "leaves",
                        "peak", "final", "ctl msgs", "host msgs",
                        "suppressed", "nodes", "audit"});
  analysis::Table quality(
      {"row", "tree ratio", "shared links", "mean spt links", "groups"});
  analysis::Table data({"row", "sends", "fwd tree", "lan dlv", "cache hit",
                        "cache miss", "cache inval"});
  for (const RowResult& r : results) {
    rows.AddRow({r.label, analysis::Table::Num(r.routers),
                 analysis::Table::Num(r.lans),
                 analysis::Table::Num(r.schedule_events),
                 analysis::Table::Num(r.joins), analysis::Table::Num(r.leaves),
                 analysis::Table::Num(r.peak_members),
                 analysis::Table::Num(r.final_members),
                 analysis::Table::Num(r.control_messages),
                 analysis::Table::Num(r.station_messages),
                 analysis::Table::Num(r.suppressed),
                 analysis::Table::Num(r.sim_nodes),
                 r.audit_clean ? "clean" : "VIOLATIONS"});
    quality.AddRow({r.label, analysis::Table::Fixed(r.quality.cost_ratio, 3),
                    analysis::Table::Num(r.quality.shared_cost),
                    analysis::Table::Fixed(r.quality.mean_source_cost, 1),
                    analysis::Table::Num(r.quality_groups)});
    data.AddRow({r.label, analysis::Table::Num(r.data_sends),
                 analysis::Table::Num(r.data_forwarded),
                 analysis::Table::Num(r.data_delivered),
                 analysis::Table::Num(r.cache_hits),
                 analysis::Table::Num(r.cache_misses),
                 analysis::Table::Num(r.cache_invalidates)});
  }

  if (!opts.csv) {
    std::cout << "Churn scale: profile=" << profile << ", seed=" << opts.seed
              << ", " << duration_s << " s simulated per row, " << groups
              << " zipf-ranked groups\n\n";
  }
  bench::Emit(rows, opts.csv, "rows");
  if (!opts.csv) std::cout << "\n";
  bench::Emit(quality, opts.csv, "quality");
  // The data table exists only when traffic ran, so default stdout
  // stays byte-identical to churn-only runs.
  if (data_rate > 0) {
    if (!opts.csv) std::cout << "\n";
    bench::Emit(data, opts.csv, "data");
  }

  // Calibration summary (stderr + JSON: wall-clock is nondeterministic,
  // so it must stay off the byte-compared stdout).
  const RowResult* cal_agg = nullptr;
  const RowResult* cal_host = nullptr;
  for (const RowResult& r : results) {
    if (r.label.rfind("cal-aggregate", 0) == 0 && cal_agg == nullptr) {
      cal_agg = &r;
    }
    if (r.label.rfind("cal-perhost", 0) == 0 && cal_host == nullptr) {
      cal_host = &r;
    }
  }
  double speedup = 0;
  double node_reduction = 0;
  if (cal_agg != nullptr && cal_host != nullptr && cal_agg->wall_s > 0 &&
      cal_agg->sim_nodes > 0) {
    speedup = cal_host->wall_s / cal_agg->wall_s;
    node_reduction = static_cast<double>(cal_host->sim_nodes) /
                     static_cast<double>(cal_agg->sim_nodes);
    std::cerr << "calibration: per-host " << cal_host->wall_s
              << " s / aggregate " << cal_agg->wall_s << " s = " << speedup
              << "x speedup; " << cal_host->sim_nodes << " vs "
              << cal_agg->sim_nodes << " sim nodes (" << node_reduction
              << "x)\n";
  }

  if (!opts.json_path.empty()) {
    bench::JsonReporter report(opts.bench_name());
    report.Param("seed", opts.seed);
    report.Param("repeat", opts.repeat);
    report.Param("profile", profile);
    report.Param("groups", groups);
    report.Param("duration_s", duration_s);
    report.Param("member_lans", member_lans);
    report.Param("deterministic", deterministic);
    report.AddTable("rows", rows);
    report.AddTable("quality", quality);
    if (data_rate > 0) {
      report.Param("data_rate", data_rate);
      report.Param("dataplane", dataplane_name);
      report.AddTable("data", data);
    }
    if (node_reduction > 0) {
      report.Param("calibration_node_reduction", node_reduction);
    }
    for (const RowResult& r : results) {
      report.SeriesNamed("model.sim_nodes", "nodes")
          .Add(r.label, r.sim_nodes);
    }
    if (!deterministic) {
      if (speedup > 0) report.Param("calibration_speedup", speedup);
      if (cal_agg != nullptr && cal_host != nullptr &&
          cal_agg->memory.peak_rss_bytes > 0) {
        report.Param("calibration_peak_rss_ratio",
                     static_cast<double>(cal_host->memory.peak_rss_bytes) /
                         static_cast<double>(cal_agg->memory.peak_rss_bytes));
      }
      for (const RowResult& r : results) {
        report.SeriesNamed("perf.wall_seconds", "s").Add(r.label, r.wall_s);
        bench::ReportMemory(report, r.label, r.memory);
      }
    }
    report.WriteFile(opts.json_path);
  }

  for (const RowResult& r : results) {
    if (!r.audit_clean) {
      std::cerr << "bench_churn_scale: " << r.label
                << " ended with invariant violations\n";
      return 1;
    }
  }
  return 0;
}
