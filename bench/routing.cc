// Unicast-routing microbenchmark: lazy scoped invalidation vs. the eager
// full recompute, and the LPM index vs. the linear subnet scan.
//
// Three workloads on a square router grid (256 routers in full mode):
//  * cold — first-touch cost of computing every per-source table;
//  * post-flap — the reconvergence path chaos soaks hammer: flap a random
//    backbone link, then answer a bounded set of route queries. Eager
//    recomputes every table per epoch batch; lazy recomputes only dirty
//    tables that are actually queried, so the "tables recomputed per
//    flap" ratio is the headline number;
//  * lookup — steady-state Lookup() throughput with the sorted-prefix LPM
//    index + address cache against the historical per-call linear scan.
//
// Every workload folds its answers into a checksum and the post-flap /
// lookup runs are executed under both strategies with identical seeds, so
// the bench doubles as a lazy==eager / indexed==linear differential.
// Results go to stdout and BENCH_routing.json (--json / --out overrides;
// --smoke shrinks sizes for the CI correctness pass).
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/random.h"
#include "netsim/simulator.h"
#include "netsim/topologies.h"
#include "routing/route_manager.h"

namespace {

using namespace cbt;  // NOLINT
using routing::RouteManager;

const char* ModeName(RouteManager::Mode mode) {
  return mode == RouteManager::Mode::kLazy ? "lazy" : "eager";
}

/// One benched run: what it did, how long it took, and what it computed.
struct RunResult {
  std::string name;
  std::uint64_t ops = 0;              // queries issued
  std::uint64_t tables_computed = 0;  // Dijkstra runs during the timed phase
  std::uint64_t tables_kept_warm = 0;
  double seconds = 0;
  std::uint64_t checksum = 0;
};

std::uint64_t FoldRoute(std::uint64_t checksum,
                        const std::optional<routing::Route>& route) {
  if (!route) return checksum * 31 + 1;
  checksum = checksum * 31 + route->next_hop.bits();
  checksum = checksum * 31 + static_cast<std::uint64_t>(route->vif + 1);
  checksum = checksum * 31 + static_cast<std::uint64_t>(route->hop_count);
  return checksum;
}

/// Point-to-point grid links (excludes the per-router stub LANs, matching
/// the chaos soak's flappable set).
std::vector<SubnetId> BackboneSubnets(const netsim::Simulator& sim,
                                      const netsim::Topology& topo) {
  std::vector<SubnetId> backbone;
  for (std::size_t s = 0; s < sim.subnet_count(); ++s) {
    const SubnetId sid(static_cast<std::int32_t>(s));
    if (std::find(topo.router_lans.begin(), topo.router_lans.end(), sid) ==
        topo.router_lans.end()) {
      backbone.push_back(sid);
    }
  }
  return backbone;
}

RunResult RunCold(RouteManager::Mode mode, int side) {
  netsim::Simulator sim(1);
  const netsim::Topology topo = netsim::MakeGrid(sim, side, side);
  RouteManager routes(sim, mode);

  RunResult r;
  r.name = std::string("cold_") + ModeName(mode);
  const auto start = std::chrono::steady_clock::now();
  for (const NodeId router : topo.routers) {
    r.checksum = r.checksum * 31 +
                 static_cast<std::uint64_t>(
                     routes.Distance(router, topo.routers.front()) + 0.5);
    ++r.ops;
  }
  const auto stop = std::chrono::steady_clock::now();
  r.seconds = std::chrono::duration<double>(stop - start).count();
  r.tables_computed = routes.stats().tables_computed;
  return r;
}

/// Flap random backbone links; after each half-flap (down, then up) issue
/// `queried` route queries from random sources. This is the access pattern
/// of CBT rejoin/reconvergence: a bounded set of routers consults routing
/// right after a change.
RunResult RunPostFlap(RouteManager::Mode mode, int side, int flaps,
                      int queried) {
  netsim::Simulator sim(1);
  const netsim::Topology topo = netsim::MakeGrid(sim, side, side);
  RouteManager routes(sim, mode);
  const std::vector<SubnetId> backbone = BackboneSubnets(sim, topo);
  const std::size_t n = topo.routers.size();

  // Warm every table so the timed phase measures reconvergence, not
  // first-touch computation.
  for (const NodeId router : topo.routers) {
    routes.Distance(router, topo.routers.front());
  }
  routes.ResetStats();

  RunResult r;
  r.name = std::string("post_flap_") + ModeName(mode);
  Rng rng(99);  // identical query/flap schedule across modes
  const auto start = std::chrono::steady_clock::now();
  for (int f = 0; f < flaps; ++f) {
    const SubnetId victim = backbone[rng.NextBelow(backbone.size())];
    for (const bool up : {false, true}) {
      sim.SetSubnetUp(victim, up);
      for (int q = 0; q < queried; ++q) {
        const NodeId from = topo.routers[rng.NextBelow(n)];
        const Ipv4Address dest =
            sim.PrimaryAddress(topo.routers[rng.NextBelow(n)]);
        r.checksum = FoldRoute(r.checksum, routes.Lookup(from, dest));
        ++r.ops;
      }
    }
  }
  const auto stop = std::chrono::steady_clock::now();
  r.seconds = std::chrono::duration<double>(stop - start).count();
  r.tables_computed = routes.stats().tables_computed;
  r.tables_kept_warm = routes.stats().tables_kept_warm;
  return r;
}

RunResult RunLookup(RouteManager::LpmMode lpm, int side, std::uint64_t ops) {
  netsim::Simulator sim(1);
  const netsim::Topology topo = netsim::MakeGrid(sim, side, side);
  RouteManager routes(sim);
  routes.set_lpm_mode(lpm);
  const std::size_t n = topo.routers.size();

  std::vector<Ipv4Address> dests;
  dests.reserve(n);
  for (const NodeId router : topo.routers) {
    dests.push_back(sim.PrimaryAddress(router));
  }
  for (const NodeId router : topo.routers) {
    routes.Distance(router, topo.routers.front());  // warm tables
  }

  RunResult r;
  r.name = lpm == RouteManager::LpmMode::kIndexed ? "lookup_indexed"
                                                  : "lookup_linear";
  const auto start = std::chrono::steady_clock::now();
  for (std::uint64_t op = 0; op < ops; ++op) {
    const NodeId from = topo.routers[op % n];
    const Ipv4Address dest = dests[(op * 7) % n];
    r.checksum = FoldRoute(r.checksum, routes.Lookup(from, dest));
  }
  const auto stop = std::chrono::steady_clock::now();
  r.ops = ops;
  r.seconds = std::chrono::duration<double>(stop - start).count();
  return r;
}

void PrintRow(const RunResult& r) {
  std::cout << "  " << r.name << ": " << r.ops << " queries in " << r.seconds
            << " s";
  if (r.tables_computed > 0 || r.tables_kept_warm > 0) {
    std::cout << ", " << r.tables_computed << " tables computed, "
              << r.tables_kept_warm << " kept warm";
  }
  std::cout << " (checksum " << r.checksum << ")\n";
}

}  // namespace

int main(int argc, char** argv) {
  bench::Options opts("routing",
                      "routing microbench: lazy invalidation + LPM index");
  opts.json_path = "BENCH_routing.json";  // always reported
  // Timing microbench: parallel replicas would contend for cores and
  // distort the lazy-vs-eager wall-clock comparison, so the default is
  // the serial path; --jobs N opts in (the checksums stay identical).
  opts.jobs = 1;
  opts.Parse(argc, argv);
  bench::TraceSession trace(opts.trace_path);
  exec::Pool pool(opts.jobs);
  bench::ExecReport exec_report(opts.bench_name());
  const bool smoke = opts.smoke;

  // Full mode: a 16x16 grid = 256 routers, the ISSUE's scaling floor.
  const int side = smoke ? 8 : 16;
  const int flaps = smoke ? 6 : 40;
  const int queried = 16;
  const std::uint64_t lookups = smoke ? 50'000 : 2'000'000;

  std::cout << "Routing bench (" << (smoke ? "smoke" : "full") << "): "
            << side * side << " routers, " << flaps << " flaps x " << queried
            << " queries, " << lookups << " lookups\n";

  // The six workloads are independent replicas (each builds its own
  // simulator + grid); the reducer stores them back into the named
  // slots the report expects.
  std::vector<RunResult> runs(6);
  exec_report.Add(
      "workloads",
      exec::RunSweep(
          pool, runs.size(), bench::MakeSweepOptions(opts, trace),
          [&](exec::RunContext& ctx) -> RunResult {
            switch (ctx.index) {
              case 0: return RunCold(RouteManager::Mode::kLazy, side);
              case 1: return RunCold(RouteManager::Mode::kEager, side);
              case 2:
                return RunPostFlap(RouteManager::Mode::kLazy, side, flaps,
                                   queried);
              case 3:
                return RunPostFlap(RouteManager::Mode::kEager, side, flaps,
                                   queried);
              case 4:
                return RunLookup(RouteManager::LpmMode::kIndexed, side,
                                 lookups);
              default:
                return RunLookup(RouteManager::LpmMode::kLinearScan, side,
                                 lookups);
            }
          },
          [&](exec::RunContext& ctx, RunResult r) {
            runs[ctx.index] = std::move(r);
            trace.Adopt(std::move(ctx.trace));
          }));
  const RunResult& cold_lazy = runs[0];
  const RunResult& cold_eager = runs[1];
  const RunResult& flap_lazy = runs[2];
  const RunResult& flap_eager = runs[3];
  const RunResult& look_idx = runs[4];
  const RunResult& look_lin = runs[5];

  for (const RunResult& r :
       {cold_lazy, cold_eager, flap_lazy, flap_eager, look_idx, look_lin}) {
    PrintRow(r);
  }

  bool deterministic = true;
  for (const auto& [a, b] : {std::pair{&cold_lazy, &cold_eager},
                             {&flap_lazy, &flap_eager},
                             {&look_idx, &look_lin}}) {
    if (a->checksum != b->checksum) {
      deterministic = false;
      std::cout << "DIFFERENTIAL MISMATCH: " << a->name << " vs " << b->name
                << "\n";
    }
  }

  const double lazy_tables_per_flap =
      static_cast<double>(flap_lazy.tables_computed) / flaps;
  const double eager_tables_per_flap =
      static_cast<double>(flap_eager.tables_computed) / flaps;
  const double work_reduction =
      lazy_tables_per_flap > 0 ? eager_tables_per_flap / lazy_tables_per_flap
                               : 0;
  const double flap_speedup = flap_eager.seconds / flap_lazy.seconds;
  const double lookup_speedup = look_lin.seconds / look_idx.seconds;
  std::cout << "  post-flap tables/flap: eager " << eager_tables_per_flap
            << " vs lazy " << lazy_tables_per_flap << " => "
            << work_reduction << "x less work, " << flap_speedup
            << "x wall time\n"
            << "  lookup speedup (LPM vs linear scan): " << lookup_speedup
            << "x\n";

  bench::JsonReporter report(opts.bench_name());
  report.Param("mode", smoke ? "smoke" : "full");
  report.Param("routers", side * side);
  report.Param("deterministic", deterministic);
  auto& ops_series = report.AddSeries("ops", "queries");
  auto& secs_series = report.AddSeries("seconds", "s");
  auto& computed_series = report.AddSeries("tables_computed", "tables");
  auto& warm_series = report.AddSeries("tables_kept_warm", "tables");
  const RunResult* all[] = {&cold_lazy, &cold_eager, &flap_lazy,
                            &flap_eager, &look_idx,  &look_lin};
  for (const RunResult* r : all) {
    ops_series.Add(r->name, r->ops);
    secs_series.Add(r->name, r->seconds);
    computed_series.Add(r->name, r->tables_computed);
    warm_series.Add(r->name, r->tables_kept_warm);
  }
  auto& headline = report.AddSeries("headline", "x");
  headline.Add("post_flap_work_reduction", work_reduction);
  headline.Add("post_flap_time_speedup", flap_speedup);
  headline.Add("lookup_speedup", lookup_speedup);
  auto& per_flap = report.AddSeries("tables_per_flap", "tables");
  per_flap.Add("eager", eager_tables_per_flap);
  per_flap.Add("lazy", lazy_tables_per_flap);
  report.WriteFile(opts.json_path);
  exec_report.WriteIfRequested(opts);

  return deterministic ? 0 : 1;
}
