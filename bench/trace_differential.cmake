# Tracing-on vs tracing-off differential (ctest, label bench-smoke).
#
# The obs determinism contract: enabling tracing at any level must leave
# bench stdout byte-identical — tracing is record-only. This script runs
# bench_chaos_soak over two seeds and bench_join_latency with and
# without --trace, compares stdout byte-for-byte, and sanity-checks that
# one exported file is Chrome trace_event JSON.
#
# Invoked as:
#   cmake -DCHAOS_SOAK=<path> -DJOIN_LATENCY=<path> -DWORK_DIR=<dir>
#         -P trace_differential.cmake

foreach(var CHAOS_SOAK JOIN_LATENCY WORK_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "missing -D${var}=")
  endif()
endforeach()
file(MAKE_DIRECTORY "${WORK_DIR}")

function(run_and_capture out_var exit_var)
  execute_process(
    COMMAND ${ARGN}
    OUTPUT_VARIABLE stdout
    ERROR_VARIABLE stderr  # discarded: trace/json status goes to stderr
    RESULT_VARIABLE code)
  set(${out_var} "${stdout}" PARENT_SCOPE)
  set(${exit_var} "${code}" PARENT_SCOPE)
endfunction()

# --- chaos soak, two seeds, small scaling-mode run ---------------------
foreach(seed 1 2)
  set(flags --seed ${seed} --events 6 --routers 9 --csv)
  run_and_capture(plain_out plain_code ${CHAOS_SOAK} ${flags})
  set(trace_file "${WORK_DIR}/chaos_soak_seed${seed}.trace.json")
  run_and_capture(traced_out traced_code
    ${CHAOS_SOAK} ${flags} --trace ${trace_file})
  if(NOT plain_code STREQUAL traced_code)
    message(FATAL_ERROR
      "chaos_soak seed ${seed}: exit ${plain_code} (plain) vs "
      "${traced_code} (traced)")
  endif()
  if(NOT plain_out STREQUAL traced_out)
    file(WRITE "${WORK_DIR}/chaos_soak_seed${seed}.plain.txt" "${plain_out}")
    file(WRITE "${WORK_DIR}/chaos_soak_seed${seed}.traced.txt" "${traced_out}")
    message(FATAL_ERROR
      "chaos_soak seed ${seed}: stdout differs with tracing enabled "
      "(dumps in ${WORK_DIR})")
  endif()
  message(STATUS "chaos_soak seed ${seed}: traced stdout byte-identical")
endforeach()

# --- join latency ------------------------------------------------------
run_and_capture(jl_plain jl_plain_code ${JOIN_LATENCY})
set(jl_trace_file "${WORK_DIR}/join_latency.trace.json")
run_and_capture(jl_traced jl_traced_code
  ${JOIN_LATENCY} --trace ${jl_trace_file})
if(NOT jl_plain STREQUAL jl_traced)
  message(FATAL_ERROR "join_latency: stdout differs with tracing enabled")
endif()
message(STATUS "join_latency: traced stdout byte-identical")

# --- exported trace sanity --------------------------------------------
if(NOT EXISTS "${jl_trace_file}")
  message(FATAL_ERROR "join_latency --trace wrote no file")
endif()
file(READ "${jl_trace_file}" trace_json)
if(NOT trace_json MATCHES "\"traceEvents\"")
  message(FATAL_ERROR "${jl_trace_file} is not Chrome trace_event JSON")
endif()
string(LENGTH "${trace_json}" trace_len)
message(STATUS "join_latency trace: valid Chrome trace, ${trace_len} bytes")
