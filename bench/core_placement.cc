// Experiment E11 — multi-core placement quality and live core migration.
//
// Sweeps every registry strategy (cbt/core_selection.h) across k = 1, 2,
// 4 active cores on a Waxman internet and scores the resulting k-rooted
// forest (analysis::BuildMultiCoreTree) on the axes the multi-core
// literature argues about:
//
//   * delay ratio   — member-pair tree delay / unicast delay (E3's
//                     penalty metric, here per (strategy, k));
//   * delay variation — the spread (max - min) of serving-core ->
//                     member delivery delays, the constraint arXiv
//                     1303.4771's VNS placement bounds and arXiv
//                     1606.04928's locality clustering collapses by
//                     keeping every receiver near its assigned core;
//   * traffic concentration — peak per-link load when every member
//                     multicasts once (E4's metric);
//   * tree cost     — links in the forest.
//
// Then, per strategy, a live-simulation leg measures hitless migration:
// a running group (members joined, invariants clean) is re-homed onto a
// fresh core by analysis::CoreMigrator and the report's join->drain
// duration is the recovery time.
//
// Expected shape: at k=4 the partitioning strategies (locality, vns)
// beat every single-core placement on max delay variation — members sit
// close to their assigned core, so the spread collapses — while paying
// a modest tree-cost premium for the extra anchors. Random placement is
// the outlier on every axis.
#include <algorithm>
#include <iostream>
#include <string>
#include <vector>

#include "analysis/invariant_auditor.h"
#include "analysis/migration.h"
#include "analysis/table.h"
#include "analysis/tree_metrics.h"
#include "bench_util.h"
#include "cbt/core_selection.h"
#include "cbt/domain.h"
#include "netsim/topologies.h"
#include "routing/route_manager.h"

namespace {

using namespace cbt;  // NOLINT

constexpr Ipv4Address kGroup(239, 11, 0, 1);

/// Multicast delay variation of the forest: the spread between the
/// largest and smallest serving-core -> member delivery delay along the
/// tree. This is the variation the delay-variation-constrained placement
/// literature bounds (arXiv 1303.4771's delta: receivers should hear the
/// core at similar times); a k-core partition collapses it by hanging
/// every receiver from a nearby anchor, while one distant core spreads
/// deliveries across the whole graph diameter. A single far-flung
/// receiver is exactly what the metric must expose, so no averaging.
SimDuration MaxDelayVariation(const analysis::Tree& tree,
                              const core_selection::Placement& placement,
                              const std::vector<NodeId>& members) {
  SimDuration lo = 0, hi = 0;
  bool any = false;
  for (std::size_t m = 0; m < members.size(); ++m) {
    std::size_t idx = m < placement.assignment.size()
                          ? placement.assignment[m]
                          : 0;
    if (idx >= placement.cores.size()) idx = 0;
    const NodeId core = placement.cores[idx];
    if (!tree.Contains(members[m]) || !tree.Contains(core)) continue;
    const SimDuration d = tree.DelayBetween(core, members[m]);
    if (!any) {
      lo = hi = d;
      any = true;
    } else {
      lo = std::min(lo, d);
      hi = std::max(hi, d);
    }
  }
  return any ? hi - lo : 0;
}

int PeakLinkLoad(routing::RouteManager& routes, const analysis::Tree& tree,
                 const std::vector<NodeId>& members) {
  int peak = 0;
  for (const auto& [link, load] :
       analysis::SharedTreeLinkLoad(routes, tree, members)) {
    peak = std::max(peak, load);
  }
  return peak;
}

}  // namespace

int main(int argc, char** argv) {
  cbt::bench::Options opts(
      "core_placement",
      "E11: multi-core placement quality and live core migration");
  opts.EnablePlacement();
  opts.Parse(argc, argv);
  cbt::bench::TraceSession trace(opts.trace_path);
  cbt::exec::Pool pool(opts.jobs);
  cbt::bench::ExecReport exec_report(opts.bench_name());
  const bool csv = opts.csv;

  const int routers = opts.smoke ? 64 : 256;
  const int members_n = opts.smoke ? 12 : 24;
  const int live_routers = opts.smoke ? 24 : 48;
  const int live_members = opts.smoke ? 4 : 8;
  const std::vector<std::size_t> ks = {1, 2, 4};

  std::vector<std::string> strategies;
  for (const std::string_view name : core_selection::StrategyNames()) {
    if (opts.placement.empty() || opts.placement == name) {
      strategies.emplace_back(name);
    }
  }
  if (strategies.empty()) {
    std::cerr << "bench_core_placement: unknown --placement '"
              << opts.placement << "'\n";
    return 2;
  }

  analysis::Table first_forest({""});
  analysis::Table first_migration({""});
  const int rc = cbt::bench::RunRepeated(
      pool, opts, trace, exec_report, [&](cbt::exec::RunContext& ctx) -> int {
        std::ostream& out = ctx.out;
        out << "E11: multi-core placement — Waxman n=" << routers << ", "
            << members_n << " members, k in {1,2,4}, seed " << ctx.seed
            << "\n(variation = max - min serving-core->member delay; "
               "concentration = peak link load, one packet per member)\n\n";

        // ---- (a) Forest quality off the graph oracles ----------------
        netsim::Simulator sim(1);
        netsim::WaxmanParams params;
        params.n = routers;
        params.seed = 500 + ctx.seed;
        netsim::Topology topo = netsim::MakeWaxman(sim, params);
        routing::RouteManager routes(sim);
        Rng rng(41 * ctx.seed + 3);

        std::vector<NodeId> member_routers;
        for (const std::size_t idx : rng.SampleWithoutReplacement(
                 topo.routers.size(), (std::size_t)members_n)) {
          member_routers.push_back(topo.routers[idx]);
        }

        core_selection::PlacementInput in;
        in.sim = &sim;
        in.routes = &routes;
        in.routers = topo.routers;
        in.member_routers = member_routers;
        in.group = kGroup;
        in.rng = &rng;

        analysis::Table forest({"placement", "k", "mean ratio", "max ratio",
                                "variation (ms)", "peak link load",
                                "tree cost"});
        for (const std::string& name : strategies) {
          const auto strategy = core_selection::MakeStrategy(name);
          for (const std::size_t k : ks) {
            const core_selection::Placement placement =
                strategy->Place(in, k);
            const analysis::Tree tree = analysis::BuildMultiCoreTree(
                routes, placement.cores, member_routers,
                placement.assignment);
            const analysis::DelayRatio ratio =
                analysis::SharedTreeDelayRatio(routes, tree, member_routers);
            const SimDuration variation =
                MaxDelayVariation(tree, placement, member_routers);
            forest.AddRow(
                {name, analysis::Table::Num(k),
                 analysis::Table::Fixed(ratio.mean_ratio),
                 analysis::Table::Fixed(ratio.max_ratio),
                 analysis::Table::Fixed((double)variation / kMillisecond, 2),
                 analysis::Table::Num(
                     PeakLinkLoad(routes, tree, member_routers)),
                 analysis::Table::Num(tree.Cost())});
          }
        }
        cbt::bench::Emit(forest, csv, "E11 forest quality", out);

        // ---- (b) Live migration recovery per strategy ----------------
        // A real CbtDomain per strategy: members join the strategy's k=2
        // placement, then CoreMigrator re-homes the group onto the
        // delay-centre pick among the remaining routers. Recovery =
        // join-new -> drained, as reported by the migrator.
        out << "\nlive migration — Waxman n=" << live_routers << ", "
            << live_members
            << " members, k=2 placement re-homed onto a fresh core\n\n";
        analysis::Table migration(
            {"placement", "recovery (s)", "hitless", "audit-clean"});
        bool all_hitless = true;
        for (const std::string& name : strategies) {
          netsim::Simulator live_sim(2);
          netsim::WaxmanParams live_params;
          live_params.n = live_routers;
          live_params.seed = 900 + ctx.seed;
          netsim::Topology live_topo = netsim::MakeWaxman(live_sim, live_params);
          core::CbtDomain domain(live_sim, live_topo);
          Rng live_rng(7 * ctx.seed + 11);

          std::vector<NodeId> live_member_routers;
          std::vector<SubnetId> live_lans;
          for (const std::size_t idx : live_rng.SampleWithoutReplacement(
                   live_topo.routers.size(), (std::size_t)live_members)) {
            live_member_routers.push_back(live_topo.routers[idx]);
            live_lans.push_back(live_topo.router_lans[idx]);
          }

          core_selection::PlacementInput live_in;
          live_in.sim = &live_sim;
          live_in.routes = &domain.routes();
          live_in.routers = live_topo.routers;
          live_in.member_routers = live_member_routers;
          live_in.group = kGroup;
          live_in.rng = &live_rng;
          const core_selection::Placement placement =
              core_selection::MakeStrategy(name)->Place(live_in, 2);
          domain.RegisterGroup(kGroup, placement, live_lans);
          domain.Start();
          live_sim.RunUntil(kSecond);
          for (std::size_t i = 0; i < live_lans.size(); ++i) {
            domain.AddHost(live_lans[i], "m" + std::to_string(i))
                .JoinGroup(kGroup);
          }
          live_sim.RunUntil(live_sim.Now() + 30 * kSecond);

          // The new core: best delay-centre site outside the old set.
          std::vector<NodeId> candidates;
          for (const NodeId r : live_topo.routers) {
            if (std::find(placement.cores.begin(), placement.cores.end(),
                          r) == placement.cores.end()) {
              candidates.push_back(r);
            }
          }
          core_selection::PlacementInput target_in = live_in;
          target_in.routers = candidates;
          const NodeId new_core = core_selection::MakeStrategy("delay-centre")
                                      ->Place(target_in, 1)
                                      .cores.front();

          analysis::CoreMigrator migrator(domain);
          const analysis::CoreMigrator::Report report =
              migrator.Migrate(kGroup, {new_core});
          const bool clean =
              analysis::InvariantAuditor(domain).Audit().Clean();
          all_hitless = all_hitless && report.ok && clean;
          migration.AddRow(
              {name,
               report.ok
                   ? analysis::Table::Fixed(
                         (double)report.Duration() / kSecond, 2)
                   : "-",
               analysis::Table::Num(report.ok ? 1 : 0),
               analysis::Table::Num(clean ? 1 : 0)});
        }
        cbt::bench::Emit(migration, csv, "E11 migration recovery", out);
        out << "\nExpected shape: locality/vns at k=4 post the lowest "
               "delay variation (each receiver hangs from a nearby "
               "core); single-core placements trade variation for tree "
               "cost; migration recovery is seconds — one join "
               "round-trip plus the management drain — and hitless for "
               "every placement.\n";

        if (ctx.index == 0) {
          first_forest = forest;
          first_migration = migration;
        }
        // A not-hitless migration (or dirty post-drain audit) is a
        // defect, not a data point: fail the run so CI sees it.
        return all_hitless ? 0 : 3;
      });

  if (!opts.json_path.empty()) {
    cbt::bench::JsonReporter report(opts.bench_name());
    report.Param("routers", routers);
    report.Param("members", members_n);
    report.Param("live_routers", live_routers);
    report.Param("live_members", live_members);
    report.Param("smoke", opts.smoke);
    report.Param("placement", opts.placement.empty() ? "all" : opts.placement);
    // Forest rows are keyed "strategy/k" so the JSON is self-labelling.
    analysis::Table keyed({"placement", "mean ratio", "max ratio",
                           "variation_ms", "peak_link_load", "tree_cost"});
    for (const auto& row : first_forest.rows()) {
      if (row.size() < 7) continue;
      keyed.AddRow({row[0] + "/k" + row[1], row[2], row[3], row[4], row[5],
                    row[6]});
    }
    report.AddTable("forest", keyed);
    report.AddTable("migration", first_migration);
    report.WriteFile(opts.json_path);
  }
  exec_report.WriteIfRequested(opts);
  return rc;
}
