// Chaos soak — long randomized fault schedules vs. the tree invariants.
//
// For each topology in the sweep, build one group with two cores and a
// handful of member LANs, arm a seeded ChaosPlan (link flaps, router
// crash+restart with full CBT state loss, partitions) and drive steady
// data traffic throughout. After every fault's repair, the invariant
// auditor polls until the whole domain is structurally consistent again;
// the per-class recovery-time distribution (fault injection -> first
// clean audit) plus delivery/overhead totals make up the report.
//
// Everything is seeded: the same `--seed` reproduces the identical plan
// and a byte-identical report. `--events N` scales the schedule length,
// `--plan` dumps the schedule, `--csv` switches to CSV. `--routers N`
// replaces the default three-topology sweep with one ceil(sqrt(N))^2
// grid — the scaling mode used to size the event engine —
// `--engine wheel|legacy` selects the event engine under test,
// `--routing lazy|eager` selects the unicast-routing recompute strategy
// (the eager fallback exists for the routing differential cross-check),
// and `--dataplane fast|slow` selects the forwarding path (the slow
// per-packet recompute survives as the fast path's differential oracle).
#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "analysis/invariant_auditor.h"
#include "analysis/table.h"
#include "bench_util.h"
#include "cbt/domain.h"
#include "exec/pdes/runtime.h"
#include "check/cbt_expectations.h"
#include "check/expectation.h"
#include "check/trace_view.h"
#include "netsim/chaos.h"
#include "netsim/event_queue.h"
#include "netsim/topologies.h"

namespace {

using namespace cbt;  // NOLINT

constexpr Ipv4Address kGroup(239, 9, 9, 9);
/// Give up polling a recovery this long after the fault is repaired.
constexpr SimDuration kRecoveryCap = 240 * kSecond;
constexpr SimDuration kSendPeriod = 2 * kSecond;

/// Timers tightened uniformly (spec section 9 notes they are per-
/// implementation) so hundreds of fault/repair cycles fit in a soak.
core::CbtConfig SoakCbtConfig() {
  core::CbtConfig config;
  config.echo_interval = 5 * kSecond;
  config.echo_timeout = 15 * kSecond;
  config.pend_join_interval = 2 * kSecond;
  config.pend_join_timeout = 8 * kSecond;
  config.expire_pending_join = 30 * kSecond;
  config.child_assert_interval = 10 * kSecond;
  config.child_assert_expire = 25 * kSecond;
  config.iff_scan_interval = 60 * kSecond;
  config.reconnect_timeout = 30 * kSecond;
  config.proxy_refresh_interval = 20 * kSecond;
  return config;
}

igmp::IgmpConfig SoakIgmpConfig() {
  igmp::IgmpConfig config;
  config.query_interval = 15 * kSecond;
  config.query_response_interval = 4 * kSecond;
  return config;
}

struct ClassStats {
  std::vector<double> recovery_s;  // fault injection -> first clean audit
  int stuck = 0;                   // never clean before cap / next fault
};

struct SoakResult {
  std::string topology;
  std::map<netsim::ChaosEventType, ClassStats> by_class;
  std::uint64_t sends = 0;
  std::uint64_t expected = 0;
  std::uint64_t delivered = 0;
  std::uint64_t control_messages = 0;
  std::uint64_t malformed = 0;
  bool final_clean = false;
  double final_clean_at_s = -1;
  /// --check: the causal-path expectation report over this replica's
  /// trace ring (empty when checking is off or the replica has no ring).
  check::CheckReport check_report;
  bool check_ran = false;
  /// Nonempty => the run aborted (warmup never converged). Replica jobs
  /// must not std::exit() from a worker thread, so the error rides back
  /// to main() in the result.
  std::string error;
};

double Percentile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const auto idx = static_cast<std::size_t>(
      q * static_cast<double>(values.size() - 1) + 0.5);
  return values[idx];
}

struct MemberPlan {
  std::vector<std::size_t> member_lans;  // member_lans[0] hosts the sender
  std::vector<NodeId> cores;             // primary first
};

SoakResult RunSoak(const std::string& name, netsim::Simulator& sim,
                   netsim::Topology& topo, const MemberPlan& members,
                   std::uint64_t seed, int event_count, bool dump_plan,
                   routing::RouteManager::Mode routing_mode,
                   core::ProtocolMutation mutation,
                   core::DataplaneMode dataplane, bool run_check,
                   int shards, std::ostream& out) {
  SoakResult result;
  result.topology = name;

  // Declared before the domain so it is destroyed after it: router/host
  // timer destructors cancel PDES-encoded event ids, which must still
  // route through the installed backend.
  std::unique_ptr<exec::pdes::Runtime> pdes;

  core::CbtConfig cbt_config = SoakCbtConfig();
  cbt_config.mutation = mutation;
  cbt_config.dataplane = dataplane;
  core::CbtDomain domain(sim, topo, cbt_config, SoakIgmpConfig());
  domain.routes().set_mode(routing_mode);
  if (shards > 0) {
    pdes = std::make_unique<exec::pdes::Runtime>(sim, shards);
    pdes->Install();
    domain.ShardRoutes(pdes->region_count(),
                       [&pdes](NodeId id) { return pdes->RegionOf(id); });
  }
  domain.RegisterGroup(kGroup, members.cores);
  domain.Start();
  sim.RunUntil(kSecond);

  std::vector<core::HostAgent*> hosts;
  for (const std::size_t lan : members.member_lans) {
    hosts.push_back(&domain.AddHost(topo.router_lans[lan],
                                    "m" + std::to_string(lan)));
    hosts.back()->JoinGroup(kGroup);
  }

  // Chaos targets: every router except the cores (core placement is an
  // operator decision; core-failure takeover has its own experiment, E7),
  // and every backbone subnet (member stub LANs stay up).
  std::vector<NodeId> crashable;
  for (const NodeId id : topo.routers) {
    if (std::find(members.cores.begin(), members.cores.end(), id) ==
        members.cores.end()) {
      crashable.push_back(id);
    }
  }
  std::vector<SubnetId> flappable;
  for (std::size_t s = 0; s < sim.subnet_count(); ++s) {
    const SubnetId sid(static_cast<std::int32_t>(s));
    if (std::find(topo.router_lans.begin(), topo.router_lans.end(), sid) ==
        topo.router_lans.end()) {
      flappable.push_back(sid);
    }
  }

  netsim::ChaosPlanParams params;
  params.event_count = event_count;
  params.start = 90 * kSecond;
  params.min_gap = 60 * kSecond;
  params.max_gap = 120 * kSecond;
  params.min_down = 5 * kSecond;
  params.max_down = 20 * kSecond;
  const netsim::ChaosPlan plan =
      netsim::MakeRandomPlan(seed, params, crashable, flappable);
  if (dump_plan) out << plan.Describe() << "\n";

  netsim::ChaosInjector injector(sim, domain.ChaosHooks());
  injector.Arm(plan);

  // Steady traffic from the first member for the whole soak.
  const SimTime traffic_end = plan.LastRepairTime() + kRecoveryCap;
  for (SimTime t = 30 * kSecond; t < traffic_end; t += kSendPeriod) {
    sim.ScheduleAt(t, [&hosts] {
      hosts[0]->SendToGroup(kGroup, std::vector<std::uint8_t>{0xda});
    });
    ++result.sends;
  }
  result.expected = result.sends * (hosts.size() - 1);

  // Let the tree build, then demand a clean baseline before any fault.
  analysis::InvariantAuditor auditor(domain);
  if (!analysis::RunUntilInvariantsHold(domain, params.start - kSecond)) {
    result.error = "warmup never converged:\n" + auditor.Audit().Summary();
    return result;
  }

  // Drive fault -> repair -> converge for every event. Gaps are sized so
  // recovery normally completes before the next fault; if it does not
  // (or the cap expires) the event counts as stuck instead of skewing
  // the distribution.
  for (std::size_t i = 0; i < plan.events.size(); ++i) {
    const netsim::ChaosEvent& e = plan.events[i];
    sim.RunUntil(e.repair_at());
    SimTime deadline = e.repair_at() + kRecoveryCap;
    if (i + 1 < plan.events.size()) {
      deadline = std::min(deadline, plan.events[i + 1].at - kSecond);
    }
    ClassStats& stats = result.by_class[e.type];
    if (const auto clean = analysis::RunUntilInvariantsHold(domain, deadline)) {
      stats.recovery_s.push_back(static_cast<double>(*clean - e.at) / kSecond);
    } else {
      ++stats.stuck;
    }
  }

  // Final convergence: everything repaired, nothing left but timers.
  const auto final_clean =
      analysis::RunUntilInvariantsHold(domain, sim.Now() + kRecoveryCap);
  result.final_clean = final_clean.has_value();
  if (final_clean) {
    result.final_clean_at_s = static_cast<double>(*final_clean) / kSecond;
  }
  sim.RunUntil(traffic_end);

  for (std::size_t i = 1; i < hosts.size(); ++i) {
    result.delivered += hosts[i]->ReceivedCount(kGroup);
  }
  result.control_messages = domain.TotalControlMessages();
  for (const NodeId id : domain.router_ids()) {
    result.malformed += domain.router(id).stats().malformed_control;
  }

  // Post-hoc behavioural validation: replay this replica's trace ring
  // through the expectation suite. Runs inside the replica body because
  // the suite needs the simulator (address resolver), the exact config
  // (deadlines), and the end-of-run time for truncated-window verdicts.
  if (run_check) {
    if (obs::TraceBuffer* ring = obs::ProcessTraceBuffer()) {
      check::CbtSuiteOptions suite_options;
      suite_options.config = cbt_config;
      suite_options.node_of = check::MakeAddressResolver(sim);
      result.check_report = check::RunExpectations(
          check::TraceView(*ring), check::CbtExpectationSuite(suite_options),
          sim.Now());
      result.check_ran = true;
    }
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Options opts("chaos_soak",
                      "randomized fault schedules vs the tree invariants");
  bool dump_plan = false;
  int event_count = 100;
  int routers = 0;  // 0 = default three-topology sweep
  std::string engine_name = "wheel";
  std::string routing_name = "lazy";
  bool run_check = false;
  std::string check_json;
  std::string mutate_name;
  opts.Flag("plan", &dump_plan, "dump the generated chaos schedule");
  opts.Int("events", &event_count, "fault events per topology");
  opts.Int("routers", &routers,
           "scaling mode: one ~N-router grid instead of the sweep");
  opts.Str("engine", &engine_name, "event engine under test: wheel|legacy");
  opts.Str("routing", &routing_name, "unicast recompute: lazy|eager");
  opts.Flag("check", &run_check,
            "validate every failure-recovery path with the causal-path "
            "expectation suite (exit 1 on violations)");
  opts.Str("check-json", &check_json,
           "write the merged expectation report to FILE (implies --check)");
  opts.Str("mutate", &mutate_name,
           "seed a protocol defect for checker validation: suppress-flush");
  std::string dataplane_name = "fast";
  opts.Str("dataplane", &dataplane_name,
           "forwarding path: fast (flow cache) | slow (per-packet oracle)");
  opts.EnableShards();
  opts.Parse(argc, argv);
  if (opts.smoke) event_count = std::min(event_count, 10);
  if (!check_json.empty()) run_check = true;
  core::ProtocolMutation mutation = core::ProtocolMutation::kNone;
  if (mutate_name == "suppress-flush") {
    mutation = core::ProtocolMutation::kSuppressFlush;
  } else if (!mutate_name.empty()) {
    std::cerr << "bench_chaos_soak: unknown --mutate '" << mutate_name
              << "' (known: suppress-flush)\n";
    return 2;
  }
  core::DataplaneMode dataplane = core::DataplaneMode::kFast;
  if (dataplane_name == "slow") {
    dataplane = core::DataplaneMode::kSlow;
  } else if (dataplane_name != "fast") {
    std::cerr << "bench_chaos_soak: unknown --dataplane '" << dataplane_name
              << "' (known: fast, slow)\n";
    return 2;
  }

  // Before any Simulator exists, so every sim in the sweep records.
  bench::TraceSession trace(opts.trace_path);

  const bool csv = opts.csv;
  const std::uint64_t seed = opts.seed;
  const netsim::EventQueue::Engine engine =
      engine_name == "legacy" ? netsim::EventQueue::Engine::kLegacyHeap
                              : netsim::EventQueue::Engine::kTimerWheel;
  const routing::RouteManager::Mode routing_mode =
      routing_name == "eager" ? routing::RouteManager::Mode::kEager
                              : routing::RouteManager::Mode::kLazy;

  if (!csv) {
    std::cout << "Chaos soak: seed=" << seed << ", " << event_count
              << " fault events per topology; recovery = fault injection -> "
                 "first fully clean invariant audit\n\n";
  }

  analysis::Table recovery({"topology", "fault class", "events", "p50 s",
                            "p95 s", "max s", "stuck"});
  analysis::Table totals({"topology", "data sent", "expected", "delivered",
                          "lost", "ctl msgs", "malformed", "final audit",
                          "clean @s"});

  // Replica plan: --repeat reruns the whole sweep with seeds seed,
  // seed+1, ...; each repetition appends its own rows (repeat=1 output
  // is unchanged). Every (repetition x topology) pair is one
  // independent replica — its own Simulator, domain, plan — fanned over
  // the --jobs pool and reduced in plan order, so the tables (and every
  // byte of output) match the legacy serial loop exactly.
  enum class Topo { kScalingGrid, kGrid4x4, kWaxman20, kTransitStub };
  struct ReplicaSpec {
    Topo topo;
    std::uint64_t seed;
  };
  std::vector<ReplicaSpec> specs;
  for (int rep = 0; rep < opts.repeat; ++rep) {
    const std::uint64_t run_seed = seed + static_cast<std::uint64_t>(rep);
    if (routers > 0) {
      specs.push_back({Topo::kScalingGrid, run_seed});
    } else {
      specs.push_back({Topo::kGrid4x4, run_seed});
      specs.push_back({Topo::kWaxman20, run_seed});
      specs.push_back({Topo::kTransitStub, run_seed});
    }
  }

  exec::Pool pool(opts.jobs);
  bench::ExecReport exec_report(opts.bench_name());
  exec::SweepOptions sweep = bench::MakeSweepOptions(opts, trace);
  if (run_check && !sweep.trace) {
    // The checker needs a ring even when no --trace export was asked
    // for; span-level events are all the suite matches on.
    sweep.trace = true;
    sweep.trace_level = obs::TraceLevel::kSpans;
  }
  sweep.seeds.reserve(specs.size());
  for (const ReplicaSpec& spec : specs) sweep.seeds.push_back(spec.seed);

  std::vector<SoakResult> results;
  const exec::SweepTiming timing = exec::RunSweep(
      pool, specs.size(), sweep,
      [&](exec::RunContext& ctx) -> SoakResult {
        const ReplicaSpec& spec = specs[ctx.index];
        switch (spec.topo) {
          case Topo::kScalingGrid: {
            // Scaling mode: one square grid of at least `routers`
            // routers. The whole domain runs (echo timers, IGMP
            // queries, keepalives on every router), so this is the
            // end-to-end event-engine stressor.
            const int side = std::max(
                2, static_cast<int>(
                       std::ceil(std::sqrt(static_cast<double>(routers)))));
            netsim::Simulator sim(1, engine);
            netsim::Topology topo = netsim::MakeGrid(sim, side, side);
            const std::size_t n = topo.router_lans.size();
            MemberPlan members{{0, n / 3, (2 * n) / 3, n - 1},
                               {topo.routers[0], topo.routers[n - 1]}};
            return RunSoak(
                "grid-" + std::to_string(side) + "x" + std::to_string(side),
                sim, topo, members, ctx.seed, event_count, dump_plan,
                routing_mode, mutation, dataplane, run_check, opts.shards,
                ctx.out);
          }
          case Topo::kGrid4x4: {
            netsim::Simulator sim(1, engine);
            netsim::Topology topo = netsim::MakeGrid(sim, 4, 4);
            MemberPlan members{{3, 5, 10, 12},
                               {topo.routers[0], topo.routers[15]}};
            return RunSoak("grid-4x4", sim, topo, members, ctx.seed,
                           event_count, dump_plan, routing_mode, mutation,
                           dataplane, run_check, opts.shards, ctx.out);
          }
          case Topo::kWaxman20: {
            netsim::Simulator sim(1, engine);
            netsim::WaxmanParams wp;
            wp.n = 20;
            wp.seed = 7;
            netsim::Topology topo = netsim::MakeWaxman(sim, wp);
            MemberPlan members{{4, 9, 14, 19},
                               {topo.routers[0], topo.routers[13]}};
            return RunSoak("waxman-20", sim, topo, members, ctx.seed,
                           event_count, dump_plan, routing_mode, mutation,
                           dataplane, run_check, opts.shards, ctx.out);
          }
          case Topo::kTransitStub:
          default: {
            netsim::Simulator sim(1, engine);
            netsim::TransitStubParams tp;
            tp.transit_nodes = 4;
            tp.stub_domains = 6;
            tp.stub_size = 3;
            netsim::Topology topo = netsim::MakeTransitStub(sim, tp);
            MemberPlan members{{6, 11, 16, 21},
                               {topo.routers[0], topo.routers[1]}};
            return RunSoak("transit-stub", sim, topo, members, ctx.seed,
                           event_count, dump_plan, routing_mode, mutation,
                           dataplane, run_check, opts.shards, ctx.out);
          }
        }
      },
      [&](exec::RunContext& ctx, SoakResult result) {
        results.push_back(std::move(result));
        trace.Adopt(std::move(ctx.trace));
      });
  exec_report.Add("soak", timing);
  exec_report.WriteIfRequested(opts);

  bool failed = false;
  for (const SoakResult& r : results) {
    if (r.error.empty()) continue;
    std::cerr << r.topology << ": " << r.error << "\n";
    failed = true;
  }
  if (failed) return 1;

  for (const SoakResult& r : results) {
    for (const auto& [type, stats] : r.by_class) {
      recovery.AddRow({r.topology, netsim::ChaosEventTypeName(type),
                       analysis::Table::Num(stats.recovery_s.size()),
                       analysis::Table::Fixed(Percentile(stats.recovery_s, 0.5), 1),
                       analysis::Table::Fixed(Percentile(stats.recovery_s, 0.95), 1),
                       analysis::Table::Fixed(Percentile(stats.recovery_s, 1.0), 1),
                       analysis::Table::Num(stats.stuck)});
    }
    totals.AddRow({r.topology, analysis::Table::Num(r.sends),
                   analysis::Table::Num(r.expected),
                   analysis::Table::Num(r.delivered),
                   analysis::Table::Num(r.expected - r.delivered),
                   analysis::Table::Num(r.control_messages),
                   analysis::Table::Num(r.malformed),
                   r.final_clean ? "clean" : "VIOLATIONS",
                   analysis::Table::Fixed(r.final_clean_at_s, 1)});
  }

  bench::Emit(recovery, csv, "recovery");
  if (!csv) std::cout << "\n";
  bench::Emit(totals, csv, "totals");

  check::CheckReport check_report;
  if (run_check) {
    for (const SoakResult& r : results) {
      if (r.check_ran) check_report.Merge(r.check_report);
    }
    std::cout << "\n";
    check_report.Print(std::cout);
    if (!check_json.empty()) {
      std::ofstream os(check_json);
      if (os) {
        check_report.WriteJson(os);
        std::cerr << "wrote " << check_json << "\n";
      } else {
        std::cerr << "bench_chaos_soak: cannot write " << check_json << "\n";
      }
    }
  }

  if (!opts.json_path.empty()) {
    bench::JsonReporter report(opts.bench_name());
    report.Param("seed", seed);
    report.Param("repeat", opts.repeat);
    report.Param("events", event_count);
    report.Param("routers", routers);
    report.Param("engine", engine_name);
    report.Param("routing", routing_name);
    report.Param("dataplane", dataplane_name);
    report.Param("check", run_check);
    if (!mutate_name.empty()) report.Param("mutate", mutate_name);
    if (run_check) {
      report.Param("check_checked", check_report.checked());
      report.Param("check_violations", check_report.violations());
      report.Param("check_truncations", check_report.truncations());
      report.Param("check_waived", check_report.waived());
    }
    report.AddTable("recovery", recovery, "s");
    report.AddTable("totals", totals);
    report.WriteFile(opts.json_path);
  }

  bool all_clean = true;
  for (const SoakResult& r : results) all_clean &= r.final_clean;
  if (run_check && !check_report.clean()) all_clean = false;
  if (!csv) {
    std::cout << "\nExpected shape: crash recovery ~= echo timeout + rejoin "
                 "RTT (+ child-assert expiry for the stale child entry); "
                 "flaps and partitions add the fault hold time since the "
                 "tree cannot heal while the fault is outstanding. Same "
                 "seed => byte-identical output.\n";
  }
  return all_clean ? 0 : 1;
}
