// Experiment E8 — the spec's own worked examples on the Figure-1
// topology, regenerated message by message:
//  * section 2.5: host A's join builds branch R1-R3-R4; host B's join
//    terminates at R3 with a proxy-ack to D-DR R6 (section 2.6);
//  * section 5: member G's data packet — which router CBT-unicasts /
//    IP-multicasts where (the R8/R9/R10/R4 narrative);
//  * section 2.7: B leaves, R2 quits; R3 stays (R1 still a child).
#include <iostream>

#include "analysis/table.h"
#include "bench_util.h"
#include "cbt/domain.h"
#include "netsim/topologies.h"

namespace {

using namespace cbt;  // NOLINT

constexpr Ipv4Address kGroup(239, 1, 2, 3);

}  // namespace

int main(int argc, char** argv) {
  bench::Options opts("figure1_walkthrough",
                      "E8: the spec's Figure-1 worked examples");
  opts.Parse(argc, argv);
  bench::TraceSession trace(opts.trace_path);
  exec::Pool pool(opts.jobs);
  bench::ExecReport exec_report(opts.bench_name());

  analysis::Table first_data({""});
  const int rc = bench::RunRepeated(
      pool, opts, trace, exec_report, [&](exec::RunContext& ctx) -> int {
  std::ostream& out = ctx.out;
  netsim::Simulator sim(1);
  netsim::Topology topo = netsim::MakeFigure1(sim);
  core::CbtConfig config;
  config.native_mode = false;  // CBT mode, as in the section 5 narrative
  core::CbtDomain domain(sim, topo, config);
  domain.RegisterGroup(kGroup, {topo.node("R4"), topo.node("R9")});
  domain.Start();
  sim.RunUntil(kSecond);

  out << "E8: Figure-1 walkthroughs (CBT mode)\n\n"
         "(1) section 2.5/2.6 — A then B join\n\n";
  domain.host("A").JoinGroup(kGroup);
  sim.RunUntil(10 * kSecond);
  domain.host("B").JoinGroup(kGroup);
  sim.RunUntil(20 * kSecond);

  analysis::Table joins({"check", "spec says", "measured"});
  const auto on_tree = [&](const char* r) {
    return domain.router(r).IsOnTree(kGroup) ? "on-tree" : "off-tree";
  };
  joins.AddRow({"branch R1-R3-R4 built", "R1,R3,R4 on-tree",
                std::string(on_tree("R1")) + "," + on_tree("R3") + "," +
                    on_tree("R4")});
  joins.AddRow({"B's join terminated early", "R4 sees only A's join",
                "R4 acks sent = " +
                    analysis::Table::Num(
                        domain.router("R4").stats().acks_sent)});
  joins.AddRow({"R2 proxy-acks R6", "1 proxy-ack",
                "R2 proxy-acks = " +
                    analysis::Table::Num(
                        domain.router("R2").stats().proxy_acks_sent)});
  joins.AddRow({"D-DR R6 keeps no state", "no FIB entry",
                domain.router("R6").IsOnTree(kGroup) ? "HAS STATE"
                                                     : "stateless"});
  joins.Print(out);

  // Everyone else joins for the data walkthrough.
  for (const char* h : {"C", "D", "E", "F", "G", "H", "I", "J", "K", "L"}) {
    domain.host(h).JoinGroup(kGroup);
  }
  sim.RunUntil(60 * kSecond);
  for (const NodeId id : domain.router_ids()) {
    domain.router(id).mutable_stats() = core::RouterStats{};
  }

  out << "\n(2) section 5 — member G originates one data packet\n\n";
  domain.host("G").SendToGroup(kGroup, std::vector<std::uint8_t>{0xCB});
  sim.RunUntil(sim.Now() + 10 * kSecond);

  analysis::Table data({"router", "tree txs", "LAN multicasts",
                        "spec narrative"});
  const struct {
    const char* router;
    const char* note;
  } rows[] = {
      {"R8", "CBT unicasts to R9, R12, R4; IP multicast onto S14"},
      {"R9", "no members on S12: no LAN multicast; unicast to R10"},
      {"R10", "IP multicasts to both S13 and S15"},
      {"R4", "IP multicasts onto S5, S6, S7; unicasts to R3, R7"},
      {"R7", "IP multicasts onto S9"},
      {"R3", "CBT unicasts to R1 and R2"},
      {"R1", "IP multicasts onto S1 and S3"},
      {"R2", "IP multicasts onto S4"},
      {"R12", "IP multicasts onto S11"},
  };
  for (const auto& r : rows) {
    const auto& s = domain.router(r.router).stats();
    data.AddRow({r.router, analysis::Table::Num(s.data_forwarded_tree),
                 analysis::Table::Num(s.data_delivered_lan), r.note});
  }
  data.Print(out);

  std::uint64_t delivered = 0;
  for (const char* h :
       {"A", "B", "C", "D", "E", "F", "H", "I", "J", "K", "L"}) {
    delivered += domain.host(h).ReceivedCount(kGroup);
  }
  out << "\nmembers delivered: " << delivered
      << "/11 (each exactly once)\n";

  out << "\n(3) section 2.7 — B leaves; R2 quits, R3 stays\n\n";
  const auto r2_quits_before = domain.router("R2").stats().quits_sent;
  domain.host("B").LeaveGroup(kGroup);
  sim.RunUntil(sim.Now() + 60 * kSecond);

  analysis::Table teardown({"check", "spec says", "measured"});
  teardown.AddRow(
      {"R2 sent QUIT_REQUEST", ">= 1",
       analysis::Table::Num(domain.router("R2").stats().quits_sent -
                            r2_quits_before)});
  teardown.AddRow({"R2 left the tree", "off-tree",
                   domain.router("R2").IsOnTree(kGroup) ? "ON-TREE"
                                                        : "off-tree"});
  teardown.AddRow({"R3 remains (R1 still child)", "on-tree",
                   domain.router("R3").IsOnTree(kGroup) ? "on-tree"
                                                        : "OFF-TREE"});
  teardown.Print(out);
  if (ctx.index == 0) first_data = data;
  return 0;
      });
  if (!opts.json_path.empty()) {
    bench::JsonReporter report(opts.bench_name());
    report.AddTable("data_walkthrough", first_data, "packets");
    report.WriteFile(opts.json_path);
  }
  exec_report.WriteIfRequested(opts);
  return rc;
}
