# E11 core-placement smoke + determinism (ctest, label bench-smoke).
#
# The placement sweep is pure graph math plus a deterministic live
# migration leg, so a 2-seed (--repeat 2) run must be byte-identical —
# stdout AND BENCH json — when rerun with the same flags. The test also
# exercises --placement single-strategy mode and asserts the migration
# leg reported a hitless (ok=1) recovery for every strategy.
#
# Invoked as:
#   cmake -DCORE_PLACEMENT=<path> -DWORK_DIR=<dir> -P placement_differential.cmake

foreach(var CORE_PLACEMENT WORK_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "missing -D${var}=")
  endif()
endforeach()
file(MAKE_DIRECTORY "${WORK_DIR}")

function(run_variant name)
  set(json "${WORK_DIR}/${name}.json")
  execute_process(
    COMMAND ${CORE_PLACEMENT} --smoke --repeat 2 --seed 1
      ${ARGN} --json ${json}
      --exec-json ${WORK_DIR}/${name}.exec.json
    OUTPUT_VARIABLE stdout
    ERROR_VARIABLE stderr
    RESULT_VARIABLE code)
  if(NOT code EQUAL 0)
    message(FATAL_ERROR "${name}: exit ${code}\n${stderr}")
  endif()
  file(WRITE "${WORK_DIR}/${name}.txt" "${stdout}")
  set(${name}_out "${stdout}" PARENT_SCOPE)
  file(READ "${json}" json_text)
  set(${name}_json "${json_text}" PARENT_SCOPE)
endfunction()

run_variant(run_a)
run_variant(run_b)
if(NOT run_a_out STREQUAL run_b_out)
  message(FATAL_ERROR "rerun stdout differs (dumps in ${WORK_DIR})")
endif()
if(NOT run_a_json STREQUAL run_b_json)
  message(FATAL_ERROR "rerun BENCH json differs (${WORK_DIR})")
endif()
message(STATUS "2-seed rerun byte-identical (stdout + json)")

# The migration series must be present; a not-hitless row or dirty
# post-drain audit makes the bench itself exit 3, which run_variant
# already treats as fatal.
foreach(series "migration.hitless" "migration.audit-clean")
  if(NOT run_a_json MATCHES "${series}")
    message(FATAL_ERROR "BENCH json is missing series ${series}")
  endif()
endforeach()

# --placement restricts the sweep to one registry name.
run_variant(locality --placement locality)
if(locality_json MATCHES "\"label\": \"random/k")
  message(FATAL_ERROR "--placement locality still swept other strategies")
endif()
if(NOT locality_json MATCHES "\"label\": \"locality/k4\"")
  message(FATAL_ERROR "--placement locality is missing its own k=4 row")
endif()
message(STATUS "--placement single-strategy mode verified")
