// Event-engine microbenchmark: timer wheel vs. the legacy heap.
//
// Two workloads modelled on what the simulator actually does:
//  * cancel-rearm — the keepalive/refresh pattern that dominates large
//    topologies: a standing population of timers is repeatedly answered
//    (cancelled) and re-armed before firing. The legacy engine leaves a
//    tombstone per cancel, so its heap keeps growing mid-run; the wheel
//    reclaims slots in O(1).
//  * schedule-drain — schedule a batch at random times, run to empty:
//    the pure event-dispatch path (frame deliveries).
//
// Both workloads are seeded and also compare a fire-order checksum
// across engines, so the bench doubles as a quick determinism probe.
// Results go to stdout and to BENCH_event_engine.json (overridable with
// --json / --out) so CI can track the perf trajectory; --smoke shrinks
// the sizes for a fast correctness-only pass.
#include <chrono>
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/random.h"
#include "netsim/event_queue.h"

namespace {

using namespace cbt;  // NOLINT
using netsim::EventId;
using netsim::EventQueue;

struct WorkloadResult {
  std::string name;
  std::string engine;
  std::uint64_t ops = 0;
  double seconds = 0;
  std::uint64_t checksum = 0;

  double mops() const { return ops / seconds / 1e6; }
};

const char* EngineName(EventQueue::Engine engine) {
  return engine == EventQueue::Engine::kTimerWheel ? "wheel" : "legacy";
}

/// Standing population of `timers` keepalives; each op answers one timer
/// (cancel) and re-arms it at a fresh horizon, with a slice of events
/// actually firing to keep the clock moving.
WorkloadResult CancelRearm(EventQueue::Engine engine, std::size_t timers,
                           std::uint64_t ops) {
  Rng rng(42);
  EventQueue q(engine);
  SimTime clock = 0;
  std::uint64_t checksum = 0;
  std::vector<EventId> ids(timers, netsim::kInvalidEventId);
  for (std::size_t i = 0; i < timers; ++i) {
    const SimTime when = clock + 1 + static_cast<SimTime>(
                                         rng.NextBelow(60 * kSecond));
    ids[i] = q.ScheduleAt(when, [&checksum, when] {
      checksum = checksum * 31 + static_cast<std::uint64_t>(when);
    });
  }
  const auto start = std::chrono::steady_clock::now();
  for (std::uint64_t op = 0; op < ops; ++op) {
    const std::size_t pick = rng.NextBelow(timers);
    q.Cancel(ids[pick]);  // timer answered before firing
    const SimTime when = clock + 1 + static_cast<SimTime>(
                                         rng.NextBelow(60 * kSecond));
    ids[pick] = q.ScheduleAt(when, [&checksum, when] {
      checksum = checksum * 31 + static_cast<std::uint64_t>(when);
    });
    if ((op & 63) == 0) q.RunNext(clock);  // some timers do fire
  }
  const auto stop = std::chrono::steady_clock::now();
  while (q.RunNext(clock)) {
  }
  WorkloadResult r;
  r.name = "cancel_rearm";
  r.engine = EngineName(engine);
  r.ops = ops * 2;  // one cancel + one schedule per iteration
  r.seconds = std::chrono::duration<double>(stop - start).count();
  r.checksum = checksum;
  return r;
}

/// Schedules `events` closures at seeded random times, then drains the
/// queue — the frame-delivery dispatch path.
WorkloadResult ScheduleDrain(EventQueue::Engine engine, std::uint64_t events) {
  Rng rng(7);
  EventQueue q(engine);
  SimTime clock = 0;
  std::uint64_t checksum = 0;
  const auto start = std::chrono::steady_clock::now();
  std::uint64_t scheduled = 0;
  while (scheduled < events) {
    const std::uint64_t batch = std::min<std::uint64_t>(
        events - scheduled, 1 + rng.NextBelow(64));
    for (std::uint64_t i = 0; i < batch; ++i) {
      const SimTime when =
          clock + static_cast<SimTime>(rng.NextBelow(10 * kSecond));
      q.ScheduleAt(when, [&checksum, when] {
        checksum = checksum * 131 + static_cast<std::uint64_t>(when);
      });
    }
    scheduled += batch;
    for (int i = 0; i < 32; ++i) {
      if (!q.RunNext(clock)) break;
    }
  }
  while (q.RunNext(clock)) {
  }
  const auto stop = std::chrono::steady_clock::now();
  WorkloadResult r;
  r.name = "schedule_drain";
  r.engine = EngineName(engine);
  r.ops = events * 2;  // one schedule + one dispatch per event
  r.seconds = std::chrono::duration<double>(stop - start).count();
  r.checksum = checksum;
  return r;
}

void PrintRow(const WorkloadResult& r) {
  std::cout << "  " << r.name << " [" << r.engine << "]: " << r.ops
            << " ops in " << r.seconds << " s = " << r.mops()
            << " Mops/s (checksum " << r.checksum << ")\n";
}

}  // namespace

int main(int argc, char** argv) {
  bench::Options opts("event_engine",
                      "event-engine microbench: timer wheel vs legacy heap");
  opts.json_path = "BENCH_event_engine.json";  // always reported
  // Timing microbench: serial by default so parallel replicas cannot
  // distort the wheel-vs-legacy wall-clock comparison (--jobs opts in;
  // the fire-order checksums stay identical either way).
  opts.jobs = 1;
  opts.Parse(argc, argv);
  bench::TraceSession trace(opts.trace_path);
  exec::Pool pool(opts.jobs);
  bench::ExecReport exec_report(opts.bench_name());
  const bool smoke = opts.smoke;

  const std::size_t timers = smoke ? 2'000 : 100'000;
  const std::uint64_t rearm_ops = smoke ? 20'000 : 2'000'000;
  const std::uint64_t drain_events = smoke ? 20'000 : 2'000'000;

  std::cout << "Event engine bench (" << (smoke ? "smoke" : "full")
            << "): " << timers << " standing timers, " << rearm_ops
            << " cancel/re-arm ops, " << drain_events
            << " schedule/drain events\n";

  // Four independent (workload, engine) replicas over the --jobs pool.
  std::vector<WorkloadResult> results(4);
  exec_report.Add(
      "workloads",
      exec::RunSweep(
          pool, results.size(), bench::MakeSweepOptions(opts, trace),
          [&](exec::RunContext& ctx) -> WorkloadResult {
            switch (ctx.index) {
              case 0:
                return CancelRearm(EventQueue::Engine::kTimerWheel, timers,
                                   rearm_ops);
              case 1:
                return CancelRearm(EventQueue::Engine::kLegacyHeap, timers,
                                   rearm_ops);
              case 2:
                return ScheduleDrain(EventQueue::Engine::kTimerWheel,
                                     drain_events);
              default:
                return ScheduleDrain(EventQueue::Engine::kLegacyHeap,
                                     drain_events);
            }
          },
          [&](exec::RunContext& ctx, WorkloadResult r) {
            results[ctx.index] = std::move(r);
            trace.Adopt(std::move(ctx.trace));
          }));
  for (const WorkloadResult& r : results) PrintRow(r);

  bool deterministic = true;
  double rearm_speedup = 0;
  double drain_speedup = 0;
  for (std::size_t i = 0; i + 1 < results.size(); i += 2) {
    const WorkloadResult& wheel = results[i];
    const WorkloadResult& legacy = results[i + 1];
    if (wheel.checksum != legacy.checksum) {
      deterministic = false;
      std::cout << "DETERMINISM MISMATCH in " << wheel.name << "\n";
    }
    const double speedup = legacy.seconds / wheel.seconds;
    (wheel.name == "cancel_rearm" ? rearm_speedup : drain_speedup) = speedup;
    std::cout << "  " << wheel.name << " speedup: " << speedup << "x\n";
  }

  bench::JsonReporter report(opts.bench_name());
  report.Param("mode", smoke ? "smoke" : "full");
  report.Param("deterministic", deterministic);
  report.Param("timers", static_cast<std::uint64_t>(timers));
  auto& ops_series = report.AddSeries("ops", "ops");
  auto& secs_series = report.AddSeries("seconds", "s");
  auto& mops_series = report.AddSeries("mops", "Mops/s");
  for (const WorkloadResult& r : results) {
    const std::string label = r.name + "/" + r.engine;
    ops_series.Add(label, r.ops);
    secs_series.Add(label, r.seconds);
    mops_series.Add(label, r.mops());
  }
  auto& speedup = report.AddSeries("speedup", "x");
  speedup.Add("cancel_rearm", rearm_speedup);
  speedup.Add("schedule_drain", drain_speedup);
  report.WriteFile(opts.json_path);
  exec_report.WriteIfRequested(opts);

  return deterministic ? 0 : 1;
}
