# Space-parallel PDES differential (ctest, label bench-smoke).
#
# The shard determinism contract (docs/PROTOCOL.md, "Space-parallel PDES
# & lookahead contract"): `--shards N` must leave bench stdout AND the
# bench's own BENCH_*.json byte-identical to `--shards 1` for every N —
# region count and worker-thread count are not allowed to change a
# single byte of simulation output. Wall-clock lives only in
# BENCH_exec.json, which this script ignores. Runs bench_chaos_soak
# (smoke workload) and bench_join_latency at --shards 1 vs --shards 4
# over five seeds, requires the causal-path checker to come back clean
# under shards, and pins the CLI contract (--shards with --jobs > 1 is
# rejected with exit 2).
#
# Invoked as:
#   cmake -DCHAOS_SOAK=<path> -DJOIN_LATENCY=<path> -DWORK_DIR=<dir>
#         -P pdes_differential.cmake

foreach(var CHAOS_SOAK JOIN_LATENCY WORK_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "missing -D${var}=")
  endif()
endforeach()
file(MAKE_DIRECTORY "${WORK_DIR}")

function(run_and_capture out_var exit_var)
  execute_process(
    COMMAND ${ARGN}
    OUTPUT_VARIABLE stdout
    ERROR_VARIABLE stderr  # discarded: json/exec-report status goes to stderr
    RESULT_VARIABLE code)
  set(${out_var} "${stdout}" PARENT_SCOPE)
  set(${exit_var} "${code}" PARENT_SCOPE)
endfunction()

# Compares one bench invocation at --shards 1 vs --shards 4: stdout,
# exit code, and the BENCH json must be byte-identical.
function(check_differential name binary)
  set(json1 "${WORK_DIR}/${name}.shards1.json")
  set(json4 "${WORK_DIR}/${name}.shards4.json")
  run_and_capture(out1 code1
    ${binary} ${ARGN} --shards 1 --json ${json1}
    --exec-json ${WORK_DIR}/${name}.shards1.exec.json)
  run_and_capture(out4 code4
    ${binary} ${ARGN} --shards 4 --json ${json4}
    --exec-json ${WORK_DIR}/${name}.shards4.exec.json)
  if(NOT code1 STREQUAL code4)
    message(FATAL_ERROR
      "${name}: exit ${code1} (--shards 1) vs ${code4} (--shards 4)")
  endif()
  if(NOT out1 STREQUAL out4)
    file(WRITE "${WORK_DIR}/${name}.shards1.txt" "${out1}")
    file(WRITE "${WORK_DIR}/${name}.shards4.txt" "${out4}")
    message(FATAL_ERROR
      "${name}: stdout differs between --shards 1 and --shards 4 "
      "(dumps in ${WORK_DIR})")
  endif()
  file(READ "${json1}" bench_json1)
  file(READ "${json4}" bench_json4)
  if(NOT bench_json1 STREQUAL bench_json4)
    message(FATAL_ERROR
      "${name}: BENCH json differs between --shards 1 and --shards 4 "
      "(${json1} vs ${json4})")
  endif()
  message(STATUS "${name}: --shards 4 byte-identical to --shards 1")
endfunction()

foreach(seed 1 2 3 4 5)
  check_differential(chaos_soak_seed${seed} ${CHAOS_SOAK}
    --smoke --events 6 --seed ${seed})
  check_differential(join_latency_seed${seed} ${JOIN_LATENCY}
    --seed ${seed})
endforeach()

# The causal-path expectation checker must come back clean over a
# sharded soak: the merged trace ring has to be causally coherent, not
# just byte-stable.
run_and_capture(check_out check_code
  ${CHAOS_SOAK} --smoke --events 6 --shards 4 --check
  --check-json ${WORK_DIR}/check_sharded.json
  --exec-json ${WORK_DIR}/check_sharded.exec.json)
if(NOT check_code STREQUAL "0")
  message(FATAL_ERROR
    "chaos_soak --shards 4 --check exited ${check_code} (expected 0): "
    "the sharded trace is not checker-clean")
endif()
message(STATUS "chaos_soak --shards 4 --check: clean (exit 0)")

# CLI contract: a sharded simulation already fans out across the cores,
# so composing it with replica parallelism is rejected up front with the
# bench::Options usage exit code.
run_and_capture(combo_out combo_code
  ${CHAOS_SOAK} --smoke --shards 2 --jobs 2)
if(NOT combo_code STREQUAL "2")
  message(FATAL_ERROR
    "chaos_soak --shards 2 --jobs 2 exited ${combo_code} (expected 2)")
endif()
message(STATUS "--shards 2 --jobs 2 rejected with exit 2")
