# Serial vs parallel differential (ctest, label bench-smoke).
#
# The executor determinism contract (docs/PROTOCOL.md, "Parallel
# execution & determinism"): `--jobs N` must leave bench stdout AND the
# bench's own BENCH_*.json byte-identical to `--jobs 1` — wall-clock
# lives only in BENCH_exec.json, which this script ignores. Runs
# bench_chaos_soak (256 routers, 3 repetitions so the pool really fans
# out, two seeds) and bench_join_latency at --jobs 1 vs --jobs 4 and
# compares byte-for-byte.
#
# Invoked as:
#   cmake -DCHAOS_SOAK=<path> -DJOIN_LATENCY=<path> -DWORK_DIR=<dir>
#         -P exec_differential.cmake

foreach(var CHAOS_SOAK JOIN_LATENCY WORK_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "missing -D${var}=")
  endif()
endforeach()
file(MAKE_DIRECTORY "${WORK_DIR}")

function(run_and_capture out_var exit_var)
  execute_process(
    COMMAND ${ARGN}
    OUTPUT_VARIABLE stdout
    ERROR_VARIABLE stderr  # discarded: json/exec-report status goes to stderr
    RESULT_VARIABLE code)
  set(${out_var} "${stdout}" PARENT_SCOPE)
  set(${exit_var} "${code}" PARENT_SCOPE)
endfunction()

# Compares one bench invocation at --jobs 1 vs --jobs 4: stdout, exit
# code, and the BENCH json must be byte-identical.
function(check_differential name binary)
  set(json1 "${WORK_DIR}/${name}.jobs1.json")
  set(json4 "${WORK_DIR}/${name}.jobs4.json")
  run_and_capture(out1 code1
    ${binary} ${ARGN} --jobs 1 --json ${json1}
    --exec-json ${WORK_DIR}/${name}.jobs1.exec.json)
  run_and_capture(out4 code4
    ${binary} ${ARGN} --jobs 4 --json ${json4}
    --exec-json ${WORK_DIR}/${name}.jobs4.exec.json)
  if(NOT code1 STREQUAL code4)
    message(FATAL_ERROR
      "${name}: exit ${code1} (--jobs 1) vs ${code4} (--jobs 4)")
  endif()
  if(NOT out1 STREQUAL out4)
    file(WRITE "${WORK_DIR}/${name}.jobs1.txt" "${out1}")
    file(WRITE "${WORK_DIR}/${name}.jobs4.txt" "${out4}")
    message(FATAL_ERROR
      "${name}: stdout differs between --jobs 1 and --jobs 4 "
      "(dumps in ${WORK_DIR})")
  endif()
  file(READ "${json1}" bench_json1)
  file(READ "${json4}" bench_json4)
  if(NOT bench_json1 STREQUAL bench_json4)
    message(FATAL_ERROR
      "${name}: BENCH json differs between --jobs 1 and --jobs 4 "
      "(${json1} vs ${json4})")
  endif()
  message(STATUS "${name}: --jobs 4 byte-identical to --jobs 1")
endfunction()

foreach(seed 1 2)
  check_differential(chaos_soak_seed${seed} ${CHAOS_SOAK}
    --routers 256 --events 25 --repeat 3 --seed ${seed})
endforeach()
check_differential(join_latency ${JOIN_LATENCY})

# BENCH_exec.json sanity: the parallel run recorded per-replica timing.
file(READ "${WORK_DIR}/chaos_soak_seed1.jobs4.exec.json" exec_json)
if(NOT exec_json MATCHES "replica_wall_seconds")
  message(FATAL_ERROR
    "chaos_soak --jobs 4 wrote no per-replica timing to BENCH_exec.json")
endif()
message(STATUS "BENCH_exec.json records per-replica wall clock")
