// Experiment E4 — traffic concentration.
//
// The classic shared-tree criticism the SIGCOMM'93 paper quantifies: all
// of a group's traffic crosses the one shared tree, concentrating load on
// its links (especially near the core), whereas per-source trees spread
// load across the graph. Every member sends one packet; we report the
// peak per-link load and the size of the loaded link set.
//
// Expected shape: shared-tree peak ~= number of senders (every sender's
// packet crosses every tree link); SPT peak noticeably lower; SPT spreads
// over more distinct links. A centre core does not fix concentration —
// that is inherent to the single tree.
#include <algorithm>
#include <iostream>
#include <vector>

#include "analysis/table.h"
#include "bench_util.h"
#include "analysis/tree_metrics.h"
#include "baselines/dvmrp_domain.h"
#include "baselines/rp_tree_domain.h"
#include "cbt/core_selection.h"
#include "cbt/domain.h"
#include "netsim/topologies.h"
#include "routing/route_manager.h"

namespace {

using namespace cbt;  // NOLINT

constexpr int kRouters = 100;
constexpr int kSeeds = 5;

struct LoadSummary {
  double peak = 0;
  double mean_nonzero = 0;
  double loaded_links = 0;
};

LoadSummary Summarize(const std::map<std::pair<NodeId, NodeId>, int>& load) {
  LoadSummary s;
  double total = 0;
  for (const auto& [edge, packets] : load) {
    s.peak = std::max(s.peak, (double)packets);
    total += packets;
  }
  s.loaded_links = (double)load.size();
  s.mean_nonzero = load.empty() ? 0 : total / (double)load.size();
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  cbt::bench::Options opts("traffic_concentration",
                           "E4: link-load concentration across schemes");
  opts.Parse(argc, argv);
  cbt::bench::TraceSession trace(opts.trace_path);
  cbt::exec::Pool pool(opts.jobs);
  cbt::bench::ExecReport exec_report(opts.bench_name());
  const bool csv = opts.csv;

  analysis::Table first_table({""});
  analysis::Table first_live({""});
  const int rc = cbt::bench::RunRepeated(
      pool, opts, trace, exec_report, [&](cbt::exec::RunContext& ctx) -> int {
  std::ostream& out = ctx.out;
  out << "E4: traffic concentration (all members send one packet) — "
               "Waxman n="
            << kRouters << ", " << kSeeds << " seeds\n\n";

  analysis::Table table({"members", "scheme", "peak link load",
                         "mean load", "loaded links"});

  for (const int members : {10, 20, 40}) {
    LoadSummary shared_centre{}, shared_random{}, unidir{}, spt{};
    for (int s = 0; s < kSeeds; ++s) {
      netsim::Simulator sim(1);
      netsim::WaxmanParams params;
      params.n = kRouters;
      params.seed = 300 + static_cast<std::uint64_t>(s);
      netsim::Topology topo = netsim::MakeWaxman(sim, params);
      routing::RouteManager routes(sim);
      Rng rng(13 * static_cast<std::uint64_t>(s) + 1);

      std::vector<NodeId> member_routers;
      for (const std::size_t idx : rng.SampleWithoutReplacement(
               topo.routers.size(), (std::size_t)members)) {
        member_routers.push_back(topo.routers[idx]);
      }

      core_selection::PlacementInput in;
      in.routes = &routes;
      in.routers = topo.routers;
      in.rng = &rng;
      const NodeId centre =
          core_selection::MakeStrategy("centre")->Place(in, 1).cores.front();
      const NodeId random_core =
          core_selection::MakeStrategy("random")->Place(in, 1).cores.front();

      const auto t_centre =
          analysis::BuildSharedTree(routes, centre, member_routers);
      const auto t_random =
          analysis::BuildSharedTree(routes, random_core, member_routers);

      const auto acc = [&](LoadSummary& into, const LoadSummary& one) {
        into.peak += one.peak;
        into.mean_nonzero += one.mean_nonzero;
        into.loaded_links += one.loaded_links;
      };
      acc(shared_centre, Summarize(analysis::SharedTreeLinkLoad(
                             routes, t_centre, member_routers)));
      acc(shared_random, Summarize(analysis::SharedTreeLinkLoad(
                             routes, t_random, member_routers)));
      acc(unidir, Summarize(analysis::UnidirectionalSharedTreeLinkLoad(
                      routes, t_centre, member_routers)));
      acc(spt, Summarize(analysis::SourceTreesLinkLoad(routes, member_routers,
                                                       member_routers)));
    }
    const auto row = [&](const char* scheme, const LoadSummary& s2) {
      table.AddRow({analysis::Table::Num(members), scheme,
                    analysis::Table::Fixed(s2.peak / kSeeds, 1),
                    analysis::Table::Fixed(s2.mean_nonzero / kSeeds, 1),
                    analysis::Table::Fixed(s2.loaded_links / kSeeds, 1)});
    };
    row("shared/centre (bidir)", shared_centre);
    row("shared/random (bidir)", shared_random);
    row("unidir RP tree", unidir);
    row("per-source SPT", spt);
  }
  cbt::bench::Emit(table, csv, "E4 oracle link load", out);

  // ------------------------------------------------------------------
  // (b) Protocol-level confirmation: run the same workload through the
  // real routers on a 5x5 grid and read the per-subnet frame counters.
  // ------------------------------------------------------------------
  out << "\n(b) live-simulation confirmation — 5x5 grid, 8 members "
         "each sending 10 packets; peak frames on any one subnet\n\n";
  analysis::Table live({"scheme", "peak subnet frames", "total data frames"});
  enum class Scheme { kCbt, kDvmrp, kRpTree };
  const auto run_live = [&](Scheme scheme) {
    netsim::Simulator sim(3);
    netsim::Topology topo = netsim::MakeGrid(sim, 5, 5);
    const Ipv4Address group(239, 44, 0, 1);
    std::vector<core::HostAgent*> members;

    std::optional<core::CbtDomain> cbt;
    std::optional<baselines::DvmrpDomain> dvmrp;
    std::optional<baselines::RpTreeDomain> rptree;
    if (scheme == Scheme::kCbt) {
      cbt.emplace(sim, topo);
      cbt->RegisterGroup(group, {topo.routers[12]});
      cbt->Start();
    } else if (scheme == Scheme::kDvmrp) {
      dvmrp.emplace(sim, topo);
      dvmrp->Start();
    } else {
      rptree.emplace(sim, topo);
      rptree->RegisterGroup(group, topo.routers[12]);  // same RP as core
      rptree->Start();
    }
    sim.RunUntil(kSecond);
    Rng rng(21);
    for (const std::size_t idx :
         rng.SampleWithoutReplacement(topo.routers.size(), 8)) {
      auto& h = scheme == Scheme::kCbt
                    ? cbt->AddHost(topo.router_lans[idx],
                                   "m" + std::to_string(idx))
                : scheme == Scheme::kDvmrp
                    ? dvmrp->AddHost(topo.router_lans[idx],
                                     "m" + std::to_string(idx))
                    : rptree->AddHost(topo.router_lans[idx],
                                      "m" + std::to_string(idx));
      if (scheme == Scheme::kCbt) {
        h.JoinGroup(group);
      } else {
        h.JoinGroupWithCores(group, {}, 0);
      }
      members.push_back(&h);
      sim.RunUntil(sim.Now() + 300 * kMillisecond);
    }
    sim.RunUntil(sim.Now() + 20 * kSecond);
    sim.ResetCounters();  // count only the data phase
    for (int round = 0; round < 10; ++round) {
      for (auto* m : members) {
        m->SendToGroup(group, std::vector<std::uint8_t>(64, 1));
      }
      sim.RunUntil(sim.Now() + kSecond);
    }
    sim.RunUntil(sim.Now() + 10 * kSecond);

    std::uint64_t peak = 0, total = 0;
    for (std::size_t si = 0; si < sim.subnet_count(); ++si) {
      const auto& counters =
          sim.subnet(SubnetId((std::int32_t)si)).counters;
      peak = std::max(peak, counters.frames_sent);
      total += counters.frames_sent;
    }
    const char* name = scheme == Scheme::kCbt ? "CBT shared tree (bidir)"
                       : scheme == Scheme::kDvmrp
                           ? "DVMRP flood-and-prune"
                           : "PIM-SM-shape RP tree (unidir)";
    live.AddRow({name, analysis::Table::Num(peak),
                 analysis::Table::Num(total)});
  };
  run_live(Scheme::kCbt);
  run_live(Scheme::kDvmrp);
  run_live(Scheme::kRpTree);
  cbt::bench::Emit(live, csv, "E4 live grid confirmation", out);
  out << "\n(the live CBT peak includes keepalive frames on the "
         "busiest tree link; DVMRP's total shows the flooding cost)\n";

  out << "\nExpected shape: bidirectional shared-tree peak == "
         "#senders regardless of core placement; the unidirectional "
         "(PIM-SM-shape) RP tree is strictly worse near the root "
         "(up-leg + down-leg); SPT peak clearly lower with load "
         "spread over more links — CBT's bidirectionality is the "
         "cheaper of the two shared-tree designs.\n";
  if (ctx.index == 0) {
    first_table = table;
    first_live = live;
  }
  return 0;
      });
  if (!opts.json_path.empty()) {
    analysis::Table& table = first_table;
    analysis::Table& live = first_live;
    cbt::bench::JsonReporter report(opts.bench_name());
    report.Param("routers", kRouters);
    report.Param("seeds", kSeeds);
    report.AddTable("oracle_link_load", table, "packets");
    report.AddTable("live_grid", live, "frames");
    report.WriteFile(opts.json_path);
  }
  exec_report.WriteIfRequested(opts);
  return rc;
}
