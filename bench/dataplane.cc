// Data-plane fast path (E12): flow-cache + encode-once forwarding
// throughput vs the per-packet slow-path oracle.
//
// Each row builds a grid domain, joins `members` hosts per group, then
// pumps `packets` data packets per (sender, group) stream through the
// routers — non-member senders, so every packet crosses the full CBT
// data plane (DR relay toward the core, tree fan-out, member-LAN
// delivery). The same row runs twice, once per forwarding path
// (core::DataplaneMode::kFast / kSlow), and the bench itself asserts
// the two legs delivered identical traffic: every member host's
// received stream (group, source, time, size, sequence head) is folded
// into an FNV-1a digest that must match across legs, and both legs
// must end audit-clean. A digest mismatch exits 3 — the differential
// is a hard failure, not a report column.
//
// stdout carries only deterministic columns (sent/hops/delivered/
// digest/cache counters), so reruns with the same flags are
// byte-identical; wall-clock throughput (packets/sec, ns/hop, the
// fast-over-slow speedup) goes to stderr and — unless --deterministic —
// the BENCH_dataplane.json report.
//
// Three exit-3 gates, in decreasing order of CI robustness:
//   --min-copy-reduction N  every row must stage >= N times fewer arena
//                           buffers fast than slow. Deterministic (a
//                           structural property of the two paths), so it
//                           holds under sanitizers, --jobs and noisy
//                           shared runners alike. Classic engine only:
//                           the shard runtime stages into region arenas
//                           and deterministically reports 0 copies.
//   --min-stage-speedup N   some row's cycle-counted forwarding-stage
//                           speedup must reach N. Excludes event-queue /
//                           parse costs both legs share; still wall-time
//                           based, so pair with --repeat and run with
//                           --jobs 1 on release runners.
//   --min-speedup N         some row's whole-sim wall speedup must reach
//                           N. Noisiest; meaningless under sanitizers or
//                           --jobs > 1, where wall clocks overlap.
// --routers N swaps the sweep for one ~N-router row.
#include <algorithm>
#include <array>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <functional>
#include <iomanip>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "analysis/invariant_auditor.h"
#include "analysis/table.h"
#include "bench_util.h"
#include "cbt/domain.h"
#include "common/cycle_clock.h"
#include "exec/pdes/runtime.h"
#include "netsim/topologies.h"

namespace {

using namespace cbt;  // NOLINT

/// Group index -> multicast address (239.12.x.y — E12's block).
Ipv4Address GroupAddress(std::uint32_t g) {
  return Ipv4Address(239, 12, static_cast<std::uint8_t>((g >> 8) & 0xff),
                     static_cast<std::uint8_t>(g & 0xff));
}

/// Short query timers so membership is live well inside the warmup.
igmp::IgmpConfig DataplaneIgmpConfig() {
  igmp::IgmpConfig config;
  config.query_interval = 15 * kSecond;
  config.query_response_interval = 4 * kSecond;
  return config;
}

struct RowSpec {
  std::string label;
  int side = 8;                 // grid side; side*side routers
  std::uint32_t groups = 4;
  std::uint32_t senders = 2;    // non-member source hosts
  std::uint32_t members = 4;    // member hosts per group
  std::uint32_t packets = 100;  // packets per (sender, group) stream
  std::uint32_t payload_bytes = 1024;  // application payload per packet
  std::uint64_t seed = 1;
};

struct LegResult {
  std::uint64_t sent = 0;       // sender SendToGroup calls
  std::uint64_t delivered = 0;  // member-host receive records
  std::uint64_t hops = 0;       // forwarded_tree + delivered_lan + relayed
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_invalidates = 0;
  std::uint64_t cache_occupancy = 0;
  std::uint64_t digest = 0;  // FNV-1a over every member's receive stream
  bool audit_clean = false;
  double wall_s = 0;  // traffic window only (warmup excluded)
  // Forwarding-stage cycle totals (CbtConfig::time_dataplane brackets):
  // the cost of the data-plane handlers alone, with the event queue,
  // datagram parsing and host-side processing excluded. This is the
  // "hop-forwarding throughput" the fast path actually optimizes.
  std::uint64_t stage_cycles = 0;
  std::uint64_t stage_calls = 0;
  // Arena buffer stagings during the traffic window: a deterministic,
  // structural count of per-packet copies (encode-once and zero-copy
  // transit shrink it; the slow path's vector round-trips inflate it).
  std::uint64_t arena_makes = 0;
};

struct RowResult {
  RowSpec spec;
  LegResult fast;
  LegResult slow;
  bool ran_fast = false;
  bool ran_slow = false;
};

constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

void FnvMix(std::uint64_t& h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (i * 8)) & 0xff;
    h *= kFnvPrime;
  }
}

LegResult RunLeg(const RowSpec& spec, core::DataplaneMode dataplane,
                 int shards) {
  LegResult leg;

  // Destroyed after the domain: timer destructors must still route
  // through the installed PDES backend (same pattern as bench_chaos_soak).
  std::unique_ptr<exec::pdes::Runtime> pdes;

  netsim::Simulator sim(spec.seed);
  netsim::Topology topo = netsim::MakeGrid(sim, spec.side, spec.side);

  core::CbtConfig cbt_config;
  cbt_config.dataplane = dataplane;
  // Both legs pay the same two-rdtsc bracket per hop, so the stage ratio
  // is conservative (the constant overhead shrinks it, never grows it).
  cbt_config.time_dataplane = true;
  core::CbtDomain domain(sim, topo, cbt_config, DataplaneIgmpConfig());
  if (shards > 0) {
    pdes = std::make_unique<exec::pdes::Runtime>(sim, shards);
    pdes->Install();
    domain.ShardRoutes(pdes->region_count(),
                       [&pdes](NodeId id) { return pdes->RegionOf(id); });
  }

  const auto lan_count = static_cast<std::uint32_t>(topo.router_lans.size());
  for (std::uint32_t g = 0; g < spec.groups; ++g) {
    const std::uint32_t at = ((g + 1) * lan_count) / (spec.groups + 1);
    domain.RegisterGroup(GroupAddress(g),
                         {topo.routers[std::min(at, lan_count - 1)]});
  }

  // Member hosts spread across the grid, offset per group so trees
  // differ; creation order is the digest fold order.
  std::vector<core::HostAgent*> receivers;
  for (std::uint32_t g = 0; g < spec.groups; ++g) {
    for (std::uint32_t m = 0; m < spec.members; ++m) {
      const std::uint32_t lan =
          ((m * lan_count) / spec.members + g * 7) % lan_count;
      core::HostAgent& host = domain.AddHost(
          topo.router_lans[lan],
          "m" + std::to_string(g) + "_" + std::to_string(m));
      receivers.push_back(&host);
      const Ipv4Address group = GroupAddress(g);
      sim.Schedule(kSecond, [&host, group] { host.JoinGroup(group); });
    }
  }
  // Non-member senders on the tail LANs: every packet exercises the
  // off-tree relay before it ever reaches the shared tree.
  std::vector<core::HostAgent*> senders;
  for (std::uint32_t s = 0; s < spec.senders; ++s) {
    senders.push_back(&domain.AddHost(
        topo.router_lans[(lan_count - 1 - s) % lan_count],
        "src" + std::to_string(s)));
  }

  domain.Start();
  const SimDuration warmup = 30 * kSecond;
  sim.RunUntil(warmup);
  // Windowed measurement: drop warmup control traffic from every
  // counter the row reports.
  sim.ResetCounters();

  const SimDuration window = 60 * kSecond;
  const SimDuration period =
      std::max<SimDuration>(1, window / std::max<std::uint32_t>(1, spec.packets));
  std::vector<std::uint8_t> payload(std::max<std::uint32_t>(
      12, spec.payload_bytes));
  std::function<void(std::uint32_t, std::uint32_t, std::uint32_t)> pump =
      [&](std::uint32_t s, std::uint32_t g, std::uint32_t seq) {
        payload[0] = static_cast<std::uint8_t>(seq >> 24);
        payload[1] = static_cast<std::uint8_t>(seq >> 16);
        payload[2] = static_cast<std::uint8_t>(seq >> 8);
        payload[3] = static_cast<std::uint8_t>(seq);
        payload[4] = static_cast<std::uint8_t>(g >> 8);
        payload[5] = static_cast<std::uint8_t>(g);
        payload[6] = static_cast<std::uint8_t>(s >> 8);
        payload[7] = static_cast<std::uint8_t>(s);
        senders[s]->SendToGroup(GroupAddress(g), payload);
        ++leg.sent;
        if (seq + 1 < spec.packets) {
          sim.Schedule(period, [&pump, s, g, seq] { pump(s, g, seq + 1); });
        }
      };
  for (std::uint32_t s = 0; s < spec.senders; ++s) {
    for (std::uint32_t g = 0; g < spec.groups; ++g) {
      // Stagger streams inside one period so sends interleave.
      const std::uint32_t stream = s * spec.groups + g;
      sim.Schedule((period * stream) / (spec.senders * spec.groups),
                   [&pump, s, g] { pump(s, g, 0); });
    }
  }

  const std::uint64_t makes_before = sim.packet_arena().total_makes();
  const auto wall_start = std::chrono::steady_clock::now();
  sim.RunUntil(warmup + window);
  leg.arena_makes = sim.packet_arena().total_makes() - makes_before;
  leg.wall_s = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                             wall_start)
                   .count();

  leg.audit_clean =
      analysis::RunUntilInvariantsHold(domain, sim.Now() + 60 * kSecond)
          .has_value();

  for (const NodeId id : domain.router_ids()) {
    const core::RouterStats& rs = domain.router(id).stats();
    leg.hops += rs.data_forwarded_tree + rs.data_delivered_lan +
                rs.data_nonmember_relayed;
    leg.cache_hits += rs.dataplane_cache_hits;
    leg.cache_misses += rs.dataplane_cache_misses;
    leg.cache_invalidates += rs.dataplane_cache_invalidates;
    leg.cache_occupancy += rs.dataplane_cache_occupancy;
    leg.stage_cycles += rs.dataplane_stage_cycles;
    leg.stage_calls += rs.dataplane_stage_calls;
  }

  // The cross-leg differential: fold every member's receive stream, in
  // receive order, into one digest. Fast and slow must agree bit for bit.
  std::uint64_t digest = kFnvOffset;
  for (const core::HostAgent* host : receivers) {
    for (const core::HostAgent::Received& r : host->received()) {
      FnvMix(digest, r.group.bits());
      FnvMix(digest, r.src.bits());
      FnvMix(digest, static_cast<std::uint64_t>(r.time));
      FnvMix(digest, static_cast<std::uint64_t>(r.bytes));
      FnvMix(digest, r.payload_head);
      ++leg.delivered;
    }
  }
  leg.digest = digest;
  return leg;
}

/// rdtsc ticks per second, measured against steady_clock over ~50 ms.
double MeasureCyclesPerSecond() {
  const auto t0 = std::chrono::steady_clock::now();
  const std::uint64_t c0 = CycleNow();
  while (std::chrono::steady_clock::now() - t0 <
         std::chrono::milliseconds(50)) {
  }
  const std::uint64_t c1 = CycleNow();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return elapsed > 0 ? static_cast<double>(c1 - c0) / elapsed : 1e9;
}

std::string DigestHex(std::uint64_t digest) {
  std::ostringstream out;
  out << std::hex << std::setw(16) << std::setfill('0') << digest;
  return out.str();
}

}  // namespace

int main(int argc, char** argv) {
  bench::Options opts("dataplane",
                      "flow-cache fast path vs slow-path forwarding oracle");
  opts.json_path = "BENCH_dataplane.json";
  std::string dataplane_name = "both";
  int routers = 0;       // >0: replace the sweep with one ~N-router row
  int packets = 0;       // >0: override packets per stream
  int payload_bytes = 0; // >0: override application payload size
  int groups = 0;        // >0: override groups per row
  int senders = 0;       // >0: override sender hosts per row
  int members = 0;       // >0: override member hosts per group
  int min_speedup = 0;   // >0: require best-row speedup >= N (exit 3)
  int min_stage_speedup = 0;  // >0: same gate on the forwarding stage
  int min_copy_reduction = 0;  // >0: require slow/fast arena-copy ratio
  bool deterministic = false;
  opts.Str("dataplane", &dataplane_name,
           "legs to run: both (differential) | fast | slow");
  opts.Int("routers", &routers,
           "custom row: one ~N-router grid instead of the sweep");
  opts.Int("packets", &packets, "packets per (sender, group) stream");
  opts.Int("bytes", &payload_bytes, "application payload bytes per packet");
  opts.Int("groups", &groups, "multicast groups per row");
  opts.Int("senders", &senders, "non-member sender hosts per row");
  opts.Int("members", &members, "member hosts per group");
  opts.Int("min-speedup", &min_speedup,
           "fail (exit 3) unless the largest row's fast-over-slow "
           "speedup reaches N (whole-sim wall clock; use --jobs 1)");
  opts.Int("min-stage-speedup", &min_stage_speedup,
           "fail (exit 3) unless some row's fast-over-slow "
           "FORWARDING-STAGE speedup reaches N (cycle-counted handlers "
           "only; the hop-forwarding throughput gate)");
  opts.Int("min-copy-reduction", &min_copy_reduction,
           "fail (exit 3) unless every row stages at least N times fewer "
           "arena buffers fast than slow (deterministic structural gate: "
           "immune to runner noise, sanitizers and --jobs; classic engine "
           "only — the shard runtime stages into region arenas and "
           "reports 0 copies)");
  opts.Flag("deterministic", &deterministic,
            "omit wall-clock throughput from the json report so stdout "
            "AND --json are byte-identical across reruns");
  opts.EnableShards();
  opts.Parse(argc, argv);
  if (dataplane_name != "both" && dataplane_name != "fast" &&
      dataplane_name != "slow") {
    std::cerr << "bench_dataplane: unknown --dataplane '" << dataplane_name
              << "' (known: both fast slow)\n";
    return 2;
  }
  const bool run_fast = dataplane_name != "slow";
  const bool run_slow = dataplane_name != "fast";
  if ((min_speedup > 0 || min_stage_speedup > 0 || min_copy_reduction > 0) &&
      !(run_fast && run_slow)) {
    std::cerr << "bench_dataplane: the --min-* gates need --dataplane both\n";
    return 2;
  }

  bench::TraceSession trace(opts.trace_path);

  // Row plan; --repeat replays it with seeds seed, seed+1, ...
  std::vector<RowSpec> specs;
  for (int rep = 0; rep < opts.repeat; ++rep) {
    const std::uint64_t seed = opts.seed + static_cast<std::uint64_t>(rep);
    const std::string tag = opts.repeat > 1 ? "/s" + std::to_string(seed) : "";
    if (routers > 0) {
      const int side = std::max(
          2, static_cast<int>(
                 std::ceil(std::sqrt(static_cast<double>(routers)))));
      specs.push_back({"sweep-" + std::to_string(side * side) + "r" + tag,
                       side, 8, 4, 8, 200, 1024, seed});
    } else if (opts.smoke) {
      specs.push_back({"sweep-64r" + tag, 8, 4, 2, 4, 60, 1024, seed});
    } else {
      specs.push_back({"sweep-64r" + tag, 8, 4, 2, 4, 150, 1024, seed});
      specs.push_back({"sweep-256r" + tag, 16, 8, 3, 6, 150, 1024, seed});
      specs.push_back({"sweep-1024r" + tag, 32, 8, 4, 8, 200, 1024, seed});
    }
    for (RowSpec& spec : specs) {
      if (packets > 0) spec.packets = static_cast<std::uint32_t>(packets);
      if (payload_bytes > 0) {
        spec.payload_bytes = static_cast<std::uint32_t>(payload_bytes);
      }
      if (groups > 0) spec.groups = static_cast<std::uint32_t>(groups);
      if (senders > 0) spec.senders = static_cast<std::uint32_t>(senders);
      if (members > 0) spec.members = static_cast<std::uint32_t>(members);
    }
  }

  exec::Pool pool(opts.jobs);
  bench::ExecReport exec_report(opts.bench_name());
  exec::SweepOptions sweep = bench::MakeSweepOptions(opts, trace);
  sweep.seeds.reserve(specs.size());
  for (const RowSpec& spec : specs) sweep.seeds.push_back(spec.seed);

  std::vector<RowResult> results;
  const exec::SweepTiming timing = exec::RunSweep(
      pool, specs.size(), sweep,
      [&](exec::RunContext& ctx) {
        RowResult row;
        row.spec = specs[ctx.index];
        // Slow leg first so the fast leg's wall clock benefits from a
        // warm allocator — biasing against, not toward, the speedup.
        if (run_slow) {
          row.slow = RunLeg(row.spec, core::DataplaneMode::kSlow, opts.shards);
          row.ran_slow = true;
        }
        if (run_fast) {
          row.fast = RunLeg(row.spec, core::DataplaneMode::kFast, opts.shards);
          row.ran_fast = true;
        }
        return row;
      },
      [&](exec::RunContext& ctx, RowResult row) {
        results.push_back(std::move(row));
        trace.Adopt(std::move(ctx.trace));
      });
  exec_report.Add("dataplane", timing);
  exec_report.WriteIfRequested(opts);

  analysis::Table rows({"row", "path", "routers", "groups", "senders",
                        "members", "sent", "hops", "delivered", "digest",
                        "cache hit", "cache miss", "cache inval", "copies",
                        "audit"});
  const auto add_leg = [&rows](const RowSpec& spec, const char* path,
                               const LegResult& leg) {
    rows.AddRow({spec.label, path, analysis::Table::Num(spec.side * spec.side),
                 analysis::Table::Num(spec.groups),
                 analysis::Table::Num(spec.senders),
                 analysis::Table::Num(spec.members),
                 analysis::Table::Num(leg.sent), analysis::Table::Num(leg.hops),
                 analysis::Table::Num(leg.delivered), DigestHex(leg.digest),
                 analysis::Table::Num(leg.cache_hits),
                 analysis::Table::Num(leg.cache_misses),
                 analysis::Table::Num(leg.cache_invalidates),
                 analysis::Table::Num(leg.arena_makes),
                 leg.audit_clean ? "clean" : "VIOLATIONS"});
  };
  for (const RowResult& r : results) {
    if (r.ran_fast) add_leg(r.spec, "fast", r.fast);
    if (r.ran_slow) add_leg(r.spec, "slow", r.slow);
  }

  if (!opts.csv) {
    std::cout << "Data-plane fast path: seed=" << opts.seed << ", legs="
              << dataplane_name << ", 60 s traffic per row\n\n";
  }
  bench::Emit(rows, opts.csv, "rows");

  // The differential itself: identical delivery, both legs audit-clean.
  bool delivery_match = true;
  for (const RowResult& r : results) {
    if (r.ran_fast && !r.fast.audit_clean) delivery_match = false;
    if (r.ran_slow && !r.slow.audit_clean) delivery_match = false;
    if (!(r.ran_fast && r.ran_slow)) continue;
    if (r.fast.digest != r.slow.digest ||
        r.fast.delivered != r.slow.delivered || r.fast.sent != r.slow.sent) {
      delivery_match = false;
      std::cerr << "bench_dataplane: " << r.spec.label
                << " fast/slow delivery DIVERGED: digest "
                << DigestHex(r.fast.digest) << " vs "
                << DigestHex(r.slow.digest) << ", delivered "
                << r.fast.delivered << " vs " << r.slow.delivered << "\n";
    }
  }

  // Wall-clock and forwarding-stage throughput (nondeterministic;
  // stderr + json only). The stage numbers come from cycle brackets
  // around the data-plane handlers, so they exclude the event queue,
  // parsing and host processing that both legs pay identically.
  const double cycles_per_s = MeasureCyclesPerSecond();
  // Wall gates use the BEST row: with --repeat the sweep re-runs each
  // config under fresh seeds, and one quiet run is enough to prove the
  // fast path is intact (shared CI runners routinely steal 30%+ of a
  // single window). The copy ratio has no such escape hatch — it is a
  // deterministic structural count, so every row must clear it.
  double best_speedup = 0;
  double best_stage_speedup = 0;
  double worst_copy_ratio = 0;
  for (const RowResult& r : results) {
    if (!(r.ran_fast && r.ran_slow)) continue;
    if (r.fast.arena_makes > 0) {
      const double ratio = static_cast<double>(r.slow.arena_makes) /
                           static_cast<double>(r.fast.arena_makes);
      if (worst_copy_ratio == 0 || ratio < worst_copy_ratio) {
        worst_copy_ratio = ratio;
      }
    }
    if (r.fast.wall_s <= 0 || r.fast.hops == 0 || r.slow.hops == 0) continue;
    const double fast_ns = r.fast.wall_s * 1e9 / r.fast.hops;
    const double slow_ns = r.slow.wall_s * 1e9 / r.slow.hops;
    const double speedup = fast_ns > 0 ? slow_ns / fast_ns : 0;
    if (speedup > best_speedup) best_speedup = speedup;
    std::cerr << r.spec.label << ": fast " << fast_ns << " ns/hop ("
              << r.fast.hops / r.fast.wall_s << " hops/s), slow " << slow_ns
              << " ns/hop = " << speedup << "x speedup (whole sim)\n";
    if (r.fast.stage_cycles > 0 && r.slow.stage_cycles > 0) {
      const double fast_stage_ns =
          r.fast.stage_cycles / cycles_per_s * 1e9 / r.fast.hops;
      const double slow_stage_ns =
          r.slow.stage_cycles / cycles_per_s * 1e9 / r.slow.hops;
      const double stage_speedup =
          fast_stage_ns > 0 ? slow_stage_ns / fast_stage_ns : 0;
      if (stage_speedup > best_stage_speedup) {
        best_stage_speedup = stage_speedup;
      }
      std::cerr << r.spec.label << ": forwarding stage fast " << fast_stage_ns
                << " ns/hop, slow " << slow_stage_ns << " ns/hop = "
                << stage_speedup << "x hop-forwarding speedup\n";
    }
  }
  if (worst_copy_ratio > 0) {
    std::cerr << "bench_dataplane: fast path stages " << worst_copy_ratio
              << "x fewer arena buffers than slow (worst row)\n";
  }

  if (!opts.json_path.empty()) {
    bench::JsonReporter report(opts.bench_name());
    report.Param("seed", opts.seed);
    report.Param("repeat", opts.repeat);
    report.Param("dataplane", dataplane_name);
    report.Param("deterministic", deterministic);
    report.Param("delivery_match", delivery_match);
    report.AddTable("rows", rows);
    for (const RowResult& r : results) {
      if (r.ran_fast) {
        report.SeriesNamed("cache.hit_rate", "ratio")
            .Add(r.spec.label,
                 r.fast.cache_hits + r.fast.cache_misses +
                             r.fast.cache_invalidates >
                         0
                     ? static_cast<double>(r.fast.cache_hits) /
                           static_cast<double>(r.fast.cache_hits +
                                               r.fast.cache_misses +
                                               r.fast.cache_invalidates)
                     : 0);
        report.SeriesNamed("cache.occupancy", "entries")
            .Add(r.spec.label, static_cast<double>(r.fast.cache_occupancy));
      }
      if (r.ran_fast && r.ran_slow && r.fast.arena_makes > 0) {
        // Deterministic even under --jobs: buffer stagings are a
        // structural property of the forwarding paths, not a timing.
        report.SeriesNamed("perf.copy_reduction", "x")
            .Add(r.spec.label, static_cast<double>(r.slow.arena_makes) /
                                   static_cast<double>(r.fast.arena_makes));
      }
    }
    if (!deterministic) {
      for (const RowResult& r : results) {
        if (r.ran_fast && r.fast.wall_s > 0 && r.fast.hops > 0) {
          report.SeriesNamed("perf.ns_per_hop.fast", "ns")
              .Add(r.spec.label, r.fast.wall_s * 1e9 / r.fast.hops);
          report.SeriesNamed("perf.packets_per_second.fast", "pkt/s")
              .Add(r.spec.label, r.fast.sent / r.fast.wall_s);
        }
        if (r.ran_slow && r.slow.wall_s > 0 && r.slow.hops > 0) {
          report.SeriesNamed("perf.ns_per_hop.slow", "ns")
              .Add(r.spec.label, r.slow.wall_s * 1e9 / r.slow.hops);
        }
        if (r.ran_fast && r.ran_slow && r.fast.wall_s > 0 &&
            r.slow.wall_s > 0 && r.fast.hops > 0 && r.slow.hops > 0) {
          const double fast_ns = r.fast.wall_s * 1e9 / r.fast.hops;
          const double slow_ns = r.slow.wall_s * 1e9 / r.slow.hops;
          report.SeriesNamed("perf.speedup", "x")
              .Add(r.spec.label, fast_ns > 0 ? slow_ns / fast_ns : 0);
        }
        if (r.ran_fast && r.fast.stage_cycles > 0 && r.fast.hops > 0) {
          report.SeriesNamed("perf.stage_ns_per_hop.fast", "ns")
              .Add(r.spec.label,
                   r.fast.stage_cycles / cycles_per_s * 1e9 / r.fast.hops);
        }
        if (r.ran_slow && r.slow.stage_cycles > 0 && r.slow.hops > 0) {
          report.SeriesNamed("perf.stage_ns_per_hop.slow", "ns")
              .Add(r.spec.label,
                   r.slow.stage_cycles / cycles_per_s * 1e9 / r.slow.hops);
        }
        if (r.ran_fast && r.ran_slow && r.fast.stage_cycles > 0 &&
            r.slow.stage_cycles > 0 && r.fast.hops > 0 && r.slow.hops > 0) {
          const double fast_stage =
              static_cast<double>(r.fast.stage_cycles) / r.fast.hops;
          const double slow_stage =
              static_cast<double>(r.slow.stage_cycles) / r.slow.hops;
          report.SeriesNamed("perf.stage_speedup", "x")
              .Add(r.spec.label,
                   fast_stage > 0 ? slow_stage / fast_stage : 0);
        }
      }
    }
    report.WriteFile(opts.json_path);
  }

  if (!delivery_match) return 3;
  if (min_copy_reduction > 0 && worst_copy_ratio < min_copy_reduction) {
    std::cerr << "bench_dataplane: arena-copy reduction " << worst_copy_ratio
              << "x is below the required " << min_copy_reduction << "x\n";
    return 3;
  }
  if (min_speedup > 0 && best_speedup < min_speedup) {
    std::cerr << "bench_dataplane: best-row speedup " << best_speedup
              << "x is below the required " << min_speedup << "x\n";
    return 3;
  }
  if (min_stage_speedup > 0 && best_stage_speedup < min_stage_speedup) {
    std::cerr << "bench_dataplane: best-row forwarding-stage speedup "
              << best_stage_speedup << "x is below the required "
              << min_stage_speedup << "x\n";
    return 3;
  }
  return 0;
}
