# Churn-scale determinism differential (ctest, label bench-smoke).
#
# Under --deterministic (wall-clock / RSS series omitted), the
# aggregate-model bench must produce byte-identical stdout AND
# BENCH_churn_scale.json for --jobs 1 vs --jobs 4 and for --shards 1 vs
# --shards 4 (the PDES contract is per-N determinism for N >= 1; the
# classic serial engine draws from one global RNG stream and is pinned
# by the --jobs pair instead) — the aggregate's coalesced timers and
# the churn runner's batching must not leak scheduling nondeterminism
# into the wire traffic or the report.
#
# Invoked as:
#   cmake -DCHURN_SCALE=<path> -DWORK_DIR=<dir> -P churn_differential.cmake

foreach(var CHURN_SCALE WORK_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "missing -D${var}=")
  endif()
endforeach()
file(MAKE_DIRECTORY "${WORK_DIR}")

function(run_variant name)
  set(json "${WORK_DIR}/${name}.json")
  execute_process(
    COMMAND ${CHURN_SCALE} --smoke --deterministic --repeat 2 --seed 1
      ${ARGN} --json ${json}
      --exec-json ${WORK_DIR}/${name}.exec.json
    OUTPUT_VARIABLE stdout
    ERROR_VARIABLE stderr  # json/calibration status goes to stderr
    RESULT_VARIABLE code)
  if(NOT code EQUAL 0)
    message(FATAL_ERROR "${name}: exit ${code}\n${stderr}")
  endif()
  file(WRITE "${WORK_DIR}/${name}.txt" "${stdout}")
  set(${name}_out "${stdout}" PARENT_SCOPE)
  file(READ "${json}" json_text)
  set(${name}_json "${json_text}" PARENT_SCOPE)
endfunction()

function(compare_variants base other)
  if(NOT ${base}_out STREQUAL ${other}_out)
    message(FATAL_ERROR
      "${other}: stdout differs from ${base} (dumps in ${WORK_DIR})")
  endif()
  if(NOT ${base}_json STREQUAL ${other}_json)
    message(FATAL_ERROR
      "${other}: BENCH json differs from ${base} (${WORK_DIR})")
  endif()
  message(STATUS "${other}: byte-identical to ${base}")
endfunction()

run_variant(jobs1 --jobs 1)
run_variant(jobs4 --jobs 4)
run_variant(shards1 --shards 1)
run_variant(shards4 --shards 4)
compare_variants(jobs1 jobs4)
compare_variants(shards1 shards4)

# The full (non-deterministic-mode) report must record the calibration
# perf series the experiment write-up consumes.
execute_process(
  COMMAND ${CHURN_SCALE} --smoke --jobs 1 --seed 1
    --json ${WORK_DIR}/full.json
    --exec-json ${WORK_DIR}/full.exec.json
  OUTPUT_QUIET ERROR_QUIET
  RESULT_VARIABLE full_code)
if(NOT full_code EQUAL 0)
  message(FATAL_ERROR "full-mode run failed: exit ${full_code}")
endif()
file(READ "${WORK_DIR}/full.json" full_json)
foreach(key perf.wall_seconds memory.peak_rss_bytes calibration_speedup)
  if(NOT full_json MATCHES "${key}")
    message(FATAL_ERROR "full-mode BENCH json is missing ${key}")
  endif()
endforeach()
message(STATUS "full-mode report records wall-clock, RSS, and speedup")
