// Experiment E2 — tree cost: shared tree vs per-source shortest-path
// trees as group size grows.
//
// The SIGCOMM'93 evaluation's figure family: total links consumed by one
// CBT shared tree versus (a) a single source's SPT and (b) the union of
// all senders' SPTs (what per-source schemes actually install).
//
// Expected shape: one shared tree costs about the same as one SPT
// (slightly more links than the best single SPT at small member counts);
// aggregate per-source cost grows ~linearly with the number of senders,
// while the shared tree is paid once.
#include <iostream>

#include "analysis/table.h"
#include "bench_util.h"
#include "analysis/tree_metrics.h"
#include "cbt/core_selection.h"
#include "netsim/topologies.h"
#include "routing/route_manager.h"

namespace {

using namespace cbt;  // NOLINT

constexpr int kRouters = 100;
constexpr int kSeeds = 5;

}  // namespace

int main(int argc, char** argv) {
  cbt::bench::Options opts("tree_cost",
                           "E2: shared-tree vs per-source tree cost");
  opts.Parse(argc, argv);
  cbt::bench::TraceSession trace(opts.trace_path);
  cbt::exec::Pool pool(opts.jobs);
  cbt::bench::ExecReport exec_report(opts.bench_name());
  const bool csv = opts.csv;

  analysis::Table first_table({""});
  const int rc = cbt::bench::RunRepeated(
      pool, opts, trace, exec_report, [&](cbt::exec::RunContext& ctx) -> int {
  std::ostream& out = ctx.out;
  out << "E2: tree cost (links) vs group size — Waxman n=" << kRouters
            << ", averaged over " << kSeeds << " seeds\n"
            << "(senders = members; 'SPT union' is the per-source state a "
               "DVMRP-like scheme installs)\n\n";

  analysis::Table table({"members", "shared(centre)", "shared(random)",
                         "single SPT", "SPT union", "union/shared"});

  for (const int members : {5, 10, 20, 40, 80}) {
    double shared_centre = 0, shared_random = 0, single_spt = 0, union_spt = 0;
    for (int s = 0; s < kSeeds; ++s) {
      netsim::Simulator sim(1);
      netsim::WaxmanParams params;
      params.n = kRouters;
      params.seed = 100 + static_cast<std::uint64_t>(s);
      netsim::Topology topo = netsim::MakeWaxman(sim, params);
      routing::RouteManager routes(sim);
      Rng rng(7 * static_cast<std::uint64_t>(s) + 3);

      std::vector<NodeId> member_routers;
      for (const std::size_t idx : rng.SampleWithoutReplacement(
               topo.routers.size(), (std::size_t)members)) {
        member_routers.push_back(topo.routers[idx]);
      }

      core_selection::PlacementInput in;
      in.routes = &routes;
      in.routers = topo.routers;
      in.rng = &rng;
      const NodeId centre =
          core_selection::MakeStrategy("centre")->Place(in, 1).cores.front();
      const NodeId random_core =
          core_selection::MakeStrategy("random")->Place(in, 1).cores.front();

      shared_centre += (double)analysis::BuildSharedTree(routes, centre,
                                                         member_routers)
                           .Cost();
      shared_random += (double)analysis::BuildSharedTree(routes, random_core,
                                                         member_routers)
                           .Cost();
      single_spt += (double)analysis::BuildSourceTree(
                        routes, member_routers.front(), member_routers)
                        .Cost();

      // Union of all members' source trees (every member may send).
      std::set<std::pair<NodeId, NodeId>> union_edges;
      for (const NodeId sender : member_routers) {
        const auto tree =
            analysis::BuildSourceTree(routes, sender, member_routers);
        const auto edges = tree.Edges();
        union_edges.insert(edges.begin(), edges.end());
      }
      union_spt += (double)union_edges.size();
    }
    shared_centre /= kSeeds;
    shared_random /= kSeeds;
    single_spt /= kSeeds;
    union_spt /= kSeeds;
    table.AddRow({analysis::Table::Num(members),
                  analysis::Table::Fixed(shared_centre, 1),
                  analysis::Table::Fixed(shared_random, 1),
                  analysis::Table::Fixed(single_spt, 1),
                  analysis::Table::Fixed(union_spt, 1),
                  analysis::Table::Fixed(union_spt / shared_centre)});
  }
  cbt::bench::Emit(table, csv, "E2 tree cost", out);
  out << "\nExpected shape: shared-tree cost tracks a single SPT "
         "(within ~1.2x); the per-source union costs several times "
         "more links and the gap widens with group size.\n";
  if (ctx.index == 0) first_table = table;
  return 0;
      });
  if (!opts.json_path.empty()) {
    analysis::Table& table = first_table;
    cbt::bench::JsonReporter report(opts.bench_name());
    report.Param("routers", kRouters);
    report.Param("seeds", kSeeds);
    report.AddTable("tree_cost", table, "links");
    report.WriteFile(opts.json_path);
  }
  exec_report.WriteIfRequested(opts);
  return rc;
}
