// Experiment E3 — delay penalty of the shared tree vs core placement.
//
// For every ordered member pair, the ratio of member-to-member delay
// along the shared tree to the unicast shortest-path delay. Per-source
// trees give ratio 1.0 from the sender by construction; the CBT
// architecture's argument is that a well-placed core keeps the shared
// tree's penalty small. Sweeps the placement strategies of
// cbt/core_selection.h (the paper leaves placement to "ongoing work").
//
// Expected shape: centre placement ~lowest mean ratio; random placement
// visibly worse (both mean and max); hash-over-candidates between the
// two; all ratios bounded by ~2 on average (the classic KMB/centre
// bound intuition).
#include <iostream>

#include "analysis/table.h"
#include "bench_util.h"
#include "analysis/tree_metrics.h"
#include "cbt/core_selection.h"
#include "netsim/topologies.h"
#include "routing/route_manager.h"

namespace {

using namespace cbt;  // NOLINT

constexpr int kRouters = 100;
constexpr int kMembers = 20;
constexpr int kSeeds = 5;

struct Accumulated {
  double mean = 0, max = 0;
};

}  // namespace

int main(int argc, char** argv) {
  cbt::bench::Options opts("delay_ratio",
                           "E3: shared-tree delay penalty vs core placement");
  opts.Parse(argc, argv);
  cbt::bench::TraceSession trace(opts.trace_path);
  cbt::exec::Pool pool(opts.jobs);
  cbt::bench::ExecReport exec_report(opts.bench_name());
  const bool csv = opts.csv;

  analysis::Table first_table({""});
  const int rc = cbt::bench::RunRepeated(
      pool, opts, trace, exec_report, [&](cbt::exec::RunContext& ctx) -> int {
  std::ostream& out = ctx.out;
  out << "E3: shared-tree delay penalty vs core placement — Waxman n="
            << kRouters << ", " << kMembers << " members, " << kSeeds
            << " seeds\n(ratio = tree-path delay / unicast delay over all "
               "member pairs; SPT reference = 1.0)\n\n";

  analysis::Table table(
      {"placement", "mean ratio", "max ratio", "tree cost"});

  constexpr int kPlacements = 5;
  const char* names[kPlacements] = {"delay-centre", "hop-centre",
                                    "highest-degree", "hash(4 cands)",
                                    "random"};
  Accumulated acc[kPlacements];
  double cost[kPlacements] = {};
  double unidir_mean = 0, unidir_max = 0;

  for (int s = 0; s < kSeeds; ++s) {
    netsim::Simulator sim(1);
    netsim::WaxmanParams params;
    params.n = kRouters;
    params.seed = 200 + static_cast<std::uint64_t>(s);
    netsim::Topology topo = netsim::MakeWaxman(sim, params);
    routing::RouteManager routes(sim);
    Rng rng(31 * static_cast<std::uint64_t>(s) + 5);

    std::vector<NodeId> member_routers;
    for (const std::size_t idx : rng.SampleWithoutReplacement(
             topo.routers.size(), (std::size_t)kMembers)) {
      member_routers.push_back(topo.routers[idx]);
    }

    // Hash placement models per-group rotation over delay-centre
    // candidates; sample it across several group addresses.
    const Ipv4Address group(
        239, 77, 0, static_cast<std::uint8_t>(1 + s * 37));
    core_selection::PlacementInput in;
    in.sim = &sim;
    in.routes = &routes;
    in.routers = topo.routers;
    in.group = group;
    in.rng = &rng;
    const auto pick = [&](const char* strategy) {
      return core_selection::MakeStrategy(strategy)->Place(in, 1).cores.front();
    };
    core_selection::PlacementInput hash_in = in;
    hash_in.routers =
        core_selection::MakeStrategy("delay-centre")->Place(in, 4).cores;
    const NodeId cores[kPlacements] = {
        pick("delay-centre"),
        pick("centre"),
        pick("degree"),
        core_selection::MakeStrategy("hash")->Place(hash_in, 1).cores.front(),
        pick("random"),
    };

    for (int p = 0; p < kPlacements; ++p) {
      const auto tree =
          analysis::BuildSharedTree(routes, cores[p], member_routers);
      const auto ratio =
          analysis::SharedTreeDelayRatio(routes, tree, member_routers);
      acc[p].mean += ratio.mean_ratio;
      acc[p].max += ratio.max_ratio;
      cost[p] += (double)tree.Cost();
    }
    // Ablation: the unidirectional RP-tree variant on the best placement.
    const auto unidir_tree =
        analysis::BuildSharedTree(routes, cores[0], member_routers);
    const auto unidir = analysis::UnidirectionalTreeDelayRatio(
        routes, unidir_tree, member_routers);
    unidir_mean += unidir.mean_ratio;
    unidir_max += unidir.max_ratio;
  }

  for (int p = 0; p < kPlacements; ++p) {
    table.AddRow({names[p], analysis::Table::Fixed(acc[p].mean / kSeeds),
                  analysis::Table::Fixed(acc[p].max / kSeeds),
                  analysis::Table::Fixed(cost[p] / kSeeds, 1)});
  }
  table.AddRow({"unidir RP tree (delay-centre)",
                analysis::Table::Fixed(unidir_mean / kSeeds),
                analysis::Table::Fixed(unidir_max / kSeeds), "-"});
  table.AddRow({"SPT (reference)", "1.00", "1.00", "-"});
  cbt::bench::Emit(table, csv, "E3 delay ratio", out);
  out << "\nExpected shape: mean penalty ~2x unicast across all "
         "placements (consistent with the CBT-era finding that "
         "placement yields only modest differences on random "
         "graphs); delay-centre <= random in the mean, and the "
         "hash rotation over spread candidates pays the most. The "
         "large max ratios come from near-by member pairs forced "
         "via the core — the shared tree's inherent tail cost.\n";
  if (ctx.index == 0) first_table = table;
  return 0;
      });
  if (!opts.json_path.empty()) {
    analysis::Table& table = first_table;
    cbt::bench::JsonReporter report(opts.bench_name());
    report.Param("routers", kRouters);
    report.Param("members", kMembers);
    report.Param("seeds", kSeeds);
    report.AddTable("delay_ratio", table);
    report.WriteFile(opts.json_path);
  }
  exec_report.WriteIfRequested(opts);
  return rc;
}
