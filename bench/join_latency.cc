// Experiment E5 — join latency.
//
// The -03 draft's stated design goal: "we strive to keep join latency to
// an absolute minimum". Two measurements:
//  (a) Figure-1 topology: per-host latency from the IGMP reports hitting
//      the wire to the D-DR's join being acknowledged, replaying the
//      section 2.5/2.6 walkthrough (host B's join terminates early at an
//      on-tree router; the proxy-ack costs nothing extra);
//  (b) line topologies: latency vs router-hop distance to the core — the
//      expected shape is one control RTT, i.e. 2 x one-way path delay
//      (plus the LAN hop), linear in distance.
// Also ablates the proxy-ack optimization (section 2.6): latency is the
// same, but the LAN's D-DR keeps state without it.
#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "analysis/table.h"
#include "bench_util.h"
#include "cbt/domain.h"
#include "exec/pdes/runtime.h"
#include "netsim/topologies.h"

namespace {

using namespace cbt;  // NOLINT

constexpr Ipv4Address kGroup(239, 1, 2, 3);

struct JoinLatency {
  SimDuration dr = -1;    // until the D-DR's join is acknowledged
  SimDuration host = -1;  // until the host sees the join confirmation
};

/// Joins `host` and measures both the DR-side and host-observed latency
/// (the latter includes the -03 section 2.5 confirmation multicast).
JoinLatency MeasureJoin(netsim::Simulator& sim, core::CbtDomain& domain,
                        const std::string& host_name,
                        const std::string& dr_name) {
  std::optional<SimTime> established;
  core::CbtRouter::Callbacks cb;
  cb.on_group_established = [&](Ipv4Address) { established = sim.Now(); };
  domain.router(dr_name).set_callbacks(std::move(cb));
  auto& host = domain.host(host_name);
  const SimTime start = sim.Now();
  host.JoinGroup(kGroup);
  std::optional<SimTime> confirmed;
  while (sim.Now() < start + 30 * kSecond) {
    sim.RunUntil(sim.Now() + kMillisecond);
    if (!confirmed && host.JoinConfirmed(kGroup)) confirmed = sim.Now();
  }
  domain.router(dr_name).set_callbacks({});
  JoinLatency out;
  if (established) out.dr = *established - start;
  if (confirmed) out.host = *confirmed - start;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  // `--routing lazy|eager` selects the unicast recompute strategy so the
  // differential cross-check can pin both modes to identical output.
  bench::Options opts("join_latency", "E5: join latency vs distance to core");
  std::string routing_name = "lazy";
  opts.Str("routing", &routing_name, "unicast recompute: lazy|eager");
  opts.EnableShards();
  opts.Parse(argc, argv);
  const auto routing_mode = routing_name == "eager"
                                ? cbt::routing::RouteManager::Mode::kEager
                                : cbt::routing::RouteManager::Mode::kLazy;

  bench::TraceSession trace(opts.trace_path);
  cbt::exec::Pool pool(opts.jobs);
  bench::ExecReport exec_report(opts.bench_name());

  std::cout << "E5: join latency\n\n(a) Figure-1 walkthrough (1ms link "
               "delays; joins issued sequentially; latency = IGMP report "
               "hop + join/ack round trip)\n\n";

  // (a) is one replica: the four joins share a simulator and are
  // sequential by design (host B's early termination depends on host A's
  // join having built the tree). (b) fans one replica per hop count.
  analysis::Table fig1(
      {"host", "D-DR", "DR latency ms", "host-observed ms", "note"});
  exec_report.Add(
      "figure1",
      cbt::exec::RunSweep(
          pool, 1, bench::MakeSweepOptions(opts, trace),
          [&](cbt::exec::RunContext&) {
            std::vector<std::vector<std::string>> rows;
            netsim::Simulator sim(1);
            netsim::Topology topo = netsim::MakeFigure1(sim);
            // Outlives the domain: timer dtors cancel through the backend.
            std::unique_ptr<cbt::exec::pdes::Runtime> pdes;
            core::CbtDomain domain(sim, topo);
            domain.routes().set_mode(routing_mode);
            if (opts.shards > 0) {
              pdes = std::make_unique<cbt::exec::pdes::Runtime>(sim,
                                                                opts.shards);
              pdes->Install();
              domain.ShardRoutes(pdes->region_count(), [&pdes](NodeId id) {
                return pdes->RegionOf(id);
              });
            }
            domain.RegisterGroup(kGroup, {topo.node("R4"), topo.node("R9")});
            domain.Start();
            sim.RunUntil(kSecond);

            const struct {
              const char* host;
              const char* dr;
              const char* note;
            } cases[] = {
                {"A", "R1", "first join: travels R1-R3-R4"},
                {"B", "R6", "terminates at on-tree R3; proxy-ack to R6"},
                {"G", "R8", "terminates at core R4"},
                {"H", "R10", "travels R10-R9-R8 (R8 on-tree)"},
            };
            for (const auto& c : cases) {
              const JoinLatency d = MeasureJoin(sim, domain, c.host, c.dr);
              rows.push_back(
                  {c.host, c.dr,
                   analysis::Table::Fixed((double)d.dr / kMillisecond, 1),
                   analysis::Table::Fixed((double)d.host / kMillisecond, 1),
                   c.note});
            }
            return rows;
          },
          [&](cbt::exec::RunContext& ctx,
              std::vector<std::vector<std::string>> rows) {
            for (auto& row : rows) fig1.AddRow(std::move(row));
            trace.Adopt(std::move(ctx.trace));
          }));
  fig1.Print(std::cout);

  std::cout << "\n(b) latency vs hop distance to core (line topology, 1ms "
               "links), with and without proxy-ack\n\n";
  analysis::Table line({"hops to core", "latency ms", "expected 2*delay ms",
                        "DR holds state (proxy on)", "DR holds state (off)"});
  const std::vector<int> hop_counts = {1, 2, 4, 6, 8, 10};
  exec_report.Add(
      "line",
      cbt::exec::RunSweep(
          pool, hop_counts.size(), bench::MakeSweepOptions(opts, trace),
          [&](cbt::exec::RunContext& ctx) {
            const int hops = hop_counts[ctx.index];
            double latency_ms = 0;
            bool dr_state_on = false, dr_state_off = false;
            for (const bool proxy : {true, false}) {
              netsim::Simulator sim(1);
              netsim::Topology topo = netsim::MakeLine(sim, hops + 1);
              core::CbtConfig config;
              config.enable_proxy_ack = proxy;
              // Outlives the domain: timer dtors cancel through the backend.
              std::unique_ptr<cbt::exec::pdes::Runtime> pdes;
              core::CbtDomain domain(sim, topo, config);
              domain.routes().set_mode(routing_mode);
              if (opts.shards > 0) {
                pdes = std::make_unique<cbt::exec::pdes::Runtime>(
                    sim, opts.shards);
                pdes->Install();
                domain.ShardRoutes(pdes->region_count(), [&pdes](NodeId id) {
                  return pdes->RegionOf(id);
                });
              }
              domain.RegisterGroup(kGroup, {topo.routers[(std::size_t)hops]});
              domain.Start();
              sim.RunUntil(kSecond);
              auto& host = domain.AddHost(topo.router_lans[0], "m");

              std::optional<SimTime> established;
              core::CbtRouter::Callbacks cb;
              cb.on_group_established = [&](Ipv4Address) {
                established = sim.Now();
              };
              domain.router(topo.routers[0]).set_callbacks(std::move(cb));
              const SimTime start = sim.Now();
              host.JoinGroup(kGroup);
              sim.RunUntil(start + 30 * kSecond);

              if (proxy) {
                latency_ms = established
                                 ? (double)(*established - start) / kMillisecond
                                 : -1;
                dr_state_on = domain.router(topo.routers[0]).IsOnTree(kGroup);
              } else {
                dr_state_off = domain.router(topo.routers[0]).IsOnTree(kGroup);
              }
            }
            // Join travels `hops` links, ack travels them back; the IGMP
            // report adds one LAN delay (1ms) before the DR acts.
            return std::vector<std::string>{
                analysis::Table::Num(hops),
                analysis::Table::Fixed(latency_ms, 1),
                analysis::Table::Fixed(2.0 * hops + 1.0, 1),
                dr_state_on ? "yes" : "no", dr_state_off ? "yes" : "no"};
          },
          [&](cbt::exec::RunContext& ctx, std::vector<std::string> row) {
            line.AddRow(std::move(row));
            trace.Adopt(std::move(ctx.trace));
          }));
  line.Print(std::cout);
  std::cout << "\nExpected shape: latency linear in hop count at ~one "
               "control RTT; proxy-ack does not change latency (a line's "
               "first hop is never on the member LAN, so both columns "
               "hold state here — the Figure-1 B case above shows the "
               "stateless-DR effect).\n";

  if (!opts.json_path.empty()) {
    bench::JsonReporter report(opts.bench_name());
    report.Param("routing", routing_name);
    report.Param("seed", opts.seed);
    report.AddTable("figure1", fig1, "ms");
    report.AddTable("line", line, "ms");
    report.WriteFile(opts.json_path);
  }
  exec_report.WriteIfRequested(opts);
  return 0;
}
