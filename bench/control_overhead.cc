// Experiment E6 — steady-state control overhead.
//
// CBT's standing cost is the keepalive machinery (CBT-ECHO every 30s per
// parent link per group, section 9) — the -03 draft's new aggregation
// (section 8.4) collapses that to one echo per parent neighbour. DVMRP's
// standing cost is periodic re-flood + prune after every prune lifetime.
//
// Workload: 5x5 grid, G groups with 8 member routers each, one low-rate
// sender per group, observed for 10 simulated minutes of steady state.
//
// Expected shape: CBT overhead linear in groups without aggregation,
// ~flat with aggregation; DVMRP overhead driven by data re-flood events
// (and its per-(S,G) prune state).
#include <iostream>

#include "analysis/table.h"
#include "bench_util.h"
#include "baselines/dvmrp_domain.h"
#include "cbt/domain.h"
#include "netsim/topologies.h"

namespace {

using namespace cbt;  // NOLINT

constexpr int kMembersPerGroup = 8;
constexpr SimDuration kObservation = 600 * kSecond;

Ipv4Address GroupAddress(int g) {
  return Ipv4Address(239, 2, 0, static_cast<std::uint8_t>(g + 1));
}

std::uint64_t RunCbt(int groups, bool aggregate) {
  netsim::Simulator sim(5);
  netsim::Topology topo = netsim::MakeGrid(sim, 5, 5);
  core::CbtConfig config;
  config.aggregate_echo = aggregate;
  core::CbtDomain domain(sim, topo, config);
  domain.Start();
  sim.RunUntil(kSecond);

  Rng rng(99);
  for (int g = 0; g < groups; ++g) {
    const Ipv4Address group = GroupAddress(g);
    const auto core_addrs =
        domain.RegisterGroup(group, {topo.routers[12]});  // grid centre
    for (const std::size_t idx : rng.SampleWithoutReplacement(
             topo.routers.size(), kMembersPerGroup)) {
      domain.router(topo.routers[idx]).InitiateJoin(group, core_addrs);
    }
  }
  sim.RunUntil(10 * kSecond);  // trees settle

  // Count only steady-state messages.
  const std::uint64_t before = domain.TotalControlMessages();
  sim.RunUntil(sim.Now() + kObservation);
  return domain.TotalControlMessages() - before;
}

std::uint64_t RunDvmrp(int groups, std::uint64_t* data_transmissions) {
  netsim::Simulator sim(5);
  netsim::Topology topo = netsim::MakeGrid(sim, 5, 5);
  baselines::DvmrpDomain domain(sim, topo);
  domain.Start();
  sim.RunUntil(kSecond);

  Rng rng(99);
  std::vector<core::HostAgent*> senders;
  std::vector<Ipv4Address> sender_groups;
  for (int g = 0; g < groups; ++g) {
    const Ipv4Address group = GroupAddress(g);
    rng.SampleWithoutReplacement(topo.routers.size(), 1);
    for (const std::size_t idx : rng.SampleWithoutReplacement(
             topo.routers.size(), kMembersPerGroup)) {
      domain
          .AddHost(topo.router_lans[idx],
                   "m" + std::to_string(g) + "_" + std::to_string(idx))
          .JoinGroupWithCores(group, {}, 0);
    }
    senders.push_back(&domain.AddHost(topo.router_lans[(std::size_t)g % 25],
                                      "s" + std::to_string(g)));
    sender_groups.push_back(group);
  }
  sim.RunUntil(10 * kSecond);

  const std::uint64_t before = domain.TotalControlMessages();
  std::uint64_t data_before = 0;
  // One packet per group every 60s: each prune-lifetime expiry (120s)
  // re-floods the whole grid.
  for (SimDuration t = 0; t < kObservation; t += 60 * kSecond) {
    sim.Schedule(t, [&senders, &sender_groups] {
      for (std::size_t i = 0; i < senders.size(); ++i) {
        senders[i]->SendToGroup(sender_groups[i],
                                std::vector<std::uint8_t>{1});
      }
    });
  }
  for (const NodeId r : topo.routers) {
    data_before += domain.router(r).stats().data_forwarded;
  }
  sim.RunUntil(sim.Now() + kObservation);
  std::uint64_t data_after = 0;
  for (const NodeId r : topo.routers) {
    data_after += domain.router(r).stats().data_forwarded;
  }
  *data_transmissions = data_after - data_before;
  return domain.TotalControlMessages() - before;
}

}  // namespace

int main(int argc, char** argv) {
  cbt::bench::Options opts("control_overhead",
                           "E6: steady-state control overhead vs DVMRP");
  opts.Parse(argc, argv);
  cbt::bench::TraceSession trace(opts.trace_path);
  cbt::exec::Pool pool(opts.jobs);
  cbt::bench::ExecReport exec_report(opts.bench_name());
  const bool csv = opts.csv;

  analysis::Table first_table({""});
  const int rc = cbt::bench::RunRepeated(
      pool, opts, trace, exec_report, [&](cbt::exec::RunContext& ctx) -> int {
  std::ostream& out = ctx.out;
  out << "E6: steady-state control overhead — 5x5 grid, "
            << kMembersPerGroup << " member routers/group, 10 minutes\n"
            << "(CBT: echo keepalives; DVMRP: prunes+grafts, plus the "
               "data re-flood transmissions its design incurs; senders "
               "send 1 pkt/group/min)\n\n";

  analysis::Table table({"groups", "CBT msgs", "CBT msgs (aggregated echo)",
                         "DVMRP ctl msgs", "DVMRP data txs"});
  for (const int groups : {1, 4, 16, 32}) {
    const std::uint64_t plain = RunCbt(groups, false);
    const std::uint64_t agg = RunCbt(groups, true);
    std::uint64_t dvmrp_data = 0;
    const std::uint64_t dvmrp = RunDvmrp(groups, &dvmrp_data);
    table.AddRow({analysis::Table::Num(groups), analysis::Table::Num(plain),
                  analysis::Table::Num(agg), analysis::Table::Num(dvmrp),
                  analysis::Table::Num(dvmrp_data)});
  }
  cbt::bench::Emit(table, csv, "E6 control overhead", out);
  out << "\nExpected shape: CBT msgs grow ~linearly with groups; the "
         "aggregated column stays near the 1-group cost; DVMRP's "
         "row shows the re-flood data cost per-source trees pay "
         "for statelessness.\n";
  if (ctx.index == 0) first_table = table;
  return 0;
      });
  if (!opts.json_path.empty()) {
    analysis::Table& table = first_table;
    cbt::bench::JsonReporter report(opts.bench_name());
    report.Param("members_per_group", kMembersPerGroup);
    report.AddTable("control_overhead", table, "msgs");
    report.WriteFile(opts.json_path);
  }
  exec_report.WriteIfRequested(opts);
  return rc;
}
