# E12 data-plane fast-path differential (ctest, label bench-smoke).
#
# bench_dataplane runs every row through both forwarding paths and
# itself exits 3 if the fast and slow legs disagree on any delivered
# byte (per-member receive-stream FNV digest) or end audit-dirty, so a
# zero exit IS the fast-vs-slow differential. This script drives that
# assertion over 5 seeds total, checks that --deterministic reruns are
# byte-identical (stdout AND BENCH json), and that single-leg mode
# (--dataplane fast) emits only its own rows.
#
# It also cross-checks the fast path on the two heavy workloads from
# earlier experiments: the chaos soak (failure/recovery traffic; stdout
# must be byte-identical fast vs slow) and the E10 aggregate-churn slice
# with sustained data traffic (delivery columns identical; the trailing
# cache-counter columns legitimately differ — the slow leg never
# populates the flow cache — and are stripped before comparison).
#
# Invoked as:
#   cmake -DDATAPLANE=<path> -DCHAOS_SOAK=<path> -DCHURN_SCALE=<path>
#         -DWORK_DIR=<dir> -P dataplane_differential.cmake

foreach(var DATAPLANE CHAOS_SOAK CHURN_SCALE WORK_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "missing -D${var}=")
  endif()
endforeach()
file(MAKE_DIRECTORY "${WORK_DIR}")

function(run_variant name)
  set(json "${WORK_DIR}/${name}.json")
  execute_process(
    COMMAND ${DATAPLANE} --smoke --deterministic
      ${ARGN} --json ${json}
    OUTPUT_VARIABLE stdout
    ERROR_VARIABLE stderr
    RESULT_VARIABLE code)
  if(NOT code EQUAL 0)
    message(FATAL_ERROR "${name}: exit ${code}\n${stderr}")
  endif()
  file(WRITE "${WORK_DIR}/${name}.txt" "${stdout}")
  set(${name}_out "${stdout}" PARENT_SCOPE)
  file(READ "${json}" json_text)
  set(${name}_json "${json_text}" PARENT_SCOPE)
endfunction()

# Seeds 1+2 (--repeat 2), run twice: the fast/slow digest comparison
# happens inside the bench; the rerun proves determinism. The
# copy-reduction gate asserts the structural win (fast stages >= 2x
# fewer arena buffers) — deterministic, so safe in a smoke test.
run_variant(run_a --seed 1 --repeat 2 --min-copy-reduction 2)
run_variant(run_b --seed 1 --repeat 2 --min-copy-reduction 2)
if(NOT run_a_out STREQUAL run_b_out)
  message(FATAL_ERROR "rerun stdout differs (dumps in ${WORK_DIR})")
endif()
if(NOT run_a_json STREQUAL run_b_json)
  message(FATAL_ERROR "rerun BENCH json differs (${WORK_DIR})")
endif()
if(NOT run_a_json MATCHES "\"delivery_match\": true")
  message(FATAL_ERROR "BENCH json did not record delivery_match=true")
endif()
message(STATUS "seeds 1-2: fast/slow byte-identical, rerun deterministic")

# Seeds 5-7 (--repeat 3) extend the differential to 5 distinct seeds.
run_variant(run_c --seed 5 --repeat 3)
if(NOT run_c_json MATCHES "\"delivery_match\": true")
  message(FATAL_ERROR "seeds 5-7 did not record delivery_match=true")
endif()
message(STATUS "seeds 5-7: fast/slow byte-identical")

# Single-leg mode: a fast-only run must not contain slow rows.
run_variant(fast_only --seed 1 --dataplane fast)
if(fast_only_out MATCHES "slow")
  message(FATAL_ERROR "--dataplane fast still printed slow-path rows")
endif()
message(STATUS "--dataplane fast single-leg mode verified")

# Chaos-soak cross-check: failure/recovery traffic through the fast
# path must reproduce the slow path's stdout byte-for-byte.
function(run_other name binary)
  execute_process(
    COMMAND ${binary} --smoke ${ARGN}
    OUTPUT_VARIABLE stdout
    ERROR_VARIABLE stderr
    RESULT_VARIABLE code)
  if(NOT code EQUAL 0)
    message(FATAL_ERROR "${name}: exit ${code}\n${stderr}")
  endif()
  file(WRITE "${WORK_DIR}/${name}.txt" "${stdout}")
  set(${name}_out "${stdout}" PARENT_SCOPE)
endfunction()

run_other(chaos_fast ${CHAOS_SOAK} --dataplane fast)
run_other(chaos_slow ${CHAOS_SOAK} --dataplane slow)
if(NOT chaos_fast_out STREQUAL chaos_slow_out)
  message(FATAL_ERROR
    "chaos-soak fast/slow stdout differs (dumps in ${WORK_DIR})")
endif()
message(STATUS "chaos soak: fast/slow byte-identical")

# Aggregate-churn slice (E10 with sustained --data-rate traffic): the
# delivery columns must match; the three trailing cache-counter columns
# are fast-path-only and get stripped from both sides.
run_other(churn_fast ${CHURN_SCALE} --deterministic --data-rate 20
  --dataplane fast)
run_other(churn_slow ${CHURN_SCALE} --deterministic --data-rate 20
  --dataplane slow)
string(REGEX REPLACE "( +[0-9]+)( +[0-9]+)( +[0-9]+)(\r?\n)" "\\4"
  churn_fast_stripped "${churn_fast_out}")
string(REGEX REPLACE "( +[0-9]+)( +[0-9]+)( +[0-9]+)(\r?\n)" "\\4"
  churn_slow_stripped "${churn_slow_out}")
if(NOT churn_fast_stripped STREQUAL churn_slow_stripped)
  message(FATAL_ERROR
    "churn-scale fast/slow delivery columns differ (dumps in ${WORK_DIR})")
endif()
message(STATUS "aggregate churn slice: fast/slow delivery identical")
