// Experiment E1 — router forwarding-state scaling.
//
// Reproduces the CBT paper's headline scaling claim: CBT keeps one FIB
// entry per group (O(G)) while flood-and-prune schemes keep per-source
// per-group state (O(S x G)) at essentially every router.
//
// Workload: Waxman graph, G groups, each with M member routers and S
// distinct senders. CBT builds trees by protocol joins; DVMRP state is
// driven by each sender transmitting one packet (state persists as prune
// records — that's the point).
//
// Expected shape: CBT total state grows with G (and member count), flat
// in S; DVMRP grows with G x S and touches every router.
#include <iostream>

#include "analysis/table.h"
#include "bench_util.h"
#include "baselines/dvmrp_domain.h"
#include "baselines/mospf_domain.h"
#include "cbt/core_selection.h"
#include "cbt/domain.h"
#include "netsim/topologies.h"

namespace {

using namespace cbt;  // NOLINT

constexpr int kRouters = 60;
constexpr int kMembersPerGroup = 10;

Ipv4Address GroupAddress(int g) {
  return Ipv4Address(239, 1, static_cast<std::uint8_t>(g >> 8),
                     static_cast<std::uint8_t>(g & 0xFF));
}

struct Result {
  std::size_t total = 0;
  std::size_t max_per_router = 0;
  std::size_t routers_with_state = 0;
};

Result RunCbt(int groups, int senders, std::uint64_t seed) {
  netsim::Simulator sim(seed);
  netsim::WaxmanParams params;
  params.n = kRouters;
  params.seed = seed;
  netsim::Topology topo = netsim::MakeWaxman(sim, params);
  core::CbtDomain domain(sim, topo);
  domain.Start();
  sim.RunUntil(kSecond);

  Rng rng(seed * 7 + 1);
  for (int g = 0; g < groups; ++g) {
    const Ipv4Address group = GroupAddress(g);
    core_selection::PlacementInput in;
    in.routers = topo.routers;
    in.rng = &rng;
    const auto cores =
        core_selection::MakeStrategy("random")->Place(in, 1).cores;
    const auto core_addrs = domain.RegisterGroup(group, cores);
    // Member routers join via the protocol (their LANs are assumed to
    // have members; InitiateJoin is the D-DR acting on them).
    for (const std::size_t idx :
         rng.SampleWithoutReplacement(topo.routers.size(),
                                      kMembersPerGroup)) {
      domain.router(topo.routers[idx]).InitiateJoin(group, core_addrs);
    }
    // Senders: non-member senders create NO router state in CBT; data is
    // relayed to the core. Send one packet per sender to prove it.
    for (const std::size_t idx :
         rng.SampleWithoutReplacement(topo.routers.size(),
                                      (std::size_t)senders)) {
      auto& host = domain.AddHost(
          topo.router_lans[idx],
          "s" + std::to_string(g) + "_" + std::to_string(idx));
      sim.RunUntil(sim.Now() + 100 * kMillisecond);
      host.SendToGroup(group, std::vector<std::uint8_t>{1});
    }
  }
  sim.RunUntil(sim.Now() + 30 * kSecond);

  Result r;
  for (const NodeId id : domain.router_ids()) {
    const std::size_t units = domain.router(id).fib().StateUnits();
    r.total += units;
    r.max_per_router = std::max(r.max_per_router, units);
    if (units > 0) ++r.routers_with_state;
  }
  return r;
}

Result RunDvmrp(int groups, int senders, std::uint64_t seed) {
  netsim::Simulator sim(seed);
  netsim::WaxmanParams params;
  params.n = kRouters;
  params.seed = seed;
  netsim::Topology topo = netsim::MakeWaxman(sim, params);
  baselines::DvmrpDomain domain(sim, topo);
  domain.Start();
  sim.RunUntil(kSecond);

  Rng rng(seed * 7 + 1);  // same membership/sender draws as the CBT run
  for (int g = 0; g < groups; ++g) {
    const Ipv4Address group = GroupAddress(g);
    rng.SampleWithoutReplacement(topo.routers.size(), 1);  // core draw
    for (const std::size_t idx :
         rng.SampleWithoutReplacement(topo.routers.size(),
                                      kMembersPerGroup)) {
      domain
          .AddHost(topo.router_lans[idx],
                   "m" + std::to_string(g) + "_" + std::to_string(idx))
          .JoinGroupWithCores(group, {}, 0);
    }
    for (const std::size_t idx :
         rng.SampleWithoutReplacement(topo.routers.size(),
                                      (std::size_t)senders)) {
      auto& host = domain.AddHost(
          topo.router_lans[idx],
          "s" + std::to_string(g) + "_" + std::to_string(idx));
      sim.RunUntil(sim.Now() + 100 * kMillisecond);
      host.SendToGroup(group, std::vector<std::uint8_t>{1});
    }
  }
  sim.RunUntil(sim.Now() + 30 * kSecond);

  Result r;
  for (const NodeId id : topo.routers) {
    const std::size_t units = domain.router(id).StateUnits();
    r.total += units;
    r.max_per_router = std::max(r.max_per_router, units);
    if (units > 0) ++r.routers_with_state;
  }
  return r;
}

Result RunMospf(int groups, int senders, std::uint64_t seed) {
  netsim::Simulator sim(seed);
  netsim::WaxmanParams params;
  params.n = kRouters;
  params.seed = seed;
  netsim::Topology topo = netsim::MakeWaxman(sim, params);
  baselines::MospfDomain domain(sim, topo);
  domain.Start();
  sim.RunUntil(kSecond);

  Rng rng(seed * 7 + 1);  // same draws as the other runs
  for (int g = 0; g < groups; ++g) {
    const Ipv4Address group = GroupAddress(g);
    rng.SampleWithoutReplacement(topo.routers.size(), 1);  // core draw
    for (const std::size_t idx :
         rng.SampleWithoutReplacement(topo.routers.size(),
                                      kMembersPerGroup)) {
      domain
          .AddHost(topo.router_lans[idx],
                   "m" + std::to_string(g) + "_" + std::to_string(idx))
          .JoinGroupWithCores(group, {}, 0);
    }
    for (const std::size_t idx :
         rng.SampleWithoutReplacement(topo.routers.size(),
                                      (std::size_t)senders)) {
      auto& host = domain.AddHost(
          topo.router_lans[idx],
          "s" + std::to_string(g) + "_" + std::to_string(idx));
      sim.RunUntil(sim.Now() + 100 * kMillisecond);
      host.SendToGroup(group, std::vector<std::uint8_t>{1});
    }
  }
  sim.RunUntil(sim.Now() + 30 * kSecond);

  Result r;
  for (const NodeId id : topo.routers) {
    const std::size_t units = domain.router(id).StateUnits();
    r.total += units;
    r.max_per_router = std::max(r.max_per_router, units);
    if (units > 0) ++r.routers_with_state;
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  cbt::bench::Options opts("state_scaling",
                           "E1: router state scaling vs DVMRP and MOSPF");
  opts.Parse(argc, argv);
  cbt::bench::TraceSession trace(opts.trace_path);
  cbt::exec::Pool pool(opts.jobs);
  cbt::bench::ExecReport exec_report(opts.bench_name());
  const bool csv = opts.csv;

  // --repeat replicas fan out over the --jobs pool; the workload is
  // deterministic, so every repetition prints the same tables (the
  // repeat knob exists for wall-clock sampling via BENCH_exec.json).
  analysis::Table first_table({""});
  const int rc = cbt::bench::RunRepeated(
      pool, opts, trace, exec_report, [&](cbt::exec::RunContext& ctx) -> int {
        std::ostream& out = ctx.out;
        out << "E1: router state scaling — CBT shared tree vs DVMRP "
               "flood-and-prune vs MOSPF link-state\n"
            << "(Waxman n=" << kRouters << ", " << kMembersPerGroup
            << " member routers per group; state units = FIB entries + "
               "children / (S,G) entries + prune records)\n\n";

        analysis::Table table(
            {"groups", "senders", "CBT total", "CBT max/rtr", "CBT routers",
             "DVMRP total", "DVMRP routers", "MOSPF total", "MOSPF routers",
             "DVMRP/CBT"});
        for (const int groups : {4, 8, 16, 32}) {
          for (const int senders : {1, 4, 8}) {
            const Result cbt = RunCbt(groups, senders, 42);
            const Result dvmrp = RunDvmrp(groups, senders, 42);
            const Result mospf = RunMospf(groups, senders, 42);
            table.AddRow(
                {analysis::Table::Num(groups), analysis::Table::Num(senders),
                 analysis::Table::Num(cbt.total),
                 analysis::Table::Num(cbt.max_per_router),
                 analysis::Table::Num(cbt.routers_with_state),
                 analysis::Table::Num(dvmrp.total),
                 analysis::Table::Num(dvmrp.routers_with_state),
                 analysis::Table::Num(mospf.total),
                 analysis::Table::Num(mospf.routers_with_state),
                 analysis::Table::Fixed(
                     cbt.total > 0 ? static_cast<double>(dvmrp.total) /
                                         static_cast<double>(cbt.total)
                                   : 0.0)});
          }
        }
        cbt::bench::Emit(table, csv, "E1 state scaling", out);
        out << "\nExpected shape: CBT column flat in senders, linear in "
               "groups, held only by on-tree routers; DVMRP grows with "
               "groups x senders at every router; MOSPF holds membership "
               "knowledge (groups x member-routers) at EVERY router plus "
               "per-(S,G) cache on tree routers.\n";
        if (ctx.index == 0) first_table = table;
        return 0;
      });
  if (!opts.json_path.empty()) {
    cbt::bench::JsonReporter report(opts.bench_name());
    report.Param("routers", kRouters);
    report.Param("members_per_group", kMembersPerGroup);
    report.AddTable("state_scaling", first_table, "state units");
    report.WriteFile(opts.json_path);
  }
  exec_report.WriteIfRequested(opts);
  return rc;
}
