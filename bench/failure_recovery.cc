// Experiment E7 — failure recovery (section 6.1 + section 9 timers).
//
// Kill the on-tree parent of a member's branch and measure (a) time from
// the failure to the branch re-acked onto the tree, and (b) the control
// messages spent. Recovery time is governed by ECHO-INTERVAL/ECHO-TIMEOUT
// (detection) plus one join RTT (repair), so sweeping the echo timers
// shows the trade-off the spec's defaults pick.
//
// Topologies: a diamond (single alternate path) and the Figure-1 network
// with the secondary core taking over after the primary's site fails.
#include <iostream>
#include <iterator>
#include <optional>
#include <string>
#include <vector>

#include "analysis/table.h"
#include "bench_util.h"
#include "cbt/domain.h"
#include "check/cbt_expectations.h"
#include "check/expectation.h"
#include "check/trace_view.h"
#include "netsim/topologies.h"

namespace {

using namespace cbt;  // NOLINT

constexpr Ipv4Address kGroup(239, 1, 2, 3);

struct Recovery {
  double detect_s = -1;   // failure -> on_parent_lost
  double recover_s = -1;  // failure -> on_reconnected
  std::uint64_t messages = 0;
  check::CheckReport check_report;
  bool check_ran = false;
};

/// --check support: replay the replica's ring through the CBT suite.
/// Called at the end of a replica body, where the simulator (address
/// resolver), exact config, and end-of-run time are all in scope.
void MaybeCheck(bool run_check, const netsim::Simulator& sim,
                const core::CbtConfig& config, check::CheckReport* report,
                bool* ran) {
  if (!run_check) return;
  obs::TraceBuffer* ring = obs::ProcessTraceBuffer();
  if (ring == nullptr) return;
  check::CbtSuiteOptions suite_options;
  suite_options.config = config;
  suite_options.node_of = check::MakeAddressResolver(sim);
  *report = check::RunExpectations(check::TraceView(*ring),
                                   check::CbtExpectationSuite(suite_options),
                                   sim.Now());
  *ran = true;
}

Recovery RunDiamond(SimDuration echo_interval, SimDuration echo_timeout,
                    bool run_check) {
  netsim::Simulator sim(1);
  netsim::Topology topo;
  const NodeId r0 = sim.AddNode("r0", true);
  const NodeId r1 = sim.AddNode("r1", true);
  const NodeId r2 = sim.AddNode("r2", true);
  const NodeId r3 = sim.AddNode("r3", true);
  topo.routers = {r0, r1, r2, r3};
  topo.nodes = {{"r0", r0}, {"r1", r1}, {"r2", r2}, {"r3", r3}};
  sim.Connect(r0, r1);
  sim.Connect(r1, r3);
  sim.Connect(r0, r2);
  sim.Connect(r2, r3);
  const SubnetId lan0 = sim.AddSubnet(
      "lan0", SubnetAddress::FromPrefix(Ipv4Address(10, 30, 0, 0), 16));
  sim.Attach(r0, lan0);
  topo.subnets["lan0"] = lan0;

  core::CbtConfig config;
  config.echo_interval = echo_interval;
  config.echo_timeout = echo_timeout;
  core::CbtDomain domain(sim, topo, config);
  domain.RegisterGroup(kGroup, {r3});
  domain.Start();
  sim.RunUntil(kSecond);
  domain.AddHost(lan0, "m").JoinGroup(kGroup);
  sim.RunUntil(10 * kSecond);

  Recovery out;
  std::optional<SimTime> lost, reconnected;
  core::CbtRouter::Callbacks cb;
  cb.on_parent_lost = [&](Ipv4Address) { lost = sim.Now(); };
  cb.on_reconnected = [&](Ipv4Address) { reconnected = sim.Now(); };
  domain.router(r0).set_callbacks(std::move(cb));

  const std::uint64_t msgs_before = domain.TotalControlMessages();
  const SimTime failure = sim.Now();
  sim.SetNodeUp(r1, false);
  sim.RunUntil(failure + 600 * kSecond);

  if (lost) out.detect_s = (double)(*lost - failure) / kSecond;
  if (reconnected) out.recover_s = (double)(*reconnected - failure) / kSecond;
  out.messages = domain.TotalControlMessages() - msgs_before;
  MaybeCheck(run_check, sim, config, &out.check_report, &out.check_ran);
  return out;
}

struct GridResult {
  std::vector<std::vector<std::string>> rows;
  check::CheckReport check_report;
  bool check_ran = false;
};

}  // namespace

int main(int argc, char** argv) {
  bench::Options opts("failure_recovery",
                      "E7: parent-failure detection and branch re-attach");
  bool run_check = false;
  opts.Flag("check", &run_check,
            "validate every failure-recovery path with the causal-path "
            "expectation suite (exit 1 on violations)");
  opts.Parse(argc, argv);
  bench::TraceSession trace(opts.trace_path);
  exec::Pool pool(opts.jobs);
  bench::ExecReport exec_report(opts.bench_name());
  exec::SweepOptions sweep_options = bench::MakeSweepOptions(opts, trace);
  if (run_check && !sweep_options.trace) {
    sweep_options.trace = true;
    sweep_options.trace_level = obs::TraceLevel::kSpans;
  }
  check::CheckReport check_report;

  std::cout << "E7: failure recovery — parent router dies; child branch "
               "re-attaches via the alternate path\n\n(a) diamond "
               "topology, echo timer sweep\n\n";

  // One replica per timer case (a), one for the grid failover (b): each
  // builds its own simulator, so the cases fan out over --jobs workers.
  analysis::Table sweep({"echo interval s", "echo timeout s", "detect s",
                         "recover s", "ctl msgs (10 min)"});
  const struct {
    SimDuration interval, timeout;
  } timer_cases[] = {
      {10 * kSecond, 30 * kSecond},
      {30 * kSecond, 90 * kSecond},  // the spec's defaults
      {60 * kSecond, 180 * kSecond},
  };
  exec_report.Add(
      "echo_sweep",
      exec::RunSweep(
          pool, std::size(timer_cases), sweep_options,
          [&](exec::RunContext& ctx) {
            const auto& t = timer_cases[ctx.index];
            return RunDiamond(t.interval, t.timeout, run_check);
          },
          [&](exec::RunContext& ctx, Recovery r) {
            const auto& t = timer_cases[ctx.index];
            sweep.AddRow({analysis::Table::Num(t.interval / kSecond),
                          analysis::Table::Num(t.timeout / kSecond),
                          analysis::Table::Fixed(r.detect_s, 1),
                          analysis::Table::Fixed(r.recover_s, 1),
                          analysis::Table::Num(r.messages)});
            if (r.check_ran) check_report.Merge(r.check_report);
            trace.Adopt(std::move(ctx.trace));
          }));
  sweep.Print(std::cout);

  std::cout << "\n(b) 4x4 grid: primary core fails; orphaned branches "
               "re-anchor at the secondary core (section 6.1/6.2)\n"
               "(note: in Figure 1 itself R4 is a cut vertex — a primary-"
               "core site failure there *partitions* the network, which "
               "no multicast protocol can survive; hence the 2-connected "
               "grid here)\n\n";
  analysis::Table grid_table({"event", "value"});
  exec_report.Add(
      "grid_core_failover",
      exec::RunSweep(
          pool, 1, sweep_options,
          [&](exec::RunContext&) {
            GridResult result;
            auto& rows = result.rows;
            netsim::Simulator sim(1);
            netsim::Topology topo = netsim::MakeGrid(sim, 4, 4);
            core::CbtDomain domain(sim, topo);
            // Primary core: corner (0,0); secondary: corner (3,3).
            domain.RegisterGroup(kGroup, {topo.routers[0], topo.routers[15]});
            domain.Start();
            sim.RunUntil(kSecond);
            // Members behind four spread routers.
            std::vector<core::HostAgent*> members;
            for (const std::size_t idx : {3u, 5u, 10u, 12u}) {
              members.push_back(&domain.AddHost(topo.router_lans[idx],
                                                "m" + std::to_string(idx)));
              members.back()->JoinGroup(kGroup);
            }
            sim.RunUntil(30 * kSecond);

            const SimTime failure = sim.Now();
            sim.SetNodeUp(topo.routers[0], false);
            sim.RunUntil(failure + 600 * kSecond);

            // Validate delivery end-to-end after recovery: member 3 sends.
            members[0]->SendToGroup(kGroup, std::vector<std::uint8_t>{1});
            sim.RunUntil(sim.Now() + 10 * kSecond);

            std::uint64_t losses = 0, reconnects = 0;
            for (const NodeId id : domain.router_ids()) {
              losses += domain.router(id).stats().parent_losses;
              reconnects += domain.router(id).stats().reconnects_succeeded;
            }
            rows.push_back(
                {"routers that lost a parent", analysis::Table::Num(losses)});
            rows.push_back(
                {"successful reconnects", analysis::Table::Num(reconnects)});
            rows.push_back(
                {"secondary core anchors tree",
                 domain.router(topo.routers[15]).IsOnTree(kGroup) ? "yes"
                                                                  : "NO"});
            int delivered = 0;
            for (std::size_t i = 1; i < members.size(); ++i) {
              if (members[i]->ReceivedCount(kGroup) > 0) ++delivered;
            }
            rows.push_back({"members receiving after recovery",
                            analysis::Table::Num(delivered) + "/3"});
            MaybeCheck(run_check, sim, core::CbtConfig{}, &result.check_report,
                       &result.check_ran);
            return result;
          },
          [&](exec::RunContext& ctx, GridResult result) {
            for (auto& row : result.rows) grid_table.AddRow(std::move(row));
            if (result.check_ran) check_report.Merge(result.check_report);
            trace.Adopt(std::move(ctx.trace));
          }));
  grid_table.Print(std::cout);
  std::cout << "\nExpected shape: detection ~= echo timeout (+ up to one "
               "interval), repair ~= one join RTT on top; smaller echo "
               "timers recover faster but cost proportionally more "
               "keepalive messages. After the primary-core failure the "
               "secondary core anchors delivery.\n";
  if (run_check) {
    std::cout << "\n";
    check_report.Print(std::cout);
  }
  if (!opts.json_path.empty()) {
    bench::JsonReporter report(opts.bench_name());
    report.Param("check", run_check);
    if (run_check) {
      report.Param("check_checked", check_report.checked());
      report.Param("check_violations", check_report.violations());
      report.Param("check_truncations", check_report.truncations());
      report.Param("check_waived", check_report.waived());
    }
    report.AddTable("echo_sweep", sweep, "s");
    report.AddTable("grid_core_failover", grid_table);
    report.WriteFile(opts.json_path);
  }
  exec_report.WriteIfRequested(opts);
  return run_check && !check_report.clean() ? 1 : 0;
}
