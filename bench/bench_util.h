// Shared helpers for the experiment binaries: `--csv` switches the output
// to machine-readable CSV (for plotting) instead of the aligned table.
#pragma once

#include <cstring>
#include <iostream>

#include "analysis/table.h"

namespace cbt::bench {

inline bool WantCsv(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--csv") == 0) return true;
  }
  return false;
}

/// Prints the table in the selected format. In CSV mode, `tag` is emitted
/// as a section marker line (`# <tag>`) so multi-table benches stay
/// parseable.
inline void Emit(const analysis::Table& table, bool csv, const char* tag) {
  if (csv) {
    std::cout << "# " << tag << "\n";
    table.PrintCsv(std::cout);
  } else {
    table.Print(std::cout);
  }
}

}  // namespace cbt::bench
