// Shared CLI + reporting layer for the experiment binaries.
//
// Every bench speaks the same flag dialect (bench::Options):
//
//   --csv           machine-readable CSV instead of aligned tables
//   --smoke         shrunken workload for CI smoke runs
//   --seed N        master RNG seed (default 1)
//   --repeat N      repeat the measured sweep with seeds seed..seed+N-1
//   --json FILE     write a structured report (bench::JsonReporter);
//                   --out FILE is accepted as an alias
//   --trace FILE    record an obs trace and export Chrome trace_event
//                   JSON on exit (bench::TraceSession)
//   --jobs N        worker threads for independent simulation replicas
//                   (exec::Pool). 0 = hardware concurrency; 1 = the
//                   exact serial legacy path. Output is byte-identical
//                   for every N — replicas are isolated in RunContexts
//                   and reduced in replica order (see src/exec/).
//                   Timing microbenches (bench_routing,
//                   bench_event_engine, bench_codec) default to 1 so
//                   parallel replicas cannot distort their wall-clock
//                   comparisons; --jobs opts in explicitly.
//   --exec-json F   write per-replica + aggregate wall-clock of the
//                   replica executor to F (default BENCH_exec.json;
//                   deliberately a separate file: the bench's own JSON
//                   stays byte-identical across --jobs values)
//   --help          usage
//
// plus whatever bench-specific flags each binary registers (--events,
// --routers, --engine, --routing, --plan, ...). Unknown flags are an
// error: usage goes to stderr and the bench exits 2, so typos no longer
// silently run the default workload.
//
// All BENCH_*.json files share one schema (schema_version 1):
//
//   { "bench": "<name>", "schema_version": 1,
//     "params": { "<key>": <value>, ... },
//     "series": [ { "name": "...", "units": "...",
//                   "points": [ { "label": "...", "value": ... } ] } ] }
#pragma once

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "analysis/table.h"
#include "exec/pool.h"
#include "exec/run_context.h"
#include "exec/sweep.h"
#include "netsim/packet_arena.h"
#include "obs/trace.h"

#if defined(__linux__) || defined(__APPLE__)
#include <sys/resource.h>
#include <unistd.h>
#endif

namespace cbt::bench {

/// Prints the table in the selected format. In CSV mode, `tag` is emitted
/// as a section marker line (`# <tag>`) so multi-table benches stay
/// parseable. `os` defaults to stdout; replica jobs pass their
/// RunContext::out instead.
inline void Emit(const analysis::Table& table, bool csv, const char* tag,
                 std::ostream& os = std::cout) {
  if (csv) {
    os << "# " << tag << "\n";
    table.PrintCsv(os);
  } else {
    table.Print(os);
  }
}

// ---------------------------------------------------------------------
// Options
// ---------------------------------------------------------------------

class Options {
 public:
  Options(std::string bench_name, std::string synopsis)
      : bench_name_(std::move(bench_name)), synopsis_(std::move(synopsis)) {
    Flag("csv", &csv, "emit CSV tables instead of aligned text");
    Flag("smoke", &smoke, "shrunken workload for CI smoke runs");
    U64("seed", &seed, "master RNG seed");
    Int("repeat", &repeat, "repeat the sweep with seeds seed..seed+N-1");
    Str("json", &json_path, "write the structured report to FILE");
    Str("trace", &trace_path, "export a Chrome trace_event JSON to FILE");
    Int("jobs", &jobs,
        "replica worker threads (0 = hardware concurrency, 1 = serial)");
    Str("exec-json", &exec_json_path,
        "write executor wall-clock report to FILE (empty disables)");
  }

  // Built-ins; assign before Parse() to change a bench's defaults
  // (e.g. event_engine defaults json_path to BENCH_event_engine.json).
  bool csv = false;
  bool smoke = false;
  std::uint64_t seed = 1;
  int repeat = 1;
  int jobs = 0;
  int shards = 0;
  std::string json_path;
  std::string placement;
  std::string trace_path;
  std::string exec_json_path = "BENCH_exec.json";

  /// Opt-in registration of --placement for benches that sweep the core
  /// placement registry (src/cbt/core_selection.h): restricts the sweep
  /// to one strategy by registry name. Empty = sweep every strategy.
  void EnablePlacement() {
    Str("placement", &placement,
        "restrict the core-placement sweep to one registry name "
        "(random | degree | centre | delay-centre | hash | locality | vns)");
  }

  /// Opt-in registration of --shards (space-parallel PDES). Benches that
  /// have not been wired for the shard runtime keep rejecting the flag
  /// through the normal unknown-flag exit-2 path.
  void EnableShards() {
    Int("shards", &shards,
        "PDES regions sharding each simulation across cores "
        "(0 = classic serial engine; N >= 1 = shard runtime, "
        "byte-identical output for every N)");
  }

  /// Registers a bench-specific boolean flag (present => true).
  void Flag(std::string name, bool* target, std::string help) {
    specs_.push_back({std::move(name), Spec::kBool, target, nullptr, nullptr,
                      nullptr, std::move(help)});
  }
  void Int(std::string name, int* target, std::string help) {
    specs_.push_back({std::move(name), Spec::kInt, nullptr, target, nullptr,
                      nullptr, std::move(help)});
  }
  void U64(std::string name, std::uint64_t* target, std::string help) {
    specs_.push_back({std::move(name), Spec::kU64, nullptr, nullptr, target,
                      nullptr, std::move(help)});
  }
  void Str(std::string name, std::string* target, std::string help) {
    specs_.push_back({std::move(name), Spec::kStr, nullptr, nullptr, nullptr,
                      target, std::move(help)});
  }

  /// Parses argv. On --help prints usage to stdout and exits 0; on any
  /// unknown flag or missing/garbled value prints usage to stderr and
  /// exits 2.
  void Parse(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg == "--help" || arg == "-h") {
        PrintUsage(std::cout);
        std::exit(0);
      }
      if (arg.rfind("--", 0) != 0) Fail("unexpected argument '" + arg + "'");
      std::string name = arg.substr(2);
      if (name == "out") name = "json";  // legacy alias kept for CI scripts
      Spec* spec = Find(name);
      if (spec == nullptr) Fail("unknown flag '" + arg + "'");
      if (spec->kind == Spec::kBool) {
        *spec->b = true;
        continue;
      }
      if (i + 1 >= argc) Fail("flag '" + arg + "' expects a value");
      const std::string value = argv[++i];
      switch (spec->kind) {
        case Spec::kInt:
          if (!ParseInt(value, spec->i)) {
            Fail("flag '" + arg + "' expects an integer, got '" + value + "'");
          }
          break;
        case Spec::kU64:
          if (!ParseU64(value, spec->u)) {
            Fail("flag '" + arg + "' expects an integer, got '" + value + "'");
          }
          break;
        case Spec::kStr:
          *spec->s = value;
          break;
        case Spec::kBool:
          break;  // unreachable
      }
    }
    if (repeat < 1) Fail("--repeat expects a positive count");
    if (jobs < 0) Fail("--jobs expects a nonnegative thread count");
    if (shards < 0) Fail("--shards expects a nonnegative region count");
    if (shards > 1 && jobs > 1) {
      Fail("--shards and --jobs cannot both be > 1: a sharded simulation "
           "already fans out across the cores");
    }
    // A sharded run owns the machine's parallelism; pin the replica pool
    // to the serial path instead of letting --jobs 0 grab every core too.
    if (shards > 1 && jobs == 0) jobs = 1;
  }

  const std::string& bench_name() const { return bench_name_; }

 private:
  struct Spec {
    enum Kind { kBool, kInt, kU64, kStr };
    std::string name;
    Kind kind;
    bool* b;
    int* i;
    std::uint64_t* u;
    std::string* s;
    std::string help;
  };

  Spec* Find(const std::string& name) {
    for (Spec& spec : specs_) {
      if (spec.name == name) return &spec;
    }
    return nullptr;
  }

  static bool ParseInt(const std::string& text, int* out) {
    try {
      std::size_t pos = 0;
      const int v = std::stoi(text, &pos);
      if (pos != text.size()) return false;
      *out = v;
      return true;
    } catch (...) {
      return false;
    }
  }

  static bool ParseU64(const std::string& text, std::uint64_t* out) {
    try {
      std::size_t pos = 0;
      const std::uint64_t v = std::stoull(text, &pos);
      if (pos != text.size() || text.front() == '-') return false;
      *out = v;
      return true;
    } catch (...) {
      return false;
    }
  }

  void PrintUsage(std::ostream& os) const {
    os << "usage: bench_" << bench_name_ << " [flags]\n"
       << "  " << synopsis_ << "\n\nflags:\n";
    for (const Spec& spec : specs_) {
      std::string left = "  --" + spec.name;
      if (spec.kind != Spec::kBool) left += " <value>";
      os << left;
      for (std::size_t pad = left.size(); pad < 24; ++pad) os << ' ';
      os << spec.help << "\n";
    }
    os << "  --out <value>         alias for --json\n";
  }

  [[noreturn]] void Fail(const std::string& message) const {
    std::cerr << "bench_" << bench_name_ << ": " << message << "\n\n";
    PrintUsage(std::cerr);
    std::exit(2);
  }

  std::string bench_name_;
  std::string synopsis_;
  std::vector<Spec> specs_;
};

// ---------------------------------------------------------------------
// JsonReporter
// ---------------------------------------------------------------------

/// Builds the common BENCH_*.json report. Values are stored as
/// pre-rendered JSON literals so integer counters round-trip exactly.
class JsonReporter {
 public:
  static constexpr int kSchemaVersion = 1;

  explicit JsonReporter(std::string bench) : bench_(std::move(bench)) {}

  void Param(const std::string& key, const std::string& value) {
    params_.emplace_back(key, Quote(value));
  }
  void Param(const std::string& key, const char* value) {
    params_.emplace_back(key, Quote(value));
  }
  void Param(const std::string& key, bool value) {
    params_.emplace_back(key, value ? "true" : "false");
  }
  void Param(const std::string& key, std::uint64_t value) {
    params_.emplace_back(key, std::to_string(value));
  }
  void Param(const std::string& key, int value) {
    params_.emplace_back(key, std::to_string(value));
  }
  void Param(const std::string& key, double value) {
    params_.emplace_back(key, Number(value));
  }

  class Series {
   public:
    Series(std::string name, std::string units)
        : name_(std::move(name)), units_(std::move(units)) {}
    void Add(const std::string& label, double value) {
      points_.emplace_back(label, Number(value));
    }
    void Add(const std::string& label, std::uint64_t value) {
      points_.emplace_back(label, std::to_string(value));
    }
    void Add(const std::string& label, int value) {
      points_.emplace_back(label, std::to_string(value));
    }

   private:
    friend class JsonReporter;
    std::string name_;
    std::string units_;
    std::vector<std::pair<std::string, std::string>> points_;
  };

  Series& AddSeries(const std::string& name, const std::string& units) {
    series_.push_back(std::make_unique<Series>(name, units));
    return *series_.back();
  }

  /// Find-or-create: returns the existing series named `name` (units of
  /// the first creation win) so per-row helpers can keep appending
  /// points without producing duplicate-name series in the report.
  Series& SeriesNamed(const std::string& name, const std::string& units) {
    for (const auto& s : series_) {
      if (s->name_ == name) return *s;
    }
    return AddSeries(name, units);
  }

  /// Converts an analysis::Table: every numeric column becomes one
  /// series named "<tag>.<header>", with each row's first cell as the
  /// point label. Non-numeric cells are skipped.
  void AddTable(const std::string& tag, const analysis::Table& table,
                const std::string& units = "") {
    const auto& headers = table.headers();
    for (std::size_t col = 1; col < headers.size(); ++col) {
      Series* series = nullptr;
      for (const auto& row : table.rows()) {
        if (col >= row.size()) continue;
        double value = 0;
        if (!ParseNumber(row[col], &value)) continue;
        if (series == nullptr) {
          series = &AddSeries(tag + "." + headers[col], units);
        }
        series->Add(row.empty() ? "" : row[0], value);
      }
    }
  }

  void Write(std::ostream& os) const {
    os << "{\n  \"bench\": " << Quote(bench_)
       << ",\n  \"schema_version\": " << kSchemaVersion
       << ",\n  \"params\": {";
    for (std::size_t i = 0; i < params_.size(); ++i) {
      os << (i == 0 ? "\n" : ",\n") << "    " << Quote(params_[i].first)
         << ": " << params_[i].second;
    }
    os << (params_.empty() ? "" : "\n  ") << "},\n  \"series\": [";
    for (std::size_t i = 0; i < series_.size(); ++i) {
      const Series& s = *series_[i];
      os << (i == 0 ? "\n" : ",\n") << "    {\"name\": " << Quote(s.name_)
         << ", \"units\": " << Quote(s.units_) << ", \"points\": [";
      for (std::size_t p = 0; p < s.points_.size(); ++p) {
        os << (p == 0 ? "\n" : ",\n") << "      {\"label\": "
           << Quote(s.points_[p].first) << ", \"value\": "
           << s.points_[p].second << "}";
      }
      os << (s.points_.empty() ? "" : "\n    ") << "]}";
    }
    os << (series_.empty() ? "" : "\n  ") << "]\n}\n";
  }

  /// Writes to `path`; reports to stderr so bench stdout stays
  /// byte-comparable across runs. Returns false on I/O failure.
  bool WriteFile(const std::string& path) const {
    std::ofstream os(path);
    if (!os) {
      std::cerr << "bench_" << bench_ << ": cannot write " << path << "\n";
      return false;
    }
    Write(os);
    std::cerr << "wrote " << path << "\n";
    return os.good();
  }

 private:
  static std::string Quote(const std::string& text) {
    std::string out = "\"";
    for (const char c : text) {
      switch (c) {
        case '"':
          out += "\\\"";
          break;
        case '\\':
          out += "\\\\";
          break;
        case '\n':
          out += "\\n";
          break;
        case '\t':
          out += "\\t";
          break;
        default:
          out += c;
      }
    }
    out += '"';
    return out;
  }

  static std::string Number(double value) {
    std::ostringstream os;
    os.precision(12);
    os << value;
    const std::string text = os.str();
    // JSON requires a finite literal; our benches never produce inf/nan,
    // but a report must not silently become unparseable if one does.
    if (text.find_first_of("in") != std::string::npos &&
        text.find_first_of("0123456789") == std::string::npos) {
      return "null";
    }
    return text;
  }

  static bool ParseNumber(const std::string& text, double* out) {
    if (text.empty()) return false;
    try {
      std::size_t pos = 0;
      const double v = std::stod(text, &pos);
      if (pos != text.size()) return false;
      *out = v;
      return true;
    } catch (...) {
      return false;
    }
  }

  std::string bench_;
  std::vector<std::pair<std::string, std::string>> params_;
  std::vector<std::unique_ptr<Series>> series_;
};

// ---------------------------------------------------------------------
// MemorySample
// ---------------------------------------------------------------------

/// Snapshot of process memory plus (optionally) one simulator's packet
/// arena occupancy. Scale benches pair a sample per sweep row so a
/// BENCH_*.json records not just wall-clock but what the row cost in
/// resident memory — the whole point of an aggregate host model is the
/// RSS it does NOT spend.
struct MemorySample {
  std::uint64_t peak_rss_bytes = 0;     // high-water mark (ru_maxrss)
  std::uint64_t current_rss_bytes = 0;  // resident set right now
  std::uint64_t arena_buffers_allocated = 0;
  std::uint64_t arena_buffers_live = 0;
  std::uint64_t arena_total_makes = 0;
  std::uint64_t arena_reuses = 0;
};

/// Reads the process counters. Peak RSS comes from getrusage (ru_maxrss,
/// reported in KiB on Linux); current RSS from /proc/self/statm. On
/// platforms without either, the fields stay 0 — callers and the JSON
/// schema treat 0 as "unavailable", never as "free".
inline MemorySample SampleMemory() {
  MemorySample sample;
#if defined(__linux__) || defined(__APPLE__)
  struct rusage usage {};
  if (::getrusage(RUSAGE_SELF, &usage) == 0 && usage.ru_maxrss > 0) {
#if defined(__APPLE__)
    sample.peak_rss_bytes = static_cast<std::uint64_t>(usage.ru_maxrss);
#else
    sample.peak_rss_bytes =
        static_cast<std::uint64_t>(usage.ru_maxrss) * 1024u;
#endif
  }
#endif
#if defined(__linux__)
  std::ifstream statm("/proc/self/statm");
  std::uint64_t pages_total = 0;
  std::uint64_t pages_resident = 0;
  if (statm >> pages_total >> pages_resident) {
    const long page = ::sysconf(_SC_PAGESIZE);
    if (page > 0) {
      sample.current_rss_bytes =
          pages_resident * static_cast<std::uint64_t>(page);
    }
  }
#endif
  return sample;
}

/// Same, but also captures `arena`'s accounting counters (one arena ==
/// one simulation replica; sample before the Simulator is destroyed).
inline MemorySample SampleMemory(const netsim::PacketArena& arena) {
  MemorySample sample = SampleMemory();
  sample.arena_buffers_allocated = arena.buffers_allocated();
  sample.arena_buffers_live = arena.buffers_live();
  sample.arena_total_makes = arena.total_makes();
  sample.arena_reuses = arena.reuses();
  return sample;
}

/// Emits one labelled point per memory counter into `report` under the
/// series "memory.<counter>". Call once per sweep row (label = the row
/// key); repeated calls append to the same six series.
inline void ReportMemory(JsonReporter& report, const std::string& label,
                         const MemorySample& sample) {
  report.SeriesNamed("memory.peak_rss_bytes", "bytes")
      .Add(label, sample.peak_rss_bytes);
  report.SeriesNamed("memory.current_rss_bytes", "bytes")
      .Add(label, sample.current_rss_bytes);
  report.SeriesNamed("memory.arena_buffers_allocated", "buffers")
      .Add(label, sample.arena_buffers_allocated);
  report.SeriesNamed("memory.arena_buffers_live", "buffers")
      .Add(label, sample.arena_buffers_live);
  report.SeriesNamed("memory.arena_total_makes", "packets")
      .Add(label, sample.arena_total_makes);
  report.SeriesNamed("memory.arena_reuses", "packets")
      .Add(label, sample.arena_reuses);
}

// ---------------------------------------------------------------------
// TraceSession
// ---------------------------------------------------------------------

/// RAII tracing for bench mains. Constructed with the --trace path
/// (empty => inert) BEFORE any Simulator is built: it installs the
/// process-default TraceBuffer that every Simulator picks up at
/// construction, and on destruction exports Chrome trace_event JSON.
/// All status output goes to stderr — bench stdout must stay
/// byte-identical whether or not tracing is on.
///
/// Replica sweeps record into per-replica rings instead (the process
/// buffer is masked inside each exec::RunContext); the reducer hands
/// those rings to Adopt(), and the export merges them as one process
/// lane per replica (pid 2, 3, ... in replica order — pid 1 is the main
/// thread), so the exported trace is deterministic for every --jobs N.
class TraceSession {
 public:
  explicit TraceSession(const std::string& path,
                        obs::TraceLevel level = obs::TraceLevel::kVerbose,
                        std::size_t capacity = std::size_t{1} << 18)
      : path_(path) {
    if (path_.empty()) return;
    buffer_ = std::make_unique<obs::TraceBuffer>(capacity, level);
    obs::SetProcessTraceBuffer(buffer_.get());
  }

  TraceSession(const TraceSession&) = delete;
  TraceSession& operator=(const TraceSession&) = delete;

  ~TraceSession() {
    if (buffer_ == nullptr) return;
    obs::SetProcessTraceBuffer(nullptr);
    std::ofstream os(path_);
    if (!os) {
      std::cerr << "trace: cannot write " << path_ << "\n";
      return;
    }
    std::size_t events = buffer_->size();
    std::size_t dropped = buffer_->dropped();
    if (adopted_.empty()) {
      buffer_->ExportChromeTrace(os);
    } else {
      std::vector<const obs::TraceBuffer*> lanes;
      lanes.push_back(buffer_.get());
      for (const auto& ring : adopted_) {
        lanes.push_back(ring.get());
        events += ring->size();
        dropped += ring->dropped();
      }
      obs::ExportCombinedChromeTrace(os, lanes);
    }
    std::cerr << "wrote trace " << path_ << " (" << events
              << " events retained, " << dropped << " dropped)\n";
  }

  bool active() const { return buffer_ != nullptr; }
  obs::TraceBuffer* buffer() { return buffer_.get(); }

  /// Takes ownership of a replica's trace ring (call from the RunSweep
  /// reducer — reduction order is replica order, so lane numbering is
  /// deterministic). No-op when the session is inert or the replica
  /// recorded nothing.
  void Adopt(std::unique_ptr<obs::TraceBuffer> ring) {
    if (buffer_ == nullptr || ring == nullptr) return;
    adopted_.push_back(std::move(ring));
  }

 private:
  std::string path_;
  std::unique_ptr<obs::TraceBuffer> buffer_;
  std::vector<std::unique_ptr<obs::TraceBuffer>> adopted_;
};

// ---------------------------------------------------------------------
// ExecReport
// ---------------------------------------------------------------------

/// Collects exec::SweepTiming from every sweep a bench runs and writes
/// BENCH_exec.json (per-replica wall-clock, per-sweep wall-clock, and
/// aggregates). This is deliberately a SEPARATE file from the bench's
/// own BENCH_*.json: wall-clock is the one thing that legitimately
/// varies across --jobs values, and keeping it out of the bench report
/// preserves the byte-identical `--jobs 1` vs `--jobs N` contract.
class ExecReport {
 public:
  explicit ExecReport(std::string bench) : bench_(std::move(bench)) {}

  void Add(const std::string& sweep, const exec::SweepTiming& timing) {
    entries_.push_back({sweep, timing});
  }

  /// Writes to opts.exec_json_path ("" disables). Call once at the end
  /// of main, after every sweep has been Add()ed.
  void WriteIfRequested(const Options& opts) const {
    if (opts.exec_json_path.empty() || entries_.empty()) return;
    JsonReporter report("exec");
    report.Param("source_bench", bench_);
    report.Param("jobs", entries_.front().timing.jobs);
    report.Param("hardware_concurrency", exec::Pool::HardwareConcurrency());
    auto& replica = report.AddSeries("replica_wall_seconds", "s");
    auto& sweeps = report.AddSeries("sweep_wall_seconds", "s");
    double total_wall = 0;
    double total_replica = 0;
    std::size_t replicas = 0;
    for (const auto& entry : entries_) {
      for (std::size_t i = 0; i < entry.timing.replica_seconds.size(); ++i) {
        replica.Add(entry.sweep + "/r" + std::to_string(i),
                    entry.timing.replica_seconds[i]);
        total_replica += entry.timing.replica_seconds[i];
        ++replicas;
      }
      sweeps.Add(entry.sweep, entry.timing.wall_seconds);
      total_wall += entry.timing.wall_seconds;
    }
    auto& aggregate = report.AddSeries("aggregate", "s");
    aggregate.Add("total_wall_seconds", total_wall);
    aggregate.Add("total_replica_seconds", total_replica);
    aggregate.Add("replica_count", static_cast<std::uint64_t>(replicas));
    report.WriteFile(opts.exec_json_path);
  }

 private:
  struct Entry {
    std::string sweep;
    exec::SweepTiming timing;
  };
  std::string bench_;
  std::vector<Entry> entries_;
};

// ---------------------------------------------------------------------
// Sweep helpers
// ---------------------------------------------------------------------

/// Sweep options derived from the shared flags: replica i gets seed
/// opts.seed + i, and per-replica trace rings iff --trace is on.
inline exec::SweepOptions MakeSweepOptions(const Options& opts,
                                           const TraceSession& trace) {
  exec::SweepOptions sweep;
  sweep.base_seed = opts.seed;
  sweep.trace = trace.active();
  return sweep;
}

/// Runs `body(ctx)` once per --repeat replica on `pool`, flushing each
/// replica's buffered output in replica order (so output order — and
/// bytes — match the legacy `for (rep)` loop exactly). `body` returns
/// the replica's exit code; RunRepeated returns the maximum. This is
/// the adoption path for single-loop benches; multi-sweep benches call
/// exec::RunSweep directly.
template <typename Body>
int RunRepeated(exec::Pool& pool, const Options& opts, TraceSession& trace,
                ExecReport& report, Body&& body) {
  int rc = 0;
  const exec::SweepTiming timing = exec::RunSweep(
      pool, static_cast<std::size_t>(opts.repeat), MakeSweepOptions(opts, trace),
      [&](exec::RunContext& ctx) { return body(ctx); },
      [&](exec::RunContext& ctx, int code) {
        if (code > rc) rc = code;
        trace.Adopt(std::move(ctx.trace));
      });
  report.Add("repeat", timing);
  return rc;
}

}  // namespace cbt::bench
