// Conference: the workload CBT's introduction motivates — a many-to-many
// conferencing session on the spec's own Figure-1 internetwork.
//
// Every lettered host joins one audio group; several of them "speak" in
// turns; the example prints who heard what and the per-router forwarding
// work, illustrating why a single bidirectional shared tree suits
// many-to-many traffic (one tree, any sender).
#include <cstdio>
#include <string>
#include <vector>

#include "cbt/domain.h"
#include "netsim/topologies.h"

using namespace cbt;  // NOLINT — example brevity

int main() {
  netsim::Simulator sim(7);
  netsim::Topology topo = netsim::MakeFigure1(sim);
  core::CbtDomain domain(sim, topo);

  // Host A initiates the conference; R4 is elected primary core, R9
  // secondary (exactly the spec's section 2.5 setup).
  const Ipv4Address audio(239, 1, 2, 3);
  domain.RegisterGroup(audio, {topo.node("R4"), topo.node("R9")});
  domain.Start();
  sim.RunUntil(kSecond);

  const std::vector<std::string> participants = {"A", "B", "C", "D", "E", "F",
                                                 "G", "H", "I", "J", "K", "L"};
  for (const std::string& name : participants) {
    domain.host(name).JoinGroup(audio);
    sim.RunUntil(sim.Now() + 500 * kMillisecond);
  }
  sim.RunUntil(sim.Now() + 10 * kSecond);
  std::printf("conference tree spans %zu routers\n\n",
              domain.OnTreeRouters(audio).size());

  // Speakers take 2-second turns; everyone else listens.
  const std::vector<std::string> speakers = {"A", "G", "J", "B"};
  for (const std::string& speaker : speakers) {
    std::printf("%s speaks...\n", speaker.c_str());
    for (int burst = 0; burst < 5; ++burst) {
      const std::vector<std::uint8_t> frame(160, 0x55);  // 20ms G.711-ish
      domain.host(speaker).SendToGroup(audio, frame);
      sim.RunUntil(sim.Now() + 400 * kMillisecond);
    }
  }
  sim.RunUntil(sim.Now() + 5 * kSecond);

  std::printf("\nreceived frames per participant (sent: %zu x 5 = %zu; "
              "own frames are not echoed back):\n",
              speakers.size(), speakers.size() * 5);
  for (const std::string& name : participants) {
    const auto count = domain.host(name).ReceivedCount(audio);
    const bool spoke =
        std::find(speakers.begin(), speakers.end(), name) != speakers.end();
    std::printf("  %-2s heard %2llu frames%s\n", name.c_str(),
                (unsigned long long)count, spoke ? "  (also spoke 5)" : "");
  }

  std::printf("\nper-router forwarding work:\n");
  for (const NodeId id : domain.router_ids()) {
    const auto& stats = domain.router(id).stats();
    if (stats.data_forwarded_tree + stats.data_delivered_lan == 0) continue;
    std::printf("  %-4s tree txs=%3llu  LAN multicasts=%3llu\n",
                sim.node(id).name.c_str(),
                (unsigned long long)stats.data_forwarded_tree,
                (unsigned long long)stats.data_delivered_lan);
  }
  return 0;
}
