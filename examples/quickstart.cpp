// Quickstart: build a small CBT domain, join a group, send data.
//
// Walks through the whole public API surface in ~80 lines:
//   1. build a topology in the simulator;
//   2. wrap it in a CbtDomain (one CbtRouter per router, HostAgent per
//      host, shared RouteManager + GroupDirectory);
//   3. register a group with its ordered core list (the "group
//      initiation" of spec section 2.1);
//   4. join from hosts (IGMP report + RP/Core-Report -> D-DR join);
//   5. multicast data and observe delivery.
#include <cstdio>

#include <iostream>

#include "cbt/domain.h"
#include "cbt/tree_printer.h"
#include "netsim/topologies.h"

using namespace cbt;  // NOLINT — example brevity

int main() {
  // 1. A 3x3 grid of routers, each with a stub LAN for hosts.
  netsim::Simulator sim(/*seed=*/1);
  netsim::Topology topo = netsim::MakeGrid(sim, 3, 3);

  // 2. CBT protocol agents on every router.
  core::CbtDomain domain(sim, topo);

  // 3. One multicast group, its core at the grid centre.
  const Ipv4Address group(239, 42, 0, 1);
  domain.RegisterGroup(group, {topo.routers[4]});

  // 4. Hosts: a receiver in each corner, a sender at the centre LAN.
  domain.Start();
  sim.RunUntil(kSecond);  // let IGMP querier elections settle

  core::HostAgent& nw = domain.AddHost(topo.router_lans[0], "nw");
  core::HostAgent& ne = domain.AddHost(topo.router_lans[2], "ne");
  core::HostAgent& sw = domain.AddHost(topo.router_lans[6], "sw");
  core::HostAgent& se = domain.AddHost(topo.router_lans[8], "se");
  core::HostAgent& sender = domain.AddHost(topo.router_lans[4], "sender");

  for (core::HostAgent* h : {&nw, &ne, &sw, &se}) {
    h->on_data = [h](const core::HostAgent::Received& r) {
      std::printf("  [%s] t=%s got %zu bytes from %s\n",
                  h->id().IsValid() ? "host" : "?",
                  FormatSimTime(r.time).c_str(), r.bytes,
                  r.src.ToString().c_str());
    };
    h->JoinGroup(group);
  }
  sim.RunUntil(10 * kSecond);  // joins complete (sub-second in practice)

  std::printf("tree built: %zu routers hold a FIB entry for %s\n",
              domain.OnTreeRouters(group).size(), group.ToString().c_str());
  core::PrintTree(domain, group, std::cout);

  // 5. Send. The sender's LAN has no members; this exercises non-member
  // sending (spec section 5.1) just as transparently.
  const std::uint8_t payload[] = {'h', 'e', 'l', 'l', 'o'};
  sender.SendToGroup(group, payload);
  sim.RunUntil(sim.Now() + 5 * kSecond);

  std::printf("deliveries: nw=%llu ne=%llu sw=%llu se=%llu\n",
              (unsigned long long)nw.ReceivedCount(group),
              (unsigned long long)ne.ReceivedCount(group),
              (unsigned long long)sw.ReceivedCount(group),
              (unsigned long long)se.ReceivedCount(group));

  // Leave and watch the tree tear itself down (section 2.7).
  for (core::HostAgent* h : {&nw, &ne, &sw, &se}) h->LeaveGroup(group);
  sim.RunUntil(sim.Now() + 120 * kSecond);
  std::printf("after leaves: %zu routers still on-tree (the core anchors "
              "the group)\n",
              domain.OnTreeRouters(group).size());
  return 0;
}
