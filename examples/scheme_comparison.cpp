// Scheme comparison: run the SAME workload over a CBT domain and a
// DVMRP-style flood-and-prune domain and contrast what the two designs
// pay — the trade the SIGCOMM'93 paper is about, live rather than as an
// oracle computation (bench_state_scaling / bench_tree_cost do the
// systematic sweeps).
#include <cstdio>
#include <vector>

#include "baselines/dvmrp_domain.h"
#include "baselines/mospf_domain.h"
#include "cbt/core_selection.h"
#include "cbt/domain.h"
#include "netsim/topologies.h"

using namespace cbt;  // NOLINT — example brevity

namespace {

constexpr int kGroups = 6;
constexpr int kMembersPerGroup = 5;
constexpr int kSendersPerGroup = 3;

Ipv4Address Group(int g) {
  return Ipv4Address(239, 30, 0, static_cast<std::uint8_t>(g + 1));
}

struct Outcome {
  std::uint64_t delivered = 0;
  std::uint64_t expected = 0;
  std::size_t state_units = 0;
  std::size_t stateful_routers = 0;
  std::uint64_t data_transmissions = 0;
  std::uint64_t control_messages = 0;
};

template <typename Domain, typename StatePerRouter, typename DataPerRouter>
Outcome RunWorkload(netsim::Simulator& sim, netsim::Topology& topo,
                    Domain& domain, bool cbt, StatePerRouter state_of,
                    DataPerRouter data_of) {
  Rng rng(1234);
  std::vector<core::HostAgent*> members[kGroups];
  std::vector<core::HostAgent*> senders[kGroups];

  for (int g = 0; g < kGroups; ++g) {
    for (const std::size_t idx : rng.SampleWithoutReplacement(
             topo.routers.size(), kMembersPerGroup)) {
      auto& h = domain.AddHost(topo.router_lans[idx],
                               "m" + std::to_string(g) + "_" +
                                   std::to_string(idx));
      if (cbt) {
        h.JoinGroup(Group(g));
      } else {
        h.JoinGroupWithCores(Group(g), {}, 0);
      }
      members[g].push_back(&h);
      sim.RunUntil(sim.Now() + 200 * kMillisecond);
    }
    for (const std::size_t idx : rng.SampleWithoutReplacement(
             topo.routers.size(), kSendersPerGroup)) {
      senders[g].push_back(&domain.AddHost(
          topo.router_lans[idx],
          "s" + std::to_string(g) + "_" + std::to_string(idx)));
    }
  }
  sim.RunUntil(sim.Now() + 20 * kSecond);

  // Each sender multicasts 5 packets.
  for (int round = 0; round < 5; ++round) {
    for (int g = 0; g < kGroups; ++g) {
      for (auto* s : senders[g]) {
        s->SendToGroup(Group(g), std::vector<std::uint8_t>{1, 2, 3});
      }
    }
    sim.RunUntil(sim.Now() + 2 * kSecond);
  }
  sim.RunUntil(sim.Now() + 20 * kSecond);

  Outcome out;
  for (int g = 0; g < kGroups; ++g) {
    for (auto* m : members[g]) {
      out.delivered += m->ReceivedCount(Group(g));
      out.expected += 5 * kSendersPerGroup;
    }
  }
  for (const NodeId r : topo.routers) {
    const std::size_t units = state_of(r);
    out.state_units += units;
    if (units > 0) ++out.stateful_routers;
    out.data_transmissions += data_of(r);
  }
  return out;
}

}  // namespace

int main() {
  std::printf("identical workload — %d groups x %d members x %d senders x 5 "
              "packets — on a 24-router Waxman graph:\n\n",
              kGroups, kMembersPerGroup, kSendersPerGroup);

  Outcome cbt_out, dvmrp_out, mospf_out;
  {
    netsim::Simulator sim(11);
    netsim::WaxmanParams params;
    params.n = 24;
    params.seed = 77;
    netsim::Topology topo = netsim::MakeWaxman(sim, params);
    core::CbtDomain domain(sim, topo);
    Rng core_rng(5);
    core_selection::PlacementInput place_in;
    place_in.routers = topo.routers;
    place_in.rng = &core_rng;
    const auto random_cores = core_selection::MakeStrategy("random");
    for (int g = 0; g < kGroups; ++g) {
      domain.RegisterGroup(Group(g), random_cores->Place(place_in, 2).cores);
    }
    domain.Start();
    sim.RunUntil(kSecond);
    cbt_out = RunWorkload(
        sim, topo, domain, /*cbt=*/true,
        [&](NodeId r) { return domain.router(r).fib().StateUnits(); },
        [&](NodeId r) {
          const auto& s = domain.router(r).stats();
          return s.data_forwarded_tree + s.data_delivered_lan;
        });
    cbt_out.control_messages = domain.TotalControlMessages();
  }
  {
    netsim::Simulator sim(11);
    netsim::WaxmanParams params;
    params.n = 24;
    params.seed = 77;
    netsim::Topology topo = netsim::MakeWaxman(sim, params);
    baselines::DvmrpDomain domain(sim, topo);
    domain.Start();
    sim.RunUntil(kSecond);
    dvmrp_out = RunWorkload(
        sim, topo, domain, /*cbt=*/false,
        [&](NodeId r) { return domain.router(r).StateUnits(); },
        [&](NodeId r) {
          const auto& s = domain.router(r).stats();
          return s.data_forwarded + s.data_delivered_lan;
        });
    dvmrp_out.control_messages = domain.TotalControlMessages();
  }

  {
    netsim::Simulator sim(11);
    netsim::WaxmanParams params;
    params.n = 24;
    params.seed = 77;
    netsim::Topology topo = netsim::MakeWaxman(sim, params);
    baselines::MospfDomain domain(sim, topo);
    domain.Start();
    sim.RunUntil(kSecond);
    mospf_out = RunWorkload(
        sim, topo, domain, /*cbt=*/false,
        [&](NodeId r) { return domain.router(r).StateUnits(); },
        [&](NodeId r) {
          const auto& s = domain.router(r).stats();
          return s.data_forwarded + s.data_delivered_lan;
        });
    mospf_out.control_messages = domain.TotalControlMessages();
  }

  std::printf("%-28s %14s %14s %14s\n", "", "CBT", "DVMRP-style",
              "MOSPF-style");
  std::printf("%-28s %10llu/%llu %10llu/%llu %10llu/%llu\n",
              "packets delivered", (unsigned long long)cbt_out.delivered,
              (unsigned long long)cbt_out.expected,
              (unsigned long long)dvmrp_out.delivered,
              (unsigned long long)dvmrp_out.expected,
              (unsigned long long)mospf_out.delivered,
              (unsigned long long)mospf_out.expected);
  std::printf("%-28s %14zu %14zu %14zu\n", "router state units",
              cbt_out.state_units, dvmrp_out.state_units,
              mospf_out.state_units);
  std::printf("%-28s %14zu %14zu %14zu\n", "routers holding state",
              cbt_out.stateful_routers, dvmrp_out.stateful_routers,
              mospf_out.stateful_routers);
  std::printf("%-28s %14llu %14llu %14llu\n", "data transmissions",
              (unsigned long long)cbt_out.data_transmissions,
              (unsigned long long)dvmrp_out.data_transmissions,
              (unsigned long long)mospf_out.data_transmissions);
  std::printf("%-28s %14llu %14llu %14llu\n", "control messages",
              (unsigned long long)cbt_out.control_messages,
              (unsigned long long)dvmrp_out.control_messages,
              (unsigned long long)mospf_out.control_messages);
  std::printf(
      "\nreading: all three deliver everything; CBT concentrates modest "
      "state on tree routers only; flood-and-prune touches every router "
      "and spends transmissions on flooding; MOSPF avoids flooding data "
      "but pays membership-knowledge state at every router plus LSA "
      "control traffic — the paper's three-way trade-off.\n");
  return 0;
}
