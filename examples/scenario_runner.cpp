// Scenario runner: execute a scripted CBT scenario from a file (or the
// built-in demo when no argument is given) and report its expectations.
//
//   ./scenario_runner [scenario-file]
//
// See src/cbt/scenario.h for the statement reference.
#include <fstream>
#include <iostream>
#include <sstream>

#include "cbt/scenario.h"

namespace {

constexpr const char* kDemo = R"(# Built-in demo: the spec's Figure-1
# network, a conference group anchored at R4 with backup core R9,
# a mid-session failure of transit router R3, and delivery checks.
topology figure1
group conf 239.1.2.3 R4 R9

at 1s    join A R1 conf
at 2s    join B R6 conf
at 3s    join G R8 conf
at 10s   send G conf 160
at 15s   expect-delivered A conf 1
at 15s   expect-delivered B conf 1
at 20s   fail-node R3
# ECHO-TIMEOUT (90s) + echo interval passes; R1 cannot reach any core
# without R3 (it is R1's only uplink), so A goes dark...
at 250s  heal-node R3
# ...and recovers once R3 returns and the next membership report fires.
at 400s  send G conf 160
at 440s  expect-delivered A conf 2
at 440s  expect-delivered B conf 2
run 450s
)";

}  // namespace

int main(int argc, char** argv) {
  std::string text;
  if (argc > 1) {
    std::ifstream file(argv[1]);
    if (!file) {
      std::cerr << "cannot open " << argv[1] << "\n";
      return 2;
    }
    std::stringstream buffer;
    buffer << file.rdbuf();
    text = buffer.str();
  } else {
    std::cout << "(no scenario file given; running the built-in Figure-1 "
                 "demo)\n\n";
    text = kDemo;
  }

  std::string error;
  const auto scenario = cbt::core::Scenario::Parse(text, &error);
  if (!scenario) {
    std::cerr << "parse error: " << error << "\n";
    return 2;
  }

  const auto result = scenario->Run(&std::cout);
  std::cout << "\nfinished at t=" << cbt::FormatSimTime(result.end_time)
            << "; " << result.expectations.size() << " expectation(s)\n";
  bool ok = true;
  for (const auto& e : result.expectations) {
    std::cout << "  " << (e.passed ? "PASS" : "FAIL") << "  "
              << e.description << " (" << e.detail << ")\n";
    ok = ok && e.passed;
  }
  return ok ? 0 : 1;
}
