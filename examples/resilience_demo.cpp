// Resilience demo: watch CBT survive router failures in real (simulated)
// time — keepalive timeout, core-list fallback, and loop-free repair.
//
// Topology: 4x4 grid; primary core at one corner, secondary at the
// opposite corner; a video source and three receivers. We kill the
// primary core mid-stream and print the delivery gap the receivers see.
#include <cstdio>
#include <vector>

#include "cbt/domain.h"
#include "netsim/topologies.h"

using namespace cbt;  // NOLINT — example brevity

int main() {
  netsim::Simulator sim(3);
  netsim::Topology topo = netsim::MakeGrid(sim, 4, 4);
  core::CbtDomain domain(sim, topo);

  const Ipv4Address video(239, 8, 0, 1);
  domain.RegisterGroup(video, {topo.routers[0], topo.routers[15]});
  domain.Start();
  sim.RunUntil(kSecond);

  core::HostAgent& source = domain.AddHost(topo.router_lans[5], "cam");
  std::vector<core::HostAgent*> viewers;
  for (const std::size_t idx : {3u, 10u, 12u}) {
    viewers.push_back(
        &domain.AddHost(topo.router_lans[idx], "tv" + std::to_string(idx)));
    viewers.back()->JoinGroup(video);
  }
  source.JoinGroup(video);  // the camera host is a member too
  sim.RunUntil(10 * kSecond);

  // Report repair events as they happen.
  for (const NodeId id : domain.router_ids()) {
    core::CbtRouter::Callbacks cb;
    cb.on_parent_lost = [&sim, id](Ipv4Address) {
      std::printf("  t=%-12s %s: parent unreachable, re-joining\n",
                  FormatSimTime(sim.Now()).c_str(), sim.node(id).name.c_str());
    };
    cb.on_reconnected = [&sim, id](Ipv4Address) {
      std::printf("  t=%-12s %s: re-attached to the tree\n",
                  FormatSimTime(sim.Now()).c_str(), sim.node(id).name.c_str());
    };
    domain.router(id).set_callbacks(std::move(cb));
  }

  // Stream one frame per second for 10 simulated minutes; the primary
  // core dies at t=60s.
  const SimTime start = sim.Now();
  for (int s = 0; s < 600; ++s) {
    sim.Schedule(s * kSecond, [&source, video] {
      source.SendToGroup(video, std::vector<std::uint8_t>(100, 0xF0));
    });
  }
  sim.Schedule(60 * kSecond, [&sim, &topo] {
    std::printf("  t=%-12s !!! primary core %s fails\n",
                FormatSimTime(sim.Now()).c_str(),
                sim.node(topo.routers[0]).name.c_str());
    sim.SetNodeUp(topo.routers[0], false);
  });
  sim.RunUntil(start + 610 * kSecond);

  std::printf("\ndelivery: 600 frames streamed, primary core killed at "
              "t=60s\n");
  for (core::HostAgent* v : viewers) {
    // Find the largest gap between consecutive deliveries.
    SimDuration worst_gap = 0;
    SimTime last = start;
    for (const auto& r : v->received()) {
      if (r.group != video) continue;
      worst_gap = std::max(worst_gap, r.time - last);
      last = r.time;
    }
    std::printf("  viewer received %4llu/600 frames, worst outage %.1fs\n",
                (unsigned long long)v->ReceivedCount(video),
                (double)worst_gap / kSecond);
  }
  std::printf("\n(the outage length is governed by the section 9 timers: "
              "ECHO-TIMEOUT 90s + up to one ECHO-INTERVAL, then one join "
              "round trip — tighten the timers in CbtConfig for faster "
              "fail-over, at higher keepalive cost; see "
              "bench_failure_recovery)\n");
  return 0;
}
