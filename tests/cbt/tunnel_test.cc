// Section 5.2: CBT over a virtual topology — per-interface modes,
// configured tunnels, and ranked interfaces with backups replacing the
// topology-discovery protocol.
#include <gtest/gtest.h>

#include "cbt/domain.h"
#include "cbt/tunnel_config.h"
#include "netsim/topologies.h"

namespace cbt::core {
namespace {

using netsim::Simulator;
using netsim::Topology;

constexpr Ipv4Address kGroup(239, 52, 0, 1);
const std::vector<std::uint8_t> kPayload{9, 9, 9};

TEST(TunnelConfig, ModeDefaultsAndOverrides) {
  TunnelConfig config;
  EXPECT_EQ(config.ModeOf(0, VifMode::kNative), VifMode::kNative);
  EXPECT_EQ(config.ModeOf(0, VifMode::kCbtTunnel), VifMode::kCbtTunnel);
  config.SetVifMode(0, VifMode::kCbtTunnel);
  EXPECT_EQ(config.ModeOf(0, VifMode::kNative), VifMode::kCbtTunnel);
  EXPECT_FALSE(config.Active());
}

TEST(TunnelConfig, AddTunnelImpliesCbtMode) {
  TunnelConfig config;
  config.AddTunnel(2, Ipv4Address(128, 16, 8, 117));
  EXPECT_EQ(config.ModeOf(2, VifMode::kNative), VifMode::kCbtTunnel);
  ASSERT_TRUE(config.TunnelRemote(2).has_value());
  EXPECT_EQ(*config.TunnelRemote(2), Ipv4Address(128, 16, 8, 117));
}

TEST(TunnelConfig, SelectPathPrefersRankThenLiveness) {
  Simulator sim;
  const NodeId a = sim.AddNode("a", true);
  const NodeId b = sim.AddNode("b", true);
  const SubnetId link1 = sim.Connect(a, b);
  const SubnetId link2 = sim.Connect(a, b);

  TunnelConfig config;
  const Ipv4Address core(10, 50, 0, 1);
  config.AddTunnel(0, sim.interface(b, 0).address);
  config.AddTunnel(1, sim.interface(b, 1).address);
  config.SetCoreRanking(core, {0, 1});
  EXPECT_TRUE(config.Active());
  EXPECT_TRUE(config.HasRankingFor(core));

  auto path = config.SelectPath(sim, a, core);
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->vif, 0);
  EXPECT_EQ(path->remote, sim.interface(b, 0).address);

  // Primary tunnel down: the spec's "next-highest ranked available
  // route is selected".
  sim.SetSubnetUp(link1, false);
  path = config.SelectPath(sim, a, core);
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->vif, 1);

  // Both down: no path.
  sim.SetSubnetUp(link2, false);
  EXPECT_FALSE(config.SelectPath(sim, a, core).has_value());

  // Unranked core: rankings don't apply.
  EXPECT_FALSE(config.SelectPath(sim, a, Ipv4Address(9, 9, 9, 9)).has_value());
}

/// Two islands joined by two parallel tunnels; the member island ranks
/// tunnel #1 over tunnel #2 toward the core.
class TunnelFixture : public ::testing::Test {
 protected:
  TunnelFixture() {
    island = sim.AddNode("island", true);
    corertr = sim.AddNode("corertr", true);
    topo.routers = {island, corertr};
    topo.nodes = {{"island", island}, {"corertr", corertr}};
    tunnel1 = sim.Connect(island, corertr);
    tunnel2 = sim.Connect(island, corertr);
    member_lan = sim.AddSubnet(
        "mlan", SubnetAddress::FromPrefix(Ipv4Address(10, 60, 0, 0), 16));
    core_lan = sim.AddSubnet(
        "clan", SubnetAddress::FromPrefix(Ipv4Address(10, 61, 0, 0), 16));
    sim.Attach(island, member_lan);
    sim.Attach(corertr, core_lan);
    topo.subnets = {{"t1", tunnel1}, {"t2", tunnel2},
                    {"mlan", member_lan}, {"clan", core_lan}};

    domain.emplace(sim, topo);
    core_addr = domain->RegisterGroup(kGroup, {corertr}).front();

    // Island-side virtual-topology configuration (the spec's example
    // tables): both p2p links are CBT-mode tunnels; ranking prefers t1.
    auto& config = domain->router(island).tunnel_config();
    config.AddTunnel(0, sim.interface(corertr, 0).address);
    config.AddTunnel(1, sim.interface(corertr, 1).address);
    config.SetCoreRanking(core_addr, {0, 1});
    // The core side marks its tunnel ends CBT-mode too.
    auto& core_config = domain->router(corertr).tunnel_config();
    core_config.AddTunnel(0, sim.interface(island, 0).address);
    core_config.AddTunnel(1, sim.interface(island, 1).address);

    domain->Start();
    sim.RunUntil(kSecond);
    member = &domain->AddHost(member_lan, "m");
    source = &domain->AddHost(core_lan, "s");
    member->JoinGroup(kGroup);
    sim.RunUntil(10 * kSecond);
  }

  Simulator sim{1};
  Topology topo;
  NodeId island, corertr;
  SubnetId tunnel1, tunnel2, member_lan, core_lan;
  std::optional<CbtDomain> domain;
  Ipv4Address core_addr;
  HostAgent* member = nullptr;
  HostAgent* source = nullptr;
};

TEST_F(TunnelFixture, JoinFollowsTheRankedTunnel) {
  ASSERT_TRUE(domain->router(island).IsOnTree(kGroup));
  const FibEntry* entry = domain->router(island).fib().Find(kGroup);
  ASSERT_TRUE(entry->HasParent());
  EXPECT_EQ(entry->parent_vif, 0);  // tunnel #1, the highest-ranked
  EXPECT_EQ(entry->parent_address, sim.interface(corertr, 0).address);
}

TEST_F(TunnelFixture, DataCrossesTunnelEncapsulated) {
  sim.ResetCounters();
  source->SendToGroup(kGroup, kPayload);
  sim.RunUntil(sim.Now() + 5 * kSecond);
  EXPECT_EQ(member->ReceivedCount(kGroup), 1u);
  // The tunnel carried a CBT-mode (encapsulated) frame even though the
  // domain default is native mode.
  EXPECT_GE(domain->router(corertr).stats().data_encapsulated, 1u);
  EXPECT_GE(domain->router(island).stats().data_decapsulated, 1u);
  EXPECT_EQ(sim.subnet(tunnel1).counters.frames_sent, 1u);
  EXPECT_EQ(sim.subnet(tunnel2).counters.frames_sent, 0u);
}

TEST_F(TunnelFixture, PrimaryTunnelFailureFallsBackToBackup) {
  sim.SetSubnetUp(tunnel1, false);
  // The echo keepalive times out, the island re-joins, and the ranking
  // must pick tunnel #2.
  sim.RunUntil(sim.Now() + 300 * kSecond);
  const FibEntry* entry = domain->router(island).fib().Find(kGroup);
  ASSERT_NE(entry, nullptr);
  ASSERT_TRUE(entry->HasParent());
  EXPECT_EQ(entry->parent_vif, 1);  // the backup

  source->SendToGroup(kGroup, kPayload);
  sim.RunUntil(sim.Now() + 5 * kSecond);
  EXPECT_EQ(member->ReceivedCount(kGroup), 1u);
}

TEST_F(TunnelFixture, BothTunnelsDownGivesUpCleanly) {
  sim.SetSubnetUp(tunnel1, false);
  sim.SetSubnetUp(tunnel2, false);
  sim.RunUntil(sim.Now() + 400 * kSecond);
  EXPECT_FALSE(domain->router(island).IsOnTree(kGroup));
  EXPECT_GE(domain->router(island).stats().reconnects_failed, 1u);
}

TEST(TunnelRanking, PhysicalInterfaceWithoutRemoteUsesNeighbor) {
  // A ranked *physical* interface (no configured remote): the next hop
  // is the lowest-addressed neighbouring router on that subnet — the
  // spec's mixed `phys native` rows in the section 5.2 example table.
  Simulator sim{1};
  netsim::Topology topo;
  const NodeId a = sim.AddNode("a", true);
  const NodeId b = sim.AddNode("b", true);
  const NodeId c = sim.AddNode("c", true);
  topo.routers = {a, b, c};
  topo.nodes = {{"a", a}, {"b", b}, {"c", c}};
  const SubnetId shared = sim.AddSubnet(
      "shared", SubnetAddress::FromPrefix(Ipv4Address(10, 80, 0, 0), 16));
  sim.Attach(a, shared);
  sim.Attach(b, shared);
  sim.Attach(c, shared);
  const SubnetId lan_a = sim.AddSubnet(
      "lanA", SubnetAddress::FromPrefix(Ipv4Address(10, 81, 0, 0), 16));
  const SubnetId lan_c = sim.AddSubnet(
      "lanC", SubnetAddress::FromPrefix(Ipv4Address(10, 82, 0, 0), 16));
  sim.Attach(a, lan_a);
  sim.Attach(c, lan_c);
  topo.subnets = {{"shared", shared}, {"lanA", lan_a}, {"lanC", lan_c}};

  CbtDomain domain(sim, topo);
  const Ipv4Address core_addr = domain.RegisterGroup(kGroup, {c}).front();
  // Rank a's shared interface (vif 0) for the core, with NO AddTunnel:
  // the router derives the neighbour itself. Note the core c IS on the
  // shared subnet, so the neighbour resolution short-circuits to it.
  auto& config = domain.router(a).tunnel_config();
  config.SetCoreRanking(core_addr, {0});
  domain.Start();
  sim.RunUntil(kSecond);

  auto& m = domain.AddHost(lan_a, "m");
  m.JoinGroup(kGroup);
  sim.RunUntil(10 * kSecond);
  ASSERT_TRUE(domain.router(a).IsOnTree(kGroup));
  EXPECT_EQ(sim.FindNodeByAddress(
                domain.router(a).fib().Find(kGroup)->parent_address),
            c);

  auto& src = domain.AddHost(lan_c, "s");
  src.SendToGroup(kGroup, kPayload);
  sim.RunUntil(sim.Now() + 5 * kSecond);
  EXPECT_EQ(m.ReceivedCount(kGroup), 1u);
}

TEST(MixedMode, NativeDomainWithOneCbtLeg) {
  // Line r0 - r1 - r2 (core at r2); the r0-r1 link is a CBT-mode tunnel,
  // r1-r2 stays native. A packet from behind r2 must cross r1-r0
  // encapsulated and be delivered natively on r0's LAN.
  Simulator sim{1};
  Topology topo = netsim::MakeLine(sim, 3);
  CbtDomain domain(sim, topo);
  domain.RegisterGroup(kGroup, {topo.routers[2]});

  // vif indexing in MakeLine: r0's vif0 = link to r1; r1's vif0 = link to
  // r0, vif1 = link to r2.
  domain.router(topo.routers[0])
      .tunnel_config()
      .SetVifMode(0, VifMode::kCbtTunnel);
  domain.router(topo.routers[1])
      .tunnel_config()
      .SetVifMode(0, VifMode::kCbtTunnel);

  domain.Start();
  sim.RunUntil(kSecond);
  auto& member = domain.AddHost(topo.router_lans[0], "m");
  auto& src = domain.AddHost(topo.router_lans[2], "s");
  member.JoinGroup(kGroup);
  sim.RunUntil(10 * kSecond);

  src.SendToGroup(kGroup, kPayload);
  sim.RunUntil(sim.Now() + 5 * kSecond);
  EXPECT_EQ(member.ReceivedCount(kGroup), 1u);
  // r1 encapsulated toward r0; r0 decapsulated onto its member LAN.
  EXPECT_GE(domain.router(topo.routers[1]).stats().data_encapsulated, 1u);
  EXPECT_GE(domain.router(topo.routers[0]).stats().data_decapsulated, 1u);
}

}  // namespace
}  // namespace cbt::core
