// Host-side IGMP behaviour: unsolicited reports, query responses with
// suppression, leaves, and data send/receive filtering.
#include <gtest/gtest.h>

#include "cbt/domain.h"
#include "netsim/topologies.h"

namespace cbt::core {
namespace {

using netsim::Simulator;
using netsim::Topology;

constexpr Ipv4Address kGroup(239, 3, 2, 1);

/// A bare LAN with one router and several hosts; the router agent records
/// the IGMP messages it receives.
class HostFixture : public ::testing::Test {
 protected:
  HostFixture() {
    router_node = sim.AddNode("r", true);
    topo.routers.push_back(router_node);
    topo.nodes["r"] = router_node;
    lan = sim.AddSubnet(
        "lan", SubnetAddress::FromPrefix(Ipv4Address(10, 70, 0, 0), 16));
    topo.subnets["lan"] = lan;
    sim.Attach(router_node, lan);
    domain.emplace(sim, topo);
    domain->RegisterGroup(kGroup, {router_node});
    domain->Start();
    sim.RunUntil(kSecond);
  }

  Simulator sim{1};
  Topology topo;
  NodeId router_node;
  SubnetId lan;
  std::optional<CbtDomain> domain;
};

TEST_F(HostFixture, JoinSendsCoreReportBeforeMembershipReport) {
  auto& h = domain->AddHost(lan, "h");
  h.JoinGroup(kGroup);
  sim.RunUntil(sim.Now() + 5 * kSecond);
  // The D-DR learned the mapping and joined (it is the core here, so it
  // roots the tree instantly).
  EXPECT_TRUE(domain->router(router_node).IsOnTree(kGroup));
  EXPECT_TRUE(h.IsMember(kGroup));
}

TEST_F(HostFixture, ReportSuppressionLimitsResponders) {
  // Many members; on each general query at most a couple of reports
  // should hit the wire thanks to suppression.
  for (int i = 0; i < 8; ++i) {
    domain->AddHost(lan, "h" + std::to_string(i)).JoinGroup(kGroup);
  }
  sim.RunUntil(10 * kSecond);
  sim.ResetCounters();
  // Run across exactly one general-query cycle (60s interval).
  sim.RunUntil(sim.Now() + 70 * kSecond);
  // Frames on the LAN: 1-2 queries + suppressed responses + router echoes
  // etc. The key claim: nowhere near 8 reports per query.
  EXPECT_LT(sim.subnet(lan).counters.frames_sent, 14u);
}

TEST_F(HostFixture, LeaveGroupIsIdempotent) {
  auto& h = domain->AddHost(lan, "h");
  h.JoinGroup(kGroup);
  sim.RunUntil(sim.Now() + 2 * kSecond);
  h.LeaveGroup(kGroup);
  h.LeaveGroup(kGroup);  // second leave: no crash, no extra message
  EXPECT_FALSE(h.IsMember(kGroup));
}

TEST_F(HostFixture, NonMemberDoesNotRecordData) {
  auto& member = domain->AddHost(lan, "member");
  auto& lurker = domain->AddHost(lan, "lurker");
  member.JoinGroup(kGroup);
  sim.RunUntil(sim.Now() + 5 * kSecond);

  auto& sender = domain->AddHost(lan, "sender");
  sender.SendToGroup(kGroup, std::vector<std::uint8_t>{1, 2});
  sim.RunUntil(sim.Now() + 2 * kSecond);
  EXPECT_EQ(member.ReceivedCount(kGroup), 1u);
  EXPECT_EQ(lurker.ReceivedCount(kGroup), 0u);
  EXPECT_EQ(sender.ReceivedCount(kGroup), 0u);  // no self-delivery
}

TEST_F(HostFixture, OnDataCallbackCarriesMetadata) {
  auto& member = domain->AddHost(lan, "member");
  member.JoinGroup(kGroup);
  sim.RunUntil(sim.Now() + 2 * kSecond);

  int called = 0;
  member.on_data = [&](const HostAgent::Received& r) {
    EXPECT_EQ(r.group, kGroup);
    EXPECT_EQ(r.bytes, 3u);
    EXPECT_EQ(r.time, sim.Now());
    ++called;
  };
  auto& sender = domain->AddHost(lan, "sender");
  sender.SendToGroup(kGroup, std::vector<std::uint8_t>{1, 2, 3});
  sim.RunUntil(sim.Now() + 2 * kSecond);
  EXPECT_EQ(called, 1);
}

TEST_F(HostFixture, MembershipPersistsAcrossManyQueryCycles) {
  auto& h = domain->AddHost(lan, "h");
  h.JoinGroup(kGroup);
  sim.RunUntil(sim.Now() + 10 * 60 * kSecond);  // ten query cycles
  EXPECT_TRUE(domain->router(router_node).igmp().AnyMembers(kGroup));
}

TEST_F(HostFixture, LegacyV2HostJoinsViaDirectoryMapping) {
  // Section 2.4: an IGMPv2 host cannot issue RP/Core-Reports; the D-DR
  // must glean the mapping "by some other means" — the directory.
  auto& h = domain->AddHost(lan, "legacy");
  h.set_igmp_version(IgmpHostVersion::kV2);
  h.JoinGroup(kGroup);
  sim.RunUntil(sim.Now() + 5 * kSecond);
  EXPECT_TRUE(domain->router(router_node).IsOnTree(kGroup));
}

TEST_F(HostFixture, LegacyV1HostLeavesByTimeoutOnly) {
  auto& h = domain->AddHost(lan, "v1");
  h.set_igmp_version(IgmpHostVersion::kV1);
  h.JoinGroup(kGroup);
  sim.RunUntil(sim.Now() + 5 * kSecond);
  ASSERT_TRUE(domain->router(router_node).igmp().AnyMembers(kGroup));

  const SimTime left = sim.Now();
  h.LeaveGroup(kGroup);
  // No leave message: presence persists past the fast-leave window...
  sim.RunUntil(left + 30 * kSecond);
  EXPECT_TRUE(domain->router(router_node).igmp().AnyMembers(kGroup));
  // ...and ages out after the full membership timeout (2*60+10 s).
  sim.RunUntil(left + 200 * kSecond);
  EXPECT_FALSE(domain->router(router_node).igmp().AnyMembers(kGroup));
}

TEST_F(HostFixture, HostIgnoresCbtControlAndEncapsulatedTraffic) {
  auto& h = domain->AddHost(lan, "h");
  h.JoinGroup(kGroup);
  sim.RunUntil(sim.Now() + 2 * kSecond);

  // Inject a CBT-mode multicast (protocol 7) addressed to the group: the
  // host's IP module must discard it (section 5).
  const auto inner = packet::BuildAppDatagram(
      Ipv4Address(10, 70, 0, 99), kGroup, std::vector<std::uint8_t>{1});
  packet::CbtDataHeader hdr;
  hdr.group = kGroup;
  hdr.ip_ttl = 8;
  hdr.on_tree = true;
  const NodeId injector = sim.AddNode("inj", false);
  sim.Attach(injector, lan);
  sim.SendDatagram(injector, 0, kGroup,
                   packet::BuildCbtModeDatagram(Ipv4Address(10, 70, 0, 99),
                                                kGroup, hdr, inner));
  sim.RunUntil(sim.Now() + 2 * kSecond);
  EXPECT_EQ(h.ReceivedCount(kGroup), 0u);
}

}  // namespace
}  // namespace cbt::core
