// Multi-core shared trees: k-core partition joins, assigned-core failover
// (section 6.1 under a partition), soft-state reconciliation against a
// replaced directory core list, and the locality strategy end to end.
#include <gtest/gtest.h>

#include <optional>
#include <set>

#include "analysis/invariant_auditor.h"
#include "cbt/core_selection.h"
#include "cbt/domain.h"
#include "netsim/topologies.h"

namespace cbt::core {
namespace {

using netsim::Simulator;
using netsim::Topology;

constexpr Ipv4Address kGroup(239, 9, 9, 9);
const std::vector<std::uint8_t> kPayload{7, 7};

/// Soak-style tightened timers so detection/teardown/reconciliation all
/// land within a short run (the iff scan is the reconciliation backstop).
CbtConfig TightConfig() {
  CbtConfig config;
  config.echo_interval = 5 * kSecond;
  config.echo_timeout = 15 * kSecond;
  config.pend_join_interval = 2 * kSecond;
  config.pend_join_timeout = 8 * kSecond;
  config.expire_pending_join = 30 * kSecond;
  config.child_assert_interval = 10 * kSecond;
  config.child_assert_expire = 25 * kSecond;
  config.iff_scan_interval = 60 * kSecond;
  config.reconnect_timeout = 30 * kSecond;
  config.proxy_refresh_interval = 20 * kSecond;
  return config;
}

/// 4x4 grid, every router with a stub LAN. Node ids are row-major
/// (topo.routers[y * 4 + x]); opposite corners make natural core sites.
class MultiCoreTreeFixture : public ::testing::Test {
 protected:
  MultiCoreTreeFixture() {
    topo = netsim::MakeGrid(sim, 4, 4);
    domain.emplace(sim, topo, TightConfig());
  }

  NodeId router_at(int x, int y) const {
    return topo.routers[static_cast<std::size_t>(y * 4 + x)];
  }
  SubnetId lan_at(int x, int y) const {
    return topo.router_lans[static_cast<std::size_t>(y * 4 + x)];
  }

  /// Runs the convergence probe and asserts a clean audit.
  void ExpectConverged(SimDuration window = 120 * kSecond) {
    const auto clean =
        analysis::RunUntilInvariantsHold(*domain, sim.Now() + window);
    ASSERT_TRUE(clean.has_value()) << "invariants never held; last audit:\n"
                                   << RenderAudit();
  }

  std::string RenderAudit() {
    std::ostringstream os;
    for (const auto& v : analysis::InvariantAuditor(*domain).Audit().violations) {
      os << "  " << v.Describe() << "\n";
    }
    return os.str();
  }

  Simulator sim{1};
  Topology topo;
  std::optional<CbtDomain> domain;
};

TEST_F(MultiCoreTreeFixture, PartitionedJoinTargetsAssignedCore) {
  const NodeId core0 = router_at(0, 0), core1 = router_at(3, 3);
  core_selection::Placement placement;
  placement.cores = {core0, core1};
  placement.assignment = {0, 1};
  const std::vector<Ipv4Address> addrs = domain->RegisterGroup(
      kGroup, placement, {lan_at(1, 0), lan_at(2, 3)});
  ASSERT_EQ(addrs.size(), 2u);
  domain->Start();
  sim.RunUntil(kSecond);

  HostAgent& near0 = domain->AddHost(lan_at(1, 0), "m-near0");
  HostAgent& near1 = domain->AddHost(lan_at(2, 3), "m-near1");
  near0.JoinGroup(kGroup);
  near1.JoinGroup(kGroup);
  sim.RunUntil(sim.Now() + 30 * kSecond);

  // Both cores anchored: core0 is the primary; core1 learned its core
  // role from the join targeting it (section 6.2) and bridged to the
  // primary, so the k subtrees form one connected forest.
  const FibEntry* e0 = domain->router(core0).fib().Find(kGroup);
  const FibEntry* e1 = domain->router(core1).fib().Find(kGroup);
  ASSERT_NE(e0, nullptr);
  ASSERT_NE(e1, nullptr);
  EXPECT_TRUE(e0->is_primary_core);
  EXPECT_TRUE(e1->is_core);
  EXPECT_FALSE(e1->is_primary_core);
  EXPECT_TRUE(e1->HasParent()) << "secondary core must bridge to primary";

  // Each member D-DR's branch affiliation names its assigned core.
  const FibEntry* d0 = domain->router(router_at(1, 0)).fib().Find(kGroup);
  const FibEntry* d1 = domain->router(router_at(2, 3)).fib().Find(kGroup);
  ASSERT_NE(d0, nullptr);
  ASSERT_NE(d1, nullptr);
  EXPECT_EQ(d0->affiliation, addrs[0]);
  EXPECT_EQ(d1->affiliation, addrs[1]);

  ExpectConverged();

  // Data crosses the core bridge: a member behind core0's subtree reaches
  // the member behind core1's.
  near0.SendToGroup(kGroup, kPayload);
  sim.RunUntil(sim.Now() + 2 * kSecond);
  EXPECT_EQ(near1.ReceivedCount(kGroup), 1u);
}

TEST_F(MultiCoreTreeFixture, AssignedCoreFailoverCyclesWithoutLooping) {
  const NodeId core0 = router_at(0, 0), core1 = router_at(3, 3);
  core_selection::Placement placement;
  placement.cores = {core0, core1};
  placement.assignment = {1};
  domain->RegisterGroup(kGroup, placement, {lan_at(2, 3)});
  domain->Start();
  sim.RunUntil(kSecond);

  HostAgent& member = domain->AddHost(lan_at(2, 3), "m");
  member.JoinGroup(kGroup);
  sim.RunUntil(sim.Now() + 20 * kSecond);

  const NodeId ddr = router_at(2, 3);
  ASSERT_TRUE(domain->router(ddr).IsOnTree(kGroup));

  int reconnected = 0;
  CbtRouter::Callbacks cb;
  cb.on_reconnected = [&](Ipv4Address) { ++reconnected; };
  domain->router(ddr).set_callbacks(std::move(cb));

  // Kill the assigned core. The D-DR's reconnect consults the assigned
  // index first (dead), then must cycle to the next listed core
  // (section 6.1) instead of retrying the corpse forever.
  domain->CrashRouter(core1);
  sim.RunUntil(sim.Now() + 200 * kSecond);

  EXPECT_GE(reconnected, 1);
  const FibEntry* entry = domain->router(ddr).fib().Find(kGroup);
  ASSERT_NE(entry, nullptr);
  EXPECT_TRUE(entry->HasParent() || entry->is_core);

  // The branch now hangs from the surviving primary: walk the parent
  // chain and require it to terminate at core0 without revisiting nodes.
  std::set<NodeId> seen;
  NodeId cur = ddr;
  while (true) {
    ASSERT_TRUE(seen.insert(cur).second) << "parent loop through node "
                                         << cur.value();
    const FibEntry* e = domain->router(cur).fib().Find(kGroup);
    ASSERT_NE(e, nullptr);
    if (!e->HasParent()) break;
    const auto parent = sim.FindNodeByAddress(e->parent_address);
    ASSERT_TRUE(parent.has_value());
    cur = *parent;
  }
  EXPECT_EQ(cur, core0);
}

TEST_F(MultiCoreTreeFixture, DirectoryCoreReplacementDoesNotStrandFib) {
  const NodeId old_core = router_at(0, 0), new_core = router_at(3, 3);
  domain->RegisterGroup(kGroup, {old_core});
  domain->Start();
  sim.RunUntil(kSecond);

  HostAgent& m1 = domain->AddHost(lan_at(1, 1), "m1");
  HostAgent& m2 = domain->AddHost(lan_at(3, 0), "m2");
  m1.JoinGroup(kGroup);
  m2.JoinGroup(kGroup);
  sim.RunUntil(sim.Now() + 20 * kSecond);
  ASSERT_TRUE(domain->router(old_core).fib().Find(kGroup)->is_primary_core);

  // Replace the directory's core list mid-session, with members joined.
  // No management orchestration beyond the publish: the soft-state
  // reconciliation at every quit-check (bounded by the iff scan) must
  // demote the old anchor, flush its subtree, and re-home every member
  // on the new core — leaving no stranded FIB state behind.
  domain->RegisterGroup(kGroup, {new_core});
  sim.RunUntil(sim.Now() + 3 * TightConfig().iff_scan_interval);

  ExpectConverged();

  const FibEntry* fresh = domain->router(new_core).fib().Find(kGroup);
  ASSERT_NE(fresh, nullptr);
  EXPECT_TRUE(fresh->is_primary_core);
  const FibEntry* stale = domain->router(old_core).fib().Find(kGroup);
  if (stale != nullptr) {
    EXPECT_FALSE(stale->is_core) << "old anchor kept its core role";
  }

  // Members are still served through the re-homed tree.
  m1.SendToGroup(kGroup, kPayload);
  sim.RunUntil(sim.Now() + 2 * kSecond);
  EXPECT_EQ(m2.ReceivedCount(kGroup), 1u);
}

TEST_F(MultiCoreTreeFixture, LocalityStrategyPartitionJoinsAtKFour) {
  // Members spread over all four grid quadrants; the locality strategy
  // clusters them by unicast delay and places one core per cluster.
  const std::vector<NodeId> members = {
      router_at(0, 0), router_at(1, 1), router_at(3, 0), router_at(2, 1),
      router_at(0, 3), router_at(1, 2), router_at(3, 3), router_at(2, 2)};
  std::vector<SubnetId> member_lans;
  for (const NodeId m : members) {
    member_lans.push_back(
        topo.router_lans[static_cast<std::size_t>(m.value())]);
  }

  const auto strategy = core_selection::MakeStrategy("locality");
  ASSERT_NE(strategy, nullptr);
  core_selection::PlacementInput in;
  in.sim = &sim;
  in.routes = &domain->routes();
  in.routers = topo.routers;
  in.member_routers = members;
  in.group = kGroup;
  const core_selection::Placement placement = strategy->Place(in, 4);
  ASSERT_EQ(placement.cores.size(), 4u);
  ASSERT_EQ(placement.assignment.size(), members.size());

  domain->RegisterGroup(kGroup, placement, member_lans);
  domain->Start();
  sim.RunUntil(kSecond);

  std::vector<HostAgent*> hosts;
  for (std::size_t i = 0; i < member_lans.size(); ++i) {
    hosts.push_back(
        &domain->AddHost(member_lans[i], "m" + std::to_string(i)));
    hosts.back()->JoinGroup(kGroup);
  }
  sim.RunUntil(sim.Now() + 40 * kSecond);
  ExpectConverged();

  // The partition is real: member branches hang from more than one core.
  std::set<Ipv4Address> affiliations;
  for (const NodeId m : members) {
    const FibEntry* e = domain->router(m).fib().Find(kGroup);
    ASSERT_NE(e, nullptr) << "member D-DR " << m.value() << " off tree";
    affiliations.insert(e->affiliation);
  }
  EXPECT_GE(affiliations.size(), 2u);

  // And the forest still delivers to everyone from any source.
  hosts.front()->SendToGroup(kGroup, kPayload);
  sim.RunUntil(sim.Now() + 2 * kSecond);
  for (std::size_t i = 1; i < hosts.size(); ++i) {
    EXPECT_EQ(hosts[i]->ReceivedCount(kGroup), 1u) << "receiver " << i;
  }
}

}  // namespace
}  // namespace cbt::core
