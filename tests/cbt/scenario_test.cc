#include "cbt/scenario.h"

#include <gtest/gtest.h>

#include <sstream>

namespace cbt::core {
namespace {

TEST(ScenarioParse, RejectsMissingTopology) {
  std::string error;
  EXPECT_FALSE(Scenario::Parse("group g 239.1.1.1 R0\nrun 10s\n", &error));
  EXPECT_NE(error.find("topology"), std::string::npos);
}

TEST(ScenarioParse, RejectsMissingGroup) {
  std::string error;
  EXPECT_FALSE(Scenario::Parse("topology line 3\nrun 10s\n", &error));
  EXPECT_NE(error.find("group"), std::string::npos);
}

TEST(ScenarioParse, RejectsBadAddressAndReportsLine) {
  std::string error;
  EXPECT_FALSE(Scenario::Parse(
      "topology line 3\ngroup g 10.1.1.1 R0\nrun 10s\n", &error));
  EXPECT_NE(error.find("line 2"), std::string::npos);
  EXPECT_NE(error.find("multicast"), std::string::npos);
}

TEST(ScenarioParse, RejectsUnknownVerbAndFlag) {
  std::string error;
  EXPECT_FALSE(Scenario::Parse("topology line 3\n"
                               "group g 239.1.1.1 R0\n"
                               "at 1s dance h1 g\n",
                               &error));
  EXPECT_NE(error.find("dance"), std::string::npos);
  EXPECT_FALSE(Scenario::Parse("topology line 3\n"
                               "config turbo on\n"
                               "group g 239.1.1.1 R0\n",
                               &error));
  EXPECT_NE(error.find("turbo"), std::string::npos);
}

TEST(ScenarioParse, AcceptsCommentsAndTimes) {
  std::string error;
  const auto s = Scenario::Parse(
      "# a comment\n"
      "topology line 4   # inline comment\n"
      "group g 239.9.9.9 R3\n"
      "at 500ms join h1 R0 g\n"
      "at 2s send h2 g 10\n"
      "run 30s\n",
      &error);
  EXPECT_TRUE(s.has_value()) << error;
}

TEST(ScenarioRun, EndToEndDeliveryAndExpectations) {
  std::string error;
  const auto s = Scenario::Parse(
      "topology line 4\n"
      "group g 239.9.9.9 R3\n"
      "at 1s join h1 R0 g\n"
      "at 10s send src g 64\n"
      "at 20s expect-delivered h1 g 1\n"
      "at 20s expect-on-tree R1 g yes\n"
      "run 25s\n",
      &error);
  ASSERT_TRUE(s.has_value()) << error;
  std::ostringstream trace;
  const auto result = s->Run(&trace);
  ASSERT_EQ(result.expectations.size(), 2u);
  for (const auto& e : result.expectations) {
    EXPECT_TRUE(e.passed) << e.description << ": " << e.detail;
  }
  EXPECT_TRUE(result.AllPassed());
  EXPECT_NE(trace.str().find("joins"), std::string::npos);
  EXPECT_EQ(result.end_time, 25 * kSecond);
}

TEST(ScenarioRun, FailureAndRecoveryScript) {
  std::string error;
  const auto s = Scenario::Parse(
      // Diamond-free line: fail-link between R1 and R2 kills delivery,
      // heal restores it (after the reconnect machinery gives up there's
      // nothing to rejoin through on a line, so members re-join on heal).
      "topology grid 3 3\n"
      "group g 239.9.9.1 R2_2\n"
      "at 1s  join h1 R0_0 g\n"
      "at 10s send src g 8\n"
      "at 15s expect-delivered h1 g 1\n"
      "at 20s fail-node R1_0\n"
      "at 300s send src g 8\n"
      "at 340s expect-delivered h1 g 2\n"
      "run 350s\n",
      &error);
  ASSERT_TRUE(s.has_value()) << error;
  const auto result = s->Run(nullptr);
  for (const auto& e : result.expectations) {
    EXPECT_TRUE(e.passed) << e.description << ": " << e.detail;
  }
}

TEST(ScenarioRun, Figure1HostsUsableByLetter) {
  std::string error;
  const auto s = Scenario::Parse(
      "topology figure1\n"
      "group g 239.1.2.3 R4 R9\n"
      "at 1s join A R1 g\n"
      "at 5s join B R6 g\n"
      "at 10s send G g 32\n"
      "at 20s expect-delivered A g 1\n"
      "at 20s expect-delivered B g 1\n"
      "at 20s expect-on-tree R6 g no\n"  // proxy-ack keeps R6 stateless
      "run 25s\n",
      &error);
  ASSERT_TRUE(s.has_value()) << error;
  const auto result = s->Run(nullptr);
  ASSERT_EQ(result.expectations.size(), 3u);
  for (const auto& e : result.expectations) {
    EXPECT_TRUE(e.passed) << e.description << ": " << e.detail;
  }
}

TEST(ScenarioRun, FailAndHealLinkVerbs) {
  std::string error;
  const auto s = Scenario::Parse(
      "topology line 3\n"
      "group g 239.9.9.3 R2\n"
      "host src R2\n"  // sender placed behind the core-side router
      "at 1s   join h1 R0 g\n"
      "at 10s  send src g 8\n"
      "at 15s  expect-delivered h1 g 1\n"
      "at 20s  fail-link R0 R1\n"
      "at 21s  send src g 8\n"
      "at 30s  expect-delivered h1 g 1\n"  // unchanged: path severed
      "at 40s  heal-link R0 R1\n"
      // After healing, the member's DR re-joins on the next membership
      // refresh; the pre-failure branch state may need the echo timeout
      // to clear first.
      "at 400s send src g 8\n"
      "at 440s expect-delivered h1 g 2\n"
      "run 450s\n",
      &error);
  ASSERT_TRUE(s.has_value()) << error;
  const auto result = s->Run(nullptr);
  ASSERT_EQ(result.expectations.size(), 3u);
  for (const auto& e : result.expectations) {
    EXPECT_TRUE(e.passed) << e.description << ": " << e.detail;
  }
}

TEST(ScenarioRun, AllTopologyKindsParseAndRun) {
  for (const char* topo_line :
       {"topology star 4", "topology tree 3", "topology waxman 12 9",
        "topology figure5", "topology grid 2 2"}) {
    std::string error;
    const std::string script = std::string(topo_line) +
                               "\ngroup g 239.9.9.5 R1\n"
                               "run 5s\n";
    // figure5/star/tree name their routers differently; use a core name
    // that exists everywhere it matters:
    const std::string core =
        std::string(topo_line).find("star") != std::string::npos ? "hub"
        : std::string(topo_line).find("figure5") != std::string::npos
            ? "R1"
        : std::string(topo_line).find("grid") != std::string::npos ? "R0_0"
                                                                   : "R1";
    const std::string fixed = std::string(topo_line) + "\ngroup g 239.9.9.5 " +
                              core + "\nrun 5s\n";
    const auto s = Scenario::Parse(fixed, &error);
    ASSERT_TRUE(s.has_value()) << topo_line << ": " << error;
    const auto result = s->Run(nullptr);
    EXPECT_EQ(result.end_time, 5 * kSecond) << topo_line;
    (void)script;
  }
}

TEST(ScenarioRun, DefaultRunTimeDerivedFromEvents) {
  std::string error;
  const auto s = Scenario::Parse(
      "topology line 2\n"
      "group g 239.9.9.4 R1\n"
      "at 90s join h1 R0 g\n",
      &error);
  ASSERT_TRUE(s.has_value()) << error;
  const auto result = s->Run(nullptr);
  EXPECT_EQ(result.end_time, 120 * kSecond);  // last event + 30s
}

TEST(ScenarioRun, ConfigSwitchesApply) {
  std::string error;
  const auto s = Scenario::Parse(
      "topology figure1\n"
      "config proxy-ack off\n"
      "group g 239.1.2.3 R4 R9\n"
      "at 1s join A R1 g\n"
      "at 5s join B R6 g\n"
      "at 20s expect-on-tree R6 g yes\n"  // without proxy-ack R6 keeps state
      "run 25s\n",
      &error);
  ASSERT_TRUE(s.has_value()) << error;
  const auto result = s->Run(nullptr);
  ASSERT_EQ(result.expectations.size(), 1u);
  EXPECT_TRUE(result.expectations[0].passed)
      << result.expectations[0].detail;
}

}  // namespace
}  // namespace cbt::core
