#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "cbt/core_selection.h"
#include "cbt/group_directory.h"
#include "netsim/topologies.h"
#include "routing/route_manager.h"

namespace cbt::core {
namespace {

using core_selection::MakeStrategy;
using core_selection::Placement;
using core_selection::PlacementInput;
using netsim::MakeLine;
using netsim::MakeStar;
using netsim::Simulator;
using netsim::Topology;

constexpr Ipv4Address kGroup(239, 4, 4, 4);

TEST(GroupDirectory, SetLookupRemove) {
  GroupDirectory dir;
  EXPECT_FALSE(dir.Knows(kGroup));
  EXPECT_TRUE(dir.CoresFor(kGroup).empty());
  EXPECT_FALSE(dir.PrimaryCore(kGroup).has_value());

  dir.SetGroup(kGroup, {Ipv4Address(10, 1, 0, 1), Ipv4Address(10, 2, 0, 1)});
  EXPECT_TRUE(dir.Knows(kGroup));
  EXPECT_EQ(dir.CoresFor(kGroup).size(), 2u);
  EXPECT_EQ(*dir.PrimaryCore(kGroup), Ipv4Address(10, 1, 0, 1));
  EXPECT_EQ(dir.Groups().size(), 1u);

  // Re-registration replaces.
  dir.SetGroup(kGroup, {Ipv4Address(10, 3, 0, 1)});
  EXPECT_EQ(*dir.PrimaryCore(kGroup), Ipv4Address(10, 3, 0, 1));

  dir.RemoveGroup(kGroup);
  EXPECT_FALSE(dir.Knows(kGroup));
}

TEST(GroupDirectory, AssignmentsMapMemberLansToCoreIndices) {
  GroupDirectory dir;
  dir.SetGroup(kGroup, {Ipv4Address(10, 1, 0, 1), Ipv4Address(10, 2, 0, 1)});
  EXPECT_FALSE(dir.HasAssignments(kGroup));
  EXPECT_EQ(dir.AssignedIndex(kGroup, SubnetId(7)), 0u);

  dir.SetAssignments(kGroup, {{SubnetId(7), 1}, {SubnetId(8), 5}});
  EXPECT_TRUE(dir.HasAssignments(kGroup));
  EXPECT_EQ(dir.AssignedIndex(kGroup, SubnetId(7)), 1u);
  // Out-of-range indices clamp to the last listed core; unknown LANs
  // default to the primary.
  EXPECT_EQ(dir.AssignedIndex(kGroup, SubnetId(8)), 1u);
  EXPECT_EQ(dir.AssignedIndex(kGroup, SubnetId(9)), 0u);

  dir.RemoveGroup(kGroup);
  EXPECT_FALSE(dir.HasAssignments(kGroup));
}

TEST(CoreSelection, RegistryResolvesEveryNameAndRejectsUnknowns) {
  for (const std::string_view name : core_selection::StrategyNames()) {
    const auto strategy = MakeStrategy(name);
    ASSERT_NE(strategy, nullptr) << name;
    EXPECT_EQ(strategy->name(), name);
  }
  EXPECT_EQ(MakeStrategy("no-such-strategy"), nullptr);
}

TEST(CoreSelection, RandomCoresAreDistinctRouters) {
  Simulator sim;
  Topology topo = MakeLine(sim, 8);
  Rng rng(5);
  PlacementInput in;
  in.routers = topo.routers;
  in.rng = &rng;
  const auto cores = MakeStrategy("random")->Place(in, 3).cores;
  EXPECT_EQ(cores.size(), 3u);
  EXPECT_NE(cores[0], cores[1]);
  EXPECT_NE(cores[1], cores[2]);
  EXPECT_NE(cores[0], cores[2]);
}

TEST(CoreSelection, HighestDegreePicksTheHub) {
  Simulator sim;
  Topology topo = MakeStar(sim, 6);
  PlacementInput in;
  in.sim = &sim;
  in.routers = topo.routers;
  const auto cores = MakeStrategy("degree")->Place(in, 1).cores;
  ASSERT_EQ(cores.size(), 1u);
  EXPECT_EQ(cores[0], topo.routers[0]) << "the hub has the most interfaces";
}

TEST(CoreSelection, CentreOfALineIsTheMiddle) {
  Simulator sim;
  Topology topo = MakeLine(sim, 7);
  routing::RouteManager routes(sim);
  PlacementInput in;
  in.routes = &routes;
  in.routers = topo.routers;
  const auto cores = MakeStrategy("centre")->Place(in, 1).cores;
  ASSERT_EQ(cores.size(), 1u);
  EXPECT_EQ(cores[0], topo.routers[3]) << "line centre minimizes eccentricity";
}

TEST(CoreSelection, DelayCentreHonoursLinkDelays) {
  Simulator sim;
  // Line with one very slow link at the right end: the delay centre
  // shifts right of the hop centre to balance the slow edge.
  const NodeId r0 = sim.AddNode("r0", true);
  const NodeId r1 = sim.AddNode("r1", true);
  const NodeId r2 = sim.AddNode("r2", true);
  const NodeId r3 = sim.AddNode("r3", true);
  sim.Connect(r0, r1, 1 * kMillisecond);
  sim.Connect(r1, r2, 1 * kMillisecond);
  sim.Connect(r2, r3, 50 * kMillisecond);
  routing::RouteManager routes(sim);
  PlacementInput in;
  in.routes = &routes;
  in.routers = {r0, r1, r2, r3};
  const auto delay_centre = MakeStrategy("delay-centre")->Place(in, 1).cores;
  EXPECT_EQ(delay_centre[0], r2)
      << "r2 splits the dominant 50ms edge from the cheap chain";
}

TEST(CoreSelection, FarthestPointSpreadsMultipleCores) {
  Simulator sim;
  Topology topo = MakeLine(sim, 9);
  routing::RouteManager routes(sim);
  PlacementInput in;
  in.routes = &routes;
  in.routers = topo.routers;
  const auto cores = MakeStrategy("centre")->Place(in, 2).cores;
  ASSERT_EQ(cores.size(), 2u);
  // Second core is far from the first (an end of the line).
  const double spread = routes.Distance(cores[0], cores[1]);
  EXPECT_GE(spread, 3.0);
}

TEST(CoreSelection, GroupHashIsDeterministicAndCovers) {
  Simulator sim;
  Topology topo = MakeLine(sim, 5);
  PlacementInput in;
  in.routers = topo.routers;
  in.group = kGroup;
  // Same group → same rotation; different groups spread over candidates.
  const auto hash = MakeStrategy("hash");
  const auto a1 = hash->Place(in, topo.routers.size()).cores;
  const auto a2 = hash->Place(in, topo.routers.size()).cores;
  EXPECT_EQ(a1, a2);
  std::set<NodeId> firsts;
  for (int g = 0; g < 64; ++g) {
    PlacementInput gi = in;
    gi.group = Ipv4Address(239, 0, 0, static_cast<std::uint8_t>(g));
    firsts.insert(hash->Place(gi, 1).cores.front());
  }
  EXPECT_GE(firsts.size(), 3u) << "hash should spread groups over cores";
  // A full-k rotation preserves the complete candidate set.
  std::vector<NodeId> sorted = a1;
  std::sort(sorted.begin(), sorted.end());
  std::vector<NodeId> expected = topo.routers;
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(sorted, expected);
}

TEST(CoreSelection, AssignNearestPartitionsByDelay) {
  Simulator sim;
  Topology topo = MakeLine(sim, 9);
  routing::RouteManager routes(sim);
  const std::vector<NodeId> cores = {topo.routers[0], topo.routers[8]};
  const std::vector<NodeId> members = {topo.routers[1], topo.routers[2],
                                       topo.routers[6], topo.routers[7]};
  const auto assignment = core_selection::AssignNearest(routes, cores, members);
  ASSERT_EQ(assignment.size(), members.size());
  EXPECT_EQ(assignment[0], 0u);
  EXPECT_EQ(assignment[1], 0u);
  EXPECT_EQ(assignment[2], 1u);
  EXPECT_EQ(assignment[3], 1u);
}

TEST(CoreSelection, LocalityClustersMembersAroundTheirCore) {
  Simulator sim;
  Topology topo = MakeLine(sim, 10);
  routing::RouteManager routes(sim);
  PlacementInput in;
  in.routes = &routes;
  in.routers = topo.routers;
  // Two tight member groups at the line's ends.
  in.member_routers = {topo.routers[0], topo.routers[1], topo.routers[2],
                       topo.routers[7], topo.routers[8], topo.routers[9]};
  const Placement placement = MakeStrategy("locality")->Place(in, 2);
  ASSERT_EQ(placement.cores.size(), 2u);
  ASSERT_EQ(placement.assignment.size(), in.member_routers.size());
  // Each end-cluster lands on one shared core, and the two differ.
  EXPECT_EQ(placement.assignment[0], placement.assignment[1]);
  EXPECT_EQ(placement.assignment[1], placement.assignment[2]);
  EXPECT_EQ(placement.assignment[3], placement.assignment[4]);
  EXPECT_EQ(placement.assignment[4], placement.assignment[5]);
  EXPECT_NE(placement.assignment[0], placement.assignment[3]);
}

TEST(CoreSelection, DeprecatedShimsDelegateToTheRegistry) {
  Simulator sim;
  Topology topo = MakeLine(sim, 7);
  routing::RouteManager routes(sim);
  PlacementInput in;
  in.routes = &routes;
  in.routers = topo.routers;
  EXPECT_EQ(SelectCentreCores(routes, topo.routers, 2),
            MakeStrategy("centre")->Place(in, 2).cores);
  Rng rng_a(9), rng_b(9);
  PlacementInput rin;
  rin.routers = topo.routers;
  rin.rng = &rng_b;
  EXPECT_EQ(SelectRandomCores(topo.routers, 3, rng_a),
            MakeStrategy("random")->Place(rin, 3).cores);
}

}  // namespace
}  // namespace cbt::core
