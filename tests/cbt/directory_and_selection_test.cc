#include <gtest/gtest.h>

#include "cbt/core_selection.h"
#include "cbt/group_directory.h"
#include "netsim/topologies.h"
#include "routing/route_manager.h"

namespace cbt::core {
namespace {

using netsim::MakeLine;
using netsim::MakeStar;
using netsim::Simulator;
using netsim::Topology;

constexpr Ipv4Address kGroup(239, 4, 4, 4);

TEST(GroupDirectory, SetLookupRemove) {
  GroupDirectory dir;
  EXPECT_FALSE(dir.Knows(kGroup));
  EXPECT_TRUE(dir.CoresFor(kGroup).empty());
  EXPECT_FALSE(dir.PrimaryCore(kGroup).has_value());

  dir.SetGroup(kGroup, {Ipv4Address(10, 1, 0, 1), Ipv4Address(10, 2, 0, 1)});
  EXPECT_TRUE(dir.Knows(kGroup));
  EXPECT_EQ(dir.CoresFor(kGroup).size(), 2u);
  EXPECT_EQ(*dir.PrimaryCore(kGroup), Ipv4Address(10, 1, 0, 1));
  EXPECT_EQ(dir.Groups().size(), 1u);

  // Re-registration replaces.
  dir.SetGroup(kGroup, {Ipv4Address(10, 3, 0, 1)});
  EXPECT_EQ(*dir.PrimaryCore(kGroup), Ipv4Address(10, 3, 0, 1));

  dir.RemoveGroup(kGroup);
  EXPECT_FALSE(dir.Knows(kGroup));
}

TEST(CoreSelection, RandomCoresAreDistinctRouters) {
  Simulator sim;
  Topology topo = MakeLine(sim, 8);
  Rng rng(5);
  const auto cores = SelectRandomCores(topo.routers, 3, rng);
  EXPECT_EQ(cores.size(), 3u);
  EXPECT_NE(cores[0], cores[1]);
  EXPECT_NE(cores[1], cores[2]);
  EXPECT_NE(cores[0], cores[2]);
}

TEST(CoreSelection, HighestDegreePicksTheHub) {
  Simulator sim;
  Topology topo = MakeStar(sim, 6);
  const auto cores = SelectHighestDegreeCores(sim, topo.routers, 1);
  ASSERT_EQ(cores.size(), 1u);
  EXPECT_EQ(cores[0], topo.routers[0]) << "the hub has the most interfaces";
}

TEST(CoreSelection, CentreOfALineIsTheMiddle) {
  Simulator sim;
  Topology topo = MakeLine(sim, 7);
  routing::RouteManager routes(sim);
  const auto cores = SelectCentreCores(routes, topo.routers, 1);
  ASSERT_EQ(cores.size(), 1u);
  EXPECT_EQ(cores[0], topo.routers[3]) << "line centre minimizes eccentricity";
}

TEST(CoreSelection, DelayCentreHonoursLinkDelays) {
  Simulator sim;
  // Line with one very slow link at the right end: the delay centre
  // shifts right of the hop centre to balance the slow edge.
  const NodeId r0 = sim.AddNode("r0", true);
  const NodeId r1 = sim.AddNode("r1", true);
  const NodeId r2 = sim.AddNode("r2", true);
  const NodeId r3 = sim.AddNode("r3", true);
  sim.Connect(r0, r1, 1 * kMillisecond);
  sim.Connect(r1, r2, 1 * kMillisecond);
  sim.Connect(r2, r3, 50 * kMillisecond);
  routing::RouteManager routes(sim);
  const std::vector<NodeId> routers{r0, r1, r2, r3};
  const auto delay_centre = SelectDelayCentreCores(routes, routers, 1);
  EXPECT_EQ(delay_centre[0], r2)
      << "r2 splits the dominant 50ms edge from the cheap chain";
}

TEST(CoreSelection, FarthestPointSpreadsMultipleCores) {
  Simulator sim;
  Topology topo = MakeLine(sim, 9);
  routing::RouteManager routes(sim);
  const auto cores = SelectCentreCores(routes, topo.routers, 2);
  ASSERT_EQ(cores.size(), 2u);
  // Second core is far from the first (an end of the line).
  const double spread = routes.Distance(cores[0], cores[1]);
  EXPECT_GE(spread, 3.0);
}

TEST(CoreSelection, GroupHashIsDeterministicAndCovers) {
  Simulator sim;
  Topology topo = MakeLine(sim, 5);
  // Same group → same rotation; different groups spread over candidates.
  const auto a1 = OrderCoresByGroupHash(topo.routers, kGroup);
  const auto a2 = OrderCoresByGroupHash(topo.routers, kGroup);
  EXPECT_EQ(a1, a2);
  std::set<NodeId> firsts;
  for (int g = 0; g < 64; ++g) {
    firsts.insert(OrderCoresByGroupHash(
                      topo.routers,
                      Ipv4Address(239, 0, 0, static_cast<std::uint8_t>(g)))
                      .front());
  }
  EXPECT_GE(firsts.size(), 3u) << "hash should spread groups over cores";
  // The rotation preserves the full candidate set.
  std::vector<NodeId> sorted = a1;
  std::sort(sorted.begin(), sorted.end());
  std::vector<NodeId> expected = topo.routers;
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(sorted, expected);
}

}  // namespace
}  // namespace cbt::core
