// Property-based protocol tests: randomized topologies, memberships,
// failures and traffic, with invariants checked after quiescence:
//   P1  tree consistency — per group, parent pointers form a forest
//       (no cycles) and parent/child records agree pairwise;
//   P2  delivery — every member receives every other member's packet
//       exactly once (no loss on a quiet network, and *no duplicates*);
//   P3  cleanliness — after all members leave, only core routers may
//       still hold state for the group;
//   P4  determinism — identical seeds produce identical protocol
//       outcomes.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "cbt/core_selection.h"
#include "cbt/domain.h"
#include "netsim/topologies.h"

namespace cbt::core {
namespace {

using netsim::Simulator;
using netsim::Topology;

Ipv4Address GroupAddr(int g) {
  return Ipv4Address(239, 100, 0, static_cast<std::uint8_t>(g + 1));
}

/// One randomized scenario world.
struct World {
  explicit World(std::uint64_t seed, int groups = 3, int routers = 24)
      : sim(seed), groups(groups) {
    netsim::WaxmanParams params;
    params.n = routers;
    params.seed = seed * 31 + 7;
    topo = netsim::MakeWaxman(sim, params);
    domain.emplace(sim, topo);
    Rng rng(seed * 13 + 1);
    core_selection::PlacementInput place_in;
    place_in.routers = topo.routers;
    place_in.rng = &rng;
    const auto random_cores = core_selection::MakeStrategy("random");
    for (int g = 0; g < groups; ++g) {
      domain->RegisterGroup(
          GroupAddr(g), random_cores->Place(place_in, 1 + (g % 2)).cores);
    }
    domain->Start();
    sim.RunUntil(kSecond);
  }

  /// Random joins across random LANs.
  std::map<int, std::vector<HostAgent*>> JoinRandomMembers(Rng& rng,
                                                           int per_group) {
    std::map<int, std::vector<HostAgent*>> members;
    for (int g = 0; g < groups; ++g) {
      for (const std::size_t idx : rng.SampleWithoutReplacement(
               topo.routers.size(), (std::size_t)per_group)) {
        auto& h = domain->AddHost(
            topo.router_lans[idx],
            "h" + std::to_string(g) + "_" + std::to_string(idx));
        h.JoinGroup(GroupAddr(g));
        members[g].push_back(&h);
        sim.RunUntil(sim.Now() + 300 * kMillisecond);
      }
    }
    sim.RunUntil(sim.Now() + 30 * kSecond);
    return members;
  }

  /// P1: parent pointers per group form a forest with consistent
  /// parent/child bookkeeping.
  void CheckTreeConsistency(int g) {
    const Ipv4Address group = GroupAddr(g);
    std::map<NodeId, NodeId> parent_of;
    for (const NodeId id : domain->router_ids()) {
      const FibEntry* entry = domain->router(id).fib().Find(group);
      if (entry == nullptr || !entry->HasParent()) continue;
      const auto parent = sim.FindNodeByAddress(entry->parent_address);
      ASSERT_TRUE(parent.has_value());
      parent_of[id] = *parent;

      // Pairwise: the parent lists us as a child via some address we own.
      const FibEntry* parent_entry =
          domain->router(*parent).fib().Find(group);
      ASSERT_NE(parent_entry, nullptr)
          << sim.node(id).name << "'s parent " << sim.node(*parent).name
          << " has no entry for the group";
      bool listed = false;
      for (const ChildEntry& c : parent_entry->children) {
        if (domain->router(id).OwnsAddress(c.address)) listed = true;
      }
      EXPECT_TRUE(listed) << sim.node(*parent).name << " does not list "
                          << sim.node(id).name << " as child";
    }
    // Acyclic: walk up from every node; must terminate within |V| steps.
    for (const auto& [start, first] : parent_of) {
      NodeId cur = start;
      std::set<NodeId> seen{cur};
      while (parent_of.contains(cur)) {
        cur = parent_of[cur];
        ASSERT_TRUE(seen.insert(cur).second)
            << "parent cycle through " << sim.node(cur).name;
      }
    }
  }

  /// P2: all-to-all delivery, exactly once.
  void CheckDelivery(std::map<int, std::vector<HostAgent*>>& members) {
    for (auto& [g, hosts] : members) {
      const auto before = [&] {
        std::vector<std::uint64_t> counts;
        for (auto* h : hosts) counts.push_back(h->ReceivedCount(GroupAddr(g)));
        return counts;
      }();
      for (auto* h : hosts) {
        h->SendToGroup(GroupAddr(g), std::vector<std::uint8_t>{0xAA});
        sim.RunUntil(sim.Now() + 2 * kSecond);
      }
      sim.RunUntil(sim.Now() + 10 * kSecond);
      for (std::size_t i = 0; i < hosts.size(); ++i) {
        EXPECT_EQ(hosts[i]->ReceivedCount(GroupAddr(g)) - before[i],
                  hosts.size() - 1)
            << "group " << g << " member " << i
            << " (exactly one copy from each other member)";
      }
    }
  }

  Simulator sim;
  int groups;
  Topology topo;
  std::optional<CbtDomain> domain;
};

class PropertyFixture : public ::testing::TestWithParam<std::uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, PropertyFixture,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

TEST_P(PropertyFixture, TreesAreConsistentAndDeliveryExact) {
  World world(GetParam());
  Rng rng(GetParam() * 1000 + 1);
  auto members = world.JoinRandomMembers(rng, 5);
  for (int g = 0; g < world.groups; ++g) world.CheckTreeConsistency(g);
  world.CheckDelivery(members);
}

TEST_P(PropertyFixture, StateDrainsAfterAllLeave) {
  World world(GetParam());
  Rng rng(GetParam() * 2000 + 1);
  auto members = world.JoinRandomMembers(rng, 4);
  for (auto& [g, hosts] : members) {
    for (auto* h : hosts) {
      h->LeaveGroup(GroupAddr(g));
      world.sim.RunUntil(world.sim.Now() + kSecond);
    }
  }
  // Leave latency + quit propagation + interface scans.
  world.sim.RunUntil(world.sim.Now() + 700 * kSecond);

  for (int g = 0; g < world.groups; ++g) {
    for (const NodeId id : world.domain->router_ids()) {
      const FibEntry* entry =
          world.domain->router(id).fib().Find(GroupAddr(g));
      if (entry == nullptr) continue;
      EXPECT_TRUE(entry->is_primary_core)
          << world.sim.node(id).name
          << " still holds non-primary-core state for "
          << GroupAddr(g).ToString();
      EXPECT_TRUE(entry->children.empty())
          << world.sim.node(id).name << " still lists children";
    }
  }
}

TEST_P(PropertyFixture, SurvivesRandomLinkFailure) {
  World world(GetParam());
  Rng rng(GetParam() * 3000 + 1);
  auto members = world.JoinRandomMembers(rng, 4);

  // Kill a random subnet (possibly a tree link), wait out recovery, and
  // require consistency plus delivery among still-connected members.
  const SubnetId victim(static_cast<std::int32_t>(
      rng.NextBelow(world.sim.subnet_count())));
  world.sim.SetSubnetUp(victim, false);
  world.sim.RunUntil(world.sim.Now() + 400 * kSecond);

  for (int g = 0; g < world.groups; ++g) world.CheckTreeConsistency(g);

  // Delivery check restricted to groups whose members all remain
  // connected to their tree (a failed stub LAN can legitimately isolate
  // a member's host or DR).
  auto& routes = world.domain->routes();
  for (auto& [g, hosts] : members) {
    bool all_on_tree = true;
    const auto on_tree = world.domain->OnTreeRouters(GroupAddr(g));
    if (on_tree.empty()) continue;
    for (auto* h : hosts) {
      // The host's LAN must still be attached to some on-tree router.
      const auto dr = world.sim.FindNodeByAddress(h->address());
      (void)dr;
      bool reachable = false;
      for (const NodeId r : on_tree) {
        if (routes.IsDirectlyAttached(r, h->address())) reachable = true;
      }
      if (!reachable) all_on_tree = false;
    }
    if (!all_on_tree) continue;
    const auto before = hosts[0]->ReceivedCount(GroupAddr(g));
    hosts[1]->SendToGroup(GroupAddr(g), std::vector<std::uint8_t>{1});
    world.sim.RunUntil(world.sim.Now() + 5 * kSecond);
    EXPECT_EQ(hosts[0]->ReceivedCount(GroupAddr(g)), before + 1)
        << "group " << g << " lost connectivity it should have kept";
  }
}

TEST(PropertyDeterminism, SameSeedSameOutcome) {
  const auto run = [](std::uint64_t seed) {
    World world(seed);
    Rng rng(seed * 1000 + 1);
    auto members = world.JoinRandomMembers(rng, 5);
    for (auto& [g, hosts] : members) {
      for (auto* h : hosts) {
        h->SendToGroup(GroupAddr(g), std::vector<std::uint8_t>{1});
      }
    }
    world.sim.RunUntil(world.sim.Now() + 20 * kSecond);
    // Fingerprint: total control messages + per-router state + deliveries.
    std::uint64_t fingerprint = world.domain->TotalControlMessages();
    fingerprint = fingerprint * 1000003 + world.domain->TotalFibState();
    for (auto& [g, hosts] : members) {
      for (auto* h : hosts) {
        fingerprint = fingerprint * 1000003 + h->ReceivedCount(GroupAddr(g));
      }
    }
    return fingerprint;
  };
  EXPECT_EQ(run(42), run(42));
  EXPECT_NE(run(42), run(43));  // and seeds actually matter
}

}  // namespace
}  // namespace cbt::core
