// CBT-CORE-PING behaviour: a non-primary core probes the primary's
// reachability before the (destructive, child-flushing) backbone rejoin,
// and keeps anchoring its subtree while the primary is away.
#include <gtest/gtest.h>

#include "cbt/domain.h"
#include "netsim/topologies.h"

namespace cbt::core {
namespace {

using netsim::MakeLine;
using netsim::Simulator;
using netsim::Topology;

constexpr Ipv4Address kGroup(239, 1, 2, 3);

class CorePingFixture : public ::testing::Test {
 protected:
  // Line r0 - r1 - r2 - r3; primary core r3, secondary r0.
  CorePingFixture() : topo(MakeLine(sim, 4)) {
    domain.emplace(sim, topo);
    domain->RegisterGroup(kGroup, {topo.routers[3], topo.routers[0]});
    domain->Start();
    sim.RunUntil(kSecond);
  }

  Simulator sim{1};
  Topology topo;
  std::optional<CbtDomain> domain;
};

TEST_F(CorePingFixture, BackboneFormsAfterPingSucceeds) {
  // A member joins targeting the secondary core r0; r0 must ping the
  // primary and then link the backbone r0 -> r1 -> r2 -> r3.
  auto& m = domain->AddHost(topo.router_lans[0], "m");
  m.JoinGroupWithCores(kGroup, domain->directory().CoresFor(kGroup), 1);
  sim.RunUntil(30 * kSecond);

  auto& r0 = domain->router(topo.routers[0]);
  ASSERT_TRUE(r0.IsOnTree(kGroup));
  const FibEntry* entry = r0.fib().Find(kGroup);
  EXPECT_TRUE(entry->is_core);
  EXPECT_FALSE(entry->is_primary_core);
  EXPECT_TRUE(entry->HasParent());
  EXPECT_GE(r0.stats().core_pings_sent, 1u);
  EXPECT_GE(r0.stats().ping_replies_received, 1u);
  EXPECT_GE(domain->router(topo.routers[3]).stats().core_pings_received, 1u);
  EXPECT_TRUE(domain->router(topo.routers[3]).IsOnTree(kGroup));
}

TEST_F(CorePingFixture, DeadPrimaryLeavesSecondaryAsStableAnchor) {
  sim.SetNodeUp(topo.routers[3], false);
  auto& m = domain->AddHost(topo.router_lans[0], "m");
  m.JoinGroupWithCores(kGroup, domain->directory().CoresFor(kGroup), 1);
  sim.RunUntil(sim.Now() + 300 * kSecond);

  // r0 anchors the group, parentless, without flushing anything; members
  // under it keep working.
  auto& r0 = domain->router(topo.routers[0]);
  ASSERT_TRUE(r0.IsOnTree(kGroup));
  EXPECT_FALSE(r0.fib().Find(kGroup)->HasParent());
  EXPECT_EQ(r0.stats().ping_replies_received, 0u);
  EXPECT_EQ(r0.stats().flushes_sent, 0u);

  // A second member (behind r1) joins toward the secondary and is served.
  auto& m1 = domain->AddHost(topo.router_lans[1], "m1");
  m1.JoinGroupWithCores(kGroup, domain->directory().CoresFor(kGroup), 1);
  sim.RunUntil(sim.Now() + 30 * kSecond);
  m.SendToGroup(kGroup, std::vector<std::uint8_t>{1});
  sim.RunUntil(sim.Now() + 5 * kSecond);
  EXPECT_EQ(m1.ReceivedCount(kGroup), 1u);
}

TEST_F(CorePingFixture, BackboneLinksOnceRevivedPrimaryAnswersPings) {
  sim.SetNodeUp(topo.routers[3], false);
  auto& m = domain->AddHost(topo.router_lans[0], "m");
  m.JoinGroupWithCores(kGroup, domain->directory().CoresFor(kGroup), 1);
  sim.RunUntil(sim.Now() + 120 * kSecond);
  auto& r0 = domain->router(topo.routers[0]);
  ASSERT_TRUE(r0.IsOnTree(kGroup));
  ASSERT_FALSE(r0.fib().Find(kGroup)->HasParent());

  // Revive the primary: the periodic re-probe must eventually get an
  // answer and the backbone rejoin completes.
  sim.SetNodeUp(topo.routers[3], true);
  sim.RunUntil(sim.Now() + 400 * kSecond);
  const FibEntry* entry = r0.fib().Find(kGroup);
  ASSERT_NE(entry, nullptr);
  EXPECT_TRUE(entry->HasParent());
  EXPECT_TRUE(domain->router(topo.routers[3]).IsOnTree(kGroup));
  EXPECT_TRUE(domain->router(topo.routers[3]).fib().Find(kGroup)
                  ->is_primary_core);
}

TEST_F(CorePingFixture, MemberBehindSubtreeSurvivesBackboneFormation) {
  // The pinged rejoin flushes the child branch it routes through; the
  // flushed routers must re-attach and delivery must hold end to end.
  auto& m0 = domain->AddHost(topo.router_lans[0], "m0");
  auto& m1 = domain->AddHost(topo.router_lans[1], "m1");
  m0.JoinGroupWithCores(kGroup, domain->directory().CoresFor(kGroup), 1);
  m1.JoinGroupWithCores(kGroup, domain->directory().CoresFor(kGroup), 1);
  sim.RunUntil(sim.Now() + 120 * kSecond);

  m0.SendToGroup(kGroup, std::vector<std::uint8_t>{1});
  sim.RunUntil(sim.Now() + 5 * kSecond);
  EXPECT_EQ(m1.ReceivedCount(kGroup), 1u);
  // And the far side of the backbone can reach them too.
  auto& m3 = domain->AddHost(topo.router_lans[3], "m3");
  m3.SendToGroup(kGroup, std::vector<std::uint8_t>{2});
  sim.RunUntil(sim.Now() + 5 * kSecond);
  EXPECT_EQ(m1.ReceivedCount(kGroup), 2u);
}

}  // namespace
}  // namespace cbt::core
