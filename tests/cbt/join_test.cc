// Tree-joining walkthroughs from spec sections 2.5 and 2.6, replayed on
// the Figure-1 topology.
#include <gtest/gtest.h>

#include "cbt/domain.h"
#include "cbt/tree_printer.h"
#include "netsim/topologies.h"

#include <sstream>

namespace cbt::core {
namespace {

using netsim::MakeFigure1;
using netsim::Simulator;
using netsim::Topology;

constexpr Ipv4Address kGroup(239, 1, 2, 3);

class JoinFixture : public ::testing::Test {
 protected:
  JoinFixture() : topo(MakeFigure1(sim)), domain(sim, topo) {
    // Host A's group: R4 primary core, R9 secondary (section 2.5 setup).
    domain.RegisterGroup(kGroup, {topo.node("R4"), topo.node("R9")});
    domain.Start();
    sim.RunUntil(kSecond);  // let querier elections settle
  }

  Simulator sim{1};
  Topology topo;
  CbtDomain domain;
};

TEST_F(JoinFixture, HostAJoinBuildsBranchR1R3R4) {
  domain.host("A").JoinGroup(kGroup);
  sim.RunUntil(10 * kSecond);

  // "A new CBT branch has been created, attaching subnet S1 to the CBT
  // delivery tree": R1 child of R3, R3 child of R4 (the primary core).
  auto& r1 = domain.router("R1");
  auto& r3 = domain.router("R3");
  auto& r4 = domain.router("R4");

  ASSERT_TRUE(r1.IsOnTree(kGroup));
  ASSERT_TRUE(r3.IsOnTree(kGroup));
  ASSERT_TRUE(r4.IsOnTree(kGroup));

  const FibEntry* r1_entry = r1.fib().Find(kGroup);
  EXPECT_EQ(sim.FindNodeByAddress(r1_entry->parent_address), topo.node("R3"));
  const FibEntry* r3_entry = r3.fib().Find(kGroup);
  EXPECT_EQ(sim.FindNodeByAddress(r3_entry->parent_address), topo.node("R4"));
  // R3 must list R1 as child via R1's address on the R1-R3 link.
  Ipv4Address r1_link_addr;
  for (const auto& iface : sim.node(topo.node("R1")).interfaces) {
    if (iface.subnet == topo.subnet("R1-R3")) r1_link_addr = iface.address;
  }
  EXPECT_NE(r3_entry->FindChild(r1_link_addr), nullptr);

  const FibEntry* r4_entry = r4.fib().Find(kGroup);
  EXPECT_TRUE(r4_entry->is_core);
  EXPECT_TRUE(r4_entry->is_primary_core);
  EXPECT_FALSE(r4_entry->HasParent());
  EXPECT_EQ(r4_entry->children.size(), 1u);

  // No other router should have state.
  EXPECT_EQ(domain.OnTreeRouters(kGroup).size(), 3u);
}

TEST_F(JoinFixture, SecondJoinTerminatesAtOnTreeRouter) {
  domain.host("A").JoinGroup(kGroup);
  sim.RunUntil(10 * kSecond);
  const auto r4_acks = domain.router("R4").stats().acks_sent;

  // Host B joins; R6 is D-DR, path via R2 to R3 which is already on-tree,
  // so the join must NOT travel to R4 ("it need not travel all the way").
  domain.host("B").JoinGroup(kGroup);
  sim.RunUntil(20 * kSecond);

  EXPECT_EQ(domain.router("R4").stats().acks_sent, r4_acks)
      << "R4 must not see B's join";
  EXPECT_TRUE(domain.router("R2").IsOnTree(kGroup));
}

TEST_F(JoinFixture, ProxyAckLeavesDDrStateless) {
  domain.host("A").JoinGroup(kGroup);
  sim.RunUntil(10 * kSecond);
  domain.host("B").JoinGroup(kGroup);
  sim.RunUntil(20 * kSecond);

  // Section 2.6: R6 (D-DR) originated the join, R2 was the first hop on
  // the same subnet S4 and acks with PROXY-ACK; R6 keeps no FIB entry and
  // R2 becomes G-DR for the group on S4.
  auto& r2 = domain.router("R2");
  auto& r6 = domain.router("R6");

  EXPECT_FALSE(r6.IsOnTree(kGroup));
  EXPECT_TRUE(r6.JoinedViaGdr(kGroup));
  EXPECT_EQ(r6.stats().proxy_acks_received, 1u);
  EXPECT_EQ(r2.stats().proxy_acks_sent, 1u);

  // R2 has a FIB entry with parent R3 and NO child for S4.
  const FibEntry* r2_entry = r2.fib().Find(kGroup);
  ASSERT_NE(r2_entry, nullptr);
  EXPECT_EQ(sim.FindNodeByAddress(r2_entry->parent_address), topo.node("R3"));
  EXPECT_TRUE(r2_entry->children.empty());

  VifIndex r2_s4 = kInvalidVif;
  for (const auto& iface : sim.node(topo.node("R2")).interfaces) {
    if (iface.subnet == topo.subnet("S4")) r2_s4 = iface.vif;
  }
  EXPECT_TRUE(r2.IsGdr(kGroup, r2_s4));
}

TEST_F(JoinFixture, JoinAcksCarryFullCoreList) {
  domain.host("A").JoinGroup(kGroup);
  sim.RunUntil(10 * kSecond);
  const FibEntry* entry = domain.router("R1").fib().Find(kGroup);
  ASSERT_NE(entry, nullptr);
  ASSERT_EQ(entry->cores.size(), 2u);
  EXPECT_EQ(sim.FindNodeByAddress(entry->cores[0]), topo.node("R4"));
  EXPECT_EQ(sim.FindNodeByAddress(entry->cores[1]), topo.node("R9"));
}

TEST_F(JoinFixture, JoinTowardSecondaryCoreBuildsCoreBackbone) {
  // Host G's DR (R8) targets secondary core R9 (index 1). R9 must ack,
  // then rejoin the primary core R4 (section 2.5: REJOIN-ACTIVE).
  domain.host("G").JoinGroupWithCores(
      kGroup, domain.directory().CoresFor(kGroup), /*target_index=*/1);
  sim.RunUntil(20 * kSecond);

  auto& r9 = domain.router("R9");
  ASSERT_TRUE(r9.IsOnTree(kGroup));
  const FibEntry* r9_entry = r9.fib().Find(kGroup);
  EXPECT_TRUE(r9_entry->is_core);
  EXPECT_FALSE(r9_entry->is_primary_core);
  // The core tree R9 -> R8 -> R4 exists.
  ASSERT_TRUE(r9_entry->HasParent());
  EXPECT_EQ(sim.FindNodeByAddress(r9_entry->parent_address), topo.node("R8"));
  ASSERT_TRUE(domain.router("R8").IsOnTree(kGroup));
  ASSERT_TRUE(domain.router("R4").IsOnTree(kGroup));
  EXPECT_TRUE(domain.router("R4").fib().Find(kGroup)->is_primary_core);
}

TEST_F(JoinFixture, PendingJoinCachesDownstreamJoins) {
  // A and G join simultaneously; G's join via R8 targets R4 while A's is
  // in flight through R3. No deadlock, single consistent tree.
  domain.host("A").JoinGroup(kGroup);
  domain.host("G").JoinGroup(kGroup);
  sim.RunUntil(20 * kSecond);

  for (const char* name : {"R1", "R3", "R4", "R8"}) {
    EXPECT_TRUE(domain.router(name).IsOnTree(kGroup)) << name;
  }
  // Exactly one parent each, no cycles: walk up from R1 and R8 to R4.
  const FibEntry* r8_entry = domain.router("R8").fib().Find(kGroup);
  EXPECT_EQ(sim.FindNodeByAddress(r8_entry->parent_address), topo.node("R4"));
}

TEST_F(JoinFixture, EstablishCallbackFiresOnce) {
  int established = 0;
  CbtRouter::Callbacks cb;
  cb.on_group_established = [&](Ipv4Address g) {
    EXPECT_EQ(g, kGroup);
    ++established;
  };
  domain.router("R1").set_callbacks(std::move(cb));
  domain.host("A").JoinGroup(kGroup);
  sim.RunUntil(30 * kSecond);
  EXPECT_EQ(established, 1);
}

TEST_F(JoinFixture, UnknownGroupWithoutCoresNeverJoins) {
  const Ipv4Address orphan(239, 200, 0, 1);
  domain.host("A").JoinGroupWithCores(orphan, {}, 0);
  sim.RunUntil(10 * kSecond);
  EXPECT_FALSE(domain.router("R1").IsOnTree(orphan));
  EXPECT_FALSE(domain.router("R1").IsPending(orphan));
}

TEST_F(JoinFixture, CoreListFromRpCoreReportUsedWithoutDirectory) {
  // Remove the directory mapping; the host-supplied RP/Core-Report alone
  // must drive the join (section 2.2's host-learned cores).
  const Ipv4Address g2(239, 50, 0, 1);
  const Ipv4Address r4_addr = sim.PrimaryAddress(topo.node("R4"));
  domain.host("A").JoinGroupWithCores(g2, {r4_addr}, 0);
  sim.RunUntil(10 * kSecond);
  EXPECT_TRUE(domain.router("R1").IsOnTree(g2));
  EXPECT_TRUE(domain.router("R4").IsOnTree(g2));
}

TEST_F(JoinFixture, HostsReceiveJoinConfirmation) {
  // Section 2.5 (-03) proposal: once the D-DR's join is acked, member
  // hosts on the LAN are told "the delivery tree has been joined".
  auto& a = domain.host("A");
  EXPECT_FALSE(a.JoinConfirmed(kGroup));
  a.JoinGroup(kGroup);
  sim.RunUntil(10 * kSecond);
  EXPECT_TRUE(a.JoinConfirmed(kGroup));

  // The proxy-ack path confirms too (D-DR R6, G-DR R2).
  auto& b = domain.host("B");
  b.JoinGroup(kGroup);
  sim.RunUntil(20 * kSecond);
  EXPECT_TRUE(b.JoinConfirmed(kGroup));

  // Leaving clears the flag.
  a.LeaveGroup(kGroup);
  EXPECT_FALSE(a.JoinConfirmed(kGroup));
}

TEST_F(JoinFixture, JoinConfirmationCanBeDisabled) {
  netsim::Simulator sim2{1};
  netsim::Topology topo2 = MakeFigure1(sim2);
  CbtConfig config;
  config.notify_hosts_on_join = false;
  CbtDomain quiet(sim2, topo2, config);
  quiet.RegisterGroup(kGroup, {topo2.node("R4")});
  quiet.Start();
  sim2.RunUntil(kSecond);
  auto& a = quiet.host("A");
  a.JoinGroup(kGroup);
  sim2.RunUntil(10 * kSecond);
  EXPECT_TRUE(quiet.router("R1").IsOnTree(kGroup));
  EXPECT_FALSE(a.JoinConfirmed(kGroup));
}

TEST_F(JoinFixture, TreePrinterRendersTheBranch) {
  std::ostringstream empty;
  EXPECT_EQ(PrintTree(domain, kGroup, empty), 0u);
  EXPECT_NE(empty.str().find("no routers on-tree"), std::string::npos);

  domain.host("A").JoinGroup(kGroup);
  domain.host("G").JoinGroup(kGroup);
  sim.RunUntil(20 * kSecond);

  std::ostringstream os;
  const std::size_t printed = PrintTree(domain, kGroup, os);
  EXPECT_EQ(printed, domain.OnTreeRouters(kGroup).size());
  const std::string out = os.str();
  EXPECT_NE(out.find("R4 [primary core]"), std::string::npos);
  EXPECT_NE(out.find("R1"), std::string::npos);
  EXPECT_NE(out.find("S1"), std::string::npos);  // member LAN annotation
  EXPECT_NE(out.find("+- "), std::string::npos);
}

}  // namespace
}  // namespace cbt::core
