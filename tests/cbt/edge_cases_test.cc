// Edge cases and adversarial inputs for the CBT router: malformed
// packets, stale/duplicate control messages, NACK propagation, pending
// expiry, and ack-source validation.
#include <gtest/gtest.h>

#include "cbt/domain.h"
#include "netsim/topologies.h"

namespace cbt::core {
namespace {

using netsim::MakeLine;
using netsim::Simulator;
using netsim::Topology;

constexpr Ipv4Address kGroup(239, 90, 0, 1);

class EdgeFixture : public ::testing::Test {
 protected:
  EdgeFixture() : topo(MakeLine(sim, 4)) {
    domain.emplace(sim, topo);
    domain->RegisterGroup(kGroup, {topo.routers[3]});
    domain->Start();
    sim.RunUntil(kSecond);
    injector = sim.AddNode("injector", false);
    sim.Attach(injector, topo.router_lans[1]);
  }

  /// Address of router i on its stub LAN.
  Ipv4Address LanAddress(int i) {
    for (const auto& iface : sim.node(topo.routers[(std::size_t)i]).interfaces) {
      if (iface.subnet == topo.router_lans[(std::size_t)i]) {
        return iface.address;
      }
    }
    return Ipv4Address{};
  }

  Simulator sim{1};
  Topology topo;
  std::optional<CbtDomain> domain;
  NodeId injector;
};

TEST_F(EdgeFixture, GarbageDatagramsCountedAsMalformed) {
  auto& r1 = domain->router(topo.routers[1]);
  const auto before = r1.stats().malformed_control;
  sim.SendDatagram(injector, 0, LanAddress(1),
                   std::vector<std::uint8_t>{0xDE, 0xAD, 0xBE, 0xEF});
  sim.RunUntil(sim.Now() + kSecond);
  EXPECT_EQ(r1.stats().malformed_control, before + 1);
  EXPECT_FALSE(r1.IsOnTree(kGroup));
}

TEST_F(EdgeFixture, CorruptedControlPacketDropped) {
  packet::ControlPacket join;
  join.type = packet::ControlType::kJoinRequest;
  join.group = kGroup;
  join.origin = Ipv4Address(10, 9, 9, 9);
  join.target_core = sim.PrimaryAddress(topo.routers[3]);
  join.cores = {join.target_core};
  auto bytes = packet::BuildControlDatagram(Ipv4Address(172, 16, 1, 99),
                                            LanAddress(1), join);
  bytes[bytes.size() - 3] ^= 0xFF;  // corrupt the core list
  auto& r1 = domain->router(topo.routers[1]);
  const auto before = r1.stats().malformed_control;
  sim.SendDatagram(injector, 0, LanAddress(1), std::move(bytes));
  sim.RunUntil(sim.Now() + kSecond);
  EXPECT_EQ(r1.stats().malformed_control, before + 1);
  EXPECT_EQ(r1.stats().joins_received, 0u);
}

TEST_F(EdgeFixture, ForgedJoinStillBuildsConsistentState) {
  // A syntactically valid join injected from a host builds transit state
  // toward the core — CBT has no origin authentication (the spec's
  // security fields are T.B.D.); what matters is that state stays
  // consistent and expires.
  packet::ControlPacket join;
  join.type = packet::ControlType::kJoinRequest;
  join.code = (std::uint8_t)packet::JoinSubcode::kActiveJoin;
  join.group = kGroup;
  join.origin = sim.interface(injector, 0).address;
  join.target_core = sim.PrimaryAddress(topo.routers[3]);
  join.cores = {join.target_core};
  sim.SendDatagram(injector, 0, LanAddress(1),
                   packet::BuildControlDatagram(
                       sim.interface(injector, 0).address, LanAddress(1),
                       join));
  sim.RunUntil(sim.Now() + 10 * kSecond);
  // r1 acked the forged join (it reached the core) and holds a child
  // entry for the injector; with no echoes, the child expires and the
  // branch quits within CHILD-ASSERT-EXPIRE + scan + quit.
  EXPECT_TRUE(domain->router(topo.routers[1]).IsOnTree(kGroup));
  sim.RunUntil(sim.Now() + 500 * kSecond);
  EXPECT_FALSE(domain->router(topo.routers[1]).IsOnTree(kGroup));
  EXPECT_FALSE(domain->router(topo.routers[3]).fib().Find(kGroup) != nullptr &&
               !domain->router(topo.routers[3]).fib().Find(kGroup)
                    ->children.empty());
}

TEST_F(EdgeFixture, StaleJoinAckIgnored) {
  // An unsolicited JOIN-ACK (no pending join) must not create state.
  packet::ControlPacket ack;
  ack.type = packet::ControlType::kJoinAck;
  ack.group = kGroup;
  ack.origin = LanAddress(1);
  ack.target_core = sim.PrimaryAddress(topo.routers[3]);
  ack.cores = {ack.target_core};
  sim.SendDatagram(injector, 0, LanAddress(1),
                   packet::BuildControlDatagram(
                       sim.interface(injector, 0).address, LanAddress(1),
                       ack));
  sim.RunUntil(sim.Now() + kSecond);
  EXPECT_FALSE(domain->router(topo.routers[1]).IsOnTree(kGroup));
}

TEST_F(EdgeFixture, AckFromWrongNeighborIgnored) {
  // While r0's join toward the core is pending at r1's upstream, an ack
  // arriving from a *different* source must not be accepted. Build the
  // pending state by cutting the upstream link first.
  sim.SetSubnetUp(topo.subnets.at("link1"), false);  // r1-r2 severed
  auto& m = domain->AddHost(topo.router_lans[0], "m");
  m.JoinGroup(kGroup);
  sim.RunUntil(sim.Now() + 2 * kSecond);
  auto& r1 = domain->router(topo.routers[1]);
  // r0 pending; r1 has transit pending (forward failed => maybe NACKed).
  // Focus on r0: inject a spoofed ack from the injector's address.
  auto& r0 = domain->router(topo.routers[0]);
  if (r0.IsPending(kGroup)) {
    packet::ControlPacket ack;
    ack.type = packet::ControlType::kJoinAck;
    ack.group = kGroup;
    ack.origin = sim.PrimaryAddress(topo.routers[0]);
    ack.target_core = sim.PrimaryAddress(topo.routers[3]);
    ack.cores = {ack.target_core};
    // Deliver onto r0's LAN: wrong vif AND wrong source.
    const NodeId spoofer = sim.AddNode("spoofer", false);
    sim.Attach(spoofer, topo.router_lans[0]);
    sim.SendDatagram(spoofer, 0, LanAddress(0),
                     packet::BuildControlDatagram(
                         sim.interface(spoofer, 0).address, LanAddress(0),
                         ack));
    sim.RunUntil(sim.Now() + kSecond);
    EXPECT_FALSE(r0.IsOnTree(kGroup));
  }
  (void)r1;
}

TEST_F(EdgeFixture, UnroutableCoreNacksAndGivesUpCleanly) {
  // Partition the core side entirely, then join: r0 cannot route.
  sim.SetSubnetUp(topo.subnets.at("link0"), false);
  auto& m = domain->AddHost(topo.router_lans[0], "m");
  m.JoinGroup(kGroup);
  sim.RunUntil(sim.Now() + 5 * kSecond);
  auto& r0 = domain->router(topo.routers[0]);
  EXPECT_FALSE(r0.IsOnTree(kGroup));
  EXPECT_FALSE(r0.IsPending(kGroup));
}

TEST_F(EdgeFixture, TransitPendingExpiresWithoutAck) {
  // Joins toward a dead core leave transient state along r0..r2. While
  // the member persists the D-DR keeps retrying (each attempt expiring
  // after EXPIRE-PENDING-JOIN); once the member leaves, every pending
  // must drain and no FIB state remain.
  auto& m = domain->AddHost(topo.router_lans[0], "m");
  sim.SetNodeUp(topo.routers[3], false);
  m.JoinGroup(kGroup);
  sim.RunUntil(sim.Now() + 5 * kSecond);
  bool someone_pending = false;
  for (int i = 0; i < 3; ++i) {
    someone_pending |=
        domain->router(topo.routers[(std::size_t)i]).IsPending(kGroup);
  }
  EXPECT_TRUE(someone_pending) << "a join should be in flight";

  m.LeaveGroup(kGroup);
  sim.RunUntil(sim.Now() + 300 * kSecond);
  for (int i = 0; i < 3; ++i) {
    auto& r = domain->router(topo.routers[(std::size_t)i]);
    EXPECT_FALSE(r.IsPending(kGroup)) << "router " << i << " still pending";
    EXPECT_FALSE(r.IsOnTree(kGroup)) << "router " << i << " kept state";
  }
}

TEST_F(EdgeFixture, DuplicateJoinFromSameRequesterCachedOnce) {
  sim.SetNodeUp(topo.routers[3], false);  // keep joins pending
  auto& m = domain->AddHost(topo.router_lans[0], "m");
  m.JoinGroup(kGroup);
  sim.RunUntil(sim.Now() + 35 * kSecond);  // several retransmissions
  auto& r1 = domain->router(topo.routers[1]);
  // r0 retransmitted its join into r1's pending state repeatedly; the
  // duplicate-requester check must cache it at most once.
  EXPECT_LE(r1.stats().joins_cached, 1u);
}

}  // namespace
}  // namespace cbt::core
