// Data-plane fast path (flow cache + encode-once forwarding): cache
// counter behaviour, generation invalidation, the stale-cache negative
// probe, and fast-vs-slow / batched-vs-per-receiver differentials that
// pin the fast path byte-identical to the per-packet slow oracle.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/delivery_monitor.h"
#include "analysis/migration.h"
#include "cbt/domain.h"
#include "cbt/flow_cache.h"
#include "netsim/simulator.h"
#include "netsim/topologies.h"

namespace cbt::core {
namespace {

using netsim::MakeFigure1;
using netsim::MakeGrid;
using netsim::Simulator;
using netsim::Topology;

constexpr Ipv4Address kGroup(239, 1, 2, 3);
constexpr const char* kMembers[] = {"A", "B", "C", "D", "E", "F",
                                    "G", "H", "I", "J", "K", "L"};

// ---------------------------------------------------------------------
// FlowCache unit behaviour (no simulator).
// ---------------------------------------------------------------------

FlowKey KeyFor(std::uint8_t octet) {
  FlowKey key;
  key.group = Ipv4Address(239, 9, 9, octet);
  key.arrival_vif = 1;
  key.arrival_src = Ipv4Address(10, 0, 0, octet);
  return key;
}

/// Installs `key` if absent; returns true when the probe was a hit.
bool Probe(FlowCache& cache, const FlowKey& key) {
  FlowSlot& slot = cache.SlotFor(key);
  const bool hit = slot.valid && slot.key == key;
  if (!hit) {
    slot.key = key;
    slot.valid = true;
  }
  return hit;
}

TEST(FlowCacheUnit, AlternatingFlowsStayResident) {
  // The direct-mapped regression: two flows arriving in strict A,B,A,B
  // alternation must both stay resident (a shared set holds four ways),
  // never evict each other per-packet.
  FlowCache cache;
  const FlowKey a = KeyFor(1);
  const FlowKey b = KeyFor(2);
  Probe(cache, a);
  Probe(cache, b);
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(Probe(cache, a)) << "iteration " << i;
    EXPECT_TRUE(Probe(cache, b)) << "iteration " << i;
  }
}

TEST(FlowCacheUnit, FourInterleavedFlowsAllStayResident) {
  // Worst case: all four keys land in ONE set; four ways still hold
  // them all, so interleaved arrivals hit from the second round on.
  FlowCache cache;
  FlowKey keys[4] = {KeyFor(1), KeyFor(2), KeyFor(3), KeyFor(4)};
  for (const FlowKey& k : keys) Probe(cache, k);
  for (int round = 0; round < 50; ++round) {
    for (const FlowKey& k : keys) {
      EXPECT_TRUE(Probe(cache, k)) << "round " << round;
    }
  }
}

TEST(FlowCacheUnit, OverflowEvictsWithoutExceedingCapacity) {
  FlowCache cache;
  for (std::uint8_t i = 0; i < 200; ++i) {
    FlowKey key = KeyFor(i);
    key.arrival_vif = static_cast<VifIndex>(i % 7);
    Probe(cache, key);
  }
  EXPECT_LE(cache.Occupancy(), FlowCache::kSlots);
  EXPECT_GT(cache.Occupancy(), 0u);
  cache.Clear();
  EXPECT_EQ(cache.Occupancy(), 0u);
}

// ---------------------------------------------------------------------
// Cache counters against a live tree (Figure 1).
// ---------------------------------------------------------------------

class FlowCacheFixture : public ::testing::Test {
 protected:
  FlowCacheFixture() : topo(MakeFigure1(sim)) {
    domain.emplace(sim, topo, CbtConfig{});  // dataplane defaults to kFast
    domain->RegisterGroup(kGroup, {topo.node("R4"), topo.node("R9")});
    domain->Start();
    sim.RunUntil(kSecond);
  }

  void JoinAll() {
    for (const char* h : kMembers) domain->host(h).JoinGroup(kGroup);
    sim.RunUntil(30 * kSecond);
  }

  std::uint64_t SumStat(std::uint64_t RouterStats::* field) {
    std::uint64_t total = 0;
    for (const auto& id : domain->router_ids()) {
      total += domain->router(id).stats().*field;
    }
    return total;
  }

  void ResetStats() {
    for (const auto& id : domain->router_ids()) {
      domain->router(id).mutable_stats() = RouterStats{};
    }
  }

  Simulator sim{1};
  Topology topo;
  std::optional<CbtDomain> domain;
};

TEST_F(FlowCacheFixture, RepeatSendsHitTheCache) {
  JoinAll();
  const std::vector<std::uint8_t> payload{'p', 'k', 't'};
  domain->host("G").SendToGroup(kGroup, payload);
  sim.RunUntil(31 * kSecond);
  const std::uint64_t misses_after_first =
      SumStat(&RouterStats::dataplane_cache_misses);
  EXPECT_GT(misses_after_first, 0u) << "first packet must populate";
  EXPECT_GT(SumStat(&RouterStats::dataplane_cache_occupancy), 0u);

  // Same flow again: every on-tree router resolves from cache.
  domain->host("G").SendToGroup(kGroup, payload);
  sim.RunUntil(32 * kSecond);
  EXPECT_GT(SumStat(&RouterStats::dataplane_cache_hits), 0u);
  EXPECT_EQ(SumStat(&RouterStats::dataplane_cache_misses),
            misses_after_first)
      << "repeat of an identical flow must not rebuild decisions";
}

TEST_F(FlowCacheFixture, MembershipChangeInvalidatesCachedFlows) {
  // Join everyone but L, warm the cache, then let L join: the routers
  // whose FIB entry (or IGMP state) changed must re-resolve the flow —
  // counted as invalidates/misses, never served stale.
  for (const char* h : kMembers) {
    if (std::string(h) != "L") domain->host(h).JoinGroup(kGroup);
  }
  sim.RunUntil(30 * kSecond);
  const std::vector<std::uint8_t> payload{'x'};
  domain->host("G").SendToGroup(kGroup, payload);
  sim.RunUntil(31 * kSecond);

  ResetStats();
  domain->host("L").JoinGroup(kGroup);
  sim.RunUntil(40 * kSecond);
  domain->host("G").SendToGroup(kGroup, payload);
  sim.RunUntil(41 * kSecond);

  EXPECT_EQ(domain->host("L").ReceivedCount(kGroup), 1u);
  EXPECT_GT(SumStat(&RouterStats::dataplane_cache_invalidates) +
                SumStat(&RouterStats::dataplane_cache_misses),
            0u)
      << "a tree mutation must force at least one re-resolve";
}

TEST_F(FlowCacheFixture, StaleCacheWithoutGenerationBumpIsDetected) {
  // The negative probe for the invalidation contract: edit a FIB entry
  // behind the generation counter's back and FlowCacheCoherent() must
  // report the cache stale; bumping the generation (what every real
  // mutation site does) clears it because the slot would re-resolve.
  JoinAll();
  const std::vector<std::uint8_t> payload{'x'};
  domain->host("G").SendToGroup(kGroup, payload);
  sim.RunUntil(31 * kSecond);

  CbtRouter& r4 = domain->router(topo.node("R4"));
  EXPECT_TRUE(r4.FlowCacheCoherent());

  FibEntry* entry = r4.mutable_fib().Find(kGroup);
  ASSERT_NE(entry, nullptr);
  ASSERT_FALSE(entry->children.empty());
  entry->children.clear();  // forwarding-visible edit, NO Touch()
  EXPECT_FALSE(r4.FlowCacheCoherent())
      << "stale decision survived a silent FIB edit undetected";

  entry->Touch();
  EXPECT_TRUE(r4.FlowCacheCoherent())
      << "a generation bump must mark the slot for re-resolution";
}

// ---------------------------------------------------------------------
// Differentials: the fast path must be byte-identical to the slow
// path, and batched delivery to per-receiver delivery.
// ---------------------------------------------------------------------

struct RunOutcome {
  /// One line per delivered packet per member, in delivery order:
  /// receiver, source, sim-time, size, payload head. Equality of these
  /// vectors is equality of every delivered byte AND its timing.
  std::vector<std::string> events;
  std::uint64_t arena_makes = 0;
};

RunOutcome RunFigure1Scenario(DataplaneMode mode, std::uint32_t seed,
                              Simulator::DeliveryMode delivery) {
  Simulator sim{seed};
  sim.SetDeliveryMode(delivery);
  Topology topo = MakeFigure1(sim);
  CbtConfig config;
  config.dataplane = mode;
  CbtDomain domain(sim, topo, config);
  domain.RegisterGroup(kGroup, {topo.node("R4"), topo.node("R9")});
  domain.Start();
  sim.RunUntil(kSecond);

  for (const char* h : kMembers) domain.host(h).JoinGroup(kGroup);
  sim.RunUntil(30 * kSecond);

  // Seed-rotated churn: three member senders, a non-member sender (the
  // DR-relay / encapsulation path), a leave, then more traffic over the
  // mutated tree so invalidation is exercised, not just cold fills.
  auto payload = [](std::uint32_t tag) {
    return std::vector<std::uint8_t>{
        static_cast<std::uint8_t>(tag >> 24), static_cast<std::uint8_t>(tag >> 16),
        static_cast<std::uint8_t>(tag >> 8), static_cast<std::uint8_t>(tag)};
  };
  for (std::uint32_t i = 0; i < 3; ++i) {
    domain.host(kMembers[(seed + 4 * i) % 12]).SendToGroup(kGroup,
                                                           payload(100 + i));
  }
  auto& outsider = domain.AddHost(topo.subnet("S12"), "outsider");
  outsider.SendToGroup(kGroup, payload(200));
  sim.RunUntil(45 * kSecond);

  domain.host(kMembers[seed % 12]).LeaveGroup(kGroup);
  sim.RunUntil(55 * kSecond);
  for (std::uint32_t i = 0; i < 2; ++i) {
    domain.host(kMembers[(seed + 1 + 5 * i) % 12]).SendToGroup(kGroup,
                                                               payload(300 + i));
  }
  sim.RunUntil(70 * kSecond);

  RunOutcome out;
  for (const char* h : kMembers) {
    for (const HostAgent::Received& r : domain.host(h).received()) {
      std::ostringstream line;
      line << h << " src=" << r.src.ToString() << " t=" << r.time
           << " n=" << r.bytes << " head=" << r.payload_head;
      out.events.push_back(line.str());
    }
  }
  out.arena_makes = sim.packet_arena().total_makes();
  return out;
}

TEST(DataplaneDifferential, FastMatchesSlowByteForByteAcrossFiveSeeds) {
  for (std::uint32_t seed = 1; seed <= 5; ++seed) {
    const RunOutcome fast = RunFigure1Scenario(
        DataplaneMode::kFast, seed, Simulator::DeliveryMode::kBatched);
    const RunOutcome slow = RunFigure1Scenario(
        DataplaneMode::kSlow, seed, Simulator::DeliveryMode::kBatched);
    ASSERT_FALSE(fast.events.empty()) << "seed " << seed;
    EXPECT_EQ(fast.events, slow.events) << "seed " << seed;
    // Encode-once + zero-copy transit: the fast leg must stage strictly
    // fewer arena buffers for the identical delivered stream.
    EXPECT_LT(fast.arena_makes, slow.arena_makes) << "seed " << seed;
  }
}

TEST(DataplaneDifferential, BatchedDeliveryMatchesPerReceiver) {
  for (std::uint32_t seed = 1; seed <= 3; ++seed) {
    const RunOutcome batched = RunFigure1Scenario(
        DataplaneMode::kFast, seed, Simulator::DeliveryMode::kBatched);
    const RunOutcome per_rx = RunFigure1Scenario(
        DataplaneMode::kFast, seed, Simulator::DeliveryMode::kPerReceiver);
    ASSERT_FALSE(batched.events.empty()) << "seed " << seed;
    EXPECT_EQ(batched.events, per_rx.events) << "seed " << seed;
  }
}

// Live core migration under a sequence-stamped stream: the fast path
// must deliver the identical gap-free stream the slow path does while
// the tree re-homes — the harshest invalidation workload we have.
RunOutcome RunMigrationScenario(DataplaneMode mode) {
  Simulator sim(7);
  Topology topo = MakeGrid(sim, 4, 4);
  const auto router_at = [&](int x, int y) {
    return topo.routers[static_cast<std::size_t>(y * 4 + x)];
  };
  const auto lan_at = [&](int x, int y) {
    return topo.router_lans[static_cast<std::size_t>(y * 4 + x)];
  };
  CbtConfig config;
  config.dataplane = mode;
  CbtDomain domain(sim, topo, config);
  const NodeId old_core = router_at(0, 0);
  const NodeId new_core = router_at(3, 3);
  domain.RegisterGroup(kGroup, {old_core});
  domain.Start();
  sim.RunUntil(kSecond);

  HostAgent& src = domain.AddHost(lan_at(0, 0), "src");
  HostAgent& rx_a = domain.AddHost(lan_at(3, 0), "rx-a");
  HostAgent& rx_b = domain.AddHost(lan_at(0, 3), "rx-b");
  for (HostAgent* h : {&src, &rx_a, &rx_b}) h->JoinGroup(kGroup);
  sim.RunUntil(sim.Now() + 20 * kSecond);

  analysis::DeliveryMonitor monitor(domain, kGroup);
  monitor.WatchReceiver(rx_a.id());
  monitor.WatchReceiver(rx_b.id());
  monitor.StartSender(src.id(), 500 * kMillisecond);
  sim.RunUntil(sim.Now() + 5 * kSecond);

  analysis::CoreMigrator migrator(domain);
  const auto report = migrator.Migrate(kGroup, {new_core});
  EXPECT_TRUE(report.ok) << report.error;
  sim.RunUntil(sim.Now() + 10 * kSecond);
  monitor.StopSender();
  EXPECT_EQ(monitor.TotalGaps(), 0u);

  RunOutcome out;
  for (const HostAgent* h : {&rx_a, &rx_b}) {
    for (const HostAgent::Received& r : h->received()) {
      std::ostringstream line;
      line << h->id().value() << " src=" << r.src.ToString() << " t=" << r.time
           << " n=" << r.bytes << " head=" << r.payload_head;
      out.events.push_back(line.str());
    }
  }
  out.arena_makes = sim.packet_arena().total_makes();
  return out;
}

TEST(DataplaneDifferential, FastMatchesSlowAcrossLiveCoreMigration) {
  const RunOutcome fast = RunMigrationScenario(DataplaneMode::kFast);
  const RunOutcome slow = RunMigrationScenario(DataplaneMode::kSlow);
  ASSERT_FALSE(fast.events.empty());
  EXPECT_EQ(fast.events, slow.events);
  EXPECT_LT(fast.arena_makes, slow.arena_makes);
}

}  // namespace
}  // namespace cbt::core
