// Long-horizon churn soak: random joins, leaves, sends, link flaps and
// router restarts over tens of simulated minutes, with the global
// invariants re-checked at the end. This is the "does anything wedge
// eventually" test that individual scenarios cannot provide.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "cbt/core_selection.h"
#include "cbt/domain.h"
#include "netsim/topologies.h"

namespace cbt::core {
namespace {

using netsim::Simulator;
using netsim::Topology;

Ipv4Address GroupAddr(int g) {
  return Ipv4Address(239, 140, 0, static_cast<std::uint8_t>(g + 1));
}

class ChurnSoak : public ::testing::TestWithParam<std::uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, ChurnSoak, ::testing::Values(3, 17, 29));

TEST_P(ChurnSoak, SurvivesAndConvergesAfterChurn) {
  const std::uint64_t seed = GetParam();
  Simulator sim(seed);
  netsim::WaxmanParams params;
  params.n = 20;
  params.seed = seed * 7 + 3;
  Topology topo = netsim::MakeWaxman(sim, params);
  CbtDomain domain(sim, topo);
  Rng rng(seed * 101 + 7);

  constexpr int kGroups = 2;
  core_selection::PlacementInput place_in;
  place_in.routers = topo.routers;
  place_in.rng = &rng;
  const auto random_cores = core_selection::MakeStrategy("random");
  for (int g = 0; g < kGroups; ++g) {
    domain.RegisterGroup(GroupAddr(g),
                         random_cores->Place(place_in, 2).cores);
  }
  domain.Start();
  sim.RunUntil(kSecond);

  // A pool of hosts, two per LAN region.
  std::vector<HostAgent*> hosts;
  for (std::size_t i = 0; i < topo.router_lans.size(); i += 2) {
    hosts.push_back(
        &domain.AddHost(topo.router_lans[i], "h" + std::to_string(i)));
  }

  // 30 simulated minutes of random events every ~10s.
  std::set<std::pair<std::size_t, int>> member_of;
  std::vector<SubnetId> flapped;
  for (int step = 0; step < 180; ++step) {
    const std::uint64_t dice = rng.NextBelow(100);
    const std::size_t h = rng.NextBelow(hosts.size());
    const int g = static_cast<int>(rng.NextBelow(kGroups));
    if (dice < 40) {
      hosts[h]->JoinGroup(GroupAddr(g));
      member_of.insert({h, g});
    } else if (dice < 60) {
      hosts[h]->LeaveGroup(GroupAddr(g));
      member_of.erase({h, g});
    } else if (dice < 85) {
      hosts[h]->SendToGroup(GroupAddr(g), std::vector<std::uint8_t>{1});
    } else if (dice < 93) {
      // Flap a random transit link briefly.
      const SubnetId victim(
          static_cast<std::int32_t>(rng.NextBelow(sim.subnet_count())));
      sim.SetSubnetUp(victim, false);
      flapped.push_back(victim);
    } else if (!flapped.empty()) {
      sim.SetSubnetUp(flapped.back(), true);
      flapped.pop_back();
    } else {
      // Restart a random non-core router.
      const NodeId victim =
          topo.routers[rng.NextBelow(topo.routers.size())];
      domain.router(victim).SimulateRestart();
    }
    sim.RunUntil(sim.Now() + 10 * kSecond);
  }
  // Heal everything and let the protocol settle (echo timeout + rejoin +
  // membership refresh cycles).
  for (const SubnetId s : flapped) sim.SetSubnetUp(s, true);
  sim.RunUntil(sim.Now() + 600 * kSecond);

  // Invariant 1: no parent cycles, parent/child agreement.
  for (int g = 0; g < kGroups; ++g) {
    std::map<NodeId, NodeId> parent_of;
    for (const NodeId id : domain.router_ids()) {
      const FibEntry* entry = domain.router(id).fib().Find(GroupAddr(g));
      if (entry == nullptr || !entry->HasParent()) continue;
      const auto parent = sim.FindNodeByAddress(entry->parent_address);
      ASSERT_TRUE(parent.has_value());
      parent_of[id] = *parent;
    }
    for (const auto& [start, unused] : parent_of) {
      NodeId cur = start;
      std::set<NodeId> seen{cur};
      while (parent_of.contains(cur)) {
        cur = parent_of[cur];
        ASSERT_TRUE(seen.insert(cur).second)
            << "cycle in group " << g << " at " << sim.node(cur).name;
      }
    }
  }

  // Invariant 2: current members all receive a fresh packet exactly once.
  for (int g = 0; g < kGroups; ++g) {
    std::vector<HostAgent*> members;
    for (const auto& [h, mg] : member_of) {
      if (mg == g) members.push_back(hosts[h]);
    }
    if (members.size() < 2) continue;
    std::vector<std::uint64_t> before;
    for (auto* m : members) before.push_back(m->ReceivedCount(GroupAddr(g)));
    members[0]->SendToGroup(GroupAddr(g), std::vector<std::uint8_t>{7});
    sim.RunUntil(sim.Now() + 10 * kSecond);
    for (std::size_t i = 1; i < members.size(); ++i) {
      EXPECT_EQ(members[i]->ReceivedCount(GroupAddr(g)), before[i] + 1)
          << "group " << g << " member " << i << " after churn";
    }
  }
}

}  // namespace
}  // namespace cbt::core
