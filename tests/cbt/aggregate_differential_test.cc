// Differential pin: igmp::MembershipAggregate in kExactHostEquivalence
// mode is indistinguishable on the wire from one fresh single-group
// HostAgent per member.
//
// Two worlds run the identical seeded ChurnSchedule over the identical
// topology and simulator seed. World A attaches a fresh HostAgent per
// join (FIFO retirement per leave); world B drives one aggregate per
// member LAN. A passive tap on every member LAN records each IGMP frame
// it hears — timestamp, type, code, group, version, target core index,
// core list. Source addresses are the one acknowledged difference (N
// host addresses vs one station address; routers track group presence
// and ignore reporter identity), so records exclude them. Everything
// else must match byte for byte, across five schedule seeds, and both
// worlds must end audit-clean with identical on-tree router sets.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <span>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "analysis/invariant_auditor.h"
#include "cbt/churn.h"
#include "cbt/domain.h"
#include "cbt/host.h"
#include "igmp/membership_aggregate.h"
#include "netsim/simulator.h"
#include "netsim/topologies.h"
#include "packet/encap.h"
#include "packet/ipv4.h"

namespace cbt {
namespace {

constexpr SimDuration kDuration = 90 * kSecond;
constexpr std::uint32_t kGroups = 3;

Ipv4Address GroupAddress(std::uint32_t g) {
  return Ipv4Address(239, 10, 0, static_cast<std::uint8_t>(g));
}

igmp::IgmpConfig FastIgmpConfig() {
  igmp::IgmpConfig config;
  config.query_interval = 15 * kSecond;
  config.query_response_interval = 4 * kSecond;
  return config;
}

scenario::ChurnParams Params() {
  scenario::ChurnParams params;
  params.groups = kGroups;
  params.zipf_s = 1.0;
  params.initial_members = 24;
  params.arrivals_per_second = 1.0;
  params.mean_holding = 20 * kSecond;
  params.duration = kDuration;
  return params;
}

/// Records every IGMP frame heard on one LAN, minus the source address.
class WireTap : public netsim::NetworkAgent {
 public:
  WireTap(netsim::Simulator& sim, std::uint32_t lan,
          std::vector<std::string>& out)
      : sim_(&sim), lan_(lan), out_(&out) {}

  void OnDatagram(VifIndex /*vif*/, Ipv4Address /*link_src*/,
                  Ipv4Address /*link_dst*/,
                  std::span<const std::uint8_t> datagram) override {
    const auto parsed = packet::ParseDatagram(datagram);
    if (!parsed || parsed->ip.protocol != packet::IpProtocol::kIgmp) return;
    const auto msg = packet::ExtractIgmp(*parsed);
    if (!msg) return;
    std::ostringstream line;
    line << "t=" << sim_->Now() << " lan=" << lan_
         << " dst=" << parsed->ip.dst.ToString()
         << " type=" << static_cast<int>(msg->type)
         << " code=" << static_cast<int>(msg->code)
         << " group=" << msg->group.ToString()
         << " v=" << static_cast<int>(msg->version)
         << " tci=" << static_cast<int>(msg->target_core_index) << " cores=";
    for (const Ipv4Address& core : msg->cores) line << core.ToString() << ";";
    out_->push_back(line.str());
  }

 private:
  netsim::Simulator* sim_;
  std::uint32_t lan_;
  std::vector<std::string>* out_;
};

struct WorldResult {
  std::vector<std::string> wire;
  bool audit_clean = false;
  std::map<std::uint32_t, std::vector<NodeId>> tree;  // group -> routers
  std::map<std::pair<std::uint32_t, std::uint32_t>, std::uint64_t> members;
};

WorldResult RunWorld(bool per_host, std::uint64_t schedule_seed) {
  WorldResult result;

  netsim::Simulator sim(1);
  netsim::Topology topo = netsim::MakeGrid(sim, 3, 3);
  core::CbtDomain domain(sim, topo, core::CbtConfig{}, FastIgmpConfig());

  const auto lan_count = static_cast<std::uint32_t>(topo.router_lans.size());
  for (std::uint32_t g = 0; g < kGroups; ++g) {
    domain.RegisterGroup(GroupAddress(g),
                         {topo.routers[(g * 4) % topo.routers.size()]});
  }

  // Taps attach before any member model so attachment order — and with
  // it every address and delivery sequence — matches across worlds.
  std::vector<std::unique_ptr<WireTap>> taps;
  for (std::uint32_t i = 0; i < lan_count; ++i) {
    const NodeId id = netsim::AttachHost(sim, topo, topo.router_lans[i],
                                         "tap" + std::to_string(i));
    taps.push_back(std::make_unique<WireTap>(sim, i, result.wire));
    sim.SetAgent(id, taps.back().get());
  }

  std::vector<igmp::MembershipAggregate*> stations;
  if (!per_host) {
    for (std::uint32_t i = 0; i < lan_count; ++i) {
      stations.push_back(&domain.AddAggregate(
          topo.router_lans[i], "agg" + std::to_string(i),
          igmp::MembershipAggregate::Mode::kExactHostEquivalence));
    }
  }

  // World A: fresh host per join, FIFO retirement — the reference the
  // aggregate's slot order is defined against.
  std::map<std::pair<std::uint32_t, std::uint32_t>,
           std::deque<core::HostAgent*>>
      fifos;
  std::uint64_t next_host = 0;

  const scenario::ChurnSchedule schedule =
      scenario::ChurnSchedule::Generate(Params(), lan_count, schedule_seed);
  scenario::ChurnRunner runner(
      sim, schedule, [&](const scenario::MembershipEvent& e) {
        const Ipv4Address group = GroupAddress(e.group);
        if (!per_host) {
          if (e.join) {
            stations[e.lan]->Join(group);
          } else {
            stations[e.lan]->Leave(group);
          }
          return;
        }
        auto& fifo = fifos[{e.lan, e.group}];
        if (e.join) {
          core::HostAgent& host = domain.AddHost(
              topo.router_lans[e.lan], "h" + std::to_string(next_host++));
          host.JoinGroup(group);
          fifo.push_back(&host);
        } else if (!fifo.empty()) {
          fifo.front()->LeaveGroup(group);
          fifo.pop_front();
        }
      });

  domain.Start();
  runner.Start();
  sim.RunUntil(kDuration);
  result.audit_clean =
      analysis::RunUntilInvariantsHold(domain, sim.Now() + 60 * kSecond)
          .has_value();

  for (std::uint32_t g = 0; g < kGroups; ++g) {
    std::vector<NodeId> on_tree = domain.OnTreeRouters(GroupAddress(g));
    std::sort(on_tree.begin(), on_tree.end());
    result.tree[g] = std::move(on_tree);
  }
  for (std::uint32_t i = 0; i < lan_count; ++i) {
    for (std::uint32_t g = 0; g < kGroups; ++g) {
      const std::uint64_t count =
          per_host ? fifos[{i, g}].size()
                   : stations[i]->MemberCount(GroupAddress(g));
      if (count > 0) result.members[{i, g}] = count;
    }
  }
  return result;
}

class AggregateDifferential : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AggregateDifferential, WireTrafficAndTreeStateMatchPerHostModel) {
  const std::uint64_t seed = GetParam();
  const WorldResult hosts = RunWorld(/*per_host=*/true, seed);
  const WorldResult aggregate = RunWorld(/*per_host=*/false, seed);

  EXPECT_TRUE(hosts.audit_clean);
  EXPECT_TRUE(aggregate.audit_clean);
  EXPECT_EQ(hosts.members, aggregate.members);
  EXPECT_EQ(hosts.tree, aggregate.tree);

  ASSERT_FALSE(hosts.wire.empty());
  // Element-wise first: the first divergent frame localizes a bug far
  // better than a bare count mismatch.
  const std::size_t common = std::min(hosts.wire.size(), aggregate.wire.size());
  for (std::size_t i = 0; i < common; ++i) {
    if (hosts.wire[i] == aggregate.wire[i]) continue;
    std::ostringstream context;
    for (std::size_t j = i >= 4 ? i - 4 : 0; j < std::min(common, i + 6);
         ++j) {
      context << "\n  hosts[" << j << "]:     " << hosts.wire[j]
              << "\n  aggregate[" << j << "]: " << aggregate.wire[j];
    }
    ASSERT_EQ(hosts.wire[i], aggregate.wire[i])
        << "first divergent frame at index " << i << ", seed " << seed
        << context.str();
  }
  ASSERT_EQ(hosts.wire.size(), aggregate.wire.size())
      << "IGMP frame counts diverge at seed " << seed << "; next frame: "
      << (hosts.wire.size() > common ? hosts.wire[common]
                                     : aggregate.wire[common]);
}

INSTANTIATE_TEST_SUITE_P(FiveSeeds, AggregateDifferential,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

}  // namespace
}  // namespace cbt
