// Failure handling: parent loss (section 6.1), core failure with multiple
// candidate cores, restart behaviour (section 6.2), reconfiguration flush
// (section 2.7), and pending-join retransmission under loss.
#include <gtest/gtest.h>

#include "cbt/domain.h"
#include "netsim/topologies.h"

namespace cbt::core {
namespace {

using netsim::Simulator;
using netsim::Topology;

constexpr Ipv4Address kGroup(239, 1, 2, 3);
const std::vector<std::uint8_t> kPayload{42};

/// Diamond: r0 -- r1 -- r3 and r0 -- r2 -- r3, members behind r0 and r3.
struct Diamond {
  explicit Diamond(Simulator& sim) {
    r0 = sim.AddNode("r0", true);
    r1 = sim.AddNode("r1", true);
    r2 = sim.AddNode("r2", true);
    r3 = sim.AddNode("r3", true);
    topo.routers = {r0, r1, r2, r3};
    topo.nodes = {{"r0", r0}, {"r1", r1}, {"r2", r2}, {"r3", r3}};
    // r1 attaches before r2 so the r0->r3 tie-break prefers r1.
    l01 = sim.Connect(r0, r1);
    l13 = sim.Connect(r1, r3);
    l02 = sim.Connect(r0, r2);
    l23 = sim.Connect(r2, r3);
    lan0 = sim.AddSubnet(
        "lan0", SubnetAddress::FromPrefix(Ipv4Address(10, 30, 0, 0), 16));
    lan3 = sim.AddSubnet(
        "lan3", SubnetAddress::FromPrefix(Ipv4Address(10, 31, 0, 0), 16));
    sim.Attach(r0, lan0);
    sim.Attach(r3, lan3);
    topo.subnets = {{"l01", l01}, {"l13", l13}, {"l02", l02},
                    {"l23", l23}, {"lan0", lan0}, {"lan3", lan3}};
  }
  NodeId r0, r1, r2, r3;
  SubnetId l01, l13, l02, l23, lan0, lan3;
  Topology topo;
};

class ResilienceFixture : public ::testing::Test {
 protected:
  ResilienceFixture() : diamond(sim) {
    domain.emplace(sim, diamond.topo);
    domain->RegisterGroup(kGroup, {diamond.r3});
    domain->Start();
    sim.RunUntil(kSecond);
    member = &domain->AddHost(diamond.lan0, "m0");
    source = &domain->AddHost(diamond.lan3, "m3");
    member->JoinGroup(kGroup);
    sim.RunUntil(10 * kSecond);
  }

  Simulator sim{1};
  Diamond diamond;
  std::optional<CbtDomain> domain;
  HostAgent* member = nullptr;
  HostAgent* source = nullptr;
};

TEST_F(ResilienceFixture, TreeUsesShortestPathInitially) {
  // r0's branch runs through r1 (tie-break) to core r3.
  EXPECT_TRUE(domain->router(diamond.r0).IsOnTree(kGroup));
  EXPECT_TRUE(domain->router(diamond.r1).IsOnTree(kGroup));
  EXPECT_FALSE(domain->router(diamond.r2).IsOnTree(kGroup));
}

TEST_F(ResilienceFixture, ParentNodeFailureTriggersReconnectViaAlternatePath) {
  int lost = 0, reconnected = 0;
  CbtRouter::Callbacks cb;
  cb.on_parent_lost = [&](Ipv4Address) { ++lost; };
  cb.on_reconnected = [&](Ipv4Address) { ++reconnected; };
  domain->router(diamond.r0).set_callbacks(std::move(cb));

  sim.SetNodeUp(diamond.r1, false);
  // ECHO-TIMEOUT is 90s, checked on the 30s echo tick; reconnection then
  // proceeds via r2.
  sim.RunUntil(sim.Now() + 200 * kSecond);

  EXPECT_EQ(lost, 1);
  EXPECT_EQ(reconnected, 1);
  const FibEntry* entry = domain->router(diamond.r0).fib().Find(kGroup);
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(sim.FindNodeByAddress(entry->parent_address), diamond.r2);
  EXPECT_TRUE(domain->router(diamond.r2).IsOnTree(kGroup));

  // Data still reaches the member.
  source->SendToGroup(kGroup, kPayload);
  sim.RunUntil(sim.Now() + 5 * kSecond);
  EXPECT_EQ(member->ReceivedCount(kGroup), 1u);
}

TEST_F(ResilienceFixture, LinkFailureAlsoTriggersReconnect) {
  sim.SetSubnetUp(diamond.l01, false);
  // r0 reconnects within ~120s; r1's orphaned child entry needs up to
  // CHILD-ASSERT-EXPIRE (180s) + a scan interval to be pruned, then r1
  // quits.
  sim.RunUntil(sim.Now() + 400 * kSecond);
  const FibEntry* entry = domain->router(diamond.r0).fib().Find(kGroup);
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(sim.FindNodeByAddress(entry->parent_address), diamond.r2);
  // r1, orphaned with no members or children, leaves the tree.
  EXPECT_FALSE(domain->router(diamond.r1).IsOnTree(kGroup));
}

TEST_F(ResilienceFixture, ParentStatsCountTheLoss) {
  sim.SetNodeUp(diamond.r1, false);
  sim.RunUntil(sim.Now() + 200 * kSecond);
  EXPECT_EQ(domain->router(diamond.r0).stats().parent_losses, 1u);
  EXPECT_EQ(domain->router(diamond.r0).stats().reconnects_succeeded, 1u);
}

TEST_F(ResilienceFixture, ExpiredChildrenArePrunedByParentScan) {
  // Kill r0 silently: r1 stops hearing echoes and must drop the child
  // within CHILD-ASSERT-EXPIRE (180s) + scan interval.
  ASSERT_FALSE(
      domain->router(diamond.r1).fib().Find(kGroup)->children.empty());
  sim.SetNodeUp(diamond.r0, false);
  sim.RunUntil(sim.Now() + 400 * kSecond);
  // r1 pruned the dead child and, having no members, quit the tree.
  EXPECT_FALSE(domain->router(diamond.r1).IsOnTree(kGroup));
  EXPECT_GE(domain->router(diamond.r1).stats().children_expired, 1u);
}

TEST_F(ResilienceFixture, ReconfigurationFlushesChildBranchBeforeJoining) {
  // Force r1's best next-hop toward the core to be its child r0 (section
  // 2.7 first bullet). r1 must FLUSH the r0 branch before re-joining.
  auto& routes = domain->routes();
  VifIndex r1_to_r0 = kInvalidVif;
  for (const auto& iface : sim.node(diamond.r1).interfaces) {
    if (iface.subnet == diamond.l01) r1_to_r0 = iface.vif;
  }
  ASSERT_NE(r1_to_r0, kInvalidVif);
  Ipv4Address r0_addr;
  for (const auto& iface : sim.node(diamond.r0).interfaces) {
    if (iface.subnet == diamond.l01) r0_addr = iface.address;
  }
  // The core r3's primary address lives on subnet l13.
  routes.SetStaticNextHop(diamond.r1, diamond.l13, r1_to_r0, r0_addr);

  const auto flushes_before = domain->router(diamond.r1).stats().flushes_sent;
  domain->router(diamond.r1).TriggerReconnect(kGroup);
  sim.RunUntil(sim.Now() + 30 * kSecond);
  EXPECT_GT(domain->router(diamond.r1).stats().flushes_sent, flushes_before);
  EXPECT_GE(domain->router(diamond.r0).stats().flushes_received, 1u);

  // Clear the override; everything converges back and data flows.
  routes.ClearStaticNextHops();
  sim.RunUntil(sim.Now() + 200 * kSecond);
  source->SendToGroup(kGroup, kPayload);
  sim.RunUntil(sim.Now() + 5 * kSecond);
  EXPECT_EQ(member->ReceivedCount(kGroup), 1u);
}

TEST_F(ResilienceFixture, JoinRetransmitsThroughLossyLink) {
  // A second group joined across a 40%-lossy link still converges thanks
  // to PEND-JOIN-INTERVAL retransmissions.
  const Ipv4Address g2(239, 9, 0, 1);
  domain->RegisterGroup(g2, {diamond.r3});
  sim.SetSubnetLossRate(diamond.l01, 0.4);
  sim.SetSubnetLossRate(diamond.l13, 0.4);
  member->JoinGroup(g2);
  sim.RunUntil(sim.Now() + 120 * kSecond);
  EXPECT_TRUE(domain->router(diamond.r0).IsOnTree(g2));
}

TEST_F(ResilienceFixture, KeepalivesSurviveModerateLoss) {
  // Lossy tree links. At 5% loss the ECHO-TIMEOUT's three-miss tolerance
  // makes spurious parent-loss declarations rare (an echo round trip
  // fails with p≈0.1; three consecutive misses ≈ 0.1%), and even when
  // one fires, reconnection restores the branch: the tree must still be
  // serving the member after 20 minutes.
  sim.SetSubnetLossRate(diamond.l01, 0.05);
  sim.SetSubnetLossRate(diamond.l13, 0.05);
  sim.RunUntil(sim.Now() + 1200 * kSecond);
  EXPECT_LE(domain->router(diamond.r0).stats().parent_losses, 1u);
  EXPECT_TRUE(domain->router(diamond.r0).IsOnTree(kGroup));
  source->SendToGroup(kGroup, kPayload);
  sim.RunUntil(sim.Now() + 5 * kSecond);
  EXPECT_EQ(member->ReceivedCount(kGroup), 1u);
}

TEST_F(ResilienceFixture, ReconnectGivesUpWhenPartitioned) {
  // Cut both of r0's uplinks: reconnection must fail after
  // RECONNECT-TIMEOUT and local state must be torn down.
  sim.SetSubnetUp(diamond.l01, false);
  sim.SetSubnetUp(diamond.l02, false);
  sim.RunUntil(sim.Now() + 400 * kSecond);
  EXPECT_FALSE(domain->router(diamond.r0).IsOnTree(kGroup));
  EXPECT_GE(domain->router(diamond.r0).stats().reconnects_failed, 1u);
}

class MultiCoreFixture : public ::testing::Test {
 protected:
  // Line with cores at both ends: c0 -- t1 -- t2 -- c3, member behind t1.
  MultiCoreFixture() {
    topo = netsim::MakeLine(sim, 4);
    domain.emplace(sim, topo);
    // Primary core = router 3, secondary = router 0.
    domain->RegisterGroup(kGroup, {topo.routers[3], topo.routers[0]});
    domain->Start();
    sim.RunUntil(kSecond);
    member = &domain->AddHost(topo.router_lans[1], "m");
    member->JoinGroup(kGroup);
    sim.RunUntil(10 * kSecond);
  }

  Simulator sim{1};
  Topology topo;
  std::optional<CbtDomain> domain;
  HostAgent* member = nullptr;
};

TEST_F(MultiCoreFixture, PrimaryCoreFailureFallsBackToAlternateCore) {
  ASSERT_TRUE(domain->router(topo.routers[1]).IsOnTree(kGroup));
  // Primary core (router 3) dies; router 2 (its child-side neighbour) and
  // router 1 must converge onto the secondary core (router 0).
  sim.SetNodeUp(topo.routers[3], false);
  sim.RunUntil(sim.Now() + 400 * kSecond);

  // The member's DR must still be on a live tree rooted at router 0.
  auto& r1 = domain->router(topo.routers[1]);
  ASSERT_TRUE(r1.IsOnTree(kGroup));
  // Data from a host behind the secondary core reaches the member.
  auto& src = domain->AddHost(topo.router_lans[0], "src");
  src.SendToGroup(kGroup, kPayload);
  sim.RunUntil(sim.Now() + 5 * kSecond);
  EXPECT_GE(member->ReceivedCount(kGroup), 1u);
}

TEST_F(MultiCoreFixture, RestartedNonPrimaryCoreRelearnsViaJoin) {
  // Section 6.2: a restarted core only learns its role from a join that
  // targets it. Router 0 (secondary) restarts, then a new member joins
  // targeting it explicitly.
  domain->router(topo.routers[0]).SimulateRestart();
  auto& m0 = domain->AddHost(topo.router_lans[0], "m0");
  m0.JoinGroupWithCores(kGroup, domain->directory().CoresFor(kGroup),
                        /*target_index=*/1);
  sim.RunUntil(sim.Now() + 30 * kSecond);

  auto& r0 = domain->router(topo.routers[0]);
  ASSERT_TRUE(r0.IsOnTree(kGroup));
  const FibEntry* entry = r0.fib().Find(kGroup);
  EXPECT_TRUE(entry->is_core);
  EXPECT_FALSE(entry->is_primary_core);
  // And it rejoined toward the primary: it has a parent (or the branch
  // terminated at an on-tree router toward router 3).
  EXPECT_TRUE(entry->HasParent());
}

}  // namespace
}  // namespace cbt::core
