#include "cbt/fib.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

namespace cbt::core {
namespace {

constexpr Ipv4Address kGroup(239, 1, 1, 1);
constexpr Ipv4Address kChildA(10, 1, 0, 1);
constexpr Ipv4Address kChildB(10, 2, 0, 1);
constexpr Ipv4Address kChildC(10, 2, 0, 2);

TEST(FibEntry, AddFindRemoveChild) {
  FibEntry entry;
  entry.AddChild(kChildA, 0, 100);
  entry.AddChild(kChildB, 1, 200);
  ASSERT_NE(entry.FindChild(kChildA), nullptr);
  EXPECT_EQ(entry.FindChild(kChildA)->vif, 0);
  EXPECT_EQ(entry.FindChild(kChildA)->last_heard, 100);
  EXPECT_EQ(entry.FindChild(Ipv4Address(9, 9, 9, 9)), nullptr);

  EXPECT_TRUE(entry.RemoveChild(kChildA));
  EXPECT_EQ(entry.FindChild(kChildA), nullptr);
  EXPECT_FALSE(entry.RemoveChild(kChildA));  // already gone
  EXPECT_EQ(entry.children.size(), 1u);
}

TEST(FibEntry, AddChildRefreshesExisting) {
  FibEntry entry;
  entry.AddChild(kChildA, 0, 100);
  entry.AddChild(kChildA, 2, 500);  // re-join from a different vif
  ASSERT_EQ(entry.children.size(), 1u);
  EXPECT_EQ(entry.children[0].vif, 2);
  EXPECT_EQ(entry.children[0].last_heard, 500);
}

TEST(FibEntry, ChildVifsDeduplicates) {
  FibEntry entry;
  entry.AddChild(kChildB, 1, 0);
  entry.AddChild(kChildC, 1, 0);  // same LAN
  entry.AddChild(kChildA, 0, 0);
  const auto vifs = entry.ChildVifs();
  EXPECT_EQ(vifs.size(), 2u);
  EXPECT_EQ(entry.ChildrenOnVif(1).size(), 2u);
  EXPECT_EQ(entry.ChildrenOnVif(0).size(), 1u);
  EXPECT_TRUE(entry.HasChildOnVif(1));
  EXPECT_FALSE(entry.HasChildOnVif(7));
}

TEST(FibEntry, TreeVifCoversParentAndChildren) {
  FibEntry entry;
  EXPECT_FALSE(entry.HasParent());
  EXPECT_FALSE(entry.IsTreeVif(0));
  entry.parent_address = Ipv4Address(10, 0, 0, 1);
  entry.parent_vif = 3;
  entry.AddChild(kChildA, 1, 0);
  EXPECT_TRUE(entry.HasParent());
  EXPECT_TRUE(entry.IsTreeVif(3));
  EXPECT_TRUE(entry.IsTreeVif(1));
  EXPECT_FALSE(entry.IsTreeVif(2));
}

TEST(Fib, CreateIsIdempotent) {
  Fib fib;
  FibEntry& a = fib.Create(kGroup);
  a.AddChild(kChildA, 0, 0);
  FibEntry& b = fib.Create(kGroup);
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(b.children.size(), 1u);
  EXPECT_EQ(b.group, kGroup);
}

TEST(Fib, FindAndRemove) {
  Fib fib;
  EXPECT_EQ(fib.Find(kGroup), nullptr);
  fib.Create(kGroup);
  EXPECT_NE(fib.Find(kGroup), nullptr);
  EXPECT_EQ(fib.size(), 1u);
  EXPECT_TRUE(fib.Remove(kGroup));
  EXPECT_FALSE(fib.Remove(kGroup));
  EXPECT_EQ(fib.size(), 0u);
}

TEST(Fib, StateUnitsCountEntriesPlusChildren) {
  Fib fib;
  EXPECT_EQ(fib.StateUnits(), 0u);
  FibEntry& g1 = fib.Create(Ipv4Address(239, 0, 0, 1));
  g1.AddChild(kChildA, 0, 0);
  g1.AddChild(kChildB, 1, 0);
  fib.Create(Ipv4Address(239, 0, 0, 2));
  EXPECT_EQ(fib.StateUnits(), 4u);  // (1 entry + 2 children) + 1 entry
}

TEST(FibEntry, ForEachChildVifMatchesChildVifs) {
  FibEntry entry;
  entry.AddChild(kChildB, 1, 0);
  entry.AddChild(kChildA, 0, 0);
  entry.AddChild(kChildC, 1, 0);  // vif 1 again: must not repeat
  std::vector<VifIndex> visited;
  entry.ForEachChildVif([&](VifIndex v) { visited.push_back(v); });
  EXPECT_EQ(visited, entry.ChildVifs());  // same first-seen order
  ASSERT_EQ(visited.size(), 2u);
  EXPECT_EQ(visited[0], 1);
  EXPECT_EQ(visited[1], 0);
}

TEST(FibEntry, ForEachChildOnVifVisitsInInsertionOrder) {
  FibEntry entry;
  entry.AddChild(kChildB, 1, 0);
  entry.AddChild(kChildA, 0, 0);
  entry.AddChild(kChildC, 1, 0);
  std::vector<Ipv4Address> seen;
  entry.ForEachChildOnVif(1, [&](const ChildEntry& c) {
    seen.push_back(c.address);
  });
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0], kChildB);
  EXPECT_EQ(seen[1], kChildC);
  EXPECT_EQ(entry.ChildCountOnVif(1), 2u);
  EXPECT_EQ(entry.ChildCountOnVif(0), 1u);
  EXPECT_EQ(entry.ChildCountOnVif(9), 0u);
}

TEST(FibEntry, ChildrenSpillBeyondInlineCapacity) {
  FibEntry entry;
  for (int i = 1; i <= 9; ++i) {
    entry.AddChild(Ipv4Address(10, 0, 0, (uint8_t)i), (VifIndex)(i % 3), 0);
  }
  EXPECT_EQ(entry.children.size(), 9u);
  EXPECT_EQ(entry.ChildCountOnVif(0), 3u);
  ASSERT_TRUE(entry.RemoveChild(Ipv4Address(10, 0, 0, 5)));
  EXPECT_EQ(entry.children.size(), 8u);
  EXPECT_EQ(entry.FindChild(Ipv4Address(10, 0, 0, 5)), nullptr);
}

TEST(Fib, IterationIsSortedByGroup) {
  Fib fib;
  // Insert out of order; the flat storage must iterate in ascending group
  // order (the order the previous std::map storage exposed).
  for (const std::uint8_t last : {9, 2, 7, 1, 5}) {
    fib.Create(Ipv4Address(239, 0, 0, last));
  }
  Ipv4Address prev;
  for (const auto& [group, entry] : fib) {
    EXPECT_LT(prev, group);
    EXPECT_EQ(entry.group, group);
    prev = group;
  }
  EXPECT_EQ(fib.size(), 5u);
}

TEST(Fib, IterationVisitsAllGroups) {
  Fib fib;
  for (int i = 1; i <= 5; ++i) fib.Create(Ipv4Address(239, 0, 0, (uint8_t)i));
  int count = 0;
  for (const auto& [group, entry] : fib) {
    EXPECT_TRUE(group.IsMulticast());
    ++count;
  }
  EXPECT_EQ(count, 5);
}

}  // namespace
}  // namespace cbt::core
