// Chaos regression: CBT under packet-level fault models (duplication,
// corruption, reordering) and seeded crash/flap/partition schedules, with
// the invariant auditor as the convergence oracle.
#include <gtest/gtest.h>

#include <algorithm>

#include "analysis/invariant_auditor.h"
#include "cbt/domain.h"
#include "netsim/chaos.h"
#include "netsim/topologies.h"

namespace cbt::core {
namespace {

using netsim::ChaosEvent;
using netsim::ChaosEventType;
using netsim::ChaosInjector;
using netsim::ChaosPlan;
using netsim::ChaosPlanParams;
using netsim::FaultProfile;
using netsim::MakeRandomPlan;
using netsim::Simulator;
using netsim::Topology;

constexpr Ipv4Address kGroup(239, 1, 2, 3);
const std::vector<std::uint8_t> kPayload{42};

/// Spec timers tightened uniformly so fault/recovery cycles fit in short
/// test runs (section 9 leaves them per-implementation).
CbtConfig FastConfig() {
  CbtConfig config;
  config.echo_interval = 5 * kSecond;
  config.echo_timeout = 15 * kSecond;
  config.pend_join_interval = 2 * kSecond;
  config.pend_join_timeout = 8 * kSecond;
  config.expire_pending_join = 30 * kSecond;
  config.child_assert_interval = 10 * kSecond;
  config.child_assert_expire = 25 * kSecond;
  config.iff_scan_interval = 60 * kSecond;
  config.reconnect_timeout = 30 * kSecond;
  config.proxy_refresh_interval = 20 * kSecond;
  return config;
}

igmp::IgmpConfig FastIgmp() {
  igmp::IgmpConfig config;
  config.query_interval = 15 * kSecond;
  config.query_response_interval = 4 * kSecond;
  return config;
}

/// Diamond r0 -- r1 -- r3 / r0 -- r2 -- r3 with member LANs on r0 and r1
/// and the core + source LAN on r3.
class ChaosFixture : public ::testing::Test {
 protected:
  ChaosFixture() {
    r0 = sim.AddNode("r0", true);
    r1 = sim.AddNode("r1", true);
    r2 = sim.AddNode("r2", true);
    r3 = sim.AddNode("r3", true);
    topo.routers = {r0, r1, r2, r3};
    topo.nodes = {{"r0", r0}, {"r1", r1}, {"r2", r2}, {"r3", r3}};
    l01 = sim.Connect(r0, r1);
    l13 = sim.Connect(r1, r3);
    l02 = sim.Connect(r0, r2);
    l23 = sim.Connect(r2, r3);
    lan0 = sim.AddSubnet(
        "lan0", SubnetAddress::FromPrefix(Ipv4Address(10, 30, 0, 0), 16));
    lan1 = sim.AddSubnet(
        "lan1", SubnetAddress::FromPrefix(Ipv4Address(10, 31, 0, 0), 16));
    lan3 = sim.AddSubnet(
        "lan3", SubnetAddress::FromPrefix(Ipv4Address(10, 32, 0, 0), 16));
    sim.Attach(r0, lan0);
    sim.Attach(r1, lan1);
    sim.Attach(r3, lan3);
    topo.subnets = {{"l01", l01},   {"l13", l13},   {"l02", l02},
                    {"l23", l23},   {"lan0", lan0}, {"lan1", lan1},
                    {"lan3", lan3}};
  }

  /// Call after arming any pre-join faults.
  void Converge() {
    domain.emplace(sim, topo, FastConfig(), FastIgmp());
    domain->RegisterGroup(kGroup, {r3});
    domain->Start();
    sim.RunUntil(kSecond);
    member0 = &domain->AddHost(lan0, "m0");
    member1 = &domain->AddHost(lan1, "m1");
    source = &domain->AddHost(lan3, "src");
    member0->JoinGroup(kGroup);
    member1->JoinGroup(kGroup);
    sim.RunUntil(20 * kSecond);
  }

  void SetLinkFaults(const FaultProfile& faults) {
    for (const SubnetId link : {l01, l13, l02, l23}) {
      sim.SetSubnetFaults(link, faults);
    }
  }

  std::uint64_t TotalMalformed() {
    std::uint64_t total = 0;
    for (const NodeId id : domain->router_ids()) {
      total += domain->router(id).stats().malformed_control;
    }
    return total;
  }

  Simulator sim{1};
  Topology topo;
  NodeId r0, r1, r2, r3;
  SubnetId l01, l13, l02, l23, lan0, lan1, lan3;
  std::optional<CbtDomain> domain;
  HostAgent* member0 = nullptr;
  HostAgent* member1 = nullptr;
  HostAgent* source = nullptr;
};

TEST_F(ChaosFixture, DuplicationNeverCreatesDuplicateFibChildren) {
  FaultProfile faults;
  faults.duplicate_rate = 1.0;  // every frame arrives twice
  SetLinkFaults(faults);
  Converge();

  // Every join, ack, and echo is doubled, yet each child appears once.
  for (const NodeId id : domain->router_ids()) {
    const FibEntry* entry = domain->router(id).fib().Find(kGroup);
    if (entry == nullptr) continue;
    std::vector<Ipv4Address> addrs;
    for (const auto& child : entry->children) addrs.push_back(child.address);
    std::sort(addrs.begin(), addrs.end());
    EXPECT_TRUE(std::adjacent_find(addrs.begin(), addrs.end()) == addrs.end())
        << sim.node(id).name << " has duplicate children";
  }
  analysis::InvariantAuditor auditor(*domain);
  const auto report = auditor.Audit();
  EXPECT_TRUE(report.Clean()) << report.Summary();
  EXPECT_EQ(report.CountOf(analysis::InvariantKind::kDuplicateChild), 0u);
  EXPECT_GT(sim.subnet(l01).counters.frames_duplicated, 0u);
}

TEST_F(ChaosFixture, CorruptedControlIsCountedAndNeverCrashes) {
  Converge();
  FaultProfile faults;
  faults.corrupt_rate = 0.15;
  SetLinkFaults(faults);
  sim.RunUntil(sim.Now() + 120 * kSecond);

  // Checksums caught the mangled control traffic.
  EXPECT_GT(TotalMalformed(), 0u);

  // With the corruption gone, soft state repairs everything.
  SetLinkFaults(FaultProfile{});
  const auto clean =
      analysis::RunUntilInvariantsHold(*domain, sim.Now() + 180 * kSecond);
  ASSERT_TRUE(clean.has_value());
  source->SendToGroup(kGroup, kPayload);
  sim.RunUntil(sim.Now() + 5 * kSecond);
  EXPECT_GE(member0->ReceivedCount(kGroup), 1u);
}

TEST_F(ChaosFixture, ReorderingDoesNotBreakJoinAckPairing) {
  FaultProfile faults;
  faults.reorder_rate = 1.0;
  faults.reorder_jitter = 200 * kMillisecond;
  SetLinkFaults(faults);
  Converge();

  EXPECT_TRUE(domain->router(r0).IsOnTree(kGroup));
  EXPECT_TRUE(domain->router(r1).IsOnTree(kGroup));
  analysis::InvariantAuditor auditor(*domain);
  const auto report = auditor.Audit();
  EXPECT_TRUE(report.Clean()) << report.Summary();

  source->SendToGroup(kGroup, kPayload);
  sim.RunUntil(sim.Now() + 5 * kSecond);
  EXPECT_GE(member0->ReceivedCount(kGroup), 1u);
  EXPECT_GE(member1->ReceivedCount(kGroup), 1u);
}

TEST_F(ChaosFixture, CrashedRouterRestartsAndRejoinsMidTraffic) {
  Converge();
  ASSERT_TRUE(domain->router(r1).IsOnTree(kGroup));

  // Steady traffic throughout the crash window.
  for (SimTime t = sim.Now(); t < sim.Now() + 200 * kSecond; t += kSecond) {
    sim.ScheduleAt(t, [this] { source->SendToGroup(kGroup, kPayload); });
  }

  domain->CrashRouter(r1);
  EXPECT_TRUE(domain->router(r1).IsCrashed());
  EXPECT_FALSE(domain->router(r1).IsOnTree(kGroup));  // full state loss

  // r0 detects the dead parent by echo timeout and reconnects via r2.
  sim.RunUntil(sim.Now() + 60 * kSecond);
  const FibEntry* r0_entry = domain->router(r0).fib().Find(kGroup);
  ASSERT_NE(r0_entry, nullptr);
  EXPECT_EQ(sim.FindNodeByAddress(r0_entry->parent_address), r2);
  const auto received_mid_crash = member0->ReceivedCount(kGroup);
  EXPECT_GT(received_mid_crash, 0u);

  // Restart: r1 re-learns lan1's membership via IGMP (startup queries,
  // then a report) and rejoins — give it a full query cycle.
  domain->RestartRouter(r1);
  EXPECT_FALSE(domain->router(r1).IsCrashed());
  sim.RunUntil(sim.Now() + 60 * kSecond);
  EXPECT_TRUE(domain->router(r1).IsOnTree(kGroup));

  // lan1 is being served again.
  const auto before = member1->ReceivedCount(kGroup);
  sim.RunUntil(sim.Now() + 10 * kSecond);
  EXPECT_GT(member1->ReceivedCount(kGroup), before);
  analysis::InvariantAuditor auditor(*domain);
  EXPECT_TRUE(auditor.Audit().Clean()) << auditor.Audit().Summary();
}

TEST_F(ChaosFixture, PartitionHealsAndInvariantsRecover) {
  Converge();
  ChaosEvent e;
  e.type = ChaosEventType::kPartition;
  e.at = sim.Now() + 10 * kSecond;
  e.duration = 30 * kSecond;  // comfortably past the 15s echo timeout
  e.isolated = {r1};
  ChaosPlan plan;
  plan.events = {e};

  ChaosInjector injector(sim, domain->ChaosHooks());
  injector.Arm(plan);
  // During the cut, r1 loses its parent (echo timeout) and eventually
  // gives up reconnecting; r0 reroutes via r2. After the heal, IGMP
  // re-discovers lan1's member and r1 rejoins.
  sim.RunUntil(e.repair_at() + 60 * kSecond);
  EXPECT_GE(domain->router(r1).stats().parent_losses, 1u);
  EXPECT_TRUE(domain->router(r1).IsOnTree(kGroup));
  analysis::InvariantAuditor auditor(*domain);
  EXPECT_TRUE(auditor.Audit().Clean()) << auditor.Audit().Summary();

  source->SendToGroup(kGroup, kPayload);
  sim.RunUntil(sim.Now() + 5 * kSecond);
  EXPECT_GE(member1->ReceivedCount(kGroup), 1u);
}

TEST(ChaosPlanTest, SameSeedSamePlanDifferentSeedDifferentPlan) {
  const std::vector<NodeId> nodes = {NodeId(1), NodeId(2), NodeId(3)};
  const std::vector<SubnetId> subnets = {SubnetId(0), SubnetId(1)};
  ChaosPlanParams params;
  params.event_count = 40;
  const ChaosPlan a = MakeRandomPlan(11, params, nodes, subnets);
  const ChaosPlan b = MakeRandomPlan(11, params, nodes, subnets);
  const ChaosPlan c = MakeRandomPlan(12, params, nodes, subnets);
  EXPECT_EQ(a.Describe(), b.Describe());
  EXPECT_NE(a.Describe(), c.Describe());
  ASSERT_EQ(a.events.size(), 40u);
  // Events are ordered and never overlap.
  for (std::size_t i = 1; i < a.events.size(); ++i) {
    EXPECT_GT(a.events[i].at, a.events[i - 1].repair_at());
  }
}

TEST(ChaosSoakTest, SeededScheduleOnGridConvergesCleanly) {
  Simulator sim(1);
  Topology topo = netsim::MakeGrid(sim, 4, 4);
  CbtDomain domain(sim, topo, FastConfig(), FastIgmp());
  const NodeId primary = topo.routers[0];
  const NodeId secondary = topo.routers[15];
  domain.RegisterGroup(kGroup, {primary, secondary});
  domain.Start();
  sim.RunUntil(kSecond);
  std::vector<HostAgent*> members;
  for (const std::size_t idx : {3u, 5u, 10u, 12u}) {
    members.push_back(
        &domain.AddHost(topo.router_lans[idx], "m" + std::to_string(idx)));
    members.back()->JoinGroup(kGroup);
  }
  sim.RunUntil(30 * kSecond);
  ASSERT_TRUE(analysis::RunUntilInvariantsHold(domain, 40 * kSecond));

  std::vector<NodeId> crashable;
  for (const NodeId id : topo.routers) {
    if (id != primary && id != secondary) crashable.push_back(id);
  }
  std::vector<SubnetId> flappable;
  for (std::size_t s = 0; s < sim.subnet_count(); ++s) {
    const SubnetId sid(static_cast<std::int32_t>(s));
    if (std::find(topo.router_lans.begin(), topo.router_lans.end(), sid) ==
        topo.router_lans.end()) {
      flappable.push_back(sid);
    }
  }
  ChaosPlanParams params;
  params.event_count = 12;
  params.start = 60 * kSecond;
  params.min_gap = 40 * kSecond;
  params.max_gap = 80 * kSecond;
  params.min_down = 5 * kSecond;
  params.max_down = 15 * kSecond;
  const ChaosPlan plan = MakeRandomPlan(3, params, crashable, flappable);
  int injected = 0, repaired = 0;
  ChaosInjector::Hooks hooks = domain.ChaosHooks();
  hooks.observer = [&](const ChaosEvent&, bool begin) {
    begin ? ++injected : ++repaired;
  };
  ChaosInjector injector(sim, std::move(hooks));
  injector.Arm(plan);

  sim.RunUntil(plan.LastRepairTime());
  EXPECT_EQ(injected, 12);
  EXPECT_EQ(repaired, 12);

  const auto clean =
      analysis::RunUntilInvariantsHold(domain, sim.Now() + 180 * kSecond);
  ASSERT_TRUE(clean.has_value());
  // Every member LAN is served again after the full schedule.
  auto& src = domain.AddHost(topo.router_lans[0], "src");
  src.SendToGroup(kGroup, kPayload);
  sim.RunUntil(sim.Now() + 10 * kSecond);
  for (HostAgent* m : members) EXPECT_GE(m->ReceivedCount(kGroup), 1u);
}

}  // namespace
}  // namespace cbt::core
