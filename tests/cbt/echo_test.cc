// CBT-ECHO keepalives (sections 6, 8.4): per-group requests, aggregated
// requests with the Figure-9 group/mask range, child refresh, and the
// no-reply-without-state rule.
#include <gtest/gtest.h>

#include "cbt/domain.h"
#include "netsim/topologies.h"

namespace cbt::core {
namespace {

using netsim::MakeLine;
using netsim::Simulator;
using netsim::Topology;

class EchoFixture : public ::testing::TestWithParam<bool> {
 protected:
  EchoFixture() : topo(MakeLine(sim, 3)) {
    CbtConfig config;
    config.aggregate_echo = GetParam();
    domain.emplace(sim, topo, config);
  }

  void JoinGroups(const std::vector<Ipv4Address>& groups) {
    for (const Ipv4Address g : groups) {
      domain->RegisterGroup(g, {topo.routers[2]});
    }
    domain->Start();
    sim.RunUntil(kSecond);
    auto& h = domain->AddHost(topo.router_lans[0], "m");
    for (const Ipv4Address g : groups) {
      h.JoinGroup(g);
      sim.RunUntil(sim.Now() + kSecond);
    }
    sim.RunUntil(sim.Now() + 10 * kSecond);
  }

  Simulator sim{1};
  Topology topo;
  std::optional<CbtDomain> domain;
};

INSTANTIATE_TEST_SUITE_P(Aggregation, EchoFixture, ::testing::Bool(),
                         [](const auto& info) {
                           return info.param ? "Aggregated" : "PerGroup";
                         });

TEST_P(EchoFixture, KeepalivesKeepTheTreeAliveIndefinitely) {
  JoinGroups({Ipv4Address(239, 1, 0, 1), Ipv4Address(239, 1, 0, 2)});
  // Far beyond ECHO-TIMEOUT: no spurious parent-loss, no reconnects.
  sim.RunUntil(sim.Now() + 600 * kSecond);
  for (const NodeId r : {topo.routers[0], topo.routers[1]}) {
    EXPECT_EQ(domain->router(r).stats().parent_losses, 0u);
    EXPECT_TRUE(domain->router(r).IsOnTree(Ipv4Address(239, 1, 0, 1)));
  }
}

TEST_P(EchoFixture, AggregationCollapsesPerGroupTraffic) {
  JoinGroups({Ipv4Address(239, 1, 0, 1), Ipv4Address(239, 1, 0, 2),
              Ipv4Address(239, 1, 0, 3), Ipv4Address(239, 1, 0, 4)});
  auto& r0 = domain->router(topo.routers[0]);
  const auto before = r0.stats().echo_requests_sent;
  sim.RunUntil(sim.Now() + 300 * kSecond);  // 10 echo intervals
  const auto sent = r0.stats().echo_requests_sent - before;
  if (GetParam()) {
    EXPECT_LE(sent, 11u) << "one aggregate per interval";
  } else {
    EXPECT_GE(sent, 40u) << "one per group per interval";
  }
}

TEST(EchoAggregation, MaskCoversExactlyTheSharedPrefix) {
  // Two groups share the 239.1.0.0/30-ish prefix; a third group lives
  // under a different parent (different core), so its keepalive state
  // must NOT be refreshed by the first parent's aggregate echo.
  Simulator sim{1};
  Topology topo = MakeLine(sim, 3);
  CbtConfig config;
  config.aggregate_echo = true;
  // Huge echo interval so we can single-step the exchange.
  CbtDomain domain(sim, topo, config);
  const Ipv4Address g1(239, 1, 0, 1), g2(239, 1, 0, 2);
  domain.RegisterGroup(g1, {topo.routers[2]});
  domain.RegisterGroup(g2, {topo.routers[2]});
  domain.Start();
  sim.RunUntil(kSecond);
  auto& h = domain.AddHost(topo.router_lans[0], "m");
  h.JoinGroup(g1);
  h.JoinGroup(g2);
  sim.RunUntil(10 * kSecond);

  auto& r1 = domain.router(topo.routers[1]);
  ASSERT_TRUE(r1.IsOnTree(g1));
  ASSERT_TRUE(r1.IsOnTree(g2));

  // After an echo interval both groups' child entries at r1 must have
  // been refreshed by the single aggregate request from r0.
  sim.RunUntil(sim.Now() + 40 * kSecond);
  const SimTime now = sim.Now();
  for (const Ipv4Address g : {g1, g2}) {
    const FibEntry* entry = r1.fib().Find(g);
    ASSERT_EQ(entry->children.size(), 1u);
    EXPECT_GT(entry->children[0].last_heard, now - 35 * kSecond)
        << g.ToString();
  }
}

TEST(EchoKeepalive, StatelessRouterDoesNotVouch) {
  // After a restart the parent holds no state; it must stay silent so
  // the child's echo timeout fires (section 6.2 depends on this).
  Simulator sim{1};
  Topology topo = MakeLine(sim, 3);
  CbtDomain domain(sim, topo);
  const Ipv4Address g(239, 1, 0, 9);
  domain.RegisterGroup(g, {topo.routers[2]});
  domain.Start();
  sim.RunUntil(kSecond);
  domain.AddHost(topo.router_lans[0], "m").JoinGroup(g);
  sim.RunUntil(10 * kSecond);

  auto& r1 = domain.router(topo.routers[1]);
  const auto replies_before = r1.stats().echo_replies_sent;
  r1.SimulateRestart();
  sim.RunUntil(sim.Now() + 65 * kSecond);  // two echo intervals
  EXPECT_EQ(r1.stats().echo_replies_sent, replies_before);
  // ... and r0 eventually recovers by re-joining through r1.
  sim.RunUntil(sim.Now() + 200 * kSecond);
  EXPECT_TRUE(domain.router(topo.routers[0]).IsOnTree(g));
  EXPECT_TRUE(r1.IsOnTree(g));
}

}  // namespace
}  // namespace cbt::core
