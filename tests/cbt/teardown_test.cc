// Tree teardown (section 2.7): QUIT_REQUEST propagation driven by IGMP
// leaves, plus FLUSH_TREE behaviour.
#include <gtest/gtest.h>

#include "cbt/domain.h"
#include "netsim/topologies.h"

namespace cbt::core {
namespace {

using netsim::MakeFigure1;
using netsim::Simulator;
using netsim::Topology;

constexpr Ipv4Address kGroup(239, 1, 2, 3);

class TeardownFixture : public ::testing::Test {
 protected:
  TeardownFixture() : topo(MakeFigure1(sim)), domain(sim, topo) {
    domain.RegisterGroup(kGroup, {topo.node("R4"), topo.node("R9")});
    domain.Start();
    sim.RunUntil(kSecond);
  }

  Simulator sim{1};
  Topology topo;
  CbtDomain domain;
};

TEST_F(TeardownFixture, LeaveTriggersQuitUpTheBranch) {
  // The spec's exact scenario: A (via R1) and B (via R6/R2) are members.
  domain.host("A").JoinGroup(kGroup);
  sim.RunUntil(10 * kSecond);
  domain.host("B").JoinGroup(kGroup);
  sim.RunUntil(20 * kSecond);
  ASSERT_TRUE(domain.router("R2").IsOnTree(kGroup));

  // "Assume group member B leaves group G on subnet S4... R2 has no CBT
  // children, and no other directly attached subnets with group G
  // presence, it immediately follows on by sending a QUIT_REQUEST to R3."
  domain.host("B").LeaveGroup(kGroup);
  sim.RunUntil(60 * kSecond);

  EXPECT_FALSE(domain.router("R2").IsOnTree(kGroup));
  EXPECT_GE(domain.router("R2").stats().quits_sent, 1u);
  EXPECT_GE(domain.router("R3").stats().quit_acks_sent, 1u);

  // "R3 cannot itself send a quit" — R1 is still its child.
  EXPECT_TRUE(domain.router("R3").IsOnTree(kGroup));
  EXPECT_TRUE(domain.router("R1").IsOnTree(kGroup));
}

TEST_F(TeardownFixture, LastLeaveTearsDownWholeBranchButCoreStays) {
  domain.host("A").JoinGroup(kGroup);
  sim.RunUntil(10 * kSecond);
  ASSERT_TRUE(domain.router("R3").IsOnTree(kGroup));

  domain.host("A").LeaveGroup(kGroup);
  sim.RunUntil(120 * kSecond);

  EXPECT_FALSE(domain.router("R1").IsOnTree(kGroup));
  EXPECT_FALSE(domain.router("R3").IsOnTree(kGroup));
  // The primary core anchors the backbone and does not quit itself.
  EXPECT_TRUE(domain.router("R4").IsOnTree(kGroup));
  EXPECT_TRUE(domain.router("R4").fib().Find(kGroup)->children.empty());
}

TEST_F(TeardownFixture, RejoinAfterFullTeardownWorks) {
  domain.host("A").JoinGroup(kGroup);
  sim.RunUntil(10 * kSecond);
  domain.host("A").LeaveGroup(kGroup);
  sim.RunUntil(120 * kSecond);
  ASSERT_FALSE(domain.router("R1").IsOnTree(kGroup));

  domain.host("A").JoinGroup(kGroup);
  sim.RunUntil(sim.Now() + 20 * kSecond);
  EXPECT_TRUE(domain.router("R1").IsOnTree(kGroup));
  EXPECT_TRUE(domain.router("R3").IsOnTree(kGroup));
}

TEST_F(TeardownFixture, GdrQuitsWhenItsLanLosesMembers) {
  // B joined via proxy-ack: R2 is G-DR. When B leaves, R2 (which tracked
  // S4 membership passively) must quit, and R6 has no state to clean.
  domain.host("A").JoinGroup(kGroup);
  sim.RunUntil(10 * kSecond);
  domain.host("B").JoinGroup(kGroup);
  sim.RunUntil(20 * kSecond);
  ASSERT_TRUE(domain.router("R6").JoinedViaGdr(kGroup));

  domain.host("B").LeaveGroup(kGroup);
  sim.RunUntil(90 * kSecond);
  EXPECT_FALSE(domain.router("R2").IsOnTree(kGroup));
}

TEST_F(TeardownFixture, QuitAckLostParentStateRemovedAfterRetries) {
  domain.host("G").JoinGroup(kGroup);
  sim.RunUntil(10 * kSecond);
  ASSERT_TRUE(domain.router("R8").IsOnTree(kGroup));

  // Sever the R4-R8 link so R8's QUIT_REQUESTs go unanswered, then leave.
  sim.SetSubnetUp(topo.subnet("R4-R8"), false);
  domain.host("G").LeaveGroup(kGroup);
  // 3 retries x 10s spacing, plus leave latency: state must clear anyway.
  sim.RunUntil(sim.Now() + 120 * kSecond);
  EXPECT_FALSE(domain.router("R8").IsOnTree(kGroup));
}

TEST_F(TeardownFixture, RestartedTransitRouterRelearnsState) {
  // Section 6.2 non-core restart: R3 loses all state; it stops answering
  // R1's echoes (a stateless router must not vouch for a group), R1 times
  // out and re-joins through R3, which re-learns transit state.
  domain.host("A").JoinGroup(kGroup);
  domain.host("G").JoinGroup(kGroup);
  sim.RunUntil(20 * kSecond);
  ASSERT_TRUE(domain.router("R1").IsOnTree(kGroup));
  ASSERT_TRUE(domain.router("R8").IsOnTree(kGroup));

  domain.router("R3").SimulateRestart();
  sim.RunUntil(sim.Now() + 200 * kSecond);
  EXPECT_TRUE(domain.router("R1").IsOnTree(kGroup));
  EXPECT_TRUE(domain.router("R3").IsOnTree(kGroup));
  // Data flows end to end again.
  domain.host("G").SendToGroup(kGroup, std::vector<std::uint8_t>{1});
  sim.RunUntil(sim.Now() + 5 * kSecond);
  EXPECT_GE(domain.host("A").ReceivedCount(kGroup), 1u);
}

TEST_F(TeardownFixture, SilentGdrLossRepairedByProxyRefresh) {
  // B joins via proxy-ack (R2 becomes G-DR, D-DR R6 stateless). R2 then
  // dies without any signal reaching R6. The D-DR's soft proxy marker
  // must go stale and its refresh join re-attach S4 through another
  // router (R5, the remaining path to R3).
  domain.host("A").JoinGroup(kGroup);
  sim.RunUntil(10 * kSecond);
  domain.host("B").JoinGroup(kGroup);
  sim.RunUntil(20 * kSecond);
  ASSERT_TRUE(domain.router("R6").JoinedViaGdr(kGroup));

  sim.SetNodeUp(topo.node("R2"), false);
  // proxy_refresh_interval (60s) + a membership-report cycle + join.
  sim.RunUntil(sim.Now() + 300 * kSecond);

  // Somebody serves S4 again: either R6 itself holds state now or a new
  // G-DR (R5) covers it; data must reach B.
  domain.host("A").SendToGroup(kGroup, std::vector<std::uint8_t>{9});
  sim.RunUntil(sim.Now() + 5 * kSecond);
  EXPECT_EQ(domain.host("B").ReceivedCount(kGroup), 1u);
}

TEST_F(TeardownFixture, IffScanQuitsForgottenGroups) {
  // A router left on-tree with no members and no children must leave the
  // tree on its own via the periodic interface scan, even if it never
  // sees a leave (e.g. membership timeout without leave message).
  domain.host("A").JoinGroup(kGroup);
  sim.RunUntil(10 * kSecond);
  ASSERT_TRUE(domain.router("R1").IsOnTree(kGroup));

  // Detach host A abruptly (no IGMP leave): membership must age out
  // (2*60+10 = 130s) and the branch teardown follow.
  sim.SetNodeUp(topo.node("A"), false);
  sim.RunUntil(sim.Now() + 400 * kSecond);
  EXPECT_FALSE(domain.router("R1").IsOnTree(kGroup));
  EXPECT_FALSE(domain.router("R3").IsOnTree(kGroup));
}

}  // namespace
}  // namespace cbt::core
