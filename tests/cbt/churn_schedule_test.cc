#include "cbt/churn.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <vector>

#include "netsim/simulator.h"

namespace cbt::scenario {
namespace {

ChurnParams BaseParams() {
  ChurnParams params;
  params.groups = 4;
  params.zipf_s = 1.0;
  params.initial_members = 200;
  params.arrivals_per_second = 5.0;
  params.mean_holding = 30 * kSecond;
  params.duration = 120 * kSecond;
  return params;
}

TEST(ZipfSampler, SkewsTowardLowRanks) {
  ZipfSampler zipf(8, 1.0);
  Rng rng(7);
  std::map<std::uint32_t, int> histogram;
  for (int i = 0; i < 20000; ++i) ++histogram[zipf.Sample(rng)];
  // Rank 0 must dominate rank 7 decisively under s = 1.
  EXPECT_GT(histogram[0], 4 * histogram[7]);
  // Every rank is reachable.
  for (std::uint32_t g = 0; g < 8; ++g) EXPECT_GT(histogram[g], 0);
}

TEST(ZipfSampler, ZeroExponentIsRoughlyUniform) {
  ZipfSampler zipf(4, 0.0);
  Rng rng(11);
  std::map<std::uint32_t, int> histogram;
  for (int i = 0; i < 40000; ++i) ++histogram[zipf.Sample(rng)];
  for (std::uint32_t g = 0; g < 4; ++g) {
    EXPECT_GT(histogram[g], 8000);
    EXPECT_LT(histogram[g], 12000);
  }
}

TEST(ChurnSchedule, DeterministicForSeedAndParams) {
  const ChurnSchedule a = ChurnSchedule::Generate(BaseParams(), 8, 42);
  const ChurnSchedule b = ChurnSchedule::Generate(BaseParams(), 8, 42);
  ASSERT_EQ(a.events().size(), b.events().size());
  for (std::size_t i = 0; i < a.events().size(); ++i) {
    EXPECT_EQ(a.events()[i].at, b.events()[i].at);
    EXPECT_EQ(a.events()[i].lan, b.events()[i].lan);
    EXPECT_EQ(a.events()[i].group, b.events()[i].group);
    EXPECT_EQ(a.events()[i].join, b.events()[i].join);
  }
  const ChurnSchedule c = ChurnSchedule::Generate(BaseParams(), 8, 43);
  EXPECT_NE(a.events().size(), 0u);
  // A different seed rearranges the schedule (sizes may coincide, the
  // event streams must not).
  bool differs = a.events().size() != c.events().size();
  for (std::size_t i = 0; !differs && i < a.events().size(); ++i) {
    differs = a.events()[i].at != c.events()[i].at ||
              a.events()[i].lan != c.events()[i].lan;
  }
  EXPECT_TRUE(differs);
}

TEST(ChurnSchedule, EventsSortedAndCountsConsistent) {
  const ChurnSchedule schedule = ChurnSchedule::Generate(BaseParams(), 8, 1);
  std::uint64_t joins = 0;
  std::uint64_t leaves = 0;
  SimTime last = 0;
  for (const MembershipEvent& e : schedule.events()) {
    EXPECT_GE(e.at, last);
    last = e.at;
    EXPECT_LT(e.lan, 8u);
    EXPECT_LT(e.group, 4u);
    (e.join ? joins : leaves) += 1;
  }
  EXPECT_EQ(joins, schedule.join_count());
  EXPECT_EQ(leaves, schedule.leave_count());
  // Warm start + Poisson arrivals all materialize as joins.
  EXPECT_GE(joins, BaseParams().initial_members);
  // Holding times (mean 30 s) are far shorter than the 120 s horizon, so
  // most members depart inside it.
  EXPECT_GT(leaves, joins / 2);
  EXPECT_GE(schedule.peak_members(), BaseParams().initial_members);
}

TEST(ChurnSchedule, PerLanGroupMembershipNeverGoesNegative) {
  const ChurnSchedule schedule = ChurnSchedule::Generate(BaseParams(), 5, 9);
  std::map<std::pair<std::uint32_t, std::uint32_t>, std::int64_t> count;
  for (const MembershipEvent& e : schedule.events()) {
    auto& c = count[{e.lan, e.group}];
    c += e.join ? 1 : -1;
    ASSERT_GE(c, 0) << "leave before matching join at t=" << e.at;
  }
}

TEST(ChurnSchedule, FlashCrowdInjectsJoinsInsideWindow) {
  ChurnParams params = BaseParams();
  params.arrivals_per_second = 0.0;
  params.initial_members = 10;
  FlashCrowd flash;
  flash.at = 60 * kSecond;
  flash.group = 3;
  flash.members = 500;
  flash.window = 5 * kSecond;
  params.flashes.push_back(flash);
  const ChurnSchedule schedule = ChurnSchedule::Generate(params, 4, 2);
  std::uint64_t in_window = 0;
  for (const MembershipEvent& e : schedule.events()) {
    if (e.join && e.group == 3 && e.at >= flash.at &&
        e.at <= flash.at + flash.window) {
      ++in_window;
    }
  }
  EXPECT_GE(in_window, flash.members);
}

TEST(ChurnSchedule, LeaveStormDrainsTheTargetGroup) {
  ChurnParams params = BaseParams();
  params.arrivals_per_second = 0.0;
  params.initial_members = 400;
  params.mean_holding = 1000 * kSecond;  // natural departures are rare
  LeaveStorm storm;
  storm.at = 60 * kSecond;
  storm.group = 0;
  storm.fraction = 1.0;
  storm.window = 5 * kSecond;
  params.storms.push_back(storm);
  const ChurnSchedule schedule = ChurnSchedule::Generate(params, 4, 3);

  // Replay group 0's membership around the storm window.
  std::int64_t live = 0;
  std::int64_t live_at_storm = -1;
  std::uint64_t leaves_in_window = 0;
  for (const MembershipEvent& e : schedule.events()) {
    if (e.group != 0) continue;
    if (live_at_storm < 0 && e.at >= storm.at) live_at_storm = live;
    live += e.join ? 1 : -1;
    if (!e.join && e.at >= storm.at && e.at <= storm.at + storm.window) {
      ++leaves_in_window;
    }
    if (e.at > storm.at + storm.window) break;
  }
  // The zipf-hottest group holds a solid share of 400 warm-start members.
  ASSERT_GT(live_at_storm, 50);
  // fraction = 1.0: everyone present at storm.at departs inside the
  // window, and nothing is left once it closes.
  EXPECT_GE(leaves_in_window, static_cast<std::uint64_t>(live_at_storm));
  EXPECT_EQ(live, 0);
}

TEST(ChurnRunner, AppliesEveryEventAtItsTimestamp) {
  ChurnParams params = BaseParams();
  params.initial_members = 50;
  params.arrivals_per_second = 2.0;
  const ChurnSchedule schedule = ChurnSchedule::Generate(params, 3, 4);
  ASSERT_FALSE(schedule.events().empty());

  netsim::Simulator sim(1);
  std::vector<std::pair<SimTime, bool>> applied;
  ChurnRunner runner(sim, schedule, [&](const MembershipEvent& e) {
    applied.emplace_back(sim.Now(), e.join);
  });
  runner.Start();
  sim.RunUntil(params.duration + kSecond);

  ASSERT_TRUE(runner.done());
  ASSERT_EQ(applied.size(), schedule.events().size());
  for (std::size_t i = 0; i < applied.size(); ++i) {
    EXPECT_EQ(applied[i].first, schedule.events()[i].at);
    EXPECT_EQ(applied[i].second, schedule.events()[i].join);
  }
}

}  // namespace
}  // namespace cbt::scenario
