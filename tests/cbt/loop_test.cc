// Route-loop detection (section 6.3), replayed on the spec's Figure-5
// topology with static next-hop overrides standing in for transient
// unicast-routing asymmetry.
#include <gtest/gtest.h>

#include "cbt/domain.h"
#include "netsim/topologies.h"

namespace cbt::core {
namespace {

using netsim::MakeFigure5Loop;
using netsim::Simulator;
using netsim::Topology;

constexpr Ipv4Address kGroup(239, 6, 3, 0);

class LoopFixture : public ::testing::Test {
 protected:
  LoopFixture() : topo(MakeFigure5Loop(sim)), domain(sim, topo) {
    domain.RegisterGroup(kGroup, {topo.node("R1")});
    domain.Start();
    sim.RunUntil(kSecond);
    // Members behind R4 and R5 build the tree
    // R4 -> R3 -> R2 -> R1(core), R5 -> R4.
    domain.AddHost(lan("R4"), "m4").JoinGroup(kGroup);
    sim.RunUntil(10 * kSecond);
    domain.AddHost(lan("R5"), "m5").JoinGroup(kGroup);
    sim.RunUntil(20 * kSecond);
  }

  SubnetId lan(const std::string& router) {
    return topo.subnet("lan-" + router);
  }

  /// The subnet holding R1's primary address (joins toward R1 resolve it).
  SubnetId CoreSubnet() {
    return sim.node(topo.node("R1")).interfaces.front().subnet;
  }

  VifIndex VifToward(const std::string& from, const std::string& to) {
    const NodeId f = topo.node(from);
    const NodeId t = topo.node(to);
    for (const auto& iface : sim.node(f).interfaces) {
      for (const auto& [peer, pv] : sim.subnet(iface.subnet).attachments) {
        if (peer == t) return iface.vif;
      }
    }
    return kInvalidVif;
  }

  Ipv4Address AddressOn(const std::string& router, SubnetId subnet) {
    for (const auto& iface : sim.node(topo.node(router)).interfaces) {
      if (iface.subnet == subnet) return iface.address;
    }
    return Ipv4Address{};
  }

  Simulator sim{1};
  Topology topo;
  CbtDomain domain;
};

TEST_F(LoopFixture, InitialTreeMatchesNarrative) {
  ASSERT_TRUE(domain.router("R3").IsOnTree(kGroup));
  const FibEntry* r3 = domain.router("R3").fib().Find(kGroup);
  EXPECT_EQ(sim.FindNodeByAddress(r3->parent_address), topo.node("R2"));
  EXPECT_EQ(r3->children.size(), 1u);  // R4
  const FibEntry* r5 = domain.router("R5").fib().Find(kGroup);
  EXPECT_EQ(sim.FindNodeByAddress(r5->parent_address), topo.node("R4"));
  EXPECT_FALSE(domain.router("R6").IsOnTree(kGroup));
}

TEST_F(LoopFixture, RejoinThroughLoopIsDetectedAndBroken) {
  // Override routing exactly as section 6.3 describes: "R3 believes its
  // best next-hop to R1 is R6, and R6 believes R5 is its best next-hop".
  auto& routes = domain.routes();
  const SubnetId core_subnet = CoreSubnet();
  routes.SetStaticNextHop(
      topo.node("R3"), core_subnet, VifToward("R3", "R6"),
      AddressOn("R6", sim.interface(topo.node("R3"), VifToward("R3", "R6"))
                          .subnet));
  routes.SetStaticNextHop(
      topo.node("R6"), core_subnet, VifToward("R6", "R5"),
      AddressOn("R5", sim.interface(topo.node("R6"), VifToward("R6", "R5"))
                          .subnet));

  int loops = 0;
  CbtRouter::Callbacks cb;
  cb.on_loop_detected = [&](Ipv4Address g) {
    EXPECT_EQ(g, kGroup);
    ++loops;
  };
  domain.router("R3").set_callbacks(std::move(cb));

  // R3 re-joins (as after a parent failure); subcode must be
  // REJOIN-ACTIVE since R4 is its child.
  domain.router("R3").TriggerReconnect(kGroup);
  sim.RunUntil(sim.Now() + 5 * kSecond);

  // The REJOIN travelled R3 -> R6 -> R5 (on-tree), was converted to
  // REJOIN-NACTIVE, went up R5 -> R4 -> R3, and R3 recognised its own
  // origin: loop detected, QUIT sent.
  EXPECT_EQ(loops, 1);
  EXPECT_GE(domain.router("R5").stats().rejoins_converted, 1u);
  EXPECT_GE(domain.router("R3").stats().loops_detected, 1u);
  EXPECT_GE(domain.router("R3").stats().quits_sent, 1u);

  // Restore sane routing; R3's scheduled retry re-attaches via R2.
  routes.ClearStaticNextHops();
  sim.RunUntil(sim.Now() + 60 * kSecond);
  const FibEntry* r3 = domain.router("R3").fib().Find(kGroup);
  ASSERT_NE(r3, nullptr);
  ASSERT_TRUE(r3->HasParent());
  EXPECT_EQ(sim.FindNodeByAddress(r3->parent_address), topo.node("R2"));

  // End-to-end sanity: data from behind the core reaches both members.
  auto& src = domain.AddHost(lan("R1"), "src");
  src.SendToGroup(kGroup, std::vector<std::uint8_t>{1, 2, 3});
  sim.RunUntil(sim.Now() + 5 * kSecond);
  EXPECT_EQ(domain.host("m4").ReceivedCount(kGroup), 1u);
  EXPECT_EQ(domain.host("m5").ReceivedCount(kGroup), 1u);
}

TEST_F(LoopFixture, RejoinReachingPrimaryCoreIsAckedNormally) {
  // Section 6.3's non-loop variant: R3's rejoin goes the legitimate way
  // to the primary core and simply re-attaches.
  domain.router("R3").TriggerReconnect(kGroup);
  sim.RunUntil(sim.Now() + 30 * kSecond);
  const FibEntry* r3 = domain.router("R3").fib().Find(kGroup);
  ASSERT_NE(r3, nullptr);
  ASSERT_TRUE(r3->HasParent());
  EXPECT_EQ(sim.FindNodeByAddress(r3->parent_address), topo.node("R2"));
  EXPECT_EQ(domain.router("R3").stats().loops_detected, 0u);
}

TEST_F(LoopFixture, NactiveRejoinReachingPrimaryGetsDirectAck) {
  // A rejoin that is converted on an on-tree router and climbs to the
  // primary core is answered with JOIN-ACK subcode REJOIN-NACTIVE sent
  // straight to the converting router.
  // Build it: R6 joins with a child (make m6 a member first so R6 is on
  // tree with a child-ish state) — simpler: R5 rejoins through R6? Use
  // the narrative instead: R5 triggers reconnect; its best next-hop to R1
  // is R4 (on-tree) -> converted to NACTIVE by R4 -> climbs R4's parent
  // chain R3 -> R2 -> R1 (primary), which acks directly to R4.
  auto& r5 = domain.router("R5");
  // Give R5 a child so the rejoin is REJOIN-ACTIVE: m6 joins via R6,
  // whose path to R1 is R6 -> R3 tie-broken... force via override: R6's
  // next hop toward the core-subnet is R5.
  domain.routes().SetStaticNextHop(
      topo.node("R6"), CoreSubnet(), VifToward("R6", "R5"),
      AddressOn("R5", sim.interface(topo.node("R6"), VifToward("R6", "R5"))
                          .subnet));
  domain.AddHost(lan("R6"), "m6").JoinGroup(kGroup);
  sim.RunUntil(sim.Now() + 10 * kSecond);
  ASSERT_FALSE(r5.fib().Find(kGroup)->children.empty());

  const auto acks_before = domain.router("R1").stats().acks_sent;
  r5.TriggerReconnect(kGroup);
  sim.RunUntil(sim.Now() + 10 * kSecond);

  // R5 re-attached (to R4, its best next hop), no loop was declared, and
  // the primary core emitted the direct NACTIVE ack.
  EXPECT_EQ(r5.stats().loops_detected, 0u);
  ASSERT_TRUE(r5.fib().Find(kGroup)->HasParent());
  EXPECT_GT(domain.router("R1").stats().acks_sent, acks_before);
  EXPECT_GE(domain.router("R4").stats().rejoins_converted, 1u);
}

}  // namespace
}  // namespace cbt::core
