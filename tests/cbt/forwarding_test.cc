// Data-packet forwarding per sections 4 (native mode), 5 (CBT mode) and 7
// (loop suppression), including the spec's member-G walkthrough.
#include <gtest/gtest.h>

#include "cbt/domain.h"
#include "netsim/topologies.h"

namespace cbt::core {
namespace {

using netsim::MakeFigure1;
using netsim::Simulator;
using netsim::Topology;

constexpr Ipv4Address kGroup(239, 1, 2, 3);
const std::vector<std::uint8_t> kPayload{'c', 'b', 't', '!'};

/// Parameterized over forwarding mode: native (section 4) vs CBT
/// encapsulation (section 5). Delivery semantics must be identical.
class ForwardingFixture : public ::testing::TestWithParam<bool> {
 protected:
  ForwardingFixture() : topo(MakeFigure1(sim)) {
    CbtConfig config;
    config.native_mode = GetParam();
    domain.emplace(sim, topo, config);
    domain->RegisterGroup(kGroup, {topo.node("R4"), topo.node("R9")});
    domain->Start();
    sim.RunUntil(kSecond);
  }

  /// Joins every lettered member host and lets the tree settle.
  void JoinAll() {
    for (const char* h : kMembers) domain->host(h).JoinGroup(kGroup);
    sim.RunUntil(30 * kSecond);
  }

  static constexpr const char* kMembers[] = {"A", "B", "C", "D", "E", "F",
                                             "G", "H", "I", "J", "K", "L"};

  Simulator sim{1};
  Topology topo;
  std::optional<CbtDomain> domain;
};

INSTANTIATE_TEST_SUITE_P(Modes, ForwardingFixture, ::testing::Bool(),
                         [](const auto& info) {
                           return info.param ? "Native" : "CbtMode";
                         });

TEST_P(ForwardingFixture, MemberGSendReachesEveryOtherMemberExactlyOnce) {
  JoinAll();
  domain->host("G").SendToGroup(kGroup, kPayload);
  sim.RunUntil(40 * kSecond);

  for (const char* h : kMembers) {
    if (std::string(h) == "G") continue;
    EXPECT_EQ(domain->host(h).ReceivedCount(kGroup), 1u) << h;
  }
  // The sender's own LAN already saw the packet; no echo back to G.
  EXPECT_EQ(domain->host("G").ReceivedCount(kGroup), 0u);
}

TEST_P(ForwardingFixture, EverySenderReachesEveryReceiver) {
  JoinAll();
  for (const char* h : kMembers) {
    domain->host(h).SendToGroup(kGroup, kPayload);
  }
  sim.RunUntil(60 * kSecond);
  // 12 members, each receives from the 11 others exactly once.
  for (const char* h : kMembers) {
    EXPECT_EQ(domain->host(h).ReceivedCount(kGroup), 11u) << h;
  }
}

TEST_P(ForwardingFixture, MemberlessTransitLanGetsNoDelivery) {
  JoinAll();
  // "R9, the DR for S12, need not IP multicast onto S12 since there are
  // no members present there."
  auto& quiet = domain->AddHost(topo.subnet("S12"), "quiet");
  domain->host("G").SendToGroup(kGroup, kPayload);
  sim.RunUntil(40 * kSecond);
  EXPECT_EQ(quiet.ReceivedCount(kGroup), 0u);
  EXPECT_EQ(domain->router("R9").stats().data_delivered_lan, 0u);
}

TEST_P(ForwardingFixture, NonJoinedHostOnMemberLanIgnoresData) {
  JoinAll();
  auto& bystander = domain->AddHost(topo.subnet("S1"), "bystander");
  domain->host("G").SendToGroup(kGroup, kPayload);
  sim.RunUntil(40 * kSecond);
  // The frame crosses S1 (A lives there) but the IP module of a
  // non-member host discards it.
  EXPECT_EQ(bystander.ReceivedCount(kGroup), 0u);
}

TEST_P(ForwardingFixture, NonMemberSenderReachesGroupViaCore) {
  JoinAll();
  // S12 has no members and its DR (R9) is on-tree; a host there sends
  // without joining. Sections 5.1/5.3.
  auto& sender = domain->AddHost(topo.subnet("S12"), "sender");
  sender.SendToGroup(kGroup, kPayload);
  sim.RunUntil(40 * kSecond);
  for (const char* h : kMembers) {
    EXPECT_EQ(domain->host(h).ReceivedCount(kGroup), 1u) << h;
  }
}

TEST_P(ForwardingFixture, NonMemberSenderWithOffTreeDrReachesGroup) {
  // Only A joins; a host on S13 (whose DR R10 is then off-tree) sends.
  // R10 must encapsulate toward the core; the tree delivers to A.
  domain->host("A").JoinGroup(kGroup);
  sim.RunUntil(10 * kSecond);
  auto& sender = domain->AddHost(topo.subnet("S13"), "sender");
  sender.SendToGroup(kGroup, kPayload);
  sim.RunUntil(20 * kSecond);
  EXPECT_EQ(domain->host("A").ReceivedCount(kGroup), 1u);
  EXPECT_GE(domain->router("R10").stats().data_encapsulated, 1u);
}

TEST_P(ForwardingFixture, SecondPacketFollowsSamePath) {
  JoinAll();
  domain->host("A").SendToGroup(kGroup, kPayload);
  domain->host("A").SendToGroup(kGroup, kPayload);
  sim.RunUntil(40 * kSecond);
  EXPECT_EQ(domain->host("J").ReceivedCount(kGroup), 2u);
}

TEST_P(ForwardingFixture, TtlLimitsPropagation) {
  JoinAll();
  // G -> R8 -> R4 -> R3 -> R1 -> S1(A) needs 4 router hops; TTL 2 cannot
  // get there but reaches K (S14, one router away).
  domain->host("G").SendToGroup(kGroup, kPayload, /*ttl=*/2);
  sim.RunUntil(40 * kSecond);
  EXPECT_EQ(domain->host("A").ReceivedCount(kGroup), 0u);
  EXPECT_EQ(domain->host("K").ReceivedCount(kGroup), 1u);
}

TEST_P(ForwardingFixture, Section5WalkthroughDeliveryCounts) {
  JoinAll();
  for (auto& id : domain->router_ids()) {
    domain->router(id).mutable_stats() = RouterStats{};
  }
  domain->host("G").SendToGroup(kGroup, kPayload);
  sim.RunUntil(40 * kSecond);

  // "R4 ... IP multicasts the data packet onto S5, S6 and S7".
  EXPECT_EQ(domain->router("R4").stats().data_delivered_lan, 3u);
  // "R7 IP multicasts onto S9."
  EXPECT_EQ(domain->router("R7").stats().data_delivered_lan, 1u);
  // "R10 ... IP multicasts to both S13 and S15."
  EXPECT_EQ(domain->router("R10").stats().data_delivered_lan, 2u);
  // "R9 need not IP multicast onto S12."
  EXPECT_EQ(domain->router("R9").stats().data_delivered_lan, 0u);
  // "R8 ... also IP multicasts the packet to S14 (S10 received the
  // IP-style packet already from the originator)."
  EXPECT_EQ(domain->router("R8").stats().data_delivered_lan, 1u);
}

TEST(CbtModeFanout, MultipleChildrenBehindOneVifUseOneCbtMulticast) {
  // Three routers share a LAN; two of them serve member LANs and join via
  // the third toward an upstream core. The parent must emit ONE CBT
  // multicast on the shared LAN instead of two unicasts (section 5).
  Simulator sim{1};
  netsim::Topology topo;
  Ipv4Address group(239, 5, 5, 5);

  const NodeId up = sim.AddNode("up", true);
  const NodeId core = sim.AddNode("core", true);
  const NodeId ra = sim.AddNode("ra", true);
  const NodeId rb = sim.AddNode("rb", true);
  topo.routers = {up, core, ra, rb};
  topo.nodes = {{"up", up}, {"core", core}, {"ra", ra}, {"rb", rb}};
  sim.Connect(up, core);
  const SubnetId shared = sim.AddSubnet(
      "shared", SubnetAddress::FromPrefix(Ipv4Address(10, 20, 0, 0), 16));
  sim.Attach(up, shared);
  sim.Attach(ra, shared);
  sim.Attach(rb, shared);
  const SubnetId lan_a = sim.AddSubnet(
      "lanA", SubnetAddress::FromPrefix(Ipv4Address(10, 21, 0, 0), 16));
  const SubnetId lan_b = sim.AddSubnet(
      "lanB", SubnetAddress::FromPrefix(Ipv4Address(10, 22, 0, 0), 16));
  const SubnetId lan_c = sim.AddSubnet(
      "lanC", SubnetAddress::FromPrefix(Ipv4Address(10, 23, 0, 0), 16));
  sim.Attach(ra, lan_a);
  sim.Attach(rb, lan_b);
  sim.Attach(core, lan_c);
  topo.subnets = {{"shared", shared}, {"lanA", lan_a}, {"lanB", lan_b},
                  {"lanC", lan_c}};

  CbtConfig config;
  config.native_mode = false;
  CbtDomain domain(sim, topo, config);
  domain.RegisterGroup(group, {core});
  domain.Start();
  sim.RunUntil(kSecond);

  auto& ha = domain.AddHost(lan_a, "ha");
  auto& hb = domain.AddHost(lan_b, "hb");
  auto& hc = domain.AddHost(lan_c, "hc");
  ha.JoinGroup(group);
  hb.JoinGroup(group);
  sim.RunUntil(10 * kSecond);

  // ra and rb are both children of `up` on the shared LAN.
  const FibEntry* up_entry = domain.router(up).fib().Find(group);
  ASSERT_NE(up_entry, nullptr);
  EXPECT_EQ(up_entry->children.size(), 2u);
  EXPECT_EQ(up_entry->ChildVifs().size(), 1u);

  sim.ResetCounters();
  hc.SendToGroup(group, kPayload);
  sim.RunUntil(20 * kSecond);

  EXPECT_EQ(ha.ReceivedCount(group), 1u);
  EXPECT_EQ(hb.ReceivedCount(group), 1u);
  // Exactly one frame crossed the shared LAN for this packet.
  EXPECT_EQ(sim.subnet(shared).counters.frames_sent, 1u);
}

TEST(DataLoopSuppression, OnTreePacketViaOffTreeInterfaceDropped) {
  // Section 7: a CBT-encapsulated packet with on-tree = 0xff arriving
  // over an off-tree interface is discarded immediately.
  Simulator sim{1};
  netsim::Topology topo = netsim::MakeLine(sim, 3);
  Ipv4Address group(239, 6, 6, 6);
  CbtConfig config;
  config.native_mode = false;
  CbtDomain domain(sim, topo, config);
  domain.RegisterGroup(group, {topo.routers[2]});
  domain.Start();
  sim.RunUntil(kSecond);

  auto& member = domain.AddHost(topo.router_lans[0], "m");
  member.JoinGroup(group);
  sim.RunUntil(10 * kSecond);
  auto& r1 = domain.router(topo.routers[1]);
  ASSERT_TRUE(r1.IsOnTree(group));

  // Hand-craft an on-tree packet and inject it from r1's stub LAN — an
  // interface that is NOT a tree interface for the group.
  const auto inner = packet::BuildAppDatagram(
      sim.subnet(topo.router_lans[1]).address.HostAddress(77), group,
      kPayload);
  packet::CbtDataHeader hdr;
  hdr.group = group;
  hdr.core = sim.PrimaryAddress(topo.routers[2]);
  hdr.origin = sim.subnet(topo.router_lans[1]).address.HostAddress(77);
  hdr.ip_ttl = 16;
  hdr.on_tree = true;  // claims to be on-tree already

  const NodeId injector = sim.AddNode("injector", false);
  sim.Attach(injector, topo.router_lans[1]);
  VifIndex r1_lan_vif = kInvalidVif;
  for (const auto& iface : sim.node(topo.routers[1]).interfaces) {
    if (iface.subnet == topo.router_lans[1]) r1_lan_vif = iface.vif;
  }
  const Ipv4Address r1_lan_addr =
      sim.interface(topo.routers[1], r1_lan_vif).address;

  const auto dropped_before = r1.stats().data_dropped_off_tree;
  sim.SendDatagram(injector, 0,  r1_lan_addr,
                   packet::BuildCbtModeDatagram(hdr.origin, r1_lan_addr, hdr,
                                                inner));
  sim.RunUntil(sim.Now() + 5 * kSecond);
  EXPECT_EQ(r1.stats().data_dropped_off_tree, dropped_before + 1);
  EXPECT_EQ(member.ReceivedCount(group), 0u);
}

}  // namespace
}  // namespace cbt::core
