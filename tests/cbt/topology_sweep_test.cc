// Cross-topology delivery sweep: on every generator, all members join,
// every member sends once, and each member must receive exactly one copy
// from every other member — the end-to-end invariant that subsumes most
// forwarding bugs, exercised across structurally different graphs and
// both forwarding modes.
#include <gtest/gtest.h>

#include "cbt/domain.h"
#include "netsim/topologies.h"

namespace cbt::core {
namespace {

using netsim::Simulator;
using netsim::Topology;

constexpr Ipv4Address kGroup(239, 123, 0, 1);

enum class Topo { kLine, kStar, kGrid, kTree, kWaxman, kTransitStub };

struct SweepParam {
  Topo topo;
  bool native;
};

class TopologySweep : public ::testing::TestWithParam<SweepParam> {
 protected:
  Topology Make(Simulator& sim) {
    switch (GetParam().topo) {
      case Topo::kLine:
        return netsim::MakeLine(sim, 6);
      case Topo::kStar:
        return netsim::MakeStar(sim, 6);
      case Topo::kGrid:
        return netsim::MakeGrid(sim, 4, 4);
      case Topo::kTree:
        return netsim::MakeBinaryTree(sim, 4);
      case Topo::kWaxman: {
        netsim::WaxmanParams params;
        params.n = 30;
        params.seed = 5;
        return netsim::MakeWaxman(sim, params);
      }
      case Topo::kTransitStub: {
        netsim::TransitStubParams params;
        params.seed = 5;
        return netsim::MakeTransitStub(sim, params);
      }
    }
    return netsim::MakeLine(sim, 2);
  }
};

constexpr SweepParam kSweepParams[] = {
    {Topo::kLine, true},        {Topo::kLine, false},
    {Topo::kStar, true},        {Topo::kStar, false},
    {Topo::kGrid, true},        {Topo::kGrid, false},
    {Topo::kTree, true},        {Topo::kTree, false},
    {Topo::kWaxman, true},      {Topo::kWaxman, false},
    {Topo::kTransitStub, true}, {Topo::kTransitStub, false},
};

std::string SweepName(const ::testing::TestParamInfo<SweepParam>& info) {
  static constexpr const char* kNames[] = {"Line", "Star",   "Grid",
                                           "Tree", "Waxman", "TransitStub"};
  return std::string(kNames[(int)info.param.topo]) +
         (info.param.native ? "Native" : "CbtMode");
}

INSTANTIATE_TEST_SUITE_P(AllTopologies, TopologySweep,
                         ::testing::ValuesIn(kSweepParams), SweepName);

TEST_P(TopologySweep, AllToAllExactlyOnceDelivery) {
  Simulator sim(1);
  Topology topo = Make(sim);
  CbtConfig config;
  config.native_mode = GetParam().native;
  CbtDomain domain(sim, topo, config);

  // Core at the first router; members spread deterministically over the
  // router LANs (every 3rd router).
  domain.RegisterGroup(kGroup, {topo.routers[topo.routers.size() / 2]});
  domain.Start();
  sim.RunUntil(kSecond);

  std::vector<HostAgent*> members;
  for (std::size_t i = 0; i < topo.router_lans.size(); i += 3) {
    members.push_back(
        &domain.AddHost(topo.router_lans[i], "m" + std::to_string(i)));
    members.back()->JoinGroup(kGroup);
    sim.RunUntil(sim.Now() + 500 * kMillisecond);
  }
  ASSERT_GE(members.size(), 2u);
  sim.RunUntil(sim.Now() + 30 * kSecond);

  for (HostAgent* m : members) {
    m->SendToGroup(kGroup, std::vector<std::uint8_t>{0xEE});
    sim.RunUntil(sim.Now() + 2 * kSecond);
  }
  sim.RunUntil(sim.Now() + 10 * kSecond);

  for (std::size_t i = 0; i < members.size(); ++i) {
    EXPECT_EQ(members[i]->ReceivedCount(kGroup), members.size() - 1)
        << "member " << i << " of " << members.size();
  }
}

}  // namespace
}  // namespace cbt::core
