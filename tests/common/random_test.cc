#include "common/random.h"

#include <gtest/gtest.h>

#include <set>

namespace cbt {
namespace {

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(12345);
  Rng b(12345);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextU64() == b.NextU64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, NextBelowInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBelow(17), 17u);
  }
}

TEST(Rng, NextBelowCoversAllValues) {
  Rng rng(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.NextBelow(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, NextInRangeInclusive) {
  Rng rng(9);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = rng.NextInRange(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  // Mean of U[0,1) should be near 0.5.
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, BernoulliRespectsProbability) {
  Rng rng(13);
  int heads = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.NextBool(0.25)) ++heads;
  }
  EXPECT_NEAR(heads / 10000.0, 0.25, 0.02);
}

TEST(Rng, SampleWithoutReplacementIsDistinct) {
  Rng rng(17);
  const auto sample = rng.SampleWithoutReplacement(50, 20);
  EXPECT_EQ(sample.size(), 20u);
  const std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 20u);
  for (const std::size_t v : sample) EXPECT_LT(v, 50u);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(19);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto shuffled = v;
  rng.Shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

}  // namespace
}  // namespace cbt
