#include "common/small_vec.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <utility>

namespace cbt {
namespace {

TEST(SmallVec, StaysInlineUpToCapacity) {
  SmallVec<int, 4> v;
  EXPECT_TRUE(v.empty());
  for (int i = 0; i < 4; ++i) v.push_back(i);
  EXPECT_EQ(v.size(), 4u);
  EXPECT_TRUE(v.inlined());
  for (int i = 0; i < 4; ++i) EXPECT_EQ(v[(std::size_t)i], i);
}

TEST(SmallVec, SpillsToHeapAndKeepsContents) {
  SmallVec<int, 2> v;
  for (int i = 0; i < 20; ++i) v.push_back(i);
  EXPECT_EQ(v.size(), 20u);
  EXPECT_FALSE(v.inlined());
  for (int i = 0; i < 20; ++i) EXPECT_EQ(v[(std::size_t)i], i);
  EXPECT_EQ(v.front(), 0);
  EXPECT_EQ(v.back(), 19);
}

// Regression: push_back(v.front()) at exactly capacity must not read the
// element through a dangling pointer after the growth reallocation.
TEST(SmallVec, PushBackOfOwnElementSurvivesGrowth) {
  SmallVec<int, 2> v;
  v.push_back(41);
  v.push_back(42);
  ASSERT_TRUE(v.inlined());
  v.push_back(v.front());  // grows right here
  EXPECT_EQ(v.size(), 3u);
  EXPECT_EQ(v.back(), 41);
}

TEST(SmallVec, EraseSingleAndRange) {
  SmallVec<int, 4> v;
  for (int i = 0; i < 6; ++i) v.push_back(i);
  v.erase(v.begin() + 1);  // 0 2 3 4 5
  EXPECT_EQ(v.size(), 5u);
  EXPECT_EQ(v[1], 2);
  v.erase(v.begin() + 2, v.begin() + 4);  // 0 2 5
  EXPECT_EQ(v.size(), 3u);
  EXPECT_EQ(v[2], 5);
  v.erase(v.begin(), v.begin());  // empty range: no-op
  EXPECT_EQ(v.size(), 3u);
}

TEST(SmallVec, RemoveIfIdiom) {
  SmallVec<int, 4> v;
  for (int i = 0; i < 8; ++i) v.push_back(i);
  v.erase(std::remove_if(v.begin(), v.end(), [](int x) { return x % 2 == 0; }),
          v.end());
  EXPECT_EQ(v.size(), 4u);
  for (std::size_t i = 0; i < v.size(); ++i) {
    EXPECT_EQ(v[i], (int)(2 * i + 1));
  }
}

TEST(SmallVec, MoveStealsHeapAndCopiesInline) {
  SmallVec<int, 2> small;
  small.push_back(7);
  SmallVec<int, 2> small_moved(std::move(small));
  ASSERT_EQ(small_moved.size(), 1u);
  EXPECT_EQ(small_moved[0], 7);

  SmallVec<int, 2> big;
  for (int i = 0; i < 10; ++i) big.push_back(i);
  const int* data = big.data();
  SmallVec<int, 2> big_moved(std::move(big));
  EXPECT_EQ(big_moved.data(), data);  // heap buffer stolen, not copied
  EXPECT_EQ(big_moved.size(), 10u);

  SmallVec<int, 2> assigned;
  assigned = std::move(big_moved);
  EXPECT_EQ(assigned.size(), 10u);
  EXPECT_EQ(assigned[9], 9);
}

// Regression: move-assigning an empty inline source into a heap-backed
// destination must reset capacity to the inline N. Leaving the old heap
// capacity behind made later push_backs skip Grow and write past the
// inline buffer (heap corruption in Fib's sorted-vector shifts).
TEST(SmallVec, MoveAssignEmptyInlineIntoHeapBackedResetsCapacity) {
  SmallVec<int, 2> dst;
  for (int i = 0; i < 10; ++i) dst.push_back(i);
  ASSERT_FALSE(dst.inlined());

  dst = SmallVec<int, 2>{};
  EXPECT_TRUE(dst.empty());
  EXPECT_TRUE(dst.inlined());
  EXPECT_EQ(dst.capacity(), 2u);

  // Filling past N again must go through Grow, not scribble off the end
  // of the inline buffer.
  for (int i = 0; i < 10; ++i) dst.push_back(i);
  EXPECT_EQ(dst.size(), 10u);
  EXPECT_FALSE(dst.inlined());
  for (int i = 0; i < 10; ++i) EXPECT_EQ(dst[(std::size_t)i], i);
}

TEST(SmallVec, EqualityAndClear) {
  SmallVec<std::uint16_t, 3> a;
  SmallVec<std::uint16_t, 3> b;
  EXPECT_TRUE(a == b);
  a.push_back(1);
  EXPECT_FALSE(a == b);
  b.push_back(1);
  EXPECT_TRUE(a == b);
  a.clear();
  EXPECT_TRUE(a.empty());
  EXPECT_GE(a.capacity(), 3u);
}

}  // namespace
}  // namespace cbt
