#include "common/buffer.h"

#include <gtest/gtest.h>

namespace cbt {
namespace {

TEST(BufferWriter, WritesBigEndian) {
  BufferWriter w;
  w.WriteU8(0x01);
  w.WriteU16(0x0203);
  w.WriteU32(0x04050607);
  const auto view = w.View();
  ASSERT_EQ(view.size(), 7u);
  const std::uint8_t expected[] = {1, 2, 3, 4, 5, 6, 7};
  for (std::size_t i = 0; i < 7; ++i) EXPECT_EQ(view[i], expected[i]) << i;
}

TEST(BufferWriter, WritesAddress) {
  BufferWriter w;
  w.WriteAddress(Ipv4Address(192, 168, 1, 42));
  const auto view = w.View();
  ASSERT_EQ(view.size(), 4u);
  EXPECT_EQ(view[0], 192);
  EXPECT_EQ(view[1], 168);
  EXPECT_EQ(view[2], 1);
  EXPECT_EQ(view[3], 42);
}

TEST(BufferWriter, PatchU16OverwritesInPlace) {
  BufferWriter w;
  w.WriteU32(0);
  w.PatchU16(1, 0xBEEF);
  const auto view = w.View();
  EXPECT_EQ(view[0], 0x00);
  EXPECT_EQ(view[1], 0xBE);
  EXPECT_EQ(view[2], 0xEF);
  EXPECT_EQ(view[3], 0x00);
}

TEST(BufferReader, RoundTripsAllWidths) {
  BufferWriter w;
  w.WriteU8(0xAB);
  w.WriteU16(0xCDEF);
  w.WriteU32(0x01234567);
  w.WriteAddress(Ipv4Address(10, 0, 0, 1));

  BufferReader r(w.View());
  EXPECT_EQ(r.ReadU8(), 0xAB);
  EXPECT_EQ(r.ReadU16(), 0xCDEF);
  EXPECT_EQ(r.ReadU32(), 0x01234567u);
  EXPECT_EQ(r.ReadAddress(), Ipv4Address(10, 0, 0, 1));
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(BufferReader, UnderrunSetsErrorAndReturnsZero) {
  const std::uint8_t bytes[] = {0x12};
  BufferReader r(bytes);
  EXPECT_EQ(r.ReadU32(), 0u);
  EXPECT_FALSE(r.ok());
  // Subsequent reads stay zero and safe.
  EXPECT_EQ(r.ReadU8(), 0u);
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(BufferReader, ReadBytesReturnsViewAndAdvances) {
  BufferWriter w;
  w.WriteU32(0xA1B2C3D4);
  BufferReader r(w.View());
  const auto span = r.ReadBytes(2);
  ASSERT_EQ(span.size(), 2u);
  EXPECT_EQ(span[0], 0xA1);
  EXPECT_EQ(r.ReadU16(), 0xC3D4);
}

TEST(BufferReader, SkipPastEndFails) {
  const std::uint8_t bytes[] = {1, 2, 3};
  BufferReader r(bytes);
  r.Skip(4);
  EXPECT_FALSE(r.ok());
}

}  // namespace
}  // namespace cbt
