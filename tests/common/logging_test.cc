#include "common/logging.h"

#include <gtest/gtest.h>

#include <vector>

namespace cbt {
namespace {

class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Logger::SetSink([this](LogLevel level, const std::string& msg) {
      captured.emplace_back(level, msg);
    });
  }
  void TearDown() override {
    Logger::SetSink(nullptr);
    Logger::SetLevel(LogLevel::kOff);
  }
  std::vector<std::pair<LogLevel, std::string>> captured;
};

TEST_F(LoggingTest, LevelFiltering) {
  Logger::SetLevel(LogLevel::kWarning);
  CBT_DEBUG("hidden %d", 1);
  CBT_INFO("hidden too");
  CBT_WARN("visible %s", "warning");
  CBT_ERROR("visible error");
  ASSERT_EQ(captured.size(), 2u);
  EXPECT_EQ(captured[0].second, "visible warning");
  EXPECT_EQ(captured[1].first, LogLevel::kError);
}

TEST_F(LoggingTest, OffSuppressesEverything) {
  Logger::SetLevel(LogLevel::kOff);
  CBT_ERROR("nope");
  EXPECT_TRUE(captured.empty());
}

TEST_F(LoggingTest, FormatHandlesArguments) {
  Logger::SetLevel(LogLevel::kTrace);
  CBT_TRACE("x=%d s=%s f=%.1f", 42, "str", 2.5);
  ASSERT_EQ(captured.size(), 1u);
  EXPECT_EQ(captured[0].second, "x=42 s=str f=2.5");
}

TEST_F(LoggingTest, ArgumentsNotEvaluatedWhenDisabled) {
  Logger::SetLevel(LogLevel::kError);
  int evaluations = 0;
  const auto expensive = [&] {
    ++evaluations;
    return 1;
  };
  CBT_DEBUG("val %d", expensive());
  EXPECT_EQ(evaluations, 0);
  CBT_ERROR("val %d", expensive());
  EXPECT_EQ(evaluations, 1);
}

}  // namespace
}  // namespace cbt
