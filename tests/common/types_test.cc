#include "common/types.h"

#include <gtest/gtest.h>

namespace cbt {
namespace {

TEST(Ipv4Address, ParseAndPrintRoundTrip) {
  const auto addr = Ipv4Address::Parse("128.16.8.117");
  ASSERT_TRUE(addr.has_value());
  EXPECT_EQ(addr->ToString(), "128.16.8.117");
  EXPECT_EQ(addr->bits(), (128u << 24) | (16u << 16) | (8u << 8) | 117u);
}

TEST(Ipv4Address, ParseRejectsMalformed) {
  EXPECT_FALSE(Ipv4Address::Parse("").has_value());
  EXPECT_FALSE(Ipv4Address::Parse("1.2.3").has_value());
  EXPECT_FALSE(Ipv4Address::Parse("1.2.3.4.5").has_value());
  EXPECT_FALSE(Ipv4Address::Parse("256.0.0.1").has_value());
  EXPECT_FALSE(Ipv4Address::Parse("a.b.c.d").has_value());
  EXPECT_FALSE(Ipv4Address::Parse("1.2.3.4x").has_value());
}

TEST(Ipv4Address, MulticastClassD) {
  EXPECT_TRUE(Ipv4Address(224, 0, 0, 1).IsMulticast());
  EXPECT_TRUE(Ipv4Address(239, 255, 255, 255).IsMulticast());
  EXPECT_FALSE(Ipv4Address(223, 255, 255, 255).IsMulticast());
  EXPECT_FALSE(Ipv4Address(240, 0, 0, 0).IsMulticast());
}

TEST(Ipv4Address, LinkLocalMulticast) {
  EXPECT_TRUE(kAllSystemsGroup.IsLinkLocalMulticast());
  EXPECT_TRUE(kAllRoutersGroup.IsLinkLocalMulticast());
  EXPECT_TRUE(kAllCbtRoutersGroup.IsLinkLocalMulticast());
  EXPECT_FALSE(Ipv4Address(224, 0, 1, 1).IsLinkLocalMulticast());
  EXPECT_FALSE(Ipv4Address(239, 1, 2, 3).IsLinkLocalMulticast());
}

TEST(Ipv4Address, OrderingIsNumeric) {
  // The spec's elections pick the lowest-addressed router; ordering must
  // be well-defined.
  EXPECT_LT(Ipv4Address(10, 4, 0, 1), Ipv4Address(10, 4, 0, 2));
  EXPECT_LT(Ipv4Address(9, 255, 255, 255), Ipv4Address(10, 0, 0, 0));
}

TEST(SubnetAddress, ContainsMatchesPrefix) {
  const auto subnet =
      SubnetAddress::FromPrefix(Ipv4Address(10, 4, 0, 0), 16);
  EXPECT_TRUE(subnet.Contains(Ipv4Address(10, 4, 0, 1)));
  EXPECT_TRUE(subnet.Contains(Ipv4Address(10, 4, 255, 254)));
  EXPECT_FALSE(subnet.Contains(Ipv4Address(10, 5, 0, 1)));
}

TEST(SubnetAddress, NetworkIsMasked) {
  const SubnetAddress subnet(Ipv4Address(10, 4, 9, 7), 0xFFFF0000u);
  EXPECT_EQ(subnet.network(), Ipv4Address(10, 4, 0, 0));
}

TEST(SubnetAddress, HostAddressComposes) {
  const auto subnet = SubnetAddress::FromPrefix(Ipv4Address(10, 4, 0, 0), 16);
  EXPECT_EQ(subnet.HostAddress(3), Ipv4Address(10, 4, 0, 3));
}

TEST(SubnetAddress, ToStringShowsPrefixLength) {
  EXPECT_EQ(SubnetAddress::FromPrefix(Ipv4Address(10, 4, 0, 0), 16).ToString(),
            "10.4.0.0/16");
  EXPECT_EQ(SubnetAddress::FromPrefix(Ipv4Address(10, 255, 0, 4), 30).ToString(),
            "10.255.0.4/30");
}

TEST(StrongId, DefaultIsInvalid) {
  NodeId id;
  EXPECT_FALSE(id.IsValid());
  EXPECT_TRUE(NodeId(0).IsValid());
}

TEST(FormatSimTime, RendersSecondsAndMicros) {
  EXPECT_EQ(FormatSimTime(0), "0.000000s");
  EXPECT_EQ(FormatSimTime(1500000), "1.500000s");
  EXPECT_EQ(FormatSimTime(90 * kSecond + 7), "90.000007s");
}

}  // namespace
}  // namespace cbt
