#include "common/checksum.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/buffer.h"

namespace cbt {
namespace {

TEST(InternetChecksum, Rfc1071WorkedExample) {
  // The classic example from RFC 1071 section 3.
  const std::uint8_t data[] = {0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7};
  // Sum = 0x0001 + 0xf203 + 0xf4f5 + 0xf6f7 = 0x2ddf0 -> 0xddf2; ~ = 0x220d.
  EXPECT_EQ(InternetChecksum(data), 0x220D);
}

TEST(InternetChecksum, OddLengthPadsWithZero) {
  const std::uint8_t data[] = {0x01, 0x02, 0x03};
  // 0x0102 + 0x0300 = 0x0402 -> ~ = 0xFBFD.
  EXPECT_EQ(InternetChecksum(data), 0xFBFD);
}

TEST(InternetChecksum, AllZeroGivesAllOnes) {
  const std::vector<std::uint8_t> zeros(20, 0);
  EXPECT_EQ(InternetChecksum(zeros), 0xFFFF);
}

TEST(InternetChecksum, EmbeddedChecksumVerifies) {
  // Build a buffer, embed its checksum, and check the receive-side rule.
  BufferWriter w;
  w.WriteU32(0xDEADBEEF);
  w.WriteU16(0);  // checksum slot
  w.WriteU32(0x12345678);
  const std::uint16_t sum = InternetChecksum(w.View());
  w.PatchU16(4, sum);
  EXPECT_TRUE(VerifyInternetChecksum(w.View()));
}

TEST(InternetChecksum, CorruptionDetected) {
  BufferWriter w;
  w.WriteU32(0xDEADBEEF);
  w.WriteU16(0);
  w.WriteU32(0x12345678);
  w.PatchU16(4, InternetChecksum(w.View()));
  auto bytes = std::move(w).Take();
  bytes[0] ^= 0x40;
  EXPECT_FALSE(VerifyInternetChecksum(bytes));
}

TEST(InternetChecksum, SingleBitFlipsAlwaysDetected) {
  BufferWriter w;
  for (int i = 0; i < 8; ++i) w.WriteU32(0x01020304u * (unsigned)(i + 1));
  w.WriteU16(0);
  w.PatchU16(32, InternetChecksum(w.View()));
  const auto bytes = std::move(w).Take();
  for (std::size_t byte = 0; byte < bytes.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      auto corrupted = bytes;
      corrupted[byte] ^= static_cast<std::uint8_t>(1u << bit);
      EXPECT_FALSE(VerifyInternetChecksum(corrupted))
          << "byte " << byte << " bit " << bit;
    }
  }
}

}  // namespace
}  // namespace cbt
