// Property tests for the PDES topology partitioner (exec/pdes/partition).
//
// The partitioner is a pure function of the topology and the requested
// region count, so every property below is checked over a seeded sweep
// of generated topologies x region counts. The properties are exactly
// the ones the conservative runtime's correctness rests on:
//   * regions cover every node exactly once (disjoint, exhaustive);
//   * every region is non-empty and region ids are compact [0, regions);
//   * every cut subnet's delay >= the derived lookahead, and the
//     lookahead equals the minimum cut delay (no slack left behind);
//   * zero-delay subnets are never cut (their endpoints are contracted
//     into one region), so lookahead > 0 always holds;
//   * degenerate inputs (one region, more regions than routers,
//     disconnected graphs, empty simulators) produce valid partitions.
#include <algorithm>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "common/types.h"
#include "exec/pdes/partition.h"
#include "netsim/simulator.h"
#include "netsim/topologies.h"

namespace {

using namespace cbt;  // NOLINT
using exec::pdes::ExtendPartition;
using exec::pdes::MakePartition;
using exec::pdes::Partition;

/// Checks every structural invariant a Partition promises. Returns the
/// partition so tests can assert topology-specific extras on top.
Partition CheckPartition(const netsim::Simulator& sim, int requested) {
  const Partition part = MakePartition(sim, requested);

  // Region count: >= 1, <= max(requested, 1), and never more than the
  // node count (each region must be non-empty).
  EXPECT_GE(part.regions, 1);
  EXPECT_LE(part.regions, std::max(requested, 1));
  if (sim.node_count() > 0) {
    EXPECT_LE(static_cast<std::size_t>(part.regions), sim.node_count());
  }

  // Exact cover: every node has exactly one region id in range.
  EXPECT_EQ(part.region_of_node.size(), sim.node_count());
  std::vector<int> population(static_cast<std::size_t>(part.regions), 0);
  for (const int r : part.region_of_node) {
    EXPECT_GE(r, 0);
    EXPECT_LT(r, part.regions);
    if (r >= 0 && r < part.regions) ++population[static_cast<std::size_t>(r)];
  }
  // Compact ids: every region non-empty (when there are nodes at all).
  if (sim.node_count() > 0) {
    for (int r = 0; r < part.regions; ++r) {
      EXPECT_GT(population[static_cast<std::size_t>(r)], 0)
          << "empty region " << r;
    }
  }

  // Cut detection matches the attachment spans, cut delays bound the
  // lookahead, and the lookahead is exactly the minimum cut delay.
  EXPECT_EQ(part.subnet_cut.size(), sim.subnet_count());
  EXPECT_EQ(part.owner_of_subnet.size(), sim.subnet_count());
  SimDuration min_cut = Partition::kInfiniteLookahead;
  for (std::size_t s = 0; s < sim.subnet_count(); ++s) {
    const auto& subnet = sim.subnet(SubnetId(static_cast<std::uint32_t>(s)));
    bool spans = false;
    for (std::size_t i = 1; i < subnet.attachments.size(); ++i) {
      const auto a = part.region_of_node[subnet.attachments[0].first.value()];
      const auto b = part.region_of_node[subnet.attachments[i].first.value()];
      if (a != b) spans = true;
    }
    EXPECT_EQ(part.subnet_cut[s], spans) << "subnet " << s;
    if (spans) {
      EXPECT_GT(subnet.delay, 0) << "zero-delay subnet " << s << " was cut";
      EXPECT_GE(subnet.delay, part.lookahead) << "subnet " << s;
      min_cut = std::min(min_cut, subnet.delay);
    }
    if (!subnet.attachments.empty()) {
      EXPECT_EQ(part.owner_of_subnet[s],
                part.region_of_node[subnet.attachments[0].first.value()]);
    }
  }
  EXPECT_EQ(part.lookahead, min_cut);
  EXPECT_GT(part.lookahead, 0);
  return part;
}

TEST(PdesPartitionTest, SingleRegionHasNoCutsAndInfiniteLookahead) {
  netsim::Simulator sim(1);
  netsim::MakeGrid(sim, 4, 4);
  const Partition part = CheckPartition(sim, 1);
  EXPECT_EQ(part.regions, 1);
  EXPECT_EQ(part.lookahead, Partition::kInfiniteLookahead);
  EXPECT_TRUE(std::none_of(part.subnet_cut.begin(), part.subnet_cut.end(),
                           [](bool cut) { return cut; }));
}

TEST(PdesPartitionTest, RequestedBelowOneClampsToOne) {
  netsim::Simulator sim(1);
  netsim::MakeLine(sim, 5);
  EXPECT_EQ(CheckPartition(sim, 0).regions, 1);
  EXPECT_EQ(CheckPartition(sim, -3).regions, 1);
}

TEST(PdesPartitionTest, MoreRegionsThanNodesCompactsToNodeCount) {
  netsim::Simulator sim(1);
  const NodeId a = sim.AddNode("a", true);
  const NodeId b = sim.AddNode("b", true);
  sim.Connect(a, b, 2 * kMillisecond);
  const Partition part = CheckPartition(sim, 64);
  EXPECT_LE(part.regions, 2);
}

TEST(PdesPartitionTest, EmptySimulatorYieldsOneEmptyRegion) {
  netsim::Simulator sim(1);
  const Partition part = MakePartition(sim, 4);
  EXPECT_EQ(part.regions, 1);
  EXPECT_TRUE(part.region_of_node.empty());
  EXPECT_EQ(part.lookahead, Partition::kInfiniteLookahead);
}

TEST(PdesPartitionTest, ZeroDelayPairsShareARegion) {
  netsim::Simulator sim(1);
  // a-b joined by a zero-delay segment, b-c and c-d by positive delays:
  // a and b must be fused whatever the region count.
  const NodeId a = sim.AddNode("a", true);
  const NodeId b = sim.AddNode("b", true);
  const NodeId c = sim.AddNode("c", true);
  const NodeId d = sim.AddNode("d", true);
  sim.Connect(a, b, 0);
  sim.Connect(b, c, 3 * kMillisecond);
  sim.Connect(c, d, 5 * kMillisecond);
  for (const int requested : {1, 2, 3, 4}) {
    const Partition part = CheckPartition(sim, requested);
    EXPECT_EQ(part.region_of_node[a.value()], part.region_of_node[b.value()])
        << "requested=" << requested;
  }
}

TEST(PdesPartitionTest, DisconnectedComponentsAreAllAssigned) {
  netsim::Simulator sim(1);
  // Two disjoint 3-chains plus an isolated node: still an exact cover.
  std::vector<NodeId> nodes;
  for (int i = 0; i < 7; ++i) {
    nodes.push_back(sim.AddNode("n" + std::to_string(i), true));
  }
  sim.Connect(nodes[0], nodes[1], kMillisecond);
  sim.Connect(nodes[1], nodes[2], kMillisecond);
  sim.Connect(nodes[3], nodes[4], 2 * kMillisecond);
  sim.Connect(nodes[4], nodes[5], 2 * kMillisecond);
  for (const int requested : {1, 2, 3, 7}) {
    CheckPartition(sim, requested);
  }
}

TEST(PdesPartitionTest, LookaheadIsMinimumCutDelayOnALine) {
  netsim::Simulator sim(1);
  // Line with increasing delays: whichever links end up cut, the
  // lookahead must equal the smallest of them (verified structurally by
  // CheckPartition); with 2 regions grown by BFS from the low end, the
  // cut should land mid-line, so lookahead > the first link's delay is
  // not guaranteed — but it must be one of the actual link delays.
  std::vector<NodeId> nodes;
  for (int i = 0; i < 8; ++i) {
    nodes.push_back(sim.AddNode("n" + std::to_string(i), true));
  }
  std::vector<SimDuration> delays;
  for (int i = 0; i + 1 < 8; ++i) {
    const SimDuration d = (i + 1) * kMillisecond;
    delays.push_back(d);
    sim.Connect(nodes[static_cast<std::size_t>(i)],
                nodes[static_cast<std::size_t>(i + 1)], d);
  }
  const Partition part = CheckPartition(sim, 2);
  EXPECT_NE(part.lookahead, Partition::kInfiniteLookahead);
  EXPECT_TRUE(std::find(delays.begin(), delays.end(), part.lookahead) !=
              delays.end());
}

TEST(PdesPartitionTest, DeterministicAcrossCalls) {
  for (const std::uint64_t seed : {2ULL, 13ULL, 31ULL}) {
    netsim::Simulator sim_a(seed);
    netsim::Simulator sim_b(seed);
    netsim::WaxmanParams params;
    params.n = 24;
    params.seed = seed;
    netsim::MakeWaxman(sim_a, params);
    netsim::MakeWaxman(sim_b, params);
    const Partition pa = MakePartition(sim_a, 4);
    const Partition pb = MakePartition(sim_b, 4);
    EXPECT_EQ(pa.regions, pb.regions);
    EXPECT_EQ(pa.region_of_node, pb.region_of_node);
    EXPECT_EQ(pa.lookahead, pb.lookahead);
  }
}

TEST(PdesPartitionTest, SeededTopologySweepHoldsAllInvariants) {
  for (const std::uint64_t seed : {2ULL, 13ULL, 31ULL, 47ULL, 71ULL}) {
    for (const int requested : {1, 2, 3, 4, 8, 64}) {
      {
        netsim::Simulator sim(seed);
        netsim::WaxmanParams params;
        params.n = 20;
        params.seed = seed;
        netsim::MakeWaxman(sim, params);
        CheckPartition(sim, requested);
      }
      {
        netsim::Simulator sim(seed);
        netsim::MakeGrid(sim, 5, 4);
        CheckPartition(sim, requested);
      }
      {
        netsim::Simulator sim(seed);
        netsim::MakeFigure1(sim);
        CheckPartition(sim, requested);
      }
    }
  }
}

TEST(PdesPartitionTest, ExtendAssignsLateNodesToTheirLanOwner) {
  netsim::Simulator sim(1);
  netsim::Topology topo = netsim::MakeLine(sim, 6);
  Partition part = MakePartition(sim, 3);
  const std::vector<bool> cut_before = part.subnet_cut;
  const SimDuration lookahead_before = part.lookahead;

  // Attach a host to an existing stub LAN: it must inherit the LAN's
  // owner region so the subnet never becomes cut.
  const SubnetId lan = topo.router_lans[4];
  const NodeId host = netsim::AttachHost(sim, topo, lan, "late");
  // A node with no interfaces yet falls back to region 0.
  const NodeId floater = sim.AddNode("floater", false);
  ExtendPartition(part, sim);

  ASSERT_EQ(part.region_of_node.size(), sim.node_count());
  EXPECT_EQ(part.region_of_node[host.value()],
            part.owner_of_subnet[lan.value()]);
  EXPECT_EQ(part.region_of_node[floater.value()], 0);
  // The cut set and lookahead are untouched by late attachments.
  EXPECT_EQ(part.subnet_cut, cut_before);
  EXPECT_EQ(part.lookahead, lookahead_before);
}

}  // namespace
