// Tests for the parallel replica executor (src/exec/): pool scheduling,
// the ordered-reduction determinism contract, per-replica isolation of
// logging / tracing / metrics, and the debug-build ownership guard.
//
// The whole suite carries the `exec` ctest label so CI can run it under
// ThreadSanitizer (-DCBT_TSAN=ON, `ctest -L exec`) — the concurrency
// tests below deliberately force replica overlap so TSan sees the
// thread-local isolation machinery under real contention.
#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "cbt/domain.h"
#include "common/logging.h"
#include "common/thread_guard.h"
#include "exec/pool.h"
#include "exec/run_context.h"
#include "exec/sweep.h"
#include "netsim/event_queue.h"
#include "netsim/packet_arena.h"
#include "netsim/topologies.h"
#include "obs/trace.h"

namespace {

using namespace cbt;  // NOLINT

/// Redirects a std stream into a private buffer for the object's
/// lifetime (RunSweep flushes replica output to std::cout/std::cerr).
class StreamCapture {
 public:
  explicit StreamCapture(std::ostream& os)
      : os_(os), old_(os.rdbuf(buffer_.rdbuf())) {}
  ~StreamCapture() { os_.rdbuf(old_); }
  std::string str() const { return buffer_.str(); }

 private:
  std::ostream& os_;
  std::ostringstream buffer_;
  std::streambuf* old_;
};

/// Best-effort rendezvous: waits until `arrivals` reaches `expected` or
/// ~2s pass. Forces real overlap on a big-enough pool without risking a
/// hang if fewer workers participate.
void AwaitArrivals(std::atomic<int>& arrivals, int expected) {
  arrivals.fetch_add(1);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(2);
  while (arrivals.load() < expected &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::yield();
  }
}

// --- Pool ------------------------------------------------------------------

TEST(PoolTest, RunsEveryIndexExactlyOnce) {
  exec::Pool pool(4);
  EXPECT_EQ(pool.thread_count(), 4);
  constexpr std::size_t kTasks = 100;
  std::vector<std::atomic<int>> hits(kTasks);
  pool.Run(kTasks, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kTasks; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "task " << i;
  }
}

TEST(PoolTest, ReusableAcrossRuns) {
  exec::Pool pool(3);
  for (int round = 0; round < 5; ++round) {
    std::atomic<int> ran{0};
    pool.Run(17, [&](std::size_t) { ran.fetch_add(1); });
    EXPECT_EQ(ran.load(), 17);
  }
}

TEST(PoolTest, FirstExceptionRethrownAfterAllTasksFinish) {
  exec::Pool pool(4);
  std::atomic<int> completed{0};
  EXPECT_THROW(
      pool.Run(16,
               [&](std::size_t i) {
                 if (i == 3) throw std::runtime_error("replica 3 failed");
                 completed.fetch_add(1);
               }),
      std::runtime_error);
  // Every non-throwing task still ran to completion before the rethrow.
  EXPECT_EQ(completed.load(), 15);
}

TEST(PoolTest, SingleThreadPoolRunsInlineInIndexOrder) {
  exec::Pool pool(1);
  EXPECT_EQ(pool.thread_count(), 1);
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<std::size_t> order;
  pool.Run(8, [&](std::size_t i) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    order.push_back(i);
  });
  ASSERT_EQ(order.size(), 8u);
  for (std::size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
}

TEST(PoolTest, ZeroPicksHardwareConcurrency) {
  exec::Pool pool(0);
  EXPECT_EQ(pool.thread_count(), exec::Pool::HardwareConcurrency());
  EXPECT_GE(exec::Pool::HardwareConcurrency(), 1);
}

// --- RunSweep: ordering and determinism ------------------------------------

TEST(SweepTest, SeedsAssignedFromBaseAndExplicitList) {
  exec::Pool pool(2);
  exec::SweepOptions options;
  options.base_seed = 100;
  options.seeds = {7, 9};  // replicas 2..4 fall back to base_seed + i
  std::vector<std::uint64_t> seeds(5, 0);
  exec::RunSweep(
      pool, seeds.size(), options,
      [](exec::RunContext& ctx) { return ctx.seed; },
      [&](exec::RunContext& ctx, std::uint64_t seed) {
        seeds[ctx.index] = seed;
      });
  EXPECT_EQ(seeds, (std::vector<std::uint64_t>{7, 9, 102, 103, 104}));
}

TEST(SweepTest, ReducesInIndexOrderRegardlessOfCompletionOrder) {
  exec::Pool pool(4);
  exec::SweepOptions options;
  std::vector<std::size_t> reduced;
  exec::RunSweep(
      pool, 8, options,
      [](exec::RunContext& ctx) {
        // Later indices finish first, so completion order inverts
        // index order under parallel execution.
        std::this_thread::sleep_for(
            std::chrono::milliseconds(2 * (8 - ctx.index)));
        return ctx.index;
      },
      [&](exec::RunContext& ctx, std::size_t result) {
        EXPECT_EQ(result, ctx.index);
        reduced.push_back(ctx.index);
      });
  ASSERT_EQ(reduced.size(), 8u);
  for (std::size_t i = 0; i < reduced.size(); ++i) EXPECT_EQ(reduced[i], i);
}

TEST(SweepTest, ParallelStdoutByteIdenticalToSerial) {
  const auto run = [](int jobs) {
    exec::Pool pool(jobs);
    exec::SweepOptions options;
    options.base_seed = 42;
    StreamCapture out(std::cout);
    StreamCapture err(std::cerr);
    exec::RunSweep(
        pool, 6, options,
        [](exec::RunContext& ctx) -> int {
          std::this_thread::sleep_for(
              std::chrono::milliseconds(6 - ctx.index));
          ctx.out << "replica " << ctx.index << " seed " << ctx.seed << "\n";
          Logger::SetLevel(LogLevel::kError);  // private to this replica
          CBT_ERROR("replica %zu log line", ctx.index);
          return 0;
        },
        [](exec::RunContext&, int) {});
    return std::make_pair(out.str(), err.str());
  };
  const auto serial = run(1);
  const auto parallel = run(4);
  EXPECT_EQ(serial.first, parallel.first);
  EXPECT_EQ(serial.second, parallel.second);
  EXPECT_NE(serial.first.find("replica 0 seed 42"), std::string::npos);
  EXPECT_NE(serial.second.find("[ERROR] replica 5 log line"),
            std::string::npos);
}

TEST(SweepTest, TimingCoversEveryReplica) {
  exec::Pool pool(2);
  const exec::SweepTiming timing = exec::RunSweep(
      pool, 5, exec::SweepOptions{},
      [](exec::RunContext&) { return 0; },
      [](exec::RunContext&, int) {});
  EXPECT_EQ(timing.jobs, 2);
  ASSERT_EQ(timing.replica_seconds.size(), 5u);
  EXPECT_GE(timing.wall_seconds, 0.0);
  for (const double s : timing.replica_seconds) EXPECT_GE(s, 0.0);
}

// --- Per-replica logging isolation -----------------------------------------

TEST(SweepIsolationTest, ConcurrentRepliasSeeOnlyTheirOwnLogConfig) {
  constexpr int kReplicas = 4;
  exec::Pool pool(kReplicas);
  std::atomic<int> arrivals{0};
  std::vector<std::string> logs(kReplicas);
  const LogLevel main_level_before = Logger::level();
  {
    StreamCapture err(std::cerr);  // swallow the ordered flush
    exec::RunSweep(
        pool, kReplicas, exec::SweepOptions{},
        [&](exec::RunContext& ctx) -> int {
          // Hold all replicas in-flight together so SetLevel calls and
          // sink writes really race if isolation is broken.
          AwaitArrivals(arrivals, kReplicas);
          // Even replicas log at Info; odd replicas keep Error, so an
          // Info line leaking across threads lands in the wrong buffer
          // *and* violates the odd replica's level.
          Logger::SetLevel(ctx.index % 2 == 0 ? LogLevel::kInfo
                                              : LogLevel::kError);
          CBT_INFO("info from replica %zu", ctx.index);
          CBT_ERROR("error from replica %zu", ctx.index);
          EXPECT_EQ(Logger::level(), ctx.index % 2 == 0 ? LogLevel::kInfo
                                                        : LogLevel::kError);
          return 0;
        },
        [&](exec::RunContext& ctx, int) {
          logs[ctx.index] = ctx.log_out.str();
        });
  }
  for (int i = 0; i < kReplicas; ++i) {
    const std::string info = "info from replica " + std::to_string(i);
    const std::string error = "error from replica " + std::to_string(i);
    EXPECT_NE(logs[i].find(error), std::string::npos) << logs[i];
    if (i % 2 == 0) {
      EXPECT_NE(logs[i].find(info), std::string::npos) << logs[i];
    } else {
      EXPECT_EQ(logs[i].find(info), std::string::npos) << logs[i];
    }
    // No line from any other replica may appear in this buffer.
    for (int j = 0; j < kReplicas; ++j) {
      if (j == i) continue;
      EXPECT_EQ(logs[i].find("replica " + std::to_string(j)),
                std::string::npos)
          << "replica " << j << " leaked into replica " << i;
    }
  }
  // Replica SetLevel calls never touch the launching thread's config.
  EXPECT_EQ(Logger::level(), main_level_before);
}

// --- Per-replica obs isolation (metrics + tracing) -------------------------

namespace obs_isolation {

constexpr Ipv4Address kGroup(239, 7, 0, 1);

/// A small but real workload: Figure-1 CBT domain, `1 + index % 3` hosts
/// join, a few seconds of protocol time. Distinct indices produce
/// distinct metric/trace streams, which is what makes cross-replica
/// bleed detectable.
struct ReplicaObs {
  obs::MetricSet metrics;
  std::string chrome_trace;
  std::uint64_t trace_emitted = 0;
};

ReplicaObs RunReplica(exec::RunContext& ctx) {
  netsim::Simulator sim(ctx.seed);
  // The Simulator picked up ctx.trace through the thread-local
  // ProcessTraceBuffer override installed by ScopedRunContext.
  EXPECT_EQ(sim.trace(), ctx.trace.get());
  netsim::Topology topo = netsim::MakeFigure1(sim);
  core::CbtDomain domain(sim, topo);
  domain.BindMetrics(ctx.metrics);
  domain.RegisterGroup(kGroup, {topo.node("R4")});
  domain.Start();
  sim.RunUntil(kSecond);
  const char* hosts[] = {"A", "B", "G"};
  for (std::size_t h = 0; h < 1 + ctx.index % 3; ++h) {
    domain.host(hosts[h]).JoinGroup(kGroup);
  }
  sim.RunUntil(20 * kSecond);

  ReplicaObs result;
  result.metrics = ctx.metrics.Snapshot();
  if (ctx.trace != nullptr) {
    std::ostringstream os;
    ctx.trace->ExportChromeTrace(os);
    result.chrome_trace = os.str();
    result.trace_emitted = ctx.trace->emitted();
  }
  return result;
}

std::vector<ReplicaObs> RunSweepWithJobs(int jobs, std::size_t replicas) {
  exec::Pool pool(jobs);
  exec::SweepOptions options;
  options.base_seed = 5;
  options.trace = true;
  std::vector<ReplicaObs> results(replicas);
  StreamCapture out(std::cout);
  StreamCapture err(std::cerr);
  exec::RunSweep(pool, replicas, options, RunReplica,
                 [&](exec::RunContext& ctx, ReplicaObs r) {
                   results[ctx.index] = std::move(r);
                 });
  return results;
}

void ExpectSameSamples(const obs::MetricSet& a, const obs::MetricSet& b,
                       std::size_t replica) {
  ASSERT_EQ(a.size(), b.size()) << "replica " << replica;
  auto it_b = b.begin();
  for (const obs::Sample& sample : a) {
    EXPECT_EQ(sample.name, it_b->name) << "replica " << replica;
    EXPECT_EQ(sample.value, it_b->value)
        << "replica " << replica << " metric " << sample.name;
    ++it_b;
  }
}

TEST(SweepIsolationTest, ConcurrentReplicasProduceSerialMetricsAndTraces) {
  constexpr std::size_t kReplicas = 6;
  const auto serial = RunSweepWithJobs(1, kReplicas);
  const auto parallel = RunSweepWithJobs(4, kReplicas);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < kReplicas; ++i) {
    EXPECT_FALSE(serial[i].metrics.empty()) << "replica " << i;
    ExpectSameSamples(serial[i].metrics, parallel[i].metrics, i);
    EXPECT_GT(serial[i].trace_emitted, 0u) << "replica " << i;
    EXPECT_EQ(serial[i].trace_emitted, parallel[i].trace_emitted)
        << "replica " << i;
    EXPECT_EQ(serial[i].chrome_trace, parallel[i].chrome_trace)
        << "replica " << i;
  }
  // Replicas with different member counts genuinely differ — the
  // byte-equal assertions above are not vacuous.
  EXPECT_NE(parallel[0].chrome_trace, parallel[1].chrome_trace);
  EXPECT_GT(parallel[1].metrics.SumWithSuffix(".joins_originated"),
            parallel[0].metrics.SumWithSuffix(".joins_originated"));
}

TEST(SweepIsolationTest, UntracedReplicaMasksProcessTraceBuffer) {
  obs::TraceBuffer process_ring(1 << 10, obs::TraceLevel::kVerbose);
  obs::SetProcessTraceBuffer(&process_ring);
  exec::Pool pool(2);
  exec::SweepOptions options;  // trace = false: replicas run untraced
  exec::RunSweep(
      pool, 4, options,
      [](exec::RunContext& ctx) -> int {
        // An untraced replica must not see (or record into) the bench
        // main's process buffer: the null override masks it.
        EXPECT_EQ(obs::ProcessTraceBuffer(), nullptr);
        EXPECT_EQ(ctx.trace, nullptr);
        netsim::Simulator sim(ctx.seed);
        EXPECT_EQ(sim.trace(), nullptr);
        netsim::Topology topo = netsim::MakeFigure1(sim);
        core::CbtDomain domain(sim, topo);
        domain.RegisterGroup(kGroup, {topo.node("R4")});
        domain.Start();
        sim.RunUntil(5 * kSecond);
        return 0;
      },
      [](exec::RunContext&, int) {});
  EXPECT_EQ(obs::ProcessTraceBuffer(), &process_ring);
  EXPECT_EQ(process_ring.emitted(), 0u);
  obs::SetProcessTraceBuffer(nullptr);
}

}  // namespace obs_isolation

// --- Debug-build cross-thread ownership guard ------------------------------

TEST(ThreadGuardTest, ReleaseOwnershipAllowsHandoffBetweenThreads) {
  ThreadOwnershipGuard guard;
  guard.AssertOwned("test object");  // binds to this thread
  guard.AssertOwned("test object");  // same thread: fine
  guard.ReleaseOwnership();
  std::thread([&guard] { guard.AssertOwned("test object"); }).join();
}

#ifndef NDEBUG
void TouchEventQueueFromSecondThread() {
  netsim::EventQueue q;
  q.ScheduleAt(1, [] {});  // binds ownership here
  std::thread([&q] {
    SimTime clock = 0;
    q.RunNext(clock);  // second thread must abort
  }).join();
}

void TouchPacketArenaFromSecondThread() {
  netsim::PacketArena arena;
  const std::vector<std::uint8_t> bytes = {1, 2, 3};
  netsim::PacketRef ref = arena.Make(bytes);  // binds ownership
  std::thread([&arena, &bytes] {
    netsim::PacketRef other = arena.Make(bytes);
    (void)other;
  }).join();
}
#endif

TEST(ThreadGuardDeathTest, EventQueueSecondThreadAborts) {
#ifdef NDEBUG
  GTEST_SKIP() << "ThreadOwnershipGuard compiles away in NDEBUG builds";
#else
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(TouchEventQueueFromSecondThread(),
               "netsim::EventQueue touched from a second thread");
#endif
}

TEST(ThreadGuardDeathTest, PacketArenaSecondThreadAborts) {
#ifdef NDEBUG
  GTEST_SKIP() << "ThreadOwnershipGuard compiles away in NDEBUG builds";
#else
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(TouchPacketArenaFromSecondThread(),
               "netsim::PacketArena touched from a second thread");
#endif
}

}  // namespace
