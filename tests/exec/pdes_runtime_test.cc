// Tests for the space-parallel PDES runtime (exec/pdes/runtime).
//
// The determinism contract under test: a simulation sharded into N
// regions produces the same results for every N and every worker-thread
// count — same final clock, same protocol state, same per-subnet
// counters, same merged trace. The serial (no-backend) engine is a
// *different* scheduler (different tie rule, one global RNG stream), so
// PDES runs are compared to it structurally (protocol outcomes), not
// byte-for-byte.
//
// Threading note: this suite forces worker threads via the Runtime's
// `threads` parameter so the window barriers, guard handoff, and the
// trace side-log merge are exercised even on single-core CI runners
// (where the auto-derived worker count is 1). The whole binary carries
// the `exec` ctest label, so TSan CI sees these barriers under real
// contention.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "cbt/domain.h"
#include "common/types.h"
#include "exec/pdes/region_queue.h"
#include "exec/pdes/runtime.h"
#include "exec/pool.h"
#include "netsim/event_queue.h"
#include "netsim/simulator.h"
#include "netsim/topologies.h"
#include "obs/trace.h"

namespace {

using namespace cbt;  // NOLINT
using exec::pdes::EventKey;
using exec::pdes::RegionQueue;
using exec::pdes::Runtime;

constexpr Ipv4Address kGroup(239, 9, 9, 9);

/// Everything observable about a finished scenario run. Two PDES runs
/// with different shard/thread counts must compare equal on all fields.
struct Signature {
  SimTime now = 0;
  std::vector<NodeId> on_tree;
  std::map<std::string, std::uint64_t> received;
  std::vector<std::uint64_t> subnet_frames;
  std::vector<std::uint64_t> subnet_bytes;
  std::size_t trace_emitted = 0;

  bool operator==(const Signature&) const = default;
};

/// Figure-1 walkthrough under a given engine configuration. `shards` 0
/// means the classic serial engine (no backend installed).
Signature RunScenario(int shards, int threads) {
  netsim::Simulator sim(7);
  obs::TraceBuffer trace(1 << 16, obs::TraceLevel::kSpans);
  sim.SetTrace(&trace);
  netsim::Topology topo = netsim::MakeFigure1(sim);
  // Outlives the domain: timer dtors cancel through the backend.
  std::unique_ptr<Runtime> pdes;
  core::CbtDomain domain(sim, topo);
  if (shards > 0) {
    pdes = std::make_unique<Runtime>(sim, shards, threads);
    pdes->Install();
    domain.ShardRoutes(pdes->region_count(),
                       [&pdes](NodeId id) { return pdes->RegionOf(id); });
  }
  domain.RegisterGroup(kGroup, {topo.node("R4")});
  domain.Start();
  sim.RunUntil(kSecond);

  for (const char* member : {"A", "B", "G", "H"}) {
    domain.host(member).JoinGroup(kGroup);
  }
  sim.RunUntil(10 * kSecond);
  for (int i = 0; i < 3; ++i) {
    const std::string payload = "pdes-" + std::to_string(i);
    domain.host("C").SendToGroup(
        kGroup,
        std::span<const std::uint8_t>(
            reinterpret_cast<const std::uint8_t*>(payload.data()),
            payload.size()));
    sim.RunUntil(sim.Now() + kSecond);
  }
  sim.RunUntil(20 * kSecond);

  Signature out;
  out.now = sim.Now();
  out.on_tree = domain.OnTreeRouters(kGroup);
  std::sort(out.on_tree.begin(), out.on_tree.end(),
            [](NodeId a, NodeId b) { return a.value() < b.value(); });
  for (const char* member : {"A", "B", "C", "G", "H"}) {
    out.received[member] = domain.host(member).ReceivedCount(kGroup);
  }
  for (std::size_t s = 0; s < sim.subnet_count(); ++s) {
    const auto& rec = sim.subnet(SubnetId(static_cast<std::uint32_t>(s)));
    out.subnet_frames.push_back(rec.counters.frames_sent);
    out.subnet_bytes.push_back(rec.counters.bytes_sent);
  }
  out.trace_emitted = static_cast<std::size_t>(trace.emitted());
  return out;
}

TEST(PdesRuntimeTest, ShardCountDoesNotChangeResults) {
  const Signature base = RunScenario(/*shards=*/1, /*threads=*/1);
  // The members actually received the three datagrams — guards against
  // vacuous equality between broken runs.
  EXPECT_EQ(base.received.at("A"), 3u);
  EXPECT_EQ(base.received.at("H"), 3u);
  EXPECT_EQ(base.received.at("C"), 0u);  // sender is not a member
  EXPECT_FALSE(base.on_tree.empty());
  EXPECT_GT(base.trace_emitted, 0u);

  for (const int shards : {2, 4, 8}) {
    const Signature got = RunScenario(shards, /*threads=*/1);
    EXPECT_EQ(got, base) << "shards=" << shards;
  }
}

TEST(PdesRuntimeTest, WorkerThreadsDoNotChangeResults) {
  const Signature base = RunScenario(/*shards=*/4, /*threads=*/1);
  for (const int threads : {2, 4}) {
    const Signature got = RunScenario(/*shards=*/4, threads);
    EXPECT_EQ(got, base) << "threads=" << threads;
  }
}

TEST(PdesRuntimeTest, MatchesSerialEngineStructurally) {
  // The serial engine draws from one global RNG stream, so event timing
  // (and with it trace sizes / frame counts) legitimately differs; the
  // protocol outcome — who is on the tree, who got the data — must not.
  const Signature serial = RunScenario(/*shards=*/0, /*threads=*/0);
  const Signature pdes = RunScenario(/*shards=*/4, /*threads=*/1);
  EXPECT_EQ(pdes.on_tree, serial.on_tree);
  EXPECT_EQ(pdes.received, serial.received);
  EXPECT_EQ(pdes.now, serial.now);
}

TEST(PdesRuntimeTest, RegionAndWorkerCountsClampSensibly) {
  netsim::Simulator sim(3);
  netsim::MakeLine(sim, 4);
  Runtime rt(sim, /*shards=*/64, /*threads=*/8);
  rt.Install();
  EXPECT_GE(rt.region_count(), 1);
  EXPECT_LE(rt.region_count(), 8);  // 4 routers + 4 stub-LAN supernodes
  EXPECT_LE(rt.worker_count(), rt.region_count());
  EXPECT_GT(rt.lookahead(), 0);
  for (std::size_t n = 0; n < sim.node_count(); ++n) {
    const int r = rt.RegionOf(NodeId(static_cast<std::uint32_t>(n)));
    EXPECT_GE(r, 0);
    EXPECT_LT(r, rt.region_count());
  }
}

TEST(PdesRuntimeTest, ScheduleAndCancelWorkUnderBackend) {
  netsim::Simulator sim(3);
  netsim::MakeLine(sim, 6);
  Runtime rt(sim, /*shards=*/2, /*threads=*/1);
  rt.Install();
  int fired = 0;
  sim.Schedule(kMillisecond, [&] { ++fired; });
  const netsim::EventId cancelled =
      sim.Schedule(2 * kMillisecond, [&] { fired += 100; });
  EXPECT_TRUE(sim.Cancel(cancelled));
  EXPECT_FALSE(sim.Cancel(cancelled));  // already gone
  EXPECT_FALSE(sim.Cancel(netsim::kInvalidEventId));  // no backend bit set
  sim.RunUntil(kSecond);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.Now(), kSecond);
  sim.RunUntilIdle();
  EXPECT_EQ(fired, 1);
}

// --- Pool::RunWith ---------------------------------------------------------

TEST(PoolRunWithTest, RunsEveryTaskAndTheCallerTask) {
  exec::Pool pool(4);
  constexpr std::size_t kTasks = 16;
  std::vector<std::atomic<int>> hits(kTasks);
  std::atomic<bool> caller_ran{false};
  pool.RunWith(
      kTasks, [&](std::size_t i) { hits[i].fetch_add(1); },
      [&] { caller_ran.store(true); });
  EXPECT_TRUE(caller_ran.load());
  for (std::size_t i = 0; i < kTasks; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "task " << i;
  }
}

TEST(PoolRunWithTest, CallerTaskOverlapsWorkersOnARealPool) {
  // The PDES coordinator depends on the caller task running *while* the
  // workers run (it feeds them windows). Prove a worker makes progress
  // during caller_task: the caller waits (bounded) for a worker's mark.
  exec::Pool pool(2);
  std::atomic<bool> worker_marked{false};
  bool observed = false;
  pool.RunWith(
      1, [&](std::size_t) { worker_marked.store(true); },
      [&] {
        const auto deadline =
            std::chrono::steady_clock::now() + std::chrono::seconds(5);
        while (!worker_marked.load() &&
               std::chrono::steady_clock::now() < deadline) {
          std::this_thread::yield();
        }
        observed = worker_marked.load();
      });
  EXPECT_TRUE(observed);
}

TEST(PoolRunWithTest, InlinePoolRunsTasksBeforeCaller) {
  exec::Pool pool(1);
  std::vector<int> order;
  pool.RunWith(
      2, [&](std::size_t i) { order.push_back(static_cast<int>(i)); },
      [&] { order.push_back(100); });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 100}));
}

// --- Ownership guard -------------------------------------------------------

void TouchRegionQueueFromSecondThread() {
  RegionQueue queue;
  queue.Schedule(EventKey{kMillisecond, -1, 0}, -1, [] {});  // binds owner
  std::thread([&] {
    // Cross-region touch without a guard handoff: must abort in debug.
    queue.Schedule(EventKey{2 * kMillisecond, -1, 1}, -1, [] {});
  }).join();
}

TEST(PdesGuardDeathTest, RegionQueueSecondThreadAborts) {
#ifdef NDEBUG
  GTEST_SKIP() << "ThreadOwnershipGuard compiles away in NDEBUG builds";
#else
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(TouchRegionQueueFromSecondThread(),
               "exec::pdes::RegionQueue touched from a second thread");
#endif
}

TEST(PdesGuardTest, HandoffAfterReleaseIsLegal) {
  // The window barrier releases region ownership before workers adopt
  // the queues; the same handoff done by hand must not abort.
  RegionQueue queue;
  queue.Schedule(EventKey{kMillisecond, -1, 0}, -1, [] {});
  queue.ReleaseOwnership();
  std::thread([&] {
    EventKey key;
    std::int32_t affinity = 0;
    ASSERT_FALSE(queue.Empty());
    netsim::EventFn fn = queue.PopFront(&key, &affinity);
    fn();
    queue.ReleaseOwnership();
  }).join();
  EXPECT_TRUE(queue.Empty());
}

}  // namespace
