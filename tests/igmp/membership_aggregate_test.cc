#include "igmp/membership_aggregate.h"

#include <gtest/gtest.h>

#include <array>
#include <cstdint>

#include "cbt/domain.h"
#include "netsim/topologies.h"

namespace cbt::igmp {
namespace {

using core::CbtDomain;
using netsim::MakeFigure1;
using netsim::Simulator;
using netsim::Topology;

constexpr Ipv4Address kGroup(239, 1, 2, 3);

class AggregateFixture : public ::testing::TestWithParam<MembershipAggregate::Mode> {
 protected:
  AggregateFixture()
      : topo(MakeFigure1(sim)),
        domain(sim, topo),
        station(domain.AddAggregate(topo.subnet("S1"), "AGG", GetParam())) {
    domain.RegisterGroup(kGroup, {topo.node("R4"), topo.node("R9")});
    domain.Start();
  }

  Simulator sim{1};
  Topology topo;
  CbtDomain domain;
  MembershipAggregate& station;
};

TEST_P(AggregateFixture, CountsTrackAnonymousJoinsAndLeaves) {
  EXPECT_EQ(station.MemberCount(kGroup), 0u);
  EXPECT_EQ(station.GroupsPresent(), 0u);
  station.Join(kGroup);
  station.Join(kGroup);
  station.Join(kGroup);
  EXPECT_EQ(station.MemberCount(kGroup), 3u);
  EXPECT_EQ(station.TotalMembers(), 3u);
  EXPECT_EQ(station.GroupsPresent(), 1u);
  station.Leave(kGroup);
  EXPECT_EQ(station.MemberCount(kGroup), 2u);
  station.Leave(kGroup);
  station.Leave(kGroup);
  EXPECT_EQ(station.MemberCount(kGroup), 0u);
  EXPECT_EQ(station.GroupsPresent(), 0u);
  // Leave on an empty group is an explicit no-op.
  station.Leave(kGroup);
  EXPECT_EQ(station.MemberCount(kGroup), 0u);
  EXPECT_EQ(station.stats().joins, 3u);
  EXPECT_EQ(station.stats().leaves, 3u);
}

TEST_P(AggregateFixture, JoinSendsReportPairAndIsConfirmed) {
  station.Join(kGroup);
  sim.RunUntil(5 * kSecond);
  // The unsolicited report (+1 s robustness repeat) establishes presence
  // at the attached router exactly like a fresh HostAgent would.
  EXPECT_TRUE(domain.router("R1").igmp().AnyMembers(kGroup));
  EXPECT_TRUE(station.JoinConfirmed(kGroup));
  EXPECT_GE(station.stats().reports_sent, 2u);
  // IGMPv3 hosts precede each membership report with an RP/Core-Report.
  EXPECT_GE(station.stats().core_reports_sent, 2u);
}

TEST_P(AggregateFixture, LastLeaveExpiresMembershipFast) {
  station.Join(kGroup);
  sim.RunUntil(5 * kSecond);
  ASSERT_TRUE(domain.router("R1").igmp().AnyMembers(kGroup));

  const SimTime leave_time = sim.Now();
  station.Leave(kGroup);
  EXPECT_GE(station.stats().leaves_sent, 1u);
  // HOST-MEMBERSHIP-LEAVE triggers the last-member query (~3 s), far
  // below the 130 s general membership timeout.
  sim.RunUntil(leave_time + 10 * kSecond);
  EXPECT_FALSE(domain.router("R1").igmp().AnyMembers(kGroup));
}

TEST_P(AggregateFixture, LeaveIgnoredWhileAggregatedMembersRemain) {
  station.Join(kGroup);
  station.Join(kGroup);
  sim.RunUntil(5 * kSecond);

  station.Leave(kGroup);
  // The remaining aggregated member answers the group-specific query.
  sim.RunUntil(30 * kSecond);
  EXPECT_TRUE(domain.router("R1").igmp().AnyMembers(kGroup));
}

TEST_P(AggregateFixture, PeriodicQueriesKeepMembershipAlive) {
  station.Join(kGroup);
  sim.RunUntil(5 * kSecond);
  // Far beyond the membership timeout: presence survives only if the
  // station keeps answering general queries.
  sim.RunUntil(500 * kSecond);
  EXPECT_TRUE(domain.router("R1").igmp().AnyMembers(kGroup));
  EXPECT_GT(station.stats().queries_seen, 0u);
}

TEST_P(AggregateFixture, SuppressionCollapsesResponsesOfManyMembers) {
  for (int i = 0; i < 50; ++i) station.Join(kGroup);
  sim.RunUntil(500 * kSecond);
  ASSERT_GT(station.stats().queries_seen, 3u);
  if (GetParam() == MembershipAggregate::Mode::kExactHostEquivalence) {
    // 50 members each draw a response per query; suppression must cancel
    // almost all of them, as on a real shared LAN.
    EXPECT_GT(station.stats().responses_suppressed, 0u);
  }
  // Query-elicited traffic stays near one report per query, nowhere near
  // one per member per query (the 2 * joins term is the unsolicited
  // join-time pairs).
  EXPECT_LT(station.stats().reports_sent,
            2 * station.stats().joins + 3 * station.stats().queries_seen);
}

TEST_P(AggregateFixture, Version1SendsNeitherLeavesNorCoreReports) {
  station.set_igmp_version(1);
  station.Join(kGroup);
  sim.RunUntil(5 * kSecond);
  EXPECT_TRUE(domain.router("R1").igmp().AnyMembers(kGroup));
  EXPECT_EQ(station.stats().core_reports_sent, 0u);
  station.Leave(kGroup);
  EXPECT_EQ(station.stats().leaves_sent, 0u);
}

TEST_P(AggregateFixture, Version2SendsLeavesButNoCoreReports) {
  station.set_igmp_version(2);
  station.Join(kGroup);
  sim.RunUntil(5 * kSecond);
  EXPECT_EQ(station.stats().core_reports_sent, 0u);
  station.Leave(kGroup);
  EXPECT_GE(station.stats().leaves_sent, 1u);
}

TEST_P(AggregateFixture, DataDeliveriesCreditEveryAggregatedMember) {
  for (int i = 0; i < 7; ++i) station.Join(kGroup);
  sim.RunUntil(5 * kSecond);
  // Host A shares S1 with the station: its frame reaches the station
  // once and must be credited once per aggregated member.
  const std::array<std::uint8_t, 4> payload{0xde, 0xad, 0xbe, 0xef};
  domain.host("A").SendToGroup(kGroup, payload);
  sim.RunUntil(sim.Now() + kSecond);
  EXPECT_EQ(station.ReceivedCount(kGroup), 7u);
}

TEST_P(AggregateFixture, ResetProtocolCountersClearsStats) {
  station.Join(kGroup);
  sim.RunUntil(5 * kSecond);
  ASSERT_GT(station.stats().reports_sent, 0u);
  station.ResetProtocolCounters();
  EXPECT_EQ(station.stats().joins, 0u);
  EXPECT_EQ(station.stats().reports_sent, 0u);
  // Membership state is unaffected — only the counters reset.
  EXPECT_EQ(station.MemberCount(kGroup), 1u);
}

INSTANTIATE_TEST_SUITE_P(
    BothModes, AggregateFixture,
    ::testing::Values(MembershipAggregate::Mode::kExactHostEquivalence,
                      MembershipAggregate::Mode::kCoalesced),
    [](const ::testing::TestParamInfo<MembershipAggregate::Mode>& info) {
      return info.param == MembershipAggregate::Mode::kExactHostEquivalence
                 ? "Exact"
                 : "Coalesced";
    });

}  // namespace
}  // namespace cbt::igmp
