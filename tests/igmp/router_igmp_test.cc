#include "igmp/router_igmp.h"

#include <gtest/gtest.h>

#include "cbt/domain.h"
#include "netsim/topologies.h"

namespace cbt::igmp {
namespace {

using core::CbtDomain;
using netsim::MakeFigure1;
using netsim::Simulator;
using netsim::Topology;

constexpr Ipv4Address kGroup(239, 1, 2, 3);

class IgmpFixture : public ::testing::Test {
 protected:
  IgmpFixture() : topo(MakeFigure1(sim)), domain(sim, topo) {
    domain.RegisterGroup(kGroup, {topo.node("R4"), topo.node("R9")});
    domain.Start();
  }

  Simulator sim{1};
  Topology topo;
  CbtDomain domain;
};

TEST_F(IgmpFixture, SoleRouterIsQuerier) {
  sim.RunUntil(30 * kSecond);
  // R1 is the only router on S1 -> it must be querier there.
  auto& r1 = domain.router("R1");
  VifIndex s1_vif = kInvalidVif;
  for (const auto& iface : sim.node(topo.node("R1")).interfaces) {
    if (iface.subnet == topo.subnet("S1")) s1_vif = iface.vif;
  }
  ASSERT_NE(s1_vif, kInvalidVif);
  EXPECT_TRUE(r1.igmp().IsQuerier(s1_vif));
}

TEST_F(IgmpFixture, LowestAddressedRouterWinsS4Election) {
  sim.RunUntil(60 * kSecond);
  // S4 hosts R6 (10.4.0.1), R2 (.2), R5 (.3): R6 must win; the others
  // yield (section 2.3).
  const auto vif_on = [&](const char* router) {
    VifIndex vif = kInvalidVif;
    for (const auto& iface : sim.node(topo.node(router)).interfaces) {
      if (iface.subnet == topo.subnet("S4")) vif = iface.vif;
    }
    return vif;
  };
  EXPECT_TRUE(domain.router("R6").igmp().IsQuerier(vif_on("R6")));
  EXPECT_FALSE(domain.router("R2").igmp().IsQuerier(vif_on("R2")));
  EXPECT_FALSE(domain.router("R5").igmp().IsQuerier(vif_on("R5")));
  // Everyone agrees the querier's address is R6's S4 address.
  const Ipv4Address r6_s4 =
      sim.interface(topo.node("R6"), vif_on("R6")).address;
  EXPECT_EQ(domain.router("R2").igmp().QuerierAddress(vif_on("R2")), r6_s4);
}

TEST_F(IgmpFixture, MembershipTrackedAfterReport) {
  domain.host("A").JoinGroup(kGroup);
  sim.RunUntil(5 * kSecond);
  EXPECT_TRUE(domain.router("R1").igmp().AnyMembers(kGroup));
  // Passive tracking: non-querier routers on S4 see B's reports too.
  domain.host("B").JoinGroup(kGroup);
  sim.RunUntil(10 * kSecond);
  EXPECT_TRUE(domain.router("R2").igmp().AnyMembers(kGroup));
  EXPECT_TRUE(domain.router("R5").igmp().AnyMembers(kGroup));
  EXPECT_TRUE(domain.router("R6").igmp().AnyMembers(kGroup));
}

TEST_F(IgmpFixture, MembershipRefreshedByQueries) {
  domain.host("A").JoinGroup(kGroup);
  sim.RunUntil(5 * kSecond);
  // Far beyond the (2*60+10)s membership timeout: periodic general queries
  // keep eliciting reports, so presence must persist.
  sim.RunUntil(500 * kSecond);
  EXPECT_TRUE(domain.router("R1").igmp().AnyMembers(kGroup));
}

TEST_F(IgmpFixture, LeaveTriggersFastExpiry) {
  domain.host("A").JoinGroup(kGroup);
  sim.RunUntil(5 * kSecond);
  ASSERT_TRUE(domain.router("R1").igmp().AnyMembers(kGroup));

  const SimTime leave_time = sim.Now();
  domain.host("A").LeaveGroup(kGroup);
  // Last-member query timeout is ~3s, far below the 130s general timeout.
  sim.RunUntil(leave_time + 10 * kSecond);
  EXPECT_FALSE(domain.router("R1").igmp().AnyMembers(kGroup));
}

TEST_F(IgmpFixture, LeaveIgnoredWhileOtherMembersRemain) {
  auto& a = domain.host("A");
  auto& a2 = domain.AddHost(topo.subnet("S1"), "A2");
  a.JoinGroup(kGroup);
  a2.JoinGroup(kGroup);
  sim.RunUntil(5 * kSecond);

  a.LeaveGroup(kGroup);
  // A2 answers the group-specific query, so presence persists.
  sim.RunUntil(30 * kSecond);
  EXPECT_TRUE(domain.router("R1").igmp().AnyMembers(kGroup));
}

TEST_F(IgmpFixture, QuerierTakeoverAfterSilence) {
  sim.RunUntil(10 * kSecond);
  const auto vif_on = [&](const char* router) {
    VifIndex vif = kInvalidVif;
    for (const auto& iface : sim.node(topo.node(router)).interfaces) {
      if (iface.subnet == topo.subnet("S4")) vif = iface.vif;
    }
    return vif;
  };
  ASSERT_TRUE(domain.router("R6").igmp().IsQuerier(vif_on("R6")));
  ASSERT_FALSE(domain.router("R2").igmp().IsQuerier(vif_on("R2")));

  // R6 goes silent: after OtherQuerierPresentTimeout (2*60+5 s) a
  // remaining router must take over querier (and hence D-DR) duty.
  sim.SetNodeUp(topo.node("R6"), false);
  sim.RunUntil(sim.Now() + 300 * kSecond);
  EXPECT_TRUE(domain.router("R2").igmp().IsQuerier(vif_on("R2")) ||
              domain.router("R5").igmp().IsQuerier(vif_on("R5")));

  // The new querier is the new D-DR: a fresh member join must work.
  domain.host("B").JoinGroup(kGroup);
  sim.RunUntil(sim.Now() + 30 * kSecond);
  EXPECT_TRUE(domain.router("R2").IsOnTree(kGroup) ||
              domain.router("R5").IsOnTree(kGroup));
}

TEST_F(IgmpFixture, ReturningLowerQuerierReclaimsDuty) {
  sim.RunUntil(10 * kSecond);
  const auto vif_on = [&](const char* router) {
    VifIndex vif = kInvalidVif;
    for (const auto& iface : sim.node(topo.node(router)).interfaces) {
      if (iface.subnet == topo.subnet("S4")) vif = iface.vif;
    }
    return vif;
  };
  sim.SetNodeUp(topo.node("R6"), false);
  sim.RunUntil(sim.Now() + 300 * kSecond);
  // (A dead router's internal flags are unobservable on the wire; what
  // matters is that a survivor took over.)
  ASSERT_TRUE(domain.router("R2").igmp().IsQuerier(vif_on("R2")) ||
              domain.router("R5").igmp().IsQuerier(vif_on("R5")));

  // R6 (lowest address) returns and must win the election back when the
  // interim querier hears its lower-addressed queries.
  sim.SetNodeUp(topo.node("R6"), true);
  sim.RunUntil(sim.Now() + 300 * kSecond);
  EXPECT_TRUE(domain.router("R6").igmp().IsQuerier(vif_on("R6")));
  EXPECT_FALSE(domain.router("R2").igmp().IsQuerier(vif_on("R2")));
  EXPECT_FALSE(domain.router("R5").igmp().IsQuerier(vif_on("R5")));
}

TEST_F(IgmpFixture, MemberVifsListsOnlyMemberSubnets) {
  domain.host("G").JoinGroup(kGroup);  // S10, served by R8
  sim.RunUntil(5 * kSecond);
  auto& r8 = domain.router("R8");
  const auto vifs = r8.igmp().MemberVifs(kGroup);
  ASSERT_EQ(vifs.size(), 1u);
  EXPECT_EQ(sim.interface(topo.node("R8"), vifs[0]).subnet,
            topo.subnet("S10"));
  EXPECT_TRUE(r8.igmp().HasMembers(vifs[0], kGroup));
}

TEST_F(IgmpFixture, PresentGroupsAggregates) {
  const Ipv4Address other(239, 7, 7, 7);
  domain.RegisterGroup(other, {topo.node("R4")});
  domain.host("A").JoinGroup(kGroup);
  domain.host("C").JoinGroup(other);  // also behind R1 (S3)
  sim.RunUntil(5 * kSecond);
  const auto groups = domain.router("R1").igmp().PresentGroups();
  EXPECT_EQ(groups.size(), 2u);
}

}  // namespace
}  // namespace cbt::igmp
