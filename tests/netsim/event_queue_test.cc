#include "netsim/event_queue.h"

#include <gtest/gtest.h>

#include <vector>

namespace cbt::netsim {
namespace {

TEST(EventQueue, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.ScheduleAt(30, [&] { order.push_back(3); });
  q.ScheduleAt(10, [&] { order.push_back(1); });
  q.ScheduleAt(20, [&] { order.push_back(2); });
  SimTime clock = 0;
  while (q.RunNext(clock)) {
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(clock, 30);
}

TEST(EventQueue, SimultaneousEventsRunInScheduleOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.ScheduleAt(42, [&order, i] { order.push_back(i); });
  }
  SimTime clock = 0;
  while (q.RunNext(clock)) {
  }
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue q;
  bool ran = false;
  const EventId id = q.ScheduleAt(5, [&] { ran = true; });
  EXPECT_TRUE(q.Cancel(id));
  SimTime clock = 0;
  while (q.RunNext(clock)) {
  }
  EXPECT_FALSE(ran);
}

TEST(EventQueue, CancelTwiceReturnsFalse) {
  EventQueue q;
  const EventId id = q.ScheduleAt(5, [] {});
  EXPECT_TRUE(q.Cancel(id));
  EXPECT_FALSE(q.Cancel(id));
}

TEST(EventQueue, CancelAfterRunReturnsFalse) {
  EventQueue q;
  const EventId id = q.ScheduleAt(5, [] {});
  SimTime clock = 0;
  q.RunNext(clock);
  EXPECT_FALSE(q.Cancel(id));
}

TEST(EventQueue, EventsCanScheduleMoreEvents) {
  EventQueue q;
  std::vector<SimTime> fire_times;
  SimTime clock = 0;
  q.ScheduleAt(10, [&] {
    fire_times.push_back(clock);
    q.ScheduleAt(20, [&] { fire_times.push_back(clock); });
  });
  while (q.RunNext(clock)) {
  }
  EXPECT_EQ(fire_times, (std::vector<SimTime>{10, 20}));
}

TEST(EventQueue, SizeTracksLiveEvents) {
  EventQueue q;
  EXPECT_TRUE(q.Empty());
  const EventId a = q.ScheduleAt(1, [] {});
  q.ScheduleAt(2, [] {});
  EXPECT_EQ(q.size(), 2u);
  q.Cancel(a);
  EXPECT_EQ(q.size(), 1u);
  EXPECT_EQ(q.NextTime(), 2);
}

}  // namespace
}  // namespace cbt::netsim
