#include "netsim/event_queue.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <utility>
#include <vector>

#include "common/random.h"

namespace cbt::netsim {
namespace {

TEST(EventQueue, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.ScheduleAt(30, [&] { order.push_back(3); });
  q.ScheduleAt(10, [&] { order.push_back(1); });
  q.ScheduleAt(20, [&] { order.push_back(2); });
  SimTime clock = 0;
  while (q.RunNext(clock)) {
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(clock, 30);
}

TEST(EventQueue, SimultaneousEventsRunInScheduleOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.ScheduleAt(42, [&order, i] { order.push_back(i); });
  }
  SimTime clock = 0;
  while (q.RunNext(clock)) {
  }
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue q;
  bool ran = false;
  const EventId id = q.ScheduleAt(5, [&] { ran = true; });
  EXPECT_TRUE(q.Cancel(id));
  SimTime clock = 0;
  while (q.RunNext(clock)) {
  }
  EXPECT_FALSE(ran);
}

TEST(EventQueue, CancelTwiceReturnsFalse) {
  EventQueue q;
  const EventId id = q.ScheduleAt(5, [] {});
  EXPECT_TRUE(q.Cancel(id));
  EXPECT_FALSE(q.Cancel(id));
}

TEST(EventQueue, CancelAfterRunReturnsFalse) {
  EventQueue q;
  const EventId id = q.ScheduleAt(5, [] {});
  SimTime clock = 0;
  q.RunNext(clock);
  EXPECT_FALSE(q.Cancel(id));
}

TEST(EventQueue, EventsCanScheduleMoreEvents) {
  EventQueue q;
  std::vector<SimTime> fire_times;
  SimTime clock = 0;
  q.ScheduleAt(10, [&] {
    fire_times.push_back(clock);
    q.ScheduleAt(20, [&] { fire_times.push_back(clock); });
  });
  while (q.RunNext(clock)) {
  }
  EXPECT_EQ(fire_times, (std::vector<SimTime>{10, 20}));
}

TEST(EventQueue, SizeTracksLiveEvents) {
  EventQueue q;
  EXPECT_TRUE(q.Empty());
  const EventId a = q.ScheduleAt(1, [] {});
  q.ScheduleAt(2, [] {});
  EXPECT_EQ(q.size(), 2u);
  q.Cancel(a);
  EXPECT_EQ(q.size(), 1u);
  EXPECT_EQ(q.NextTime(), 2);
}

TEST(EventQueue, FarFutureEventsUseOverflowHeapAndStillOrder) {
  EventQueue q;
  std::vector<int> order;
  // ~12 days out: far beyond the wheel horizon.
  const SimTime far = 1'000'000'000'000;
  q.ScheduleAt(far + 7, [&] { order.push_back(3); });
  q.ScheduleAt(far + 7, [&] { order.push_back(4); });  // same-time FIFO
  q.ScheduleAt(5, [&] { order.push_back(1); });
  q.ScheduleAt(far, [&] { order.push_back(2); });
  EXPECT_GE(q.overflow_heap_size(), 3u);
  SimTime clock = 0;
  while (q.RunNext(clock)) {
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
  EXPECT_EQ(clock, far + 7);
}

TEST(EventQueue, CancelFarFutureEventRemovesFromHeap) {
  EventQueue q;
  bool ran = false;
  const EventId id = q.ScheduleAt(1'000'000'000'000, [&] { ran = true; });
  EXPECT_EQ(q.overflow_heap_size(), 1u);
  EXPECT_TRUE(q.Cancel(id));
  EXPECT_EQ(q.overflow_heap_size(), 0u);
  EXPECT_TRUE(q.Empty());
  SimTime clock = 0;
  while (q.RunNext(clock)) {
  }
  EXPECT_FALSE(ran);
}

TEST(EventQueue, SameTimeScheduleDuringDrainRunsAfterCurrent) {
  EventQueue q;
  std::vector<int> order;
  SimTime clock = 0;
  q.ScheduleAt(10, [&] {
    order.push_back(1);
    // Same-time follow-up lands in the tick currently being drained.
    q.ScheduleAt(10, [&] { order.push_back(3); });
  });
  q.ScheduleAt(10, [&] { order.push_back(2); });
  while (q.RunNext(clock)) {
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(clock, 10);
}

TEST(EventQueue, StaleIdAfterSlotReuseIsNotCancellable) {
  EventQueue q;
  const EventId a = q.ScheduleAt(5, [] {});
  ASSERT_TRUE(q.Cancel(a));
  // The slot is reused for a fresh event; the stale handle must not be
  // able to cancel it.
  bool ran = false;
  q.ScheduleAt(6, [&] { ran = true; });
  EXPECT_FALSE(q.Cancel(a));
  SimTime clock = 0;
  while (q.RunNext(clock)) {
  }
  EXPECT_TRUE(ran);
}

TEST(EventQueue, RandomizedOrderMatchesTimeThenSequence) {
  Rng rng(99);
  EventQueue q;
  struct Fired {
    SimTime when;
    int seq;
  };
  std::vector<Fired> fired;
  std::vector<std::pair<SimTime, int>> expected;
  for (int i = 0; i < 5000; ++i) {
    // Mix of near (same tick / same wheel level), cross-level, and
    // far-future times to exercise cascades and the overflow heap.
    const SimTime when = static_cast<SimTime>(rng.NextBelow(50'000'000));
    expected.emplace_back(when, i);
    q.ScheduleAt(when, [&fired, when, i] { fired.push_back({when, i}); });
  }
  std::stable_sort(expected.begin(), expected.end(),
                   [](const auto& a, const auto& b) {
                     return a.first < b.first;
                   });
  SimTime clock = 0;
  while (q.RunNext(clock)) {
  }
  ASSERT_EQ(fired.size(), expected.size());
  for (std::size_t i = 0; i < fired.size(); ++i) {
    EXPECT_EQ(fired[i].when, expected[i].first) << i;
    EXPECT_EQ(fired[i].seq, expected[i].second) << i;
  }
}

// Regression for the cancelled-entry leak: the legacy engine left
// cancelled events (and their captures) in the heap until popped; the
// wheel engine must reclaim slots eagerly, so a million schedule/cancel
// cycles stay within a constant-size slab.
TEST(EventQueue, MillionCancelledTimersKeepMemoryBounded) {
  EventQueue q;
  constexpr int kWaves = 1000;
  constexpr int kPerWave = 1000;
  std::vector<EventId> ids;
  ids.reserve(kPerWave);
  for (int wave = 0; wave < kWaves; ++wave) {
    ids.clear();
    for (int i = 0; i < kPerWave; ++i) {
      ids.push_back(q.ScheduleAt(1000 + wave + i, [] {}));
    }
    for (const EventId id : ids) ASSERT_TRUE(q.Cancel(id));
  }
  EXPECT_TRUE(q.Empty());
  // The queue's own accounting: one million schedule/cancel cycles must
  // reuse the same ~kPerWave slots rather than accumulate tombstones.
  EXPECT_LE(q.slot_capacity(), static_cast<std::size_t>(kPerWave) + 64);
}

TEST(EventQueue, LegacyEngineAccumulatesTombstones) {
  // Documents the leak the wheel fixes (and keeps the shim honest).
  EventQueue q(EventQueue::Engine::kLegacyHeap);
  for (int i = 0; i < 10'000; ++i) {
    q.Cancel(q.ScheduleAt(1000 + i, [] {}));
  }
  EXPECT_TRUE(q.Empty());
  EXPECT_EQ(q.slot_capacity(), 10'000u);  // dead entries linger until popped
}

TEST(EventQueue, CancelDestroysClosureEagerly) {
  EventQueue q;
  auto sentinel = std::make_shared<int>(42);
  const EventId id = q.ScheduleAt(5, [keep = sentinel] { (void)keep; });
  EXPECT_EQ(sentinel.use_count(), 2);
  ASSERT_TRUE(q.Cancel(id));
  // The capture must die at cancel time, not when the slot is popped.
  EXPECT_EQ(sentinel.use_count(), 1);
}

TEST(EventQueue, LegacyEngineRunsSameApi) {
  EventQueue q(EventQueue::Engine::kLegacyHeap);
  std::vector<int> order;
  q.ScheduleAt(30, [&] { order.push_back(3); });
  q.ScheduleAt(10, [&] { order.push_back(1); });
  const EventId id = q.ScheduleAt(20, [&] { order.push_back(2); });
  EXPECT_TRUE(q.Cancel(id));
  EXPECT_FALSE(q.Cancel(id));
  SimTime clock = 0;
  while (q.RunNext(clock)) {
  }
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
  EXPECT_EQ(clock, 30);
}

}  // namespace
}  // namespace cbt::netsim
