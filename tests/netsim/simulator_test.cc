#include "netsim/simulator.h"

#include <gtest/gtest.h>

#include <vector>

#include "netsim/timer.h"

namespace cbt::netsim {
namespace {

/// Records every datagram handed to it.
class RecordingAgent : public NetworkAgent {
 public:
  struct Delivery {
    VifIndex vif;
    Ipv4Address link_dst;
    std::vector<std::uint8_t> bytes;
  };
  void OnDatagram(VifIndex vif, Ipv4Address link_src, Ipv4Address link_dst,
                  std::span<const std::uint8_t> datagram) override {
    (void)link_src;
    deliveries.push_back({vif, link_dst,
                          std::vector<std::uint8_t>(datagram.begin(),
                                                    datagram.end())});
  }
  std::vector<Delivery> deliveries;
};

class SimulatorTest : public ::testing::Test {
 protected:
  Simulator sim{1};
};

TEST_F(SimulatorTest, UnicastReachesOnlyTheAddressee) {
  const SubnetId lan = sim.AddSubnet(
      "lan", SubnetAddress::FromPrefix(Ipv4Address(10, 1, 0, 0), 16));
  const NodeId a = sim.AddNode("a", true);
  const NodeId b = sim.AddNode("b", true);
  const NodeId c = sim.AddNode("c", true);
  sim.Attach(a, lan);
  sim.Attach(b, lan);
  sim.Attach(c, lan);
  RecordingAgent ra, rb, rc;
  sim.SetAgent(a, &ra);
  sim.SetAgent(b, &rb);
  sim.SetAgent(c, &rc);

  const Ipv4Address b_addr = sim.PrimaryAddress(b);
  ASSERT_TRUE(sim.SendDatagram(a, 0, b_addr, {1, 2, 3}));
  sim.RunUntilIdle();

  EXPECT_EQ(ra.deliveries.size(), 0u);
  ASSERT_EQ(rb.deliveries.size(), 1u);
  EXPECT_EQ(rc.deliveries.size(), 0u);
  EXPECT_EQ(rb.deliveries[0].bytes, (std::vector<std::uint8_t>{1, 2, 3}));
}

TEST_F(SimulatorTest, MulticastReachesEveryOtherAttachment) {
  const SubnetId lan = sim.AddSubnet(
      "lan", SubnetAddress::FromPrefix(Ipv4Address(10, 1, 0, 0), 16));
  const NodeId a = sim.AddNode("a", true);
  const NodeId b = sim.AddNode("b", true);
  const NodeId c = sim.AddNode("c", false);
  sim.Attach(a, lan);
  sim.Attach(b, lan);
  sim.Attach(c, lan);
  RecordingAgent ra, rb, rc;
  sim.SetAgent(a, &ra);
  sim.SetAgent(b, &rb);
  sim.SetAgent(c, &rc);

  sim.SendDatagram(a, 0, kAllSystemsGroup, {9});
  sim.RunUntilIdle();

  EXPECT_EQ(ra.deliveries.size(), 0u);  // no self-delivery
  EXPECT_EQ(rb.deliveries.size(), 1u);
  EXPECT_EQ(rc.deliveries.size(), 1u);
}

TEST_F(SimulatorTest, DeliveryHonoursSubnetDelay) {
  const SubnetId lan = sim.AddSubnet(
      "lan", SubnetAddress::FromPrefix(Ipv4Address(10, 1, 0, 0), 16),
      7 * kMillisecond);
  const NodeId a = sim.AddNode("a", true);
  const NodeId b = sim.AddNode("b", true);
  sim.Attach(a, lan);
  sim.Attach(b, lan);
  RecordingAgent rb;
  sim.SetAgent(b, &rb);

  SimTime delivered_at = -1;
  sim.SendDatagram(a, 0, sim.PrimaryAddress(b), {1});
  sim.RunUntil(6 * kMillisecond);
  EXPECT_TRUE(rb.deliveries.empty());
  sim.RunUntil(7 * kMillisecond);
  ASSERT_EQ(rb.deliveries.size(), 1u);
  (void)delivered_at;
}

TEST_F(SimulatorTest, DownSubnetDropsFrames) {
  const NodeId a = sim.AddNode("a", true);
  const NodeId b = sim.AddNode("b", true);
  const SubnetId link = sim.Connect(a, b);
  RecordingAgent rb;
  sim.SetAgent(b, &rb);

  sim.SetSubnetUp(link, false);
  EXPECT_FALSE(sim.SendDatagram(a, 0, sim.PrimaryAddress(b), {1}));
  sim.RunUntilIdle();
  EXPECT_TRUE(rb.deliveries.empty());
  EXPECT_EQ(sim.subnet(link).counters.frames_dropped, 1u);
}

TEST_F(SimulatorTest, FrameInFlightDiesWithReceiverInterface) {
  const NodeId a = sim.AddNode("a", true);
  const NodeId b = sim.AddNode("b", true);
  sim.Connect(a, b, 10 * kMillisecond);
  RecordingAgent rb;
  sim.SetAgent(b, &rb);

  sim.SendDatagram(a, 0, sim.PrimaryAddress(b), {1});
  sim.Schedule(5 * kMillisecond, [&] { sim.SetInterfaceUp(b, 0, false); });
  sim.RunUntilIdle();
  EXPECT_TRUE(rb.deliveries.empty());
}

TEST_F(SimulatorTest, DownNodeNeitherSendsNorReceives) {
  const NodeId a = sim.AddNode("a", true);
  const NodeId b = sim.AddNode("b", true);
  sim.Connect(a, b);
  RecordingAgent rb;
  sim.SetAgent(b, &rb);

  sim.SetNodeUp(b, false);
  sim.SendDatagram(a, 0, sim.PrimaryAddress(b), {1});
  sim.RunUntilIdle();
  EXPECT_TRUE(rb.deliveries.empty());

  sim.SetNodeUp(a, false);
  EXPECT_FALSE(sim.SendDatagram(a, 0, sim.PrimaryAddress(b), {1}));
}

TEST_F(SimulatorTest, LossRateDropsSomeFrames) {
  const SubnetId lan = sim.AddSubnet(
      "lan", SubnetAddress::FromPrefix(Ipv4Address(10, 1, 0, 0), 16));
  const NodeId a = sim.AddNode("a", true);
  const NodeId b = sim.AddNode("b", true);
  sim.Attach(a, lan);
  sim.Attach(b, lan);
  RecordingAgent rb;
  sim.SetAgent(b, &rb);
  sim.SetSubnetLossRate(lan, 0.5);

  for (int i = 0; i < 200; ++i) {
    sim.SendDatagram(a, 0, sim.PrimaryAddress(b), {static_cast<uint8_t>(i)});
  }
  sim.RunUntilIdle();
  EXPECT_GT(rb.deliveries.size(), 50u);
  EXPECT_LT(rb.deliveries.size(), 150u);
}

TEST_F(SimulatorTest, CountersTrackTransmissions) {
  const NodeId a = sim.AddNode("a", true);
  const NodeId b = sim.AddNode("b", true);
  const SubnetId link = sim.Connect(a, b);
  RecordingAgent rb;
  sim.SetAgent(b, &rb);

  sim.SendDatagram(a, 0, sim.PrimaryAddress(b), {1, 2, 3, 4});
  sim.RunUntilIdle();
  EXPECT_EQ(sim.subnet(link).counters.frames_sent, 1u);
  EXPECT_EQ(sim.subnet(link).counters.bytes_sent, 4u);
  sim.ResetCounters();
  EXPECT_EQ(sim.subnet(link).counters.frames_sent, 0u);
}

TEST_F(SimulatorTest, FrameObserverSeesEveryTransmission) {
  const NodeId a = sim.AddNode("a", true);
  const NodeId b = sim.AddNode("b", true);
  sim.Connect(a, b);
  int observed = 0;
  sim.SetFrameObserver([&](const FrameEvent& ev) {
    ++observed;
    EXPECT_EQ(ev.sender, a);
    EXPECT_EQ(ev.bytes, 2u);
  });
  sim.SendDatagram(a, 0, sim.PrimaryAddress(b), {1, 2});
  sim.RunUntilIdle();
  EXPECT_EQ(observed, 1);
}

TEST_F(SimulatorTest, ConnectAssignsDistinctP2pSubnets) {
  const NodeId a = sim.AddNode("a", true);
  const NodeId b = sim.AddNode("b", true);
  const NodeId c = sim.AddNode("c", true);
  const SubnetId ab = sim.Connect(a, b);
  const SubnetId bc = sim.Connect(b, c);
  EXPECT_NE(sim.subnet(ab).address, sim.subnet(bc).address);
  EXPECT_FALSE(sim.subnet(ab).multi_access);
  // Addresses of the two ends differ and are contained in the subnet.
  const auto& s = sim.subnet(ab);
  EXPECT_TRUE(s.address.Contains(sim.PrimaryAddress(a)));
}

TEST_F(SimulatorTest, TopologyEpochBumpsOnEveryChange) {
  const NodeId a = sim.AddNode("a", true);
  const NodeId b = sim.AddNode("b", true);
  const SubnetId link = sim.Connect(a, b);
  const auto e0 = sim.topology_epoch();
  sim.SetSubnetUp(link, false);
  EXPECT_GT(sim.topology_epoch(), e0);
  const auto e1 = sim.topology_epoch();
  sim.SetSubnetUp(link, false);  // no-op: already down
  EXPECT_EQ(sim.topology_epoch(), e1);
  sim.SetSubnetUp(link, true);
  sim.SetInterfaceUp(a, 0, false);
  sim.SetNodeUp(b, false);
  EXPECT_GE(sim.topology_epoch(), e1 + 3);
}

TEST_F(SimulatorTest, BroadcastAddressReachesAllAttachments) {
  const SubnetId lan = sim.AddSubnet(
      "lan", SubnetAddress::FromPrefix(Ipv4Address(10, 1, 0, 0), 16));
  const NodeId a = sim.AddNode("a", true);
  const NodeId b = sim.AddNode("b", true);
  const NodeId c = sim.AddNode("c", false);
  sim.Attach(a, lan);
  sim.Attach(b, lan);
  sim.Attach(c, lan);
  RecordingAgent rb, rc;
  sim.SetAgent(b, &rb);
  sim.SetAgent(c, &rc);
  sim.SendDatagram(a, 0, Ipv4Address(0xFFFFFFFFu), {1});
  sim.RunUntilIdle();
  EXPECT_EQ(rb.deliveries.size(), 1u);
  EXPECT_EQ(rc.deliveries.size(), 1u);
}

TEST_F(SimulatorTest, LinkSourceReportedToAgent) {
  const NodeId a = sim.AddNode("a", true);
  const NodeId b = sim.AddNode("b", true);
  sim.Connect(a, b);
  struct SrcAgent : NetworkAgent {
    Ipv4Address seen_src;
    void OnDatagram(VifIndex, Ipv4Address link_src, Ipv4Address,
                    std::span<const std::uint8_t>) override {
      seen_src = link_src;
    }
  } agent;
  sim.SetAgent(b, &agent);
  sim.SendDatagram(a, 0, sim.PrimaryAddress(b), {1});
  sim.RunUntilIdle();
  EXPECT_EQ(agent.seen_src, sim.PrimaryAddress(a));
}

TEST_F(SimulatorTest, TimerCancelsOnReschedule) {
  int fired = 0;
  Timer t(sim);
  t.Schedule(10, [&] { fired = 1; });
  t.Schedule(20, [&] { fired = 2; });  // replaces the first
  sim.RunUntilIdle();
  EXPECT_EQ(fired, 2);
}

TEST_F(SimulatorTest, FindNodeByAddressAndName) {
  const NodeId a = sim.AddNode("alpha", true);
  const SubnetId lan = sim.AddSubnet(
      "lan", SubnetAddress::FromPrefix(Ipv4Address(10, 1, 0, 0), 16));
  sim.Attach(a, lan);
  EXPECT_EQ(sim.FindNodeByAddress(Ipv4Address(10, 1, 0, 1)), a);
  EXPECT_EQ(sim.FindNodeByName("alpha"), a);
  EXPECT_FALSE(sim.FindNodeByAddress(Ipv4Address(10, 9, 0, 1)).has_value());
  EXPECT_FALSE(sim.FindNodeByName("beta").has_value());
}

}  // namespace
}  // namespace cbt::netsim
