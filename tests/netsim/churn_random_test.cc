// Seeded randomized churn harness: thousands of join/leave/send/flap/
// restart operations against a CbtDomain, with the whole-domain invariant
// auditor required to come up clean at every quiesce point. This
// foregrounds the dynamic-membership workloads of the multicast
// evaluation literature (Cho & Breen): the tree must stay structurally
// sound no matter how members come and go, and the event-engine rebuild
// must not change that.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "analysis/invariant_auditor.h"
#include "cbt/domain.h"
#include "common/random.h"
#include "netsim/topologies.h"

namespace cbt::core {
namespace {

using netsim::Simulator;
using netsim::Topology;

constexpr int kOps = 2000;
constexpr int kOpsPerQuiesce = 250;
constexpr int kGroups = 3;

Ipv4Address GroupAddr(int g) {
  return Ipv4Address(239, 77, 0, static_cast<std::uint8_t>(g + 1));
}

CbtConfig TightConfig() {
  CbtConfig config;
  config.echo_interval = 5 * kSecond;
  config.echo_timeout = 15 * kSecond;
  config.pend_join_interval = 2 * kSecond;
  config.pend_join_timeout = 8 * kSecond;
  config.expire_pending_join = 30 * kSecond;
  config.child_assert_interval = 10 * kSecond;
  config.child_assert_expire = 25 * kSecond;
  config.iff_scan_interval = 60 * kSecond;
  config.reconnect_timeout = 30 * kSecond;
  config.proxy_refresh_interval = 20 * kSecond;
  return config;
}

igmp::IgmpConfig TightIgmp() {
  igmp::IgmpConfig config;
  config.query_interval = 15 * kSecond;
  config.query_response_interval = 4 * kSecond;
  return config;
}

class RandomChurn : public ::testing::TestWithParam<std::uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, RandomChurn,
                         ::testing::Values(2, 13, 31, 47, 71));

TEST_P(RandomChurn, AuditorCleanAtEveryQuiesce) {
  const std::uint64_t seed = GetParam();
  Simulator sim(seed);
  netsim::WaxmanParams wp;
  wp.n = 16;
  wp.seed = seed * 13 + 5;
  Topology topo = netsim::MakeWaxman(sim, wp);
  CbtDomain domain(sim, topo, TightConfig(), TightIgmp());
  Rng rng(seed * 1009 + 3);

  for (int g = 0; g < kGroups; ++g) {
    // Distinct cores per group so churn exercises several trees at once.
    const NodeId core =
        topo.routers[rng.NextBelow(topo.routers.size())];
    domain.RegisterGroup(GroupAddr(g), {core});
  }
  domain.Start();
  sim.RunUntil(kSecond);

  std::vector<HostAgent*> hosts;
  for (std::size_t i = 0; i < topo.router_lans.size(); ++i) {
    hosts.push_back(
        &domain.AddHost(topo.router_lans[i], "h" + std::to_string(i)));
  }

  analysis::InvariantAuditor auditor(domain);
  std::vector<SubnetId> flapped;
  int quiesce_points = 0;

  for (int op = 1; op <= kOps; ++op) {
    const std::uint64_t dice = rng.NextBelow(100);
    const std::size_t h = rng.NextBelow(hosts.size());
    const int g = static_cast<int>(rng.NextBelow(kGroups));
    if (dice < 35) {
      hosts[h]->JoinGroup(GroupAddr(g));
    } else if (dice < 55) {
      hosts[h]->LeaveGroup(GroupAddr(g));
    } else if (dice < 75) {
      hosts[h]->SendToGroup(GroupAddr(g), std::vector<std::uint8_t>{0xcc});
    } else if (dice < 85) {
      const SubnetId victim(
          static_cast<std::int32_t>(rng.NextBelow(sim.subnet_count())));
      sim.SetSubnetUp(victim, false);
      flapped.push_back(victim);
    } else if (dice < 95 && !flapped.empty()) {
      sim.SetSubnetUp(flapped.back(), true);
      flapped.pop_back();
    } else {
      const NodeId victim =
          topo.routers[rng.NextBelow(topo.routers.size())];
      domain.router(victim).SimulateRestart();
    }
    sim.RunUntil(sim.Now() + kSecond +
                 static_cast<SimDuration>(rng.NextBelow(2 * kSecond)));

    if (op % kOpsPerQuiesce == 0 || op == kOps) {
      // Quiesce: heal every outstanding fault and demand full structural
      // convergence before churn resumes.
      for (const SubnetId s : flapped) sim.SetSubnetUp(s, true);
      flapped.clear();
      const auto clean =
          analysis::RunUntilInvariantsHold(domain, sim.Now() + 300 * kSecond);
      ASSERT_TRUE(clean.has_value())
          << "seed " << seed << " op " << op << " never converged:\n"
          << auditor.Audit().Summary();
      const analysis::AuditReport report = auditor.Audit();
      ASSERT_TRUE(report.Clean())
          << "seed " << seed << " op " << op << ":\n" << report.Summary();
      ++quiesce_points;
    }
  }
  EXPECT_EQ(quiesce_points, kOps / kOpsPerQuiesce);
}

}  // namespace
}  // namespace cbt::core
