// Seeded randomized churn harness: thousands of join/leave/send/flap/
// restart operations against a CbtDomain, with the whole-domain invariant
// auditor required to come up clean at every quiesce point. This
// foregrounds the dynamic-membership workloads of the multicast
// evaluation literature (Cho & Breen): the tree must stay structurally
// sound no matter how members come and go, and the event-engine rebuild
// must not change that.
//
// The same harness also runs under the space-parallel PDES runtime
// (exec/pdes/) at several shard and worker-thread counts: every quiesce
// point must still audit clean, the sharded runs must agree with each
// other exactly, and the converged tree structure must match the classic
// serial engine (whose event interleaving — and thus message counts —
// legitimately differs; see the determinism notes in pdes/runtime.h).
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "analysis/invariant_auditor.h"
#include "cbt/domain.h"
#include "common/random.h"
#include "exec/pdes/runtime.h"
#include "netsim/topologies.h"

namespace cbt::core {
namespace {

using netsim::Simulator;
using netsim::Topology;

constexpr int kOps = 2000;
constexpr int kOpsPerQuiesce = 250;
constexpr int kGroups = 3;

Ipv4Address GroupAddr(int g) {
  return Ipv4Address(239, 77, 0, static_cast<std::uint8_t>(g + 1));
}

CbtConfig TightConfig() {
  CbtConfig config;
  config.echo_interval = 5 * kSecond;
  config.echo_timeout = 15 * kSecond;
  config.pend_join_interval = 2 * kSecond;
  config.pend_join_timeout = 8 * kSecond;
  config.expire_pending_join = 30 * kSecond;
  config.child_assert_interval = 10 * kSecond;
  config.child_assert_expire = 25 * kSecond;
  config.iff_scan_interval = 60 * kSecond;
  config.reconnect_timeout = 30 * kSecond;
  config.proxy_refresh_interval = 20 * kSecond;
  return config;
}

igmp::IgmpConfig TightIgmp() {
  igmp::IgmpConfig config;
  config.query_interval = 15 * kSecond;
  config.query_response_interval = 4 * kSecond;
  return config;
}

/// Converged end-of-run structure: per-group on-tree router sets and
/// confirmed member-host sets (both sorted) plus the total FIB state.
/// Purely protocol state — no timing, no message counts — so it is
/// comparable across event engines.
struct ChurnOutcome {
  std::map<int, std::vector<std::uint32_t>> on_tree;
  std::map<int, std::vector<std::uint32_t>> members;    // host IsMember
  std::map<int, std::vector<std::uint32_t>> confirmed;  // host JoinConfirmed
  std::size_t fib_state = 0;
  int quiesce_points = 0;

  bool operator==(const ChurnOutcome&) const = default;
};

/// One full churn run. `shards` 0 = classic serial engine; otherwise the
/// PDES runtime with `threads` forced worker threads (so the window
/// barriers run even on single-core machines). The op schedule is drawn
/// from a private Rng, so it is identical across engines.
void RunChurn(std::uint64_t seed, int shards, int threads,
              ChurnOutcome* out) {
  Simulator sim(seed);
  netsim::WaxmanParams wp;
  wp.n = 16;
  wp.seed = seed * 13 + 5;
  Topology topo = netsim::MakeWaxman(sim, wp);
  // Outlives the domain: timer dtors cancel through the backend.
  std::unique_ptr<exec::pdes::Runtime> pdes;
  CbtDomain domain(sim, topo, TightConfig(), TightIgmp());
  if (shards > 0) {
    pdes = std::make_unique<exec::pdes::Runtime>(sim, shards, threads);
    pdes->Install();
    domain.ShardRoutes(pdes->region_count(),
                       [&pdes](NodeId id) { return pdes->RegionOf(id); });
  }
  Rng rng(seed * 1009 + 3);

  for (int g = 0; g < kGroups; ++g) {
    // Distinct cores per group so churn exercises several trees at once.
    const NodeId core =
        topo.routers[rng.NextBelow(topo.routers.size())];
    domain.RegisterGroup(GroupAddr(g), {core});
  }
  domain.Start();
  sim.RunUntil(kSecond);

  std::vector<HostAgent*> hosts;
  for (std::size_t i = 0; i < topo.router_lans.size(); ++i) {
    hosts.push_back(
        &domain.AddHost(topo.router_lans[i], "h" + std::to_string(i)));
  }

  analysis::InvariantAuditor auditor(domain);
  std::vector<SubnetId> flapped;
  int quiesce_points = 0;

  for (int op = 1; op <= kOps; ++op) {
    const std::uint64_t dice = rng.NextBelow(100);
    const std::size_t h = rng.NextBelow(hosts.size());
    const int g = static_cast<int>(rng.NextBelow(kGroups));
    if (dice < 35) {
      hosts[h]->JoinGroup(GroupAddr(g));
    } else if (dice < 55) {
      hosts[h]->LeaveGroup(GroupAddr(g));
    } else if (dice < 75) {
      hosts[h]->SendToGroup(GroupAddr(g), std::vector<std::uint8_t>{0xcc});
    } else if (dice < 85) {
      const SubnetId victim(
          static_cast<std::int32_t>(rng.NextBelow(sim.subnet_count())));
      sim.SetSubnetUp(victim, false);
      flapped.push_back(victim);
    } else if (dice < 95 && !flapped.empty()) {
      sim.SetSubnetUp(flapped.back(), true);
      flapped.pop_back();
    } else {
      const NodeId victim =
          topo.routers[rng.NextBelow(topo.routers.size())];
      domain.router(victim).SimulateRestart();
    }
    sim.RunUntil(sim.Now() + kSecond +
                 static_cast<SimDuration>(rng.NextBelow(2 * kSecond)));

    if (op % kOpsPerQuiesce == 0 || op == kOps) {
      // Quiesce: heal every outstanding fault and demand full structural
      // convergence before churn resumes.
      for (const SubnetId s : flapped) sim.SetSubnetUp(s, true);
      flapped.clear();
      const auto clean =
          analysis::RunUntilInvariantsHold(domain, sim.Now() + 300 * kSecond);
      ASSERT_TRUE(clean.has_value())
          << "seed " << seed << " op " << op << " never converged:\n"
          << auditor.Audit().Summary();
      const analysis::AuditReport report = auditor.Audit();
      ASSERT_TRUE(report.Clean())
          << "seed " << seed << " op " << op << ":\n" << report.Summary();
      ++quiesce_points;
    }
  }

  out->quiesce_points = quiesce_points;
  out->fib_state = domain.TotalFibState();
  for (int g = 0; g < kGroups; ++g) {
    std::vector<std::uint32_t> routers;
    for (const NodeId id : domain.OnTreeRouters(GroupAddr(g))) {
      routers.push_back(id.value());
    }
    std::sort(routers.begin(), routers.end());
    out->on_tree[g] = std::move(routers);
    std::vector<std::uint32_t> members;
    std::vector<std::uint32_t> confirmed;
    for (std::size_t i = 0; i < hosts.size(); ++i) {
      if (hosts[i]->IsMember(GroupAddr(g))) {
        members.push_back(static_cast<std::uint32_t>(i));
      }
      if (hosts[i]->JoinConfirmed(GroupAddr(g))) {
        confirmed.push_back(static_cast<std::uint32_t>(i));
      }
    }
    out->members[g] = std::move(members);
    out->confirmed[g] = std::move(confirmed);
  }
}

class RandomChurn : public ::testing::TestWithParam<std::uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, RandomChurn,
                         ::testing::Values(2, 13, 31, 47, 71));

TEST_P(RandomChurn, AuditorCleanAtEveryQuiesce) {
  ChurnOutcome outcome;
  RunChurn(GetParam(), /*shards=*/0, /*threads=*/0, &outcome);
  EXPECT_EQ(outcome.quiesce_points, kOps / kOpsPerQuiesce);
}

TEST_P(RandomChurn, ShardedRunsAgreeAndMatchSerialStructure) {
  const std::uint64_t seed = GetParam();
  ChurnOutcome serial;
  RunChurn(seed, /*shards=*/0, /*threads=*/0, &serial);
  ASSERT_EQ(serial.quiesce_points, kOps / kOpsPerQuiesce);

  ChurnOutcome one_region;
  RunChurn(seed, /*shards=*/1, /*threads=*/1, &one_region);
  ChurnOutcome four_regions;
  RunChurn(seed, /*shards=*/4, /*threads=*/2, &four_regions);

  // Sharded runs must agree with each other exactly — region count and
  // worker-thread count are not allowed to change anything.
  EXPECT_EQ(one_region, four_regions);
  // Against the serial engine the comparison is structural, not exact:
  // the op schedule (and hence the host-side membership history) is
  // identical, so the member sets must match — but branch geometry (and
  // with it the on-tree sets, FIB totals, even which in-flight join
  // confirmations beat a leave) may legitimately differ, because event
  // interleaving is engine-specific (different tie rule, different RNG
  // streams; see pdes/runtime.h). Both outcomes audit clean for the
  // same membership at every quiesce point.
  EXPECT_EQ(one_region.members, serial.members);
  EXPECT_EQ(one_region.quiesce_points, serial.quiesce_points);
  // Every group with members must have a tree in both engines.
  for (int g = 0; g < kGroups; ++g) {
    if (!serial.members.at(g).empty()) {
      EXPECT_FALSE(one_region.on_tree.at(g).empty()) << "group " << g;
    }
  }
}

}  // namespace
}  // namespace cbt::core
