#include <gtest/gtest.h>

#include <bit>
#include <vector>

#include "netsim/simulator.h"

namespace cbt::netsim {
namespace {

/// Records every datagram plus its delivery time.
class TimedAgent : public NetworkAgent {
 public:
  explicit TimedAgent(Simulator& sim) : sim_(&sim) {}
  struct Delivery {
    SimTime at;
    std::vector<std::uint8_t> bytes;
  };
  void OnDatagram(VifIndex, Ipv4Address, Ipv4Address,
                  std::span<const std::uint8_t> datagram) override {
    deliveries.push_back(
        {sim_->Now(),
         std::vector<std::uint8_t>(datagram.begin(), datagram.end())});
  }
  std::vector<Delivery> deliveries;

 private:
  Simulator* sim_;
};

class FaultModelTest : public ::testing::Test {
 protected:
  void SetUp() override {
    link = sim.Connect(a, b, 2 * kMillisecond);
    sim.SetAgent(b, &rb);
  }

  Simulator sim{7};
  NodeId a = sim.AddNode("a", true);
  NodeId b = sim.AddNode("b", true);
  SubnetId link;
  TimedAgent rb{sim};
};

TEST_F(FaultModelTest, DuplicationDeliversAnExtraTrailingCopy) {
  FaultProfile faults;
  faults.duplicate_rate = 1.0;
  sim.SetSubnetFaults(link, faults);

  for (int i = 0; i < 5; ++i) {
    sim.SendDatagram(a, 0, sim.PrimaryAddress(b), {static_cast<uint8_t>(i)});
  }
  sim.RunUntilIdle();

  EXPECT_EQ(rb.deliveries.size(), 10u);
  EXPECT_EQ(sim.subnet(link).counters.frames_duplicated, 5u);
  // The duplicate carries identical bytes.
  EXPECT_EQ(rb.deliveries[0].bytes, rb.deliveries[1].bytes);
}

TEST_F(FaultModelTest, ReorderJitterStaysWithinBound) {
  FaultProfile faults;
  faults.reorder_rate = 1.0;
  faults.reorder_jitter = 5 * kMillisecond;
  sim.SetSubnetFaults(link, faults);

  for (int i = 0; i < 50; ++i) {
    sim.SendDatagram(a, 0, sim.PrimaryAddress(b), {static_cast<uint8_t>(i)});
  }
  sim.RunUntilIdle();

  ASSERT_EQ(rb.deliveries.size(), 50u);
  EXPECT_EQ(sim.subnet(link).counters.frames_reordered, 50u);
  for (const auto& d : rb.deliveries) {
    EXPECT_GT(d.at, 2 * kMillisecond);                    // base delay
    EXPECT_LE(d.at, 2 * kMillisecond + 5 * kMillisecond);  // + jitter cap
  }
}

TEST_F(FaultModelTest, ReorderingCanInvertDeliveryOrder) {
  FaultProfile faults;
  faults.reorder_rate = 1.0;
  faults.reorder_jitter = 20 * kMillisecond;
  sim.SetSubnetFaults(link, faults);
  sim.SendDatagram(a, 0, sim.PrimaryAddress(b), {1});  // jittered
  sim.SetSubnetFaults(link, FaultProfile{});
  sim.SendDatagram(a, 0, sim.PrimaryAddress(b), {2});  // clean, overtakes
  sim.RunUntilIdle();

  ASSERT_EQ(rb.deliveries.size(), 2u);
  EXPECT_EQ(rb.deliveries[0].bytes, (std::vector<std::uint8_t>{2}));
  EXPECT_EQ(rb.deliveries[1].bytes, (std::vector<std::uint8_t>{1}));
}

TEST_F(FaultModelTest, CorruptionFlipsExactlyOneBitPerCopy) {
  FaultProfile faults;
  faults.corrupt_rate = 1.0;
  sim.SetSubnetFaults(link, faults);

  const std::vector<std::uint8_t> sent = {0x00, 0xFF, 0x55, 0xAA};
  sim.SendDatagram(a, 0, sim.PrimaryAddress(b), sent);
  sim.RunUntilIdle();

  ASSERT_EQ(rb.deliveries.size(), 1u);
  EXPECT_EQ(sim.subnet(link).counters.frames_corrupted, 1u);
  const auto& got = rb.deliveries[0].bytes;
  ASSERT_EQ(got.size(), sent.size());
  int flipped_bits = 0;
  for (std::size_t i = 0; i < sent.size(); ++i) {
    flipped_bits += std::popcount(static_cast<unsigned>(sent[i] ^ got[i]));
  }
  EXPECT_EQ(flipped_bits, 1);
}

TEST_F(FaultModelTest, CorruptionLeavesOtherReceiversClean) {
  // Faults apply per receiver copy: on a LAN, one receiver's corrupted
  // copy must not mutate what the others see.
  Simulator lan_sim(7);
  const SubnetId lan = lan_sim.AddSubnet(
      "lan", SubnetAddress::FromPrefix(Ipv4Address(10, 1, 0, 0), 16));
  const NodeId s = lan_sim.AddNode("s", true);
  const NodeId r1 = lan_sim.AddNode("r1", true);
  const NodeId r2 = lan_sim.AddNode("r2", true);
  lan_sim.Attach(s, lan);
  lan_sim.Attach(r1, lan);
  lan_sim.Attach(r2, lan);
  TimedAgent a1{lan_sim}, a2{lan_sim};
  lan_sim.SetAgent(r1, &a1);
  lan_sim.SetAgent(r2, &a2);
  FaultProfile faults;
  faults.corrupt_rate = 0.5;
  lan_sim.SetSubnetFaults(lan, faults);

  const std::vector<std::uint8_t> sent(32, 0x5A);
  for (int i = 0; i < 64; ++i) {
    lan_sim.SendDatagram(s, 0, Ipv4Address(0xFFFFFFFFu), sent);
  }
  lan_sim.RunUntilIdle();

  ASSERT_EQ(a1.deliveries.size(), 64u);
  ASSERT_EQ(a2.deliveries.size(), 64u);
  const auto corrupted = lan_sim.subnet(lan).counters.frames_corrupted;
  EXPECT_GT(corrupted, 0u);
  EXPECT_LT(corrupted, 128u);  // some copies stayed clean
  std::size_t mangled = 0;
  for (const auto* agent : {&a1, &a2}) {
    for (const auto& d : agent->deliveries) {
      if (d.bytes != sent) ++mangled;
    }
  }
  EXPECT_EQ(mangled, corrupted);
}

TEST_F(FaultModelTest, EmptyProfileDrawsNoRandomness) {
  // Arming a zero-rate profile must not perturb the RNG stream: the
  // loss pattern (which does draw) has to stay identical with and
  // without the no-op profile installed.
  const auto run = [](bool arm_empty_profile) {
    Simulator s(42);
    const NodeId x = s.AddNode("x", true);
    const NodeId y = s.AddNode("y", true);
    const SubnetId l = s.Connect(x, y);
    TimedAgent ry{s};
    s.SetAgent(y, &ry);
    if (arm_empty_profile) s.SetSubnetFaults(l, FaultProfile{});
    s.SetSubnetLossRate(l, 0.4);
    for (int i = 0; i < 100; ++i) {
      s.SendDatagram(x, 0, s.PrimaryAddress(y), {static_cast<uint8_t>(i)});
    }
    s.RunUntilIdle();
    std::vector<std::uint8_t> survivors;
    for (const auto& d : ry.deliveries) survivors.push_back(d.bytes[0]);
    return survivors;
  };
  EXPECT_EQ(run(false), run(true));
}

TEST_F(FaultModelTest, ComposedFaultsKeepCountersConsistent) {
  FaultProfile faults;
  faults.loss_rate = 0.2;
  faults.duplicate_rate = 0.3;
  faults.reorder_rate = 0.5;
  faults.reorder_jitter = 10 * kMillisecond;
  faults.corrupt_rate = 0.2;
  sim.SetSubnetFaults(link, faults);

  const int sends = 400;
  for (int i = 0; i < sends; ++i) {
    sim.SendDatagram(a, 0, sim.PrimaryAddress(b), {static_cast<uint8_t>(i)});
  }
  sim.RunUntilIdle();

  const SubnetCounters& c = sim.subnet(link).counters;
  EXPECT_EQ(c.frames_sent, static_cast<std::uint64_t>(sends));
  EXPECT_GT(c.frames_dropped, 0u);
  EXPECT_GT(c.frames_duplicated, 0u);
  EXPECT_GT(c.frames_reordered, 0u);
  EXPECT_GT(c.frames_corrupted, 0u);
  // Deliveries = survivors + their duplicates.
  EXPECT_EQ(rb.deliveries.size(),
            sends - c.frames_dropped + c.frames_duplicated);
}

}  // namespace
}  // namespace cbt::netsim
