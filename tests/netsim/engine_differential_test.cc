// Differential tests: the timer-wheel engine must be observationally
// identical to the legacy heap engine — same execution order at the
// queue level, and byte-identical protocol-level stats when a whole
// simulation (join latency, chaos soak) is replayed on both engines at
// the same seed. This is the parity proof that lets the wheel replace
// the heap without perturbing any seeded experiment.
#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "analysis/invariant_auditor.h"
#include "cbt/domain.h"
#include "common/random.h"
#include "netsim/chaos.h"
#include "netsim/event_queue.h"
#include "netsim/topologies.h"

namespace cbt::netsim {
namespace {

// --- Queue-level differential harness --------------------------------------

/// Runs a seeded random schedule/cancel/run workload against one engine
/// and returns the (time, tag) trace of every fired event.
std::vector<std::pair<SimTime, int>> QueueTrace(EventQueue::Engine engine,
                                                std::uint64_t seed) {
  Rng rng(seed);
  EventQueue q(engine);
  std::vector<std::pair<SimTime, int>> trace;
  std::vector<EventId> live;
  SimTime clock = 0;
  int tag = 0;
  for (int round = 0; round < 200; ++round) {
    // Burst of schedules at mixed horizons: same-tick, near, cross-level,
    // far-future (overflow territory), with plenty of time collisions.
    const int n = static_cast<int>(1 + rng.NextBelow(20));
    for (int i = 0; i < n; ++i) {
      SimTime when = clock;
      switch (rng.NextBelow(4)) {
        case 0:
          when += static_cast<SimTime>(rng.NextBelow(8));  // collisions
          break;
        case 1:
          when += static_cast<SimTime>(rng.NextBelow(50'000));
          break;
        case 2:
          when += static_cast<SimTime>(rng.NextBelow(100'000'000));
          break;
        default:
          when += static_cast<SimTime>(rng.NextBelow(60'000'000'000));
          break;
      }
      const int t = tag++;
      live.push_back(q.ScheduleAt(
          when, [&trace, when, t] { trace.emplace_back(when, t); }));
    }
    // Cancel a random subset (the *same logical* subset on both engines:
    // the RNG stream and live-list layout are engine independent).
    const int cancels = static_cast<int>(rng.NextBelow(n + 1));
    for (int i = 0; i < cancels && !live.empty(); ++i) {
      const std::size_t pick = rng.NextBelow(live.size());
      q.Cancel(live[pick]);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
    }
    // Run a random number of events.
    const int runs = static_cast<int>(rng.NextBelow(25));
    for (int i = 0; i < runs; ++i) {
      if (!q.RunNext(clock)) break;
    }
  }
  while (q.RunNext(clock)) {
  }
  return trace;
}

class EngineDifferential : public ::testing::TestWithParam<std::uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, EngineDifferential,
                         ::testing::Values(1, 7, 23, 51, 97));

TEST_P(EngineDifferential, QueueExecutionTracesIdentical) {
  const auto wheel = QueueTrace(EventQueue::Engine::kTimerWheel, GetParam());
  const auto legacy = QueueTrace(EventQueue::Engine::kLegacyHeap, GetParam());
  ASSERT_EQ(wheel.size(), legacy.size());
  for (std::size_t i = 0; i < wheel.size(); ++i) {
    ASSERT_EQ(wheel[i], legacy[i]) << "divergence at event " << i;
  }
}

// --- Full-simulation differentials ------------------------------------------

constexpr Ipv4Address kGroup(239, 42, 42, 42);

/// The E2/E5 join-latency experiment in miniature: joins hosts one by one
/// on a line topology and records every latency plus the control totals.
std::string JoinLatencyStats(EventQueue::Engine engine) {
  Simulator sim(1, engine);
  Topology topo = MakeLine(sim, 8);
  core::CbtDomain domain(sim, topo);
  domain.RegisterGroup(kGroup, {topo.routers[0]});
  domain.Start();
  sim.RunUntil(kSecond);

  std::ostringstream out;
  for (std::size_t i = 0; i < topo.router_lans.size(); ++i) {
    core::HostAgent& host =
        domain.AddHost(topo.router_lans[i], "h" + std::to_string(i));
    const SimTime start = sim.Now();
    host.JoinGroup(kGroup);
    std::optional<SimTime> confirmed;
    while (sim.Now() < start + 30 * kSecond) {
      sim.RunUntil(sim.Now() + kMillisecond);
      if (host.JoinConfirmed(kGroup)) {
        confirmed = sim.Now();
        break;
      }
    }
    out << "join " << i << " latency_us "
        << (confirmed ? *confirmed - start : -1) << "\n";
  }
  out << "control " << domain.TotalControlMessages() << "\n";
  out << "fib " << domain.TotalFibState() << "\n";
  return out.str();
}

TEST(EngineDifferential, JoinLatencyByteIdenticalAcrossEngines) {
  const std::string wheel = JoinLatencyStats(EventQueue::Engine::kTimerWheel);
  const std::string legacy = JoinLatencyStats(EventQueue::Engine::kLegacyHeap);
  EXPECT_EQ(wheel, legacy);
  EXPECT_NE(wheel.find("control"), std::string::npos);
}

core::CbtConfig TightConfig() {
  core::CbtConfig config;
  config.echo_interval = 5 * kSecond;
  config.echo_timeout = 15 * kSecond;
  config.pend_join_interval = 2 * kSecond;
  config.pend_join_timeout = 8 * kSecond;
  config.expire_pending_join = 30 * kSecond;
  config.child_assert_interval = 10 * kSecond;
  config.child_assert_expire = 25 * kSecond;
  config.iff_scan_interval = 60 * kSecond;
  config.reconnect_timeout = 30 * kSecond;
  config.proxy_refresh_interval = 20 * kSecond;
  return config;
}

igmp::IgmpConfig TightIgmp() {
  igmp::IgmpConfig config;
  config.query_interval = 15 * kSecond;
  config.query_response_interval = 4 * kSecond;
  return config;
}

/// A compressed chaos soak (grid topology, seeded fault plan, steady
/// traffic, recovery probes) whose full result — fault classes, recovery
/// times, delivery and control totals — is serialized for comparison.
std::string ChaosSoakStats(EventQueue::Engine engine, std::uint64_t seed) {
  Simulator sim(1, engine);
  Topology topo = MakeGrid(sim, 4, 4);
  core::CbtDomain domain(sim, topo, TightConfig(), TightIgmp());
  domain.RegisterGroup(kGroup, {topo.routers[0], topo.routers[15]});
  domain.Start();
  sim.RunUntil(kSecond);

  std::vector<core::HostAgent*> hosts;
  for (const std::size_t lan : {std::size_t{3}, std::size_t{5},
                                std::size_t{10}, std::size_t{12}}) {
    hosts.push_back(
        &domain.AddHost(topo.router_lans[lan], "m" + std::to_string(lan)));
    hosts.back()->JoinGroup(kGroup);
  }

  std::vector<NodeId> crashable(topo.routers.begin() + 1,
                                topo.routers.end() - 1);
  std::vector<SubnetId> flappable;
  for (std::size_t s = 0; s < sim.subnet_count(); ++s) {
    const SubnetId sid(static_cast<std::int32_t>(s));
    if (std::find(topo.router_lans.begin(), topo.router_lans.end(), sid) ==
        topo.router_lans.end()) {
      flappable.push_back(sid);
    }
  }

  ChaosPlanParams params;
  params.event_count = 12;
  params.start = 90 * kSecond;
  params.min_gap = 60 * kSecond;
  params.max_gap = 120 * kSecond;
  params.min_down = 5 * kSecond;
  params.max_down = 20 * kSecond;
  const ChaosPlan plan = MakeRandomPlan(seed, params, crashable, flappable);
  ChaosInjector injector(sim, domain.ChaosHooks());
  injector.Arm(plan);

  const SimTime traffic_end = plan.LastRepairTime() + 120 * kSecond;
  std::uint64_t sends = 0;
  for (SimTime t = 30 * kSecond; t < traffic_end; t += 2 * kSecond) {
    sim.ScheduleAt(t, [&hosts] {
      hosts[0]->SendToGroup(kGroup, std::vector<std::uint8_t>{0xda});
    });
    ++sends;
  }

  std::ostringstream out;
  out << plan.Describe();
  if (!analysis::RunUntilInvariantsHold(domain, params.start - kSecond)) {
    out << "warmup: FAILED\n";
  }
  for (std::size_t i = 0; i < plan.events.size(); ++i) {
    const ChaosEvent& e = plan.events[i];
    sim.RunUntil(e.repair_at());
    SimTime deadline = e.repair_at() + 240 * kSecond;
    if (i + 1 < plan.events.size()) {
      deadline = std::min(deadline, plan.events[i + 1].at - kSecond);
    }
    const auto clean = analysis::RunUntilInvariantsHold(domain, deadline);
    out << "event " << i << " " << ChaosEventTypeName(e.type) << " recovery "
        << (clean ? *clean - e.at : -1) << "\n";
  }
  sim.RunUntil(traffic_end);
  std::uint64_t delivered = 0;
  for (std::size_t i = 1; i < hosts.size(); ++i) {
    delivered += hosts[i]->ReceivedCount(kGroup);
  }
  out << "sends " << sends << " delivered " << delivered << "\n";
  out << "control " << domain.TotalControlMessages() << "\n";
  analysis::InvariantAuditor auditor(domain);
  out << auditor.Audit().Summary();
  return out.str();
}

TEST(EngineDifferential, ChaosSoakByteIdenticalAcrossEngines) {
  const std::string wheel =
      ChaosSoakStats(EventQueue::Engine::kTimerWheel, 11);
  const std::string legacy =
      ChaosSoakStats(EventQueue::Engine::kLegacyHeap, 11);
  EXPECT_EQ(wheel, legacy);
  EXPECT_NE(wheel.find("delivered"), std::string::npos);
  EXPECT_EQ(wheel.find("FAILED"), std::string::npos);
}

}  // namespace
}  // namespace cbt::netsim
