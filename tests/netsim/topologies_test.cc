#include "netsim/topologies.h"

#include <gtest/gtest.h>

#include "routing/route_manager.h"

namespace cbt::netsim {
namespace {

TEST(Figure1, HasAllNamedEntities) {
  Simulator sim;
  const Topology topo = MakeFigure1(sim);
  for (int i = 1; i <= 12; ++i) {
    EXPECT_TRUE(topo.nodes.contains("R" + std::to_string(i))) << i;
  }
  for (int i = 1; i <= 15; ++i) {
    EXPECT_TRUE(topo.subnets.contains("S" + std::to_string(i))) << i;
  }
  for (const char* host : {"A", "B", "C", "D", "E", "F", "G", "H", "I", "J",
                           "K", "L"}) {
    EXPECT_TRUE(topo.nodes.contains(host)) << host;
  }
  EXPECT_EQ(topo.routers.size(), 12u);
  EXPECT_EQ(topo.hosts.size(), 12u);
}

TEST(Figure1, NarrativeRoutesHold) {
  // The spec's section 2.5/2.6 walkthroughs pin down several next hops.
  Simulator sim;
  const Topology topo = MakeFigure1(sim);
  routing::RouteManager routes(sim);

  const Ipv4Address r4 = sim.PrimaryAddress(topo.node("R4"));

  // "R1 ... unicast a JOIN-REQUEST ... to the next-hop on the path to R4
  // (R3)".
  const auto r1_route = routes.Lookup(topo.node("R1"), r4);
  ASSERT_TRUE(r1_route.has_value());
  EXPECT_EQ(sim.FindNodeByAddress(r1_route->next_hop), topo.node("R3"));

  // "R6's routing table says the next-hop on the path to R4 is R2, which
  // is on the same subnet as R6."
  const auto r6_route = routes.Lookup(topo.node("R6"), r4);
  ASSERT_TRUE(r6_route.has_value());
  EXPECT_EQ(sim.FindNodeByAddress(r6_route->next_hop), topo.node("R2"));
  const Interface& out = sim.interface(topo.node("R6"), r6_route->vif);
  EXPECT_EQ(sim.subnet(out.subnet).name, "S4");

  // "R9 unicasts a JOIN_REQUEST to R8, its best next-hop to the primary
  // core, R4."
  const auto r9_route = routes.Lookup(topo.node("R9"), r4);
  ASSERT_TRUE(r9_route.has_value());
  EXPECT_EQ(sim.FindNodeByAddress(r9_route->next_hop), topo.node("R8"));
}

TEST(Figure1, R6IsLowestAddressedOnS4) {
  // R6 must win the querier election (and thus D-DR duty) on S4.
  Simulator sim;
  const Topology topo = MakeFigure1(sim);
  const auto& s4 = sim.subnet(topo.subnet("S4"));
  Ipv4Address lowest(0xFFFFFFFFu);
  NodeId lowest_node;
  for (const auto& [node, vif] : s4.attachments) {
    if (!sim.node(node).is_router) continue;
    const Ipv4Address addr = sim.interface(node, vif).address;
    if (addr < lowest) {
      lowest = addr;
      lowest_node = node;
    }
  }
  EXPECT_EQ(lowest_node, topo.node("R6"));
}

TEST(Line, IsAChain) {
  Simulator sim;
  const Topology topo = MakeLine(sim, 5);
  EXPECT_EQ(topo.routers.size(), 5u);
  routing::RouteManager routes(sim);
  EXPECT_DOUBLE_EQ(routes.Distance(topo.routers[0], topo.routers[4]), 4.0);
  EXPECT_EQ(topo.router_lans.size(), 5u);
}

TEST(Star, HubIsOneHopFromEverySpoke) {
  Simulator sim;
  const Topology topo = MakeStar(sim, 6);
  routing::RouteManager routes(sim);
  for (std::size_t i = 1; i < topo.routers.size(); ++i) {
    EXPECT_DOUBLE_EQ(routes.Distance(topo.routers[0], topo.routers[i]), 1.0);
  }
  // Spokes are two hops from each other, via the hub.
  EXPECT_DOUBLE_EQ(routes.Distance(topo.routers[1], topo.routers[2]), 2.0);
}

TEST(Grid, ManhattanDistances) {
  Simulator sim;
  const Topology topo = MakeGrid(sim, 4, 3);
  EXPECT_EQ(topo.routers.size(), 12u);
  routing::RouteManager routes(sim);
  // Opposite corners: (0,0) to (3,2) = 5 hops.
  EXPECT_DOUBLE_EQ(routes.Distance(topo.routers[0], topo.routers[11]), 5.0);
}

TEST(BinaryTree, DepthMatches) {
  Simulator sim;
  const Topology topo = MakeBinaryTree(sim, 4);
  EXPECT_EQ(topo.routers.size(), 15u);
  routing::RouteManager routes(sim);
  // Root to deepest leaf: 3 hops; leaf to sibling-subtree leaf: 6.
  EXPECT_DOUBLE_EQ(routes.Distance(topo.routers[0], topo.routers[14]), 3.0);
  EXPECT_DOUBLE_EQ(routes.Distance(topo.routers[7], topo.routers[14]), 6.0);
}

TEST(Waxman, IsConnectedAndDeterministic) {
  Simulator sim1, sim2;
  WaxmanParams params;
  params.n = 40;
  params.seed = 99;
  const Topology t1 = MakeWaxman(sim1, params);
  const Topology t2 = MakeWaxman(sim2, params);
  EXPECT_EQ(sim1.subnet_count(), sim2.subnet_count());

  routing::RouteManager routes(sim1);
  for (const NodeId r : t1.routers) {
    EXPECT_LT(routes.Distance(t1.routers[0], r),
              routing::RouteManager::kInfinity);
  }
}

TEST(Waxman, DifferentSeedsGiveDifferentGraphs) {
  Simulator sim1, sim2;
  WaxmanParams a, b;
  a.n = b.n = 40;
  a.seed = 1;
  b.seed = 2;
  MakeWaxman(sim1, a);
  MakeWaxman(sim2, b);
  EXPECT_NE(sim1.subnet_count(), sim2.subnet_count());
}

TEST(Figure5, RingPlusTail) {
  Simulator sim;
  const Topology topo = MakeFigure5Loop(sim);
  EXPECT_EQ(topo.routers.size(), 6u);
  routing::RouteManager routes(sim);
  // R1 reaches R5 through R2-R3-R4 (3 hops to R4, 4 to R5 going the short
  // way via R3-R4 or R3-R6-R5 — both length 4 from R1... actual: R1-R2-R3
  // then min(R4-R5, R6-R5) -> 4 hops). Just require connectivity and the
  // ring's alternative path.
  EXPECT_DOUBLE_EQ(routes.Distance(topo.node("R1"), topo.node("R3")), 2.0);
  EXPECT_DOUBLE_EQ(routes.Distance(topo.node("R3"), topo.node("R5")), 2.0);
}

TEST(TransitStub, ConnectedWithHierarchicalDelays) {
  Simulator sim;
  TransitStubParams params;
  params.seed = 7;
  const Topology topo = MakeTransitStub(sim, params);
  EXPECT_EQ(topo.routers.size(),
            (std::size_t)(params.transit_nodes +
                          params.stub_domains * params.stub_size));
  routing::RouteManager routes(sim);
  // Fully connected.
  for (const NodeId r : topo.routers) {
    EXPECT_LT(routes.Distance(topo.routers[0], r),
              routing::RouteManager::kInfinity);
  }
  // Stub-to-stub paths cross the slow transit backbone: delay between two
  // routers in different stubs must include at least one 10ms transit hop
  // whenever their attachment points differ. Weak check: the maximum
  // router-pair delay comfortably exceeds the pure-stub delay budget.
  SimDuration max_delay = 0;
  for (const NodeId a : topo.routers) {
    max_delay = std::max(max_delay, routes.PathDelay(topo.routers[0], a));
  }
  EXPECT_GT(max_delay, 2 * params.stub_delay * params.stub_size);
}

TEST(TransitStub, DeterministicPerSeed) {
  Simulator a, b;
  TransitStubParams params;
  params.seed = 99;
  MakeTransitStub(a, params);
  MakeTransitStub(b, params);
  EXPECT_EQ(a.subnet_count(), b.subnet_count());
}

TEST(AttachHost, AddsHostToLan) {
  Simulator sim;
  Topology topo = MakeLine(sim, 2);
  const NodeId host = AttachHost(sim, topo, topo.router_lans[0], "h0");
  EXPECT_FALSE(sim.node(host).is_router);
  EXPECT_EQ(topo.hosts.size(), 1u);
  EXPECT_EQ(sim.node(host).interfaces.size(), 1u);
}

}  // namespace
}  // namespace cbt::netsim
