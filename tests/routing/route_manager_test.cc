#include "routing/route_manager.h"

#include <gtest/gtest.h>

#include "netsim/topologies.h"

namespace cbt::routing {
namespace {

using netsim::MakeFigure1;
using netsim::MakeLine;
using netsim::Simulator;
using netsim::Topology;

TEST(RouteManager, DirectAttachmentHasZeroCost) {
  Simulator sim;
  Topology topo = MakeLine(sim, 3);
  RouteManager routes(sim);
  const NodeId r0 = topo.routers[0];
  const Ipv4Address own_lan_host =
      sim.subnet(topo.router_lans[0]).address.HostAddress(200);
  const auto route = routes.Lookup(r0, own_lan_host);
  ASSERT_TRUE(route.has_value());
  EXPECT_EQ(route->hop_count, 0);
  EXPECT_EQ(route->next_hop, own_lan_host);  // deliver straight on the LAN
}

TEST(RouteManager, MultiHopNextHopIsFirstNeighbor) {
  Simulator sim;
  Topology topo = MakeLine(sim, 4);
  RouteManager routes(sim);
  // Target a host address on the far router's stub LAN so the whole chain
  // must be crossed.
  const Ipv4Address target =
      sim.subnet(topo.router_lans[3]).address.HostAddress(7);
  const auto route = routes.Lookup(topo.routers[0], target);
  ASSERT_TRUE(route.has_value());
  EXPECT_EQ(sim.FindNodeByAddress(route->next_hop), topo.routers[1]);
  EXPECT_EQ(route->hop_count, 3);
}

TEST(RouteManager, RecomputesAfterLinkFailure) {
  Simulator sim;
  // Square: r0-r1, r1-r3, r0-r2, r2-r3. Kill r0-r1; r0 must go via r2.
  const NodeId r0 = sim.AddNode("r0", true);
  const NodeId r1 = sim.AddNode("r1", true);
  const NodeId r2 = sim.AddNode("r2", true);
  const NodeId r3 = sim.AddNode("r3", true);
  const SubnetId l01 = sim.Connect(r0, r1);
  sim.Connect(r1, r3);
  sim.Connect(r0, r2);
  sim.Connect(r2, r3);
  RouteManager routes(sim);

  const Ipv4Address r3_addr = sim.PrimaryAddress(r3);
  const auto before = routes.Lookup(r0, r3_addr);
  ASSERT_TRUE(before.has_value());

  sim.SetSubnetUp(l01, false);
  const auto after = routes.Lookup(r0, r3_addr);
  ASSERT_TRUE(after.has_value());
  EXPECT_EQ(sim.FindNodeByAddress(after->next_hop), r2);
  EXPECT_EQ(after->hop_count, 2);
}

TEST(RouteManager, UnreachableReturnsNullopt) {
  Simulator sim;
  const NodeId r0 = sim.AddNode("r0", true);
  const NodeId r1 = sim.AddNode("r1", true);
  const SubnetId link = sim.Connect(r0, r1);
  RouteManager routes(sim);
  sim.SetSubnetUp(link, false);
  // r1's address resolves to a down subnet — no route.
  EXPECT_FALSE(routes.Lookup(r0, sim.PrimaryAddress(r1)).has_value());
}

TEST(RouteManager, HostsDoNotTransit) {
  Simulator sim;
  // r0 --lanA-- host --lanB-- r1: no router path exists through the host.
  const NodeId r0 = sim.AddNode("r0", true);
  const NodeId r1 = sim.AddNode("r1", true);
  const NodeId h = sim.AddNode("h", false);
  const SubnetId lan_a = sim.AddSubnet(
      "lanA", SubnetAddress::FromPrefix(Ipv4Address(10, 1, 0, 0), 16));
  const SubnetId lan_b = sim.AddSubnet(
      "lanB", SubnetAddress::FromPrefix(Ipv4Address(10, 2, 0, 0), 16));
  sim.Attach(r0, lan_a);
  sim.Attach(h, lan_a);
  sim.Attach(h, lan_b);
  sim.Attach(r1, lan_b);
  RouteManager routes(sim);
  EXPECT_EQ(routes.Distance(r0, r1), RouteManager::kInfinity);
}

TEST(RouteManager, TieBreaksOnLowestNextHopAddress) {
  Simulator sim;
  const Topology topo = MakeFigure1(sim);
  RouteManager routes(sim);
  // R6 -> R4: R2 (10.4.0.2) and R5 (10.4.0.3) are both 3 hops; the spec's
  // narrative requires R2 to win ("R2 (the lower addressed) wins").
  const auto route =
      routes.Lookup(topo.node("R6"), sim.PrimaryAddress(topo.node("R4")));
  ASSERT_TRUE(route.has_value());
  EXPECT_EQ(sim.FindNodeByAddress(route->next_hop), topo.node("R2"));
}

TEST(RouteManager, StaticOverrideWinsAndClears) {
  Simulator sim;
  Topology topo = MakeLine(sim, 3);
  RouteManager routes(sim);
  const NodeId r0 = topo.routers[0];
  const NodeId r2 = topo.routers[2];
  const Ipv4Address target =
      sim.subnet(topo.router_lans[2]).address.HostAddress(1);

  // Force r0 to send via its own LAN interface (nonsense route, but ours).
  const VifIndex lan_vif = 1;  // vif order: p2p first? find LAN vif:
  VifIndex vif = kInvalidVif;
  for (const auto& iface : sim.node(r0).interfaces) {
    if (iface.subnet == topo.router_lans[0]) vif = iface.vif;
  }
  ASSERT_NE(vif, kInvalidVif);
  (void)lan_vif;
  routes.SetStaticNextHop(r0, sim.interface(r2, 0).subnet, vif,
                          Ipv4Address(1, 2, 3, 4));
  (void)target;
  const auto forced = routes.Lookup(r0, sim.PrimaryAddress(r2));
  ASSERT_TRUE(forced.has_value());
  EXPECT_EQ(forced->next_hop, Ipv4Address(1, 2, 3, 4));

  routes.ClearStaticNextHops();
  const auto normal = routes.Lookup(r0, sim.PrimaryAddress(r2));
  ASSERT_TRUE(normal.has_value());
  EXPECT_EQ(sim.FindNodeByAddress(normal->next_hop), topo.routers[1]);
}

TEST(RouteManager, PathListsAllNodes) {
  Simulator sim;
  Topology topo = MakeLine(sim, 4);
  RouteManager routes(sim);
  const auto path = routes.Path(topo.routers[0], topo.routers[3]);
  ASSERT_EQ(path.size(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(path[(std::size_t)i], topo.routers[(std::size_t)i]);
}

TEST(RouteManager, PathDelayAccumulates) {
  Simulator sim;
  Topology topo = MakeLine(sim, 3, 5 * kMillisecond);
  RouteManager routes(sim);
  EXPECT_EQ(routes.PathDelay(topo.routers[0], topo.routers[2]),
            10 * kMillisecond);
}

TEST(RouteManager, IsDirectlyAttached) {
  Simulator sim;
  Topology topo = MakeLine(sim, 2);
  RouteManager routes(sim);
  const NodeId r0 = topo.routers[0];
  EXPECT_TRUE(routes.IsDirectlyAttached(
      r0, sim.subnet(topo.router_lans[0]).address.HostAddress(9)));
  EXPECT_FALSE(routes.IsDirectlyAttached(
      r0, sim.subnet(topo.router_lans[1]).address.HostAddress(9)));
}

TEST(RouteManager, AsymmetricCostsProduceAsymmetricRoutes) {
  Simulator sim;
  // Triangle with one expensive direction: a->b direct costs 5, so a
  // prefers a->c->b (2); b->a direct still costs 1. Targets are stub LANs
  // so the route is not short-circuited by direct subnet delivery.
  const NodeId a = sim.AddNode("a", true);
  const NodeId b = sim.AddNode("b", true);
  const NodeId c = sim.AddNode("c", true);
  const SubnetId ab = sim.Connect(a, b);
  sim.Connect(a, c);
  sim.Connect(c, b);
  const SubnetId lan_a = sim.AddSubnet(
      "lanA", SubnetAddress::FromPrefix(Ipv4Address(10, 1, 0, 0), 16));
  const SubnetId lan_b = sim.AddSubnet(
      "lanB", SubnetAddress::FromPrefix(Ipv4Address(10, 2, 0, 0), 16));
  sim.Attach(a, lan_a);
  sim.Attach(b, lan_b);
  // Raise a's outgoing cost on the a-b link only.
  for (auto& iface : sim.node(a).interfaces) {
    if (iface.subnet == ab) iface.cost = 5.0;
  }
  RouteManager routes(sim);
  routes.Invalidate();

  const auto a_to_b = routes.Lookup(a, Ipv4Address(10, 2, 0, 99));
  ASSERT_TRUE(a_to_b.has_value());
  EXPECT_EQ(sim.FindNodeByAddress(a_to_b->next_hop), c);

  const auto b_to_a = routes.Lookup(b, Ipv4Address(10, 1, 0, 99));
  ASSERT_TRUE(b_to_a.has_value());
  EXPECT_EQ(sim.FindNodeByAddress(b_to_a->next_hop), a);
}

}  // namespace
}  // namespace cbt::routing
