// Additional routing-substrate coverage: epoch-driven recomputation,
// longest-prefix resolution, disconnection, and LAN transit behaviour.
#include <gtest/gtest.h>

#include "netsim/topologies.h"
#include "routing/route_manager.h"

namespace cbt::routing {
namespace {

using netsim::MakeLine;
using netsim::Simulator;
using netsim::Topology;

TEST(RouteManagerEdge, LongestPrefixWins) {
  Simulator sim;
  const NodeId r0 = sim.AddNode("r0", true);
  const NodeId r1 = sim.AddNode("r1", true);
  const NodeId r2 = sim.AddNode("r2", true);
  sim.Connect(r0, r1);
  sim.Connect(r0, r2);
  // r1 serves the /16; r2 serves a more-specific /24 inside it.
  const SubnetId wide = sim.AddSubnet(
      "wide", SubnetAddress::FromPrefix(Ipv4Address(10, 50, 0, 0), 16));
  const SubnetId narrow = sim.AddSubnet(
      "narrow", SubnetAddress::FromPrefix(Ipv4Address(10, 50, 7, 0), 24));
  sim.Attach(r1, wide);
  sim.Attach(r2, narrow);
  RouteManager routes(sim);

  const auto in_narrow = routes.Lookup(r0, Ipv4Address(10, 50, 7, 42));
  ASSERT_TRUE(in_narrow.has_value());
  EXPECT_EQ(sim.FindNodeByAddress(in_narrow->next_hop), r2);

  const auto in_wide_only = routes.Lookup(r0, Ipv4Address(10, 50, 8, 42));
  ASSERT_TRUE(in_wide_only.has_value());
  EXPECT_EQ(sim.FindNodeByAddress(in_wide_only->next_hop), r1);
}

TEST(RouteManagerEdge, NoSubnetCoversAddress) {
  Simulator sim;
  Topology topo = MakeLine(sim, 2);
  RouteManager routes(sim);
  EXPECT_FALSE(
      routes.Lookup(topo.routers[0], Ipv4Address(203, 0, 113, 1)).has_value());
}

TEST(RouteManagerEdge, EpochChangeRecomputesAutomatically) {
  Simulator sim;
  Topology topo = MakeLine(sim, 3);
  RouteManager routes(sim);
  const Ipv4Address far =
      sim.subnet(topo.router_lans[2]).address.HostAddress(5);
  ASSERT_TRUE(routes.Lookup(topo.routers[0], far).has_value());

  // Take the middle hop's interfaces down one by one: every change bumps
  // the epoch and the next Lookup must see fresh state without any
  // manual invalidation.
  sim.SetNodeUp(topo.routers[1], false);
  EXPECT_FALSE(routes.Lookup(topo.routers[0], far).has_value());
  sim.SetNodeUp(topo.routers[1], true);
  EXPECT_TRUE(routes.Lookup(topo.routers[0], far).has_value());
}

TEST(RouteManagerEdge, PathEmptyWhenDisconnected) {
  Simulator sim;
  Topology topo = MakeLine(sim, 3);
  RouteManager routes(sim);
  sim.SetSubnetUp(topo.subnets.at("link0"), false);
  EXPECT_TRUE(routes.Path(topo.routers[0], topo.routers[2]).empty());
  EXPECT_EQ(routes.Distance(topo.routers[0], topo.routers[2]),
            RouteManager::kInfinity);
}

TEST(RouteManagerEdge, SelfDistanceIsZero) {
  Simulator sim;
  Topology topo = MakeLine(sim, 2);
  RouteManager routes(sim);
  EXPECT_DOUBLE_EQ(routes.Distance(topo.routers[0], topo.routers[0]), 0.0);
  const auto path = routes.Path(topo.routers[0], topo.routers[0]);
  ASSERT_EQ(path.size(), 1u);
  EXPECT_EQ(path[0], topo.routers[0]);
}

TEST(RouteManagerEdge, LanTransitCountsOneHopPerSubnet) {
  // Three routers on one LAN: each pair is one hop, not two.
  Simulator sim;
  const NodeId a = sim.AddNode("a", true);
  const NodeId b = sim.AddNode("b", true);
  const NodeId c = sim.AddNode("c", true);
  const SubnetId lan = sim.AddSubnet(
      "lan", SubnetAddress::FromPrefix(Ipv4Address(10, 1, 0, 0), 16));
  sim.Attach(a, lan);
  sim.Attach(b, lan);
  sim.Attach(c, lan);
  RouteManager routes(sim);
  EXPECT_DOUBLE_EQ(routes.Distance(a, b), 1.0);
  EXPECT_DOUBLE_EQ(routes.Distance(a, c), 1.0);
}

TEST(RouteManagerEdge, DownInterfaceExcludedEvenIfSubnetUp) {
  Simulator sim;
  const NodeId a = sim.AddNode("a", true);
  const NodeId b = sim.AddNode("b", true);
  const NodeId c = sim.AddNode("c", true);
  sim.Connect(a, b);
  sim.Connect(b, c);
  sim.Connect(a, c, kMillisecond, /*cost=*/5.0);  // expensive backup
  RouteManager routes(sim);
  const auto direct = routes.Lookup(a, sim.PrimaryAddress(c));
  ASSERT_TRUE(direct.has_value());
  // Normally via b (cost 2 < 5)... note c's primary address is on the b-c
  // link, whose subnet a is not attached to.
  EXPECT_EQ(sim.FindNodeByAddress(direct->next_hop), b);

  // Kill only b's interface toward c (vif 1 on b).
  sim.SetInterfaceUp(b, 1, false);
  const auto rerouted = routes.Lookup(a, sim.PrimaryAddress(c));
  ASSERT_TRUE(rerouted.has_value());
  EXPECT_EQ(sim.FindNodeByAddress(rerouted->next_hop), c)
      << "must fall back to the direct expensive link";
}

}  // namespace
}  // namespace cbt::routing
