// Lazy scoped-invalidation route manager: equivalence with the eager
// recompute strategy, warm-table bookkeeping, the LPM index, and the
// static-override liveness fix (docs/PROTOCOL.md "Unicast routing &
// invalidation model").
#include <gtest/gtest.h>

#include "common/random.h"
#include "netsim/topologies.h"
#include "routing/route_manager.h"

namespace cbt::routing {
namespace {

using netsim::MakeFigure1;
using netsim::MakeGrid;
using netsim::MakeLine;
using netsim::Simulator;
using netsim::Topology;

bool SameRoute(const std::optional<Route>& a, const std::optional<Route>& b) {
  if (a.has_value() != b.has_value()) return false;
  if (!a) return true;
  return a->vif == b->vif && a->next_hop == b->next_hop &&
         a->cost == b->cost && a->hop_count == b->hop_count &&
         a->delay == b->delay;
}

/// A square with a tie between the two r0->r3 paths (broken toward r1 by
/// lowest next-hop address): r0's shortest-path tree uses l01, l02 and
/// l13, but provably not l23 — the canonical warm-keep case.
struct Square {
  Simulator sim;
  NodeId r0, r1, r2, r3;
  SubnetId l01, l13, l02, l23;

  Square() {
    r0 = sim.AddNode("r0", true);
    r1 = sim.AddNode("r1", true);
    r2 = sim.AddNode("r2", true);
    r3 = sim.AddNode("r3", true);
    l01 = sim.Connect(r0, r1);
    l13 = sim.Connect(r1, r3);
    l02 = sim.Connect(r0, r2);
    l23 = sim.Connect(r2, r3);
  }
};

TEST(RouteManagerLazy, MatchesEagerUnderRandomChurn) {
  for (const std::uint64_t seed : {1u, 7u, 23u, 51u, 97u}) {
    Simulator sim;
    Topology topo = MakeGrid(sim, 4, 4);
    RouteManager lazy(sim, RouteManager::Mode::kLazy);
    RouteManager eager(sim, RouteManager::Mode::kEager);
    Rng rng(seed);
    const std::size_t n = topo.routers.size();

    for (int step = 0; step < 150; ++step) {
      // 1-3 topology changes per batch, so the journal-batch path (several
      // epochs between queries) is exercised, not just single deltas.
      const int batch = 1 + static_cast<int>(rng.NextBelow(3));
      for (int c = 0; c < batch; ++c) {
        const NodeId node = topo.routers[rng.NextBelow(n)];
        switch (rng.NextBelow(3)) {
          case 0:
            sim.SetSubnetUp(
                SubnetId(static_cast<std::int32_t>(
                    rng.NextBelow(sim.subnet_count()))),
                rng.NextBool(0.6));
            break;
          case 1: {
            const auto& ifaces = sim.node(node).interfaces;
            sim.SetInterfaceUp(node,
                               static_cast<VifIndex>(
                                   rng.NextBelow(ifaces.size())),
                               rng.NextBool(0.6));
            break;
          }
          case 2:
            sim.SetNodeUp(node, rng.NextBool(0.8));
            break;
        }
      }
      for (int q = 0; q < 3; ++q) {
        const NodeId from = topo.routers[rng.NextBelow(n)];
        const NodeId to = topo.routers[rng.NextBelow(n)];
        const Ipv4Address dest = sim.PrimaryAddress(to);
        ASSERT_TRUE(SameRoute(lazy.Lookup(from, dest),
                              eager.Lookup(from, dest)))
            << "seed " << seed << " step " << step;
        ASSERT_EQ(lazy.Distance(from, to), eager.Distance(from, to));
        ASSERT_EQ(lazy.PathDelay(from, to), eager.PathDelay(from, to));
        ASSERT_EQ(lazy.Path(from, to), eager.Path(from, to))
            << "seed " << seed << " step " << step;
      }
    }
    // The whole point: lazy must not do more Dijkstra work than eager.
    EXPECT_LE(lazy.stats().tables_computed, eager.stats().tables_computed)
        << "seed " << seed;
  }
}

TEST(RouteManagerLazy, ScopedChangeKeepsUnaffectedTablesWarm) {
  Square sq;
  RouteManager routes(sq.sim);
  for (const NodeId r : {sq.r0, sq.r1, sq.r2, sq.r3}) {
    routes.Distance(r, sq.r0);  // warm all four tables
  }
  routes.ResetStats();

  // l23 is not on r0's shortest-path tree: its table must stay warm.
  sq.sim.SetSubnetUp(sq.l23, false);
  EXPECT_EQ(routes.Distance(sq.r0, sq.r3), 2.0);
  EXPECT_EQ(routes.stats().tables_computed, 0u);
  EXPECT_GE(routes.stats().tables_kept_warm, 1u);

  // r2 routed to r3 over l23: its table must recompute (now via r0, r1).
  EXPECT_EQ(routes.Distance(sq.r2, sq.r3), 3.0);
  EXPECT_EQ(routes.stats().tables_computed, 1u);
}

TEST(RouteManagerLazy, EpochChangeInvalidatesWithoutExplicitCall) {
  Square sq;
  RouteManager routes(sq.sim);
  EXPECT_EQ(routes.Distance(sq.r2, sq.r3), 1.0);
  sq.sim.SetSubnetUp(sq.l23, false);
  EXPECT_EQ(routes.Distance(sq.r2, sq.r3), 3.0);
  sq.sim.SetSubnetUp(sq.l23, true);
  EXPECT_EQ(routes.Distance(sq.r2, sq.r3), 1.0);
}

TEST(RouteManagerLazy, OnlyRecomputesQueriedSources) {
  Simulator sim;
  Topology topo = MakeGrid(sim, 4, 4);
  RouteManager routes(sim);
  for (const NodeId r : topo.routers) routes.Distance(r, topo.routers[0]);
  routes.ResetStats();

  // Down a corner router's stub LAN, then query a single source. Eager
  // recomputed all 16 tables here; lazy runs at most the one queried
  // Dijkstra (zero if the warm check proves the table unaffected).
  sim.SetSubnetUp(topo.router_lans.back(), false);
  routes.Lookup(topo.routers[0], sim.PrimaryAddress(topo.routers[5]));
  EXPECT_LE(routes.stats().tables_computed, 1u);
}

TEST(RouteManagerLazy, TableVersionStableWhileUnaffected) {
  Square sq;
  RouteManager routes(sq.sim);
  const std::uint64_t v0 = routes.TableVersion(sq.r0);
  EXPECT_EQ(routes.TableVersion(sq.r0), v0);  // repeated query: no motion

  sq.sim.SetSubnetUp(sq.l23, false);  // not on r0's tree
  EXPECT_EQ(routes.TableVersion(sq.r0), v0);

  sq.sim.SetSubnetUp(sq.l01, false);  // on r0's tree
  const std::uint64_t v1 = routes.TableVersion(sq.r0);
  EXPECT_GT(v1, v0);
}

// Regression: a static next-hop override (tunnel) must not be served while
// its vif or destination subnet is down — the computed route wins until
// the override's path revives.
TEST(RouteManagerLazy, OverrideSkippedWhileItsPathIsDown) {
  Simulator sim;
  Topology topo = MakeLine(sim, 3);
  RouteManager routes(sim);
  const NodeId r0 = topo.routers[0];
  const NodeId r1 = topo.routers[1];
  const NodeId r2 = topo.routers[2];
  const Ipv4Address dest = sim.PrimaryAddress(r2);
  const SubnetId dest_subnet = *routes.ResolveSubnet(dest);

  VifIndex lan_vif = kInvalidVif;
  for (const auto& iface : sim.node(r0).interfaces) {
    if (iface.subnet == topo.router_lans[0]) lan_vif = iface.vif;
  }
  ASSERT_NE(lan_vif, kInvalidVif);
  const Ipv4Address tunnel_peer(1, 2, 3, 4);
  routes.SetStaticNextHop(r0, dest_subnet, lan_vif, tunnel_peer);
  ASSERT_EQ(routes.Lookup(r0, dest)->next_hop, tunnel_peer);

  // Tunnel vif goes down: fall through to the computed route via r1.
  sim.SetInterfaceUp(r0, lan_vif, false);
  auto route = routes.Lookup(r0, dest);
  ASSERT_TRUE(route.has_value());
  EXPECT_EQ(sim.FindNodeByAddress(route->next_hop), r1);

  // Vif back up: the override revives (it survives recomputes).
  sim.SetInterfaceUp(r0, lan_vif, true);
  EXPECT_EQ(routes.Lookup(r0, dest)->next_hop, tunnel_peer);

  // Same flap at subnet granularity.
  sim.SetSubnetUp(topo.router_lans[0], false);
  route = routes.Lookup(r0, dest);
  ASSERT_TRUE(route.has_value());
  EXPECT_EQ(sim.FindNodeByAddress(route->next_hop), r1);
  sim.SetSubnetUp(topo.router_lans[0], true);
  EXPECT_EQ(routes.Lookup(r0, dest)->next_hop, tunnel_peer);

  // Destination subnet down: the computed route is nullopt, and the
  // override (whose egress vif is still live) must not outlive it.
  sim.SetSubnetUp(dest_subnet, false);
  EXPECT_FALSE(routes.Lookup(r0, dest).has_value());
  sim.SetSubnetUp(dest_subnet, true);
  EXPECT_EQ(routes.Lookup(r0, dest)->next_hop, tunnel_peer);
}

TEST(RouteManagerLazy, TieBreakSurvivesScopedInvalidation) {
  Simulator sim;
  const Topology topo = MakeFigure1(sim);
  RouteManager routes(sim);
  const Ipv4Address r4_addr = sim.PrimaryAddress(topo.node("R4"));
  auto route = routes.Lookup(topo.node("R6"), r4_addr);
  ASSERT_TRUE(route.has_value());
  EXPECT_EQ(sim.FindNodeByAddress(route->next_hop), topo.node("R2"));

  // Flap a stub LAN (scoped change) and re-query: the R2-vs-R5 tie must
  // still break toward the lower next-hop address.
  const SubnetId lan = topo.subnet("S8");
  sim.SetSubnetUp(lan, false);
  sim.SetSubnetUp(lan, true);
  route = routes.Lookup(topo.node("R6"), r4_addr);
  ASSERT_TRUE(route.has_value());
  EXPECT_EQ(sim.FindNodeByAddress(route->next_hop), topo.node("R2"));
}

TEST(RouteManagerLazy, HostsNeverTransitAfterChurn) {
  Simulator sim;
  const NodeId r0 = sim.AddNode("r0", true);
  const NodeId r1 = sim.AddNode("r1", true);
  const NodeId h = sim.AddNode("h", false);
  const SubnetId lan_a = sim.AddSubnet(
      "lanA", SubnetAddress::FromPrefix(Ipv4Address(10, 1, 0, 0), 16));
  const SubnetId lan_b = sim.AddSubnet(
      "lanB", SubnetAddress::FromPrefix(Ipv4Address(10, 2, 0, 0), 16));
  sim.Attach(r0, lan_a);
  sim.Attach(h, lan_a);
  sim.Attach(h, lan_b);
  sim.Attach(r1, lan_b);
  RouteManager routes(sim);
  EXPECT_EQ(routes.Distance(r0, r1), RouteManager::kInfinity);

  // Host flaps are node-scoped changes; routers must still refuse to
  // route through it after the tables reconverge.
  sim.SetNodeUp(h, false);
  EXPECT_EQ(routes.Distance(r0, r1), RouteManager::kInfinity);
  sim.SetNodeUp(h, true);
  EXPECT_EQ(routes.Distance(r0, r1), RouteManager::kInfinity);
}

TEST(RouteManagerLazy, PathReconstructsAfterPartialFailure) {
  Square sq;
  RouteManager routes(sq.sim);
  // Tie toward r1 first; then kill that path and require the detour,
  // with predecessor[] yielding the full node sequence both times.
  std::vector<NodeId> want{sq.r0, sq.r1, sq.r3};
  EXPECT_EQ(routes.Path(sq.r0, sq.r3), want);

  sq.sim.SetSubnetUp(sq.l01, false);
  want = {sq.r0, sq.r2, sq.r3};
  EXPECT_EQ(routes.Path(sq.r0, sq.r3), want);
  // r1 stays reachable the long way round; predecessor[] must chain
  // through the surviving edges only.
  want = {sq.r0, sq.r2, sq.r3, sq.r1};
  EXPECT_EQ(routes.Path(sq.r0, sq.r1), want);
}

TEST(RouteManagerLazy, LpmIndexMatchesLinearScan) {
  Simulator sim;
  const NodeId r0 = sim.AddNode("r0", true);
  // Nested prefixes: the /24 inside the /16 must win for its addresses.
  const SubnetId wide = sim.AddSubnet(
      "wide", SubnetAddress::FromPrefix(Ipv4Address(10, 1, 0, 0), 16));
  const SubnetId narrow = sim.AddSubnet(
      "narrow", SubnetAddress::FromPrefix(Ipv4Address(10, 1, 7, 0), 24));
  const SubnetId other = sim.AddSubnet(
      "other", SubnetAddress::FromPrefix(Ipv4Address(10, 2, 0, 0), 16));
  sim.Attach(r0, wide);
  sim.Attach(r0, narrow);
  sim.Attach(r0, other);

  RouteManager indexed(sim);
  RouteManager linear(sim);
  linear.set_lpm_mode(RouteManager::LpmMode::kLinearScan);

  const Ipv4Address probes[] = {
      Ipv4Address(10, 1, 7, 9),    // inside the /24
      Ipv4Address(10, 1, 8, 9),    // /16 only
      Ipv4Address(10, 2, 200, 1),  // other /16
      Ipv4Address(172, 16, 0, 1),  // no match
  };
  for (const Ipv4Address probe : probes) {
    EXPECT_EQ(indexed.ResolveSubnet(probe), linear.ResolveSubnet(probe))
        << probe.bits();
  }
  EXPECT_EQ(indexed.ResolveSubnet(Ipv4Address(10, 1, 7, 9)), narrow);
  EXPECT_EQ(indexed.ResolveSubnet(Ipv4Address(10, 2, 0, 5)), other);
  EXPECT_EQ(indexed.ResolveSubnet(Ipv4Address(172, 16, 0, 1)), std::nullopt);

  // Re-resolving the same addresses hits the direct-mapped cache, for
  // hits and misses alike.
  const std::uint64_t hits_before = indexed.stats().lpm_cache_hits;
  indexed.ResolveSubnet(Ipv4Address(10, 1, 7, 9));
  indexed.ResolveSubnet(Ipv4Address(172, 16, 0, 1));
  EXPECT_EQ(indexed.stats().lpm_cache_hits, hits_before + 2);
}

TEST(RouteManagerLazy, LpmIndexRebuildsWhenSubnetsAppear) {
  Simulator sim;
  const NodeId r0 = sim.AddNode("r0", true);
  const SubnetId first = sim.AddSubnet(
      "first", SubnetAddress::FromPrefix(Ipv4Address(10, 1, 0, 0), 16));
  sim.Attach(r0, first);
  RouteManager routes(sim);
  EXPECT_EQ(routes.ResolveSubnet(Ipv4Address(10, 9, 0, 1)), std::nullopt);

  const SubnetId second = sim.AddSubnet(
      "second", SubnetAddress::FromPrefix(Ipv4Address(10, 9, 0, 0), 16));
  sim.Attach(r0, second);
  EXPECT_EQ(routes.ResolveSubnet(Ipv4Address(10, 9, 0, 1)), second);
  EXPECT_GE(routes.stats().lpm_index_rebuilds, 2u);
}

TEST(RouteManagerLazy, EagerModeComputesAllTablesPerChange) {
  Square sq;
  RouteManager routes(sq.sim, RouteManager::Mode::kEager);
  routes.Distance(sq.r0, sq.r3);
  routes.ResetStats();
  sq.sim.SetSubnetUp(sq.l23, false);
  routes.Distance(sq.r0, sq.r3);  // one query...
  // ...but eager recomputes every router's table, reproducing the
  // historical cost profile the differential suite pins against.
  EXPECT_EQ(routes.stats().tables_computed, sq.sim.node_count());
  EXPECT_EQ(routes.stats().tables_kept_warm, 0u);
}

}  // namespace
}  // namespace cbt::routing
