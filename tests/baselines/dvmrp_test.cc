// The DVMRP-style flood-and-prune baseline: RPF flooding, truncation,
// prune propagation, prune expiry re-flood, and grafting.
#include <gtest/gtest.h>

#include "baselines/dvmrp_domain.h"
#include "netsim/topologies.h"

namespace cbt::baselines {
namespace {

using netsim::MakeLine;
using netsim::MakeStar;
using netsim::Simulator;
using netsim::Topology;

constexpr Ipv4Address kGroup(239, 10, 0, 1);
const std::vector<std::uint8_t> kPayload{7, 7};

class DvmrpLineFixture : public ::testing::Test {
 protected:
  DvmrpLineFixture() : topo(MakeLine(sim, 5)) {
    domain.emplace(sim, topo);
    domain->Start();
    sim.RunUntil(kSecond);
    sender = &domain->AddHost(topo.router_lans[0], "src");
    member = &domain->AddHost(topo.router_lans[4], "dst");
  }

  Simulator sim{1};
  Topology topo;
  std::optional<DvmrpDomain> domain;
  core::HostAgent* sender = nullptr;
  core::HostAgent* member = nullptr;
};

TEST_F(DvmrpLineFixture, FloodReachesMemberWithoutAnyJoinProtocol) {
  member->JoinGroupWithCores(kGroup, {}, 0);
  sim.RunUntil(5 * kSecond);
  sender->SendToGroup(kGroup, kPayload);
  sim.RunUntil(10 * kSecond);
  EXPECT_EQ(member->ReceivedCount(kGroup), 1u);
}

TEST_F(DvmrpLineFixture, DataCreatesPerSourceStateEverywhere) {
  member->JoinGroupWithCores(kGroup, {}, 0);
  sim.RunUntil(5 * kSecond);
  sender->SendToGroup(kGroup, kPayload);
  sim.RunUntil(10 * kSecond);
  // Every router on the line holds (S,G) state — the O(S x G) cost.
  for (const NodeId r : topo.routers) {
    EXPECT_GE(domain->router(r).ForwardingEntries(), 1u)
        << sim.node(r).name;
  }
}

TEST_F(DvmrpLineFixture, MemberlessBranchesPruneBack) {
  // No members anywhere: data floods once, prunes converge, and a second
  // packet shortly after is stopped near the source.
  sender->SendToGroup(kGroup, kPayload);
  sim.RunUntil(5 * kSecond);
  const auto& leaf = domain->router(topo.routers[4]).stats();
  EXPECT_GE(leaf.prunes_sent, 1u);

  const auto forwarded_before =
      domain->router(topo.routers[3]).stats().data_forwarded;
  sender->SendToGroup(kGroup, kPayload);
  sim.RunUntil(10 * kSecond);
  EXPECT_EQ(domain->router(topo.routers[3]).stats().data_forwarded,
            forwarded_before)
      << "pruned branch must not carry the second packet";
}

TEST_F(DvmrpLineFixture, PruneExpiryCausesReflood) {
  sender->SendToGroup(kGroup, kPayload);
  sim.RunUntil(5 * kSecond);
  const auto forwarded_before =
      domain->router(topo.routers[3]).stats().data_forwarded;
  // Past the 120s prune lifetime, traffic floods again.
  sim.RunUntil(sim.Now() + 150 * kSecond);
  sender->SendToGroup(kGroup, kPayload);
  sim.RunUntil(sim.Now() + 10 * kSecond);
  EXPECT_GT(domain->router(topo.routers[3]).stats().data_forwarded,
            forwarded_before);
}

TEST_F(DvmrpLineFixture, GraftReattachesPrunedBranch) {
  // Flood + prune first.
  sender->SendToGroup(kGroup, kPayload);
  sim.RunUntil(5 * kSecond);
  ASSERT_GE(domain->router(topo.routers[4]).stats().prunes_sent, 1u);

  // Member joins on the pruned leaf: graft must restore delivery for the
  // next packet, well before prune expiry.
  member->JoinGroupWithCores(kGroup, {}, 0);
  sim.RunUntil(sim.Now() + 5 * kSecond);
  EXPECT_GE(domain->router(topo.routers[4]).stats().grafts_sent, 1u);

  sender->SendToGroup(kGroup, kPayload);
  sim.RunUntil(sim.Now() + 10 * kSecond);
  EXPECT_EQ(member->ReceivedCount(kGroup), 1u);
}

TEST_F(DvmrpLineFixture, RpfDropsPacketsArrivingOffShortestPath) {
  member->JoinGroupWithCores(kGroup, {}, 0);
  sim.RunUntil(5 * kSecond);
  sender->SendToGroup(kGroup, kPayload);
  sim.RunUntil(10 * kSecond);
  // On a line there is no alternate path, so no RPF drops…
  EXPECT_EQ(domain->router(topo.routers[2]).stats().data_dropped_rpf, 0u);
}

TEST(DvmrpStar, RpfSuppressesDuplicatesOnMesh) {
  // Star + ring of spokes would create duplicates without RPF; with only
  // the star (hub) the flood fans out once per spoke.
  Simulator sim{1};
  Topology topo = MakeStar(sim, 4);
  DvmrpDomain domain(sim, topo);
  domain.Start();
  sim.RunUntil(kSecond);

  auto& src = domain.AddHost(topo.router_lans[1], "src");
  auto& dst1 = domain.AddHost(topo.router_lans[2], "d1");
  auto& dst2 = domain.AddHost(topo.router_lans[3], "d2");
  dst1.JoinGroupWithCores(kGroup, {}, 0);
  dst2.JoinGroupWithCores(kGroup, {}, 0);
  sim.RunUntil(5 * kSecond);

  src.SendToGroup(kGroup, kPayload);
  sim.RunUntil(10 * kSecond);
  EXPECT_EQ(dst1.ReceivedCount(kGroup), 1u);
  EXPECT_EQ(dst2.ReceivedCount(kGroup), 1u);
}

TEST_F(DvmrpLineFixture, GraftIsAcknowledgedHopByHop) {
  sender->SendToGroup(kGroup, kPayload);
  sim.RunUntil(5 * kSecond);
  ASSERT_GE(domain->router(topo.routers[4]).stats().prunes_sent, 1u);

  member->JoinGroupWithCores(kGroup, {}, 0);
  sim.RunUntil(sim.Now() + 10 * kSecond);
  const auto& leaf = domain->router(topo.routers[4]).stats();
  EXPECT_GE(leaf.grafts_sent, 1u);
  EXPECT_GE(leaf.graft_acks_received, 1u);
  EXPECT_GE(domain->router(topo.routers[3]).stats().graft_acks_sent, 1u);
}

TEST_F(DvmrpLineFixture, GraftRetransmitsUntilAcked) {
  sender->SendToGroup(kGroup, kPayload);
  sim.RunUntil(5 * kSecond);
  ASSERT_GE(domain->router(topo.routers[4]).stats().prunes_sent, 1u);

  // Make the leaf's uplink fully lossy: the graft (and/or its ack) is
  // lost, forcing retransmission; then heal the link and converge.
  const SubnetId uplink = [&] {
    for (const auto& iface : sim.node(topo.routers[4]).interfaces) {
      for (const auto& [peer, pv] : sim.subnet(iface.subnet).attachments) {
        if (peer == topo.routers[3]) return iface.subnet;
      }
    }
    return SubnetId{};
  }();
  sim.SetSubnetLossRate(uplink, 1.0);
  member->JoinGroupWithCores(kGroup, {}, 0);
  sim.RunUntil(sim.Now() + 12 * kSecond);
  sim.SetSubnetLossRate(uplink, 0.0);
  sim.RunUntil(sim.Now() + 30 * kSecond);

  const auto& leaf = domain->router(topo.routers[4]).stats();
  EXPECT_GE(leaf.graft_retransmits, 1u);
  EXPECT_GE(leaf.graft_acks_received, 1u);

  sender->SendToGroup(kGroup, kPayload);
  sim.RunUntil(sim.Now() + 10 * kSecond);
  EXPECT_EQ(member->ReceivedCount(kGroup), 1u);
}

TEST(DvmrpCycle, NonRpfArrivalsPrunedOnMesh) {
  // 2x2 grid: floods reach some routers over non-RPF links; those
  // routers must send prunes back (the RFC 1075 leaf-detection path) and
  // the duplicates stop for subsequent packets.
  Simulator sim{1};
  Topology topo = netsim::MakeGrid(sim, 2, 2);
  DvmrpDomain domain(sim, topo);
  domain.Start();
  sim.RunUntil(kSecond);
  auto& src = domain.AddHost(topo.router_lans[0], "src");
  auto& dst = domain.AddHost(topo.router_lans[3], "dst");
  dst.JoinGroupWithCores(kGroup, {}, 0);
  sim.RunUntil(5 * kSecond);

  src.SendToGroup(kGroup, kPayload);
  sim.RunUntil(sim.Now() + 5 * kSecond);
  EXPECT_EQ(dst.ReceivedCount(kGroup), 1u);
  std::uint64_t rpf_drops = 0, prunes = 0;
  for (const NodeId r : topo.routers) {
    rpf_drops += domain.router(r).stats().data_dropped_rpf;
    prunes += domain.router(r).stats().prunes_sent;
  }
  EXPECT_GE(rpf_drops, 1u) << "the square must produce a duplicate";
  EXPECT_GE(prunes, 1u) << "non-RPF arrivals must trigger prunes";

  // Second packet: duplicates suppressed on the pruned links, delivery
  // still exactly-once.
  const auto drops_before = rpf_drops;
  src.SendToGroup(kGroup, kPayload);
  sim.RunUntil(sim.Now() + 5 * kSecond);
  EXPECT_EQ(dst.ReceivedCount(kGroup), 2u);
  rpf_drops = 0;
  for (const NodeId r : topo.routers) {
    rpf_drops += domain.router(r).stats().data_dropped_rpf;
  }
  EXPECT_EQ(rpf_drops, drops_before)
      << "pruned non-RPF branches must not regenerate duplicates";
}

TEST(DvmrpMessageCodec, RoundTripAndValidation) {
  DvmrpMessage msg;
  msg.type = DvmrpType::kPrune;
  msg.group = Ipv4Address(239, 1, 1, 1);
  msg.source = Ipv4Address(10, 0, 0, 7);
  msg.lifetime_s = 120;
  const auto bytes = msg.Encode();
  const auto decoded = DvmrpMessage::Decode(bytes);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->type, DvmrpType::kPrune);
  EXPECT_EQ(decoded->group, Ipv4Address(239, 1, 1, 1));
  EXPECT_EQ(decoded->source, Ipv4Address(10, 0, 0, 7));
  EXPECT_EQ(decoded->lifetime_s, 120u);

  auto corrupted = bytes;
  corrupted[5] ^= 1;
  EXPECT_FALSE(DvmrpMessage::Decode(corrupted).has_value());
  EXPECT_FALSE(
      DvmrpMessage::Decode({bytes.data(), bytes.size() - 1}).has_value());
}

TEST(DvmrpStateScaling, StateGrowsWithSourcesTimesGroups) {
  // The core claim of E1 in microcosm: 2 groups x 3 sources -> at least
  // 6 (S,G) entries at a transit router.
  Simulator sim{1};
  Topology topo = MakeLine(sim, 3);
  DvmrpDomain domain(sim, topo);
  domain.Start();
  sim.RunUntil(kSecond);

  auto& m = domain.AddHost(topo.router_lans[2], "m");
  const Ipv4Address g1(239, 1, 0, 1), g2(239, 1, 0, 2);
  m.JoinGroupWithCores(g1, {}, 0);
  m.JoinGroupWithCores(g2, {}, 0);
  sim.RunUntil(5 * kSecond);

  for (int s = 0; s < 3; ++s) {
    auto& src = domain.AddHost(topo.router_lans[0], "s" + std::to_string(s));
    src.SendToGroup(g1, kPayload);
    src.SendToGroup(g2, kPayload);
  }
  sim.RunUntil(15 * kSecond);
  EXPECT_GE(domain.router(topo.routers[1]).ForwardingEntries(), 6u);
}

}  // namespace
}  // namespace cbt::baselines
