// The MOSPF-style link-state baseline: membership LSA flooding, on-demand
// source-tree computation, and forwarding.
#include <gtest/gtest.h>

#include "baselines/mospf_domain.h"
#include "netsim/topologies.h"

namespace cbt::baselines {
namespace {

using netsim::MakeGrid;
using netsim::MakeLine;
using netsim::Simulator;
using netsim::Topology;

constexpr Ipv4Address kGroup(239, 20, 0, 1);
const std::vector<std::uint8_t> kPayload{3, 3};

TEST(MembershipLsaCodec, RoundTripAndValidation) {
  MembershipLsa lsa;
  lsa.advertising_router = Ipv4Address(10, 1, 0, 1);
  lsa.group = Ipv4Address(239, 20, 0, 1);
  lsa.sequence = 42;
  lsa.member = true;
  const auto bytes = lsa.Encode();
  const auto decoded = MembershipLsa::Decode(bytes);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->advertising_router, lsa.advertising_router);
  EXPECT_EQ(decoded->group, lsa.group);
  EXPECT_EQ(decoded->sequence, 42u);
  EXPECT_TRUE(decoded->member);

  auto corrupted = bytes;
  corrupted[9] ^= 1;
  EXPECT_FALSE(MembershipLsa::Decode(corrupted).has_value());
}

class MospfFixture : public ::testing::Test {
 protected:
  MospfFixture() : topo(MakeGrid(sim, 3, 3)) {
    domain.emplace(sim, topo);
    domain->Start();
    sim.RunUntil(kSecond);
  }

  Simulator sim{1};
  Topology topo;
  std::optional<MospfDomain> domain;
};

TEST_F(MospfFixture, MembershipLsaFloodsDomainWide) {
  auto& m = domain->AddHost(topo.router_lans[8], "m");
  m.JoinGroupWithCores(kGroup, {}, 0);
  sim.RunUntil(sim.Now() + 10 * kSecond);

  // EVERY router now knows router 8 is a member — the knowledge-everywhere
  // cost the CBT paper criticises.
  for (const NodeId r : topo.routers) {
    const auto members = domain->router(r).MemberRouters(kGroup);
    ASSERT_EQ(members.size(), 1u) << sim.node(r).name;
    EXPECT_EQ(members[0], topo.routers[8]);
  }
}

TEST_F(MospfFixture, DeliveryAlongShortestPathTree) {
  auto& m1 = domain->AddHost(topo.router_lans[8], "m1");
  auto& m2 = domain->AddHost(topo.router_lans[6], "m2");
  m1.JoinGroupWithCores(kGroup, {}, 0);
  m2.JoinGroupWithCores(kGroup, {}, 0);
  sim.RunUntil(sim.Now() + 10 * kSecond);

  auto& src = domain->AddHost(topo.router_lans[0], "src");
  src.SendToGroup(kGroup, kPayload);
  sim.RunUntil(sim.Now() + 5 * kSecond);
  EXPECT_EQ(m1.ReceivedCount(kGroup), 1u);
  EXPECT_EQ(m2.ReceivedCount(kGroup), 1u);

  // Off-tree routers forwarded nothing; the tree computation ran only on
  // on-tree routers touched by the packet.
  std::uint64_t total_forwarded = 0;
  for (const NodeId r : topo.routers) {
    total_forwarded += domain->router(r).stats().data_forwarded;
  }
  // Grid SPT from corner 0 to corners 6 and 8: <= 4+4 transmissions.
  EXPECT_LE(total_forwarded, 8u);
}

TEST_F(MospfFixture, SptCacheInvalidatedByMembershipChange) {
  auto& m1 = domain->AddHost(topo.router_lans[8], "m1");
  m1.JoinGroupWithCores(kGroup, {}, 0);
  sim.RunUntil(sim.Now() + 5 * kSecond);
  auto& src = domain->AddHost(topo.router_lans[0], "src");
  src.SendToGroup(kGroup, kPayload);
  sim.RunUntil(sim.Now() + 5 * kSecond);
  ASSERT_EQ(m1.ReceivedCount(kGroup), 1u);

  // A new member appears behind a different router: the next packet must
  // reach both (cached trees recomputed thanks to the membership epoch).
  auto& m2 = domain->AddHost(topo.router_lans[2], "m2");
  m2.JoinGroupWithCores(kGroup, {}, 0);
  sim.RunUntil(sim.Now() + 10 * kSecond);
  src.SendToGroup(kGroup, kPayload);
  sim.RunUntil(sim.Now() + 5 * kSecond);
  EXPECT_EQ(m1.ReceivedCount(kGroup), 2u);
  EXPECT_EQ(m2.ReceivedCount(kGroup), 1u);
}

TEST_F(MospfFixture, LeaveWithdrawsMembershipLsa) {
  auto& m1 = domain->AddHost(topo.router_lans[8], "m1");
  m1.JoinGroupWithCores(kGroup, {}, 0);
  sim.RunUntil(sim.Now() + 10 * kSecond);
  ASSERT_EQ(domain->router(topo.routers[0]).MemberRouters(kGroup).size(), 1u);

  m1.LeaveGroup(kGroup);
  sim.RunUntil(sim.Now() + 30 * kSecond);
  EXPECT_TRUE(domain->router(topo.routers[0]).MemberRouters(kGroup).empty());
}

TEST_F(MospfFixture, TopologyChangeRecomputesTrees) {
  auto& m = domain->AddHost(topo.router_lans[8], "m");
  m.JoinGroupWithCores(kGroup, {}, 0);
  sim.RunUntil(sim.Now() + 10 * kSecond);
  auto& src = domain->AddHost(topo.router_lans[0], "src");
  src.SendToGroup(kGroup, kPayload);
  sim.RunUntil(sim.Now() + 5 * kSecond);
  ASSERT_EQ(m.ReceivedCount(kGroup), 1u);

  // Cut a link on the current tree path (corner grids route along the
  // edges); MOSPF must recompute the SPT from the topology epoch and
  // deliver over the surviving path.
  sim.SetSubnetUp(sim.interface(topo.routers[0], 0).subnet, false);
  sim.RunUntil(sim.Now() + 5 * kSecond);
  src.SendToGroup(kGroup, kPayload);
  sim.RunUntil(sim.Now() + 5 * kSecond);
  EXPECT_EQ(m.ReceivedCount(kGroup), 2u);
}

TEST(MospfLine, StateHeldEverywhereEvenOffTree) {
  // 6-router line; a single member at one end: every router, including
  // ones that will never carry traffic, holds the membership entry.
  Simulator sim{1};
  Topology topo = MakeLine(sim, 6);
  MospfDomain domain(sim, topo);
  domain.Start();
  sim.RunUntil(kSecond);
  auto& m = domain.AddHost(topo.router_lans[5], "m");
  m.JoinGroupWithCores(kGroup, {}, 0);
  sim.RunUntil(sim.Now() + 10 * kSecond);

  for (const NodeId r : topo.routers) {
    if (r == topo.routers[5]) continue;  // the member's own DR
    EXPECT_GE(domain.router(r).StateUnits(), 1u) << sim.node(r).name;
  }
}

}  // namespace
}  // namespace cbt::baselines
