// The PIM-SM-shape unidirectional RP-tree baseline: explicit joins with
// soft-state refresh, register encapsulation to the RP, downward-only
// forwarding, and prune-on-leave.
#include <gtest/gtest.h>

#include "baselines/rp_tree_domain.h"
#include "netsim/topologies.h"

namespace cbt::baselines {
namespace {

using netsim::MakeLine;
using netsim::Simulator;
using netsim::Topology;

constexpr Ipv4Address kGroup(239, 60, 0, 1);
const std::vector<std::uint8_t> kPayload{5, 5};

TEST(RpTreeMessageCodec, RoundTripAndValidation) {
  RpTreeMessage msg;
  msg.type = RpTreeMessage::Type::kJoin;
  msg.group = kGroup;
  msg.rp = Ipv4Address(10, 0, 0, 1);
  const auto decoded = RpTreeMessage::Decode(msg.Encode());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->type, RpTreeMessage::Type::kJoin);
  EXPECT_EQ(decoded->group, kGroup);
  EXPECT_EQ(decoded->rp, Ipv4Address(10, 0, 0, 1));
  auto corrupted = msg.Encode();
  corrupted[6] ^= 1;
  EXPECT_FALSE(RpTreeMessage::Decode(corrupted).has_value());
}

class RpTreeFixture : public ::testing::Test {
 protected:
  // Line r0 - r1 - r2 - r3; RP at r3; member behind r0, sender behind r2.
  RpTreeFixture() : topo(MakeLine(sim, 4)) {
    domain.emplace(sim, topo);
    domain->RegisterGroup(kGroup, topo.routers[3]);
    domain->Start();
    sim.RunUntil(kSecond);
    member = &domain->AddHost(topo.router_lans[0], "m");
    sender = &domain->AddHost(topo.router_lans[2], "s");
    member->JoinGroupWithCores(kGroup, {}, 0);
    sim.RunUntil(10 * kSecond);
  }

  Simulator sim{1};
  Topology topo;
  std::optional<RpTreeDomain> domain;
  core::HostAgent* member = nullptr;
  core::HostAgent* sender = nullptr;
};

TEST_F(RpTreeFixture, JoinBuildsBranchToRp) {
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(domain->router(topo.routers[(std::size_t)i])
                    .HasTreeState(kGroup))
        << "router " << i;
  }
  EXPECT_GE(domain->router(topo.routers[0]).stats().joins_sent, 1u);
  EXPECT_GE(domain->router(topo.routers[3]).stats().joins_received, 1u);
}

TEST_F(RpTreeFixture, SenderRegistersViaRpAndDataFlowsDown) {
  sender->SendToGroup(kGroup, kPayload);
  sim.RunUntil(sim.Now() + 5 * kSecond);
  EXPECT_EQ(member->ReceivedCount(kGroup), 1u);
  // The sender's DR (r2) registered; the packet went UP to the RP (r3)
  // and only then down the tree — the unidirectional detour.
  EXPECT_GE(domain->router(topo.routers[2]).stats().registers_sent, 1u);
  EXPECT_GE(domain->router(topo.routers[3]).stats().data_forwarded, 1u);
}

TEST_F(RpTreeFixture, DataNeverFlowsUpTheTree) {
  // A packet injected on r1's LAN (sender-side DR r1) must not be
  // accepted as tree traffic by r2 upward; it registers to the RP.
  auto& side = domain->AddHost(topo.router_lans[1], "side");
  side.SendToGroup(kGroup, kPayload);
  sim.RunUntil(sim.Now() + 5 * kSecond);
  EXPECT_EQ(member->ReceivedCount(kGroup), 1u);
  EXPECT_GE(domain->router(topo.routers[1]).stats().registers_sent, 1u);
}

TEST_F(RpTreeFixture, JoinRefreshKeepsBranchAliveAndLeavePrunesIt) {
  // Holdtime is 210s; refreshes every 60s must keep the branch.
  sim.RunUntil(sim.Now() + 600 * kSecond);
  EXPECT_TRUE(domain->router(topo.routers[1]).HasTreeState(kGroup));

  member->LeaveGroup(kGroup);
  sim.RunUntil(sim.Now() + 120 * kSecond);
  // Prunes propagate immediately on leave; only the RP keeps state.
  EXPECT_FALSE(domain->router(topo.routers[0]).HasTreeState(kGroup));
  EXPECT_FALSE(domain->router(topo.routers[1]).HasTreeState(kGroup));
  EXPECT_GE(domain->router(topo.routers[0]).stats().prunes_sent, 1u);
}

TEST_F(RpTreeFixture, BranchExpiresWhenRefreshesStop) {
  // Sever the member-side link: refreshes from r0 stop reaching r1 and
  // the downstream entry must age out within the holdtime.
  sim.SetSubnetUp(topo.subnets.at("link0"), false);
  sim.RunUntil(sim.Now() + 300 * kSecond);
  const auto& r1 = domain->router(topo.routers[1]);
  // r1 pruned itself upstream once its downstream expired.
  EXPECT_FALSE(r1.HasTreeState(kGroup));
}

TEST(RpTreeVsCbt, RegisterDetourCostsMoreHops) {
  // Line of 5 with RP/core in the middle (r2); member behind r0; sender
  // behind r1 — between member and RP. CBT (bidirectional) delivers
  // sender->r1->r0 without touching the core; the RP tree must go
  // r1 -> r2 (register) -> back down r1 -> r0: strictly more
  // transmissions on the r1-r2 links.
  Simulator sim{1};
  Topology topo = MakeLine(sim, 5);
  RpTreeDomain domain(sim, topo);
  domain.RegisterGroup(kGroup, topo.routers[2]);
  domain.Start();
  sim.RunUntil(kSecond);
  auto& m = domain.AddHost(topo.router_lans[0], "m");
  auto& s = domain.AddHost(topo.router_lans[1], "s");
  m.JoinGroupWithCores(kGroup, {}, 0);
  sim.RunUntil(10 * kSecond);

  sim.ResetCounters();
  s.SendToGroup(kGroup, kPayload);
  sim.RunUntil(sim.Now() + 5 * kSecond);
  EXPECT_EQ(m.ReceivedCount(kGroup), 1u);
  // The r1-r2 link carried the packet twice (register up, tree down).
  const SubnetId l12 = topo.subnets.at("link1");
  EXPECT_EQ(sim.subnet(l12).counters.frames_sent, 2u)
      << "unidirectional detour: up + down on the same link";
}

}  // namespace
}  // namespace cbt::baselines
