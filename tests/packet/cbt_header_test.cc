#include "packet/cbt_header.h"

#include <gtest/gtest.h>

namespace cbt::packet {
namespace {

CbtDataHeader Sample() {
  CbtDataHeader h;
  h.on_tree = false;
  h.ip_ttl = 31;
  h.group = Ipv4Address(239, 1, 2, 3);
  h.core = Ipv4Address(10, 5, 0, 1);
  h.origin = Ipv4Address(10, 1, 0, 100);
  h.flow_id = 0xCAFEBABE;
  return h;
}

TEST(CbtDataHeader, RoundTrip) {
  const auto bytes = Sample().EncodeToBytes();
  ASSERT_EQ(bytes.size(), kCbtDataHeaderSize);
  BufferReader r(bytes);
  const auto decoded = CbtDataHeader::Decode(r);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_FALSE(decoded->on_tree);
  EXPECT_EQ(decoded->ip_ttl, 31);
  EXPECT_EQ(decoded->group, Ipv4Address(239, 1, 2, 3));
  EXPECT_EQ(decoded->core, Ipv4Address(10, 5, 0, 1));
  EXPECT_EQ(decoded->origin, Ipv4Address(10, 1, 0, 100));
  EXPECT_EQ(decoded->flow_id, 0xCAFEBABEu);
}

TEST(CbtDataHeader, OnTreeBitSurvives) {
  CbtDataHeader h = Sample();
  h.on_tree = true;
  const auto bytes = h.EncodeToBytes();
  // Byte 3 carries the on-tree marker, 0xff when set (section 7).
  EXPECT_EQ(bytes[3], kOnTree);
  BufferReader r(bytes);
  const auto decoded = CbtDataHeader::Decode(r);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(decoded->on_tree);
}

TEST(CbtDataHeader, ChecksumCorruptionRejected) {
  auto bytes = Sample().EncodeToBytes();
  bytes[12] ^= 0x01;  // flip a bit inside the group address
  BufferReader r(bytes);
  EXPECT_FALSE(CbtDataHeader::Decode(r).has_value());
}

TEST(CbtDataHeader, InvalidOnTreeValueRejected) {
  auto bytes = Sample().EncodeToBytes();
  // Set on-tree byte to a non-{0x00, 0xff} value and fix up the checksum.
  bytes[3] = 0x5A;
  bytes[4] = bytes[5] = 0;
  std::uint16_t sum = 0;
  {
    std::uint32_t acc = 0;
    for (std::size_t i = 0; i + 1 < bytes.size(); i += 2) {
      acc += (std::uint32_t{bytes[i]} << 8) | bytes[i + 1];
    }
    while (acc >> 16) acc = (acc & 0xFFFF) + (acc >> 16);
    sum = static_cast<std::uint16_t>(~acc);
  }
  bytes[4] = static_cast<std::uint8_t>(sum >> 8);
  bytes[5] = static_cast<std::uint8_t>(sum);
  BufferReader r(bytes);
  EXPECT_FALSE(CbtDataHeader::Decode(r).has_value());
}

TEST(CbtDataHeader, NonMulticastGroupRejected) {
  CbtDataHeader h = Sample();
  h.group = Ipv4Address(10, 0, 0, 1);
  const auto bytes = h.EncodeToBytes();
  BufferReader r(bytes);
  EXPECT_FALSE(CbtDataHeader::Decode(r).has_value());
}

TEST(CbtDataHeader, TruncationRejected) {
  const auto bytes = Sample().EncodeToBytes();
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    BufferReader r(std::span<const std::uint8_t>(bytes.data(), cut));
    EXPECT_FALSE(CbtDataHeader::Decode(r).has_value()) << cut;
  }
}

TEST(CbtDataHeader, DecodeAdvancesReaderExactly) {
  auto bytes = Sample().EncodeToBytes();
  bytes.push_back(0xEE);  // trailing payload byte
  BufferReader r(bytes);
  ASSERT_TRUE(CbtDataHeader::Decode(r).has_value());
  EXPECT_EQ(r.remaining(), 1u);
  EXPECT_EQ(r.ReadU8(), 0xEE);
}

}  // namespace
}  // namespace cbt::packet
