#include "packet/cbt_control.h"

#include <gtest/gtest.h>

namespace cbt::packet {
namespace {

ControlPacket SampleJoin() {
  ControlPacket pkt;
  pkt.type = ControlType::kJoinRequest;
  pkt.code = static_cast<std::uint8_t>(JoinSubcode::kActiveJoin);
  pkt.group = Ipv4Address(239, 0, 0, 7);
  pkt.origin = Ipv4Address(10, 4, 0, 1);
  pkt.target_core = Ipv4Address(10, 99, 0, 1);
  pkt.cores = {Ipv4Address(10, 99, 0, 1), Ipv4Address(10, 98, 0, 1)};
  return pkt;
}

TEST(ControlPacket, JoinRoundTrip) {
  const auto bytes = SampleJoin().Encode();
  const auto decoded = ControlPacket::Decode(bytes);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->type, ControlType::kJoinRequest);
  EXPECT_EQ(decoded->join_subcode(), JoinSubcode::kActiveJoin);
  EXPECT_EQ(decoded->group, Ipv4Address(239, 0, 0, 7));
  EXPECT_EQ(decoded->origin, Ipv4Address(10, 4, 0, 1));
  EXPECT_EQ(decoded->target_core, Ipv4Address(10, 99, 0, 1));
  ASSERT_EQ(decoded->cores.size(), 2u);
  EXPECT_EQ(decoded->cores[0], Ipv4Address(10, 99, 0, 1));
  EXPECT_EQ(decoded->cores[1], Ipv4Address(10, 98, 0, 1));
}

TEST(ControlPacket, AllPrimaryTypesRoundTrip) {
  for (const ControlType type :
       {ControlType::kJoinRequest, ControlType::kJoinAck,
        ControlType::kJoinNack, ControlType::kQuitRequest,
        ControlType::kQuitAck, ControlType::kFlushTree}) {
    ControlPacket pkt = SampleJoin();
    pkt.type = type;
    const auto decoded = ControlPacket::Decode(pkt.Encode());
    ASSERT_TRUE(decoded.has_value()) << static_cast<int>(type);
    EXPECT_EQ(decoded->type, type);
  }
}

TEST(ControlPacket, SubcodesSurvive) {
  for (const auto sub :
       {JoinSubcode::kActiveJoin, JoinSubcode::kRejoinActive,
        JoinSubcode::kRejoinNactive}) {
    ControlPacket pkt = SampleJoin();
    pkt.code = static_cast<std::uint8_t>(sub);
    const auto decoded = ControlPacket::Decode(pkt.Encode());
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->join_subcode(), sub);
  }
}

TEST(ControlPacket, EmptyCoreListAllowed) {
  ControlPacket pkt = SampleJoin();
  pkt.type = ControlType::kQuitRequest;
  pkt.cores.clear();
  const auto decoded = ControlPacket::Decode(pkt.Encode());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(decoded->cores.empty());
}

TEST(ControlPacket, MaxCoresEnforcedOnDecode) {
  ControlPacket pkt = SampleJoin();
  pkt.cores.assign(kMaxCores + 1, Ipv4Address(10, 0, 0, 1));
  // Encode writes the count byte; decode must reject it.
  EXPECT_FALSE(ControlPacket::Decode(pkt.Encode()).has_value());
}

TEST(ControlPacket, EchoRequestCarriesAggregateFlagAndMask) {
  ControlPacket echo;
  echo.type = ControlType::kEchoRequest;
  echo.aggregate = true;
  echo.group = Ipv4Address(239, 16, 0, 0);
  echo.group_mask = 0xFFFF0000;
  const auto decoded = ControlPacket::Decode(echo.Encode());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->type, ControlType::kEchoRequest);
  EXPECT_TRUE(decoded->aggregate);
  EXPECT_EQ(decoded->group, Ipv4Address(239, 16, 0, 0));
  EXPECT_EQ(decoded->group_mask, 0xFFFF0000u);
  EXPECT_TRUE(decoded->cores.empty());
}

TEST(ControlPacket, NonAggregateEchoHasZeroFlag) {
  ControlPacket echo;
  echo.type = ControlType::kEchoReply;
  echo.aggregate = false;
  echo.group = Ipv4Address(239, 1, 1, 1);
  const auto bytes = echo.Encode();
  EXPECT_EQ(bytes[3], 0x00);  // Figure 9 aggregate byte
  const auto decoded = ControlPacket::Decode(bytes);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_FALSE(decoded->aggregate);
}

TEST(ControlPacket, CorePingTypesRoundTrip) {
  // The retained -02 reachability probe (types 9/10).
  for (const ControlType type :
       {ControlType::kCorePing, ControlType::kPingReply}) {
    ControlPacket ping;
    ping.type = type;
    ping.group = Ipv4Address(239, 0, 0, 7);
    ping.origin = Ipv4Address(10, 4, 0, 1);
    ping.target_core = Ipv4Address(10, 99, 0, 1);
    const auto decoded = ControlPacket::Decode(ping.Encode());
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->type, type);
    EXPECT_EQ(decoded->target_core, Ipv4Address(10, 99, 0, 1));
    EXPECT_FALSE(decoded->IsEcho());
  }
  ControlPacket ping;
  ping.type = ControlType::kCorePing;
  EXPECT_NE(ping.Describe().find("CBT-CORE-PING"), std::string::npos);
}

TEST(ControlPacket, ChecksumCorruptionRejected) {
  auto bytes = SampleJoin().Encode();
  bytes[10] ^= 0x80;
  EXPECT_FALSE(ControlPacket::Decode(bytes).has_value());
}

TEST(ControlPacket, TruncationRejected) {
  const auto bytes = SampleJoin().Encode();
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    EXPECT_FALSE(
        ControlPacket::Decode({bytes.data(), cut}).has_value())
        << cut;
  }
}

TEST(ControlPacket, UnknownTypeRejected) {
  auto pkt = SampleJoin();
  auto bytes = pkt.Encode();
  bytes[1] = 200;  // bogus type; checksum now stale too, but check both:
  EXPECT_FALSE(ControlPacket::Decode(bytes).has_value());
}

TEST(ControlPacket, DescribeNamesType) {
  EXPECT_NE(SampleJoin().Describe().find("JOIN-REQUEST"), std::string::npos);
  ControlPacket quit;
  quit.type = ControlType::kQuitRequest;
  EXPECT_NE(quit.Describe().find("QUIT-REQUEST"), std::string::npos);
}

}  // namespace
}  // namespace cbt::packet
