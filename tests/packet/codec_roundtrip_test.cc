// Packet-codec round-trip property tests: every valid packet must
// encode -> decode -> encode to *identical bytes* (canonical form), and
// random byte mutations of valid packets must never crash a decoder —
// the mutation fuzz complements the corruption fault model of the chaos
// harness, which flips bits on the wire and relies on the decoders
// rejecting (not crashing on) the result.
#include <gtest/gtest.h>

#include <vector>

#include "common/random.h"
#include "packet/encap.h"

namespace cbt::packet {
namespace {

class CodecRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, CodecRoundTrip,
                         ::testing::Values(11, 12, 13, 14, 15, 16, 17, 18));

Ipv4Address RandomAddress(Rng& rng) {
  return Ipv4Address(static_cast<std::uint32_t>(rng.NextU64()));
}

Ipv4Address RandomGroup(Rng& rng) {
  return Ipv4Address(0xE0000000u |
                     (static_cast<std::uint32_t>(rng.NextU64()) & 0x0FFFFFFF));
}

ControlPacket RandomControl(Rng& rng) {
  ControlPacket pkt;
  pkt.type = static_cast<ControlType>(1 + rng.NextBelow(8));
  pkt.code = static_cast<std::uint8_t>(rng.NextBelow(3));
  pkt.group = RandomGroup(rng);
  pkt.origin = RandomAddress(rng);
  pkt.target_core = RandomAddress(rng);
  if (pkt.IsEcho()) {
    pkt.aggregate = rng.NextBool(0.5);
    pkt.group_mask = static_cast<std::uint32_t>(rng.NextU64());
  } else {
    const std::size_t n = rng.NextBelow(kMaxCores + 1);
    for (std::size_t i = 0; i < n; ++i) pkt.cores.push_back(RandomAddress(rng));
  }
  return pkt;
}

IgmpMessage RandomIgmp(Rng& rng) {
  static constexpr IgmpType kTypes[] = {
      IgmpType::kMembershipQuery, IgmpType::kMembershipReport,
      IgmpType::kLeaveGroup, IgmpType::kRpCoreReport,
      IgmpType::kJoinConfirmation};
  IgmpMessage msg;
  msg.type = kTypes[rng.NextBelow(5)];
  msg.code = static_cast<std::uint8_t>(rng.NextBelow(256));
  msg.group = RandomGroup(rng);
  if (msg.IsCoreReport()) {
    const std::size_t n = 1 + rng.NextBelow(4);
    for (std::size_t i = 0; i < n; ++i) msg.cores.push_back(RandomAddress(rng));
    msg.target_core_index =
        static_cast<std::uint8_t>(rng.NextBelow(msg.cores.size()));
  }
  return msg;
}

/// Applies 1-8 random single-byte mutations (bit flips, overwrites) plus
/// occasional truncation/extension — decoders must reject or accept,
/// never crash or read out of bounds.
std::vector<std::uint8_t> Mutate(std::vector<std::uint8_t> bytes, Rng& rng) {
  const std::size_t mutations = 1 + rng.NextBelow(8);
  for (std::size_t m = 0; m < mutations && !bytes.empty(); ++m) {
    const std::size_t pos = rng.NextBelow(bytes.size());
    if (rng.NextBool(0.5)) {
      bytes[pos] ^= static_cast<std::uint8_t>(1u << rng.NextBelow(8));
    } else {
      bytes[pos] = static_cast<std::uint8_t>(rng.NextU64());
    }
  }
  if (rng.NextBool(0.2) && !bytes.empty()) {
    bytes.resize(rng.NextBelow(bytes.size()) + 1);  // truncate
  } else if (rng.NextBool(0.1)) {
    bytes.push_back(static_cast<std::uint8_t>(rng.NextU64()));  // extend
  }
  return bytes;
}

TEST_P(CodecRoundTrip, ControlEncodeDecodeEncodeIsIdentity) {
  Rng rng(GetParam());
  for (int i = 0; i < 300; ++i) {
    const ControlPacket pkt = RandomControl(rng);
    const std::vector<std::uint8_t> wire = pkt.Encode();
    const auto decoded = ControlPacket::Decode(wire);
    ASSERT_TRUE(decoded.has_value()) << "iteration " << i;
    EXPECT_EQ(decoded->Encode(), wire) << "iteration " << i;
  }
}

TEST_P(CodecRoundTrip, IgmpEncodeDecodeEncodeIsIdentity) {
  Rng rng(GetParam() + 1000);
  for (int i = 0; i < 300; ++i) {
    const IgmpMessage msg = RandomIgmp(rng);
    const std::vector<std::uint8_t> wire = msg.Encode();
    const auto decoded = IgmpMessage::Decode(wire);
    ASSERT_TRUE(decoded.has_value()) << "iteration " << i;
    EXPECT_EQ(decoded->Encode(), wire) << "iteration " << i;
  }
}

TEST_P(CodecRoundTrip, DataHeaderEncodeDecodeEncodeIsIdentity) {
  Rng rng(GetParam() + 2000);
  for (int i = 0; i < 300; ++i) {
    CbtDataHeader hdr;
    hdr.on_tree = rng.NextBool(0.5);
    hdr.ip_ttl = static_cast<std::uint8_t>(rng.NextBelow(256));
    hdr.group = RandomGroup(rng);
    hdr.core = RandomAddress(rng);
    hdr.origin = RandomAddress(rng);
    hdr.flow_id = static_cast<std::uint32_t>(rng.NextU64());
    const std::vector<std::uint8_t> wire = hdr.EncodeToBytes();
    BufferReader reader(wire);
    const auto decoded = CbtDataHeader::Decode(reader);
    ASSERT_TRUE(decoded.has_value()) << "iteration " << i;
    EXPECT_EQ(decoded->EncodeToBytes(), wire) << "iteration " << i;
  }
}

TEST_P(CodecRoundTrip, MutatedControlPacketsNeverCrashDecoder) {
  Rng rng(GetParam() + 3000);
  for (int i = 0; i < 500; ++i) {
    const auto mutated = Mutate(RandomControl(rng).Encode(), rng);
    // Must return nullopt or a validated value — never UB or a crash.
    (void)ControlPacket::Decode(mutated);
  }
}

TEST_P(CodecRoundTrip, MutatedIgmpMessagesNeverCrashDecoder) {
  Rng rng(GetParam() + 4000);
  for (int i = 0; i < 500; ++i) {
    const auto mutated = Mutate(RandomIgmp(rng).Encode(), rng);
    (void)IgmpMessage::Decode(mutated);
  }
}

TEST_P(CodecRoundTrip, MutatedDatagramsNeverCrashParsers) {
  Rng rng(GetParam() + 5000);
  for (int i = 0; i < 300; ++i) {
    std::vector<std::uint8_t> payload(rng.NextBelow(256));
    for (auto& b : payload) b = static_cast<std::uint8_t>(rng.NextU64());
    const auto inner =
        BuildAppDatagram(RandomAddress(rng), RandomGroup(rng), payload,
                         static_cast<std::uint8_t>(1 + rng.NextBelow(255)));
    CbtDataHeader hdr;
    hdr.group = RandomGroup(rng);
    hdr.core = RandomAddress(rng);
    hdr.origin = RandomAddress(rng);
    hdr.ip_ttl = 32;
    const auto outer = BuildCbtModeDatagram(RandomAddress(rng),
                                            RandomAddress(rng), hdr, inner);
    const auto mutated = Mutate(outer, rng);
    if (const auto parsed = ParseDatagram(mutated)) {
      (void)ExtractCbtModeData(*parsed);
    }
  }
}

}  // namespace
}  // namespace cbt::packet
