// Property tests over the wire codecs: randomized round trips, random
// mutations, and garbage inputs. The decoders sit on the attack surface
// of every router, so they must never crash and never accept a corrupted
// header silently (beyond the inherent limits of a 16-bit checksum —
// single-bit flips are always caught).
#include <gtest/gtest.h>

#include "common/random.h"
#include "packet/encap.h"

namespace cbt::packet {
namespace {

class CodecProperty : public ::testing::TestWithParam<std::uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, CodecProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

Ipv4Address RandomAddress(Rng& rng) {
  return Ipv4Address(static_cast<std::uint32_t>(rng.NextU64()));
}

Ipv4Address RandomGroup(Rng& rng) {
  return Ipv4Address(0xE0000000u |
                     (static_cast<std::uint32_t>(rng.NextU64()) & 0x0FFFFFFF));
}

ControlPacket RandomControl(Rng& rng) {
  ControlPacket pkt;
  pkt.type = static_cast<ControlType>(1 + rng.NextBelow(8));
  pkt.code = static_cast<std::uint8_t>(rng.NextBelow(3));
  pkt.group = RandomGroup(rng);
  pkt.origin = RandomAddress(rng);
  pkt.target_core = RandomAddress(rng);
  if (pkt.IsEcho()) {
    pkt.aggregate = rng.NextBool(0.5);
    pkt.group_mask = static_cast<std::uint32_t>(rng.NextU64());
  } else {
    const std::size_t n = rng.NextBelow(kMaxCores + 1);
    for (std::size_t i = 0; i < n; ++i) pkt.cores.push_back(RandomAddress(rng));
  }
  return pkt;
}

TEST_P(CodecProperty, ControlRoundTripPreservesEverything) {
  Rng rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    const ControlPacket pkt = RandomControl(rng);
    const auto decoded = ControlPacket::Decode(pkt.Encode());
    ASSERT_TRUE(decoded.has_value()) << i;
    EXPECT_EQ(decoded->type, pkt.type);
    EXPECT_EQ(decoded->code, pkt.code);
    EXPECT_EQ(decoded->group, pkt.group);
    EXPECT_EQ(decoded->origin, pkt.origin);
    EXPECT_EQ(decoded->target_core, pkt.target_core);
    if (pkt.IsEcho()) {
      EXPECT_EQ(decoded->aggregate, pkt.aggregate);
      EXPECT_EQ(decoded->group_mask, pkt.group_mask);
    } else {
      EXPECT_EQ(decoded->cores, pkt.cores);
    }
    // Re-encoding is byte-identical (canonical form).
    EXPECT_EQ(decoded->Encode(), pkt.Encode());
  }
}

TEST_P(CodecProperty, SingleBitFlipsAlwaysRejected) {
  Rng rng(GetParam() + 100);
  for (int i = 0; i < 20; ++i) {
    const auto bytes = RandomControl(rng).Encode();
    // Try a random sample of bit positions per packet.
    for (int trial = 0; trial < 32; ++trial) {
      auto corrupted = bytes;
      const std::size_t bit = rng.NextBelow(bytes.size() * 8);
      corrupted[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
      EXPECT_FALSE(ControlPacket::Decode(corrupted).has_value())
          << "flip of bit " << bit << " accepted";
    }
  }
}

TEST_P(CodecProperty, GarbageNeverCrashesDecoders) {
  Rng rng(GetParam() + 200);
  for (int i = 0; i < 500; ++i) {
    std::vector<std::uint8_t> garbage(rng.NextBelow(120));
    for (auto& b : garbage) b = static_cast<std::uint8_t>(rng.NextU64());
    // All of these must return nullopt or a validated value — never UB.
    (void)ControlPacket::Decode(garbage);
    (void)IgmpMessage::Decode(garbage);
    (void)ParseDatagram(garbage);
    BufferReader reader(garbage);
    (void)CbtDataHeader::Decode(reader);
  }
}

TEST_P(CodecProperty, DataHeaderRoundTrip) {
  Rng rng(GetParam() + 300);
  for (int i = 0; i < 200; ++i) {
    CbtDataHeader hdr;
    hdr.on_tree = rng.NextBool(0.5);
    hdr.ip_ttl = static_cast<std::uint8_t>(rng.NextBelow(256));
    hdr.group = RandomGroup(rng);
    hdr.core = RandomAddress(rng);
    hdr.origin = RandomAddress(rng);
    hdr.flow_id = static_cast<std::uint32_t>(rng.NextU64());
    const auto bytes = hdr.EncodeToBytes();
    BufferReader reader(bytes);
    const auto decoded = CbtDataHeader::Decode(reader);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->on_tree, hdr.on_tree);
    EXPECT_EQ(decoded->ip_ttl, hdr.ip_ttl);
    EXPECT_EQ(decoded->group, hdr.group);
    EXPECT_EQ(decoded->core, hdr.core);
    EXPECT_EQ(decoded->origin, hdr.origin);
    EXPECT_EQ(decoded->flow_id, hdr.flow_id);
  }
}

TEST_P(CodecProperty, EncapsulationRoundTripAnyPayload) {
  Rng rng(GetParam() + 400);
  for (int i = 0; i < 100; ++i) {
    std::vector<std::uint8_t> payload(rng.NextBelow(1400));
    for (auto& b : payload) b = static_cast<std::uint8_t>(rng.NextU64());
    const auto inner =
        BuildAppDatagram(RandomAddress(rng), RandomGroup(rng), payload,
                         static_cast<std::uint8_t>(1 + rng.NextBelow(255)));
    CbtDataHeader hdr;
    hdr.group = RandomGroup(rng);
    hdr.core = RandomAddress(rng);
    hdr.origin = RandomAddress(rng);
    hdr.ip_ttl = 32;
    const auto outer_bytes = BuildCbtModeDatagram(
        RandomAddress(rng), RandomAddress(rng), hdr, inner);
    const auto parsed = ParseDatagram(outer_bytes);
    ASSERT_TRUE(parsed.has_value());
    const auto data = ExtractCbtModeData(*parsed);
    ASSERT_TRUE(data.has_value());
    EXPECT_TRUE(std::equal(inner.begin(), inner.end(),
                           data->original_datagram.begin(),
                           data->original_datagram.end()));
  }
}

TEST_P(CodecProperty, TtlPatchingPreservesChecksumValidity) {
  Rng rng(GetParam() + 500);
  for (int i = 0; i < 200; ++i) {
    const auto dgram = BuildAppDatagram(
        RandomAddress(rng), RandomGroup(rng),
        std::vector<std::uint8_t>(rng.NextBelow(64)),
        static_cast<std::uint8_t>(2 + rng.NextBelow(254)));
    const auto dec = WithDecrementedTtl(dgram);
    ASSERT_TRUE(dec.has_value());
    EXPECT_TRUE(ParseDatagram(*dec).has_value());
    const auto forced = WithTtl(dgram, 1);
    EXPECT_TRUE(ParseDatagram(forced).has_value());
  }
}

}  // namespace
}  // namespace cbt::packet
