#include "packet/igmp.h"

#include <gtest/gtest.h>

namespace cbt::packet {
namespace {

TEST(Igmp, QueryRoundTrip) {
  IgmpMessage msg;
  msg.type = IgmpType::kMembershipQuery;
  msg.code = 100;  // max response time, tenths of seconds
  msg.group = Ipv4Address{};
  const auto decoded = IgmpMessage::Decode(msg.Encode());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->type, IgmpType::kMembershipQuery);
  EXPECT_EQ(decoded->code, 100);
  EXPECT_TRUE(decoded->group.IsUnspecified());
}

TEST(Igmp, ReportAndLeaveRoundTrip) {
  for (const auto type : {IgmpType::kMembershipReport, IgmpType::kLeaveGroup}) {
    IgmpMessage msg;
    msg.type = type;
    msg.group = Ipv4Address(239, 9, 9, 9);
    const auto decoded = IgmpMessage::Decode(msg.Encode());
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->type, type);
    EXPECT_EQ(decoded->group, Ipv4Address(239, 9, 9, 9));
  }
}

TEST(Igmp, RpCoreReportRoundTrip) {
  // The appendix's amended IGMPv3 RP/Core-Report (Figure 10).
  IgmpMessage msg;
  msg.type = IgmpType::kRpCoreReport;
  msg.code = kCoreReportCodeCbt;
  msg.group = Ipv4Address(239, 1, 0, 1);
  msg.version = 3;
  msg.target_core_index = 1;
  msg.cores = {Ipv4Address(10, 99, 0, 1), Ipv4Address(10, 98, 0, 1),
               Ipv4Address(10, 97, 0, 1)};
  const auto decoded = IgmpMessage::Decode(msg.Encode());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->type, IgmpType::kRpCoreReport);
  EXPECT_EQ(decoded->code, kCoreReportCodeCbt);
  EXPECT_EQ(decoded->target_core_index, 1);
  ASSERT_EQ(decoded->cores.size(), 3u);
  EXPECT_EQ(decoded->cores[2], Ipv4Address(10, 97, 0, 1));
}

TEST(Igmp, TargetIndexBeyondListRejected) {
  IgmpMessage msg;
  msg.type = IgmpType::kRpCoreReport;
  msg.group = Ipv4Address(239, 1, 0, 1);
  msg.target_core_index = 2;
  msg.cores = {Ipv4Address(10, 99, 0, 1)};
  EXPECT_FALSE(IgmpMessage::Decode(msg.Encode()).has_value());
}

TEST(Igmp, ChecksumCorruptionRejected) {
  IgmpMessage msg;
  msg.type = IgmpType::kMembershipReport;
  msg.group = Ipv4Address(239, 9, 9, 9);
  auto bytes = msg.Encode();
  bytes[4] ^= 0x01;
  EXPECT_FALSE(IgmpMessage::Decode(bytes).has_value());
}

TEST(Igmp, UnknownTypeRejected) {
  IgmpMessage msg;
  msg.type = IgmpType::kMembershipReport;
  msg.group = Ipv4Address(239, 9, 9, 9);
  auto bytes = msg.Encode();
  bytes[0] = 0x99;
  EXPECT_FALSE(IgmpMessage::Decode(bytes).has_value());
}

TEST(Igmp, TruncatedCoreReportRejected) {
  IgmpMessage msg;
  msg.type = IgmpType::kRpCoreReport;
  msg.group = Ipv4Address(239, 1, 0, 1);
  msg.cores = {Ipv4Address(10, 99, 0, 1), Ipv4Address(10, 98, 0, 1)};
  const auto bytes = msg.Encode();
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    EXPECT_FALSE(IgmpMessage::Decode({bytes.data(), cut}).has_value()) << cut;
  }
}

}  // namespace
}  // namespace cbt::packet
