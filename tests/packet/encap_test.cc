#include "packet/encap.h"

#include <gtest/gtest.h>

namespace cbt::packet {
namespace {

TEST(Encap, ControlDatagramRoundTrip) {
  ControlPacket pkt;
  pkt.type = ControlType::kJoinRequest;
  pkt.group = Ipv4Address(239, 1, 1, 1);
  pkt.origin = Ipv4Address(10, 1, 0, 1);
  pkt.target_core = Ipv4Address(10, 9, 0, 1);
  pkt.cores = {Ipv4Address(10, 9, 0, 1)};

  const auto bytes = BuildControlDatagram(Ipv4Address(10, 1, 0, 1),
                                          Ipv4Address(10, 2, 0, 1), pkt);
  const auto parsed = ParseDatagram(bytes);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->ip.protocol, IpProtocol::kUdp);
  const auto control = ExtractControl(*parsed);
  ASSERT_TRUE(control.has_value());
  EXPECT_EQ(control->type, ControlType::kJoinRequest);
  EXPECT_EQ(control->group, Ipv4Address(239, 1, 1, 1));
}

TEST(Encap, PrimaryAndAuxiliaryPortsSelectedByType) {
  ControlPacket join;
  join.type = ControlType::kJoinRequest;
  join.group = Ipv4Address(239, 1, 1, 1);
  const auto join_bytes = BuildControlDatagram(Ipv4Address(10, 1, 0, 1),
                                               Ipv4Address(10, 2, 0, 1), join);
  // UDP dst port lives at offset 20+2.
  EXPECT_EQ((join_bytes[22] << 8) | join_bytes[23], kCbtPrimaryPort);

  ControlPacket echo;
  echo.type = ControlType::kEchoRequest;
  echo.group = Ipv4Address(239, 1, 1, 1);
  const auto echo_bytes = BuildControlDatagram(Ipv4Address(10, 1, 0, 1),
                                               Ipv4Address(10, 2, 0, 1), echo);
  EXPECT_EQ((echo_bytes[22] << 8) | echo_bytes[23], kCbtAuxiliaryPort);
}

TEST(Encap, ExtractControlRejectsWrongPort) {
  ControlPacket pkt;
  pkt.type = ControlType::kJoinRequest;
  pkt.group = Ipv4Address(239, 1, 1, 1);
  auto bytes = BuildControlDatagram(Ipv4Address(10, 1, 0, 1),
                                    Ipv4Address(10, 2, 0, 1), pkt);
  bytes[23] = 0x01;  // clobber dst port
  const auto parsed = ParseDatagram(bytes);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_FALSE(ExtractControl(*parsed).has_value());
}

TEST(Encap, IgmpDatagramHasTtlOne) {
  IgmpMessage msg;
  msg.type = IgmpType::kMembershipReport;
  msg.group = Ipv4Address(239, 1, 1, 1);
  const auto bytes =
      BuildIgmpDatagram(Ipv4Address(10, 1, 0, 100), msg.group, msg);
  const auto parsed = ParseDatagram(bytes);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->ip.ttl, 1);
  EXPECT_EQ(parsed->ip.protocol, IpProtocol::kIgmp);
  const auto igmp = ExtractIgmp(*parsed);
  ASSERT_TRUE(igmp.has_value());
  EXPECT_EQ(igmp->group, Ipv4Address(239, 1, 1, 1));
}

TEST(Encap, CbtModeNestsOriginalDatagramIntact) {
  // Figure 3: [encaps IP | CBT hdr | original IP | data].
  const std::vector<std::uint8_t> payload{0xDE, 0xAD};
  const auto original = BuildAppDatagram(Ipv4Address(10, 10, 0, 100),
                                         Ipv4Address(239, 1, 1, 1), payload);
  CbtDataHeader hdr;
  hdr.group = Ipv4Address(239, 1, 1, 1);
  hdr.core = Ipv4Address(10, 5, 0, 1);
  hdr.origin = Ipv4Address(10, 10, 0, 100);
  hdr.ip_ttl = 64;

  const auto bytes = BuildCbtModeDatagram(Ipv4Address(10, 3, 0, 1),
                                          Ipv4Address(10, 4, 0, 1), hdr,
                                          original);
  const auto parsed = ParseDatagram(bytes);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->ip.protocol, IpProtocol::kCbt);

  const auto data = ExtractCbtModeData(*parsed);
  ASSERT_TRUE(data.has_value());
  EXPECT_EQ(data->header.group, Ipv4Address(239, 1, 1, 1));
  EXPECT_EQ(data->header.ip_ttl, 64);
  // The inner datagram is byte-identical to what the host sent.
  ASSERT_EQ(data->original_datagram.size(), original.size());
  EXPECT_TRUE(std::equal(original.begin(), original.end(),
                         data->original_datagram.begin()));
}

TEST(Encap, CbtModeRejectsGarbageInnerDatagram) {
  CbtDataHeader hdr;
  hdr.group = Ipv4Address(239, 1, 1, 1);
  hdr.ip_ttl = 4;
  const std::vector<std::uint8_t> garbage(24, 0xAB);
  const auto bytes = BuildCbtModeDatagram(Ipv4Address(10, 3, 0, 1),
                                          Ipv4Address(10, 4, 0, 1), hdr,
                                          garbage);
  const auto parsed = ParseDatagram(bytes);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_FALSE(ExtractCbtModeData(*parsed).has_value());
}

TEST(Encap, WithDecrementedTtl) {
  const auto original = BuildAppDatagram(Ipv4Address(10, 1, 0, 9),
                                         Ipv4Address(239, 1, 1, 1),
                                         std::vector<std::uint8_t>{1}, 3);
  const auto once = WithDecrementedTtl(original);
  ASSERT_TRUE(once.has_value());
  auto parsed = ParseDatagram(*once);
  ASSERT_TRUE(parsed.has_value());  // checksum still valid
  EXPECT_EQ(parsed->ip.ttl, 2);

  const auto twice = WithDecrementedTtl(*once);
  ASSERT_TRUE(twice.has_value());
  EXPECT_EQ(ParseDatagram(*twice)->ip.ttl, 1);

  // TTL 1 must not be forwarded further.
  EXPECT_FALSE(WithDecrementedTtl(*twice).has_value());
}

TEST(Encap, WithTtlForcesValue) {
  const auto original = BuildAppDatagram(Ipv4Address(10, 1, 0, 9),
                                         Ipv4Address(239, 1, 1, 1),
                                         std::vector<std::uint8_t>{1}, 64);
  const auto forced = WithTtl(original, 1);
  const auto parsed = ParseDatagram(forced);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->ip.ttl, 1);
}

}  // namespace
}  // namespace cbt::packet
