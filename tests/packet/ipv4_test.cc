#include "packet/ipv4.h"

#include <gtest/gtest.h>

namespace cbt::packet {
namespace {

Ipv4Header SampleHeader() {
  Ipv4Header h;
  h.ttl = 17;
  h.protocol = IpProtocol::kUdp;
  h.src = Ipv4Address(10, 1, 0, 1);
  h.dst = Ipv4Address(10, 2, 0, 1);
  h.identification = 0x4242;
  return h;
}

TEST(Ipv4, EncodeDecodeRoundTrip) {
  const std::vector<std::uint8_t> payload{1, 2, 3, 4, 5};
  const auto bytes = BuildDatagram(SampleHeader(), payload);
  ASSERT_EQ(bytes.size(), kIpv4HeaderSize + payload.size());

  const auto parsed = ParseDatagram(bytes);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->ip.ttl, 17);
  EXPECT_EQ(parsed->ip.protocol, IpProtocol::kUdp);
  EXPECT_EQ(parsed->ip.src, Ipv4Address(10, 1, 0, 1));
  EXPECT_EQ(parsed->ip.dst, Ipv4Address(10, 2, 0, 1));
  EXPECT_EQ(parsed->ip.identification, 0x4242);
  ASSERT_EQ(parsed->payload.size(), payload.size());
  EXPECT_EQ(parsed->payload[4], 5);
}

TEST(Ipv4, HeaderChecksumCorruptionRejected) {
  auto bytes = BuildDatagram(SampleHeader(), std::vector<std::uint8_t>{1});
  bytes[8] ^= 0xFF;  // flip TTL without repatching checksum
  EXPECT_FALSE(ParseDatagram(bytes).has_value());
}

TEST(Ipv4, PayloadCorruptionIsNotHeaderProblem) {
  auto bytes = BuildDatagram(SampleHeader(), std::vector<std::uint8_t>{1, 2});
  bytes.back() ^= 0xFF;  // payload integrity is the upper layer's job
  EXPECT_TRUE(ParseDatagram(bytes).has_value());
}

TEST(Ipv4, TruncatedDatagramRejected) {
  const auto bytes = BuildDatagram(SampleHeader(), std::vector<std::uint8_t>(10));
  for (std::size_t cut = 0; cut < kIpv4HeaderSize; ++cut) {
    const std::span<const std::uint8_t> view(bytes.data(), cut);
    EXPECT_FALSE(ParseDatagram(view).has_value()) << cut;
  }
}

TEST(Ipv4, TotalLengthBeyondBufferRejected) {
  auto bytes = BuildDatagram(SampleHeader(), std::vector<std::uint8_t>(4));
  bytes.resize(bytes.size() - 2);  // buffer shorter than total_length
  EXPECT_FALSE(ParseDatagram(bytes).has_value());
}

TEST(Ipv4, TrailingLinkPaddingIgnored) {
  auto bytes = BuildDatagram(SampleHeader(), std::vector<std::uint8_t>{7, 8});
  bytes.push_back(0);  // link-layer padding beyond total_length
  bytes.push_back(0);
  const auto parsed = ParseDatagram(bytes);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->payload.size(), 2u);
}

TEST(Udp, EncodeDecodeRoundTrip) {
  BufferWriter w;
  UdpHeader udp{kCbtPrimaryPort, kCbtPrimaryPort};
  udp.Encode(w, 12);
  const auto bytes = std::move(w).Take();
  ASSERT_EQ(bytes.size(), kUdpHeaderSize);

  // Decode requires the declared payload to fit the remaining buffer.
  std::vector<std::uint8_t> with_payload = bytes;
  with_payload.resize(kUdpHeaderSize + 12);
  BufferReader r(with_payload);
  const auto decoded = UdpHeader::Decode(r);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->src_port, kCbtPrimaryPort);
  EXPECT_EQ(decoded->dst_port, kCbtPrimaryPort);
}

TEST(Udp, LengthOverrunRejected) {
  BufferWriter w;
  UdpHeader udp{7777, 7777};
  udp.Encode(w, 100);  // declares 100 payload bytes
  auto bytes = std::move(w).Take();
  BufferReader r(bytes);  // but none present
  EXPECT_FALSE(UdpHeader::Decode(r).has_value());
}

}  // namespace
}  // namespace cbt::packet
