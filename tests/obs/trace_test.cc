// Unit tests for the deterministic trace layer: ring wrap + dropped
// accounting, level gating, JSONL / Chrome trace_event export goldens,
// and the determinism contract — a simulation traced at the most verbose
// level must leave protocol outcomes identical to an untraced run.
#include "obs/trace.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "cbt/domain.h"
#include "netsim/topologies.h"
#include "obs/metrics.h"

namespace cbt::obs {
namespace {

TraceEvent Marker(SimTime t, const char* name) {
  return TraceEvent{.time = t, .kind = TraceKind::kMarker, .name = name};
}

TEST(TraceBuffer, RecordsAndCounts) {
  TraceBuffer buffer(8, TraceLevel::kVerbose);
  buffer.Emit(Marker(1, "a"));
  buffer.Emit(Marker(2, "b"));
  EXPECT_EQ(buffer.size(), 2u);
  EXPECT_EQ(buffer.emitted(), 2u);
  EXPECT_EQ(buffer.dropped(), 0u);

  std::vector<std::string> names;
  buffer.ForEach([&](std::uint64_t, const TraceEvent& e) {
    names.push_back(e.name);
  });
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "a");
  EXPECT_EQ(names[1], "b");
}

TEST(TraceBuffer, RingWrapKeepsNewestAndCountsDropped) {
  TraceBuffer buffer(4, TraceLevel::kVerbose);
  for (int i = 0; i < 10; ++i) {
    buffer.Emit(Marker(i, "e"));
  }
  EXPECT_EQ(buffer.size(), 4u);
  EXPECT_EQ(buffer.emitted(), 10u);
  EXPECT_EQ(buffer.dropped(), 6u);

  // The retained window is the newest 4 events with contiguous seqs.
  std::vector<std::uint64_t> seqs;
  std::vector<SimTime> times;
  buffer.ForEach([&](std::uint64_t seq, const TraceEvent& e) {
    seqs.push_back(seq);
    times.push_back(e.time);
  });
  ASSERT_EQ(seqs.size(), 4u);
  EXPECT_EQ(seqs.front(), 6u);
  EXPECT_EQ(seqs.back(), 9u);
  EXPECT_EQ(times.front(), 6);
  EXPECT_EQ(times.back(), 9);
}

TEST(TraceBuffer, LevelGating) {
  TraceBuffer spans(16, TraceLevel::kSpans);
  EXPECT_TRUE(spans.enabled(TraceLevel::kSpans));
  EXPECT_FALSE(spans.enabled(TraceLevel::kVerbose));

  TraceBuffer off(16, TraceLevel::kOff);
  EXPECT_FALSE(off.enabled(TraceLevel::kSpans));

  // The macros apply the gate: a verbose event must not land in a
  // spans-level buffer, and a null buffer is a no-op.
  OBS_TRACE_VERBOSE(&spans, .time = 1, .name = "verbose-only");
  EXPECT_EQ(spans.size(), 0u);
  OBS_TRACE(&spans, .time = 2, .name = "span");
  EXPECT_EQ(spans.size(), 1u);
  TraceBuffer* null_buffer = nullptr;
  OBS_TRACE(null_buffer, .time = 3, .name = "dropped");
}

TEST(TraceBuffer, ClearResetsRetainedNotHistory) {
  TraceBuffer buffer(4, TraceLevel::kSpans);
  buffer.Emit(Marker(1, "x"));
  buffer.Clear();
  EXPECT_EQ(buffer.size(), 0u);
}

TEST(TraceExport, JsonlGolden) {
  TraceBuffer buffer(8, TraceLevel::kVerbose);
  buffer.Emit(TraceEvent{.time = 1500,
                         .kind = TraceKind::kFsm,
                         .phase = TracePhase::kBegin,
                         .name = "join",
                         .node = 3,
                         .group = Ipv4Address(239, 1, 2, 3),
                         .arg_a = 7,
                         .arg_b = 0,
                         .txn = 42,
                         .detail = "test"});
  std::ostringstream os;
  buffer.ExportJsonl(os);
  const std::string text = os.str();
  // A leading metadata line with the ring accounting, then one line per
  // event with parseable fields in a stable order.
  const std::size_t split = text.find('\n');
  ASSERT_NE(split, std::string::npos);
  const std::string meta = text.substr(0, split);
  const std::string line = text.substr(split + 1);
  EXPECT_NE(meta.find("\"meta\":{"), std::string::npos) << meta;
  EXPECT_NE(meta.find("\"emitted\":1"), std::string::npos) << meta;
  EXPECT_NE(meta.find("\"dropped\":0"), std::string::npos) << meta;
  EXPECT_NE(line.find("\"seq\":0"), std::string::npos) << line;
  EXPECT_NE(line.find("\"cat\":\"fsm\""), std::string::npos) << line;
  EXPECT_NE(line.find("\"name\":\"join\""), std::string::npos) << line;
  EXPECT_NE(line.find("\"node\":3"), std::string::npos) << line;
  EXPECT_NE(line.find("239.1.2.3"), std::string::npos) << line;
  EXPECT_NE(line.find("\"txn\":42"), std::string::npos) << line;
  EXPECT_NE(line.find("\"detail\":\"test\""), std::string::npos) << line;
  EXPECT_EQ(line.back(), '\n');
  EXPECT_EQ(std::count(line.begin(), line.end(), '\n'), 1);
}

TEST(TraceExport, OverflowAccountingInExports) {
  // 10 events into a 4-slot ring: the exports must say so, so a consumer
  // can distinguish "no event" from "event evicted".
  TraceBuffer buffer(4, TraceLevel::kVerbose);
  for (int i = 0; i < 10; ++i) {
    buffer.Emit(Marker(i, "e"));
  }
  std::ostringstream jsonl;
  buffer.ExportJsonl(jsonl);
  const std::string meta = jsonl.str().substr(0, jsonl.str().find('\n'));
  EXPECT_NE(meta.find("\"emitted\":10"), std::string::npos) << meta;
  EXPECT_NE(meta.find("\"retained\":4"), std::string::npos) << meta;
  EXPECT_NE(meta.find("\"dropped\":6"), std::string::npos) << meta;
  EXPECT_NE(meta.find("\"first_seq\":6"), std::string::npos) << meta;

  std::ostringstream chrome;
  buffer.ExportChromeTrace(chrome, /*pid=*/2);
  const std::string json = chrome.str();
  EXPECT_NE(json.find("\"otherData\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"dropped\":6"), std::string::npos) << json;
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

TEST(TraceExport, ChromeTraceGolden) {
  TraceBuffer buffer(8, TraceLevel::kVerbose);
  buffer.Emit(TraceEvent{.time = 2000,
                         .kind = TraceKind::kFsm,
                         .phase = TracePhase::kBegin,
                         .name = "join",
                         .node = 5});
  buffer.Emit(TraceEvent{.time = 9000,
                         .kind = TraceKind::kFsm,
                         .phase = TracePhase::kEnd,
                         .name = "join",
                         .node = 5});
  std::ostringstream os;
  buffer.ExportChromeTrace(os, /*pid=*/1);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"B\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"ph\":\"E\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"pid\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"tid\":5"), std::string::npos) << json;
  // Balanced braces/brackets as a cheap well-formedness proxy (the CI
  // bench-smoke step json.load()s a real exported file).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

TEST(ProcessTraceBuffer, PickedUpBySimulatorAtConstruction) {
  TraceBuffer buffer(1 << 10, TraceLevel::kVerbose);
  SetProcessTraceBuffer(&buffer);
  netsim::Simulator sim(1);
  SetProcessTraceBuffer(nullptr);
  EXPECT_EQ(sim.trace(), &buffer);

  netsim::Simulator untraced(1);
  EXPECT_EQ(untraced.trace(), nullptr);
}

/// The determinism contract, in-process: the same seeded join/leave +
/// fault scenario, run untraced and run at kVerbose, must produce
/// identical protocol outcomes (metric-for-metric) — tracing is
/// record-only.
MetricSet RunScenario(TraceBuffer* buffer) {
  SetProcessTraceBuffer(buffer);
  netsim::Simulator sim(7);
  SetProcessTraceBuffer(nullptr);
  netsim::Topology topo = netsim::MakeGrid(sim, 3, 3);
  core::CbtDomain domain(sim, topo);
  const Ipv4Address group(239, 8, 8, 8);
  domain.RegisterGroup(group, {topo.routers[0], topo.routers[8]});
  domain.Start();
  sim.RunUntil(kSecond);

  auto& sender = domain.AddHost(topo.router_lans[1], "s");
  auto& receiver = domain.AddHost(topo.router_lans[7], "r");
  sender.JoinGroup(group);
  receiver.JoinGroup(group);
  sim.RunUntil(10 * kSecond);
  sender.SendToGroup(group, std::vector<std::uint8_t>{1, 2, 3});
  sim.RunUntil(20 * kSecond);

  // Mid-run fault + recovery to exercise the traced FSM paths.
  sim.SetNodeUp(topo.routers[4], false);
  sim.RunUntil(120 * kSecond);
  sim.SetNodeUp(topo.routers[4], true);
  sim.RunUntil(240 * kSecond);
  sender.SendToGroup(group, std::vector<std::uint8_t>{4});
  sim.RunUntil(250 * kSecond);

  Registry registry;
  domain.BindMetrics(registry);
  return registry.Snapshot();
}

TEST(TraceDeterminism, VerboseTracingChangesNoOutcome) {
  const MetricSet untraced = RunScenario(nullptr);

  TraceBuffer buffer(1 << 14, TraceLevel::kVerbose);
  const MetricSet traced = RunScenario(&buffer);
  EXPECT_GT(buffer.emitted(), 0u);  // the run really was traced

  ASSERT_EQ(untraced.size(), traced.size());
  auto it = traced.begin();
  for (const Sample& expected : untraced) {
    EXPECT_EQ(expected.name, it->name);
    EXPECT_EQ(expected.value, it->value) << expected.name;
    ++it;
  }
}

}  // namespace
}  // namespace cbt::obs
