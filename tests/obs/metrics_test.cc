// Unit tests for the obs metrics registry: handle stability across
// re-registration, snapshot/diff/reset semantics, histogram bucket
// edges, and the external stats-struct binding path.
#include "obs/metrics.h"

#include <gtest/gtest.h>

#include "cbt/stats.h"
#include "obs/fields.h"

namespace cbt::obs {
namespace {

TEST(Registry, CounterRoundTrip) {
  Registry registry;
  Counter joins = registry.RegisterCounter("cbt.router.1.joins_originated");
  joins.Increment();
  joins.Increment(4);
  EXPECT_EQ(joins.value(), 5u);
  EXPECT_TRUE(registry.Contains("cbt.router.1.joins_originated"));
  EXPECT_EQ(registry.Snapshot().ValueOr("cbt.router.1.joins_originated", 0),
            5u);
}

TEST(Registry, ReRegistrationReturnsSameSlot) {
  Registry registry;
  Counter first = registry.RegisterCounter("x.count");
  first.Increment(3);
  Counter second = registry.RegisterCounter("x.count");
  second.Increment(2);
  // Both handles alias one slot; neither invalidates the other.
  EXPECT_EQ(first.value(), 5u);
  EXPECT_EQ(second.value(), 5u);
  EXPECT_EQ(registry.size(), 1u);
}

TEST(Registry, HandlesSurviveManyRegistrations) {
  // std::deque storage: growing the registry must not move earlier slots.
  Registry registry;
  Counter early = registry.RegisterCounter("early");
  early.Increment();
  for (int i = 0; i < 1000; ++i) {
    registry.RegisterCounter("filler." + std::to_string(i));
  }
  early.Increment();
  EXPECT_EQ(early.value(), 2u);
  EXPECT_EQ(registry.Snapshot().ValueOr("early", 0), 2u);
}

TEST(Registry, UnboundHandlesAreSafe) {
  Counter counter;  // never registered
  counter.Increment(7);
  EXPECT_GE(counter.value(), 7u);  // scratch slot is shared, not per-handle
  Gauge gauge;
  gauge.Set(3);
  Histogram histogram;
  histogram.Observe(10);  // no buckets; count/sum only
  EXPECT_GE(histogram.data().count, 1u);
}

TEST(Registry, GaugeSetAndAdd) {
  Registry registry;
  Gauge g = registry.RegisterGauge("queue.depth");
  g.Set(10);
  g.Add(5);
  EXPECT_EQ(g.value(), 15u);
  g.Set(2);
  EXPECT_EQ(registry.Snapshot().ValueOr("queue.depth", 0), 2u);
}

TEST(Registry, HistogramBucketEdges) {
  Registry registry;
  Histogram h = registry.RegisterHistogram("lat", {10, 100});
  h.Observe(0);    // <= 10
  h.Observe(10);   // boundary lands in the le_10 bucket (inclusive)
  h.Observe(11);   // <= 100
  h.Observe(100);  // boundary, le_100
  h.Observe(101);  // overflow
  const MetricSet snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.ValueOr("lat.le_10", 99), 2u);
  EXPECT_EQ(snapshot.ValueOr("lat.le_100", 99), 2u);
  EXPECT_EQ(snapshot.ValueOr("lat.le_inf", 99), 1u);
  EXPECT_EQ(snapshot.ValueOr("lat.count", 0), 5u);
  EXPECT_EQ(snapshot.ValueOr("lat.sum", 0), 0u + 10 + 11 + 100 + 101);
}

TEST(Registry, HistogramReRegistrationKeepsOriginalBounds) {
  Registry registry;
  Histogram first = registry.RegisterHistogram("h", {5});
  first.Observe(3);
  Histogram second = registry.RegisterHistogram("h", {50, 500});
  second.Observe(4);
  EXPECT_EQ(second.data().bounds.size(), 1u);  // original bounds win
  EXPECT_EQ(registry.Snapshot().ValueOr("h.le_5", 0), 2u);
}

TEST(Registry, ExternalFieldIsMirroredLive) {
  Registry registry;
  std::uint64_t field = 0;
  registry.RegisterExternal("ext.value", &field);
  field = 42;  // owner keeps writing its plain field
  EXPECT_EQ(registry.Snapshot().ValueOr("ext.value", 0), 42u);

  // Re-registration rebinds to a new address (sequential bench runs).
  std::uint64_t replacement = 7;
  registry.RegisterExternal("ext.value", &replacement);
  EXPECT_EQ(registry.Snapshot().ValueOr("ext.value", 0), 7u);
  EXPECT_EQ(registry.size(), 1u);
}

TEST(Registry, ResetZeroesOwnedAndExternal) {
  Registry registry;
  Counter c = registry.RegisterCounter("owned");
  c.Increment(9);
  std::uint64_t field = 13;
  registry.RegisterExternal("external", &field);
  Histogram h = registry.RegisterHistogram("hist", {1});
  h.Observe(5);

  registry.Reset();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(field, 0u);
  const MetricSet snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.ValueOr("hist.count", 99), 0u);
  EXPECT_EQ(snapshot.ValueOr("hist.sum", 99), 0u);
}

TEST(MetricSet, SnapshotDiffWindow) {
  Registry registry;
  Counter a = registry.RegisterCounter("a");
  Counter b = registry.RegisterCounter("b");
  a.Increment(10);
  const MetricSet before = registry.Snapshot();
  a.Increment(5);
  b.Increment(2);
  const MetricSet delta = registry.Snapshot().Diff(before);
  EXPECT_EQ(delta.ValueOr("a", 99), 5u);
  EXPECT_EQ(delta.ValueOr("b", 99), 2u);
}

TEST(MetricSet, PrefixAndSuffixQueries) {
  MetricSet set(std::vector<Sample>{{"cbt.router.1.joins_originated", 3},
                                    {"cbt.router.2.joins_originated", 4},
                                    {"netsim.subnet.0.frames_sent", 9}});
  EXPECT_EQ(set.WithPrefix("cbt.router.").size(), 2u);
  EXPECT_EQ(set.SumWithSuffix(".joins_originated"), 7u);
  EXPECT_FALSE(set.Get("missing").has_value());
}

TEST(MetricSet, SnapshotIsNameSorted) {
  MetricSet set(std::vector<Sample>{{"zebra", 1}, {"apple", 2}, {"mid", 3}});
  std::string previous;
  for (const Sample& sample : set) {
    EXPECT_LE(previous, sample.name);
    previous = sample.name;
  }
}

TEST(BindStats, RouterStatsFieldsAppearAndSum) {
  Registry registry;
  core::RouterStats stats;
  BindStats(registry, "cbt.router.7", stats);
  stats.joins_originated = 2;
  stats.acks_sent = 3;
  stats.data_forwarded_tree = 11;  // not a control message

  const MetricSet snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.ValueOr("cbt.router.7.joins_originated", 0), 2u);
  EXPECT_EQ(snapshot.ValueOr("cbt.router.7.acks_sent", 0), 3u);
  // The tagged rollup matches the struct's own accessor.
  EXPECT_EQ(stats.ControlMessagesSent(), 5u);
  EXPECT_EQ(SumTagged(stats, FieldTag::kControlSent), 5u);
}

TEST(BindStats, ResetStatsZeroesEveryEnumeratedField) {
  core::RouterStats stats;
  stats.joins_originated = 1;
  stats.malformed_control = 2;
  stats.data_delivered_lan = 3;
  stats.Reset();
  EXPECT_EQ(stats.joins_originated, 0u);
  EXPECT_EQ(stats.malformed_control, 0u);
  EXPECT_EQ(stats.data_delivered_lan, 0u);
  EXPECT_EQ(stats.ControlMessagesSent(), 0u);
}

TEST(BindStats, StatsSnapshotWithoutRegistry) {
  core::RouterStats stats;
  stats.quits_sent = 6;
  const MetricSet snapshot = StatsSnapshot(stats, "r");
  EXPECT_EQ(snapshot.ValueOr("r.quits_sent", 0), 6u);
  EXPECT_GT(snapshot.size(), 30u);  // all RouterStats fields enumerated
}

}  // namespace
}  // namespace cbt::obs
