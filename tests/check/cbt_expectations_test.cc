// Live-simulation validation of the CBT expectation suite.
//
// A chain topology (core - r1 - r2 - r3[member LAN]) whose mid-router
// dies is the smallest deterministic teardown-with-children scenario:
// r2's echo to r1 times out, its reconnect join finds no route, and it
// tears down a branch that still holds r3 as a child — which must emit a
// FLUSH-TREE downstream. The honest protocol passes the suite clean; the
// seeded suppress-flush mutation must trip it (this is the checker's own
// falsifiability test, mirrored as a deterministic exit-code assertion
// of what bench_chaos_soak --mutate does end to end).
#include <gtest/gtest.h>

#include <sstream>

#include "cbt/config.h"
#include "cbt/domain.h"
#include "check/cbt_expectations.h"
#include "check/expectation.h"
#include "check/trace_view.h"
#include "netsim/simulator.h"
#include "obs/trace.h"

namespace cbt::check {
namespace {

constexpr Ipv4Address kGroup(239, 7, 7, 7);

const ExpectationStats& StatsFor(const CheckReport& report, const char* name) {
  for (const ExpectationStats& s : report.per_expectation) {
    if (s.name == name) return s;
  }
  ADD_FAILURE() << "no stats recorded for expectation " << name;
  static const ExpectationStats empty;
  return empty;
}

std::string RenderViolations(const CheckReport& report) {
  std::ostringstream os;
  report.Print(os);
  return os.str();
}

/// Soak-style tightened timers so detection/teardown happen within a
/// short run; the suite derives its deadlines from this same config.
core::CbtConfig TightConfig() {
  core::CbtConfig config;
  config.echo_interval = 5 * kSecond;
  config.echo_timeout = 15 * kSecond;
  config.pend_join_interval = 2 * kSecond;
  config.pend_join_timeout = 8 * kSecond;
  config.expire_pending_join = 30 * kSecond;
  config.child_assert_interval = 10 * kSecond;
  config.child_assert_expire = 25 * kSecond;
  config.iff_scan_interval = 60 * kSecond;
  config.reconnect_timeout = 30 * kSecond;
  config.proxy_refresh_interval = 20 * kSecond;
  return config;
}

CheckReport RunChain(core::ProtocolMutation mutation) {
  // The ring must exist before the Simulator: agents capture the
  // process/thread trace buffer at construction.
  obs::TraceBuffer ring(1 << 16, obs::TraceLevel::kSpans);
  obs::ScopedThreadTraceBuffer scope(&ring);

  netsim::Simulator sim(1);
  netsim::Topology topo;
  const NodeId core_node = sim.AddNode("core", true);
  const NodeId r1 = sim.AddNode("r1", true);
  const NodeId r2 = sim.AddNode("r2", true);
  const NodeId r3 = sim.AddNode("r3", true);
  topo.routers = {core_node, r1, r2, r3};
  topo.nodes = {{"core", core_node}, {"r1", r1}, {"r2", r2}, {"r3", r3}};
  sim.Connect(core_node, r1);
  sim.Connect(r1, r2);
  sim.Connect(r2, r3);
  const SubnetId lan = sim.AddSubnet(
      "lan3", SubnetAddress::FromPrefix(Ipv4Address(10, 40, 0, 0), 16));
  sim.Attach(r3, lan);
  topo.subnets["lan3"] = lan;

  core::CbtConfig config = TightConfig();
  config.mutation = mutation;
  core::CbtDomain domain(sim, topo, config);
  domain.RegisterGroup(kGroup, {core_node});
  domain.Start();
  sim.RunUntil(kSecond);
  domain.AddHost(lan, "m").JoinGroup(kGroup);
  sim.RunUntil(10 * kSecond);
  EXPECT_TRUE(domain.router(r2).IsOnTree(kGroup));
  EXPECT_TRUE(domain.router(r3).IsOnTree(kGroup));

  // Cutting r1 strands r2+r3 with no alternate path: r2 must tear down
  // and (honestly) flush r3. Run well past every config deadline so no
  // expectation window is truncated by the end of the run.
  sim.SetNodeUp(r1, false);
  sim.RunUntil(sim.Now() + 200 * kSecond);

  CbtSuiteOptions options;
  options.config = config;
  options.node_of = MakeAddressResolver(sim);
  return RunExpectations(TraceView(ring), CbtExpectationSuite(options),
                         sim.Now());
}

TEST(CbtExpectationSuiteTest, ChainTeardownPassesCleanWithoutMutation) {
  const CheckReport report = RunChain(core::ProtocolMutation::kNone);
  EXPECT_EQ(report.violations(), 0u) << RenderViolations(report);
  EXPECT_TRUE(report.clean());

  // The scenario actually exercised the paths the mutation will break:
  // a teardown that stranded a child, the flush arriving at that child,
  // and the child's member-driven rejoin attempt.
  const ExpectationStats& teardown =
      StatsFor(report, "teardown-notifies-children");
  EXPECT_GE(teardown.checked, 1u);
  EXPECT_GE(teardown.satisfied, 1u);
  const ExpectationStats& propagation = StatsFor(report, "flush-propagation");
  EXPECT_GE(propagation.checked, 1u);
  EXPECT_GE(propagation.satisfied, 1u);
  EXPECT_GE(StatsFor(report, "flush-rejoin").checked, 1u);
  EXPECT_GE(StatsFor(report, "reconnect-after-parent-loss").checked, 1u);
}

TEST(CbtExpectationSuiteTest, SuppressFlushMutationTripsTheSuite) {
  const CheckReport report = RunChain(core::ProtocolMutation::kSuppressFlush);

  // The defect is invisible to the run's own success criteria (nothing
  // crashes, no invariant fires) but the causal-path checker must catch
  // it: the teardown's flush evidence never appears.
  EXPECT_FALSE(report.clean());
  const ExpectationStats& teardown =
      StatsFor(report, "teardown-notifies-children");
  EXPECT_GE(teardown.violated, 1u);

  bool found_issue = false;
  for (const Issue& issue : report.issues) {
    if (issue.verdict == Verdict::kViolated &&
        issue.expectation == "teardown-notifies-children") {
      found_issue = true;
      EXPECT_EQ(issue.group, kGroup);
    }
  }
  EXPECT_TRUE(found_issue);

  // Signature cross-check: with every FLUSH-TREE suppressed there is no
  // flush-sent trigger left for the propagation expectation to check.
  EXPECT_EQ(StatsFor(report, "flush-propagation").checked, 0u);
}

TEST(MakeAddressResolverTest, MapsEveryInterfaceAddressToItsNode) {
  netsim::Simulator sim(1);
  const NodeId a = sim.AddNode("a", true);
  const NodeId b = sim.AddNode("b", true);
  sim.Connect(a, b);
  const auto resolver = MakeAddressResolver(sim);
  for (const NodeId n : {a, b}) {
    for (const netsim::Interface& iface : sim.node(n).interfaces) {
      EXPECT_EQ(resolver(iface.address), n.value());
    }
  }
  EXPECT_EQ(resolver(Ipv4Address(1, 2, 3, 4)), -1);
}

}  // namespace
}  // namespace cbt::check
