// Hitless live core migration, pinned by the causal-path checker: a
// sequence-stamped stream keeps flowing while CoreMigrator re-homes the
// group onto a new core under membership churn, and the src/check suite
// verifies the migration span's ordering (join-new before drain-old) and
// its zero-gap promise from the trace alone.
#include <gtest/gtest.h>

#include <sstream>

#include "analysis/delivery_monitor.h"
#include "analysis/migration.h"
#include "cbt/config.h"
#include "cbt/domain.h"
#include "check/cbt_expectations.h"
#include "check/expectation.h"
#include "check/trace_view.h"
#include "netsim/simulator.h"
#include "netsim/topologies.h"
#include "obs/trace.h"

namespace cbt::check {
namespace {

constexpr Ipv4Address kGroup(239, 5, 5, 5);

const ExpectationStats& StatsFor(const CheckReport& report, const char* name) {
  for (const ExpectationStats& s : report.per_expectation) {
    if (s.name == name) return s;
  }
  ADD_FAILURE() << "no stats recorded for expectation " << name;
  static const ExpectationStats empty;
  return empty;
}

std::string RenderViolations(const CheckReport& report) {
  std::ostringstream os;
  report.Print(os);
  return os.str();
}

core::CbtConfig TightConfig() {
  core::CbtConfig config;
  config.echo_interval = 5 * kSecond;
  config.echo_timeout = 15 * kSecond;
  config.pend_join_interval = 2 * kSecond;
  config.pend_join_timeout = 8 * kSecond;
  config.expire_pending_join = 30 * kSecond;
  config.child_assert_interval = 10 * kSecond;
  config.child_assert_expire = 25 * kSecond;
  config.iff_scan_interval = 60 * kSecond;
  config.reconnect_timeout = 30 * kSecond;
  config.proxy_refresh_interval = 20 * kSecond;
  return config;
}

TEST(CoreMigrationTest, LiveMigrationUnderChurnHasZeroDeliveryGap) {
  // The ring must exist before the Simulator: agents capture the
  // process/thread trace buffer at construction.
  obs::TraceBuffer ring(1 << 18, obs::TraceLevel::kSpans);
  obs::ScopedThreadTraceBuffer scope(&ring);

  netsim::Simulator sim(1);
  netsim::Topology topo = netsim::MakeGrid(sim, 4, 4);
  const auto router_at = [&](int x, int y) {
    return topo.routers[static_cast<std::size_t>(y * 4 + x)];
  };
  const auto lan_at = [&](int x, int y) {
    return topo.router_lans[static_cast<std::size_t>(y * 4 + x)];
  };

  const core::CbtConfig config = TightConfig();
  core::CbtDomain domain(sim, topo, config);
  const NodeId old_core = router_at(0, 0);
  const NodeId new_core = router_at(3, 3);
  domain.RegisterGroup(kGroup, {old_core});
  domain.Start();
  sim.RunUntil(kSecond);

  // Source is also a member so its D-DR stays on-tree across the drain;
  // three receivers sit in the far corners, plus one churner that joins
  // and leaves while the migration is in flight.
  core::HostAgent& src = domain.AddHost(lan_at(0, 0), "src");
  core::HostAgent& rx_a = domain.AddHost(lan_at(3, 0), "rx-a");
  core::HostAgent& rx_b = domain.AddHost(lan_at(0, 3), "rx-b");
  // No host sits on the new core's LAN: phase 1 must really join it.
  core::HostAgent& rx_c = domain.AddHost(lan_at(1, 3), "rx-c");
  core::HostAgent& churner = domain.AddHost(lan_at(2, 1), "churner");
  for (core::HostAgent* h : {&src, &rx_a, &rx_b, &rx_c}) {
    h->JoinGroup(kGroup);
  }
  sim.RunUntil(sim.Now() + 20 * kSecond);

  analysis::DeliveryMonitor monitor(domain, kGroup);
  monitor.WatchReceiver(rx_a.id());
  monitor.WatchReceiver(rx_b.id());
  monitor.WatchReceiver(rx_c.id());
  monitor.StartSender(src.id(), 500 * kMillisecond);
  sim.RunUntil(sim.Now() + 10 * kSecond);
  const std::uint32_t before = monitor.MinDelivered();
  ASSERT_GT(before, 0u) << "stream never established";

  // Membership churn racing the migration phases.
  sim.Schedule(2 * kSecond, [&] { churner.JoinGroup(kGroup); });
  sim.Schedule(40 * kSecond, [&] { churner.LeaveGroup(kGroup); });

  analysis::CoreMigrator migrator(domain);
  const analysis::CoreMigrator::Report report =
      migrator.Migrate(kGroup, {new_core});
  ASSERT_TRUE(report.ok) << report.error;
  EXPECT_GT(report.new_core_joined, report.started);
  EXPECT_GE(report.drained, report.new_core_joined);

  // The new anchor owns the group; let the stream run on past the drain
  // before judging continuity.
  EXPECT_TRUE(domain.router(new_core).fib().Find(kGroup)->is_primary_core);
  sim.RunUntil(sim.Now() + 10 * kSecond);
  monitor.StopSender();

  EXPECT_EQ(monitor.TotalGaps(), 0u);
  for (const auto& [node, stats] : monitor.receivers()) {
    EXPECT_GT(stats.last_seq, before)
        << "receiver " << node.value() << " stalled at the migration";
    EXPECT_EQ(stats.missing, 0u);
  }

  // The checker must reach the same verdict from the trace alone: the
  // migrate span resolved, join-new preceded drain-old, and no
  // deliver-gap invariant fired inside the span.
  CbtSuiteOptions options;
  options.config = config;
  options.node_of = MakeAddressResolver(sim);
  const CheckReport check =
      RunExpectations(TraceView(ring), CbtExpectationSuite(options), sim.Now());
  EXPECT_TRUE(check.clean()) << RenderViolations(check);
  const ExpectationStats& ordering = StatsFor(check, "migrate-join-before-drain");
  EXPECT_GE(ordering.checked, 1u);
  EXPECT_GE(ordering.satisfied, 1u);
  const ExpectationStats& resolves = StatsFor(check, "migrate-resolves");
  EXPECT_GE(resolves.satisfied, 1u);
}

}  // namespace
}  // namespace cbt::check
