// Section 6.3 rejoin loop detection under repeated link flaps, validated
// behaviourally: every REJOIN loop the flapping provokes must fall back
// to a fresh join attempt within the checker's timing bound
// (pend_join_interval + pend_join_timeout + slack), and the whole trace
// must satisfy the full CBT suite.
//
// Loop construction follows loop_test.cc: on the Figure-5 topology,
// static next-hop overrides stand in for transient unicast asymmetry
// ("R3 believes its best next-hop to R1 is R6; R6 believes R5 is its
// best next-hop"). The flap itself is real: the R2-R3 subnet goes down,
// R3's echo times out, and its reconnect rejoin travels the loop
// R3 -> R6 -> R5 -> R4 -> R3 until the link (and routing) heal.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "cbt/config.h"
#include "cbt/domain.h"
#include "check/cbt_expectations.h"
#include "check/expectation.h"
#include "check/trace_view.h"
#include "netsim/topologies.h"
#include "obs/trace.h"

namespace cbt::check {
namespace {

constexpr Ipv4Address kGroup(239, 6, 3, 1);

const ExpectationStats& StatsFor(const CheckReport& report, const char* name) {
  for (const ExpectationStats& s : report.per_expectation) {
    if (s.name == name) return s;
  }
  ADD_FAILURE() << "no stats recorded for expectation " << name;
  static const ExpectationStats empty;
  return empty;
}

core::CbtConfig TightConfig() {
  core::CbtConfig config;
  config.echo_interval = 5 * kSecond;
  config.echo_timeout = 15 * kSecond;
  config.pend_join_interval = 2 * kSecond;
  config.pend_join_timeout = 8 * kSecond;
  config.expire_pending_join = 30 * kSecond;
  config.child_assert_interval = 10 * kSecond;
  config.child_assert_expire = 25 * kSecond;
  config.iff_scan_interval = 60 * kSecond;
  config.reconnect_timeout = 30 * kSecond;
  config.proxy_refresh_interval = 20 * kSecond;
  return config;
}

class LoopFlapFixture : public ::testing::Test {
 protected:
  LoopFlapFixture()
      : topo(netsim::MakeFigure5Loop(sim)),
        domain(sim, topo, TightConfig()) {
    domain.RegisterGroup(kGroup, {topo.node("R1")});
    domain.Start();
    sim.RunUntil(kSecond);
    // Members behind R4 and R5 build the tree
    // R4 -> R3 -> R2 -> R1(core), R5 -> R4.
    domain.AddHost(lan("R4"), "m4").JoinGroup(kGroup);
    sim.RunUntil(10 * kSecond);
    domain.AddHost(lan("R5"), "m5").JoinGroup(kGroup);
    sim.RunUntil(20 * kSecond);
  }

  SubnetId lan(const std::string& router) {
    return topo.subnet("lan-" + router);
  }

  /// The subnet holding R1's primary address (joins toward R1 resolve it).
  SubnetId CoreSubnet() {
    return sim.node(topo.node("R1")).interfaces.front().subnet;
  }

  VifIndex VifToward(const std::string& from, const std::string& to) {
    const NodeId f = topo.node(from);
    const NodeId t = topo.node(to);
    for (const auto& iface : sim.node(f).interfaces) {
      for (const auto& [peer, pv] : sim.subnet(iface.subnet).attachments) {
        if (peer == t) return iface.vif;
      }
    }
    return kInvalidVif;
  }

  Ipv4Address AddressOn(const std::string& router, SubnetId subnet) {
    for (const auto& iface : sim.node(topo.node(router)).interfaces) {
      if (iface.subnet == subnet) return iface.address;
    }
    return Ipv4Address{};
  }

  /// Section 6.3's inconsistent-routing premise, as in loop_test.cc.
  void InstallLoopOverrides() {
    auto& routes = domain.routes();
    const SubnetId core_subnet = CoreSubnet();
    routes.SetStaticNextHop(
        topo.node("R3"), core_subnet, VifToward("R3", "R6"),
        AddressOn("R6", sim.interface(topo.node("R3"), VifToward("R3", "R6"))
                            .subnet));
    routes.SetStaticNextHop(
        topo.node("R6"), core_subnet, VifToward("R6", "R5"),
        AddressOn("R5", sim.interface(topo.node("R6"), VifToward("R6", "R5"))
                            .subnet));
  }

  // Ring before Simulator: agents capture the trace buffer at
  // construction.
  obs::TraceBuffer ring{1 << 17, obs::TraceLevel::kSpans};
  obs::ScopedThreadTraceBuffer scope{&ring};
  netsim::Simulator sim{1};
  netsim::Topology topo;
  core::CbtDomain domain;
};

TEST_F(LoopFlapFixture, RepeatedFlapsStayWithinTheLoopFallbackBound) {
  const SubnetId r2r3 = topo.subnet("R2-R3");
  int loops_observed = 0;
  core::CbtRouter::Callbacks cb;
  cb.on_loop_detected = [&](Ipv4Address g) {
    EXPECT_EQ(g, kGroup);
    ++loops_observed;
  };
  domain.router("R3").set_callbacks(std::move(cb));

  constexpr int kFlaps = 3;
  for (int flap = 0; flap < kFlaps; ++flap) {
    // Down phase: R3 loses its parent link while routing is inconsistent.
    // Its echo times out (<= 15s), the REJOIN-ACTIVE loops back to it,
    // and the scheduled backoff retries — looping again until repair.
    InstallLoopOverrides();
    sim.SetSubnetUp(r2r3, false);
    sim.RunUntil(sim.Now() + 30 * kSecond);

    // Up phase: link and routing heal; the next retry re-attaches via R2.
    sim.SetSubnetUp(r2r3, true);
    domain.routes().ClearStaticNextHops();
    sim.RunUntil(sim.Now() + 40 * kSecond);

    const core::FibEntry* r3 = domain.router("R3").fib().Find(kGroup);
    ASSERT_NE(r3, nullptr) << "flap " << flap;
    ASSERT_TRUE(r3->HasParent()) << "flap " << flap;
    EXPECT_EQ(sim.FindNodeByAddress(r3->parent_address), topo.node("R2"))
        << "flap " << flap;
  }
  // Every flap provoked at least one detected loop (retries during the
  // down window usually produce several).
  EXPECT_GE(loops_observed, kFlaps);
  EXPECT_GE(domain.router("R3").stats().loops_detected,
            static_cast<std::uint64_t>(kFlaps));

  // Delivery still works after the last repair.
  auto& src = domain.AddHost(lan("R1"), "src");
  src.SendToGroup(kGroup, std::vector<std::uint8_t>{1, 2, 3});
  sim.RunUntil(sim.Now() + 5 * kSecond);
  EXPECT_EQ(domain.host("m4").ReceivedCount(kGroup), 1u);
  EXPECT_EQ(domain.host("m5").ReceivedCount(kGroup), 1u);

  // Settle past every open deadline so the last windows close inside the
  // run, then validate the whole trace against the suite.
  sim.RunUntil(sim.Now() + 60 * kSecond);
  CbtSuiteOptions options;
  options.config = TightConfig();
  options.node_of = MakeAddressResolver(sim);
  const CheckReport report = RunExpectations(
      TraceView(ring), CbtExpectationSuite(options), sim.Now());

  std::ostringstream rendered;
  report.Print(rendered);
  EXPECT_EQ(report.violations(), 0u) << rendered.str();

  // The section 6.3 bound was affirmatively verified, not skipped: every
  // loop-detected with surviving tree state resolved into a fresh join
  // (or was legitimately waived) within pend_join_interval +
  // pend_join_timeout + slack — no window was truncated.
  const ExpectationStats& fallback = StatsFor(report, "loop-detect-fallback");
  EXPECT_GE(fallback.checked, static_cast<std::uint64_t>(kFlaps));
  EXPECT_EQ(fallback.violated, 0u) << rendered.str();
  EXPECT_EQ(fallback.truncated, 0u) << rendered.str();
  EXPECT_EQ(fallback.satisfied + fallback.waived, fallback.checked);
  EXPECT_EQ(report.ring_dropped, 0u);
}

}  // namespace
}  // namespace cbt::check
