// Engine-level tests for the causal-path expectation checker, driven by
// hand-built synthetic traces so every verdict path — satisfied,
// violated, waived, and both truncation rules (run ended before the
// deadline; window reaches behind the ring's evicted front) — is pinned
// down deterministically, independent of any protocol behaviour.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "check/expectation.h"
#include "check/trace_view.h"
#include "obs/trace.h"

namespace cbt::check {
namespace {

using obs::TraceBuffer;
using obs::TraceEvent;
using obs::TraceKind;
using obs::TracePhase;

constexpr Ipv4Address kGroup(239, 0, 0, 1);

TraceEvent Ev(SimTime t, const char* name,
              TracePhase phase = TracePhase::kInstant, std::int32_t node = 1,
              std::uint64_t txn = 0) {
  TraceEvent e;
  e.time = t;
  e.kind = TraceKind::kFsm;
  e.phase = phase;
  e.name = name;
  e.node = node;
  e.group = kGroup;
  e.txn = txn;
  return e;
}

const ExpectationStats& StatsFor(const CheckReport& report, const char* name) {
  for (const ExpectationStats& s : report.per_expectation) {
    if (s.name == name) return s;
  }
  ADD_FAILURE() << "no stats recorded for expectation " << name;
  static const ExpectationStats empty;
  return empty;
}

/// "Every req[B] is acked (same txn) within `deadline`, unless the node
/// crashed" — the canonical Eventually shape the CBT suite uses.
Expectation ReqAck(SimDuration deadline) {
  return Expectation::Eventually(
             "req-ack",
             Match().Kind(TraceKind::kFsm).Name("req").Phase(
                 TracePhase::kBegin),
             deadline)
      .Outcome(Match().Name("ack").SameTxn())
      .Waiver(Match().Name("crash").SameNode());
}

// --- Eventually ------------------------------------------------------------

TEST(EventuallyTest, OutcomeWithinDeadlineSatisfies) {
  TraceBuffer buf(64);
  buf.Emit(Ev(10 * kSecond, "req", TracePhase::kBegin, 1, 7));
  buf.Emit(Ev(15 * kSecond, "ack", TracePhase::kInstant, 1, 7));
  const CheckReport report = RunExpectations(
      TraceView(buf), {ReqAck(10 * kSecond)}, 100 * kSecond);
  const ExpectationStats& s = StatsFor(report, "req-ack");
  EXPECT_EQ(s.checked, 1u);
  EXPECT_EQ(s.satisfied, 1u);
  EXPECT_TRUE(report.clean());
  EXPECT_TRUE(report.issues.empty());
}

TEST(EventuallyTest, ClosedEmptyWindowViolatesAndRecordsIssue) {
  TraceBuffer buf(64);
  buf.Emit(Ev(10 * kSecond, "req", TracePhase::kBegin, 3, 7));
  const CheckReport report = RunExpectations(
      TraceView(buf), {ReqAck(10 * kSecond)}, 100 * kSecond);
  const ExpectationStats& s = StatsFor(report, "req-ack");
  EXPECT_EQ(s.checked, 1u);
  EXPECT_EQ(s.violated, 1u);
  EXPECT_FALSE(report.clean());
  ASSERT_EQ(report.issues.size(), 1u);
  const Issue& issue = report.issues.front();
  EXPECT_EQ(issue.verdict, Verdict::kViolated);
  EXPECT_EQ(issue.expectation, "req-ack");
  EXPECT_EQ(issue.seq, 0u);
  EXPECT_EQ(issue.node, 3);
  EXPECT_EQ(issue.txn, 7u);
  EXPECT_NE(issue.Render().find("[req-ack] VIOLATED"), std::string::npos);
}

TEST(EventuallyTest, WaiverInWindowVoidsTheObligation) {
  TraceBuffer buf(64);
  buf.Emit(Ev(10 * kSecond, "req", TracePhase::kBegin, 1, 7));
  buf.Emit(Ev(12 * kSecond, "crash"));
  const CheckReport report = RunExpectations(
      TraceView(buf), {ReqAck(10 * kSecond)}, 100 * kSecond);
  const ExpectationStats& s = StatsFor(report, "req-ack");
  EXPECT_EQ(s.waived, 1u);
  EXPECT_EQ(s.violated, 0u);
  EXPECT_TRUE(report.clean());
}

TEST(EventuallyTest, EarlierDecisiveEventWinsWaiverBeforeOutcome) {
  // The scan is chronological: a crash at t=12 decides before the ack at
  // t=15 is ever reached — the obligation was voided first.
  TraceBuffer buf(64);
  buf.Emit(Ev(10 * kSecond, "req", TracePhase::kBegin, 1, 7));
  buf.Emit(Ev(12 * kSecond, "crash"));
  buf.Emit(Ev(15 * kSecond, "ack", TracePhase::kInstant, 1, 7));
  const CheckReport report = RunExpectations(
      TraceView(buf), {ReqAck(10 * kSecond)}, 100 * kSecond);
  const ExpectationStats& s = StatsFor(report, "req-ack");
  EXPECT_EQ(s.waived, 1u);
  EXPECT_EQ(s.satisfied, 0u);
}

TEST(EventuallyTest, DeadlinePastEndOfRunTruncatesNotViolates) {
  TraceBuffer buf(64);
  buf.Emit(Ev(95 * kSecond, "req", TracePhase::kBegin, 1, 7));
  const CheckReport report = RunExpectations(
      TraceView(buf), {ReqAck(10 * kSecond)}, 100 * kSecond);
  const ExpectationStats& s = StatsFor(report, "req-ack");
  EXPECT_EQ(s.truncated, 1u);
  EXPECT_EQ(s.violated, 0u);
  EXPECT_TRUE(report.clean());
  // Truncations are still auditable: an issue is recorded, but it is not
  // a violation.
  ASSERT_EQ(report.issues.size(), 1u);
  EXPECT_EQ(report.issues.front().verdict, Verdict::kTruncated);
}

TEST(EventuallyTest, DeadlineFromArgBUsesPerTriggerWindow) {
  // Chaos-span shape: the Begin carries its planned duration in arg_b.
  const Match begin =
      Match().Kind(TraceKind::kChaos).Phase(TracePhase::kBegin);
  const Match end = Match().Kind(TraceKind::kChaos).Phase(TracePhase::kEnd)
                        .SameTxn();
  const auto chaos = [](SimTime t, TracePhase phase, std::uint64_t txn,
                        std::uint64_t duration) {
    TraceEvent e;
    e.time = t;
    e.kind = TraceKind::kChaos;
    e.phase = phase;
    e.name = "node-crash";
    e.node = 1;
    e.txn = txn;
    e.arg_b = duration;
    return e;
  };

  TraceBuffer buf(64);
  // Span 1: repaired exactly on schedule (5s duration, end at +5s).
  buf.Emit(chaos(10 * kSecond, TracePhase::kBegin, 1, 5 * kSecond));
  buf.Emit(chaos(15 * kSecond, TracePhase::kEnd, 1, 0));
  // Span 2: planned 2s but repaired only after 10s — past arg_b + slack.
  buf.Emit(chaos(20 * kSecond, TracePhase::kBegin, 2, 2 * kSecond));
  buf.Emit(chaos(30 * kSecond, TracePhase::kEnd, 2, 0));
  const CheckReport report = RunExpectations(
      TraceView(buf),
      {Expectation::Eventually("span-pairing", begin, 0)
           .DeadlineFromArgB(kSecond)
           .Outcome(end)},
      100 * kSecond);
  const ExpectationStats& s = StatsFor(report, "span-pairing");
  EXPECT_EQ(s.checked, 2u);
  EXPECT_EQ(s.satisfied, 1u);
  EXPECT_EQ(s.violated, 1u);
}

TEST(EventuallyTest, LookbackAcceptsEvidenceBeforeTheTrigger) {
  TraceBuffer buf(64);
  buf.Emit(Ev(6 * kSecond, "ack", TracePhase::kInstant, 1, 7));
  buf.Emit(Ev(10 * kSecond, "req", TracePhase::kBegin, 1, 7));
  const CheckReport report = RunExpectations(
      TraceView(buf),
      {ReqAck(2 * kSecond).Lookback(10 * kSecond)}, 100 * kSecond);
  EXPECT_EQ(StatsFor(report, "req-ack").satisfied, 1u);
}

TEST(EventuallyTest, LookbackReachingEvictedFrontTruncates) {
  // Capacity-4 ring: the pads evict, so a lookback window that extends
  // before the retained front cannot prove absence — truncated.
  TraceBuffer buf(4);
  for (int i = 1; i <= 6; ++i) {
    buf.Emit(Ev(i * kSecond, "pad"));
  }
  buf.Emit(Ev(10 * kSecond, "req", TracePhase::kBegin, 1, 7));
  const TraceView view(buf);
  ASSERT_GT(view.dropped(), 0u);
  const CheckReport report = RunExpectations(
      view, {ReqAck(kSecond).Lookback(20 * kSecond)}, 100 * kSecond);
  const ExpectationStats& s = StatsFor(report, "req-ack");
  EXPECT_EQ(s.truncated, 1u);
  EXPECT_EQ(s.violated, 0u);
  EXPECT_EQ(report.ring_dropped, view.dropped());
}

TEST(EventuallyTest, LookbackOverCompleteWindowStillViolates) {
  // Same shape, big ring: nothing was dropped, so the absence is real.
  TraceBuffer buf(64);
  for (int i = 1; i <= 6; ++i) {
    buf.Emit(Ev(i * kSecond, "pad"));
  }
  buf.Emit(Ev(10 * kSecond, "req", TracePhase::kBegin, 1, 7));
  const CheckReport report = RunExpectations(
      TraceView(buf), {ReqAck(kSecond).Lookback(20 * kSecond)},
      100 * kSecond);
  EXPECT_EQ(StatsFor(report, "req-ack").violated, 1u);
}

// --- PrecededBy ------------------------------------------------------------

Expectation AttachBeforeAdopt() {
  return Expectation::PrecededBy("attach-before-adopt",
                                 Match().Name("child-added"))
      .Outcome(Match().Name("attach").SameNode())
      .Invalidator(Match().Name("flushed").SameNode());
}

TEST(PrecededByTest, PriorOutcomeSatisfies) {
  TraceBuffer buf(64);
  buf.Emit(Ev(5 * kSecond, "attach"));
  buf.Emit(Ev(10 * kSecond, "child-added"));
  const CheckReport report = RunExpectations(
      TraceView(buf), {AttachBeforeAdopt()}, 100 * kSecond);
  EXPECT_EQ(StatsFor(report, "attach-before-adopt").satisfied, 1u);
}

TEST(PrecededByTest, NearestHitDecidesInvalidatorAfterOutcomeViolates) {
  TraceBuffer buf(64);
  buf.Emit(Ev(5 * kSecond, "attach"));
  buf.Emit(Ev(7 * kSecond, "flushed"));
  buf.Emit(Ev(10 * kSecond, "child-added"));
  const CheckReport report = RunExpectations(
      TraceView(buf), {AttachBeforeAdopt()}, 100 * kSecond);
  EXPECT_EQ(StatsFor(report, "attach-before-adopt").violated, 1u);
  ASSERT_EQ(report.issues.size(), 1u);
  EXPECT_NE(report.issues.front().message.find("invalidator"),
            std::string::npos);
}

TEST(PrecededByTest, NearestHitDecidesOutcomeAfterInvalidatorSatisfies) {
  TraceBuffer buf(64);
  buf.Emit(Ev(3 * kSecond, "flushed"));
  buf.Emit(Ev(5 * kSecond, "attach"));
  buf.Emit(Ev(10 * kSecond, "child-added"));
  const CheckReport report = RunExpectations(
      TraceView(buf), {AttachBeforeAdopt()}, 100 * kSecond);
  EXPECT_EQ(StatsFor(report, "attach-before-adopt").satisfied, 1u);
}

TEST(PrecededByTest, NoEvidenceInCompleteTraceViolates) {
  TraceBuffer buf(64);
  buf.Emit(Ev(10 * kSecond, "child-added"));
  const CheckReport report = RunExpectations(
      TraceView(buf), {AttachBeforeAdopt()}, 100 * kSecond);
  EXPECT_EQ(StatsFor(report, "attach-before-adopt").violated, 1u);
}

TEST(PrecededByTest, BackwardScanIntoEvictedRegionTruncates) {
  TraceBuffer buf(4);
  for (int i = 1; i <= 6; ++i) {
    buf.Emit(Ev(i * kSecond, "pad"));
  }
  buf.Emit(Ev(10 * kSecond, "child-added"));
  const TraceView view(buf);
  ASSERT_TRUE(view.truncated_front());
  const CheckReport report =
      RunExpectations(view, {AttachBeforeAdopt()}, 100 * kSecond);
  const ExpectationStats& s = StatsFor(report, "attach-before-adopt");
  EXPECT_EQ(s.truncated, 1u);
  EXPECT_EQ(s.violated, 0u);
}

// --- Never -----------------------------------------------------------------

Expectation CrashSilence() {
  return Expectation::Never("crash-silence", Match().Name("crash"),
                            Match().Name("restart").SameNode(),
                            Match().Name("act").SameNode());
}

TEST(NeverTest, ForbiddenEventInsideSpanViolates) {
  TraceBuffer buf(64);
  buf.Emit(Ev(10 * kSecond, "crash"));
  buf.Emit(Ev(15 * kSecond, "act"));
  buf.Emit(Ev(20 * kSecond, "restart"));
  const CheckReport report =
      RunExpectations(TraceView(buf), {CrashSilence()}, 100 * kSecond);
  EXPECT_EQ(StatsFor(report, "crash-silence").violated, 1u);
  ASSERT_EQ(report.issues.size(), 1u);
  EXPECT_NE(report.issues.front().message.find("forbidden"),
            std::string::npos);
}

TEST(NeverTest, TerminatorClosesTheSpan) {
  TraceBuffer buf(64);
  buf.Emit(Ev(10 * kSecond, "crash"));
  buf.Emit(Ev(12 * kSecond, "restart"));
  buf.Emit(Ev(15 * kSecond, "act"));  // after the span: legal
  const CheckReport report =
      RunExpectations(TraceView(buf), {CrashSilence()}, 100 * kSecond);
  EXPECT_EQ(StatsFor(report, "crash-silence").satisfied, 1u);
}

TEST(NeverTest, OtherNodesEventsDoNotViolateTheSpan) {
  TraceBuffer buf(64);
  buf.Emit(Ev(10 * kSecond, "crash", TracePhase::kInstant, 1));
  buf.Emit(Ev(15 * kSecond, "act", TracePhase::kInstant, 2));
  buf.Emit(Ev(20 * kSecond, "restart", TracePhase::kInstant, 1));
  const CheckReport report =
      RunExpectations(TraceView(buf), {CrashSilence()}, 100 * kSecond);
  EXPECT_EQ(StatsFor(report, "crash-silence").satisfied, 1u);
}

TEST(NeverTest, UnterminatedSpanIsVacuouslySatisfied) {
  // The run ended mid-span with no forbidden evidence: absence over
  // missing data never fails.
  TraceBuffer buf(64);
  buf.Emit(Ev(10 * kSecond, "crash"));
  const CheckReport report =
      RunExpectations(TraceView(buf), {CrashSilence()}, 100 * kSecond);
  EXPECT_EQ(StatsFor(report, "crash-silence").satisfied, 1u);
}

// --- Match semantics -------------------------------------------------------

TEST(MatchTest, SameTxnRejectsUncorrelatedEvents) {
  TraceEvent trigger = Ev(kSecond, "a", TracePhase::kInstant, 1, 0);
  TraceEvent cand = Ev(2 * kSecond, "a", TracePhase::kInstant, 1, 0);
  // txn 0 means "uncorrelated": two zero-txn events are NOT the same
  // transaction.
  EXPECT_FALSE(Match().SameTxn().Matches(cand, trigger));
  trigger.txn = cand.txn = 9;
  EXPECT_TRUE(Match().SameTxn().Matches(cand, trigger));
  cand.txn = 8;
  EXPECT_FALSE(Match().SameTxn().Matches(cand, trigger));
}

TEST(MatchTest, ArgConstraints) {
  TraceEvent e = Ev(kSecond, "e");
  e.arg_b = 0;
  EXPECT_TRUE(Match().ArgB(0).Matches(e, e));
  EXPECT_FALSE(Match().ArgBNonZero().Matches(e, e));
  e.arg_b = 3;
  EXPECT_FALSE(Match().ArgB(0).Matches(e, e));
  EXPECT_TRUE(Match().ArgB(3).Matches(e, e));
  EXPECT_TRUE(Match().ArgBNonZero().Matches(e, e));
  e.arg_a = 5;
  EXPECT_TRUE(Match().ArgA(5).Matches(e, e));
  EXPECT_FALSE(Match().ArgA(6).Matches(e, e));
}

TEST(MatchTest, NameAndDetailCompareByContentNotPointer) {
  // Patterns built in one translation unit must match events emitted in
  // another: strcmp, not pointer identity.
  static const char kNameCopy[] = "join";
  static const char kDetailCopy[] = "failed";
  TraceEvent e = Ev(kSecond, "join");
  e.detail = "failed";
  EXPECT_TRUE(Match().Name(kNameCopy).Matches(e, e));
  EXPECT_TRUE(Match().Detail(kDetailCopy).Matches(e, e));
  e.detail = nullptr;
  EXPECT_FALSE(Match().Detail(kDetailCopy).Matches(e, e));
}

TEST(MatchTest, WhereRelatesCandidateToTrigger) {
  const TraceEvent trigger = Ev(10 * kSecond, "t");
  const TraceEvent later = Ev(15 * kSecond, "c");
  const TraceEvent earlier = Ev(5 * kSecond, "c");
  const Match after = Match().Where(
      [](const TraceEvent& cand, const TraceEvent& trig) {
        return cand.time > trig.time;
      });
  EXPECT_TRUE(after.Matches(later, trigger));
  EXPECT_FALSE(after.Matches(earlier, trigger));
}

// --- CheckReport -----------------------------------------------------------

TEST(CheckReportTest, MergeSumsStatsByNameAndAppendsUnknown) {
  CheckReport a;
  a.per_expectation.push_back({"x", 2, 1, 1, 0, 0});
  a.ring_dropped = 5;
  a.events_scanned = 100;
  a.issues.push_back(Issue{"x", Verdict::kViolated, 1, kSecond, 0, {}, 0,
                           "first"});

  CheckReport b;
  b.per_expectation.push_back({"x", 3, 3, 0, 0, 0});
  b.per_expectation.push_back({"y", 1, 0, 0, 1, 0});
  b.ring_dropped = 7;
  b.events_scanned = 50;

  a.Merge(b);
  ASSERT_EQ(a.per_expectation.size(), 2u);
  EXPECT_EQ(StatsFor(a, "x").checked, 5u);
  EXPECT_EQ(StatsFor(a, "x").satisfied, 4u);
  EXPECT_EQ(StatsFor(a, "x").violated, 1u);
  EXPECT_EQ(StatsFor(a, "y").truncated, 1u);
  EXPECT_EQ(a.ring_dropped, 12u);
  EXPECT_EQ(a.events_scanned, 150u);
  EXPECT_EQ(a.checked(), 6u);
  EXPECT_EQ(a.violations(), 1u);
  EXPECT_EQ(a.truncations(), 1u);
  EXPECT_FALSE(a.clean());
}

TEST(CheckReportTest, PrintAndJsonCarryTheCounts) {
  TraceBuffer buf(64);
  buf.Emit(Ev(10 * kSecond, "req", TracePhase::kBegin, 1, 7));
  const CheckReport report = RunExpectations(
      TraceView(buf), {ReqAck(10 * kSecond)}, 100 * kSecond);

  std::ostringstream text;
  report.Print(text);
  EXPECT_NE(text.str().find("check: 1 expectations, 1 triggers"),
            std::string::npos);
  EXPECT_NE(text.str().find("req-ack: checked=1 ok=0 violated=1"),
            std::string::npos);
  EXPECT_NE(text.str().find("[req-ack] VIOLATED"), std::string::npos);

  std::ostringstream json;
  report.WriteJson(json);
  EXPECT_NE(json.str().find("\"violations\":1"), std::string::npos);
  EXPECT_NE(json.str().find("\"expectations\":[{\"name\":\"req-ack\""),
            std::string::npos);
  EXPECT_NE(json.str().find("\"issues\":[{"), std::string::npos);
}

}  // namespace
}  // namespace cbt::check
