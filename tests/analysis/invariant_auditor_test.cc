#include "analysis/invariant_auditor.h"

#include <gtest/gtest.h>

#include "cbt/domain.h"
#include "netsim/topologies.h"

namespace cbt::analysis {
namespace {

using core::CbtDomain;
using core::FibEntry;
using netsim::Simulator;
using netsim::Topology;

constexpr Ipv4Address kGroup(239, 1, 2, 3);

/// Diamond r0 -- r1 -- r3 / r0 -- r2 -- r3, member behind r0, core r3.
class AuditorFixture : public ::testing::Test {
 protected:
  AuditorFixture() {
    r0 = sim.AddNode("r0", true);
    r1 = sim.AddNode("r1", true);
    r2 = sim.AddNode("r2", true);
    r3 = sim.AddNode("r3", true);
    topo.routers = {r0, r1, r2, r3};
    topo.nodes = {{"r0", r0}, {"r1", r1}, {"r2", r2}, {"r3", r3}};
    l01 = sim.Connect(r0, r1);
    l13 = sim.Connect(r1, r3);
    l02 = sim.Connect(r0, r2);
    l23 = sim.Connect(r2, r3);
    lan0 = sim.AddSubnet(
        "lan0", SubnetAddress::FromPrefix(Ipv4Address(10, 30, 0, 0), 16));
    sim.Attach(r0, lan0);
    topo.subnets = {{"l01", l01}, {"l13", l13}, {"l02", l02},
                    {"l23", l23}, {"lan0", lan0}};
    domain.emplace(sim, topo);
    domain->RegisterGroup(kGroup, {r3});
    domain->Start();
    sim.RunUntil(kSecond);
    member = &domain->AddHost(lan0, "m");
    member->JoinGroup(kGroup);
    sim.RunUntil(10 * kSecond);
  }

  FibEntry& Entry(NodeId id) {
    FibEntry* entry = domain->router(id).mutable_fib().Find(kGroup);
    EXPECT_NE(entry, nullptr);
    return *entry;
  }

  Simulator sim{1};
  Topology topo;
  NodeId r0, r1, r2, r3;
  SubnetId l01, l13, l02, l23, lan0;
  std::optional<CbtDomain> domain;
  core::HostAgent* member = nullptr;
};

TEST_F(AuditorFixture, ConvergedTreeAuditsClean) {
  InvariantAuditor auditor(*domain);
  const AuditReport report = auditor.Audit();
  EXPECT_TRUE(report.Clean()) << report.Summary();
  EXPECT_EQ(report.groups_checked, 1u);
  EXPECT_EQ(report.routers_on_tree, 3u);  // r0, r1, r3 (tie-break via r1)
  EXPECT_EQ(report.at, sim.Now());
}

TEST_F(AuditorFixture, DetectsDuplicateChild) {
  FibEntry& entry = Entry(r1);
  ASSERT_FALSE(entry.children.empty());
  entry.children.push_back(entry.children.front());

  InvariantAuditor auditor(*domain);
  const AuditReport report = auditor.Audit();
  EXPECT_FALSE(report.Clean());
  EXPECT_EQ(report.CountOf(InvariantKind::kDuplicateChild), 1u);
}

TEST_F(AuditorFixture, DetectsAsymmetryAndDetachedMemberLan) {
  // Wipe the member DR's entry behind the protocol's back: r1 now records
  // a child with no reciprocal state, and lan0 has members but no
  // on-tree DR.
  ASSERT_TRUE(domain->router(r0).mutable_fib().Remove(kGroup));

  InvariantAuditor auditor(*domain);
  const AuditReport report = auditor.Audit();
  EXPECT_FALSE(report.Clean());
  EXPECT_GE(report.CountOf(InvariantKind::kAsymmetricChild), 1u);
  EXPECT_EQ(report.CountOf(InvariantKind::kMemberLanDetached), 1u);
}

TEST_F(AuditorFixture, DetectsBrokenParentLinkWhileParentIsDown) {
  // Silent death, audited before any timer can react: r0's parent is a
  // dead node and r3's child entry for r1 has no live reciprocal state.
  sim.SetNodeUp(r1, false);

  InvariantAuditor auditor(*domain);
  const AuditReport report = auditor.Audit();
  EXPECT_FALSE(report.Clean());
  EXPECT_GE(report.CountOf(InvariantKind::kBrokenParentLink), 1u);
  EXPECT_GE(report.CountOf(InvariantKind::kAsymmetricChild), 1u);
}

TEST_F(AuditorFixture, DetectsParentLoop) {
  // Rewire r1's parent pointer back at its own child r0: r0 -> r1 -> r0.
  FibEntry& r1_entry = Entry(r1);
  const FibEntry& r0_entry = Entry(r0);
  ASSERT_FALSE(r1_entry.children.empty());
  r1_entry.parent_address = r1_entry.children.front().address;
  r1_entry.parent_vif = r1_entry.children.front().vif;
  ASSERT_EQ(sim.FindNodeByAddress(r1_entry.parent_address), r0);
  (void)r0_entry;

  InvariantAuditor auditor(*domain);
  const AuditReport report = auditor.Audit();
  EXPECT_FALSE(report.Clean());
  // The cycle is reported exactly once, not once per cycle member.
  EXPECT_EQ(report.CountOf(InvariantKind::kParentLoop), 1u);
}

TEST_F(AuditorFixture, DetectsStaleStateForMemberlessGroup) {
  // A leftover entry for a group nobody belongs to, on a non-core router.
  const Ipv4Address ghost(239, 66, 6, 6);
  domain->router(r2).mutable_fib().Create(ghost);

  InvariantAuditor auditor(*domain);
  const AuditReport report = auditor.Audit();
  EXPECT_EQ(report.groups_checked, 2u);  // kGroup + the ghost from the FIB
  EXPECT_GE(report.CountOf(InvariantKind::kStaleState), 1u);
  // The established group is still fine: scope violations to the ghost.
  for (const Violation& v : report.violations) EXPECT_EQ(v.group, ghost);
}

TEST_F(AuditorFixture, ConvergenceProbeMeasuresRecovery) {
  const SimTime fault_at = sim.Now();
  domain->CrashRouter(r1);
  InvariantAuditor auditor(*domain);
  EXPECT_FALSE(auditor.Audit().Clean());

  // Default timers: echo timeout 90s + reconnect, child-assert expiry for
  // the stale child on r3 within 180s + scan.
  const auto clean =
      RunUntilInvariantsHold(*domain, fault_at + 600 * kSecond);
  ASSERT_TRUE(clean.has_value());
  EXPECT_GT(*clean, fault_at);
  EXPECT_TRUE(auditor.Audit().Clean());
}

TEST_F(AuditorFixture, ConvergenceProbeTimesOutOnPersistentViolation) {
  FibEntry& entry = Entry(r1);
  ASSERT_FALSE(entry.children.empty());
  entry.children.push_back(entry.children.front());

  // The duplicate's stale copy outlives a 60s deadline under the default
  // 180s CHILD-ASSERT-EXPIRE, so the probe must give up at the deadline.
  const SimTime deadline = sim.Now() + 60 * kSecond;
  EXPECT_FALSE(RunUntilInvariantsHold(*domain, deadline).has_value());
  EXPECT_EQ(sim.Now(), deadline);
}

}  // namespace
}  // namespace cbt::analysis
