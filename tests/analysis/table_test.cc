#include "analysis/table.h"

#include <gtest/gtest.h>

#include <sstream>

namespace cbt::analysis {
namespace {

TEST(Table, AlignsColumnsAndPrintsRule) {
  Table t({"name", "value"});
  t.AddRow({"alpha", "1"});
  t.AddRow({"b", "20000"});
  std::ostringstream os;
  t.Print(os);
  const std::string out = os.str();
  // Header present, rule line present, rows present.
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("-----"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("20000"), std::string::npos);
  // All lines share the same width (alignment).
  std::istringstream lines(out);
  std::string first, line;
  std::getline(lines, first);
  std::getline(lines, line);  // rule
  EXPECT_EQ(first.size(), line.size());
}

TEST(Table, CsvOutput) {
  Table t({"a", "b", "c"});
  t.AddRow({"1", "2", "3"});
  t.AddRow({"x", "y", "z"});
  std::ostringstream os;
  t.PrintCsv(os);
  EXPECT_EQ(os.str(), "a,b,c\n1,2,3\nx,y,z\n");
}

TEST(Table, NumFormatsIntegerTypes) {
  EXPECT_EQ(Table::Num(42), "42");
  EXPECT_EQ(Table::Num(std::uint64_t{18446744073709551615ull}),
            "18446744073709551615");
  EXPECT_EQ(Table::Num(std::size_t{7}), "7");
  EXPECT_EQ(Table::Num(-3), "-3");
}

TEST(Table, FixedFormatsDoubles) {
  EXPECT_EQ(Table::Fixed(3.14159, 2), "3.14");
  EXPECT_EQ(Table::Fixed(3.14159, 0), "3");
  EXPECT_EQ(Table::Fixed(2.0, 1), "2.0");
  EXPECT_EQ(Table::Fixed(-1.5, 2), "-1.50");
}

TEST(Table, EmptyTableStillPrintsHeader) {
  Table t({"only"});
  std::ostringstream os;
  t.Print(os);
  EXPECT_NE(os.str().find("only"), std::string::npos);
}

}  // namespace
}  // namespace cbt::analysis
