#include "analysis/tree_metrics.h"

#include <gtest/gtest.h>

#include "netsim/topologies.h"

namespace cbt::analysis {
namespace {

using netsim::MakeGrid;
using netsim::MakeLine;
using netsim::MakeStar;
using netsim::Simulator;
using netsim::Topology;

TEST(SharedTree, LineTreeIsThePath) {
  Simulator sim;
  Topology topo = MakeLine(sim, 5, 2 * kMillisecond);
  routing::RouteManager routes(sim);
  const Tree tree =
      BuildSharedTree(routes, topo.routers[0], {topo.routers[4]});
  EXPECT_EQ(tree.Cost(), 4u);
  EXPECT_TRUE(tree.Contains(topo.routers[2]));
  EXPECT_EQ(tree.DelayBetween(topo.routers[4], topo.routers[0]),
            8 * kMillisecond);
  EXPECT_EQ(tree.HopsBetween(topo.routers[4], topo.routers[0]), 4u);
}

TEST(SharedTree, JoinPathsShareSegments) {
  // Star: members on 3 spokes, core on the hub: cost = 3 (not 3 separate
  // full paths).
  Simulator sim;
  Topology topo = MakeStar(sim, 5);
  routing::RouteManager routes(sim);
  const Tree tree = BuildSharedTree(
      routes, topo.routers[0],
      {topo.routers[1], topo.routers[2], topo.routers[3]});
  EXPECT_EQ(tree.Cost(), 3u);
  EXPECT_EQ(tree.NodeCount(), 4u);
}

TEST(SharedTree, PathBetweenCrossesLca) {
  Simulator sim;
  Topology topo = MakeStar(sim, 4);
  routing::RouteManager routes(sim);
  const Tree tree = BuildSharedTree(routes, topo.routers[0],
                                    {topo.routers[1], topo.routers[2]});
  const auto path = tree.PathBetween(topo.routers[1], topo.routers[2]);
  ASSERT_EQ(path.size(), 3u);
  EXPECT_EQ(path[0], topo.routers[1]);
  EXPECT_EQ(path[1], topo.routers[0]);  // the hub is the LCA
  EXPECT_EQ(path[2], topo.routers[2]);
}

TEST(SharedTree, MemberOnCoreCostsNothing) {
  Simulator sim;
  Topology topo = MakeLine(sim, 3);
  routing::RouteManager routes(sim);
  const Tree tree = BuildSharedTree(routes, topo.routers[1],
                                    {topo.routers[1]});
  EXPECT_EQ(tree.Cost(), 0u);
  EXPECT_TRUE(tree.Contains(topo.routers[1]));
}

TEST(SourceTree, MatchesShortestPaths) {
  Simulator sim;
  Topology topo = MakeGrid(sim, 3, 3);
  routing::RouteManager routes(sim);
  const NodeId src = topo.routers[0];   // corner (0,0)
  const NodeId far = topo.routers[8];   // corner (2,2)
  const Tree spt = BuildSourceTree(routes, src, {far, topo.routers[2]});
  // Tree paths from the source have shortest-path length.
  EXPECT_EQ(spt.HopsBetween(src, far), 4u);
  EXPECT_EQ(spt.HopsBetween(src, topo.routers[2]), 2u);
}

TEST(DelayRatio, SourceTreePathsAreOptimalFromRoot) {
  // Any tree-vs-unicast ratio from the SPT root is exactly 1.
  Simulator sim;
  Topology topo = MakeGrid(sim, 3, 3);
  routing::RouteManager routes(sim);
  const NodeId src = topo.routers[4];  // centre
  const Tree spt = BuildSourceTree(
      routes, src, {topo.routers[0], topo.routers[8], topo.routers[2]});
  for (const NodeId m : {topo.routers[0], topo.routers[8], topo.routers[2]}) {
    EXPECT_EQ(spt.DelayBetween(src, m), routes.PathDelay(src, m));
  }
}

TEST(DelayRatio, SharedTreeDetourMeasured) {
  // Line 0-1-2-3-4 with core at 0: members 3 and 4 talk via their LCA
  // (3), so member-to-member delay on the tree equals unicast — but a
  // core at the END for members 0 and 4 forces ratio 1 too... use a star
  // with a far core: members on spokes 1,2; core on spoke 3. Path 1->2 on
  // tree goes via hub AND spoke3? No — LCA of 1,2 is the hub. Tree edges:
  // 1-hub, 2-hub, hub-3 (core). Delay(1,2) = 2 links = unicast. Detour
  // shows up only with deeper trees: line with core at end, members 0,2:
  // tree path 0->2 via 1 is also unicast-shortest. True detours need a
  // topology where the unicast path between members is NOT via the tree:
  // a cycle.
  Simulator sim;
  // Square cycle a-b-c-d-a; core at a; members c (via b, tie-break) & d.
  const NodeId a = sim.AddNode("a", true);
  const NodeId b = sim.AddNode("b", true);
  const NodeId c = sim.AddNode("c", true);
  const NodeId d = sim.AddNode("d", true);
  sim.Connect(a, b);
  sim.Connect(b, c);
  sim.Connect(c, d);
  sim.Connect(d, a);
  routing::RouteManager routes(sim);

  const Tree tree = BuildSharedTree(routes, a, {c, d});
  // c joins via b (2 hops, tie-break by address) or via d; d joins via a
  // directly. Either way c<->d unicast is 1 hop, but if their tree paths
  // diverge the ratio exceeds 1.
  const DelayRatio ratio = SharedTreeDelayRatio(routes, tree, {c, d});
  EXPECT_GE(ratio.max_ratio, 1.0);
  // The shared tree can at worst double-ish the path here.
  EXPECT_LE(ratio.max_ratio, 4.0);
}

TEST(LinkLoad, SharedTreeConcentratesOnTreeLinks) {
  Simulator sim;
  Topology topo = MakeStar(sim, 4);
  routing::RouteManager routes(sim);
  const std::vector<NodeId> members{topo.routers[1], topo.routers[2],
                                    topo.routers[3]};
  const Tree tree = BuildSharedTree(routes, topo.routers[0], members);
  const auto load = SharedTreeLinkLoad(routes, tree, members);
  // 3 senders x every tree link once -> each of the 3 links carries 3.
  ASSERT_EQ(load.size(), 3u);
  for (const auto& [edge, packets] : load) {
    EXPECT_EQ(packets, 3);
  }
}

TEST(LinkLoad, SourceTreesSpreadLoad) {
  Simulator sim;
  Topology topo = MakeStar(sim, 4);
  routing::RouteManager routes(sim);
  const std::vector<NodeId> members{topo.routers[1], topo.routers[2],
                                    topo.routers[3]};
  const auto load = SourceTreesLinkLoad(routes, members, members);
  // Sender i's SPT uses its own uplink once plus the receivers' uplinks;
  // each spoke link carries: 1 (as sender) + 2 (as receiver) = 3, same
  // total but identical here because the star is degenerate. The
  // qualitative contrast (max load lower for SPT) appears on richer
  // graphs — asserted in the benches; here just check structure.
  int max_load = 0;
  for (const auto& [edge, packets] : load) max_load = std::max(max_load, packets);
  EXPECT_EQ(max_load, 3);
}

TEST(LinkLoad, OffTreeSenderAddsUnicastLegToCore) {
  Simulator sim;
  Topology topo = MakeLine(sim, 4);
  routing::RouteManager routes(sim);
  // Core at 0, member at 1; sender at 3 is off-tree.
  const Tree tree = BuildSharedTree(routes, topo.routers[0],
                                    {topo.routers[1]});
  EXPECT_FALSE(tree.Contains(topo.routers[3]));
  const auto load = SharedTreeLinkLoad(routes, tree, {topo.routers[3]});
  // Unicast leg 3->2->1->0 (3 links) + the tree link 1-0 once more.
  int total = 0;
  for (const auto& [edge, packets] : load) total += packets;
  EXPECT_EQ(total, 4);
}

TEST(UnidirectionalTree, LoadDoublesOnSenderUpLegs) {
  // Star: members on spokes 1..3, RP at the hub. Bidirectional load on
  // each spoke link: 3 (one per sender). Unidirectional: each sender
  // additionally pays its up-leg, so its own link carries 1 (up) + 3
  // (down) = 4.
  Simulator sim;
  Topology topo = MakeStar(sim, 4);
  routing::RouteManager routes(sim);
  const std::vector<NodeId> members{topo.routers[1], topo.routers[2],
                                    topo.routers[3]};
  const Tree tree = BuildSharedTree(routes, topo.routers[0], members);
  const auto bidir = SharedTreeLinkLoad(routes, tree, members);
  const auto unidir = UnidirectionalSharedTreeLinkLoad(routes, tree, members);
  for (const auto& [edge, packets] : bidir) {
    EXPECT_EQ(packets, 3);
    EXPECT_EQ(unidir.at(edge), 4) << "up-leg adds one transmission";
  }
}

TEST(UnidirectionalTree, DelayAlwaysDetoursViaRoot) {
  // Line 0-1-2 with RP at 0, members 1 and 2: bidirectional delay(2,1) is
  // the direct tree path (1 hop); unidirectional goes 2->0 then 0->1.
  Simulator sim;
  Topology topo = MakeLine(sim, 3, 1 * kMillisecond);
  routing::RouteManager routes(sim);
  const std::vector<NodeId> members{topo.routers[1], topo.routers[2]};
  const Tree tree = BuildSharedTree(routes, topo.routers[0], members);

  const DelayRatio bidir = SharedTreeDelayRatio(routes, tree, members);
  const DelayRatio unidir = UnidirectionalTreeDelayRatio(routes, tree, members);
  EXPECT_DOUBLE_EQ(bidir.max_ratio, 1.0) << "tree path == unicast on a line";
  EXPECT_GT(unidir.max_ratio, 2.0) << "2->0->1 = 3 hops vs 1 hop unicast";
}

TEST(Summarize, MinMaxMean) {
  const Summary s = Summarize({1.0, 2.0, 6.0});
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 6.0);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  const Summary empty = Summarize({});
  EXPECT_DOUBLE_EQ(empty.mean, 0.0);
}

}  // namespace
}  // namespace cbt::analysis
