#include "check/trace_view.h"

namespace cbt::check {

TraceView::TraceView(const obs::TraceBuffer& buffer)
    : dropped_(buffer.dropped()), emitted_(buffer.emitted()) {
  events_.reserve(buffer.size());
  buffer.ForEach([&](std::uint64_t seq, const obs::TraceEvent& e) {
    events_.push_back(ViewEvent{seq, e});
  });
}

}  // namespace cbt::check
