#include "check/cbt_expectations.h"

#include <map>
#include <memory>

#include "netsim/simulator.h"

namespace cbt::check {

namespace {

constexpr SimDuration kSlack = 1 * kSecond;

Match Fsm(const char* name) {
  return Match().Kind(obs::TraceKind::kFsm).Name(name);
}
Match FsmB(const char* name) {
  return Fsm(name).Phase(obs::TracePhase::kBegin);
}
Match FsmE(const char* name) {
  return Fsm(name).Phase(obs::TracePhase::kEnd);
}

/// A nacked or silently dropped join restarts its expiry clock each time
/// the pending state re-forwards (section 5.3 nack handling cycles
/// cores), so the observable bound is a small multiple of the base
/// lifetime, not the lifetime itself. Three cycles covers the nack
/// chains the soak topologies produce.
constexpr int kJoinCycles = 3;

}  // namespace

std::function<std::int32_t(Ipv4Address)> MakeAddressResolver(
    const netsim::Simulator& sim) {
  auto table = std::make_shared<std::map<std::uint32_t, std::int32_t>>();
  const auto count = static_cast<std::int32_t>(sim.node_count());
  for (std::int32_t n = 0; n < count; ++n) {
    for (const netsim::Interface& iface : sim.node(NodeId(n)).interfaces) {
      (*table)[iface.address.bits()] = n;
    }
  }
  return [table](Ipv4Address addr) -> std::int32_t {
    const auto it = table->find(addr.bits());
    return it == table->end() ? -1 : it->second;
  };
}

std::vector<Expectation> GenericFaultSuite() {
  std::vector<Expectation> suite;

  // Every injected fault span is repaired on schedule: the chaos Begin
  // carries its duration in arg_b and its plan index in txn.
  suite.push_back(
      Expectation::Eventually(
          "chaos-span-pairing",
          Match().Kind(obs::TraceKind::kChaos).Phase(obs::TracePhase::kBegin),
          0)
          .DeadlineFromArgB(kSlack)
          .Outcome(Match()
                       .Kind(obs::TraceKind::kChaos)
                       .Phase(obs::TracePhase::kEnd)
                       .SameTxn())
          .Describe("every injected fault is repaired at its planned time"));

  // A crashed node is silent until its restart marker: any protocol or
  // IGMP event from it in between means state survived the crash.
  suite.push_back(
      Expectation::Never(
          "crash-silence", Fsm("crash"), Fsm("restart").SameNode(),
          Match().SameNode().Where([](const obs::TraceEvent& c,
                                      const obs::TraceEvent&) {
            return c.kind == obs::TraceKind::kFsm ||
                   c.kind == obs::TraceKind::kPacket ||
                   c.kind == obs::TraceKind::kIgmp;
          }))
          .Describe("a crashed node emits nothing until it restarts"));

  return suite;
}

std::vector<Expectation> CbtExpectationSuite(const CbtSuiteOptions& options) {
  const core::CbtConfig& c = options.config;
  std::vector<Expectation> suite = GenericFaultSuite();

  // --- Chaos hooks actually reach the routers (wiring sanity). -------------
  suite.push_back(
      Expectation::Eventually("crash-hook-fired",
                              Match()
                                  .Kind(obs::TraceKind::kChaos)
                                  .Name("node-crash")
                                  .Phase(obs::TracePhase::kBegin),
                              kSlack)
          .Outcome(Fsm("crash").SameNode())
          .Describe("an injected node-crash reaches the router's Crash()"));
  suite.push_back(
      Expectation::Eventually("restart-hook-fired",
                              Match()
                                  .Kind(obs::TraceKind::kChaos)
                                  .Name("node-crash")
                                  .Phase(obs::TracePhase::kEnd),
                              kSlack)
          .Outcome(Fsm("restart").SameNode())
          .Describe("a repaired node-crash reaches the router's Restart()"));

  // --- Join transactions resolve (sections 2.4, 6.1, 6.2). -----------------
  // Every join span closes: established / proxy-acked / failed /
  // loop-abort / superseded, all carrying the Begin's txn. A crash of the
  // joining node waives (the restart path re-originates a fresh txn).
  const SimDuration join_slack = c.pend_join_interval + kSlack;
  suite.push_back(
      Expectation::Eventually("join-resolves-fresh", FsmB("join").ArgB(0),
                              kJoinCycles * c.expire_pending_join + join_slack)
          .Outcome(FsmE("join").SameTxn())
          .Waiver(Fsm("crash").SameNode())
          .Describe("a fresh locally-originated join reaches a terminal "
                    "outcome within its expiry budget"));
  suite.push_back(
      Expectation::Eventually("join-resolves-reconnect", FsmB("join").ArgB(1),
                              kJoinCycles * c.reconnect_timeout + join_slack)
          .Outcome(FsmE("join").SameTxn())
          .Waiver(Fsm("crash").SameNode())
          .Describe("a section 6.1 reconnect join resolves within the "
                    "reconnect budget"));
  suite.push_back(
      Expectation::Eventually("join-resolves-core-rejoin", FsmB("join").ArgB(2),
                              kJoinCycles * c.expire_pending_join + join_slack)
          .Outcome(FsmE("join").SameTxn())
          .Waiver(Fsm("crash").SameNode())
          .Describe("a restarted core's rejoin toward the primary resolves"));

  // --- Parent loss is acted on immediately (section 6.1). ------------------
  // StartReconnect runs in the same event: the router either starts a
  // reconnect join, anchors as a core, or tears down for lack of routes.
  suite.push_back(
      Expectation::Eventually("reconnect-after-parent-loss",
                              Fsm("parent-lost"), kSlack)
          .Outcome(FsmB("join").SameNode().SameGroup())
          .Outcome(Fsm("core-anchored").SameNode().SameGroup())
          .Outcome(Fsm("teardown").SameNode().SameGroup())
          .Waiver(Fsm("crash").SameNode())
          .Waiver(FsmE("join").SameNode().SameGroup())
          .Waiver(Fsm("flushed").SameNode().SameGroup())
          .Waiver(FsmB("quit").SameNode().SameGroup())
          .Describe("echo timeout triggers reconnect, core anchoring, or "
                    "teardown at once"));

  // --- Section 6.3 loop detection falls back, not livelocks. ---------------
  // A REJOIN-NACTIVE with surviving tree state (arg_a=1) must produce a
  // fresh join attempt (or resolve some other way) within one pending
  // cycle.
  suite.push_back(
      Expectation::Eventually(
          "loop-detect-fallback", Fsm("loop-detected").ArgA(1),
          c.pend_join_interval + c.pend_join_timeout + kSlack)
          .Outcome(FsmB("join").SameNode().SameGroup())
          .Outcome(Fsm("core-anchored").SameNode().SameGroup())
          .Outcome(Fsm("branch-up").SameNode().SameGroup())
          .Outcome(Fsm("teardown").SameNode().SameGroup())
          .Waiver(Fsm("crash").SameNode())
          .Waiver(Fsm("flushed").SameNode().SameGroup())
          .Waiver(FsmB("quit").SameNode().SameGroup())
          .Waiver(FsmE("quit").SameNode().SameGroup())
          .Waiver(FsmE("join").SameNode().SameGroup())
          .Describe("section 6.3 loop detection retries the join rather "
                    "than looping"));

  // --- Flush handling (section 2.7 / 5.6). ---------------------------------
  // A flushed router with local members schedules and executes a rejoin.
  suite.push_back(
      Expectation::Eventually("flush-rejoin",
                              Fsm("flushed").Detail("rejoin-scheduled"),
                              c.flush_rejoin_delay + kSlack)
          .Outcome(FsmB("join").SameNode().SameGroup())
          .Outcome(Fsm("core-anchored").SameNode().SameGroup())
          .Outcome(Fsm("branch-up").SameNode().SameGroup())
          .Outcome(FsmE("join").SameNode().SameGroup())
          .Waiver(Fsm("crash").SameNode())
          .Describe("a flushed router with members rejoins after "
                    "flush_rejoin_delay"));

  // --- Quit transactions resolve (section 2.7). ----------------------------
  suite.push_back(
      Expectation::Eventually(
          "quit-completes", FsmB("quit"),
          static_cast<SimDuration>(c.quit_retries + 1) * c.pend_join_interval +
              kSlack)
          .Outcome(FsmE("quit").SameTxn())
          .Waiver(Fsm("crash").SameNode())
          .Describe("a quit is acked, given up, or superseded within its "
                    "retry budget"));

  // --- Teardown notifies the children it strands. --------------------------
  // SendFlushToChildren runs in the same event as the teardown/flush
  // decision, so the evidence shares the trigger's timestamp. This pair
  // is the seeded-mutation detector: --mutate suppress-flush kills
  // exactly these flush-sent events.
  suite.push_back(
      Expectation::Eventually("teardown-notifies-children",
                              Fsm("teardown").ArgBNonZero(), 0)
          .Outcome(Fsm("flush-sent").SameNode().SameGroup())
          .Describe("a teardown with children sends FLUSH-TREE downstream"));
  suite.push_back(
      Expectation::Eventually("flush-notifies-children",
                              Fsm("flushed").ArgBNonZero(), 0)
          .Outcome(Fsm("flush-sent").SameNode().SameGroup())
          .Describe("a flushed router propagates FLUSH-TREE to its own "
                    "children"));

  // --- Cross-node flush propagation (needs the address resolver). ----------
  // Every FLUSH-TREE sent to a live child is eventually acted on at that
  // child — it observes the flush, loses the parent on its own, or is
  // already quitting/detached (the lookback covers a stale child entry
  // the parent had not yet expired).
  if (options.node_of) {
    const auto node_of = options.node_of;
    const auto at_child = [node_of](const obs::TraceEvent& cand,
                                    const obs::TraceEvent& trig) {
      return cand.node == node_of(Ipv4Address(
                              static_cast<std::uint32_t>(trig.arg_a))) &&
             cand.group == trig.group;
    };
    suite.push_back(
        Expectation::Eventually(
            "flush-propagation",
            Fsm("flush-sent")
                .Where([node_of](const obs::TraceEvent& e,
                                 const obs::TraceEvent&) {
                  return node_of(Ipv4Address(
                             static_cast<std::uint32_t>(e.arg_a))) >= 0;
                }),
            c.echo_timeout + c.echo_interval + kSlack)
            .Lookback(c.child_assert_expire + c.child_assert_interval)
            .Outcome(Fsm("flushed").Where(at_child).Where(
                [](const obs::TraceEvent& cand, const obs::TraceEvent& trig) {
                  return cand.arg_a == trig.arg_b;
                }))
            .Outcome(Fsm("parent-lost").Where(at_child).Where(
                [](const obs::TraceEvent& cand, const obs::TraceEvent& trig) {
                  return cand.arg_a == trig.arg_b;
                }))
            .Outcome(FsmB("quit").Where(at_child).Where(
                [](const obs::TraceEvent& cand, const obs::TraceEvent& trig) {
                  return cand.arg_a == trig.arg_b;
                }))
            .Waiver(Fsm("crash").Where(at_child))
            .Waiver(Fsm("loop-detected").Where(at_child))
            .Waiver(Fsm("teardown").Where(at_child))
            .Describe("a FLUSH-TREE to a child is observed there, or the "
                      "child independently detached"));
  }

  // --- Attach ordering (section 2.4): ack before adopt. --------------------
  // A router only adds a child for a group it is attached to (branch-up
  // or core anchoring), and nothing since broke that attachment. QUIT
  // Begin is deliberately not an invalidator: acking joins while a quit
  // is pending is legal (the quit may be superseded).
  suite.push_back(
      Expectation::PrecededBy("ack-before-attach", Fsm("child-added"))
          .Outcome(Fsm("branch-up").SameNode().SameGroup())
          .Outcome(Fsm("core-anchored").SameNode().SameGroup())
          .Invalidator(Fsm("flushed").SameNode().SameGroup())
          .Invalidator(Fsm("teardown").SameNode().SameGroup())
          .Invalidator(FsmE("quit").SameNode().SameGroup())
          .Invalidator(Fsm("crash").SameNode())
          .Describe("a child is only adopted while the adopter is on-tree"));

  // --- Hitless core migration (make-before-break). -------------------------
  // The migrator may never start draining the old anchor until the new
  // primary is attached to the old tree: drain-old must be preceded by
  // join-new under the same migration txn.
  suite.push_back(
      Expectation::PrecededBy("migrate-join-before-drain",
                              Fsm("migrate-drain-old"))
          .Outcome(Fsm("migrate-join-new").SameTxn())
          .Describe("a migration drains the old core only after the new "
                    "primary joined the old tree"));
  // Zero data loss: no watched receiver reports a delivery gap between a
  // migration's start and its completion.
  suite.push_back(
      Expectation::Never("migrate-hitless", FsmB("migrate"),
                         FsmE("migrate").SameTxn(),
                         Match()
                             .Kind(obs::TraceKind::kInvariant)
                             .Name("deliver-gap")
                             .SameGroup())
          .Describe("a live core migration never drops delivered data"));
  // Migrations resolve: every Begin span reaches its End.
  suite.push_back(
      Expectation::Eventually("migrate-resolves", FsmB("migrate"),
                              240 * kSecond)
          .Outcome(FsmE("migrate").SameTxn())
          .Describe("a started core migration runs to a terminal outcome"));

  return suite;
}

}  // namespace cbt::check
