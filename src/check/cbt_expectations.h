// The CBT failure-recovery expectation suite: every recovery path the
// protocol promises (join->ack, quit->flush teardown, failure->detection->
// teardown->rejoin, rejoin->loop-detect->fallback), stated as causal-path
// expectations over the trace vocabulary src/cbt/router.cc emits.
//
// Deadlines derive from the run's CbtConfig timers, with bounded slack
// for retransmission cycling (a nacked join restarts its expiry clock, so
// multi-hop nack chains get a small integer multiple of the base timer).
// docs/PROTOCOL.md section "Causal-path model & expectations" documents
// each expectation against its spec section.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "cbt/config.h"
#include "check/expectation.h"
#include "common/types.h"

namespace cbt::netsim {
class Simulator;
}

namespace cbt::check {

struct CbtSuiteOptions {
  /// The config the checked run used — deadlines derive from its timers.
  core::CbtConfig config;
  /// Maps an interface address to the owning node id (-1 = unknown).
  /// Optional; enables the cross-node flush-propagation expectation.
  /// Build one with MakeAddressResolver.
  std::function<std::int32_t(Ipv4Address)> node_of;
};

/// Address -> node resolver over every interface the simulator knows.
std::function<std::int32_t(Ipv4Address)> MakeAddressResolver(
    const netsim::Simulator& sim);

/// Protocol-agnostic fault-span hygiene: chaos Begin/End pairing and
/// crash silence. Baselines can run this without the CBT vocabulary.
std::vector<Expectation> GenericFaultSuite();

/// The full CBT suite (includes GenericFaultSuite()).
std::vector<Expectation> CbtExpectationSuite(const CbtSuiteOptions& options);

}  // namespace cbt::check
