#include "check/expectation.h"

#include <algorithm>
#include <cstring>
#include <ostream>
#include <sstream>

namespace cbt::check {

namespace {

bool StrEq(const char* a, const char* b) {
  if (a == b) return true;
  if (a == nullptr || b == nullptr) return false;
  return std::strcmp(a, b) == 0;
}

bool AnyMatch(const std::vector<Match>& patterns, const obs::TraceEvent& e,
              const obs::TraceEvent& trigger) {
  for (const Match& m : patterns) {
    if (m.Matches(e, trigger)) return true;
  }
  return false;
}

std::string DescribeAny(const std::vector<Match>& patterns) {
  std::string out;
  for (const Match& m : patterns) {
    if (!out.empty()) out += " | ";
    out += m.Describe();
  }
  return out.empty() ? "<none>" : out;
}

void WriteEscaped(std::ostream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          os << ' ';
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

}  // namespace

Match& Match::Kind(obs::TraceKind kind) {
  kind_ = kind;
  return *this;
}
Match& Match::Name(const char* name) {
  name_ = name;
  return *this;
}
Match& Match::Phase(obs::TracePhase phase) {
  phase_ = phase;
  return *this;
}
Match& Match::Detail(const char* detail) {
  detail_ = detail;
  return *this;
}
Match& Match::Node(std::int32_t node) {
  node_ = node;
  return *this;
}
Match& Match::Group(Ipv4Address group) {
  group_ = group;
  return *this;
}
Match& Match::ArgA(std::uint64_t value) {
  arg_a_ = value;
  return *this;
}
Match& Match::ArgB(std::uint64_t value) {
  arg_b_ = value;
  return *this;
}
Match& Match::ArgBNonZero() {
  arg_b_nonzero_ = true;
  return *this;
}
Match& Match::SameNode() {
  same_node_ = true;
  return *this;
}
Match& Match::SameGroup() {
  same_group_ = true;
  return *this;
}
Match& Match::SameTxn() {
  same_txn_ = true;
  return *this;
}
Match& Match::Where(std::function<bool(const obs::TraceEvent&,
                                       const obs::TraceEvent&)> predicate) {
  predicates_.push_back(std::move(predicate));
  return *this;
}

bool Match::Matches(const obs::TraceEvent& candidate,
                    const obs::TraceEvent& trigger) const {
  if (kind_ && candidate.kind != *kind_) return false;
  if (name_ != nullptr && !StrEq(candidate.name, name_)) return false;
  if (phase_ && candidate.phase != *phase_) return false;
  if (detail_ != nullptr && !StrEq(candidate.detail, detail_)) return false;
  if (node_ && candidate.node != *node_) return false;
  if (group_ && !(candidate.group == *group_)) return false;
  if (arg_a_ && candidate.arg_a != *arg_a_) return false;
  if (arg_b_ && candidate.arg_b != *arg_b_) return false;
  if (arg_b_nonzero_ && candidate.arg_b == 0) return false;
  if (same_node_ && candidate.node != trigger.node) return false;
  if (same_group_ && !(candidate.group == trigger.group)) return false;
  if (same_txn_ && (candidate.txn == 0 || candidate.txn != trigger.txn)) {
    return false;
  }
  for (const auto& p : predicates_) {
    if (!p(candidate, trigger)) return false;
  }
  return true;
}

std::string Match::Describe() const {
  std::string out;
  if (kind_) {
    out += obs::TraceKindName(*kind_);
    out += '/';
  }
  out += name_ != nullptr ? name_ : "*";
  if (phase_) {
    out += *phase_ == obs::TracePhase::kBegin  ? "[B]"
           : *phase_ == obs::TracePhase::kEnd ? "[E]"
                                              : "[I]";
  }
  if (detail_ != nullptr) {
    out += '(';
    out += detail_;
    out += ')';
  }
  return out;
}

Expectation Expectation::Eventually(std::string name, Match trigger,
                                    SimDuration deadline) {
  Expectation x;
  x.name_ = std::move(name);
  x.mode_ = Mode::kEventually;
  x.trigger_ = std::move(trigger);
  x.deadline_ = deadline;
  return x;
}

Expectation Expectation::PrecededBy(std::string name, Match trigger) {
  Expectation x;
  x.name_ = std::move(name);
  x.mode_ = Mode::kPrecededBy;
  x.trigger_ = std::move(trigger);
  return x;
}

Expectation Expectation::Never(std::string name, Match trigger,
                               Match terminator, Match forbidden) {
  Expectation x;
  x.name_ = std::move(name);
  x.mode_ = Mode::kNever;
  x.trigger_ = std::move(trigger);
  x.terminator_ = std::move(terminator);
  x.forbidden_ = std::move(forbidden);
  return x;
}

Expectation& Expectation::Outcome(Match match) {
  outcomes_.push_back(std::move(match));
  return *this;
}
Expectation& Expectation::Waiver(Match match) {
  waivers_.push_back(std::move(match));
  return *this;
}
Expectation& Expectation::Invalidator(Match match) {
  invalidators_.push_back(std::move(match));
  return *this;
}
Expectation& Expectation::Lookback(SimDuration duration) {
  lookback_ = duration;
  return *this;
}
Expectation& Expectation::DeadlineFromArgB(SimDuration slack) {
  deadline_from_arg_b_ = true;
  arg_b_slack_ = slack;
  return *this;
}
Expectation& Expectation::Describe(std::string description) {
  description_ = std::move(description);
  return *this;
}

const char* VerdictName(Verdict verdict) {
  switch (verdict) {
    case Verdict::kSatisfied:
      return "satisfied";
    case Verdict::kViolated:
      return "VIOLATED";
    case Verdict::kTruncated:
      return "truncated";
    case Verdict::kWaived:
      return "waived";
  }
  return "?";
}

std::string Issue::Render() const {
  std::ostringstream os;
  os << "[" << expectation << "] " << VerdictName(verdict) << " @"
     << FormatSimTime(time) << " seq=" << seq;
  if (node >= 0) os << " node=" << node;
  if (!group.IsUnspecified()) os << " group=" << group.ToString();
  if (txn != 0) os << " txn=" << txn;
  os << ": " << message;
  return os.str();
}

/// Evaluates one suite over one view; the free function below is the API.
class Checker {
 public:
  Checker(const TraceView& view, SimTime end_time)
      : view_(view), end_time_(end_time) {}

  CheckReport Run(const std::vector<Expectation>& suite) {
    CheckReport report;
    report.ring_dropped = view_.dropped();
    report.events_scanned = view_.events().size();
    for (const Expectation& x : suite) {
      ExpectationStats stats;
      stats.name = x.name_;
      const auto& events = view_.events();
      for (std::size_t i = 0; i < events.size(); ++i) {
        const obs::TraceEvent& trigger = events[i].event;
        if (!x.trigger_.Matches(trigger, trigger)) continue;
        ++stats.checked;
        switch (x.mode_) {
          case Expectation::Mode::kEventually:
            CheckEventually(x, i, stats, report.issues);
            break;
          case Expectation::Mode::kPrecededBy:
            CheckPrecededBy(x, i, stats, report.issues);
            break;
          case Expectation::Mode::kNever:
            CheckNever(x, i, stats, report.issues);
            break;
        }
      }
      report.per_expectation.push_back(std::move(stats));
    }
    return report;
  }

 private:
  void Record(std::vector<Issue>& issues, const Expectation& x,
              std::size_t trigger_index, Verdict verdict,
              std::string message) {
    const ViewEvent& ve = view_.events()[trigger_index];
    Issue issue;
    issue.expectation = x.name_;
    issue.verdict = verdict;
    issue.seq = ve.seq;
    issue.time = ve.event.time;
    issue.node = ve.event.node;
    issue.group = ve.event.group;
    issue.txn = ve.event.txn;
    issue.message = std::move(message);
    issues.push_back(std::move(issue));
  }

  void CheckEventually(const Expectation& x, std::size_t i,
                       ExpectationStats& stats, std::vector<Issue>& issues) {
    const auto& events = view_.events();
    const obs::TraceEvent& trigger = events[i].event;
    const SimDuration deadline =
        x.deadline_from_arg_b_
            ? static_cast<SimDuration>(trigger.arg_b) + x.arg_b_slack_
            : x.deadline_;
    const SimTime window_end = trigger.time + deadline;
    bool found_outcome = false;
    bool found_waiver = false;

    if (x.lookback_ > 0) {
      const SimTime window_begin = trigger.time - x.lookback_;
      for (std::size_t j = i; j-- > 0;) {
        const obs::TraceEvent& c = events[j].event;
        if (c.time < window_begin) break;
        if (AnyMatch(x.outcomes_, c, trigger)) {
          found_outcome = true;
          break;
        }
        if (AnyMatch(x.waivers_, c, trigger)) {
          found_waiver = true;
          break;
        }
      }
    }
    for (std::size_t j = i + 1;
         !found_outcome && !found_waiver && j < events.size(); ++j) {
      const obs::TraceEvent& c = events[j].event;
      if (c.time > window_end) break;
      if (AnyMatch(x.outcomes_, c, trigger)) found_outcome = true;
      if (!found_outcome && AnyMatch(x.waivers_, c, trigger)) {
        found_waiver = true;
      }
    }

    if (found_outcome) {
      ++stats.satisfied;
      return;
    }
    if (found_waiver) {
      ++stats.waived;
      return;
    }
    // No evidence. Decide whether the evidence could even be observed:
    // the deadline past the end of the run, or a lookback portion that
    // reaches behind the ring's retained window, means "unknowable".
    if (window_end > end_time_) {
      ++stats.truncated;
      Record(issues, x, i, Verdict::kTruncated,
             "deadline " + std::string(FormatSimTime(window_end)) +
                 " is past end of run " + FormatSimTime(end_time_));
      return;
    }
    if (x.lookback_ > 0 && view_.truncated_front() &&
        trigger.time - x.lookback_ < view_.window_start()) {
      ++stats.truncated;
      Record(issues, x, i, Verdict::kTruncated,
             "lookback window precedes the retained ring "
             "(dropped=" +
                 std::to_string(view_.dropped()) + ")");
      return;
    }
    ++stats.violated;
    Record(issues, x, i, Verdict::kViolated,
           "no " + DescribeAny(x.outcomes_) + " within " +
               FormatSimTime(deadline));
  }

  void CheckPrecededBy(const Expectation& x, std::size_t i,
                       ExpectationStats& stats, std::vector<Issue>& issues) {
    const auto& events = view_.events();
    const obs::TraceEvent& trigger = events[i].event;
    const SimTime window_begin =
        x.lookback_ > 0 ? trigger.time - x.lookback_ : 0;
    for (std::size_t j = i; j-- > 0;) {
      const obs::TraceEvent& c = events[j].event;
      if (x.lookback_ > 0 && c.time < window_begin) break;
      // Nearest-to-trigger hit decides the causal state.
      if (AnyMatch(x.outcomes_, c, trigger)) {
        ++stats.satisfied;
        return;
      }
      if (AnyMatch(x.waivers_, c, trigger)) {
        ++stats.waived;
        return;
      }
      if (AnyMatch(x.invalidators_, c, trigger)) {
        ++stats.violated;
        Record(issues, x, i, Verdict::kViolated,
               "nearest preceding event is invalidator " +
                   std::string(c.name != nullptr ? c.name : "?") + " @" +
                   FormatSimTime(c.time) + ", not " +
                   DescribeAny(x.outcomes_));
        return;
      }
    }
    // Ran off the front of the window without a decision.
    if (view_.truncated_front()) {
      ++stats.truncated;
      Record(issues, x, i, Verdict::kTruncated,
             "backward scan hit the ring's evicted region (dropped=" +
                 std::to_string(view_.dropped()) + ")");
      return;
    }
    ++stats.violated;
    Record(issues, x, i, Verdict::kViolated,
           "no preceding " + DescribeAny(x.outcomes_) + " in the full trace");
  }

  void CheckNever(const Expectation& x, std::size_t i, ExpectationStats& stats,
                  std::vector<Issue>& issues) {
    const auto& events = view_.events();
    const obs::TraceEvent& trigger = events[i].event;
    for (std::size_t j = i + 1; j < events.size(); ++j) {
      const obs::TraceEvent& c = events[j].event;
      if (x.terminator_.Matches(c, trigger)) break;
      if (x.forbidden_.Matches(c, trigger)) {
        ++stats.violated;
        Record(issues, x, i, Verdict::kViolated,
               "forbidden event " +
                   std::string(c.name != nullptr ? c.name : "?") + " @" +
                   FormatSimTime(c.time) +
                   " inside the span (seq=" + std::to_string(events[j].seq) +
                   ")");
        return;
      }
    }
    // Reaching the end of the trace without a terminator is vacuously
    // fine: absence of forbidden evidence over missing data never fails.
    ++stats.satisfied;
  }

  const TraceView& view_;
  const SimTime end_time_;
};

std::uint64_t CheckReport::checked() const {
  std::uint64_t n = 0;
  for (const ExpectationStats& s : per_expectation) n += s.checked;
  return n;
}
std::uint64_t CheckReport::violations() const {
  std::uint64_t n = 0;
  for (const ExpectationStats& s : per_expectation) n += s.violated;
  return n;
}
std::uint64_t CheckReport::truncations() const {
  std::uint64_t n = 0;
  for (const ExpectationStats& s : per_expectation) n += s.truncated;
  return n;
}
std::uint64_t CheckReport::waived() const {
  std::uint64_t n = 0;
  for (const ExpectationStats& s : per_expectation) n += s.waived;
  return n;
}

void CheckReport::Merge(const CheckReport& other) {
  for (const ExpectationStats& theirs : other.per_expectation) {
    ExpectationStats* mine = nullptr;
    for (ExpectationStats& s : per_expectation) {
      if (s.name == theirs.name) {
        mine = &s;
        break;
      }
    }
    if (mine == nullptr) {
      per_expectation.push_back(theirs);
      continue;
    }
    mine->checked += theirs.checked;
    mine->satisfied += theirs.satisfied;
    mine->violated += theirs.violated;
    mine->truncated += theirs.truncated;
    mine->waived += theirs.waived;
  }
  issues.insert(issues.end(), other.issues.begin(), other.issues.end());
  ring_dropped += other.ring_dropped;
  events_scanned += other.events_scanned;
}

void CheckReport::Print(std::ostream& os, std::size_t max_issues) const {
  os << "check: " << per_expectation.size() << " expectations, " << checked()
     << " triggers over " << events_scanned << " events (ring dropped "
     << ring_dropped << ") -- " << violations() << " violated, "
     << truncations() << " truncated, " << waived() << " waived\n";
  for (const ExpectationStats& s : per_expectation) {
    os << "  " << s.name << ": checked=" << s.checked << " ok=" << s.satisfied
       << " violated=" << s.violated << " truncated=" << s.truncated
       << " waived=" << s.waived << "\n";
  }
  std::size_t shown = 0;
  for (const Issue& issue : issues) {
    if (issue.verdict != Verdict::kViolated) continue;
    if (shown == max_issues) {
      os << "  ... further violations elided\n";
      break;
    }
    os << "  " << issue.Render() << "\n";
    ++shown;
  }
}

void CheckReport::WriteJson(std::ostream& os) const {
  os << "{\"violations\":" << violations()
     << ",\"truncations\":" << truncations() << ",\"waived\":" << waived()
     << ",\"checked\":" << checked() << ",\"ring_dropped\":" << ring_dropped
     << ",\"events_scanned\":" << events_scanned << ",\"expectations\":[";
  for (std::size_t i = 0; i < per_expectation.size(); ++i) {
    const ExpectationStats& s = per_expectation[i];
    if (i > 0) os << ",";
    os << "{\"name\":";
    WriteEscaped(os, s.name);
    os << ",\"checked\":" << s.checked << ",\"satisfied\":" << s.satisfied
       << ",\"violated\":" << s.violated << ",\"truncated\":" << s.truncated
       << ",\"waived\":" << s.waived << "}";
  }
  os << "],\"issues\":[";
  bool first = true;
  for (const Issue& issue : issues) {
    if (!first) os << ",";
    first = false;
    os << "{\"expectation\":";
    WriteEscaped(os, issue.expectation);
    os << ",\"verdict\":\"" << VerdictName(issue.verdict)
       << "\",\"seq\":" << issue.seq << ",\"t_us\":" << issue.time
       << ",\"node\":" << issue.node << ",\"group\":";
    WriteEscaped(os, issue.group.ToString());
    os << ",\"txn\":" << issue.txn << ",\"message\":";
    WriteEscaped(os, issue.message);
    os << "}";
  }
  os << "]}\n";
}

CheckReport RunExpectations(const TraceView& view,
                            const std::vector<Expectation>& suite,
                            SimTime end_time) {
  return Checker(view, end_time).Run(suite);
}

}  // namespace cbt::check
