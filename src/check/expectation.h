// Causal-path expectation engine: a small C++ builder API stating which
// event sequences are legal and within what sim-time bounds, plus the
// checker that evaluates a suite over a TraceView.
//
// An Expectation is anchored on a *trigger* event pattern and runs in one
// of three modes:
//
//  * Eventually — every trigger must be followed (within `deadline`, and
//    optionally preceded within `lookback`) by one of the `outcome`
//    patterns. `waiver` patterns in the same window void the obligation
//    (e.g. the node crashed). This models "a JOIN-REQUEST reaches ack,
//    proxy-ack, or a terminal failure within its RTX bound".
//  * PrecededBy — every trigger must have one of the `outcome` patterns
//    *before* it, with no `invalidator` in between (scanning backward,
//    the first hit decides). Models "a router never adopts a child
//    before it is itself attached".
//  * Never — between a trigger and its `terminator` (or the end of the
//    trace), no `forbidden` pattern may occur. Models crash silence.
//
// Verdicts per trigger instance:
//  * kSatisfied — the required evidence was found;
//  * kViolated  — the window closed inside the run with no evidence;
//  * kTruncated — the window ran off the retained trace (ring eviction
//    behind, or the run ended before the deadline): explicitly *not* a
//    failure, the evidence may simply be unobservable;
//  * kWaived    — a waiver event voided the obligation.
//
// Matching against static-string event names uses strcmp, so patterns
// built in any translation unit match events emitted in any other.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "check/trace_view.h"
#include "common/types.h"
#include "obs/trace.h"

namespace cbt::check {

/// One event pattern. All constraints AND together; `Same*` and `Where`
/// constraints relate a candidate event to the expectation's trigger
/// instance (when the pattern *is* the trigger, the trigger is itself).
class Match {
 public:
  Match& Kind(obs::TraceKind kind);
  Match& Name(const char* name);
  Match& Phase(obs::TracePhase phase);
  Match& Detail(const char* detail);
  Match& Node(std::int32_t node);
  Match& Group(Ipv4Address group);
  Match& ArgA(std::uint64_t value);
  Match& ArgB(std::uint64_t value);
  Match& ArgBNonZero();
  Match& SameNode();
  Match& SameGroup();
  Match& SameTxn();
  /// Arbitrary relation between candidate and trigger.
  Match& Where(
      std::function<bool(const obs::TraceEvent& candidate,
                         const obs::TraceEvent& trigger)> predicate);

  bool Matches(const obs::TraceEvent& candidate,
               const obs::TraceEvent& trigger) const;

  /// Short human label ("fsm/join[E]") for reports.
  std::string Describe() const;

 private:
  std::optional<obs::TraceKind> kind_;
  const char* name_ = nullptr;
  std::optional<obs::TracePhase> phase_;
  const char* detail_ = nullptr;
  std::optional<std::int32_t> node_;
  std::optional<Ipv4Address> group_;
  std::optional<std::uint64_t> arg_a_;
  std::optional<std::uint64_t> arg_b_;
  bool arg_b_nonzero_ = false;
  bool same_node_ = false;
  bool same_group_ = false;
  bool same_txn_ = false;
  std::vector<std::function<bool(const obs::TraceEvent&,
                                 const obs::TraceEvent&)>>
      predicates_;
};

class Expectation {
 public:
  enum class Mode : std::uint8_t { kEventually, kPrecededBy, kNever };

  static Expectation Eventually(std::string name, Match trigger,
                                SimDuration deadline);
  static Expectation PrecededBy(std::string name, Match trigger);
  static Expectation Never(std::string name, Match trigger, Match terminator,
                           Match forbidden);

  /// Any-of success evidence (Eventually: in the window; PrecededBy:
  /// scanning backward from the trigger).
  Expectation& Outcome(Match match);
  /// Any-of events that void the obligation for this trigger instance.
  Expectation& Waiver(Match match);
  /// PrecededBy: an event between outcome and trigger that breaks the
  /// causal chain (nearest-to-trigger hit wins).
  Expectation& Invalidator(Match match);
  /// Eventually: also accept outcomes/waivers up to `duration` *before*
  /// the trigger (two-sided window). PrecededBy: bound the backward scan.
  Expectation& Lookback(SimDuration duration);
  /// Eventually: per-trigger deadline = trigger.arg_b + slack instead of
  /// the fixed deadline (chaos spans carry their duration in arg_b).
  Expectation& DeadlineFromArgB(SimDuration slack);
  Expectation& Describe(std::string description);

  const std::string& name() const { return name_; }
  const std::string& description() const { return description_; }

 private:
  friend class Checker;
  Expectation() = default;

  std::string name_;
  std::string description_;
  Mode mode_ = Mode::kEventually;
  Match trigger_;
  std::vector<Match> outcomes_;
  std::vector<Match> waivers_;
  std::vector<Match> invalidators_;
  Match terminator_;
  Match forbidden_;
  SimDuration deadline_ = 0;
  SimDuration lookback_ = 0;
  bool deadline_from_arg_b_ = false;
  SimDuration arg_b_slack_ = 0;
};

enum class Verdict : std::uint8_t {
  kSatisfied,
  kViolated,
  kTruncated,
  kWaived,
};

const char* VerdictName(Verdict verdict);

/// One non-satisfied trigger instance worth reporting (violations always;
/// truncated windows so humans can audit coverage).
struct Issue {
  std::string expectation;
  Verdict verdict = Verdict::kViolated;
  std::uint64_t seq = 0;  // trigger's ring sequence number
  SimTime time = 0;       // trigger time
  std::int32_t node = -1;
  Ipv4Address group;
  std::uint64_t txn = 0;
  std::string message;

  std::string Render() const;
};

struct ExpectationStats {
  std::string name;
  std::uint64_t checked = 0;
  std::uint64_t satisfied = 0;
  std::uint64_t violated = 0;
  std::uint64_t truncated = 0;
  std::uint64_t waived = 0;
};

struct CheckReport {
  std::vector<ExpectationStats> per_expectation;
  std::vector<Issue> issues;
  std::uint64_t ring_dropped = 0;
  std::uint64_t events_scanned = 0;

  std::uint64_t checked() const;
  std::uint64_t violations() const;
  std::uint64_t truncations() const;
  std::uint64_t waived() const;
  bool clean() const { return violations() == 0; }

  /// Merge another report (per-expectation stats by name, issues
  /// appended) — benches aggregate per-replica reports with this.
  void Merge(const CheckReport& other);

  /// One-line-per-expectation summary plus the first `max_issues`
  /// violation details.
  void Print(std::ostream& os, std::size_t max_issues = 20) const;

  /// Machine-readable report (the CI violation artifact).
  void WriteJson(std::ostream& os) const;
};

/// Evaluates `suite` over `view`. `end_time` is the sim time the run
/// stopped at: a window extending past it yields kTruncated, not
/// kViolated — the run ended before the protocol's deadline did.
CheckReport RunExpectations(const TraceView& view,
                            const std::vector<Expectation>& suite,
                            SimTime end_time);

}  // namespace cbt::check
