// TraceView: an indexed, random-access snapshot of an obs::TraceBuffer
// ring, the substrate the causal-path expectation engine scans.
//
// Truncation model
// ----------------
// The ring drops oldest-first, so the retained window is always a
// *contiguous suffix* of everything emitted: if an event is retained,
// every later event is too. Three consequences the engine relies on:
//  * forward searches from a retained trigger never cross a hole;
//  * backward searches that reach the front of the window with
//    dropped() > 0 must return "truncated", never "violated";
//  * a trigger whose own deadline extends past the end of the run is
//    likewise "truncated" — the evidence was never produced, not lost.
#pragma once

#include <cstdint>
#include <vector>

#include "obs/trace.h"

namespace cbt::check {

struct ViewEvent {
  std::uint64_t seq = 0;
  obs::TraceEvent event;
};

class TraceView {
 public:
  explicit TraceView(const obs::TraceBuffer& buffer);

  /// Retained events, oldest -> newest, with their ring sequence numbers.
  const std::vector<ViewEvent>& events() const { return events_; }

  /// Events evicted before the window (0 = the window is complete).
  std::uint64_t dropped() const { return dropped_; }
  std::uint64_t emitted() const { return emitted_; }
  bool truncated_front() const { return dropped_ > 0; }

  /// Sim time of the first retained event (0 when empty). With
  /// truncated_front(), nothing before this instant can be trusted to be
  /// visible.
  SimTime window_start() const {
    return events_.empty() ? 0 : events_.front().event.time;
  }

 private:
  std::vector<ViewEvent> events_;
  std::uint64_t dropped_ = 0;
  std::uint64_t emitted_ = 0;
};

}  // namespace cbt::check
