#include "obs/trace.h"

#include <ostream>

namespace cbt::obs {

const char* TraceKindName(TraceKind kind) {
  switch (kind) {
    case TraceKind::kFsm:
      return "fsm";
    case TraceKind::kPacket:
      return "packet";
    case TraceKind::kChaos:
      return "chaos";
    case TraceKind::kRouting:
      return "routing";
    case TraceKind::kInvariant:
      return "invariant";
    case TraceKind::kTopology:
      return "topology";
    case TraceKind::kIgmp:
      return "igmp";
    case TraceKind::kMarker:
      return "marker";
  }
  return "?";
}

namespace {

const char* PhaseCode(TracePhase phase) {
  switch (phase) {
    case TracePhase::kInstant:
      return "i";
    case TracePhase::kBegin:
      return "B";
    case TracePhase::kEnd:
      return "E";
  }
  return "i";
}

/// Minimal JSON string escaping; event names are static literals under
/// our control, but be safe about quotes/backslashes/control bytes.
void WriteJsonString(std::ostream& os, const char* s) {
  os << '"';
  for (; *s != '\0'; ++s) {
    const unsigned char c = static_cast<unsigned char>(*s);
    if (c == '"' || c == '\\') {
      os << '\\' << *s;
    } else if (c < 0x20) {
      static const char* hex = "0123456789abcdef";
      os << "\\u00" << hex[c >> 4] << hex[c & 0xF];
    } else {
      os << *s;
    }
  }
  os << '"';
}

void WriteArgs(std::ostream& os, const TraceEvent& e, std::uint64_t seq) {
  os << "\"args\":{\"seq\":" << seq;
  if (!e.group.IsUnspecified()) {
    os << ",\"group\":\"" << e.group.ToString() << "\"";
  }
  os << ",\"a\":" << e.arg_a << ",\"b\":" << e.arg_b;
  if (e.txn != 0) {
    os << ",\"txn\":" << e.txn;
  }
  if (e.detail != nullptr) {
    os << ",\"detail\":";
    WriteJsonString(os, e.detail);
  }
  os << "}";
}

/// Ring overflow accounting shared by the JSONL meta line and the Chrome
/// "otherData" block, minus the surrounding braces.
void WriteRingMeta(std::ostream& os, const TraceBuffer& buffer) {
  os << "\"emitted\":" << buffer.emitted()
     << ",\"retained\":" << buffer.size()
     << ",\"dropped\":" << buffer.dropped()
     << ",\"first_seq\":" << (buffer.emitted() - buffer.size())
     << ",\"capacity\":" << buffer.capacity();
}

}  // namespace

TraceBuffer::TraceBuffer(std::size_t capacity, TraceLevel level)
    : ring_(capacity == 0 ? 1 : capacity), level_(level) {}

void TraceBuffer::Emit(const TraceEvent& event) {
  ring_[head_] = event;
  head_ = (head_ + 1) % ring_.size();
  if (count_ < ring_.size()) {
    ++count_;
  } else {
    ++dropped_;
    ++first_seq_;
  }
  ++next_seq_;
}

void TraceBuffer::Clear() {
  head_ = 0;
  count_ = 0;
  first_seq_ = next_seq_;
  dropped_ = 0;
}

void TraceBuffer::ExportJsonl(std::ostream& os) const {
  os << "{\"meta\":{";
  WriteRingMeta(os, *this);
  os << "}}\n";
  ForEach([&](std::uint64_t seq, const TraceEvent& e) {
    os << "{\"seq\":" << seq << ",\"t_us\":" << e.time << ",\"cat\":\""
       << TraceKindName(e.kind) << "\",\"ph\":\"" << PhaseCode(e.phase)
       << "\",\"name\":";
    WriteJsonString(os, e.name);
    os << ",\"node\":" << e.node;
    if (!e.group.IsUnspecified()) {
      os << ",\"group\":\"" << e.group.ToString() << "\"";
    }
    os << ",\"a\":" << e.arg_a << ",\"b\":" << e.arg_b;
    if (e.txn != 0) {
      os << ",\"txn\":" << e.txn;
    }
    if (e.detail != nullptr) {
      os << ",\"detail\":";
      WriteJsonString(os, e.detail);
    }
    os << "}\n";
  });
}

namespace {

/// Shared body of the single- and multi-buffer Chrome exports: emits the
/// comma-prefixed event objects for one buffer lane.
void WriteChromeEvents(std::ostream& os, const TraceBuffer& buffer, int pid,
                       bool& first) {
  buffer.ForEach([&](std::uint64_t seq, const TraceEvent& e) {
    if (!first) os << ",";
    first = false;
    // Sim time is already microseconds — Chrome's "ts" unit.
    os << "\n{\"name\":";
    WriteJsonString(os, e.name);
    os << ",\"cat\":\"" << TraceKindName(e.kind) << "\",\"ph\":\""
       << PhaseCode(e.phase) << "\",\"ts\":" << e.time << ",\"pid\":" << pid
       << ",\"tid\":" << e.node;
    if (e.phase == TracePhase::kInstant) os << ",\"s\":\"t\"";
    os << ",";
    WriteArgs(os, e, seq);
    os << "}";
  });
}

}  // namespace

void TraceBuffer::ExportChromeTrace(std::ostream& os, int pid) const {
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  WriteChromeEvents(os, *this, pid, first);
  os << "\n],\"otherData\":{\"rings\":[{\"pid\":" << pid << ",";
  WriteRingMeta(os, *this);
  os << "}]}}\n";
}

void ExportCombinedChromeTrace(
    std::ostream& os, const std::vector<const TraceBuffer*>& buffers) {
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (std::size_t i = 0; i < buffers.size(); ++i) {
    if (buffers[i] == nullptr) continue;
    WriteChromeEvents(os, *buffers[i], static_cast<int>(i) + 1, first);
  }
  os << "\n],\"otherData\":{\"rings\":[";
  bool first_meta = true;
  for (std::size_t i = 0; i < buffers.size(); ++i) {
    if (buffers[i] == nullptr) continue;
    if (!first_meta) os << ",";
    first_meta = false;
    os << "{\"pid\":" << static_cast<int>(i) + 1 << ",";
    WriteRingMeta(os, *buffers[i]);
    os << "}";
  }
  os << "]}}\n";
}

namespace {
TraceBuffer* g_process_trace = nullptr;
thread_local TraceBuffer* t_trace_override = nullptr;
thread_local bool t_trace_override_installed = false;
}  // namespace

TraceBuffer* ProcessTraceBuffer() {
  return t_trace_override_installed ? t_trace_override : g_process_trace;
}
void SetProcessTraceBuffer(TraceBuffer* buffer) { g_process_trace = buffer; }

ScopedThreadTraceBuffer::ScopedThreadTraceBuffer(TraceBuffer* buffer)
    : previous_(t_trace_override),
      previous_installed_(t_trace_override_installed) {
  t_trace_override = buffer;
  t_trace_override_installed = true;
}

ScopedThreadTraceBuffer::~ScopedThreadTraceBuffer() {
  t_trace_override = previous_;
  t_trace_override_installed = previous_installed_;
}

}  // namespace cbt::obs
