// Unified metrics registry: allocation-free Counter/Gauge/Histogram
// handles registered under hierarchical dotted names
// ("cbt.router.3.joins_originated", "netsim.subnet.7.frames_dropped").
//
// Design constraints, in order:
//  * zero-overhead hot path — recording through a handle is one inline
//    pointer bump; names are hashed exactly once, at registration. An
//    unbound (default-constructed) handle writes to a process-wide
//    scratch slot, so instrumented code never branches on "is metrics
//    enabled?";
//  * handle stability — registering a name twice returns a handle to the
//    same slot (slots live in a std::deque, so addresses never move);
//  * external binding — the legacy *Stats structs keep their plain
//    uint64 fields as the storage (their increments are already free);
//    the registry mirrors them by pointer (RegisterExternal / BindStats),
//    so snapshots see live values without any hot-path change;
//  * deterministic snapshots — MetricSet is sorted by name; the same run
//    always serializes identically.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "obs/fields.h"

namespace cbt::obs {

class Registry;

/// Monotonic counter handle. Trivially copyable; safe to record through
/// whether or not it was ever registered.
class Counter {
 public:
  Counter();
  void Increment(std::uint64_t n = 1) { *slot_ += n; }
  std::uint64_t value() const { return *slot_; }

 private:
  friend class Registry;
  explicit Counter(std::uint64_t* slot) : slot_(slot) {}
  std::uint64_t* slot_;
};

/// Last-value gauge handle (stored as uint64; Set overwrites).
class Gauge {
 public:
  Gauge();
  void Set(std::uint64_t v) { *slot_ = v; }
  void Add(std::uint64_t n) { *slot_ += n; }
  std::uint64_t value() const { return *slot_; }

 private:
  friend class Registry;
  explicit Gauge(std::uint64_t* slot) : slot_(slot) {}
  std::uint64_t* slot_;
};

/// Fixed-bound histogram data: counts[i] holds observations with
/// value <= bounds[i]; counts.back() is the +inf overflow bucket.
struct HistogramData {
  std::vector<std::uint64_t> bounds;  // ascending upper bounds
  std::vector<std::uint64_t> counts;  // bounds.size() + 1 buckets
  std::uint64_t count = 0;
  std::uint64_t sum = 0;

  void Observe(std::uint64_t v) {
    std::size_t i = 0;
    while (i < bounds.size() && v > bounds[i]) ++i;
    ++counts[i];
    ++count;
    sum += v;
  }
};

/// Histogram handle. An unbound handle records into a scratch histogram
/// with no buckets (count/sum only).
class Histogram {
 public:
  Histogram();
  void Observe(std::uint64_t v) { data_->Observe(v); }
  const HistogramData& data() const { return *data_; }

 private:
  friend class Registry;
  explicit Histogram(HistogramData* data) : data_(data) {}
  HistogramData* data_;
};

/// One named sample in a snapshot.
struct Sample {
  std::string name;
  std::uint64_t value = 0;
};

/// An immutable, name-sorted snapshot of metric values — the unified view
/// the experiment harness consumes instead of pattern-matching
/// per-protocol struct fields. Histograms flatten into
/// `<name>.le_<bound>` / `<name>.le_inf` / `<name>.count` / `<name>.sum`.
class MetricSet {
 public:
  MetricSet() = default;
  /// Takes arbitrary-order samples and sorts them by name.
  explicit MetricSet(std::vector<Sample> samples);

  std::optional<std::uint64_t> Get(std::string_view name) const;
  std::uint64_t ValueOr(std::string_view name, std::uint64_t fallback) const;

  /// Samples whose name starts with `prefix` (names kept verbatim).
  MetricSet WithPrefix(std::string_view prefix) const;

  /// Sum of every sample whose name ends with `suffix` — the harness
  /// rollup for "this field across all routers", e.g.
  /// SumWithSuffix(".malformed_control").
  std::uint64_t SumWithSuffix(std::string_view suffix) const;

  /// Per-name difference `this - earlier` (names missing from `earlier`
  /// count as 0; names missing from `this` are dropped). The windowed
  /// measurement idiom: snapshot, run, snapshot, diff.
  MetricSet Diff(const MetricSet& earlier) const;

  /// Merges disjoint sets (duplicate names keep this set's value).
  void Merge(const MetricSet& other);

  std::size_t size() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }
  auto begin() const { return samples_.begin(); }
  auto end() const { return samples_.end(); }

 private:
  std::vector<Sample> samples_;  // sorted by name
};

/// The registry. Owns slot storage for registered metrics and pointers to
/// externally-owned (struct-field) counters. Single-threaded, like the
/// simulator it observes.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Registers (or re-finds) a counter/gauge under `name`. Re-registering
  /// an existing name returns a handle to the same slot — handles taken
  /// earlier remain valid and keep counting into it.
  Counter RegisterCounter(const std::string& name);
  Gauge RegisterGauge(const std::string& name);

  /// Registers a histogram with ascending `bounds`. Re-registration
  /// returns the existing histogram (original bounds win).
  Histogram RegisterHistogram(const std::string& name,
                              std::vector<std::uint64_t> bounds);

  /// Mirrors an externally-owned counter field. The registry reads (and
  /// on Reset(), zeroes) through the pointer; the owner keeps
  /// incrementing its plain field — the hot path is untouched.
  /// Re-registration rebinds the name to the new address (routers built
  /// in sequential bench runs reuse names).
  void RegisterExternal(const std::string& name, std::uint64_t* field);

  bool Contains(const std::string& name) const;
  std::size_t size() const { return index_.size(); }

  /// Name-sorted snapshot of every registered metric.
  MetricSet Snapshot() const;

  /// Zeroes every owned slot, histogram, and bound external field.
  void Reset();

 private:
  struct Entry {
    enum class Kind : std::uint8_t { kOwned, kExternal, kHistogram };
    Kind kind = Kind::kOwned;
    std::uint64_t owned = 0;
    std::uint64_t* external = nullptr;
    HistogramData histogram;
  };

  Entry& FindOrCreate(const std::string& name, Entry::Kind kind);

  std::deque<Entry> entries_;  // deque: slot addresses never move
  std::map<std::string, Entry*> index_;
};

/// Registers every field of a reflected stats struct under
/// `<prefix>.<field>` as an external mirror.
template <typename Stats>
void BindStats(Registry& registry, const std::string& prefix, Stats& stats) {
  ForEachStatsField(stats, [&](const char* name, std::uint64_t& field,
                               FieldTag) {
    registry.RegisterExternal(prefix + "." + name, &field);
  });
}

/// Snapshot view of one stats struct without a registry — the typed
/// facades (RouterStats & friends) expose their fields through this.
template <typename Stats>
MetricSet StatsSnapshot(const Stats& stats, const std::string& prefix) {
  std::vector<Sample> samples;
  ForEachStatsField(stats, [&](const char* name, const std::uint64_t& field,
                               FieldTag) {
    samples.push_back({prefix + "." + name, field});
  });
  return MetricSet(std::move(samples));
}

}  // namespace cbt::obs
