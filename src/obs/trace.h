// Deterministic sim-time protocol tracing: a bounded ring buffer of
// structured events, exportable as JSONL or Chrome trace_event JSON
// (loadable in Perfetto / chrome://tracing).
//
// Determinism contract
// --------------------
// Tracing is record-only: emitting an event writes one POD slot into a
// pre-sized ring and touches neither the RNG nor the event queue, so a
// run with tracing enabled at any level is byte-identical — in event
// order and in every bench/test output — to the same run with tracing
// off. CI enforces this with a tracing-on vs tracing-off differential
// over bench_chaos_soak.
//
// Cost contract
// -------------
// Emission is a level check plus a struct store; event names/categories
// are static strings (no allocation, no formatting until export). The
// OBS_TRACE* macros compile to nothing when CBT_OBS_COMPILED_TRACE_LEVEL
// is 0, for builds that want the instrumentation gone entirely.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "common/types.h"

namespace cbt::obs {

/// Runtime verbosity. kSpans records protocol state-machine transitions
/// and fault spans; kVerbose adds per-packet lifecycle instants
/// (join/ack/quit/flush receptions) and routing-invalidation detail.
enum class TraceLevel : std::uint8_t { kOff = 0, kSpans = 1, kVerbose = 2 };

/// Broad event classification (the "cat" field of the Chrome export).
enum class TraceKind : std::uint8_t {
  kFsm,        // CBT group state machine: joining -> active -> rejoining
  kPacket,     // control-packet lifecycle (join/ack/quit/flush/echo)
  kChaos,      // fault injection / repair
  kRouting,    // unicast-routing invalidations
  kInvariant,  // auditor violations
  kTopology,   // netsim up/down and attach changes
  kIgmp,       // querier elections, membership edges
  kMarker,     // free-form bench/test markers
};

const char* TraceKindName(TraceKind kind);

/// Chrome trace_event phase: instants, and begin/end span brackets
/// (matched per (pid, tid=node, name) by the viewer).
enum class TracePhase : std::uint8_t { kInstant, kBegin, kEnd };

/// One trace record. POD; `name`/`detail` must be static strings (string
/// literals or other process-lifetime constants) — the ring stores the
/// pointers only.
struct TraceEvent {
  SimTime time = 0;
  TraceKind kind = TraceKind::kMarker;
  TracePhase phase = TracePhase::kInstant;
  TraceLevel level = TraceLevel::kSpans;
  const char* name = "";
  /// Emitting node (-1 when not node-scoped); the Chrome "tid".
  std::int32_t node = -1;
  /// Multicast group the event concerns (unspecified when N/A).
  Ipv4Address group;
  /// Event-specific scalars (subnet id, epoch, counts...; see call sites).
  std::uint64_t arg_a = 0;
  std::uint64_t arg_b = 0;
  /// Correlation id threading one protocol transaction (a join attempt,
  /// a quit exchange, a chaos fault span) through its begin/end/outcome
  /// events. Routers pack (node << 32 | per-node counter); the chaos
  /// injector uses its plan index. 0 = uncorrelated.
  std::uint64_t txn = 0;
  /// Optional static detail string.
  const char* detail = nullptr;
};

/// Bounded ring of TraceEvents. When full, the oldest events are
/// overwritten (and counted in dropped()) — a chaos soak keeps the tail
/// of history leading up to whatever went wrong.
class TraceBuffer {
 public:
  explicit TraceBuffer(std::size_t capacity = 1 << 16,
                       TraceLevel level = TraceLevel::kSpans);

  TraceBuffer(const TraceBuffer&) = delete;
  TraceBuffer& operator=(const TraceBuffer&) = delete;

  TraceLevel level() const { return level_; }
  void set_level(TraceLevel level) { level_ = level; }

  bool enabled(TraceLevel level) const {
    return level_ != TraceLevel::kOff &&
           static_cast<std::uint8_t>(level) <=
               static_cast<std::uint8_t>(level_);
  }

  /// Records `event` (assigns its sequence number). Callers normally go
  /// through the OBS_TRACE* macros, which add the level gate.
  void Emit(const TraceEvent& event);

  std::size_t size() const { return count_; }
  std::size_t capacity() const { return ring_.size(); }
  std::uint64_t dropped() const { return dropped_; }
  std::uint64_t emitted() const { return next_seq_; }

  void Clear();

  /// Visits retained events oldest -> newest; fn(seq, event).
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    const std::size_t start = (head_ + ring_.size() - count_) % ring_.size();
    for (std::size_t i = 0; i < count_; ++i) {
      const std::size_t idx = (start + i) % ring_.size();
      fn(first_seq_ + i, ring_[idx]);
    }
  }

  /// One JSON object per line: {"seq":..,"t_us":..,"cat":..,"name":..,...}.
  /// The first line is a metadata object {"meta":{...}} carrying the
  /// ring's overflow accounting (emitted/retained/dropped/first_seq), so
  /// a consumer can distinguish "no event" from "event evicted".
  void ExportJsonl(std::ostream& os) const;

  /// Chrome trace_event JSON object ({"traceEvents":[...]}); `pid` labels
  /// the process lane (benches use one pid per simulated topology).
  void ExportChromeTrace(std::ostream& os, int pid = 1) const;

 private:
  std::vector<TraceEvent> ring_;
  std::size_t head_ = 0;   // next write slot
  std::size_t count_ = 0;  // retained events
  std::uint64_t first_seq_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t dropped_ = 0;
  TraceLevel level_;
};

/// Default buffer picked up by every netsim::Simulator at construction
/// (benches set it once in main(), before building sims, so
/// multi-topology sweeps trace without threading a pointer through every
/// harness helper). Null by default: tracing off.
///
/// Resolution order: a thread-local override installed with
/// ScopedThreadTraceBuffer wins (the parallel replica executor gives
/// every replica its own ring — or null — so concurrent replicas never
/// share one); otherwise the process-wide default set with
/// SetProcessTraceBuffer.
TraceBuffer* ProcessTraceBuffer();
void SetProcessTraceBuffer(TraceBuffer* buffer);

/// RAII thread-local override of ProcessTraceBuffer(). Installing
/// nullptr is meaningful: it masks the process default, turning tracing
/// off for this thread — exactly what an untraced replica needs while a
/// traced bench main holds a process buffer. Nests; restores the
/// previous override on destruction.
class ScopedThreadTraceBuffer {
 public:
  explicit ScopedThreadTraceBuffer(TraceBuffer* buffer);
  ~ScopedThreadTraceBuffer();

  ScopedThreadTraceBuffer(const ScopedThreadTraceBuffer&) = delete;
  ScopedThreadTraceBuffer& operator=(const ScopedThreadTraceBuffer&) = delete;

 private:
  TraceBuffer* previous_;
  bool previous_installed_;
};

/// Chrome trace_event export of several buffers into one JSON object:
/// buffers[i] becomes process lane `pid` = i + 1, events in buffer order.
/// The replica executor's ordered reducer collects per-replica rings and
/// exports them here, so the combined trace is deterministic for a given
/// replica order. Null entries are skipped (their lane stays empty).
void ExportCombinedChromeTrace(std::ostream& os,
                               const std::vector<const TraceBuffer*>& buffers);

#ifndef CBT_OBS_COMPILED_TRACE_LEVEL
#define CBT_OBS_COMPILED_TRACE_LEVEL 2
#endif

// Callsite macros: `buf` is a TraceBuffer* (may be null); the event
// expression is only evaluated when the buffer accepts the level.
#if CBT_OBS_COMPILED_TRACE_LEVEL >= 1
#define OBS_TRACE_AT(buf, lvl, ...)                              \
  do {                                                           \
    ::cbt::obs::TraceBuffer* obs_tb_ = (buf);                    \
    if (obs_tb_ != nullptr && obs_tb_->enabled(lvl) &&           \
        static_cast<int>(lvl) <= CBT_OBS_COMPILED_TRACE_LEVEL) { \
      obs_tb_->Emit(::cbt::obs::TraceEvent{__VA_ARGS__});        \
    }                                                            \
  } while (false)
#else
#define OBS_TRACE_AT(buf, lvl, ...) \
  do {                              \
  } while (false)
#endif

/// Span/transition-level event (TraceLevel::kSpans).
#define OBS_TRACE(buf, ...) \
  OBS_TRACE_AT(buf, ::cbt::obs::TraceLevel::kSpans, __VA_ARGS__)
/// Per-packet-level event (TraceLevel::kVerbose).
#define OBS_TRACE_VERBOSE(buf, ...) \
  OBS_TRACE_AT(buf, ::cbt::obs::TraceLevel::kVerbose, __VA_ARGS__)

}  // namespace cbt::obs
