#include "obs/metrics.h"

#include <algorithm>
#include <cassert>

namespace cbt::obs {

namespace {
/// Shared sink for unbound handles: instrumented code can always record,
/// registered or not, without a branch. Thread-local so concurrent
/// simulation replicas never write the same scratch slot (the values are
/// garbage by design; the isolation is for the data-race freedom the
/// parallel executor's TSan suite enforces).
thread_local std::uint64_t t_scratch_slot = 0;
thread_local HistogramData t_scratch_histogram;
}  // namespace

Counter::Counter() : slot_(&t_scratch_slot) {}
Gauge::Gauge() : slot_(&t_scratch_slot) {}
Histogram::Histogram() : data_(&t_scratch_histogram) {
  if (t_scratch_histogram.counts.empty()) {
    t_scratch_histogram.counts.resize(1);  // overflow bucket only
  }
}

// --- MetricSet -------------------------------------------------------------

MetricSet::MetricSet(std::vector<Sample> samples)
    : samples_(std::move(samples)) {
  std::sort(samples_.begin(), samples_.end(),
            [](const Sample& a, const Sample& b) { return a.name < b.name; });
}

std::optional<std::uint64_t> MetricSet::Get(std::string_view name) const {
  const auto it = std::lower_bound(
      samples_.begin(), samples_.end(), name,
      [](const Sample& s, std::string_view n) { return s.name < n; });
  if (it == samples_.end() || it->name != name) return std::nullopt;
  return it->value;
}

std::uint64_t MetricSet::ValueOr(std::string_view name,
                                 std::uint64_t fallback) const {
  return Get(name).value_or(fallback);
}

MetricSet MetricSet::WithPrefix(std::string_view prefix) const {
  std::vector<Sample> out;
  for (const Sample& s : samples_) {
    if (s.name.size() >= prefix.size() &&
        std::string_view(s.name).substr(0, prefix.size()) == prefix) {
      out.push_back(s);
    }
  }
  return MetricSet(std::move(out));
}

std::uint64_t MetricSet::SumWithSuffix(std::string_view suffix) const {
  std::uint64_t total = 0;
  for (const Sample& s : samples_) {
    if (s.name.size() >= suffix.size() &&
        std::string_view(s.name).substr(s.name.size() - suffix.size()) ==
            suffix) {
      total += s.value;
    }
  }
  return total;
}

MetricSet MetricSet::Diff(const MetricSet& earlier) const {
  std::vector<Sample> out;
  out.reserve(samples_.size());
  for (const Sample& s : samples_) {
    out.push_back({s.name, s.value - earlier.ValueOr(s.name, 0)});
  }
  return MetricSet(std::move(out));
}

void MetricSet::Merge(const MetricSet& other) {
  for (const Sample& s : other.samples_) {
    if (!Get(s.name)) samples_.push_back(s);
  }
  std::sort(samples_.begin(), samples_.end(),
            [](const Sample& a, const Sample& b) { return a.name < b.name; });
}

// --- Registry --------------------------------------------------------------

Registry::Entry& Registry::FindOrCreate(const std::string& name,
                                        Entry::Kind kind) {
  const auto it = index_.find(name);
  if (it != index_.end()) return *it->second;
  entries_.emplace_back();
  Entry& entry = entries_.back();
  entry.kind = kind;
  index_[name] = &entry;
  return entry;
}

Counter Registry::RegisterCounter(const std::string& name) {
  Entry& entry = FindOrCreate(name, Entry::Kind::kOwned);
  assert(entry.kind != Entry::Kind::kHistogram);
  return Counter(entry.kind == Entry::Kind::kExternal ? entry.external
                                                      : &entry.owned);
}

Gauge Registry::RegisterGauge(const std::string& name) {
  Entry& entry = FindOrCreate(name, Entry::Kind::kOwned);
  assert(entry.kind != Entry::Kind::kHistogram);
  return Gauge(entry.kind == Entry::Kind::kExternal ? entry.external
                                                    : &entry.owned);
}

Histogram Registry::RegisterHistogram(const std::string& name,
                                      std::vector<std::uint64_t> bounds) {
  Entry& entry = FindOrCreate(name, Entry::Kind::kHistogram);
  assert(entry.kind == Entry::Kind::kHistogram);
  if (entry.histogram.counts.empty()) {
    assert(std::is_sorted(bounds.begin(), bounds.end()));
    entry.histogram.bounds = std::move(bounds);
    entry.histogram.counts.resize(entry.histogram.bounds.size() + 1);
  }
  return Histogram(&entry.histogram);
}

void Registry::RegisterExternal(const std::string& name,
                                std::uint64_t* field) {
  Entry& entry = FindOrCreate(name, Entry::Kind::kExternal);
  assert(entry.kind == Entry::Kind::kExternal);
  entry.external = field;  // re-registration rebinds (see header)
}

bool Registry::Contains(const std::string& name) const {
  return index_.contains(name);
}

MetricSet Registry::Snapshot() const {
  std::vector<Sample> samples;
  samples.reserve(index_.size());
  for (const auto& [name, entry] : index_) {
    switch (entry->kind) {
      case Entry::Kind::kOwned:
        samples.push_back({name, entry->owned});
        break;
      case Entry::Kind::kExternal:
        samples.push_back({name, *entry->external});
        break;
      case Entry::Kind::kHistogram: {
        const HistogramData& h = entry->histogram;
        for (std::size_t i = 0; i < h.bounds.size(); ++i) {
          samples.push_back(
              {name + ".le_" + std::to_string(h.bounds[i]), h.counts[i]});
        }
        samples.push_back({name + ".le_inf", h.counts.back()});
        samples.push_back({name + ".count", h.count});
        samples.push_back({name + ".sum", h.sum});
        break;
      }
    }
  }
  return MetricSet(std::move(samples));
}

void Registry::Reset() {
  for (Entry& entry : entries_) {
    switch (entry.kind) {
      case Entry::Kind::kOwned:
        entry.owned = 0;
        break;
      case Entry::Kind::kExternal:
        *entry.external = 0;
        break;
      case Entry::Kind::kHistogram:
        std::fill(entry.histogram.counts.begin(), entry.histogram.counts.end(),
                  0);
        entry.histogram.count = 0;
        entry.histogram.sum = 0;
        break;
    }
  }
}

}  // namespace cbt::obs
