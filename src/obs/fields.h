// Stats-field reflection: the glue between the legacy per-protocol
// counter structs (cbt::core::RouterStats, baselines::DvmrpStats, ...)
// and the obs metrics registry.
//
// Each stats struct declares, next to its definition, an overload of
//
//   template <typename S, typename Fn>
//   void ForEachStatsField(S& stats, Fn&& fn);
//
// that calls `fn(name, field, tag)` once per counter field, where `name`
// is a static string, `field` a (possibly const) std::uint64_t reference,
// and `tag` an obs::FieldTag classifying the field for rollups. That one
// enumeration is the single source of truth for:
//  * registry names         (obs::BindStats / obs::StatsSnapshot),
//  * cross-protocol rollups (obs::SumTagged — ControlMessagesSent et al.),
//  * resets                 (obs::ResetStats — replaces `*this = S{}`).
//
// This header is dependency-free on purpose: stats headers include it
// without pulling the registry or trace machinery into hot-path TUs.
#pragma once

#include <cstdint>
#include <utility>

namespace cbt::obs {

/// Rollup classification of a counter field. Tags mirror the semantics of
/// the historical bespoke accessors exactly: a field is tagged
/// kControlSent iff the struct's old ControlMessagesSent() summed it
/// (e.g. DVMRP counts prunes+grafts but *not* graft acks/retransmits —
/// acks piggyback on the graft exchange and were never billed).
enum class FieldTag : std::uint8_t {
  kNone = 0,
  /// Counted by ControlMessagesSent() — one originated/forwarded control
  /// transmission on the wire.
  kControlSent = 1,
};

/// Sums every field tagged `tag`. The generic body of every
/// ControlMessagesSent()-style rollup.
template <typename Stats>
std::uint64_t SumTagged(const Stats& stats, FieldTag tag) {
  std::uint64_t total = 0;
  ForEachStatsField(stats, [&](const char*, const std::uint64_t& field,
                               FieldTag field_tag) {
    if (field_tag == tag) total += field;
  });
  return total;
}

/// Zeroes every enumerated field — the reset idiom that replaces
/// `*this = Stats{}` struct-copy (which quietly breaks once external
/// consumers hold pointers into the struct).
template <typename Stats>
void ResetStats(Stats& stats) {
  ForEachStatsField(stats,
                    [](const char*, std::uint64_t& field, FieldTag) {
                      field = 0;
                    });
}

}  // namespace cbt::obs
