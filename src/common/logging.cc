#include "common/logging.h"

#include <cstdarg>
#include <cstdio>
#include <vector>

namespace cbt {
namespace {

LogLevel g_level = LogLevel::kOff;
Logger::Sink g_sink;  // empty → default stderr sink

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarning: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

}  // namespace

LogLevel Logger::level() { return g_level; }
void Logger::SetLevel(LogLevel level) { g_level = level; }
void Logger::SetSink(Sink sink) { g_sink = std::move(sink); }

void Logger::Write(LogLevel level, std::string message) {
  if (g_sink) {
    g_sink(level, message);
    return;
  }
  std::fprintf(stderr, "[%s] %s\n", LevelName(level), message.c_str());
}

namespace logging_detail {

std::string Format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list copy;
  va_copy(copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args);
  }
  va_end(args);
  return out;
}

}  // namespace logging_detail
}  // namespace cbt
