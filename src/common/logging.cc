#include "common/logging.h"

#include <cstdarg>
#include <cstdio>
#include <vector>

namespace cbt {
namespace {

/// Shared fallback config: what every thread logs through until a
/// per-run config is installed. Mutated only by single-threaded setup
/// code (tests, bench mains) — concurrent replicas get their own
/// LogConfig via InstallThreadConfig and never touch this one.
LogConfig g_process_config;

/// The calling thread's override; null → g_process_config.
thread_local LogConfig* t_config = nullptr;

}  // namespace

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarning: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

LogConfig& Logger::CurrentConfig() {
  return t_config != nullptr ? *t_config : g_process_config;
}

LogConfig* Logger::InstallThreadConfig(LogConfig* config) {
  LogConfig* previous = t_config;
  t_config = config;
  return previous;
}

LogLevel Logger::level() { return CurrentConfig().level; }
void Logger::SetLevel(LogLevel level) { CurrentConfig().level = level; }
void Logger::SetSink(Sink sink) { CurrentConfig().sink = std::move(sink); }

void Logger::Write(LogLevel level, std::string message) {
  const LogConfig& config = CurrentConfig();
  if (config.sink) {
    config.sink(level, message);
    return;
  }
  std::fprintf(stderr, "[%s] %s\n", LogLevelName(level), message.c_str());
}

namespace logging_detail {

std::string Format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list copy;
  va_copy(copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args);
  }
  va_end(args);
  return out;
}

}  // namespace logging_detail
}  // namespace cbt
