// Raw cycle stamps for stage timing inside a running simulation.
//
// Wall-clocking a whole run folds the event queue, parsing and routing
// infrastructure into every number; benchmarks that want the cost of ONE
// stage (e.g. the data-plane forwarding handlers) bracket just that code
// with CycleNow() and accumulate the deltas. rdtsc costs ~10 cycles per
// read, two orders of magnitude cheaper than a clock_gettime pair, so
// the bracketing perturbs what it measures by only a few nanoseconds.
//
// Deltas are in arbitrary ticks; convert with a caller-side calibration
// (count ticks across a measured steady_clock interval).
#pragma once

#include <cstdint>

#if defined(__x86_64__) || defined(_M_X64)
#include <x86intrin.h>
#else
#include <chrono>
#endif

namespace cbt {

/// Monotonic tick stamp: rdtsc on x86-64 (constant-rate on every CPU of
/// this century), steady_clock nanoseconds elsewhere. Only deltas are
/// meaningful, and only after calibrating ticks-per-second.
inline std::uint64_t CycleNow() {
#if defined(__x86_64__) || defined(_M_X64)
  return __rdtsc();
#else
  return static_cast<std::uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
#endif
}

}  // namespace cbt
