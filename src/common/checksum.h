// RFC 1071 Internet checksum: the 16-bit one's complement of the one's
// complement sum, used by the CBT data and control headers (section 8)
// and by the simulated IP/IGMP headers.
#pragma once

#include <cstdint>
#include <span>

namespace cbt {

/// Computes the Internet checksum over `data`. Any embedded checksum field
/// must be zero when computing, so that Verify (sum == 0xFFFF complement)
/// holds on receive.
std::uint16_t InternetChecksum(std::span<const std::uint8_t> data);

/// True if a buffer that *includes* its checksum field sums correctly.
bool VerifyInternetChecksum(std::span<const std::uint8_t> data);

}  // namespace cbt
