#include "common/random.h"

#include <cassert>

namespace cbt {
namespace {

std::uint64_t SplitMix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

std::uint64_t Rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(sm);
}

std::uint64_t Rng::NextU64() {
  const std::uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::NextBelow(std::uint64_t bound) {
  assert(bound > 0);
  // Rejection sampling over the top of the range to remove modulo bias.
  const std::uint64_t threshold = -bound % bound;
  for (;;) {
    const std::uint64_t r = NextU64();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Rng::NextInRange(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const std::uint64_t span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  return lo + static_cast<std::int64_t>(NextBelow(span));
}

double Rng::NextDouble() {
  // 53 high bits → uniform double in [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

bool Rng::NextBool(double p_true) { return NextDouble() < p_true; }

std::vector<std::size_t> Rng::SampleWithoutReplacement(std::size_t n,
                                                       std::size_t k) {
  assert(k <= n);
  std::vector<std::size_t> all(n);
  for (std::size_t i = 0; i < n; ++i) all[i] = i;
  Shuffle(all);
  all.resize(k);
  return all;
}

}  // namespace cbt
