// Fundamental strong types shared by every CBT module.
//
// The simulator models an IPv4 internetwork, so addresses are real 32-bit
// IPv4 values with textual parsing/printing, and simulated time is a
// signed 64-bit microsecond count (deterministic, no wall clock).
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>

namespace cbt {

// ---------------------------------------------------------------------------
// Simulated time.
// ---------------------------------------------------------------------------

/// A point in simulated time, microseconds since simulation start.
using SimTime = std::int64_t;

/// A duration in simulated time, microseconds.
using SimDuration = std::int64_t;

constexpr SimDuration kMicrosecond = 1;
constexpr SimDuration kMillisecond = 1000 * kMicrosecond;
constexpr SimDuration kSecond = 1000 * kMillisecond;

/// Renders "12.345s" style human-readable time for logs.
std::string FormatSimTime(SimTime t);

// ---------------------------------------------------------------------------
// IPv4 addressing.
// ---------------------------------------------------------------------------

/// An IPv4 address held in host byte order.
///
/// Regular value type: totally ordered (the spec's tie-breakers elect the
/// *lowest-addressed* router, so ordering is semantically meaningful).
class Ipv4Address {
 public:
  constexpr Ipv4Address() = default;
  constexpr explicit Ipv4Address(std::uint32_t host_order) : bits_(host_order) {}
  constexpr Ipv4Address(std::uint8_t a, std::uint8_t b, std::uint8_t c, std::uint8_t d)
      : bits_((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
              (std::uint32_t{c} << 8) | std::uint32_t{d}) {}

  /// Parses dotted-quad notation; returns nullopt on malformed input.
  static std::optional<Ipv4Address> Parse(const std::string& dotted);

  constexpr std::uint32_t bits() const { return bits_; }
  std::string ToString() const;

  constexpr bool IsUnspecified() const { return bits_ == 0; }

  /// True for 224.0.0.0/4, the IPv4 class-D multicast range.
  constexpr bool IsMulticast() const { return (bits_ & 0xF0000000u) == 0xE0000000u; }

  /// True for link-local multicast 224.0.0.0/24 (never forwarded off-link).
  constexpr bool IsLinkLocalMulticast() const {
    return (bits_ & 0xFFFFFF00u) == 0xE0000000u;
  }

  friend constexpr auto operator<=>(Ipv4Address, Ipv4Address) = default;

 private:
  std::uint32_t bits_ = 0;
};

/// 224.0.0.1 — the all-systems group.
inline constexpr Ipv4Address kAllSystemsGroup{224, 0, 0, 1};
/// 224.0.0.2 — the all-routers group (IGMP leave target).
inline constexpr Ipv4Address kAllRoutersGroup{224, 0, 0, 2};
/// 224.0.0.7 — the all-CBT-routers group (spec section 2.2 of -02).
inline constexpr Ipv4Address kAllCbtRoutersGroup{224, 0, 0, 7};

/// An IPv4 subnet: network prefix plus mask, both host byte order.
class SubnetAddress {
 public:
  constexpr SubnetAddress() = default;
  constexpr SubnetAddress(Ipv4Address network, std::uint32_t mask)
      : network_(Ipv4Address(network.bits() & mask)), mask_(mask) {}

  /// Builds from prefix length, e.g. {10.1.2.0, 24}.
  static constexpr SubnetAddress FromPrefix(Ipv4Address network, int prefix_len) {
    const std::uint32_t mask =
        prefix_len == 0 ? 0u : (0xFFFFFFFFu << (32 - prefix_len));
    return SubnetAddress(network, mask);
  }

  constexpr Ipv4Address network() const { return network_; }
  constexpr std::uint32_t mask() const { return mask_; }

  /// The spec's "subnet mask ANDed with the packet's source address" check
  /// (section 5, local-origin test).
  constexpr bool Contains(Ipv4Address addr) const {
    return (addr.bits() & mask_) == network_.bits();
  }

  /// Address of host index `n` within the subnet (n=1 is the first host).
  constexpr Ipv4Address HostAddress(std::uint32_t n) const {
    return Ipv4Address(network_.bits() | n);
  }

  std::string ToString() const;

  friend constexpr auto operator<=>(SubnetAddress, SubnetAddress) = default;

 private:
  Ipv4Address network_;
  std::uint32_t mask_ = 0;
};

// ---------------------------------------------------------------------------
// Simulator entity identifiers (strong index types).
// ---------------------------------------------------------------------------

namespace detail {
/// CRTP-free strong integer id; Tag distinguishes unrelated id spaces.
template <typename Tag>
class StrongId {
 public:
  constexpr StrongId() = default;
  constexpr explicit StrongId(std::int32_t v) : value_(v) {}

  constexpr std::int32_t value() const { return value_; }
  constexpr bool IsValid() const { return value_ >= 0; }

  friend constexpr auto operator<=>(StrongId, StrongId) = default;

 private:
  std::int32_t value_ = -1;
};
}  // namespace detail

struct NodeIdTag {};
struct SubnetIdTag {};
struct GroupCtxTag {};

/// Identifies a node (router or host) within a Simulator.
using NodeId = detail::StrongId<NodeIdTag>;
/// Identifies a subnet (multi-access LAN or point-to-point link).
using SubnetId = detail::StrongId<SubnetIdTag>;

/// Interface index local to a node: the spec's "vif" (virtual interface).
using VifIndex = std::int32_t;
constexpr VifIndex kInvalidVif = -1;

}  // namespace cbt

// Hash support so strong types can key unordered containers.
template <>
struct std::hash<cbt::Ipv4Address> {
  std::size_t operator()(const cbt::Ipv4Address& a) const noexcept {
    return std::hash<std::uint32_t>{}(a.bits());
  }
};

template <typename Tag>
struct std::hash<cbt::detail::StrongId<Tag>> {
  std::size_t operator()(const cbt::detail::StrongId<Tag>& id) const noexcept {
    return std::hash<std::int32_t>{}(id.value());
  }
};
