// A small-buffer vector for trivially-copyable element types.
//
// The forwarding path iterates tiny per-group collections (child entries,
// target vif lists) on every data packet; a std::vector there means a heap
// allocation per packet. SmallVec keeps the first N elements inline and
// only touches the heap when a collection outgrows that — which for CBT
// fan-outs (typically 1-4 children per vif) is the rare case.
//
// Deliberately minimal: contiguous storage, vector-compatible iteration
// and erase, no exception guarantees beyond what trivial copies give.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstring>
#include <type_traits>
#include <utility>

namespace cbt {

template <typename T, std::size_t N>
class SmallVec {
  static_assert(std::is_trivially_copyable_v<T>,
                "SmallVec relies on memcpy-able elements");
  static_assert(N > 0);

 public:
  using value_type = T;
  using iterator = T*;
  using const_iterator = const T*;

  SmallVec() = default;

  SmallVec(const SmallVec& other) { *this = other; }
  SmallVec& operator=(const SmallVec& other) {
    if (this == &other) return *this;
    assign(other.data(), other.size_);
    return *this;
  }

  SmallVec(SmallVec&& other) noexcept { *this = std::move(other); }
  SmallVec& operator=(SmallVec&& other) noexcept {
    if (this == &other) return *this;
    delete[] heap_;
    heap_ = nullptr;
    // Not adopting a heap block means we are back on the inline buffer, so
    // the capacity must drop to N even when the source is empty.
    capacity_ = N;
    size_ = other.size_;
    if (other.heap_ != nullptr) {
      heap_ = other.heap_;
      capacity_ = other.capacity_;
      other.heap_ = nullptr;
    } else if (size_ > 0) {
      std::memcpy(inline_, other.inline_, size_ * sizeof(T));
    }
    other.size_ = 0;
    other.capacity_ = N;
    return *this;
  }

  ~SmallVec() { delete[] heap_; }

  T* data() { return heap_ != nullptr ? heap_ : InlineData(); }
  const T* data() const {
    return heap_ != nullptr ? heap_ : InlineData();
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  std::size_t capacity() const { return capacity_; }
  /// True while the elements still live in the inline buffer.
  bool inlined() const { return heap_ == nullptr; }

  iterator begin() { return data(); }
  iterator end() { return data() + size_; }
  const_iterator begin() const { return data(); }
  const_iterator end() const { return data() + size_; }

  T& operator[](std::size_t i) { return data()[i]; }
  const T& operator[](std::size_t i) const { return data()[i]; }
  T& front() { return data()[0]; }
  const T& front() const { return data()[0]; }
  T& back() { return data()[size_ - 1]; }
  const T& back() const { return data()[size_ - 1]; }

  void push_back(const T& value) {
    if (size_ == capacity_) {
      // `value` may alias our own storage; copy it out before Grow frees it.
      const T copy = value;
      Grow(capacity_ * 2);
      data()[size_++] = copy;
      return;
    }
    data()[size_++] = value;
  }

  template <typename... Args>
  T& emplace_back(Args&&... args) {
    push_back(T{std::forward<Args>(args)...});
    return back();
  }

  void pop_back() { --size_; }
  void clear() { size_ = 0; }

  iterator erase(iterator pos) { return erase(pos, pos + 1); }
  iterator erase(iterator first, iterator last) {
    const auto tail = static_cast<std::size_t>(end() - last);
    if (tail > 0) std::memmove(first, last, tail * sizeof(T));
    size_ -= static_cast<std::size_t>(last - first);
    return first;
  }

  void assign(const T* src, std::size_t count) {
    if (count > capacity_) Grow(count);
    if (count > 0) std::memcpy(data(), src, count * sizeof(T));
    size_ = count;
  }

  void reserve(std::size_t count) {
    if (count > capacity_) Grow(count);
  }

  friend bool operator==(const SmallVec& a, const SmallVec& b) {
    return std::equal(a.begin(), a.end(), b.begin(), b.end());
  }

 private:
  T* InlineData() { return reinterpret_cast<T*>(inline_); }
  const T* InlineData() const { return reinterpret_cast<const T*>(inline_); }

  void Grow(std::size_t at_least) {
    const std::size_t cap = std::max(at_least, capacity_ * 2);
    T* bigger = new T[cap];
    if (size_ > 0) std::memcpy(bigger, data(), size_ * sizeof(T));
    delete[] heap_;
    heap_ = bigger;
    capacity_ = cap;
  }

  alignas(T) unsigned char inline_[N * sizeof(T)];
  T* heap_ = nullptr;
  std::size_t size_ = 0;
  std::size_t capacity_ = N;
};

}  // namespace cbt
