#include "common/thread_guard.h"

#ifndef NDEBUG

#include <cstdio>
#include <cstdlib>

namespace cbt {

void ThreadOwnershipGuard::Die(const char* what) {
  std::fprintf(stderr,
               "ThreadOwnershipGuard: %s touched from a second thread — "
               "simulation structures must stay within one replica/thread "
               "(see src/exec/)\n",
               what);
  std::abort();
}

}  // namespace cbt

#endif  // NDEBUG
