// Byte-order-aware serialization buffers.
//
// All CBT wire formats (section 8) are big-endian. BufferWriter appends
// network-order fields to a growable byte vector; BufferReader consumes
// them with explicit bounds checking — a truncated or corrupt packet turns
// into a failed read, never undefined behaviour.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/types.h"

namespace cbt {

/// Append-only big-endian serializer.
class BufferWriter {
 public:
  BufferWriter() = default;
  explicit BufferWriter(std::size_t reserve) { bytes_.reserve(reserve); }

  void WriteU8(std::uint8_t v) { bytes_.push_back(v); }

  void WriteU16(std::uint16_t v) {
    bytes_.push_back(static_cast<std::uint8_t>(v >> 8));
    bytes_.push_back(static_cast<std::uint8_t>(v));
  }

  void WriteU32(std::uint32_t v) {
    bytes_.push_back(static_cast<std::uint8_t>(v >> 24));
    bytes_.push_back(static_cast<std::uint8_t>(v >> 16));
    bytes_.push_back(static_cast<std::uint8_t>(v >> 8));
    bytes_.push_back(static_cast<std::uint8_t>(v));
  }

  void WriteAddress(Ipv4Address a) { WriteU32(a.bits()); }

  void WriteBytes(std::span<const std::uint8_t> data) {
    bytes_.insert(bytes_.end(), data.begin(), data.end());
  }

  /// Overwrites a previously written 16-bit field (checksum back-patching).
  void PatchU16(std::size_t offset, std::uint16_t v) {
    bytes_.at(offset) = static_cast<std::uint8_t>(v >> 8);
    bytes_.at(offset + 1) = static_cast<std::uint8_t>(v);
  }

  std::size_t size() const { return bytes_.size(); }
  std::span<const std::uint8_t> View() const { return bytes_; }
  std::vector<std::uint8_t> Take() && { return std::move(bytes_); }

 private:
  std::vector<std::uint8_t> bytes_;
};

/// Bounds-checked big-endian deserializer over a borrowed byte span.
///
/// Reads never throw: a short buffer sets the error flag and subsequent
/// reads return zero. Callers check ok() once after parsing a structure.
class BufferReader {
 public:
  explicit BufferReader(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint8_t ReadU8() {
    if (!Require(1)) return 0;
    return data_[pos_++];
  }

  std::uint16_t ReadU16() {
    if (!Require(2)) return 0;
    const std::uint16_t v = static_cast<std::uint16_t>(
        (std::uint16_t{data_[pos_]} << 8) | data_[pos_ + 1]);
    pos_ += 2;
    return v;
  }

  std::uint32_t ReadU32() {
    if (!Require(4)) return 0;
    const std::uint32_t v = (std::uint32_t{data_[pos_]} << 24) |
                            (std::uint32_t{data_[pos_ + 1]} << 16) |
                            (std::uint32_t{data_[pos_ + 2]} << 8) |
                            std::uint32_t{data_[pos_ + 3]};
    pos_ += 4;
    return v;
  }

  Ipv4Address ReadAddress() { return Ipv4Address(ReadU32()); }

  /// Returns a view of the next n bytes (empty + error on underrun).
  std::span<const std::uint8_t> ReadBytes(std::size_t n) {
    if (!Require(n)) return {};
    auto out = data_.subspan(pos_, n);
    pos_ += n;
    return out;
  }

  void Skip(std::size_t n) {
    if (Require(n)) pos_ += n;
  }

  std::size_t remaining() const { return failed_ ? 0 : data_.size() - pos_; }
  std::size_t position() const { return pos_; }
  bool ok() const { return !failed_; }

 private:
  bool Require(std::size_t n) {
    if (failed_ || data_.size() - pos_ < n) {
      failed_ = true;
      return false;
    }
    return true;
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
  bool failed_ = false;
};

}  // namespace cbt
