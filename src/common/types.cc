#include "common/types.h"

#include <array>
#include <charconv>
#include <cstdio>

namespace cbt {

std::string FormatSimTime(SimTime t) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%lld.%06llds",
                static_cast<long long>(t / kSecond),
                static_cast<long long>(t % kSecond));
  return buf;
}

std::optional<Ipv4Address> Ipv4Address::Parse(const std::string& dotted) {
  std::array<std::uint32_t, 4> octets{};
  const char* p = dotted.data();
  const char* end = p + dotted.size();
  for (int i = 0; i < 4; ++i) {
    std::uint32_t value = 0;
    auto [next, ec] = std::from_chars(p, end, value);
    if (ec != std::errc{} || value > 255) return std::nullopt;
    octets[static_cast<std::size_t>(i)] = value;
    p = next;
    if (i < 3) {
      if (p == end || *p != '.') return std::nullopt;
      ++p;
    }
  }
  if (p != end) return std::nullopt;
  return Ipv4Address((octets[0] << 24) | (octets[1] << 16) | (octets[2] << 8) |
                     octets[3]);
}

std::string Ipv4Address::ToString() const {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u", (bits_ >> 24) & 0xFF,
                (bits_ >> 16) & 0xFF, (bits_ >> 8) & 0xFF, bits_ & 0xFF);
  return buf;
}

std::string SubnetAddress::ToString() const {
  int prefix = 0;
  for (std::uint32_t m = mask_; m & 0x80000000u; m <<= 1) ++prefix;
  return network_.ToString() + "/" + std::to_string(prefix);
}

}  // namespace cbt
