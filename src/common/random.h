// Deterministic pseudo-random source for workloads and topology generation.
//
// Experiments must be exactly reproducible across runs and platforms, so we
// use our own xoshiro256** implementation (std::mt19937 distributions are
// not portable across standard libraries).
#pragma once

#include <cstdint>
#include <vector>

namespace cbt {

/// xoshiro256** seeded through SplitMix64; cheap, high quality, portable.
class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  std::uint64_t NextU64();

  /// Uniform integer in [0, bound) via Lemire rejection; bound must be > 0.
  std::uint64_t NextBelow(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t NextInRange(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Bernoulli trial.
  bool NextBool(double p_true);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(NextBelow(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Samples k distinct indices from [0, n) (k <= n), in random order.
  std::vector<std::size_t> SampleWithoutReplacement(std::size_t n, std::size_t k);

 private:
  std::uint64_t s_[4];
};

}  // namespace cbt
