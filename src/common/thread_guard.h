// Debug-build cross-thread ownership guard.
//
// The hot-path simulation structures (netsim::PacketArena refcounts,
// netsim::EventQueue slabs) are deliberately non-atomic: one simulation
// replica is single-threaded, and the parallel replica executor
// (src/exec/) runs *whole replicas* on worker threads, never sharing one
// replica's structures across threads. That contract is invisible to the
// type system, so debug builds enforce it dynamically: the guard binds
// to the first thread that touches the guarded object and aborts — with
// a message naming the object — if any other thread touches it later.
//
// Release builds (NDEBUG) compile the guard away entirely; the guarded
// hot paths pay nothing.
#pragma once

#ifndef NDEBUG
#include <atomic>
#include <thread>
#endif

namespace cbt {

#ifndef NDEBUG

class ThreadOwnershipGuard {
 public:
  /// Checks (and on first use, binds) the calling thread. `what` names
  /// the guarded object in the abort message.
  void AssertOwned(const char* what) const {
    const std::thread::id self = std::this_thread::get_id();
    std::thread::id expected{};
    if (owner_.compare_exchange_strong(expected, self,
                                       std::memory_order_relaxed)) {
      return;  // first touch binds ownership
    }
    if (expected != self) Die(what);
  }

  /// Releases the binding so a different thread may adopt the object —
  /// used when ownership is handed off *between* (never during) uses,
  /// e.g. a Simulator built on the main thread then run by one worker.
  void ReleaseOwnership() {
    owner_.store(std::thread::id{}, std::memory_order_relaxed);
  }

 private:
  [[noreturn]] static void Die(const char* what);

  mutable std::atomic<std::thread::id> owner_{};
};

#else  // NDEBUG

class ThreadOwnershipGuard {
 public:
  void AssertOwned(const char*) const {}
  void ReleaseOwnership() {}
};

#endif  // NDEBUG

}  // namespace cbt
