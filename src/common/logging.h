// Minimal leveled logger for protocol tracing.
//
// Routers log control-plane transitions (join forwarded, branch created,
// parent lost...) at Debug/Trace; experiments run with logging off so
// measured message counts are unaffected. The sink is injectable so tests
// can capture and assert on trace output.
#pragma once

#include <functional>
#include <string>

namespace cbt {

enum class LogLevel : int {
  kTrace = 0,
  kDebug = 1,
  kInfo = 2,
  kWarning = 3,
  kError = 4,
  kOff = 5,
};

/// Process-wide logging configuration (the simulator is single-threaded).
class Logger {
 public:
  using Sink = std::function<void(LogLevel, const std::string&)>;

  static LogLevel level();
  static void SetLevel(LogLevel level);

  /// Replaces the output sink (default writes to stderr). Pass nullptr to
  /// restore the default.
  static void SetSink(Sink sink);

  static void Write(LogLevel level, std::string message);

  static bool Enabled(LogLevel level) { return level >= Logger::level(); }
};

namespace logging_detail {
std::string Format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));
}  // namespace logging_detail

// Callsite macros: arguments are not evaluated when the level is disabled.
#define CBT_LOG(level, ...)                                                  \
  do {                                                                       \
    if (::cbt::Logger::Enabled(level)) {                                     \
      ::cbt::Logger::Write(level, ::cbt::logging_detail::Format(__VA_ARGS__)); \
    }                                                                        \
  } while (false)

#define CBT_TRACE(...) CBT_LOG(::cbt::LogLevel::kTrace, __VA_ARGS__)
#define CBT_DEBUG(...) CBT_LOG(::cbt::LogLevel::kDebug, __VA_ARGS__)
#define CBT_INFO(...) CBT_LOG(::cbt::LogLevel::kInfo, __VA_ARGS__)
#define CBT_WARN(...) CBT_LOG(::cbt::LogLevel::kWarning, __VA_ARGS__)
#define CBT_ERROR(...) CBT_LOG(::cbt::LogLevel::kError, __VA_ARGS__)

}  // namespace cbt
