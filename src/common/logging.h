// Minimal leveled logger for protocol tracing.
//
// Routers log control-plane transitions (join forwarded, branch created,
// parent lost...) at Debug/Trace; experiments run with logging off so
// measured message counts are unaffected. The sink is injectable so tests
// can capture and assert on trace output.
//
// Concurrency model
// -----------------
// There is no process-wide mutable configuration on the hot path anymore.
// The logger reads a *current* LogConfig through a thread-local pointer:
// by default every thread shares the process config (single-threaded
// programs behave exactly as before), but the parallel replica executor
// (exec::ScopedRunContext) installs a per-replica LogConfig for the
// duration of a replica, so concurrent replicas can neither interleave
// log lines nor observe each other's level changes. SetLevel/SetSink
// always act on the calling thread's current config.
#pragma once

#include <functional>
#include <string>

namespace cbt {

enum class LogLevel : int {
  kTrace = 0,
  kDebug = 1,
  kInfo = 2,
  kWarning = 3,
  kError = 4,
  kOff = 5,
};

/// One logging configuration: a level plus an output sink. The process
/// owns one default instance; each exec::RunContext owns its own.
struct LogConfig {
  using Sink = std::function<void(LogLevel, const std::string&)>;

  LogLevel level = LogLevel::kOff;
  Sink sink;  // empty → default stderr sink
};

class Logger {
 public:
  using Sink = LogConfig::Sink;

  /// Level/sink of the calling thread's current config (the process
  /// config unless a per-run config is installed on this thread).
  static LogLevel level();
  static void SetLevel(LogLevel level);

  /// Replaces the output sink of the current config (default writes to
  /// stderr). Pass nullptr to restore the default.
  static void SetSink(Sink sink);

  static void Write(LogLevel level, std::string message);

  static bool Enabled(LogLevel level) { return level >= Logger::level(); }

  /// Installs `config` as this thread's current config; nullptr restores
  /// the shared process config. Returns the previously installed config
  /// (nullptr if the thread was on the process config), so callers can
  /// restore it — exec::ScopedRunContext does this RAII-style.
  static LogConfig* InstallThreadConfig(LogConfig* config);

  /// The config the calling thread currently logs through.
  static LogConfig& CurrentConfig();
};

/// "TRACE" / "DEBUG" / ... — the tag the default stderr sink prints.
const char* LogLevelName(LogLevel level);

namespace logging_detail {
std::string Format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));
}  // namespace logging_detail

// Callsite macros: arguments are not evaluated when the level is disabled.
#define CBT_LOG(level, ...)                                                  \
  do {                                                                       \
    if (::cbt::Logger::Enabled(level)) {                                     \
      ::cbt::Logger::Write(level, ::cbt::logging_detail::Format(__VA_ARGS__)); \
    }                                                                        \
  } while (false)

#define CBT_TRACE(...) CBT_LOG(::cbt::LogLevel::kTrace, __VA_ARGS__)
#define CBT_DEBUG(...) CBT_LOG(::cbt::LogLevel::kDebug, __VA_ARGS__)
#define CBT_INFO(...) CBT_LOG(::cbt::LogLevel::kInfo, __VA_ARGS__)
#define CBT_WARN(...) CBT_LOG(::cbt::LogLevel::kWarning, __VA_ARGS__)
#define CBT_ERROR(...) CBT_LOG(::cbt::LogLevel::kError, __VA_ARGS__)

}  // namespace cbt
