// Harness wiring a topology into a PIM-SM-shape RP-tree domain (mirrors
// CbtDomain; RPs come from a shared group->RP registry).
#pragma once

#include <map>
#include <memory>
#include <string>

#include "baselines/rp_tree_router.h"
#include "cbt/host.h"
#include "igmp/membership_aggregate.h"
#include "netsim/topologies.h"
#include "routing/route_manager.h"

namespace cbt::baselines {

class RpTreeDomain {
 public:
  RpTreeDomain(netsim::Simulator& sim, netsim::Topology& topo,
               RpTreeConfig config = {});

  void Start() { sim_->StartAgents(); }

  /// Registers `rp` (a router) as the RP for `group`.
  Ipv4Address RegisterGroup(Ipv4Address group, NodeId rp);

  RpTreeRouter& router(NodeId id);
  core::HostAgent& AddHost(SubnetId lan, const std::string& name);

  /// Aggregate membership station (mirrors CbtDomain::AddAggregate).
  igmp::MembershipAggregate& AddAggregate(
      SubnetId lan, const std::string& name,
      igmp::MembershipAggregate::Mode mode =
          igmp::MembershipAggregate::Mode::kCoalesced);

  std::size_t TotalStateUnits() const;
  std::uint64_t TotalControlMessages() const;

  /// Binds router ("rptree.router.<id>.*"), routing, and subnet counters
  /// into `registry` (mirrors CbtDomain::BindMetrics).
  void BindMetrics(obs::Registry& registry) {
    sim_->SetMetrics(&registry);
    for (const auto& [id, router] : routers_) {
      obs::BindStats(registry, "rptree.router." + std::to_string(id.value()),
                     router->mutable_stats());
    }
    obs::BindStats(registry, "rptree.routing", routes_.mutable_stats());
  }

 private:
  netsim::Simulator* sim_;
  netsim::Topology* topo_;
  routing::RouteManager routes_;
  std::map<Ipv4Address, Ipv4Address> rp_by_group_;
  std::map<NodeId, std::unique_ptr<RpTreeRouter>> routers_;
  std::map<NodeId, std::unique_ptr<core::HostAgent>> hosts_;
  std::map<NodeId, std::unique_ptr<igmp::MembershipAggregate>> aggregates_;
};

}  // namespace cbt::baselines
