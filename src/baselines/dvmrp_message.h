// Control messages for the DVMRP-style flood-and-prune baseline.
//
// The SIGCOMM'93 CBT paper positions CBT against per-source broadcast
// trees "such as DVMRP [1]". We model the two messages that matter for
// the state/overhead comparison: PRUNE and GRAFT, carried over UDP on a
// dedicated port. (Real DVMRP rides on IGMP and adds route exchange; our
// baseline uses the shared link-state substrate for RPF instead, which
// only *under*-states DVMRP's overhead — a conservative comparison.)
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "common/buffer.h"
#include "common/types.h"

namespace cbt::baselines {

constexpr std::uint16_t kDvmrpPort = 7779;

enum class DvmrpType : std::uint8_t {
  kPrune = 1,
  kGraft = 2,
  kGraftAck = 3,
};

struct DvmrpMessage {
  DvmrpType type = DvmrpType::kPrune;
  Ipv4Address group;
  /// Source host address the (S,G) state refers to.
  Ipv4Address source;
  /// Requested prune lifetime in seconds (prunes only).
  std::uint32_t lifetime_s = 0;

  std::vector<std::uint8_t> Encode() const;
  static std::optional<DvmrpMessage> Decode(std::span<const std::uint8_t> bytes);
};

}  // namespace cbt::baselines
