#include "baselines/mospf_router.h"

#include <algorithm>

#include "common/checksum.h"

namespace cbt::baselines {

using packet::IpProtocol;

namespace {
constexpr std::size_t kLsaSize = 20;
}

std::vector<std::uint8_t> MembershipLsa::Encode() const {
  BufferWriter out(kLsaSize);
  out.WriteU8(1);  // LSA type: group membership
  out.WriteU8(member ? 1 : 0);
  const std::size_t checksum_offset = out.size();
  out.WriteU16(0);
  out.WriteAddress(advertising_router);
  out.WriteAddress(group);
  out.WriteU32(sequence);
  out.WriteU32(0);  // reserved
  out.PatchU16(checksum_offset, InternetChecksum(out.View()));
  return std::move(out).Take();
}

std::optional<MembershipLsa> MembershipLsa::Decode(
    std::span<const std::uint8_t> bytes) {
  if (bytes.size() < kLsaSize) return std::nullopt;
  if (!VerifyInternetChecksum(bytes.subspan(0, kLsaSize))) return std::nullopt;
  BufferReader in(bytes);
  if (in.ReadU8() != 1) return std::nullopt;
  MembershipLsa lsa;
  const std::uint8_t member_byte = in.ReadU8();
  if (member_byte > 1) return std::nullopt;
  lsa.member = member_byte == 1;
  in.ReadU16();  // checksum
  lsa.advertising_router = in.ReadAddress();
  lsa.group = in.ReadAddress();
  lsa.sequence = in.ReadU32();
  if (!lsa.group.IsMulticast()) return std::nullopt;
  return lsa;
}

MospfRouter::MospfRouter(netsim::Simulator& sim, NodeId self,
                         routing::RouteManager& routes,
                         igmp::IgmpConfig igmp_config)
    : sim_(&sim),
      self_(self),
      routes_(&routes),
      igmp_(sim, self, igmp_config,
            igmp::RouterIgmp::Callbacks{
                [this](VifIndex, Ipv4Address group, Ipv4Address, bool newly) {
                  if (newly) OriginateLsa(group, true);
                },
                nullptr,
                [this](VifIndex, Ipv4Address group) {
                  if (!igmp_.AnyMembers(group)) OriginateLsa(group, false);
                },
                [this](VifIndex vif, Ipv4Address dst,
                       const packet::IgmpMessage& msg) {
                  sim_->SendDatagram(
                      self_, vif, dst,
                      packet::BuildIgmpDatagram(
                          sim_->interface(self_, vif).address, dst, msg));
                }}) {}

void MospfRouter::Start() { igmp_.Start(); }

void MospfRouter::OnDatagram(VifIndex vif, Ipv4Address link_src,
                             Ipv4Address /*link_dst*/,
                             std::span<const std::uint8_t> datagram) {
  const auto parsed = packet::ParseDatagram(datagram);
  if (!parsed) return;
  const packet::Ipv4Header& ip = parsed->ip;
  switch (ip.protocol) {
    case IpProtocol::kIgmp:
      if (const auto msg = packet::ExtractIgmp(*parsed)) {
        igmp_.OnMessage(vif, ip.src, *msg);
      }
      return;
    case IpProtocol::kUdp: {
      BufferReader in(parsed->payload);
      const auto udp = packet::UdpHeader::Decode(in);
      if (!udp || udp->dst_port != kMospfPort) return;
      if (const auto lsa = MembershipLsa::Decode(
              parsed->payload.subspan(packet::kUdpHeaderSize))) {
        HandleLsa(vif, link_src, *lsa);
      }
      return;
    }
    default:
      if (ip.dst.IsMulticast() && !ip.dst.IsLinkLocalMulticast()) {
        HandleData(vif, ip, datagram);
      }
      return;
  }
}

void MospfRouter::OriginateLsa(Ipv4Address group, bool member) {
  MembershipLsa lsa;
  lsa.advertising_router = sim_->PrimaryAddress(self_);
  lsa.group = group;
  lsa.sequence = ++my_sequence_;
  lsa.member = member;
  ++stats_.lsas_originated;
  ++membership_epoch_;
  lsdb_[{lsa.advertising_router, group}] = {lsa.sequence, member};
  FloodLsa(lsa, kInvalidVif);
}

void MospfRouter::FloodLsa(const MembershipLsa& lsa, VifIndex arrival_vif) {
  const auto body = lsa.Encode();
  for (const auto& iface : sim_->node(self_).interfaces) {
    if (iface.vif == arrival_vif || !iface.up) continue;
    // Only interfaces with neighbouring routers carry flooding.
    bool has_router = false;
    for (const auto& [peer, pv] : sim_->subnet(iface.subnet).attachments) {
      if (peer != self_ && sim_->node(peer).is_router) has_router = true;
    }
    if (!has_router) continue;

    BufferWriter out(packet::kIpv4HeaderSize + packet::kUdpHeaderSize +
                     body.size());
    packet::Ipv4Header ip;
    ip.src = iface.address;
    ip.dst = kAllRoutersGroup;
    ip.ttl = 1;
    ip.protocol = IpProtocol::kUdp;
    ip.Encode(out, packet::kUdpHeaderSize + body.size());
    packet::UdpHeader udp{kMospfPort, kMospfPort};
    udp.Encode(out, body.size());
    out.WriteBytes(body);
    auto bytes = std::move(out).Take();
    stats_.control_bytes_sent += bytes.size();
    if (arrival_vif != kInvalidVif) ++stats_.lsas_flooded;
    sim_->SendDatagram(self_, iface.vif, kAllRoutersGroup, std::move(bytes));
  }
}

void MospfRouter::HandleLsa(VifIndex vif, Ipv4Address /*link_src*/,
                            const MembershipLsa& lsa) {
  ++stats_.lsas_received;
  if (lsa.advertising_router == sim_->PrimaryAddress(self_)) return;
  const auto key = std::make_pair(lsa.advertising_router, lsa.group);
  const auto it = lsdb_.find(key);
  if (it != lsdb_.end() && it->second.first >= lsa.sequence) return;  // stale
  lsdb_[key] = {lsa.sequence, lsa.member};
  ++membership_epoch_;
  FloodLsa(lsa, vif);  // continue the domain-wide flood
}

std::vector<NodeId> MospfRouter::MemberRouters(Ipv4Address group) const {
  std::vector<NodeId> members;
  for (const auto& [key, value] : lsdb_) {
    if (key.second != group || !value.second) continue;
    if (const auto node = sim_->FindNodeByAddress(key.first)) {
      members.push_back(*node);
    }
  }
  if (igmp_.AnyMembers(group)) members.push_back(self_);
  std::sort(members.begin(), members.end());
  members.erase(std::unique(members.begin(), members.end()), members.end());
  return members;
}

NodeId MospfRouter::AttachmentRouter(Ipv4Address source) {
  // The lowest-addressed live router on the source's subnet (every MOSPF
  // router derives the same answer from the link-state database). The
  // subnet comes from the routing layer's LPM index rather than a scan;
  // LPM ignores liveness, so if the most-specific subnet is down fall back
  // to the liveness-aware scan — with overlapping prefixes a broader live
  // subnet may still contain the source.
  auto sid = routes_->ResolveSubnet(source);
  if (sid && !sim_->subnet(*sid).up) sid.reset();
  if (!sid) {
    for (std::size_t si = 0; si < sim_->subnet_count(); ++si) {
      const auto& s = sim_->subnet(SubnetId(static_cast<std::int32_t>(si)));
      if (s.up && s.address.Contains(source)) {
        sid = s.id;
        break;
      }
    }
  }
  if (!sid) return NodeId{};
  const auto& subnet = sim_->subnet(*sid);
  NodeId best;
  Ipv4Address best_addr;
  for (const auto& [peer, pv] : subnet.attachments) {
    if (!sim_->node(peer).is_router || !sim_->node(peer).up) continue;
    const Ipv4Address addr = sim_->interface(peer, pv).address;
    if (!best.IsValid() || addr < best_addr) {
      best = peer;
      best_addr = addr;
    }
  }
  return best;
}

const MospfRouter::CacheEntry& MospfRouter::TreePosition(SourceGroup sg) {
  const NodeId root = AttachmentRouter(sg.first);
  const std::uint64_t route_version =
      root.IsValid() ? routes_->TableVersion(root) : 0;
  auto& slot = cache_[sg];
  if (slot != nullptr && slot->membership_epoch == membership_epoch_ &&
      slot->root == root && slot->route_version == route_version) {
    return *slot;
  }
  // (Re)compute the source tree and this router's position on it.
  ++stats_.spt_computations;
  auto entry = std::make_unique<CacheEntry>();
  entry->root = root;
  entry->route_version = route_version;
  entry->membership_epoch = membership_epoch_;
  if (root.IsValid()) {
    std::set<NodeId> downstream_nodes;
    for (const NodeId member : MemberRouters(sg.second)) {
      const auto path = routes_->Path(root, member);
      for (std::size_t i = 0; i < path.size(); ++i) {
        if (path[i] != self_) continue;
        entry->on_tree = true;
        if (i > 0) {
          // Upstream = interface toward the predecessor.
          const NodeId up = path[i - 1];
          for (const auto& iface : sim_->node(self_).interfaces) {
            for (const auto& [peer, pv] :
                 sim_->subnet(iface.subnet).attachments) {
              if (peer == up) entry->upstream_vif = iface.vif;
            }
          }
        }
        if (i + 1 < path.size()) downstream_nodes.insert(path[i + 1]);
      }
    }
    for (const NodeId child : downstream_nodes) {
      for (const auto& iface : sim_->node(self_).interfaces) {
        for (const auto& [peer, pv] : sim_->subnet(iface.subnet).attachments) {
          if (peer == child) {
            entry->children.emplace_back(
                iface.vif, sim_->interface(peer, pv).address);
          }
        }
      }
    }
  }
  slot = std::move(entry);
  return *slot;
}

void MospfRouter::HandleData(VifIndex vif, const packet::Ipv4Header& ip,
                             std::span<const std::uint8_t> datagram) {
  const SourceGroup sg{ip.src, ip.dst};
  const CacheEntry& pos = TreePosition(sg);
  if (!pos.on_tree) {
    ++stats_.data_dropped_off_tree;
    return;
  }

  const auto& arrival = sim_->interface(self_, vif);
  const bool local_origin =
      sim_->subnet(arrival.subnet).address.Contains(ip.src) &&
      igmp_.IsQuerier(vif);
  if (!local_origin && vif != pos.upstream_vif) {
    ++stats_.data_dropped_off_tree;
    return;
  }

  const auto forwarded = packet::WithDecrementedTtl(datagram);
  if (!forwarded) {
    ++stats_.data_dropped_ttl;
    return;
  }

  // Every output carries the same bytes: one arena buffer, shared.
  netsim::PacketRef shared;
  const auto shared_ref = [&]() -> const netsim::PacketRef& {
    if (!shared.valid()) shared = sim_->MakePacket(*forwarded);
    return shared;
  };
  // One native multicast per distinct child interface.
  std::vector<VifIndex> sent_vifs;
  for (const auto& [child_vif, addr] : pos.children) {
    if (child_vif == vif) continue;
    if (std::find(sent_vifs.begin(), sent_vifs.end(), child_vif) !=
        sent_vifs.end()) {
      continue;
    }
    sent_vifs.push_back(child_vif);
    ++stats_.data_forwarded;
    sim_->SendDatagramRef(self_, child_vif, ip.dst, shared_ref());
  }
  // Member LANs.
  for (const VifIndex out : igmp_.MemberVifs(ip.dst)) {
    if (out == vif || !igmp_.IsQuerier(out)) continue;
    if (std::find(sent_vifs.begin(), sent_vifs.end(), out) !=
        sent_vifs.end()) {
      continue;
    }
    if (sim_->subnet(sim_->interface(self_, out).subnet)
            .address.Contains(ip.src)) {
      continue;
    }
    ++stats_.data_delivered_lan;
    sim_->SendDatagramRef(self_, out, ip.dst, shared_ref());
  }
}

std::size_t MospfRouter::StateUnits() const {
  // Membership knowledge held by this router (regardless of traffic) plus
  // the per-(S,G) forwarding cache.
  std::size_t member_entries = 0;
  for (const auto& [key, value] : lsdb_) {
    if (value.second) ++member_entries;
  }
  return member_entries + cache_.size();
}

}  // namespace cbt::baselines
