#include "baselines/dvmrp_router.h"

#include <algorithm>

#include "common/logging.h"

namespace cbt::baselines {

using packet::IpProtocol;

DvmrpRouter::DvmrpRouter(netsim::Simulator& sim, NodeId self,
                         routing::RouteManager& routes, DvmrpConfig config,
                         igmp::IgmpConfig igmp_config)
    : sim_(&sim),
      self_(self),
      routes_(&routes),
      config_(config),
      igmp_(sim, self, igmp_config,
            igmp::RouterIgmp::Callbacks{
                [this](VifIndex, Ipv4Address group, Ipv4Address, bool newly) {
                  if (newly) OnMemberAppeared(group);
                },
                nullptr,  // core reports are CBT business
                nullptr,  // expiry: pruning is data-driven on next packet
                [this](VifIndex vif, Ipv4Address dst,
                       const packet::IgmpMessage& msg) {
                  sim_->SendDatagram(
                      self_, vif, dst,
                      packet::BuildIgmpDatagram(
                          sim_->interface(self_, vif).address, dst, msg));
                }}) {}

void DvmrpRouter::Start() { igmp_.Start(); }

void DvmrpRouter::OnDatagram(VifIndex vif, Ipv4Address link_src,
                             Ipv4Address /*link_dst*/,
                             std::span<const std::uint8_t> datagram) {
  const auto parsed = packet::ParseDatagram(datagram);
  if (!parsed) return;
  const packet::Ipv4Header& ip = parsed->ip;

  switch (ip.protocol) {
    case IpProtocol::kIgmp: {
      if (const auto msg = packet::ExtractIgmp(*parsed)) {
        igmp_.OnMessage(vif, ip.src, *msg);
      }
      return;
    }
    case IpProtocol::kUdp: {
      BufferReader in(parsed->payload);
      const auto udp = packet::UdpHeader::Decode(in);
      if (!udp || udp->dst_port != kDvmrpPort) return;
      if (const auto msg = DvmrpMessage::Decode(
              parsed->payload.subspan(packet::kUdpHeaderSize))) {
        HandleControl(vif, ip, *msg);
      }
      return;
    }
    default:
      if (ip.dst.IsMulticast() && !ip.dst.IsLinkLocalMulticast()) {
        HandleData(vif, link_src, ip, datagram);
      }
      return;
  }
}

std::vector<VifIndex> DvmrpRouter::RouterVifs() const {
  std::vector<VifIndex> out;
  for (const auto& iface : sim_->node(self_).interfaces) {
    if (!iface.up) continue;
    if (NeighborRouterCount(iface.vif) > 0) out.push_back(iface.vif);
  }
  return out;
}

std::size_t DvmrpRouter::NeighborRouterCount(VifIndex vif) const {
  const auto& iface = sim_->interface(self_, vif);
  std::size_t n = 0;
  for (const auto& [peer, pv] : sim_->subnet(iface.subnet).attachments) {
    if (peer != self_ && sim_->node(peer).is_router && sim_->node(peer).up) {
      ++n;
    }
  }
  return n;
}

void DvmrpRouter::HandleData(VifIndex vif, Ipv4Address link_src,
                             const packet::Ipv4Header& ip,
                             std::span<const std::uint8_t> datagram) {
  const SourceGroup sg{ip.src, ip.dst};

  // RPF check: the packet must arrive on the interface we would use to
  // reach its source (or be locally originated on that interface's LAN).
  const auto& arrival = sim_->interface(self_, vif);
  const bool local_origin =
      sim_->subnet(arrival.subnet).address.Contains(ip.src);
  VifIndex rpf_vif = vif;
  Ipv4Address rpf_neighbor;
  if (!local_origin) {
    const auto route = routes_->Lookup(self_, ip.src);
    if (!route || route->vif != vif) {
      ++stats_.data_dropped_rpf;
      // RFC 1075-style leaf detection on non-RPF arrivals: tell the
      // link-layer sender (a neighbour router) to stop sending this
      // (S,G) our way. This is what lets prunes converge on cyclic
      // topologies without poison-reverse route exchange.
      const auto sender = sim_->FindNodeByAddress(link_src);
      if (sender && sim_->node(*sender).is_router) {
        DvmrpMessage prune;
        prune.type = DvmrpType::kPrune;
        prune.group = sg.second;
        prune.source = sg.first;
        prune.lifetime_s =
            static_cast<std::uint32_t>(config_.prune_lifetime / kSecond);
        ++stats_.prunes_sent;
        SendMessage(vif, link_src, prune);
      }
      return;
    }
    rpf_vif = route->vif;
    rpf_neighbor = route->next_hop;
  } else if (!igmp_.IsQuerier(vif)) {
    // One forwarder per LAN: the querier floods packets off their
    // origin subnet (stands in for DVMRP's designated-forwarder rule).
    ++stats_.data_dropped_rpf;
    return;
  }

  auto& entry = entries_[sg];
  if (entry == nullptr) entry = std::make_unique<Entry>();
  entry->rpf_vif = rpf_vif;
  entry->rpf_neighbor = rpf_neighbor;

  const auto forwarded = packet::WithDecrementedTtl(datagram);
  if (!forwarded) {
    ++stats_.data_dropped_ttl;
    MaybePrune(sg, *entry);
    return;
  }

  bool sent_somewhere = false;
  // Every output carries the same bytes: stage them in the arena once and
  // fan the shared buffer out by reference.
  netsim::PacketRef shared;
  const auto shared_ref = [&]() -> const netsim::PacketRef& {
    if (!shared.valid()) shared = sim_->MakePacket(*forwarded);
    return shared;
  };
  // Flood to every other router-bearing interface not fully pruned.
  for (const VifIndex out : RouterVifs()) {
    if (out == vif) continue;
    if (VifFullyPruned(*entry, out)) {
      ++stats_.data_dropped_pruned;
      continue;
    }
    ++stats_.data_forwarded;
    sim_->SendDatagramRef(self_, out, ip.dst, shared_ref());
    sent_somewhere = true;
  }
  // Deliver onto member LANs (querier only, to avoid LAN duplicates).
  for (const VifIndex out : igmp_.MemberVifs(ip.dst)) {
    if (out == vif || !igmp_.IsQuerier(out)) continue;
    if (sim_->subnet(sim_->interface(self_, out).subnet)
            .address.Contains(ip.src)) {
      continue;
    }
    ++stats_.data_delivered_lan;
    sim_->SendDatagramRef(self_, out, ip.dst, shared_ref());
    sent_somewhere = true;
  }
  (void)sent_somewhere;
  MaybePrune(sg, *entry);
}

bool DvmrpRouter::VifFullyPruned(const Entry& entry, VifIndex vif) const {
  const auto it = entry.prunes.find(vif);
  if (it == entry.prunes.end() || it->second.empty()) return false;
  return it->second.size() >= NeighborRouterCount(vif);
}

void DvmrpRouter::MaybePrune(SourceGroup sg, Entry& entry) {
  if (entry.prune_sent) return;
  if (entry.rpf_neighbor.IsUnspecified()) return;  // first-hop router
  if (igmp_.AnyMembers(sg.second)) return;
  for (const VifIndex vif : RouterVifs()) {
    if (vif == entry.rpf_vif) continue;
    if (!VifFullyPruned(entry, vif)) return;
  }
  DvmrpMessage prune;
  prune.type = DvmrpType::kPrune;
  prune.group = sg.second;
  prune.source = sg.first;
  prune.lifetime_s =
      static_cast<std::uint32_t>(config_.prune_lifetime / kSecond);
  ++stats_.prunes_sent;
  SendMessage(entry.rpf_vif, entry.rpf_neighbor, prune);
  entry.prune_sent = true;
}

void DvmrpRouter::HandleControl(VifIndex vif, const packet::Ipv4Header& ip,
                                const DvmrpMessage& msg) {
  const SourceGroup sg{msg.source, msg.group};
  switch (msg.type) {
    case DvmrpType::kPrune: {
      ++stats_.prunes_received;
      auto& entry = entries_[sg];
      if (entry == nullptr) entry = std::make_unique<Entry>();
      entry->prunes[vif].insert(ip.src);
      // Prune state ages out; traffic then re-floods (the DVMRP cost the
      // CBT paper highlights).
      netsim::Timer& timer = entry->prune_expiry[ip.src];
      timer.BindTo(*sim_);
      Entry* raw = entry.get();
      const Ipv4Address neighbor = ip.src;
      timer.Schedule(config_.prune_lifetime, [raw, vif, neighbor] {
        raw->prunes[vif].erase(neighbor);
      });
      // If we are now fully pruned below, propagate upstream.
      MaybePrune(sg, *entry);
      return;
    }
    case DvmrpType::kGraft: {
      ++stats_.grafts_received;
      // Grafts are acknowledged hop by hop (RFC 1075 reliability).
      DvmrpMessage ack = msg;
      ack.type = DvmrpType::kGraftAck;
      ++stats_.graft_acks_sent;
      SendMessage(vif, ip.src, ack);

      const auto it = entries_.find(sg);
      if (it == entries_.end()) return;
      Entry& entry = *it->second;
      entry.prunes[vif].erase(ip.src);
      entry.prune_expiry.erase(ip.src);
      if (entry.prune_sent) {
        // Re-attach upstream too.
        entry.prune_sent = false;
        SendGraftUpstream(sg, entry);
      }
      return;
    }
    case DvmrpType::kGraftAck: {
      ++stats_.graft_acks_received;
      const auto it = entries_.find(sg);
      if (it != entries_.end()) {
        it->second->graft_rtx.Cancel();
        it->second->graft_attempts = 0;
      }
      return;
    }
  }
}

void DvmrpRouter::OnMemberAppeared(Ipv4Address group) {
  // Graft every pruned source tree for this group.
  for (auto& [sg, entry] : entries_) {
    if (sg.second != group || !entry->prune_sent) continue;
    entry->prune_sent = false;
    SendGraftUpstream(sg, *entry);
  }
}

void DvmrpRouter::SendGraftUpstream(SourceGroup sg, Entry& entry) {
  if (entry.graft_attempts >= 5) {
    entry.graft_attempts = 0;
    return;  // give up; the prune will age out and data re-floods anyway
  }
  if (entry.graft_attempts > 0) ++stats_.graft_retransmits;
  ++entry.graft_attempts;
  DvmrpMessage graft;
  graft.type = DvmrpType::kGraft;
  graft.group = sg.second;
  graft.source = sg.first;
  ++stats_.grafts_sent;
  SendMessage(entry.rpf_vif, entry.rpf_neighbor, graft);
  Entry* raw = &entry;
  entry.graft_rtx.BindTo(*sim_);
  entry.graft_rtx.Schedule(5 * kSecond, [this, sg, raw] {
    SendGraftUpstream(sg, *raw);
  });
}

void DvmrpRouter::SendMessage(VifIndex vif, Ipv4Address dst,
                              const DvmrpMessage& msg) {
  const auto body = msg.Encode();
  BufferWriter out(packet::kIpv4HeaderSize + packet::kUdpHeaderSize +
                   body.size());
  packet::Ipv4Header ip;
  ip.src = sim_->interface(self_, vif).address;
  ip.dst = dst;
  ip.ttl = 1;  // hop-by-hop
  ip.protocol = IpProtocol::kUdp;
  ip.Encode(out, packet::kUdpHeaderSize + body.size());
  packet::UdpHeader udp{kDvmrpPort, kDvmrpPort};
  udp.Encode(out, body.size());
  out.WriteBytes(body);
  auto bytes = std::move(out).Take();
  stats_.control_bytes_sent += bytes.size();
  sim_->SendDatagram(self_, vif, dst, std::move(bytes));
}

std::size_t DvmrpRouter::StateUnits() const {
  std::size_t units = 0;
  for (const auto& [sg, entry] : entries_) {
    units += 1;
    for (const auto& [vif, pruners] : entry->prunes) units += pruners.size();
  }
  return units;
}

}  // namespace cbt::baselines
