// MOSPF-style link-state multicast router (Moy [2]) — the second
// per-source-tree baseline the CBT paper positions itself against.
//
// Modelled behaviour:
//  * group-membership LSAs: whenever a router's local membership for a
//    group changes, it floods a sequence-numbered LSA domain-wide, so
//    EVERY router knows EVERY group's member routers — the "membership
//    knowledge everywhere" cost CBT avoids;
//  * on-demand per-(source, group) shortest-path-tree computation: the
//    first packet of (S,G) triggers a Dijkstra-derived tree rooted at the
//    source's attachment router; the result is cached (the O(S x G)
//    cache the CBT paper counts);
//  * forwarding: accept on the tree's RPF interface, forward to the
//    tree's child interfaces and member LANs.
//
// Simplifications (conservative, favouring MOSPF): topology LSAs ride the
// shared link-state substrate (no flooding cost charged); inter-area
// behaviour is out of scope.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <set>
#include <type_traits>
#include <vector>

#include "igmp/router_igmp.h"
#include "netsim/simulator.h"
#include "obs/fields.h"
#include "packet/encap.h"
#include "routing/route_manager.h"

namespace cbt::baselines {

constexpr std::uint16_t kMospfPort = 7780;

struct MospfStats {
  std::uint64_t lsas_originated = 0;
  std::uint64_t lsas_flooded = 0;  // re-flood transmissions
  std::uint64_t lsas_received = 0;
  std::uint64_t spt_computations = 0;
  std::uint64_t data_forwarded = 0;
  std::uint64_t data_delivered_lan = 0;
  std::uint64_t data_dropped_off_tree = 0;
  std::uint64_t data_dropped_ttl = 0;
  std::uint64_t control_bytes_sent = 0;

  /// Historical rollup: originations + re-floods (receptions and SPT
  /// work were never counted; the kControlSent tags below pin that).
  std::uint64_t ControlMessagesSent() const {
    return obs::SumTagged(*this, obs::FieldTag::kControlSent);
  }

  void Reset() { obs::ResetStats(*this); }
};

/// obs reflection (see obs/fields.h).
template <typename Stats, typename Fn>
  requires std::is_same_v<std::remove_const_t<Stats>, MospfStats>
void ForEachStatsField(Stats& s, Fn&& fn) {
  using Tag = obs::FieldTag;
  fn("lsas_originated", s.lsas_originated, Tag::kControlSent);
  fn("lsas_flooded", s.lsas_flooded, Tag::kControlSent);
  fn("lsas_received", s.lsas_received, Tag::kNone);
  fn("spt_computations", s.spt_computations, Tag::kNone);
  fn("data_forwarded", s.data_forwarded, Tag::kNone);
  fn("data_delivered_lan", s.data_delivered_lan, Tag::kNone);
  fn("data_dropped_off_tree", s.data_dropped_off_tree, Tag::kNone);
  fn("data_dropped_ttl", s.data_dropped_ttl, Tag::kNone);
  fn("control_bytes_sent", s.control_bytes_sent, Tag::kNone);
}

/// Wire format of a group-membership LSA (flooded over UDP 7780).
struct MembershipLsa {
  Ipv4Address advertising_router;  // primary address
  Ipv4Address group;
  std::uint32_t sequence = 0;
  bool member = false;

  std::vector<std::uint8_t> Encode() const;
  static std::optional<MembershipLsa> Decode(
      std::span<const std::uint8_t> bytes);
};

class MospfRouter : public netsim::NetworkAgent {
 public:
  MospfRouter(netsim::Simulator& sim, NodeId self,
              routing::RouteManager& routes,
              igmp::IgmpConfig igmp_config = {});

  void Start() override;
  void OnDatagram(VifIndex vif, Ipv4Address link_src, Ipv4Address link_dst,
                  std::span<const std::uint8_t> datagram) override;
  void ResetProtocolCounters() override { stats_.Reset(); }

  const MospfStats& stats() const { return stats_; }
  MospfStats& mutable_stats() { return stats_; }
  const igmp::RouterIgmp& igmp() const { return igmp_; }

  /// Member routers for `group` according to the LSDB (plus self).
  std::vector<NodeId> MemberRouters(Ipv4Address group) const;

  /// E1 state metric: LSDB entries (membership knowledge held everywhere)
  /// plus cached (S,G) forwarding entries.
  std::size_t StateUnits() const;
  std::size_t ForwardingCacheEntries() const { return cache_.size(); }

 private:
  using SourceGroup = std::pair<Ipv4Address, Ipv4Address>;

  /// Cached position of this router on the (S,G) tree. Valid while the
  /// tree's root and the root's routing-table version are unchanged —
  /// RouteManager::TableVersion only moves when the root's table actually
  /// recomputes, so scoped topology changes elsewhere keep this cache
  /// warm instead of invalidating it on every epoch tick.
  struct CacheEntry {
    bool on_tree = false;
    VifIndex upstream_vif = kInvalidVif;  // RPF side (invalid at the root)
    /// Next-hop child routers (per downstream neighbour) on the tree.
    std::vector<std::pair<VifIndex, Ipv4Address>> children;
    NodeId root;
    std::uint64_t route_version = 0;
    std::uint64_t membership_epoch = 0;
  };

  void HandleData(VifIndex vif, const packet::Ipv4Header& ip,
                  std::span<const std::uint8_t> datagram);
  void HandleLsa(VifIndex vif, Ipv4Address link_src, const MembershipLsa& lsa);
  void FloodLsa(const MembershipLsa& lsa, VifIndex arrival_vif);
  void OriginateLsa(Ipv4Address group, bool member);
  const CacheEntry& TreePosition(SourceGroup sg);
  NodeId AttachmentRouter(Ipv4Address source);

  netsim::Simulator* sim_;
  NodeId self_;
  routing::RouteManager* routes_;
  MospfStats stats_;
  igmp::RouterIgmp igmp_;
  /// LSDB: (router, group) -> {sequence, member}.
  std::map<std::pair<Ipv4Address, Ipv4Address>,
           std::pair<std::uint32_t, bool>>
      lsdb_;
  std::uint64_t membership_epoch_ = 0;
  std::uint32_t my_sequence_ = 0;
  std::map<SourceGroup, std::unique_ptr<CacheEntry>> cache_;
};

}  // namespace cbt::baselines
