#include "baselines/dvmrp_domain.h"

#include <cassert>

namespace cbt::baselines {

DvmrpDomain::DvmrpDomain(netsim::Simulator& sim, netsim::Topology& topo,
                         DvmrpConfig config, igmp::IgmpConfig igmp_config)
    : sim_(&sim), topo_(&topo), routes_(sim) {
  for (const NodeId id : topo.routers) {
    auto router =
        std::make_unique<DvmrpRouter>(sim, id, routes_, config, igmp_config);
    sim.SetAgent(id, router.get());
    routers_[id] = std::move(router);
  }
  for (const NodeId id : topo.hosts) {
    auto host = std::make_unique<core::HostAgent>(sim, id, nullptr);
    sim.SetAgent(id, host.get());
    hosts_[id] = std::move(host);
  }
}

DvmrpRouter& DvmrpDomain::router(NodeId id) {
  const auto it = routers_.find(id);
  assert(it != routers_.end());
  return *it->second;
}

DvmrpRouter& DvmrpDomain::router(const std::string& name) {
  return router(topo_->node(name));
}

core::HostAgent& DvmrpDomain::host(NodeId id) {
  const auto it = hosts_.find(id);
  assert(it != hosts_.end());
  return *it->second;
}

core::HostAgent& DvmrpDomain::host(const std::string& name) {
  return host(topo_->node(name));
}

core::HostAgent& DvmrpDomain::AddHost(SubnetId lan, const std::string& name) {
  const NodeId id = netsim::AttachHost(*sim_, *topo_, lan, name);
  auto host = std::make_unique<core::HostAgent>(*sim_, id, nullptr);
  sim_->SetAgent(id, host.get());
  core::HostAgent& ref = *host;
  hosts_[id] = std::move(host);
  return ref;
}

igmp::MembershipAggregate& DvmrpDomain::AddAggregate(
    SubnetId lan, const std::string& name,
    igmp::MembershipAggregate::Mode mode) {
  const NodeId id = netsim::AttachHost(*sim_, *topo_, lan, name);
  auto station =
      std::make_unique<igmp::MembershipAggregate>(*sim_, id, mode, nullptr);
  sim_->SetAgent(id, station.get());
  igmp::MembershipAggregate& ref = *station;
  aggregates_[id] = std::move(station);
  return ref;
}

std::size_t DvmrpDomain::TotalStateUnits() const {
  std::size_t total = 0;
  for (const auto& [id, router] : routers_) total += router->StateUnits();
  return total;
}

std::uint64_t DvmrpDomain::TotalControlMessages() const {
  std::uint64_t total = 0;
  for (const auto& [id, router] : routers_) {
    total += router->stats().ControlMessagesSent();
  }
  return total;
}

std::size_t DvmrpDomain::TotalForwardingEntries() const {
  std::size_t total = 0;
  for (const auto& [id, router] : routers_) {
    total += router->ForwardingEntries();
  }
  return total;
}

}  // namespace cbt::baselines
