// DVMRP-style flood-and-prune multicast router — the per-source-tree
// baseline CBT is evaluated against.
//
// Behaviour modelled (simplified from RFC 1075 to the aspects the
// comparison measures):
//  * reverse-path forwarding: a data packet is accepted only from the
//    interface on the shortest path back to its source (RPF check), then
//    flooded to every other router interface — truncated by member
//    presence on leaf LANs;
//  * prune: a router with no members and all downstream interfaces
//    pruned sends PRUNE(S,G) to its RPF neighbour; prune state has a
//    lifetime, after which data floods again (the periodic re-flood that
//    makes DVMRP state O(S x G) *everywhere*);
//  * graft: a new member re-attaches a pruned branch immediately.
//
// The deliberate simplifications (all favouring DVMRP in comparisons):
// unicast routes come from the shared link-state substrate instead of
// DVMRP's own route exchange, and GRAFT is not re-transmitted (no ack
// tracking needed in a lossless control experiment).
#pragma once

#include <map>
#include <memory>
#include <set>
#include <type_traits>
#include <vector>

#include "baselines/dvmrp_message.h"
#include "obs/fields.h"
#include "igmp/router_igmp.h"
#include "netsim/simulator.h"
#include "netsim/timer.h"
#include "packet/encap.h"
#include "routing/route_manager.h"

namespace cbt::baselines {

struct DvmrpConfig {
  /// Prune lifetime; RFC 1075 uses hours, deployments minutes. Short
  /// enough here that experiments can observe the re-flood.
  SimDuration prune_lifetime = 120 * kSecond;
};

struct DvmrpStats {
  std::uint64_t data_forwarded = 0;
  std::uint64_t data_delivered_lan = 0;
  std::uint64_t data_dropped_rpf = 0;
  std::uint64_t data_dropped_pruned = 0;
  std::uint64_t data_dropped_ttl = 0;
  std::uint64_t prunes_sent = 0;
  std::uint64_t prunes_received = 0;
  std::uint64_t grafts_sent = 0;
  std::uint64_t grafts_received = 0;
  std::uint64_t graft_retransmits = 0;
  std::uint64_t graft_acks_sent = 0;
  std::uint64_t graft_acks_received = 0;
  std::uint64_t control_bytes_sent = 0;

  /// Historical rollup: prunes + grafts only (retransmits and graft-acks
  /// were never counted; the kControlSent tags below pin that).
  std::uint64_t ControlMessagesSent() const {
    return obs::SumTagged(*this, obs::FieldTag::kControlSent);
  }

  void Reset() { obs::ResetStats(*this); }
};

/// obs reflection (see obs/fields.h).
template <typename Stats, typename Fn>
  requires std::is_same_v<std::remove_const_t<Stats>, DvmrpStats>
void ForEachStatsField(Stats& s, Fn&& fn) {
  using Tag = obs::FieldTag;
  fn("data_forwarded", s.data_forwarded, Tag::kNone);
  fn("data_delivered_lan", s.data_delivered_lan, Tag::kNone);
  fn("data_dropped_rpf", s.data_dropped_rpf, Tag::kNone);
  fn("data_dropped_pruned", s.data_dropped_pruned, Tag::kNone);
  fn("data_dropped_ttl", s.data_dropped_ttl, Tag::kNone);
  fn("prunes_sent", s.prunes_sent, Tag::kControlSent);
  fn("prunes_received", s.prunes_received, Tag::kNone);
  fn("grafts_sent", s.grafts_sent, Tag::kControlSent);
  fn("grafts_received", s.grafts_received, Tag::kNone);
  fn("graft_retransmits", s.graft_retransmits, Tag::kNone);
  fn("graft_acks_sent", s.graft_acks_sent, Tag::kNone);
  fn("graft_acks_received", s.graft_acks_received, Tag::kNone);
  fn("control_bytes_sent", s.control_bytes_sent, Tag::kNone);
}

class DvmrpRouter : public netsim::NetworkAgent {
 public:
  DvmrpRouter(netsim::Simulator& sim, NodeId self,
              routing::RouteManager& routes, DvmrpConfig config = {},
              igmp::IgmpConfig igmp_config = {});

  void Start() override;
  void OnDatagram(VifIndex vif, Ipv4Address link_src, Ipv4Address link_dst,
                  std::span<const std::uint8_t> datagram) override;
  void ResetProtocolCounters() override { stats_.Reset(); }

  const DvmrpStats& stats() const { return stats_; }
  DvmrpStats& mutable_stats() { return stats_; }
  const igmp::RouterIgmp& igmp() const { return igmp_; }

  /// (S,G) entries currently held.
  std::size_t ForwardingEntries() const { return entries_.size(); }

  /// E1's state metric: (S,G) entries plus per-interface prune records —
  /// the O(S x G) footprint the CBT paper contrasts with O(G).
  std::size_t StateUnits() const;

 private:
  using SourceGroup = std::pair<Ipv4Address, Ipv4Address>;  // (S, G)

  struct Entry {
    VifIndex rpf_vif = kInvalidVif;
    Ipv4Address rpf_neighbor;
    /// Neighbour routers (per vif) that pruned this (S,G).
    std::map<VifIndex, std::set<Ipv4Address>> prunes;
    std::map<Ipv4Address, netsim::Timer> prune_expiry;  // keyed by neighbor
    bool prune_sent = false;
    /// Unacknowledged upstream graft (RFC 1075 grafts are reliable).
    netsim::Timer graft_rtx;
    int graft_attempts = 0;
  };

  void HandleData(VifIndex vif, Ipv4Address link_src,
                  const packet::Ipv4Header& ip,
                  std::span<const std::uint8_t> datagram);
  void HandleControl(VifIndex vif, const packet::Ipv4Header& ip,
                     const DvmrpMessage& msg);
  /// True when every neighbour router on `vif` pruned this (S,G).
  bool VifFullyPruned(const Entry& entry, VifIndex vif) const;
  /// Considers (and if warranted sends) a prune toward the RPF neighbour.
  void MaybePrune(SourceGroup sg, Entry& entry);
  void SendMessage(VifIndex vif, Ipv4Address dst, const DvmrpMessage& msg);
  /// Sends (and arms retransmission of) an upstream graft for (S,G).
  void SendGraftUpstream(SourceGroup sg, Entry& entry);
  std::vector<VifIndex> RouterVifs() const;
  std::size_t NeighborRouterCount(VifIndex vif) const;
  void OnMemberAppeared(Ipv4Address group);

  netsim::Simulator* sim_;
  NodeId self_;
  routing::RouteManager* routes_;
  DvmrpConfig config_;
  DvmrpStats stats_;
  igmp::RouterIgmp igmp_;
  std::map<SourceGroup, std::unique_ptr<Entry>> entries_;
};

}  // namespace cbt::baselines
