#include "baselines/dvmrp_message.h"

#include "common/checksum.h"

namespace cbt::baselines {
namespace {
constexpr std::size_t kSize = 16;  // type, pad, checksum, group, src, life
}

std::vector<std::uint8_t> DvmrpMessage::Encode() const {
  BufferWriter out(kSize);
  out.WriteU8(static_cast<std::uint8_t>(type));
  out.WriteU8(0);
  const std::size_t checksum_offset = out.size();
  out.WriteU16(0);
  out.WriteAddress(group);
  out.WriteAddress(source);
  out.WriteU32(lifetime_s);
  out.PatchU16(checksum_offset, InternetChecksum(out.View()));
  return std::move(out).Take();
}

std::optional<DvmrpMessage> DvmrpMessage::Decode(
    std::span<const std::uint8_t> bytes) {
  if (bytes.size() < kSize) return std::nullopt;
  if (!VerifyInternetChecksum(bytes.subspan(0, kSize))) return std::nullopt;
  BufferReader in(bytes);
  DvmrpMessage msg;
  const std::uint8_t raw = in.ReadU8();
  if (raw < 1 || raw > 3) return std::nullopt;
  msg.type = static_cast<DvmrpType>(raw);
  in.ReadU8();
  in.ReadU16();  // checksum verified above
  msg.group = in.ReadAddress();
  msg.source = in.ReadAddress();
  msg.lifetime_s = in.ReadU32();
  if (!msg.group.IsMulticast()) return std::nullopt;
  return msg;
}

}  // namespace cbt::baselines
