// Harness wiring a topology into an MOSPF-style domain (mirrors
// CbtDomain / DvmrpDomain for identical-workload comparisons).
#pragma once

#include <map>
#include <memory>
#include <string>

#include "baselines/mospf_router.h"
#include "cbt/host.h"
#include "igmp/membership_aggregate.h"
#include "netsim/topologies.h"
#include "routing/route_manager.h"

namespace cbt::baselines {

class MospfDomain {
 public:
  MospfDomain(netsim::Simulator& sim, netsim::Topology& topo,
              igmp::IgmpConfig igmp_config = {});

  void Start() { sim_->StartAgents(); }

  MospfRouter& router(NodeId id);
  MospfRouter& router(const std::string& name);
  core::HostAgent& AddHost(SubnetId lan, const std::string& name);

  /// Aggregate membership station (mirrors CbtDomain::AddAggregate).
  igmp::MembershipAggregate& AddAggregate(
      SubnetId lan, const std::string& name,
      igmp::MembershipAggregate::Mode mode =
          igmp::MembershipAggregate::Mode::kCoalesced);

  routing::RouteManager& routes() { return routes_; }

  std::size_t TotalStateUnits() const;
  std::uint64_t TotalControlMessages() const;

  /// Binds router ("mospf.router.<id>.*"), routing, and subnet counters
  /// into `registry` (mirrors CbtDomain::BindMetrics).
  void BindMetrics(obs::Registry& registry) {
    sim_->SetMetrics(&registry);
    for (const auto& [id, router] : routers_) {
      obs::BindStats(registry, "mospf.router." + std::to_string(id.value()),
                     router->mutable_stats());
    }
    obs::BindStats(registry, "mospf.routing", routes_.mutable_stats());
  }

 private:
  netsim::Simulator* sim_;
  netsim::Topology* topo_;
  routing::RouteManager routes_;
  std::map<NodeId, std::unique_ptr<MospfRouter>> routers_;
  std::map<NodeId, std::unique_ptr<core::HostAgent>> hosts_;
  std::map<NodeId, std::unique_ptr<igmp::MembershipAggregate>> aggregates_;
};

}  // namespace cbt::baselines
