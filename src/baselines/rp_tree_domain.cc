#include "baselines/rp_tree_domain.h"

#include <cassert>

namespace cbt::baselines {

RpTreeDomain::RpTreeDomain(netsim::Simulator& sim, netsim::Topology& topo,
                           RpTreeConfig config)
    : sim_(&sim), topo_(&topo), routes_(sim) {
  const auto resolver = [this](Ipv4Address group) -> std::optional<Ipv4Address> {
    const auto it = rp_by_group_.find(group);
    if (it == rp_by_group_.end()) return std::nullopt;
    return it->second;
  };
  for (const NodeId id : topo.routers) {
    auto router = std::make_unique<RpTreeRouter>(sim, id, routes_, resolver,
                                                 config);
    sim.SetAgent(id, router.get());
    routers_[id] = std::move(router);
  }
  for (const NodeId id : topo.hosts) {
    auto host = std::make_unique<core::HostAgent>(sim, id, nullptr);
    sim.SetAgent(id, host.get());
    hosts_[id] = std::move(host);
  }
}

Ipv4Address RpTreeDomain::RegisterGroup(Ipv4Address group, NodeId rp) {
  const Ipv4Address addr = sim_->PrimaryAddress(rp);
  rp_by_group_[group] = addr;
  return addr;
}

RpTreeRouter& RpTreeDomain::router(NodeId id) {
  const auto it = routers_.find(id);
  assert(it != routers_.end());
  return *it->second;
}

core::HostAgent& RpTreeDomain::AddHost(SubnetId lan, const std::string& name) {
  const NodeId id = netsim::AttachHost(*sim_, *topo_, lan, name);
  auto host = std::make_unique<core::HostAgent>(*sim_, id, nullptr);
  sim_->SetAgent(id, host.get());
  core::HostAgent& ref = *host;
  hosts_[id] = std::move(host);
  return ref;
}

igmp::MembershipAggregate& RpTreeDomain::AddAggregate(
    SubnetId lan, const std::string& name,
    igmp::MembershipAggregate::Mode mode) {
  const NodeId id = netsim::AttachHost(*sim_, *topo_, lan, name);
  auto station =
      std::make_unique<igmp::MembershipAggregate>(*sim_, id, mode, nullptr);
  sim_->SetAgent(id, station.get());
  igmp::MembershipAggregate& ref = *station;
  aggregates_[id] = std::move(station);
  return ref;
}

std::size_t RpTreeDomain::TotalStateUnits() const {
  std::size_t total = 0;
  for (const auto& [id, router] : routers_) total += router->StateUnits();
  return total;
}

std::uint64_t RpTreeDomain::TotalControlMessages() const {
  std::uint64_t total = 0;
  for (const auto& [id, router] : routers_) {
    total += router->stats().ControlMessagesSent();
  }
  return total;
}

}  // namespace cbt::baselines
