#include "baselines/mospf_domain.h"

#include <cassert>

namespace cbt::baselines {

MospfDomain::MospfDomain(netsim::Simulator& sim, netsim::Topology& topo,
                         igmp::IgmpConfig igmp_config)
    : sim_(&sim), topo_(&topo), routes_(sim) {
  for (const NodeId id : topo.routers) {
    auto router = std::make_unique<MospfRouter>(sim, id, routes_, igmp_config);
    sim.SetAgent(id, router.get());
    routers_[id] = std::move(router);
  }
  for (const NodeId id : topo.hosts) {
    auto host = std::make_unique<core::HostAgent>(sim, id, nullptr);
    sim.SetAgent(id, host.get());
    hosts_[id] = std::move(host);
  }
}

MospfRouter& MospfDomain::router(NodeId id) {
  const auto it = routers_.find(id);
  assert(it != routers_.end());
  return *it->second;
}

MospfRouter& MospfDomain::router(const std::string& name) {
  return router(topo_->node(name));
}

core::HostAgent& MospfDomain::AddHost(SubnetId lan, const std::string& name) {
  const NodeId id = netsim::AttachHost(*sim_, *topo_, lan, name);
  auto host = std::make_unique<core::HostAgent>(*sim_, id, nullptr);
  sim_->SetAgent(id, host.get());
  core::HostAgent& ref = *host;
  hosts_[id] = std::move(host);
  return ref;
}

igmp::MembershipAggregate& MospfDomain::AddAggregate(
    SubnetId lan, const std::string& name,
    igmp::MembershipAggregate::Mode mode) {
  const NodeId id = netsim::AttachHost(*sim_, *topo_, lan, name);
  auto station =
      std::make_unique<igmp::MembershipAggregate>(*sim_, id, mode, nullptr);
  sim_->SetAgent(id, station.get());
  igmp::MembershipAggregate& ref = *station;
  aggregates_[id] = std::move(station);
  return ref;
}

std::size_t MospfDomain::TotalStateUnits() const {
  std::size_t total = 0;
  for (const auto& [id, router] : routers_) total += router->StateUnits();
  return total;
}

std::uint64_t MospfDomain::TotalControlMessages() const {
  std::uint64_t total = 0;
  for (const auto& [id, router] : routers_) {
    total += router->stats().ControlMessagesSent();
  }
  return total;
}

}  // namespace cbt::baselines
