// Harness wiring a topology into a DVMRP flood-and-prune domain,
// mirroring CbtDomain so experiments can run both schemes on identical
// topologies and workloads.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "baselines/dvmrp_router.h"
#include "cbt/host.h"
#include "igmp/membership_aggregate.h"
#include "netsim/topologies.h"
#include "routing/route_manager.h"

namespace cbt::baselines {

class DvmrpDomain {
 public:
  DvmrpDomain(netsim::Simulator& sim, netsim::Topology& topo,
              DvmrpConfig config = {}, igmp::IgmpConfig igmp_config = {});

  void Start() { sim_->StartAgents(); }

  DvmrpRouter& router(NodeId id);
  DvmrpRouter& router(const std::string& name);
  core::HostAgent& host(NodeId id);
  core::HostAgent& host(const std::string& name);
  core::HostAgent& AddHost(SubnetId lan, const std::string& name);

  /// Aggregate membership station (counts, not per-host agents) — the
  /// same model CbtDomain::AddAggregate attaches, so the churn bench
  /// can drive every comparator with one workload.
  igmp::MembershipAggregate& AddAggregate(
      SubnetId lan, const std::string& name,
      igmp::MembershipAggregate::Mode mode =
          igmp::MembershipAggregate::Mode::kCoalesced);

  routing::RouteManager& routes() { return routes_; }

  std::size_t TotalStateUnits() const;
  std::uint64_t TotalControlMessages() const;
  std::size_t TotalForwardingEntries() const;

  /// Binds router ("dvmrp.router.<id>.*"), routing, and subnet counters
  /// into `registry` (mirrors CbtDomain::BindMetrics).
  void BindMetrics(obs::Registry& registry) {
    sim_->SetMetrics(&registry);
    for (const auto& [id, router] : routers_) {
      obs::BindStats(registry, "dvmrp.router." + std::to_string(id.value()),
                     router->mutable_stats());
    }
    obs::BindStats(registry, "dvmrp.routing", routes_.mutable_stats());
  }

 private:
  netsim::Simulator* sim_;
  netsim::Topology* topo_;
  routing::RouteManager routes_;
  std::map<NodeId, std::unique_ptr<DvmrpRouter>> routers_;
  std::map<NodeId, std::unique_ptr<core::HostAgent>> hosts_;
  std::map<NodeId, std::unique_ptr<igmp::MembershipAggregate>> aggregates_;
};

}  // namespace cbt::baselines
