// PIM-SM-shape unidirectional RP-tree router — the third contrast scheme.
//
// The CBT spec shares its core-management story with "PIM-Sparse Mode"
// ([10]; authors' note) but differs in one structural decision: CBT's
// shared tree is *bidirectional* (any on-tree router forwards up and
// down), while PIM-SM's RP tree is *unidirectional* — data flows only
// from the RP downward, and senders reach the RP by encapsulated
// "register" unicasts. This router models exactly that shape so the
// benchmarks can contrast the two shared-tree designs in protocol form
// (the oracle versions live in analysis/tree_metrics.h).
//
// Modelled behaviour:
//  * explicit (*,G) joins toward the RP, hop-by-hop, refreshed
//    periodically (PIM joins are soft state, no acks) and expired when
//    refreshes stop;
//  * prunes on leave (sent upstream when the last downstream goes);
//  * register path: the sender's DR encapsulates data to the RP (we
//    reuse the generic encapsulation header), which decapsulates and
//    floods the tree downward;
//  * strictly unidirectional forwarding: accept from the RPF interface
//    toward the RP only, send to downstream interfaces + member LANs.
//
// Omitted (documented): register-stop and the SPT switchover — the
// comparison targets the pure shared-tree phase.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <set>
#include <type_traits>
#include <vector>

#include "igmp/router_igmp.h"
#include "netsim/simulator.h"
#include "netsim/timer.h"
#include "obs/fields.h"
#include "packet/encap.h"
#include "routing/route_manager.h"

namespace cbt::baselines {

constexpr std::uint16_t kRpTreePort = 7781;

struct RpTreeConfig {
  /// Join refresh period (PIM default 60s) and holdtime (3.5x).
  SimDuration join_refresh_interval = 60 * kSecond;
  SimDuration join_holdtime = 210 * kSecond;
};

struct RpTreeStats {
  std::uint64_t joins_sent = 0;
  std::uint64_t joins_received = 0;
  std::uint64_t prunes_sent = 0;
  std::uint64_t prunes_received = 0;
  std::uint64_t registers_sent = 0;
  std::uint64_t registers_relayed = 0;
  std::uint64_t data_forwarded = 0;
  std::uint64_t data_delivered_lan = 0;
  std::uint64_t data_dropped_off_tree = 0;
  std::uint64_t control_bytes_sent = 0;

  /// Historical rollup: joins + prunes only (registers were never
  /// counted; the kControlSent tags below pin that).
  std::uint64_t ControlMessagesSent() const {
    return obs::SumTagged(*this, obs::FieldTag::kControlSent);
  }

  void Reset() { obs::ResetStats(*this); }
};

/// obs reflection (see obs/fields.h).
template <typename Stats, typename Fn>
  requires std::is_same_v<std::remove_const_t<Stats>, RpTreeStats>
void ForEachStatsField(Stats& s, Fn&& fn) {
  using Tag = obs::FieldTag;
  fn("joins_sent", s.joins_sent, Tag::kControlSent);
  fn("joins_received", s.joins_received, Tag::kNone);
  fn("prunes_sent", s.prunes_sent, Tag::kControlSent);
  fn("prunes_received", s.prunes_received, Tag::kNone);
  fn("registers_sent", s.registers_sent, Tag::kNone);
  fn("registers_relayed", s.registers_relayed, Tag::kNone);
  fn("data_forwarded", s.data_forwarded, Tag::kNone);
  fn("data_delivered_lan", s.data_delivered_lan, Tag::kNone);
  fn("data_dropped_off_tree", s.data_dropped_off_tree, Tag::kNone);
  fn("control_bytes_sent", s.control_bytes_sent, Tag::kNone);
}

/// Join/prune message (UDP 7781).
struct RpTreeMessage {
  enum class Type : std::uint8_t { kJoin = 1, kPrune = 2 };
  Type type = Type::kJoin;
  Ipv4Address group;
  Ipv4Address rp;

  std::vector<std::uint8_t> Encode() const;
  static std::optional<RpTreeMessage> Decode(std::span<const std::uint8_t> b);
};

class RpTreeRouter : public netsim::NetworkAgent {
 public:
  /// `rp_of` maps groups to their RP address (the shared directory in
  /// the harness fills this role, like PIM's bootstrap/RP-set).
  using RpResolver = std::function<std::optional<Ipv4Address>(Ipv4Address)>;

  RpTreeRouter(netsim::Simulator& sim, NodeId self,
               routing::RouteManager& routes, RpResolver rp_of,
               RpTreeConfig config = {}, igmp::IgmpConfig igmp_config = {});

  void Start() override;
  void OnDatagram(VifIndex vif, Ipv4Address link_src, Ipv4Address link_dst,
                  std::span<const std::uint8_t> datagram) override;
  void ResetProtocolCounters() override { stats_.Reset(); }

  const RpTreeStats& stats() const { return stats_; }
  RpTreeStats& mutable_stats() { return stats_; }
  bool HasTreeState(Ipv4Address group) const { return entries_.contains(group); }
  std::size_t StateUnits() const;

 private:
  struct Downstream {
    Ipv4Address neighbor;
    VifIndex vif = kInvalidVif;
    netsim::Timer holdtimer;
  };

  struct Entry {
    bool am_rp = false;
    VifIndex upstream_vif = kInvalidVif;  // RPF toward the RP
    Ipv4Address upstream_neighbor;
    std::vector<std::unique_ptr<Downstream>> downstream;
    netsim::Timer refresh_timer;  // periodic upstream join refresh
    bool joined_upstream = false;
  };

  void HandleControl(VifIndex vif, const packet::Ipv4Header& ip,
                     const RpTreeMessage& msg);
  void HandleData(VifIndex vif, const packet::Ipv4Header& ip,
                  std::span<const std::uint8_t> datagram);
  void HandleRegister(VifIndex vif, const packet::Ipv4Header& outer,
                      std::span<const std::uint8_t> datagram);
  /// Ensures (*,G) state exists and the upstream join refresh runs.
  Entry& EnsureJoined(Ipv4Address group);
  void SendJoinUpstream(Ipv4Address group, Entry& entry);
  void MaybePrune(Ipv4Address group);
  void ForwardDown(const Entry& entry, VifIndex arrival_vif,
                   const packet::Ipv4Header& inner_ip,
                   std::span<const std::uint8_t> inner, Ipv4Address group);
  void SendMessage(VifIndex vif, Ipv4Address dst, const RpTreeMessage& msg);
  void OnMembershipChange(Ipv4Address group);

  netsim::Simulator* sim_;
  NodeId self_;
  routing::RouteManager* routes_;
  RpResolver rp_of_;
  RpTreeConfig config_;
  RpTreeStats stats_;
  igmp::RouterIgmp igmp_;
  std::map<Ipv4Address, std::unique_ptr<Entry>> entries_;
};

}  // namespace cbt::baselines
