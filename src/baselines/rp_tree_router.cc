#include "baselines/rp_tree_router.h"

#include <algorithm>

#include "common/checksum.h"

namespace cbt::baselines {

using packet::IpProtocol;

namespace {
constexpr std::size_t kMsgSize = 12;
}

std::vector<std::uint8_t> RpTreeMessage::Encode() const {
  BufferWriter out(kMsgSize);
  out.WriteU8(static_cast<std::uint8_t>(type));
  out.WriteU8(0);
  const std::size_t checksum_offset = out.size();
  out.WriteU16(0);
  out.WriteAddress(group);
  out.WriteAddress(rp);
  out.PatchU16(checksum_offset, InternetChecksum(out.View()));
  return std::move(out).Take();
}

std::optional<RpTreeMessage> RpTreeMessage::Decode(
    std::span<const std::uint8_t> bytes) {
  if (bytes.size() < kMsgSize) return std::nullopt;
  if (!VerifyInternetChecksum(bytes.subspan(0, kMsgSize))) return std::nullopt;
  BufferReader in(bytes);
  const std::uint8_t raw = in.ReadU8();
  if (raw != 1 && raw != 2) return std::nullopt;
  RpTreeMessage msg;
  msg.type = static_cast<Type>(raw);
  in.ReadU8();
  in.ReadU16();
  msg.group = in.ReadAddress();
  msg.rp = in.ReadAddress();
  if (!msg.group.IsMulticast()) return std::nullopt;
  return msg;
}

RpTreeRouter::RpTreeRouter(netsim::Simulator& sim, NodeId self,
                           routing::RouteManager& routes, RpResolver rp_of,
                           RpTreeConfig config, igmp::IgmpConfig igmp_config)
    : sim_(&sim),
      self_(self),
      routes_(&routes),
      rp_of_(std::move(rp_of)),
      config_(config),
      igmp_(sim, self, igmp_config,
            igmp::RouterIgmp::Callbacks{
                [this](VifIndex, Ipv4Address group, Ipv4Address, bool newly) {
                  if (newly) OnMembershipChange(group);
                },
                nullptr,
                [this](VifIndex, Ipv4Address group) {
                  OnMembershipChange(group);
                },
                [this](VifIndex vif, Ipv4Address dst,
                       const packet::IgmpMessage& msg) {
                  sim_->SendDatagram(
                      self_, vif, dst,
                      packet::BuildIgmpDatagram(
                          sim_->interface(self_, vif).address, dst, msg));
                }}) {}

void RpTreeRouter::Start() { igmp_.Start(); }

void RpTreeRouter::OnDatagram(VifIndex vif, Ipv4Address /*link_src*/,
                              Ipv4Address /*link_dst*/,
                              std::span<const std::uint8_t> datagram) {
  const auto parsed = packet::ParseDatagram(datagram);
  if (!parsed) return;
  const packet::Ipv4Header& ip = parsed->ip;
  switch (ip.protocol) {
    case IpProtocol::kIgmp:
      if (const auto msg = packet::ExtractIgmp(*parsed)) {
        igmp_.OnMessage(vif, ip.src, *msg);
      }
      return;
    case IpProtocol::kUdp: {
      BufferReader in(parsed->payload);
      const auto udp = packet::UdpHeader::Decode(in);
      if (!udp || udp->dst_port != kRpTreePort) return;
      if (const auto msg = RpTreeMessage::Decode(
              parsed->payload.subspan(packet::kUdpHeaderSize))) {
        HandleControl(vif, ip, *msg);
      }
      return;
    }
    case IpProtocol::kCbt:
      // Register traffic (sender DR -> RP), reusing the encapsulation
      // header as PIM reuses IP-in-IP.
      HandleRegister(vif, ip, datagram);
      return;
    default:
      if (ip.dst.IsMulticast() && !ip.dst.IsLinkLocalMulticast()) {
        HandleData(vif, ip, datagram);
      }
      return;
  }
}

void RpTreeRouter::OnMembershipChange(Ipv4Address group) {
  if (igmp_.AnyMembers(group)) {
    EnsureJoined(group);
  } else {
    MaybePrune(group);
  }
}

RpTreeRouter::Entry& RpTreeRouter::EnsureJoined(Ipv4Address group) {
  auto& slot = entries_[group];
  if (slot == nullptr) {
    slot = std::make_unique<Entry>();
    const auto rp = rp_of_(group);
    if (rp && routes_->IsDirectlyAttached(self_, *rp)) {
      // Crude but sufficient RP self-identification: the RP's address is
      // one of ours (the harness assigns router primary addresses).
      for (const auto& iface : sim_->node(self_).interfaces) {
        if (iface.address == *rp) slot->am_rp = true;
      }
    }
    slot->refresh_timer.BindTo(*sim_);
    if (!slot->am_rp) SendJoinUpstream(group, *slot);
  }
  return *slot;
}

void RpTreeRouter::SendJoinUpstream(Ipv4Address group, Entry& entry) {
  const auto rp = rp_of_(group);
  if (!rp) return;
  const auto route = routes_->Lookup(self_, *rp);
  if (route && route->vif != kInvalidVif) {
    entry.upstream_vif = route->vif;
    entry.upstream_neighbor = route->next_hop;
    RpTreeMessage join;
    join.type = RpTreeMessage::Type::kJoin;
    join.group = group;
    join.rp = *rp;
    ++stats_.joins_sent;
    entry.joined_upstream = true;
    SendMessage(route->vif, route->next_hop, join);
  }
  entry.refresh_timer.Schedule(config_.join_refresh_interval,
                               [this, group] {
                                 const auto it = entries_.find(group);
                                 if (it != entries_.end()) {
                                   SendJoinUpstream(group, *it->second);
                                 }
                               });
}

void RpTreeRouter::HandleControl(VifIndex vif, const packet::Ipv4Header& ip,
                                 const RpTreeMessage& msg) {
  if (msg.type == RpTreeMessage::Type::kJoin) {
    ++stats_.joins_received;
    Entry& entry = EnsureJoined(msg.group);
    // Add/refresh the downstream neighbour with its holdtime.
    Downstream* found = nullptr;
    for (auto& d : entry.downstream) {
      if (d->neighbor == ip.src && d->vif == vif) found = d.get();
    }
    if (found == nullptr) {
      auto d = std::make_unique<Downstream>();
      d->neighbor = ip.src;
      d->vif = vif;
      d->holdtimer.BindTo(*sim_);
      found = d.get();
      entry.downstream.push_back(std::move(d));
    }
    const Ipv4Address neighbor = ip.src;
    const Ipv4Address group = msg.group;
    found->holdtimer.Schedule(config_.join_holdtime, [this, group, neighbor,
                                                      vif] {
      const auto it = entries_.find(group);
      if (it == entries_.end()) return;
      auto& downstream = it->second->downstream;
      downstream.erase(
          std::remove_if(downstream.begin(), downstream.end(),
                         [&](const std::unique_ptr<Downstream>& d) {
                           return d->neighbor == neighbor && d->vif == vif;
                         }),
          downstream.end());
      MaybePrune(group);
    });
    return;
  }

  // Prune.
  ++stats_.prunes_received;
  const auto it = entries_.find(msg.group);
  if (it == entries_.end()) return;
  auto& downstream = it->second->downstream;
  downstream.erase(std::remove_if(downstream.begin(), downstream.end(),
                                  [&](const std::unique_ptr<Downstream>& d) {
                                    return d->neighbor == ip.src &&
                                           d->vif == vif;
                                  }),
                   downstream.end());
  MaybePrune(msg.group);
}

void RpTreeRouter::MaybePrune(Ipv4Address group) {
  const auto it = entries_.find(group);
  if (it == entries_.end()) return;
  Entry& entry = *it->second;
  if (entry.am_rp) return;
  if (!entry.downstream.empty() || igmp_.AnyMembers(group)) return;
  if (entry.joined_upstream && entry.upstream_vif != kInvalidVif) {
    RpTreeMessage prune;
    prune.type = RpTreeMessage::Type::kPrune;
    prune.group = group;
    prune.rp = rp_of_(group).value_or(Ipv4Address{});
    ++stats_.prunes_sent;
    SendMessage(entry.upstream_vif, entry.upstream_neighbor, prune);
  }
  entries_.erase(it);
}

void RpTreeRouter::HandleData(VifIndex vif, const packet::Ipv4Header& ip,
                              std::span<const std::uint8_t> datagram) {
  const Ipv4Address group = ip.dst;
  const bool local_origin =
      sim_->subnet(sim_->interface(self_, vif).subnet)
          .address.Contains(ip.src) &&
      igmp_.IsQuerier(vif);

  const auto it = entries_.find(group);
  Entry* entry = it == entries_.end() ? nullptr : it->second.get();

  if (local_origin) {
    // Sender-side DR: register-encapsulate to the RP (unless we ARE the
    // RP, in which case the packet enters the tree right here).
    if (entry != nullptr && entry->am_rp) {
      const auto fwd = packet::WithDecrementedTtl(datagram);
      if (fwd) ForwardDown(*entry, vif, ip, *fwd, group);
      return;
    }
    const auto rp = rp_of_(group);
    if (!rp) return;
    const auto route = routes_->Lookup(self_, *rp);
    if (!route || route->vif == kInvalidVif) return;
    packet::CbtDataHeader hdr;  // generic encapsulation header
    hdr.group = group;
    hdr.core = *rp;
    hdr.origin = ip.src;
    hdr.ip_ttl = ip.ttl;
    hdr.on_tree = false;
    auto bytes =
        packet::BuildCbtModeDatagram(sim_->interface(self_, route->vif).address,
                                     *rp, hdr, datagram);
    ++stats_.registers_sent;
    sim_->SendDatagram(self_, route->vif, route->next_hop, std::move(bytes));
    return;
  }

  // Tree traffic: strictly downward — accept only from the RPF (upstream)
  // interface.
  if (entry == nullptr || vif != entry->upstream_vif) {
    ++stats_.data_dropped_off_tree;
    return;
  }
  const auto fwd = packet::WithDecrementedTtl(datagram);
  if (!fwd) return;
  ForwardDown(*entry, vif, ip, *fwd, group);
}

void RpTreeRouter::HandleRegister(VifIndex /*vif*/,
                                  const packet::Ipv4Header& outer,
                                  std::span<const std::uint8_t> datagram) {
  // Relay toward the RP if it is not us.
  bool mine = false;
  for (const auto& iface : sim_->node(self_).interfaces) {
    if (iface.address == outer.dst) mine = true;
  }
  if (!mine) {
    const auto route = routes_->Lookup(self_, outer.dst);
    if (route && route->vif != kInvalidVif) {
      const auto fwd = packet::WithDecrementedTtl(datagram);
      if (fwd) {
        ++stats_.registers_relayed;
        sim_->SendDatagram(self_, route->vif, route->next_hop, *fwd);
      }
    }
    return;
  }
  // We are the RP: decapsulate and flood the tree downward.
  const auto parsed = packet::ParseDatagram(datagram);
  if (!parsed) return;
  const auto data = packet::ExtractCbtModeData(*parsed);
  if (!data) return;
  const auto inner = packet::ParseDatagram(data->original_datagram);
  if (!inner) return;
  Entry& entry = EnsureJoined(data->header.group);
  // Registers are unicast tunnels: the decapsulated packet flows down
  // EVERY tree interface, including the one the register arrived on —
  // that up-then-down double traversal is the unidirectional tree's
  // defining cost.
  ForwardDown(entry, kInvalidVif, inner->ip, data->original_datagram,
              data->header.group);
}

void RpTreeRouter::ForwardDown(const Entry& entry, VifIndex arrival_vif,
                               const packet::Ipv4Header& inner_ip,
                               std::span<const std::uint8_t> inner,
                               Ipv4Address group) {
  // Every output carries the same bytes: one arena buffer, shared.
  netsim::PacketRef shared;
  const auto shared_ref = [&]() -> const netsim::PacketRef& {
    if (!shared.valid()) shared = sim_->MakePacket(inner);
    return shared;
  };
  std::vector<VifIndex> sent;
  for (const auto& d : entry.downstream) {
    if (d->vif == arrival_vif) continue;
    if (std::find(sent.begin(), sent.end(), d->vif) != sent.end()) continue;
    sent.push_back(d->vif);
    ++stats_.data_forwarded;
    sim_->SendDatagramRef(self_, d->vif, group, shared_ref());
  }
  for (const VifIndex v : igmp_.MemberVifs(group)) {
    if (v == arrival_vif || !igmp_.IsQuerier(v)) continue;
    if (std::find(sent.begin(), sent.end(), v) != sent.end()) continue;
    if (sim_->subnet(sim_->interface(self_, v).subnet)
            .address.Contains(inner_ip.src)) {
      continue;
    }
    ++stats_.data_delivered_lan;
    sim_->SendDatagramRef(self_, v, group, shared_ref());
  }
}

void RpTreeRouter::SendMessage(VifIndex vif, Ipv4Address dst,
                               const RpTreeMessage& msg) {
  const auto body = msg.Encode();
  BufferWriter out(packet::kIpv4HeaderSize + packet::kUdpHeaderSize +
                   body.size());
  packet::Ipv4Header ip;
  ip.src = sim_->interface(self_, vif).address;
  ip.dst = dst;
  ip.ttl = 1;
  ip.protocol = IpProtocol::kUdp;
  ip.Encode(out, packet::kUdpHeaderSize + body.size());
  packet::UdpHeader udp{kRpTreePort, kRpTreePort};
  udp.Encode(out, body.size());
  out.WriteBytes(body);
  auto bytes = std::move(out).Take();
  stats_.control_bytes_sent += bytes.size();
  sim_->SendDatagram(self_, vif, dst, std::move(bytes));
}

std::size_t RpTreeRouter::StateUnits() const {
  std::size_t units = 0;
  for (const auto& [group, entry] : entries_) {
    units += 1 + entry->downstream.size();
  }
  return units;
}

}  // namespace cbt::baselines
