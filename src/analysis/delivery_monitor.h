// Sequence-stamped delivery watcher: the observable definition of
// "hitless".
//
// A sender host publishes monotonically numbered datagrams to the group
// at a fixed cadence; every watched receiver host checks the numbers it
// delivers for continuity. A hole (seq jumps past expected) means the
// tree dropped data — each one is counted and emitted as a kInvariant
// "deliver-gap" trace event (node = receiver, arg_a = first missing,
// arg_b = received), which the src/check migration suite forbids inside
// a "migrate" span. A receiver's first delivery only pins its baseline,
// so watchers may attach mid-stream without false positives.
#pragma once

#include <cstdint>
#include <map>
#include <memory>

#include "cbt/domain.h"
#include "common/types.h"

namespace cbt::analysis {

class DeliveryMonitor {
 public:
  struct ReceiverStats {
    std::uint64_t delivered = 0;
    std::uint64_t gaps = 0;        // discontinuity events
    std::uint64_t missing = 0;     // sequence numbers skipped
    std::uint32_t last_seq = 0;    // highest sequence delivered
    bool any = false;
  };

  DeliveryMonitor(core::CbtDomain& domain, Ipv4Address group)
      : domain_(&domain), group_(group) {}
  ~DeliveryMonitor() { StopSender(); }

  /// Publishes one numbered datagram from `sender_host` every `interval`
  /// until StopSender (or destruction).
  void StartSender(NodeId sender_host, SimDuration interval,
                   std::uint8_t ttl = 64);
  void StopSender();

  /// Installs the continuity check on a receiver host's data callback.
  void WatchReceiver(NodeId receiver_host);

  std::uint32_t sent() const { return sender_ ? sender_->next_seq : 0; }
  const std::map<NodeId, ReceiverStats>& receivers() const {
    return receivers_;
  }
  std::uint64_t TotalGaps() const;
  /// Lowest last-delivered sequence across watched receivers (0 when a
  /// receiver has seen nothing) — "everyone caught up to N".
  std::uint32_t MinDelivered() const;

 private:
  struct SenderState {
    bool running = false;
    std::uint32_t next_seq = 0;
    NodeId host;
    SimDuration interval = 0;
    std::uint8_t ttl = 64;
  };

  void SendNext(const std::shared_ptr<SenderState>& state);

  core::CbtDomain* domain_;
  Ipv4Address group_;
  std::shared_ptr<SenderState> sender_;
  std::map<NodeId, ReceiverStats> receivers_;
};

}  // namespace cbt::analysis
