#include "analysis/table.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <ostream>

namespace cbt::analysis {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::AddRow(std::vector<std::string> cells) {
  assert(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::Fixed(double v, int decimals) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

void Table::Print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  const auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << (c == 0 ? "" : "  ");
      // Right-align everything but the first column.
      const std::size_t pad = widths[c] - cells[c].size();
      if (c == 0) {
        os << cells[c] << std::string(pad, ' ');
      } else {
        os << std::string(pad, ' ') << cells[c];
      }
    }
    os << '\n';
  };
  print_row(headers_);
  std::size_t total = 0;
  for (const std::size_t w : widths) total += w + 2;
  os << std::string(total > 2 ? total - 2 : total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

void Table::PrintCsv(std::ostream& os) const {
  const auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << (c == 0 ? "" : ",") << cells[c];
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

}  // namespace cbt::analysis
