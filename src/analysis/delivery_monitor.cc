#include "analysis/delivery_monitor.h"

#include <array>

namespace cbt::analysis {

namespace {

std::array<std::uint8_t, 4> EncodeSeq(std::uint32_t seq) {
  return {static_cast<std::uint8_t>(seq >> 24),
          static_cast<std::uint8_t>(seq >> 16),
          static_cast<std::uint8_t>(seq >> 8),
          static_cast<std::uint8_t>(seq)};
}

}  // namespace

void DeliveryMonitor::StartSender(NodeId sender_host, SimDuration interval,
                                  std::uint8_t ttl) {
  StopSender();
  sender_ = std::make_shared<SenderState>();
  sender_->running = true;
  sender_->host = sender_host;
  sender_->interval = interval;
  sender_->ttl = ttl;
  SendNext(sender_);
}

void DeliveryMonitor::StopSender() {
  if (sender_) sender_->running = false;
  sender_.reset();
}

void DeliveryMonitor::SendNext(const std::shared_ptr<SenderState>& state) {
  if (!state->running) return;
  const auto payload = EncodeSeq(state->next_seq++);
  domain_->host(state->host).SendToGroup(group_, payload, state->ttl);
  domain_->sim().Schedule(state->interval,
                          [this, state] { SendNext(state); });
}

void DeliveryMonitor::WatchReceiver(NodeId receiver_host) {
  ReceiverStats& stats = receivers_[receiver_host];
  core::HostAgent& host = domain_->host(receiver_host);
  netsim::Simulator& sim = domain_->sim();
  host.on_data = [this, &stats, receiver_host,
                  &sim](const core::HostAgent::Received& r) {
    if (r.group != group_ || r.bytes < 4) return;
    ++stats.delivered;
    const std::uint32_t seq = r.payload_head;
    if (stats.any && seq > stats.last_seq + 1) {
      ++stats.gaps;
      stats.missing += seq - stats.last_seq - 1;
      OBS_TRACE(sim.trace(), .time = sim.Now(),
                .kind = obs::TraceKind::kInvariant, .name = "deliver-gap",
                .node = receiver_host.value(), .group = group_,
                .arg_a = stats.last_seq + 1, .arg_b = seq);
    }
    if (!stats.any || seq > stats.last_seq) {
      stats.any = true;
      stats.last_seq = seq;
    }
  };
}

std::uint64_t DeliveryMonitor::TotalGaps() const {
  std::uint64_t total = 0;
  for (const auto& [node, stats] : receivers_) total += stats.gaps;
  return total;
}

std::uint32_t DeliveryMonitor::MinDelivered() const {
  std::uint32_t min_seq = UINT32_MAX;
  for (const auto& [node, stats] : receivers_) {
    min_seq = std::min(min_seq, stats.any ? stats.last_seq : 0u);
  }
  return receivers_.empty() ? 0 : min_seq;
}

}  // namespace cbt::analysis
