#include "analysis/tree_metrics.h"

#include <algorithm>
#include <cassert>

namespace cbt::analysis {
namespace {

std::pair<NodeId, NodeId> NormalizedEdge(NodeId a, NodeId b) {
  return a < b ? std::make_pair(a, b) : std::make_pair(b, a);
}

/// Splices the unicast path `path` (from a node toward the tree/root)
/// into `tree`, stopping at the first node already on the tree.
void SpliceTowardRoot(Tree& tree, routing::RouteManager& routes,
                      const std::vector<NodeId>& path) {
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    if (tree.Contains(path[i])) return;
    tree.parent[path[i]] = path[i + 1];
    tree.edge_delay[path[i]] = routes.PathDelay(path[i], path[i + 1]);
  }
}

std::vector<NodeId> AncestryToRoot(const Tree& tree, NodeId n) {
  std::vector<NodeId> chain{n};
  while (chain.back() != tree.root) {
    const auto it = tree.parent.find(chain.back());
    assert(it != tree.parent.end() && "node not on tree");
    chain.push_back(it->second);
  }
  return chain;
}

}  // namespace

std::vector<NodeId> Tree::PathBetween(NodeId a, NodeId b) const {
  const std::vector<NodeId> up_a = AncestryToRoot(*this, a);
  const std::vector<NodeId> up_b = AncestryToRoot(*this, b);
  // Find the lowest common ancestor: walk back from the root.
  std::size_t ia = up_a.size();
  std::size_t ib = up_b.size();
  while (ia > 0 && ib > 0 && up_a[ia - 1] == up_b[ib - 1]) {
    --ia;
    --ib;
  }
  // up_a[0..ia] descends to the LCA (inclusive at index ia); then the
  // reversed b-side.
  std::vector<NodeId> path(up_a.begin(), up_a.begin() + (std::ptrdiff_t)ia + 1);
  for (std::size_t i = ib; i-- > 0;) {
    path.push_back(up_b[i]);
  }
  return path;
}

SimDuration Tree::DelayBetween(NodeId a, NodeId b) const {
  const auto path = PathBetween(a, b);
  SimDuration total = 0;
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    // One endpoint of each consecutive pair is the other's child and owns
    // the edge record.
    const NodeId a = path[i];
    const NodeId b = path[i + 1];
    if (const auto it = parent.find(a); it != parent.end() && it->second == b) {
      total += edge_delay.at(a);
    } else {
      total += edge_delay.at(b);
    }
  }
  return total;
}

std::size_t Tree::HopsBetween(NodeId a, NodeId b) const {
  return PathBetween(a, b).size() - 1;
}

std::set<std::pair<NodeId, NodeId>> Tree::Edges() const {
  std::set<std::pair<NodeId, NodeId>> out;
  for (const auto& [child, par] : parent) {
    out.insert(NormalizedEdge(child, par));
  }
  return out;
}

Tree BuildSharedTree(routing::RouteManager& routes, NodeId core,
                     const std::vector<NodeId>& member_routers) {
  Tree tree;
  tree.root = core;
  for (const NodeId member : member_routers) {
    if (tree.Contains(member)) continue;
    // The join travels the unicast path member -> core and terminates at
    // the first on-tree router — exactly SpliceTowardRoot semantics.
    const std::vector<NodeId> path = routes.Path(member, core);
    if (path.empty()) continue;  // unreachable member
    SpliceTowardRoot(tree, routes, path);
  }
  return tree;
}

Tree BuildMultiCoreTree(routing::RouteManager& routes,
                        const std::vector<NodeId>& cores,
                        const std::vector<NodeId>& member_routers,
                        const std::vector<std::size_t>& assignment) {
  Tree tree;
  if (cores.empty()) return tree;
  tree.root = cores.front();
  // Core backbone first: every secondary core attaches toward the
  // primary before any member joins, mirroring CoreRejoinPrimary.
  for (std::size_t i = 1; i < cores.size(); ++i) {
    if (tree.Contains(cores[i])) continue;
    const std::vector<NodeId> path = routes.Path(cores[i], tree.root);
    if (path.empty()) continue;
    SpliceTowardRoot(tree, routes, path);
  }
  for (std::size_t m = 0; m < member_routers.size(); ++m) {
    const NodeId member = member_routers[m];
    if (tree.Contains(member)) continue;
    const std::size_t idx = m < assignment.size() && assignment[m] < cores.size()
                                ? assignment[m]
                                : 0;
    const std::vector<NodeId> path = routes.Path(member, cores[idx]);
    if (path.empty()) continue;
    SpliceTowardRoot(tree, routes, path);
  }
  return tree;
}

Tree BuildSourceTree(routing::RouteManager& routes, NodeId source,
                     const std::vector<NodeId>& member_routers) {
  Tree tree;
  tree.root = source;
  for (const NodeId member : member_routers) {
    if (tree.Contains(member)) continue;
    // Shortest path source -> member, spliced from the member side up.
    std::vector<NodeId> path = routes.Path(source, member);
    if (path.empty()) continue;
    std::reverse(path.begin(), path.end());  // member ... source
    SpliceTowardRoot(tree, routes, path);
  }
  return tree;
}

std::map<std::pair<NodeId, NodeId>, int> SharedTreeLinkLoad(
    routing::RouteManager& routes, const Tree& tree,
    const std::vector<NodeId>& senders) {
  std::map<std::pair<NodeId, NodeId>, int> load;
  for (const NodeId sender : senders) {
    // Off-tree senders unicast to the root (core) first.
    if (!tree.Contains(sender)) {
      const auto path = routes.Path(sender, tree.root);
      for (std::size_t i = 0; i + 1 < path.size(); ++i) {
        ++load[NormalizedEdge(path[i], path[i + 1])];
      }
    }
    // The packet then floods every tree link exactly once.
    for (const auto& edge : tree.Edges()) {
      ++load[edge];
    }
  }
  return load;
}

std::map<std::pair<NodeId, NodeId>, int> SourceTreesLinkLoad(
    routing::RouteManager& routes, const std::vector<NodeId>& senders,
    const std::vector<NodeId>& member_routers) {
  std::map<std::pair<NodeId, NodeId>, int> load;
  for (const NodeId sender : senders) {
    const Tree spt = BuildSourceTree(routes, sender, member_routers);
    for (const auto& edge : spt.Edges()) {
      ++load[edge];
    }
  }
  return load;
}

std::map<std::pair<NodeId, NodeId>, int> UnidirectionalSharedTreeLinkLoad(
    routing::RouteManager& routes, const Tree& tree,
    const std::vector<NodeId>& senders) {
  std::map<std::pair<NodeId, NodeId>, int> load;
  for (const NodeId sender : senders) {
    // Up-leg: unicast sender -> root (PIM-SM register path; even on-tree
    // senders pay this in the unidirectional model).
    const auto up = routes.Path(sender, tree.root);
    for (std::size_t i = 0; i + 1 < up.size(); ++i) {
      ++load[NormalizedEdge(up[i], up[i + 1])];
    }
    // Down-leg: one copy on every tree link, rooted at the RP.
    for (const auto& edge : tree.Edges()) {
      ++load[edge];
    }
  }
  return load;
}

DelayRatio UnidirectionalTreeDelayRatio(
    routing::RouteManager& routes, const Tree& tree,
    const std::vector<NodeId>& member_routers) {
  DelayRatio out;
  double sum = 0.0;
  int pairs = 0;
  for (const NodeId a : member_routers) {
    for (const NodeId b : member_routers) {
      if (a == b || !tree.Contains(b)) continue;
      const SimDuration via_root =
          routes.PathDelay(a, tree.root) + tree.DelayBetween(tree.root, b);
      const SimDuration unicast = routes.PathDelay(a, b);
      if (unicast <= 0) continue;
      const double ratio =
          static_cast<double>(via_root) / static_cast<double>(unicast);
      out.max_ratio = std::max(out.max_ratio, ratio);
      out.max_tree_delay = std::max(out.max_tree_delay, via_root);
      sum += ratio;
      ++pairs;
    }
  }
  out.mean_ratio = pairs > 0 ? sum / pairs : 0.0;
  return out;
}

DelayRatio SharedTreeDelayRatio(routing::RouteManager& routes,
                                const Tree& tree,
                                const std::vector<NodeId>& member_routers) {
  DelayRatio out;
  double sum = 0.0;
  int pairs = 0;
  for (const NodeId a : member_routers) {
    for (const NodeId b : member_routers) {
      if (a == b || !tree.Contains(a) || !tree.Contains(b)) continue;
      const SimDuration tree_delay = tree.DelayBetween(a, b);
      const SimDuration unicast_delay = routes.PathDelay(a, b);
      if (unicast_delay <= 0) continue;
      const double ratio = static_cast<double>(tree_delay) /
                           static_cast<double>(unicast_delay);
      out.max_ratio = std::max(out.max_ratio, ratio);
      out.max_tree_delay = std::max(out.max_tree_delay, tree_delay);
      sum += ratio;
      ++pairs;
    }
  }
  out.mean_ratio = pairs > 0 ? sum / pairs : 0.0;
  return out;
}

TreeQuality CompareTreeQuality(routing::RouteManager& routes, NodeId core,
                               const std::vector<NodeId>& member_routers,
                               const std::vector<NodeId>& senders) {
  TreeQuality q;
  if (member_routers.empty() || senders.empty()) return q;
  q.shared_cost = BuildSharedTree(routes, core, member_routers).Cost();
  std::size_t total = 0;
  for (const NodeId sender : senders) {
    total += BuildSourceTree(routes, sender, member_routers).Cost();
  }
  q.mean_source_cost =
      static_cast<double>(total) / static_cast<double>(senders.size());
  if (q.mean_source_cost > 0) {
    q.cost_ratio = static_cast<double>(q.shared_cost) / q.mean_source_cost;
  }
  return q;
}

Summary Summarize(const std::vector<double>& values) {
  Summary s;
  if (values.empty()) return s;
  s.min = s.max = values.front();
  double sum = 0;
  for (const double v : values) {
    s.min = std::min(s.min, v);
    s.max = std::max(s.max, v);
    sum += v;
  }
  s.mean = sum / static_cast<double>(values.size());
  return s;
}

}  // namespace cbt::analysis
