// Graph-level tree oracles and metrics.
//
// These compute the *idealized* trees the SIGCOMM'93 evaluation compares:
//  * the CBT shared tree — the union of unicast join paths from each
//    member router to the core (exactly what hop-by-hop JOIN-REQUESTs
//    build);
//  * the per-source shortest-path tree (SPT) — what DVMRP/MOSPF converge
//    to after pruning.
// Metrics derived from them drive experiments E2 (tree cost), E3 (delay
// ratio vs core placement) and E4 (traffic concentration).
#pragma once

#include <map>
#include <set>
#include <vector>

#include "common/types.h"
#include "routing/route_manager.h"

namespace cbt::analysis {

/// An (undirected) multicast distribution tree over router nodes.
struct Tree {
  NodeId root;
  /// parent[n] for every on-tree node except the root.
  std::map<NodeId, NodeId> parent;
  /// Link delay of the edge (n, parent[n]).
  std::map<NodeId, SimDuration> edge_delay;

  bool Contains(NodeId n) const { return n == root || parent.contains(n); }

  /// Number of links in the tree — the "tree cost" metric.
  std::size_t Cost() const { return parent.size(); }

  std::size_t NodeCount() const { return parent.size() + (parent.empty() ? 0 : 1); }

  /// Path (node sequence) between two on-tree nodes, via their LCA.
  std::vector<NodeId> PathBetween(NodeId a, NodeId b) const;

  /// Summed edge delay along PathBetween.
  SimDuration DelayBetween(NodeId a, NodeId b) const;

  /// Hop count along PathBetween.
  std::size_t HopsBetween(NodeId a, NodeId b) const;

  /// Normalized undirected edge list (lower id first).
  std::set<std::pair<NodeId, NodeId>> Edges() const;
};

/// Shared tree rooted at `core`: union of the unicast shortest paths each
/// member router would send its JOIN-REQUEST along.
Tree BuildSharedTree(routing::RouteManager& routes, NodeId core,
                     const std::vector<NodeId>& member_routers);

/// Multi-core shared tree: the k cores bridge into one backbone (each
/// secondary core rejoins the primary, section 2.5), then each member
/// joins toward its assigned core, with the join terminating at the first
/// on-tree router. `assignment[i]` names the `cores` index for
/// `member_routers[i]`; missing or out-of-range entries target the
/// primary. With k=1 this degenerates to BuildSharedTree.
Tree BuildMultiCoreTree(routing::RouteManager& routes,
                        const std::vector<NodeId>& cores,
                        const std::vector<NodeId>& member_routers,
                        const std::vector<std::size_t>& assignment);

/// Per-source shortest-path tree covering the members (DVMRP-ideal):
/// union of shortest paths source -> member. Paths are computed from the
/// source side, matching a link-state SPT (RPF trees differ only under
/// asymmetric metrics).
Tree BuildSourceTree(routing::RouteManager& routes, NodeId source,
                     const std::vector<NodeId>& member_routers);

// ---------------------------------------------------------------------------
// Derived metrics.
// ---------------------------------------------------------------------------

/// Per-link load when every listed sender multicasts one packet.
///
/// Shared tree: a packet from an on-tree sender traverses *every* tree
/// link once (bidirectional flood over the tree); off-tree senders
/// additionally cross their unicast path to the core. Source trees: each
/// packet crosses exactly its own SPT's links.
std::map<std::pair<NodeId, NodeId>, int> SharedTreeLinkLoad(
    routing::RouteManager& routes, const Tree& tree,
    const std::vector<NodeId>& senders);

std::map<std::pair<NodeId, NodeId>, int> SourceTreesLinkLoad(
    routing::RouteManager& routes, const std::vector<NodeId>& senders,
    const std::vector<NodeId>& member_routers);

/// Per-link load for a *unidirectional* shared tree (the PIM-SM shape CBT
/// is contrasted with): every sender's packet travels sender -> root
/// (register/unicast leg), then down from the root to all members. Links
/// between a sender and the root carry the packet twice (up then down)
/// unless the down-direction subtree does not include them; we count
/// transmissions per link, so an up+down traversal counts 2.
std::map<std::pair<NodeId, NodeId>, int> UnidirectionalSharedTreeLinkLoad(
    routing::RouteManager& routes, const Tree& tree,
    const std::vector<NodeId>& senders);


/// Max and mean ratio of tree-path delay to unicast shortest-path delay
/// over all ordered member pairs (the CBT "delay penalty").
struct DelayRatio {
  double max_ratio = 0.0;
  double mean_ratio = 0.0;
  SimDuration max_tree_delay = 0;
};

DelayRatio SharedTreeDelayRatio(routing::RouteManager& routes,
                                const Tree& tree,
                                const std::vector<NodeId>& member_routers);
/// Member-pair delay penalty for the unidirectional tree: every packet
/// detours via the root, so delay(a,b) = delay(a->root) + delay(root->b).
DelayRatio UnidirectionalTreeDelayRatio(
    routing::RouteManager& routes, const Tree& tree,
    const std::vector<NodeId>& member_routers);


/// Tree-quality comparison in the style of the dynamic-membership
/// multicast literature (Cho & Breen): the cost of the one shared tree
/// serving a member set vs the mean cost of the per-source shortest-path
/// trees the same members would get from a source-based protocol. A
/// ratio near 1 means core-based sharing is nearly free; the churn-scale
/// bench tracks it across membership snapshots.
struct TreeQuality {
  std::size_t shared_cost = 0;     ///< links in the shared tree
  double mean_source_cost = 0.0;   ///< mean links over the senders' SPTs
  double cost_ratio = 0.0;         ///< shared / mean source (0 if empty)
};

TreeQuality CompareTreeQuality(routing::RouteManager& routes, NodeId core,
                               const std::vector<NodeId>& member_routers,
                               const std::vector<NodeId>& senders);

/// Summary statistics helper.
struct Summary {
  double min = 0, max = 0, mean = 0;
};
Summary Summarize(const std::vector<double>& values);

}  // namespace cbt::analysis
