// Hitless live core migration: management-plane re-homing of a group's
// shared tree onto a new core set with zero data-delivery gap.
//
// CBT's soft state cannot hand the anchor role over by itself: an old
// primary that protocol-rejoins toward its replacement through its own
// subtree livelocks on section 6.3 loop detection (every on-tree router
// terminates the join, and the parent chain leads straight back). The
// migrator therefore works make-before-break from the management plane:
//
//  1. join-new  — the new primary joins the *old* tree as an ordinary
//     leaf (nothing is torn down yet; data keeps flowing);
//  2. publish   — the directory's core list and member-LAN partition are
//     replaced atomically;
//  3. re-root   — the parent chain between the new primary and the old
//     root is reversed in place (each hop's parent/child records swap
//     roles on the same link, so in-flight data keeps crossing every
//     edge it could cross before);
//  4. drain-old — every on-tree router reconciles against the new
//     mapping (CbtRouter::RunQuitCheck): the old anchor demotes itself
//     and drains through the ordinary quit/flush machinery;
//  5. converge  — the invariant auditor confirms the re-rooted tree.
//
// Observability: the whole operation is one "migrate" Begin/End span,
// with "migrate-join-new" and "migrate-drain-old" marking the phase
// boundaries under the same txn — the src/check suite pins that join-new
// precedes drain-old and that no receiver sees a delivery gap inside the
// span.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "cbt/domain.h"
#include "common/types.h"

namespace cbt::analysis {

class CoreMigrator {
 public:
  struct Options {
    /// Phase-1 polling granularity while the new primary joins.
    SimDuration join_poll = kSecond;
    SimDuration join_deadline = 60 * kSecond;
    /// Phase-5 bound: first clean audit must arrive within this.
    SimDuration drain_deadline = 120 * kSecond;
  };

  struct Report {
    bool ok = false;
    SimTime started = 0;
    /// Phase-1 completion: the new primary is on the old tree.
    SimTime new_core_joined = 0;
    /// First clean audit of the re-rooted tree.
    SimTime drained = 0;
    std::string error;

    SimDuration Duration() const { return drained - started; }
  };

  explicit CoreMigrator(core::CbtDomain& domain) : domain_(&domain) {}
  CoreMigrator(core::CbtDomain& domain, const Options& opts)
      : domain_(&domain), opts_(opts) {}

  /// Live-migrates `group` onto `new_cores` (node ids, front = new
  /// primary), optionally publishing a member-LAN → core-index partition
  /// alongside. Runs the simulation forward during the join and drain
  /// phases; returns with the sim positioned at the first clean audit (or
  /// at the failed phase's deadline).
  Report Migrate(Ipv4Address group, const std::vector<NodeId>& new_cores,
                 std::map<SubnetId, std::size_t> assignments = {});

 private:
  /// Reverses the parent chain from `new_root` up to the tree's current
  /// root: every hop's parent/child records swap roles in place.
  void ReverseParentChain(Ipv4Address group, NodeId new_root);

  core::CbtDomain* domain_;
  Options opts_;
  std::uint64_t seq_ = 0;
};

}  // namespace cbt::analysis
