#include "analysis/migration.h"

#include <algorithm>
#include <set>

#include "analysis/invariant_auditor.h"

namespace cbt::analysis {

namespace {
// Migration txns live in their own high-half namespace so they can never
// collide with router txns (node id << 32 | counter).
constexpr std::uint64_t kMigrationTxnBase = 0x4D47ull << 48;  // "MG"
}  // namespace

CoreMigrator::Report CoreMigrator::Migrate(
    Ipv4Address group, const std::vector<NodeId>& new_cores,
    std::map<SubnetId, std::size_t> assignments) {
  netsim::Simulator& sim = domain_->sim();
  Report report;
  report.started = sim.Now();
  if (new_cores.empty()) {
    report.error = "empty core list";
    return report;
  }
  const NodeId new_primary = new_cores.front();
  const std::vector<Ipv4Address> old_cores =
      domain_->directory().CoresFor(group);
  const std::uint64_t txn = kMigrationTxnBase | ++seq_;
  OBS_TRACE(sim.trace(), .time = sim.Now(), .kind = obs::TraceKind::kFsm,
            .phase = obs::TracePhase::kBegin, .name = "migrate",
            .node = new_primary.value(), .group = group, .txn = txn);
  const auto fail = [&](std::string error) {
    OBS_TRACE(sim.trace(), .time = sim.Now(), .kind = obs::TraceKind::kFsm,
              .phase = obs::TracePhase::kEnd, .name = "migrate",
              .node = new_primary.value(), .group = group, .txn = txn,
              .detail = "failed");
    report.error = std::move(error);
    return report;
  };

  // Phase 1: make before break — attach the new primary to the OLD tree
  // (as a plain leaf) while the old anchor still serves every receiver.
  core::CbtRouter& fresh = domain_->router(new_primary);
  if (!fresh.IsOnTree(group)) {
    if (old_cores.empty()) return fail("group unknown to the directory");
    fresh.InitiateJoin(group, old_cores, 0);
    const SimTime deadline = sim.Now() + opts_.join_deadline;
    while (!fresh.IsOnTree(group) && sim.Now() < deadline) {
      sim.RunUntil(std::min(deadline, sim.Now() + opts_.join_poll));
    }
    if (!fresh.IsOnTree(group)) {
      return fail("new primary failed to join the old tree");
    }
  }
  report.new_core_joined = sim.Now();
  OBS_TRACE(sim.trace(), .time = sim.Now(), .kind = obs::TraceKind::kFsm,
            .name = "migrate-join-new", .node = new_primary.value(),
            .group = group, .txn = txn);

  // Phase 2: publish the replacement mapping (and partition) atomically.
  const std::vector<Ipv4Address> new_addrs =
      domain_->RegisterGroup(group, new_cores);
  domain_->directory().SetAssignments(group, std::move(assignments));

  // Phase 3: re-root at the new primary. Every edge on the chain swaps
  // parent/child roles on the same link, so data in flight keeps
  // crossing exactly the links it could cross before — this is what
  // makes the migration hitless.
  ReverseParentChain(group, new_primary);

  // Phase 4: reconcile every on-tree router against the new mapping. The
  // old anchor demotes itself and drains via the normal quit/flush
  // machinery; the new primary adopts the anchor role it now owns.
  OBS_TRACE(sim.trace(), .time = sim.Now(), .kind = obs::TraceKind::kFsm,
            .name = "migrate-drain-old", .node = new_primary.value(),
            .group = group, .txn = txn);
  for (const NodeId id : domain_->OnTreeRouters(group)) {
    core::CbtRouter& r = domain_->router(id);
    if (core::FibEntry* entry = r.mutable_fib().Find(group)) {
      entry->cores = new_addrs;
    }
    r.RunQuitCheck(group);
  }

  // Phase 5: converge — the re-rooted tree must audit clean.
  const auto clean =
      RunUntilInvariantsHold(*domain_, sim.Now() + opts_.drain_deadline);
  if (!clean.has_value()) return fail("drain did not converge");
  report.drained = *clean;
  OBS_TRACE(sim.trace(), .time = sim.Now(), .kind = obs::TraceKind::kFsm,
            .phase = obs::TracePhase::kEnd, .name = "migrate",
            .node = new_primary.value(), .group = group, .txn = txn,
            .detail = "drained");
  report.ok = true;
  return report;
}

void CoreMigrator::ReverseParentChain(Ipv4Address group, NodeId new_root) {
  netsim::Simulator& sim = domain_->sim();

  // Snapshot the chain with each hop's ORIGINAL parent link: flipping an
  // edge overwrites the very pointers the next pair needs.
  struct Hop {
    NodeId node;
    Ipv4Address parent_address;
    VifIndex parent_vif = kInvalidVif;
  };
  std::vector<Hop> chain;
  std::set<NodeId> seen;
  NodeId cur = new_root;
  for (;;) {
    if (!seen.insert(cur).second) break;  // defensive: corrupt cycle
    const core::FibEntry* entry =
        domain_->router(cur).mutable_fib().Find(group);
    if (entry == nullptr) break;
    chain.push_back(Hop{cur, entry->parent_address, entry->parent_vif});
    if (!entry->HasParent()) break;
    const auto parent = sim.FindNodeByAddress(entry->parent_address);
    if (!parent.has_value()) break;
    cur = *parent;
  }

  const SimTime now = sim.Now();
  for (std::size_t i = 0; i + 1 < chain.size(); ++i) {
    const Hop& hop = chain[i];  // hop.node's original parent is chain[i+1]
    if (hop.parent_vif == kInvalidVif) break;
    core::FibEntry* child_entry =
        domain_->router(hop.node).mutable_fib().Find(group);
    core::FibEntry* parent_entry =
        domain_->router(chain[i + 1].node).mutable_fib().Find(group);
    if (child_entry == nullptr || parent_entry == nullptr) break;
    const Ipv4Address my_addr = sim.interface(hop.node, hop.parent_vif).address;
    const core::ChildEntry* reciprocal = parent_entry->FindChild(my_addr);
    if (reciprocal == nullptr) break;  // never half-flip an edge
    const VifIndex parent_vif_toward_us = reciprocal->vif;

    // The old parent becomes our child on the same link...
    child_entry->AddChild(hop.parent_address, hop.parent_vif, now);
    if (child_entry->parent_address == hop.parent_address) {
      child_entry->parent_address = Ipv4Address{};
      child_entry->parent_vif = kInvalidVif;
    }
    // ...and we become the old parent's parent.
    parent_entry->RemoveChild(my_addr);
    parent_entry->parent_address = my_addr;
    parent_entry->parent_vif = parent_vif_toward_us;
    parent_entry->last_parent_reply = now;
  }
}

}  // namespace cbt::analysis
