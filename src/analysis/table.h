// Fixed-width table rendering for the experiment harness: every bench
// prints the rows/series it regenerates, and can optionally dump CSV for
// external plotting.
#pragma once

#include <iosfwd>
#include <cstdint>
#include <type_traits>
#include <string>
#include <vector>

namespace cbt::analysis {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Adds one row; cells are pre-formatted strings.
  void AddRow(std::vector<std::string> cells);

  /// Convenience formatters.
  template <typename Integer>
    requires std::is_integral_v<Integer>
  static std::string Num(Integer v) {
    return std::to_string(v);
  }
  static std::string Fixed(double v, int decimals = 2);

  /// Renders with column alignment and a header rule.
  void Print(std::ostream& os) const;

  /// RFC-4180-ish CSV (no quoting needed for our numeric cells).
  void PrintCsv(std::ostream& os) const;

  /// Raw access for machine exporters (bench::JsonReporter).
  const std::vector<std::string>& headers() const { return headers_; }
  const std::vector<std::vector<std::string>>& rows() const { return rows_; }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace cbt::analysis
