// Global tree-invariant auditor: a whole-domain consistency check that can
// run at any simulation time.
//
// CBT's correctness argument rests on a handful of structural invariants
// of the shared tree. At convergence (no faults outstanding, all repair
// timers run their course) every one of them must hold:
//
//  * rootedness / no forwarding loops — following parent pointers from any
//    on-tree router terminates at the group's anchoring core without
//    revisiting a router;
//  * parent/child FIB symmetry — if R records P as parent then P records
//    R's interface address as a child on the matching subnet, and every
//    child a parent records holds reciprocal parent state;
//  * no duplicate children — packet duplication or join races must never
//    yield two child entries for one address (it would double traffic);
//  * member attachment — every LAN with IGMP group presence has an
//    on-tree DR (normal D-DR or section 2.6 G-DR) to serve it;
//  * no stale state — a group with no members anywhere eventually holds
//    state only at its primary core (the permanent anchor);
//  * anchor consistency — a router claiming the primary-core role for a
//    directory-known group actually owns the published primary address
//    (a half-completed core migration is exactly what violates this).
//
// During fault windows and recovery the auditor reports violations; the
// convergence probe (RunUntilInvariantsHold) measures recovery time as
// fault-time → first audit with every invariant restored.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "cbt/domain.h"
#include "common/types.h"

namespace cbt::analysis {

enum class InvariantKind {
  kParentLoop,         // parent-pointer walk revisited a router
  kDetachedSubtree,    // walk ended at a parentless non-primary-core router
  kBrokenParentLink,   // parent address: dead node, off-tree, or unknown
  kAsymmetricChild,    // child entry without reciprocal parent state
  kDuplicateChild,     // same child address recorded twice in one entry
  kMemberLanDetached,  // LAN with IGMP presence but no on-tree DR
  kStaleState,         // non-anchor state for a group with no members
  kStaleAnchor,        // primary-core claim contradicting the directory
};

const char* InvariantKindName(InvariantKind kind);

struct Violation {
  InvariantKind kind;
  Ipv4Address group;
  /// Offending router (kMemberLanDetached reports the LAN's subnet via
  /// `subnet` instead; `node` is then invalid).
  NodeId node;
  SubnetId subnet;
  std::string detail;

  std::string Describe() const;
};

struct AuditReport {
  SimTime at = 0;
  std::size_t groups_checked = 0;
  std::size_t routers_on_tree = 0;
  /// Pending (transient) joins outstanding at audit time. Not violations —
  /// soft-state refreshes legitimately open short-lived joins — but useful
  /// to distinguish "converged" from "quiet mid-handshake".
  std::size_t transient_joins = 0;
  std::vector<Violation> violations;

  bool Clean() const { return violations.empty(); }
  std::size_t CountOf(InvariantKind kind) const;
  std::string Summary() const;
};

class InvariantAuditor {
 public:
  explicit InvariantAuditor(core::CbtDomain& domain) : domain_(&domain) {}

  /// Audits every group known to the directory or held in any router FIB.
  AuditReport Audit() const;

  /// Audits a single group into `report`.
  void AuditGroup(Ipv4Address group, AuditReport& report) const;

 private:
  core::CbtDomain* domain_;
};

/// Convergence probe: runs the simulation forward, auditing every
/// `poll_interval`, until a fully clean audit or `deadline` (sim time).
/// Returns the time of the first clean audit, or nullopt if the deadline
/// passed first (the simulator is then positioned at `deadline`).
std::optional<SimTime> RunUntilInvariantsHold(
    core::CbtDomain& domain, SimTime deadline,
    SimDuration poll_interval = kSecond);

}  // namespace cbt::analysis
