#include "analysis/invariant_auditor.h"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

namespace cbt::analysis {
namespace {

using core::CbtDomain;
using core::CbtRouter;
using core::ChildEntry;
using core::FibEntry;

/// A router's view of one group, with liveness folded in: a down or
/// crashed router holds no *effective* state (it can neither forward nor
/// answer echoes), so references to it are dangling.
struct RouterView {
  NodeId id;
  CbtRouter* router = nullptr;
  const FibEntry* entry = nullptr;  // nullptr when off-tree or dead
};

std::string AddrName(const netsim::Simulator& sim, Ipv4Address addr) {
  if (const auto node = sim.FindNodeByAddress(addr)) {
    return sim.node(*node).name + "(" + addr.ToString() + ")";
  }
  return addr.ToString();
}

}  // namespace

const char* InvariantKindName(InvariantKind kind) {
  switch (kind) {
    case InvariantKind::kParentLoop:
      return "parent-loop";
    case InvariantKind::kDetachedSubtree:
      return "detached-subtree";
    case InvariantKind::kBrokenParentLink:
      return "broken-parent-link";
    case InvariantKind::kAsymmetricChild:
      return "asymmetric-child";
    case InvariantKind::kDuplicateChild:
      return "duplicate-child";
    case InvariantKind::kMemberLanDetached:
      return "member-lan-detached";
    case InvariantKind::kStaleState:
      return "stale-state";
    case InvariantKind::kStaleAnchor:
      return "stale-anchor";
  }
  return "?";
}

std::string Violation::Describe() const {
  std::ostringstream os;
  os << InvariantKindName(kind) << " group=" << group.ToString() << " "
     << detail;
  return os.str();
}

std::size_t AuditReport::CountOf(InvariantKind kind) const {
  return static_cast<std::size_t>(
      std::count_if(violations.begin(), violations.end(),
                    [&](const Violation& v) { return v.kind == kind; }));
}

std::string AuditReport::Summary() const {
  std::ostringstream os;
  os << "audit @" << FormatSimTime(at) << ": " << groups_checked << " groups, "
     << routers_on_tree << " on-tree routers, " << transient_joins
     << " transient joins, " << violations.size() << " violations";
  for (const Violation& v : violations) os << "\n  " << v.Describe();
  return os.str();
}

AuditReport InvariantAuditor::Audit() const {
  AuditReport report;
  report.at = domain_->sim().Now();

  std::set<Ipv4Address> groups;
  for (const Ipv4Address g : domain_->directory().Groups()) groups.insert(g);
  for (const NodeId id : domain_->router_ids()) {
    for (const auto& [g, entry] : domain_->router(id).fib()) groups.insert(g);
  }
  for (const Ipv4Address g : groups) AuditGroup(g, report);
  return report;
}

void InvariantAuditor::AuditGroup(Ipv4Address group,
                                  AuditReport& report) const {
  ++report.groups_checked;
  netsim::Simulator& sim = domain_->sim();

  const auto note = [&](InvariantKind kind, NodeId node, std::string detail) {
    OBS_TRACE(sim.trace(), .time = sim.Now(),
              .kind = obs::TraceKind::kInvariant,
              .name = InvariantKindName(kind), .node = node.value(),
              .group = group);
    report.violations.push_back(
        Violation{kind, group, node, SubnetId{}, std::move(detail)});
  };

  // Collect every live router's effective state for this group.
  std::map<NodeId, RouterView> views;
  bool members_anywhere = false;
  for (const NodeId id : domain_->router_ids()) {
    CbtRouter& r = domain_->router(id);
    RouterView view;
    view.id = id;
    view.router = &r;
    const bool dead = !sim.node(id).up || r.IsCrashed();
    view.entry = dead ? nullptr : r.fib().Find(group);
    if (view.entry != nullptr) ++report.routers_on_tree;
    if (!dead && r.IsPending(group)) ++report.transient_joins;
    if (!dead && r.igmp().AnyMembers(group)) members_anywhere = true;
    views[id] = view;
  }

  const auto entry_of = [&](NodeId id) -> const FibEntry* {
    const auto it = views.find(id);
    return it == views.end() ? nullptr : it->second.entry;
  };

  // --- Per-router structural checks -----------------------------------
  for (const auto& [id, view] : views) {
    if (view.entry == nullptr) continue;
    const FibEntry& entry = *view.entry;
    const std::string& name = sim.node(id).name;

    // Duplicate children (packet duplication / join races must collapse).
    std::set<Ipv4Address> child_addrs;
    for (const ChildEntry& child : entry.children) {
      if (!child_addrs.insert(child.address).second) {
        note(InvariantKind::kDuplicateChild, id,
             name + " records child " + child.address.ToString() + " twice");
      }
    }

    // Upstream symmetry: our parent must be live, on-tree, and must list
    // our interface address as a child.
    if (entry.HasParent()) {
      const auto parent_node = sim.FindNodeByAddress(entry.parent_address);
      const FibEntry* parent_entry =
          parent_node ? entry_of(*parent_node) : nullptr;
      if (!parent_node) {
        note(InvariantKind::kBrokenParentLink, id,
             name + " parent " + entry.parent_address.ToString() +
                 " resolves to no node");
      } else if (parent_entry == nullptr) {
        note(InvariantKind::kBrokenParentLink, id,
             name + " parent " + AddrName(sim, entry.parent_address) +
                 " is dead or off-tree");
      } else {
        const Ipv4Address my_addr =
            sim.interface(id, entry.parent_vif).address;
        if (parent_entry->FindChild(my_addr) == nullptr) {
          note(InvariantKind::kAsymmetricChild, id,
               name + " has parent " + AddrName(sim, entry.parent_address) +
                   " but is not recorded as its child");
        }
      }
    } else if (!entry.is_primary_core) {
      // A parentless non-primary-core router is a detached subtree root
      // (reconnect in flight, or an orphaned secondary-core anchor).
      note(InvariantKind::kDetachedSubtree, id,
           name + " has no parent and is not the primary core");
    }

    // Downstream symmetry: every recorded child must hold reciprocal
    // parent state pointing back at us.
    for (const ChildEntry& child : entry.children) {
      const auto child_node = sim.FindNodeByAddress(child.address);
      const FibEntry* child_entry =
          child_node ? entry_of(*child_node) : nullptr;
      if (!child_node || child_entry == nullptr) {
        note(InvariantKind::kAsymmetricChild, id,
             name + " records child " + AddrName(sim, child.address) +
                 " which is dead or off-tree");
        continue;
      }
      const Ipv4Address my_addr = sim.interface(id, child.vif).address;
      if (child_entry->parent_address != my_addr) {
        note(InvariantKind::kAsymmetricChild, id,
             name + " records child " + AddrName(sim, child.address) +
                 " whose parent is " +
                 AddrName(sim, child_entry->parent_address));
      }
    }

    // Stale state: with no member anywhere, only the primary core keeps
    // anchoring state once teardown has run its course.
    if (!members_anywhere && !entry.is_primary_core) {
      note(InvariantKind::kStaleState, id,
           name + " holds state for the memberless group");
    }

    // Anchor consistency: the primary-core claim must match the published
    // mapping. A replaced core list (live migration) makes the old anchor
    // stale the moment the directory flips; reconciliation must clear it.
    if (entry.is_primary_core && domain_->directory().Knows(group)) {
      const auto primary = domain_->directory().PrimaryCore(group);
      const auto owner =
          primary ? sim.FindNodeByAddress(*primary) : std::nullopt;
      if (owner.has_value() && *owner != id) {
        note(InvariantKind::kStaleAnchor, id,
             name + " anchors as primary but the directory primary is " +
                 AddrName(sim, *primary));
      }
    }
  }

  // --- Rootedness / loop detection ------------------------------------
  // Parent-pointer walk from every on-tree router must reach the anchor.
  // Broken links and detached roots were reported above; here we only
  // catch cycles. A cycle is reported once, attributed to its
  // lowest-numbered member.
  for (const auto& [start, view] : views) {
    if (view.entry == nullptr) continue;
    std::vector<NodeId> path;
    std::set<NodeId> seen;
    NodeId cur = start;
    const FibEntry* cur_entry = view.entry;
    while (cur_entry != nullptr && cur_entry->HasParent()) {
      path.push_back(cur);
      seen.insert(cur);
      const auto next = sim.FindNodeByAddress(cur_entry->parent_address);
      if (!next) break;
      if (seen.contains(*next)) {
        // Cycle: the portion of `path` from *next onward.
        const auto cycle_start = std::find(path.begin(), path.end(), *next);
        const NodeId lowest = *std::min_element(cycle_start, path.end());
        if (start == lowest) {
          std::ostringstream os;
          os << "forwarding loop:";
          for (auto it = cycle_start; it != path.end(); ++it) {
            os << " " << sim.node(*it).name;
          }
          note(InvariantKind::kParentLoop, start, os.str());
        }
        break;
      }
      cur = *next;
      cur_entry = entry_of(cur);
    }
  }

  // --- Member-LAN attachment -------------------------------------------
  // Every live multi-access subnet with IGMP presence needs an on-tree DR.
  for (std::size_t s = 0; s < sim.subnet_count(); ++s) {
    const SubnetId sid(static_cast<std::int32_t>(s));
    const netsim::SubnetRecord& subnet = sim.subnet(sid);
    if (!subnet.multi_access || !subnet.up) continue;
    bool present = false;
    bool served = false;
    for (const auto& [node, vif] : subnet.attachments) {
      const auto it = views.find(node);
      if (it == views.end()) continue;  // host attachment
      const RouterView& rv = it->second;
      if (!sim.node(node).up || rv.router->IsCrashed()) continue;
      if (!sim.interface(node, vif).up) continue;
      if (rv.router->igmp().HasMembers(vif, group)) present = true;
      if (rv.entry != nullptr && rv.router->IsSubnetDr(group, vif)) {
        served = true;
      }
    }
    if (present && !served) {
      OBS_TRACE(sim.trace(), .time = sim.Now(),
                .kind = obs::TraceKind::kInvariant,
                .name = InvariantKindName(InvariantKind::kMemberLanDetached),
                .group = group,
                .arg_a = static_cast<std::uint64_t>(
                    static_cast<std::int64_t>(sid.value())));
      report.violations.push_back(Violation{
          InvariantKind::kMemberLanDetached, group, NodeId{}, sid,
          "LAN " + subnet.name + " has members but no on-tree DR"});
    }
  }
}

std::optional<SimTime> RunUntilInvariantsHold(core::CbtDomain& domain,
                                              SimTime deadline,
                                              SimDuration poll_interval) {
  InvariantAuditor auditor(domain);
  netsim::Simulator& sim = domain.sim();
  for (;;) {
    if (auditor.Audit().Clean()) return sim.Now();
    if (sim.Now() >= deadline) return std::nullopt;
    sim.RunUntil(std::min(deadline, sim.Now() + poll_interval));
  }
}

}  // namespace cbt::analysis
