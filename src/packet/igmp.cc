#include "packet/igmp.h"

#include "common/checksum.h"

namespace cbt::packet {
namespace {

constexpr std::size_t kBasicSize = 8;        // type, code, checksum, group
constexpr std::size_t kCoreReportFixed = 12;  // + version/target/count word
constexpr std::size_t kMaxReportCores = 8;

}  // namespace

std::vector<std::uint8_t> IgmpMessage::Encode() const {
  BufferWriter out(kCoreReportFixed + 4 * cores.size());
  out.WriteU8(static_cast<std::uint8_t>(type));
  out.WriteU8(code);
  const std::size_t checksum_offset = out.size();
  out.WriteU16(0);
  out.WriteAddress(group);
  if (IsCoreReport()) {
    out.WriteU8(version);
    out.WriteU8(target_core_index);
    out.WriteU16(static_cast<std::uint16_t>(cores.size()));
    for (const Ipv4Address& c : cores) out.WriteAddress(c);
  }
  out.PatchU16(checksum_offset, InternetChecksum(out.View()));
  return std::move(out).Take();
}

std::optional<IgmpMessage> IgmpMessage::Decode(
    std::span<const std::uint8_t> bytes) {
  if (bytes.size() < kBasicSize) return std::nullopt;
  if (!VerifyInternetChecksum(bytes)) return std::nullopt;
  BufferReader in(bytes);
  IgmpMessage msg;
  const std::uint8_t raw_type = in.ReadU8();
  switch (static_cast<IgmpType>(raw_type)) {
    case IgmpType::kMembershipQuery:
    case IgmpType::kMembershipReport:
    case IgmpType::kLeaveGroup:
    case IgmpType::kRpCoreReport:
    case IgmpType::kJoinConfirmation:
      msg.type = static_cast<IgmpType>(raw_type);
      break;
    default:
      return std::nullopt;
  }
  msg.code = in.ReadU8();
  in.ReadU16();  // checksum, verified above
  msg.group = in.ReadAddress();
  if (msg.IsCoreReport()) {
    if (bytes.size() < kCoreReportFixed) return std::nullopt;
    msg.version = in.ReadU8();
    msg.target_core_index = in.ReadU8();
    const std::uint16_t n = in.ReadU16();
    if (n > kMaxReportCores || bytes.size() < kCoreReportFixed + 4u * n) {
      return std::nullopt;
    }
    if (msg.target_core_index >= n) return std::nullopt;
    msg.cores.reserve(n);
    for (std::uint16_t i = 0; i < n; ++i) msg.cores.push_back(in.ReadAddress());
  }
  if (!in.ok()) return std::nullopt;
  return msg;
}

}  // namespace cbt::packet
