// IGMP messages as CBT consumes them.
//
// The spec assumes IGMPv3 between hosts and routers, and its Appendix
// amends the IGMPv3 PIM RP-REPORT into the RP/Core-Report (Figure 10):
// the message a joining host multicasts to carry the ordered <core,group>
// list to the subnet's D-DR. We implement:
//   * classic query / report / leave (v2 wire format, enough for the
//     querier-election and member-presence machinery CBT needs);
//   * the RP/Core-Report with the "target core" index amendment.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "common/buffer.h"
#include "common/types.h"

namespace cbt::packet {

enum class IgmpType : std::uint8_t {
  kMembershipQuery = 0x11,   // general (group 0.0.0.0) or group-specific
  kMembershipReport = 0x16,  // v2-style report
  kLeaveGroup = 0x17,
  kRpCoreReport = 0x63,  // appendix amendment of the IGMPv3 PIM RP-REPORT
  /// Section 2.5 (-03) proposes that after a successful join "IGMP (v3)
  /// group multicasts a notification across the subnet indicating to
  /// member hosts that the delivery tree has been joined successfully".
  /// No wire format was ever specified; we use the basic 8-byte layout.
  kJoinConfirmation = 0x64,
};

/// Code value distinguishing CBT core reports from PIM RP reports
/// (the appendix's "new code value").
constexpr std::uint8_t kCoreReportCodeCbt = 1;

struct IgmpMessage {
  IgmpType type = IgmpType::kMembershipQuery;
  std::uint8_t code = 0;  // max-response-time for queries; report kind here
  /// Group being queried/reported/left; 0.0.0.0 for a general query.
  Ipv4Address group;

  // --- RP/Core-Report extension (Figure 10 + appendix amendments) -------
  std::uint8_t version = 3;
  /// "the reserved field ... renamed the target core field, to contain the
  /// numeric value of the position of the target core in the RP/Core list".
  std::uint8_t target_core_index = 0;
  /// Ordered candidate core list; index 0 is the primary core.
  std::vector<Ipv4Address> cores;

  bool IsCoreReport() const { return type == IgmpType::kRpCoreReport; }

  std::vector<std::uint8_t> Encode() const;
  static std::optional<IgmpMessage> Decode(std::span<const std::uint8_t> bytes);
};

}  // namespace cbt::packet
