// CBT control packets, spec sections 8.2-8.4 (Figures 8 and 9).
//
// Control messages travel inside UDP (Figure 2): primary maintenance
// messages (join/ack/nack, quit/ack, flush) on port 7777, auxiliary
// messages (echo request/reply) on port 7778.
//
// One codec covers both encodings:
//  * the standard control header (Figure 8) with the ordered core list —
//    "JOIN-REQUESTs carry the identity of all cores for the group";
//  * the echo encoding (Figure 9), where the "# cores" byte becomes the
//    "aggregate" flag and the core-list words are replaced by a group-id
//    mask for aggregated keepalives.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/buffer.h"
#include "common/types.h"
#include "packet/cbt_header.h"

namespace cbt::packet {

/// Section 8.3/8.4 message types.
enum class ControlType : std::uint8_t {
  kJoinRequest = 1,
  kJoinAck = 2,
  kJoinNack = 3,
  kQuitRequest = 4,
  kQuitAck = 5,
  kFlushTree = 6,
  kEchoRequest = 7,
  kEchoReply = 8,
  // The -02 draft's core-reachability probe, retained here because the
  // -03 rejoin machinery needs it to avoid tearing down a subtree while
  // chasing an unreachable primary core ("The purpose of this message is
  // to establish core reachability before sending a JOIN-REQUEST").
  kCorePing = 9,
  kPingReply = 10,
};

/// JOIN-REQUEST subcodes (section 8.3.1).
enum class JoinSubcode : std::uint8_t {
  kActiveJoin = 0,     // sender has no children for the group
  kRejoinActive = 1,   // sender has at least one child
  kRejoinNactive = 2,  // loop-detection form, converted on-tree
};

/// JOIN-ACK subcodes (section 8.3.1).
enum class AckSubcode : std::uint8_t {
  kNormal = 0,
  kProxyAck = 1,       // last-hop LAN ack; receiver cancels state (2.6)
  kRejoinNactive = 2,  // primary core acks a NACTIVE rejoin directly
};

/// Spec -02 fixed the core list at 5; -03 made it variable with a count
/// byte. We allow up to 8 and validate on decode.
constexpr std::size_t kMaxCores = 8;

/// Fixed part of the Figure-8 header: word0, len+checksum, group, origin,
/// target core.
constexpr std::size_t kControlFixedSize = 20;

struct ControlPacket {
  std::uint8_t version = kCbtVersion;
  ControlType type = ControlType::kJoinRequest;
  std::uint8_t code = 0;  // subcode, meaning depends on type
  Ipv4Address group;
  /// Originating end-system/router of the request this packet belongs to.
  /// Crucially NOT rewritten when a REJOIN-ACTIVE is converted to
  /// REJOIN-NACTIVE (section 6.3 loop detection).
  Ipv4Address origin;
  /// "desired/actual core affiliation"; the REJOIN-NACTIVE conversion
  /// overwrites this with the converting router's address (section 8.3.1).
  Ipv4Address target_core;
  /// Ordered core list; cores[0] is the primary core.
  std::vector<Ipv4Address> cores;

  // Echo-only fields (Figure 9).
  bool aggregate = false;
  std::uint32_t group_mask = 0;

  JoinSubcode join_subcode() const { return static_cast<JoinSubcode>(code); }
  AckSubcode ack_subcode() const { return static_cast<AckSubcode>(code); }

  bool IsEcho() const {
    return type == ControlType::kEchoRequest ||
           type == ControlType::kEchoReply;
  }

  std::vector<std::uint8_t> Encode() const;
  static std::optional<ControlPacket> Decode(std::span<const std::uint8_t> bytes);

  /// "JOIN-REQUEST type=1 sub=ACTIVE grp=... core=..." for traces.
  std::string Describe() const;
};

const char* ControlTypeName(ControlType type);

}  // namespace cbt::packet
