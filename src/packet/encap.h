// Datagram assembly/disassembly helpers: the encapsulations of Figures
// 2 (control over UDP), 3/6 (CBT-mode data), and plain IGMP/IP datagrams.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "packet/cbt_control.h"
#include "packet/cbt_header.h"
#include "packet/igmp.h"
#include "packet/ipv4.h"

namespace cbt::packet {

// --- Control (Figure 2: IP | UDP | CBT control) ---------------------------

/// Builds IP/UDP/control. Primary messages go to port 7777, echo messages
/// to 7778, chosen from the packet type.
std::vector<std::uint8_t> BuildControlDatagram(Ipv4Address src,
                                               Ipv4Address dst,
                                               const ControlPacket& pkt,
                                               std::uint8_t ttl = kDefaultTtl);

/// Extracts a control packet from a parsed IP datagram; nullopt when the
/// datagram is not CBT control (wrong protocol/port) or fails validation.
std::optional<ControlPacket> ExtractControl(const ParsedDatagram& dgram);

// --- IGMP ------------------------------------------------------------------

/// IGMP messages are link-local: TTL 1, destination a local group.
std::vector<std::uint8_t> BuildIgmpDatagram(Ipv4Address src, Ipv4Address dst,
                                            const IgmpMessage& msg);

std::optional<IgmpMessage> ExtractIgmp(const ParsedDatagram& dgram);

// --- CBT-mode data (Figures 3/6: IP | CBT hdr | original IP | data) --------

/// Encapsulates a complete original IP datagram behind a CBT header.
/// `outer_ttl` is "the length of the corresponding tunnel, or MAX_TTL"
/// (section 5).
std::vector<std::uint8_t> BuildCbtModeDatagram(
    Ipv4Address outer_src, Ipv4Address outer_dst, const CbtDataHeader& hdr,
    std::span<const std::uint8_t> original_datagram,
    std::uint8_t outer_ttl = kDefaultTtl);

struct CbtModeData {
  Ipv4Header outer;
  CbtDataHeader header;
  /// The untouched original IP datagram (still a valid datagram itself).
  std::span<const std::uint8_t> original_datagram;
};

std::optional<CbtModeData> ExtractCbtModeData(const ParsedDatagram& dgram);

/// Encode-once helper for per-hop CBT fan-out: serializes the constant
/// tail (CBT header + original datagram) exactly once, then Build()
/// stamps each target's 20-byte outer IP header (src, dst, checksum)
/// into a copy of the shared template. Output is byte-identical to
/// BuildCbtModeDatagram for every (src, dst) pair, but a fan-out of N
/// targets performs one CBT-header/payload serialization instead of N.
class CbtModeEncoder {
 public:
  CbtModeEncoder(const CbtDataHeader& hdr,
                 std::span<const std::uint8_t> original_datagram,
                 std::uint8_t outer_ttl = kDefaultTtl);

  std::vector<std::uint8_t> Build(Ipv4Address outer_src,
                                  Ipv4Address outer_dst) const;

 private:
  std::vector<std::uint8_t> template_;  // outer header zeroed where per-target
};

// --- Application payload -----------------------------------------------------

/// Builds a native IP multicast data datagram with an opaque payload
/// (protocol kTest), as a sending application would.
std::vector<std::uint8_t> BuildAppDatagram(Ipv4Address src, Ipv4Address group,
                                           std::span<const std::uint8_t> payload,
                                           std::uint8_t ttl = kDefaultTtl);

/// Returns a copy of `datagram` with the IP TTL decremented (checksum
/// re-patched); nullopt when the TTL would expire (<= 1 on arrival).
std::optional<std::vector<std::uint8_t>> WithDecrementedTtl(
    std::span<const std::uint8_t> datagram);

/// Returns a copy of `datagram` with the IP TTL forced to `ttl` — the
/// section 5 "TTL set to one before forwarding" rule for member LANs.
std::vector<std::uint8_t> WithTtl(std::span<const std::uint8_t> datagram,
                                  std::uint8_t ttl);

}  // namespace cbt::packet
