#include "packet/cbt_header.h"

#include "common/checksum.h"

namespace cbt::packet {

void CbtDataHeader::Encode(BufferWriter& out) const {
  const std::size_t start = out.size();
  out.WriteU8(static_cast<std::uint8_t>(version << 4));
  out.WriteU8(static_cast<std::uint8_t>(CbtPacketType::kData));
  out.WriteU8(kCbtDataHeaderSize);
  out.WriteU8(on_tree ? kOnTree : kOffTree);
  const std::size_t checksum_offset = out.size();
  out.WriteU16(0);
  out.WriteU8(ip_ttl);
  out.WriteU8(0);  // unused
  out.WriteAddress(group);
  out.WriteAddress(core);
  out.WriteAddress(origin);
  out.WriteU32(flow_id);
  out.WriteU32(0);  // security fields (T.B.D. in spec)
  out.PatchU16(checksum_offset,
               InternetChecksum(out.View().subspan(start, kCbtDataHeaderSize)));
}

std::optional<CbtDataHeader> CbtDataHeader::Decode(BufferReader& in) {
  if (in.remaining() < kCbtDataHeaderSize) return std::nullopt;
  // Checksum must verify over the exact header bytes.
  // Reconstruct the view from the reader's current window.
  CbtDataHeader h;
  const auto bytes = in.ReadBytes(kCbtDataHeaderSize);
  if (!in.ok()) return std::nullopt;
  if (!VerifyInternetChecksum(bytes)) return std::nullopt;
  BufferReader fields(bytes);
  const std::uint8_t word0 = fields.ReadU8();
  h.version = static_cast<std::uint8_t>(word0 >> 4);
  if (h.version != kCbtVersion) return std::nullopt;
  const auto type = static_cast<CbtPacketType>(fields.ReadU8());
  if (type != CbtPacketType::kData) return std::nullopt;
  const std::uint8_t hdr_length = fields.ReadU8();
  if (hdr_length != kCbtDataHeaderSize) return std::nullopt;
  const std::uint8_t on_tree_byte = fields.ReadU8();
  if (on_tree_byte != kOnTree && on_tree_byte != kOffTree) return std::nullopt;
  h.on_tree = on_tree_byte == kOnTree;
  fields.ReadU16();  // checksum already verified
  h.ip_ttl = fields.ReadU8();
  fields.ReadU8();  // unused
  h.group = fields.ReadAddress();
  h.core = fields.ReadAddress();
  h.origin = fields.ReadAddress();
  h.flow_id = fields.ReadU32();
  fields.ReadU32();  // security
  if (!h.group.IsMulticast()) return std::nullopt;
  return h;
}

std::vector<std::uint8_t> CbtDataHeader::EncodeToBytes() const {
  BufferWriter out(kCbtDataHeaderSize);
  Encode(out);
  return std::move(out).Take();
}

}  // namespace cbt::packet
