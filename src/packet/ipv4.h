// Simulated IPv4 header (RFC 791, no options) plus the IP protocol numbers
// the CBT stack uses. Every packet in the simulator is a real byte-encoded
// IPv4 datagram; routers parse and re-encode at each hop, so TTL and
// checksum behaviour is observable end to end.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "common/buffer.h"
#include "common/types.h"

namespace cbt::packet {

/// IP protocol numbers. 7 is IANA-assigned to CBT; 253 (RFC 3692 range) is
/// used for example application payloads.
enum class IpProtocol : std::uint8_t {
  kIgmp = 2,
  kCbt = 7,
  kUdp = 17,
  kTest = 253,
};

constexpr std::uint8_t kDefaultTtl = 64;
constexpr std::size_t kIpv4HeaderSize = 20;

struct Ipv4Header {
  std::uint8_t tos = 0;
  std::uint16_t total_length = 0;  // filled by Encode from payload size
  std::uint16_t identification = 0;
  std::uint8_t ttl = kDefaultTtl;
  IpProtocol protocol = IpProtocol::kTest;
  Ipv4Address src;
  Ipv4Address dst;

  /// Appends the 20-byte header (checksum computed) for a payload of
  /// `payload_size` bytes.
  void Encode(BufferWriter& out, std::size_t payload_size) const;

  /// Parses and checksum-verifies a header; advances `in` past it.
  static std::optional<Ipv4Header> Decode(BufferReader& in);
};

/// A parsed datagram: header plus a borrowed view of the payload bytes.
struct ParsedDatagram {
  Ipv4Header ip;
  std::span<const std::uint8_t> payload;
};

/// Parses one datagram (header checksum + length validated).
std::optional<ParsedDatagram> ParseDatagram(std::span<const std::uint8_t> bytes);

/// Builds a complete datagram around `payload`.
std::vector<std::uint8_t> BuildDatagram(const Ipv4Header& header,
                                        std::span<const std::uint8_t> payload);

// ---------------------------------------------------------------------------
// UDP (checksum optional per RFC 768; we transmit 0 = unused, the CBT
// control payload carries its own checksum).
// ---------------------------------------------------------------------------

constexpr std::uint16_t kCbtPrimaryPort = 7777;    // section 3
constexpr std::uint16_t kCbtAuxiliaryPort = 7778;  // section 3
constexpr std::size_t kUdpHeaderSize = 8;

struct UdpHeader {
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;

  void Encode(BufferWriter& out, std::size_t payload_size) const;
  static std::optional<UdpHeader> Decode(BufferReader& in);
};

}  // namespace cbt::packet
