#include "packet/cbt_control.h"

#include <cstdio>

#include "common/checksum.h"

namespace cbt::packet {
namespace {

bool IsValidType(std::uint8_t t) {
  return t >= static_cast<std::uint8_t>(ControlType::kJoinRequest) &&
         t <= static_cast<std::uint8_t>(ControlType::kPingReply);
}

}  // namespace

// Figure 8 layout:
//   word 0: vers(4) unused(4) | type(8) | code(8) | #cores(8)
//   word 1: hdr length(16) | checksum(16)
//   group identifier | packet origin | target core address | core #1..#N
// For echo messages (Figure 9) the #cores byte is the aggregate flag and a
// single group-id-mask word stands in for the core list.
std::vector<std::uint8_t> ControlPacket::Encode() const {
  BufferWriter out(kControlFixedSize + 4 * cores.size());
  out.WriteU8(static_cast<std::uint8_t>(version << 4));
  out.WriteU8(static_cast<std::uint8_t>(type));
  out.WriteU8(code);
  if (IsEcho()) {
    out.WriteU8(aggregate ? 0xFF : 0x00);
  } else {
    out.WriteU8(static_cast<std::uint8_t>(cores.size()));
  }
  const std::size_t length =
      IsEcho() ? kControlFixedSize + 4  // group-mask word replaces core list
               : kControlFixedSize + 4 * cores.size();
  out.WriteU16(static_cast<std::uint16_t>(length));
  const std::size_t checksum_offset = out.size();
  out.WriteU16(0);
  out.WriteAddress(group);
  out.WriteAddress(origin);
  out.WriteAddress(target_core);
  if (IsEcho()) {
    out.WriteU32(group_mask);
  } else {
    for (const Ipv4Address& c : cores) out.WriteAddress(c);
  }
  out.PatchU16(checksum_offset, InternetChecksum(out.View()));
  return std::move(out).Take();
}

std::optional<ControlPacket> ControlPacket::Decode(
    std::span<const std::uint8_t> bytes) {
  if (bytes.size() < kControlFixedSize) return std::nullopt;
  BufferReader peek(bytes);
  peek.Skip(4);
  const std::uint16_t length = peek.ReadU16();
  if (!peek.ok() || length < kControlFixedSize || length > bytes.size()) {
    return std::nullopt;
  }
  if (!VerifyInternetChecksum(bytes.subspan(0, length))) return std::nullopt;

  BufferReader in(bytes.subspan(0, length));
  ControlPacket pkt;
  const std::uint8_t word0 = in.ReadU8();
  pkt.version = static_cast<std::uint8_t>(word0 >> 4);
  if (pkt.version != kCbtVersion) return std::nullopt;
  const std::uint8_t raw_type = in.ReadU8();
  if (!IsValidType(raw_type)) return std::nullopt;
  pkt.type = static_cast<ControlType>(raw_type);
  pkt.code = in.ReadU8();
  const std::uint8_t count_or_aggregate = in.ReadU8();
  in.ReadU16();  // length, consumed above
  in.ReadU16();  // checksum, verified above
  pkt.group = in.ReadAddress();
  pkt.origin = in.ReadAddress();
  pkt.target_core = in.ReadAddress();

  if (pkt.IsEcho()) {
    if (count_or_aggregate != 0x00 && count_or_aggregate != 0xFF) {
      return std::nullopt;
    }
    if (length != kControlFixedSize + 4) return std::nullopt;
    pkt.aggregate = count_or_aggregate == 0xFF;
    pkt.group_mask = in.ReadU32();
  } else {
    const std::size_t n = count_or_aggregate;
    if (n > kMaxCores) return std::nullopt;
    if (length != kControlFixedSize + 4 * n) return std::nullopt;
    pkt.cores.reserve(n);
    for (std::size_t i = 0; i < n; ++i) pkt.cores.push_back(in.ReadAddress());
  }
  if (!in.ok()) return std::nullopt;
  return pkt;
}

const char* ControlTypeName(ControlType type) {
  switch (type) {
    case ControlType::kJoinRequest: return "JOIN-REQUEST";
    case ControlType::kJoinAck: return "JOIN-ACK";
    case ControlType::kJoinNack: return "JOIN-NACK";
    case ControlType::kQuitRequest: return "QUIT-REQUEST";
    case ControlType::kQuitAck: return "QUIT-ACK";
    case ControlType::kFlushTree: return "FLUSH-TREE";
    case ControlType::kEchoRequest: return "CBT-ECHO-REQUEST";
    case ControlType::kEchoReply: return "CBT-ECHO-REPLY";
    case ControlType::kCorePing: return "CBT-CORE-PING";
    case ControlType::kPingReply: return "CBT-PING-REPLY";
  }
  return "?";
}

std::string ControlPacket::Describe() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "%s code=%u grp=%s origin=%s core=%s",
                ControlTypeName(type), code, group.ToString().c_str(),
                origin.ToString().c_str(), target_core.ToString().c_str());
  return buf;
}

}  // namespace cbt::packet
