#include "packet/ipv4.h"

#include "common/checksum.h"

namespace cbt::packet {

void Ipv4Header::Encode(BufferWriter& out, std::size_t payload_size) const {
  const std::size_t start = out.size();
  out.WriteU8(0x45);  // version 4, IHL 5 (no options)
  out.WriteU8(tos);
  out.WriteU16(static_cast<std::uint16_t>(kIpv4HeaderSize + payload_size));
  out.WriteU16(identification);
  out.WriteU16(0);  // flags / fragment offset: fragmentation not modelled
  out.WriteU8(ttl);
  out.WriteU8(static_cast<std::uint8_t>(protocol));
  const std::size_t checksum_offset = out.size();
  out.WriteU16(0);
  out.WriteAddress(src);
  out.WriteAddress(dst);
  const std::uint16_t sum =
      InternetChecksum(out.View().subspan(start, kIpv4HeaderSize));
  out.PatchU16(checksum_offset, sum);
}

std::optional<Ipv4Header> Ipv4Header::Decode(BufferReader& in) {
  if (in.remaining() < kIpv4HeaderSize) return std::nullopt;
  // Verify checksum over the raw header bytes before consuming fields.
  // position() is the current offset into the original span; rebuild a view.
  Ipv4Header h;
  const std::uint8_t ver_ihl = in.ReadU8();
  if ((ver_ihl >> 4) != 4 || (ver_ihl & 0x0F) != 5) return std::nullopt;
  h.tos = in.ReadU8();
  h.total_length = in.ReadU16();
  h.identification = in.ReadU16();
  const std::uint16_t flags_frag = in.ReadU16();
  if (flags_frag != 0) return std::nullopt;  // fragmentation unsupported
  h.ttl = in.ReadU8();
  h.protocol = static_cast<IpProtocol>(in.ReadU8());
  in.ReadU16();  // checksum validated at ParseDatagram level
  h.src = in.ReadAddress();
  h.dst = in.ReadAddress();
  if (!in.ok()) return std::nullopt;
  return h;
}

std::optional<ParsedDatagram> ParseDatagram(
    std::span<const std::uint8_t> bytes) {
  if (bytes.size() < kIpv4HeaderSize) return std::nullopt;
  if (!VerifyInternetChecksum(bytes.subspan(0, kIpv4HeaderSize))) {
    return std::nullopt;
  }
  BufferReader reader(bytes);
  auto header = Ipv4Header::Decode(reader);
  if (!header) return std::nullopt;
  if (header->total_length < kIpv4HeaderSize ||
      header->total_length > bytes.size()) {
    return std::nullopt;
  }
  return ParsedDatagram{
      *header, bytes.subspan(kIpv4HeaderSize,
                             header->total_length - kIpv4HeaderSize)};
}

std::vector<std::uint8_t> BuildDatagram(const Ipv4Header& header,
                                        std::span<const std::uint8_t> payload) {
  BufferWriter out(kIpv4HeaderSize + payload.size());
  header.Encode(out, payload.size());
  out.WriteBytes(payload);
  return std::move(out).Take();
}

void UdpHeader::Encode(BufferWriter& out, std::size_t payload_size) const {
  out.WriteU16(src_port);
  out.WriteU16(dst_port);
  out.WriteU16(static_cast<std::uint16_t>(kUdpHeaderSize + payload_size));
  out.WriteU16(0);  // checksum unused; CBT payload self-checksums
}

std::optional<UdpHeader> UdpHeader::Decode(BufferReader& in) {
  UdpHeader h;
  h.src_port = in.ReadU16();
  h.dst_port = in.ReadU16();
  const std::uint16_t length = in.ReadU16();
  in.ReadU16();  // checksum (0 = unused)
  if (!in.ok() || length < kUdpHeaderSize) return std::nullopt;
  if (length - kUdpHeaderSize > in.remaining()) return std::nullopt;
  return h;
}

}  // namespace cbt::packet
