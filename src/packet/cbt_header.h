// The CBT data header, spec section 8.1 (Figure 7).
//
// Used in "CBT mode": data packets crossing tree branches are encapsulated
//   [ encaps IP hdr | CBT hdr | original IP hdr | data ]  (Figure 3/6)
// The header carries the on-tree marker for data-loop suppression
// (section 7), the origin's TTL, the group, and the target core.
//
// Layout note: Figure 7 draws the first word as
//   vers(4) | unused(4) | type(8) | hdr length(8) | on-tree/unused(8)
// and documents on-tree values as full-byte 0x00 / 0xff, so we implement
// the trailing "on-tree|unused" pair as one byte.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "common/buffer.h"
#include "common/types.h"

namespace cbt::packet {

/// Values of the type field shared by data and control headers.
enum class CbtPacketType : std::uint8_t {
  kData = 0,
  kControl = 1,
};

/// Section 7: on-tree is 0x00 until the packet first reaches an on-tree
/// router, 0xff afterwards, and never changes back.
constexpr std::uint8_t kOffTree = 0x00;
constexpr std::uint8_t kOnTree = 0xFF;

constexpr std::uint8_t kCbtVersion = 1;

/// 7 words: word0, checksum word, group, core, origin, flow id,
/// security (T.B.D. — carried as one zero word so hdr length is honest).
constexpr std::size_t kCbtDataHeaderSize = 28;

struct CbtDataHeader {
  std::uint8_t version = kCbtVersion;
  bool on_tree = false;
  /// "TTL value gleaned from the IP header where the packet originated",
  /// decremented by each CBT router (section 5/8.1).
  std::uint8_t ip_ttl = 0;
  Ipv4Address group;
  /// Target core, inserted by the first-hop router of the origin (the spec
  /// says host, but see 5.1: host changes are "extremely undesirable", so
  /// the encapsulating D-DR fills it in).
  Ipv4Address core;
  Ipv4Address origin;
  std::uint32_t flow_id = 0;  // T.B.D. in the spec; carried verbatim

  void Encode(BufferWriter& out) const;

  /// Decodes + checksum-verifies; advances the reader past the header.
  static std::optional<CbtDataHeader> Decode(BufferReader& in);

  std::vector<std::uint8_t> EncodeToBytes() const;
};

}  // namespace cbt::packet
