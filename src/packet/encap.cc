#include "packet/encap.h"

#include "common/checksum.h"

namespace cbt::packet {

std::vector<std::uint8_t> BuildControlDatagram(Ipv4Address src,
                                               Ipv4Address dst,
                                               const ControlPacket& pkt,
                                               std::uint8_t ttl) {
  const std::vector<std::uint8_t> control = pkt.Encode();
  const bool auxiliary = pkt.IsEcho() ||
                         pkt.type == ControlType::kCorePing ||
                         pkt.type == ControlType::kPingReply;
  const std::uint16_t port = auxiliary ? kCbtAuxiliaryPort : kCbtPrimaryPort;

  BufferWriter out(kIpv4HeaderSize + kUdpHeaderSize + control.size());
  Ipv4Header ip;
  ip.src = src;
  ip.dst = dst;
  ip.ttl = ttl;
  ip.protocol = IpProtocol::kUdp;
  ip.Encode(out, kUdpHeaderSize + control.size());
  UdpHeader udp{port, port};
  udp.Encode(out, control.size());
  out.WriteBytes(control);
  return std::move(out).Take();
}

std::optional<ControlPacket> ExtractControl(const ParsedDatagram& dgram) {
  if (dgram.ip.protocol != IpProtocol::kUdp) return std::nullopt;
  BufferReader in(dgram.payload);
  const auto udp = UdpHeader::Decode(in);
  if (!udp) return std::nullopt;
  if (udp->dst_port != kCbtPrimaryPort && udp->dst_port != kCbtAuxiliaryPort) {
    return std::nullopt;
  }
  return ControlPacket::Decode(dgram.payload.subspan(kUdpHeaderSize));
}

std::vector<std::uint8_t> BuildIgmpDatagram(Ipv4Address src, Ipv4Address dst,
                                            const IgmpMessage& msg) {
  const std::vector<std::uint8_t> body = msg.Encode();
  BufferWriter out(kIpv4HeaderSize + body.size());
  Ipv4Header ip;
  ip.src = src;
  ip.dst = dst;
  ip.ttl = 1;  // IGMP never leaves the subnet
  ip.protocol = IpProtocol::kIgmp;
  ip.Encode(out, body.size());
  out.WriteBytes(body);
  return std::move(out).Take();
}

std::optional<IgmpMessage> ExtractIgmp(const ParsedDatagram& dgram) {
  if (dgram.ip.protocol != IpProtocol::kIgmp) return std::nullopt;
  return IgmpMessage::Decode(dgram.payload);
}

std::vector<std::uint8_t> BuildCbtModeDatagram(
    Ipv4Address outer_src, Ipv4Address outer_dst, const CbtDataHeader& hdr,
    std::span<const std::uint8_t> original_datagram, std::uint8_t outer_ttl) {
  BufferWriter out(kIpv4HeaderSize + kCbtDataHeaderSize +
                   original_datagram.size());
  Ipv4Header ip;
  ip.src = outer_src;
  ip.dst = outer_dst;
  ip.ttl = outer_ttl;
  ip.protocol = IpProtocol::kCbt;
  ip.Encode(out, kCbtDataHeaderSize + original_datagram.size());
  hdr.Encode(out);
  out.WriteBytes(original_datagram);
  return std::move(out).Take();
}

CbtModeEncoder::CbtModeEncoder(const CbtDataHeader& hdr,
                               std::span<const std::uint8_t> original_datagram,
                               std::uint8_t outer_ttl)
    : template_(BuildCbtModeDatagram(Ipv4Address{}, Ipv4Address{}, hdr,
                                     original_datagram, outer_ttl)) {}

std::vector<std::uint8_t> CbtModeEncoder::Build(Ipv4Address outer_src,
                                                Ipv4Address outer_dst) const {
  std::vector<std::uint8_t> out = template_;
  const std::uint32_t src = outer_src.bits();
  const std::uint32_t dst = outer_dst.bits();
  out[12] = static_cast<std::uint8_t>(src >> 24);
  out[13] = static_cast<std::uint8_t>(src >> 16);
  out[14] = static_cast<std::uint8_t>(src >> 8);
  out[15] = static_cast<std::uint8_t>(src);
  out[16] = static_cast<std::uint8_t>(dst >> 24);
  out[17] = static_cast<std::uint8_t>(dst >> 16);
  out[18] = static_cast<std::uint8_t>(dst >> 8);
  out[19] = static_cast<std::uint8_t>(dst);
  out[10] = 0;
  out[11] = 0;
  const std::uint16_t sum = InternetChecksum(
      std::span<const std::uint8_t>(out).subspan(0, kIpv4HeaderSize));
  out[10] = static_cast<std::uint8_t>(sum >> 8);
  out[11] = static_cast<std::uint8_t>(sum);
  return out;
}

std::optional<CbtModeData> ExtractCbtModeData(const ParsedDatagram& dgram) {
  if (dgram.ip.protocol != IpProtocol::kCbt) return std::nullopt;
  BufferReader in(dgram.payload);
  const auto hdr = CbtDataHeader::Decode(in);
  if (!hdr) return std::nullopt;
  const auto inner = dgram.payload.subspan(kCbtDataHeaderSize);
  // The inner payload must itself be a well-formed IP datagram.
  if (!ParseDatagram(inner)) return std::nullopt;
  return CbtModeData{dgram.ip, *hdr, inner};
}

std::vector<std::uint8_t> BuildAppDatagram(Ipv4Address src, Ipv4Address group,
                                           std::span<const std::uint8_t> payload,
                                           std::uint8_t ttl) {
  BufferWriter out(kIpv4HeaderSize + payload.size());
  Ipv4Header ip;
  ip.src = src;
  ip.dst = group;
  ip.ttl = ttl;
  ip.protocol = IpProtocol::kTest;
  ip.Encode(out, payload.size());
  out.WriteBytes(payload);
  return std::move(out).Take();
}

namespace {

/// Rewrites the TTL byte (offset 8) and re-computes the header checksum.
std::vector<std::uint8_t> PatchTtl(std::span<const std::uint8_t> datagram,
                                   std::uint8_t ttl) {
  std::vector<std::uint8_t> out(datagram.begin(), datagram.end());
  out[8] = ttl;
  out[10] = 0;
  out[11] = 0;
  const std::uint16_t sum = InternetChecksum(
      std::span<const std::uint8_t>(out).subspan(0, kIpv4HeaderSize));
  out[10] = static_cast<std::uint8_t>(sum >> 8);
  out[11] = static_cast<std::uint8_t>(sum);
  return out;
}

}  // namespace

std::optional<std::vector<std::uint8_t>> WithDecrementedTtl(
    std::span<const std::uint8_t> datagram) {
  if (datagram.size() < kIpv4HeaderSize) return std::nullopt;
  const std::uint8_t ttl = datagram[8];
  if (ttl <= 1) return std::nullopt;
  return PatchTtl(datagram, static_cast<std::uint8_t>(ttl - 1));
}

std::vector<std::uint8_t> WithTtl(std::span<const std::uint8_t> datagram,
                                  std::uint8_t ttl) {
  return PatchTtl(datagram, ttl);
}

}  // namespace cbt::packet
