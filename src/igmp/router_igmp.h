// Router-side IGMP engine (the spec's host-facing half of CBT).
//
// Responsibilities, per spec section 2.3:
//  * querier election — at start-up a router sends "two or three
//    IGMP-HOST-MEMBERSHIP-QUERYs in short succession"; the lowest-addressed
//    querier on each subnet wins, and the CBT D-DR is the querier;
//  * group-presence tracking per interface (reports are multicast to the
//    group, so every router on the LAN tracks passively; only the querier
//    transmits queries);
//  * leave latency — on HOST-MEMBERSHIP-LEAVE the querier sends
//    group-specific queries and expires the group if nobody answers
//    "within the required response interval" (section 2.7);
//  * surfacing RP/Core-Reports (the appendix IGMPv3 message) to CBT.
//
// The engine is embedded in a CbtRouter (and in baseline routers); it
// sends through an owner-provided callback and never touches the FIB.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "common/types.h"
#include "netsim/simulator.h"
#include "netsim/timer.h"
#include "packet/igmp.h"

namespace cbt::igmp {

struct IgmpConfig {
  SimDuration query_interval = 60 * kSecond;
  SimDuration query_response_interval = 10 * kSecond;
  /// IGMP robustness variable: lost-report tolerance.
  int robustness = 2;
  /// Section 2.3: queries "in short succession" at start-up.
  int startup_query_count = 2;
  SimDuration startup_query_interval = 5 * kSecond;
  /// Group-specific (leave-triggered) queries.
  int last_member_query_count = 2;
  SimDuration last_member_query_interval = 1 * kSecond;

  SimDuration GroupMembershipTimeout() const {
    return robustness * query_interval + query_response_interval;
  }
  SimDuration OtherQuerierPresentTimeout() const {
    return robustness * query_interval + query_response_interval / 2;
  }
  SimDuration LastMemberTimeout() const {
    return last_member_query_count * last_member_query_interval +
           kSecond;
  }
};

class RouterIgmp {
 public:
  struct Callbacks {
    /// A membership report arrived for `group` on `vif` (new or refresh).
    std::function<void(VifIndex, Ipv4Address group, Ipv4Address reporter,
                       bool newly_present)>
        on_report;
    /// An RP/Core-Report arrived (full message, ordered core list).
    std::function<void(VifIndex, const packet::IgmpMessage&)> on_core_report;
    /// Last member on `vif` timed out / left.
    std::function<void(VifIndex, Ipv4Address group)> on_group_expired;
    /// Transmit an IGMP message out of `vif` to link destination `dst`.
    std::function<void(VifIndex, Ipv4Address dst, const packet::IgmpMessage&)>
        send;
  };

  RouterIgmp(netsim::Simulator& sim, NodeId self, IgmpConfig config,
             Callbacks callbacks);

  /// Kicks off startup queries on every interface. Re-entrant: calling it
  /// again after ShutDown() models a router restart (querier duty is
  /// re-contested from scratch, section 2.3).
  void Start();

  /// Process-crash model: cancels every timer and forgets all learned
  /// state (group presence, querier election). The engine goes silent
  /// until the next Start().
  void ShutDown();

  /// Feed every received IGMP message here (src = IP source address).
  void OnMessage(VifIndex vif, Ipv4Address src, const packet::IgmpMessage& msg);

  /// True when this router is the IGMP querier on `vif` — which, per
  /// section 2.3, also makes it the CBT default DR there.
  bool IsQuerier(VifIndex vif) const;

  /// Current querier's address on the vif's subnet (self or other).
  Ipv4Address QuerierAddress(VifIndex vif) const;

  bool HasMembers(VifIndex vif, Ipv4Address group) const;
  bool AnyMembers(Ipv4Address group) const;
  std::vector<VifIndex> MemberVifs(Ipv4Address group) const;

  /// All groups with presence on at least one interface.
  std::vector<Ipv4Address> PresentGroups() const;

  /// Monotonic counter bumped whenever externally observable state
  /// changes: a group appears or expires on a vif, querier duty flips,
  /// or ShutDown wipes the engine. Consumers that memoize decisions
  /// derived from membership/querier state (the CBT data-plane flow
  /// cache) poll this instead of subscribing to every callback.
  std::uint64_t state_version() const { return state_version_; }

 private:
  struct GroupPresence {
    netsim::Timer expiry;
    bool leave_pending = false;
  };

  struct VifState {
    VifIndex vif = kInvalidVif;
    bool querier = true;
    Ipv4Address other_querier;
    netsim::Timer other_querier_timer;
    netsim::Timer query_timer;
    int startup_queries_left = 0;
    std::map<Ipv4Address, std::unique_ptr<GroupPresence>> groups;
  };

  void SendGeneralQuery(VifState& vs);
  void ScheduleNextQuery(VifState& vs);
  void RefreshGroup(VifState& vs, Ipv4Address group, SimDuration timeout,
                    bool from_leave);
  void HandleQuery(VifState& vs, Ipv4Address src,
                   const packet::IgmpMessage& msg);
  void HandleLeave(VifState& vs, Ipv4Address src, Ipv4Address group);

  const VifState* FindVif(VifIndex vif) const;
  VifState& MustVif(VifIndex vif);
  Ipv4Address MyAddress(VifIndex vif) const;

  netsim::Simulator* sim_;
  NodeId self_;
  IgmpConfig config_;
  Callbacks callbacks_;
  std::vector<std::unique_ptr<VifState>> vifs_;  // index-aligned with node vifs
  std::uint64_t state_version_ = 0;
};

}  // namespace cbt::igmp
