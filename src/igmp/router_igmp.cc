#include "igmp/router_igmp.h"

#include <cassert>

#include "common/logging.h"

namespace cbt::igmp {

using packet::IgmpMessage;
using packet::IgmpType;

RouterIgmp::RouterIgmp(netsim::Simulator& sim, NodeId self, IgmpConfig config,
                       Callbacks callbacks)
    : sim_(&sim), self_(self), config_(config), callbacks_(std::move(callbacks)) {
  const auto& node = sim_->node(self_);
  vifs_.reserve(node.interfaces.size());
  for (const netsim::Interface& iface : node.interfaces) {
    auto vs = std::make_unique<VifState>();
    vs->vif = iface.vif;
    vs->other_querier_timer.BindTo(sim);
    vs->query_timer.BindTo(sim);
    vifs_.push_back(std::move(vs));
  }
}

void RouterIgmp::Start() {
  for (auto& vs : vifs_) {
    vs->startup_queries_left = config_.startup_query_count;
    SendGeneralQuery(*vs);
  }
}

void RouterIgmp::ShutDown() {
  ++state_version_;
  for (auto& vs : vifs_) {
    vs->querier = true;  // restart re-contests the election from scratch
    vs->other_querier = Ipv4Address{};
    vs->other_querier_timer.Cancel();
    vs->query_timer.Cancel();
    vs->startup_queries_left = 0;
    vs->groups.clear();  // GroupPresence destructors cancel expiry timers
  }
}

Ipv4Address RouterIgmp::MyAddress(VifIndex vif) const {
  return sim_->interface(self_, vif).address;
}

void RouterIgmp::SendGeneralQuery(VifState& vs) {
  IgmpMessage query;
  query.type = IgmpType::kMembershipQuery;
  query.code = static_cast<std::uint8_t>(config_.query_response_interval /
                                         (kSecond / 10));  // tenths of seconds
  query.group = Ipv4Address{};  // general query
  callbacks_.send(vs.vif, kAllSystemsGroup, query);
  if (vs.startup_queries_left > 0) --vs.startup_queries_left;
  ScheduleNextQuery(vs);
}

void RouterIgmp::ScheduleNextQuery(VifState& vs) {
  const SimDuration delay = vs.startup_queries_left > 0
                                ? config_.startup_query_interval
                                : config_.query_interval;
  vs.query_timer.Schedule(delay, [this, &vs] {
    if (vs.querier) SendGeneralQuery(vs);
  });
}

void RouterIgmp::OnMessage(VifIndex vif, Ipv4Address src,
                           const IgmpMessage& msg) {
  VifState& vs = MustVif(vif);
  switch (msg.type) {
    case IgmpType::kMembershipQuery:
      HandleQuery(vs, src, msg);
      break;
    case IgmpType::kMembershipReport: {
      const bool newly = !vs.groups.contains(msg.group);
      if (newly) {
        OBS_TRACE(sim_->trace(), .time = sim_->Now(),
                  .kind = obs::TraceKind::kIgmp, .name = "member-appeared",
                  .node = self_.value(), .group = msg.group,
                  .arg_a = static_cast<std::uint64_t>(vif));
      }
      RefreshGroup(vs, msg.group, config_.GroupMembershipTimeout(),
                   /*from_leave=*/false);
      if (callbacks_.on_report) {
        callbacks_.on_report(vif, msg.group, src, newly);
      }
      break;
    }
    case IgmpType::kLeaveGroup:
      HandleLeave(vs, src, msg.group);
      break;
    case IgmpType::kRpCoreReport:
      if (callbacks_.on_core_report) callbacks_.on_core_report(vif, msg);
      break;
    case IgmpType::kJoinConfirmation:
      // Host-facing notification (section 2.5 -03); routers ignore it.
      break;
  }
}

void RouterIgmp::HandleQuery(VifState& vs, Ipv4Address src,
                             const IgmpMessage& msg) {
  // Querier election (section 2.3): yield to a lower-addressed querier.
  const Ipv4Address mine = MyAddress(vs.vif);
  if (src < mine) {
    if (vs.querier) {
      CBT_DEBUG("igmp[%s vif%d]: yielding querier duty to %s",
                sim_->node(self_).name.c_str(), vs.vif,
                src.ToString().c_str());
      OBS_TRACE(sim_->trace(), .time = sim_->Now(),
                .kind = obs::TraceKind::kIgmp, .name = "querier-deposed",
                .node = self_.value(),
                .arg_a = static_cast<std::uint64_t>(vs.vif),
                .arg_b = src.bits());
    }
    if (vs.querier) ++state_version_;
    vs.querier = false;
    vs.other_querier = src;
    vs.query_timer.Cancel();
    vs.other_querier_timer.Schedule(
        config_.OtherQuerierPresentTimeout(), [this, &vs] {
          // The other querier went silent: take over.
          vs.querier = true;
          vs.other_querier = Ipv4Address{};
          ++state_version_;
          OBS_TRACE(sim_->trace(), .time = sim_->Now(),
                    .kind = obs::TraceKind::kIgmp, .name = "querier-elected",
                    .node = self_.value(),
                    .arg_a = static_cast<std::uint64_t>(vs.vif));
          SendGeneralQuery(vs);
        });
  }
  // A group-specific query means the querier is chasing a leave. Every
  // router on the LAN (queriers and non-queriers alike) shortens its
  // expiry for that group to the last-member window; a surviving member's
  // report will stretch it back out. This keeps G-DRs — which track
  // membership passively — in sync with leave latency (section 2.7).
  if (!msg.group.IsUnspecified() && vs.groups.contains(msg.group) &&
      src != mine) {
    RefreshGroup(vs, msg.group, config_.LastMemberTimeout(),
                 /*from_leave=*/true);
  }
}

void RouterIgmp::HandleLeave(VifState& vs, Ipv4Address /*src*/,
                             Ipv4Address group) {
  const auto it = vs.groups.find(group);
  if (it == vs.groups.end()) return;
  if (!vs.querier) return;  // only the querier chases leaves (section 2.7)
  OBS_TRACE(sim_->trace(), .time = sim_->Now(),
            .kind = obs::TraceKind::kIgmp, .name = "leave-heard",
            .node = self_.value(), .group = group,
            .arg_a = static_cast<std::uint64_t>(vs.vif));

  // Send group-specific queries; if no member answers within the response
  // window the group expires.
  for (int i = 0; i < config_.last_member_query_count; ++i) {
    sim_->Schedule(i * config_.last_member_query_interval, [this, &vs, group] {
      if (!vs.groups.contains(group)) return;
      IgmpMessage query;
      query.type = IgmpType::kMembershipQuery;
      query.code = static_cast<std::uint8_t>(config_.last_member_query_interval /
                                             (kSecond / 10));
      query.group = group;
      callbacks_.send(vs.vif, group, query);
    });
  }
  RefreshGroup(vs, group, config_.LastMemberTimeout(), /*from_leave=*/true);
}

void RouterIgmp::RefreshGroup(VifState& vs, Ipv4Address group,
                              SimDuration timeout, bool from_leave) {
  auto& presence = vs.groups[group];
  if (presence == nullptr) {
    presence = std::make_unique<GroupPresence>();
    ++state_version_;
  }
  presence->leave_pending = from_leave;
  presence->expiry.BindTo(*sim_);
  presence->expiry.Schedule(timeout, [this, &vs, group] {
    vs.groups.erase(group);
    ++state_version_;
    CBT_DEBUG("igmp[%s vif%d]: group %s expired",
              sim_->node(self_).name.c_str(), vs.vif,
              group.ToString().c_str());
    OBS_TRACE(sim_->trace(), .time = sim_->Now(),
              .kind = obs::TraceKind::kIgmp, .name = "member-expired",
              .node = self_.value(), .group = group,
              .arg_a = static_cast<std::uint64_t>(vs.vif));
    if (callbacks_.on_group_expired) callbacks_.on_group_expired(vs.vif, group);
  });
}

bool RouterIgmp::IsQuerier(VifIndex vif) const {
  const VifState* vs = FindVif(vif);
  return vs != nullptr && vs->querier;
}

Ipv4Address RouterIgmp::QuerierAddress(VifIndex vif) const {
  const VifState* vs = FindVif(vif);
  if (vs == nullptr) return Ipv4Address{};
  return vs->querier ? MyAddress(vif) : vs->other_querier;
}

bool RouterIgmp::HasMembers(VifIndex vif, Ipv4Address group) const {
  const VifState* vs = FindVif(vif);
  return vs != nullptr && vs->groups.contains(group);
}

bool RouterIgmp::AnyMembers(Ipv4Address group) const {
  for (const auto& vs : vifs_) {
    if (vs->groups.contains(group)) return true;
  }
  return false;
}

std::vector<VifIndex> RouterIgmp::MemberVifs(Ipv4Address group) const {
  std::vector<VifIndex> out;
  for (const auto& vs : vifs_) {
    if (vs->groups.contains(group)) out.push_back(vs->vif);
  }
  return out;
}

std::vector<Ipv4Address> RouterIgmp::PresentGroups() const {
  std::vector<Ipv4Address> out;
  for (const auto& vs : vifs_) {
    for (const auto& [group, presence] : vs->groups) {
      if (std::find(out.begin(), out.end(), group) == out.end()) {
        out.push_back(group);
      }
    }
  }
  return out;
}

const RouterIgmp::VifState* RouterIgmp::FindVif(VifIndex vif) const {
  for (const auto& vs : vifs_) {
    if (vs->vif == vif) return vs.get();
  }
  return nullptr;
}

RouterIgmp::VifState& RouterIgmp::MustVif(VifIndex vif) {
  for (auto& vs : vifs_) {
    if (vs->vif == vif) return *vs;
  }
  assert(false && "unknown vif");
  return *vifs_.front();
}

}  // namespace cbt::igmp
