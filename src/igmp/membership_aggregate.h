// Aggregate host-membership model: one station agent stands in for N
// member hosts on a LAN.
//
// At 10k+ routers the per-host simulation objects — one node, one
// attachment, one HostAgent and one pending-response timer per member —
// dominate both memory and event count. A MembershipAggregate keeps
// per-group member *counts* plus the response deadlines those members
// would have drawn, and drives the router-side IGMP querier/report/leave
// machinery (RouterIgmp) exactly as the individual hosts would have:
// unsolicited report pairs on join (immediate + 1 s robustness repeat),
// HOST-MEMBERSHIP-LEAVE per departing member, randomized suppressed
// responses to general and group-specific queries, RP/Core-Reports for
// IGMPv3. Routers cannot tell the difference — RouterIgmp tracks group
// *presence* per vif and ignores reporter identity (reports are
// multicast to the group; see router_igmp.h).
//
// Two fidelity modes:
//
//  * kExactHostEquivalence — replicates the per-host model's RNG draw
//    sequence and timer semantics member-for-member, so a simulation
//    using one aggregate per LAN produces byte-identical IGMP wire
//    traffic to one using N single-group HostAgents attached in join
//    order (the differential tests pin this). Costs O(members) per
//    general query (one uniform draw per non-pending member, exactly as
//    N hosts would draw) but still collapses N nodes/attachments/timers
//    into one agent and one coalesced timer per group.
//
//  * kCoalesced — the scale mode: per-group counts only. A query draws
//    ONE deadline per group present, distributed as the minimum of n
//    per-member uniforms (inverse transform), because with report
//    suppression the first responder is all the wire usually carries.
//    Everything is O(groups present) per subnet; member count only
//    scales the sampled minimum. Join/leave transients still cost one
//    message (pair) per membership event — faithful control-message
//    accounting under churn is the point of the workload.
//
// The station never hears its own frames (netsim delivers multicast to
// every *other* attachment), so suppression between its own members is
// modelled internally: a report sent at t cancels other members'
// outstanding deadlines when it would have arrived, t + subnet delay —
// members whose deadlines land inside that window still respond, exactly
// like real hosts racing the suppressing report.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <span>
#include <vector>

#include "common/types.h"
#include "netsim/simulator.h"
#include "netsim/timer.h"
#include "packet/igmp.h"

namespace cbt::igmp {

class MembershipAggregate : public netsim::NetworkAgent {
 public:
  enum class Mode {
    kExactHostEquivalence,
    kCoalesced,
  };

  /// Supplies the ordered candidate-core list for a group (empty => no
  /// RP/Core-Report). A callback rather than a GroupDirectory so this
  /// layer does not depend on cbt_core; CbtDomain adapts its directory.
  using CoresFn = std::function<std::vector<Ipv4Address>(Ipv4Address)>;

  /// Supplies the core-list index this station's LAN should target for a
  /// group (the per-LAN partition of a multi-core tree). Optional; 0 when
  /// absent, preserving single-core behaviour.
  using IndexFn = std::function<std::size_t(Ipv4Address)>;

  /// IGMP generation the aggregated hosts speak (mirrors
  /// core::IgmpHostVersion): 1 = no leaves / no core reports, 2 = leaves
  /// but no core reports, 3 = full appendix behaviour.
  MembershipAggregate(netsim::Simulator& sim, NodeId self, Mode mode,
                      CoresFn cores_for = nullptr, IndexFn index_for = nullptr);

  void OnDatagram(VifIndex vif, Ipv4Address link_src, Ipv4Address link_dst,
                  std::span<const std::uint8_t> datagram) override;

  /// Adds one member to `group` using the cores_for list, exactly like
  /// HostAgent::JoinGroup on a fresh host: sends the unsolicited
  /// RP/Core-Report + membership report now and repeats them after 1 s
  /// if the member is still present.
  void Join(Ipv4Address group);

  /// Join with an explicit core list (group's list is set on first join;
  /// later joins reuse it, as every host would fetch the same mapping).
  void JoinWithCores(Ipv4Address group, std::vector<Ipv4Address> cores,
                     std::size_t target_index = 0);

  /// Removes the oldest active member of `group` (membership events are
  /// anonymous; FIFO keeps the exact mode aligned with a per-host driver
  /// that retires its oldest host). Sends HOST-MEMBERSHIP-LEAVE to
  /// 224.0.0.2 for IGMP v2/v3. No-op when the group has no members.
  void Leave(Ipv4Address group);

  std::uint64_t MemberCount(Ipv4Address group) const;
  std::uint64_t TotalMembers() const { return total_members_; }
  std::size_t GroupsPresent() const;

  /// True once a join-confirmation for the group has been seen while
  /// members were present.
  bool JoinConfirmed(Ipv4Address group) const;

  /// Data deliveries credited to members: each delivered datagram counts
  /// once per member of the destination group (what N hosts would have
  /// logged).
  std::uint64_t ReceivedCount(Ipv4Address group) const;

  void set_igmp_version(int version) { version_ = version; }
  int igmp_version() const { return version_; }

  Mode mode() const { return mode_; }
  NodeId id() const { return self_; }
  Ipv4Address address() const { return address_; }

  struct Stats {
    std::uint64_t joins = 0;
    std::uint64_t leaves = 0;
    std::uint64_t reports_sent = 0;
    std::uint64_t core_reports_sent = 0;
    std::uint64_t leaves_sent = 0;
    std::uint64_t queries_seen = 0;
    /// Responses drawn but cancelled by a suppressing report (own
    /// members' or another station's).
    std::uint64_t responses_suppressed = 0;
  };
  const Stats& stats() const { return stats_; }

  void ResetProtocolCounters() override { stats_ = Stats{}; }

 private:
  static constexpr SimTime kNoDeadline = -1;

  /// One aggregated member, in chronological join order across all
  /// groups (exact mode only; coalesced mode keeps counts).
  struct MemberSlot {
    std::uint32_t group_idx = 0;
    bool active = false;
    SimTime deadline = kNoDeadline;  // outstanding query-response time
    /// Join instant: datagram delivery snapshots the attachment list at
    /// send time, so a per-host member attached at t hears nothing sent
    /// strictly before t — nor at exactly t (setup order runs query
    /// sends ahead of same-instant churn joins). The aggregate station,
    /// attached up front, hears everything; it must re-impose that
    /// filter per member to stay draw-for-draw equivalent.
    SimTime joined_at = 0;
  };

  struct GroupState {
    Ipv4Address group;
    std::vector<Ipv4Address> cores;
    std::size_t target_index = 0;
    std::uint64_t active_count = 0;
    bool confirmed = false;
    std::uint64_t received = 0;

    // Exact mode: active slots in join order (indices into slots_;
    // entries popped front-first on Leave, lazily compacted).
    std::vector<std::uint32_t> fifo;
    std::size_t fifo_head = 0;
    // Outstanding response deadlines, min-heap of (deadline, slot).
    // Entries are invalidated by clearing the slot's deadline and
    // skipped on pop.
    std::vector<std::pair<SimTime, std::uint32_t>> outstanding;
    netsim::Timer response_timer;  // fires at the heap minimum
    netsim::Timer cancel_timer;    // earliest suppressing-report arrival
    bool cancel_pending = false;

    // Coalesced mode: the single pending group response.
    SimTime pending_deadline = kNoDeadline;
  };

  void HandleIgmp(const packet::IgmpMessage& msg);
  void HandleQuery(const packet::IgmpMessage& msg);
  void HandleReportSeen(Ipv4Address group);

  /// Draws response deadlines for `gs`'s members (exact: every active
  /// non-pending member in join order; coalesced: one min-of-n draw).
  void DrawResponses(GroupState& gs, SimDuration max_delay);
  void DrawResponsesExact(GroupState& gs, SimDuration max_delay);
  void DrawResponsesCoalesced(GroupState& gs, SimDuration max_delay);

  void ArmResponseTimer(GroupState& gs);
  void OnResponseTimer(std::uint32_t group_idx);
  /// Coalesced mode: clears the group's pending response (a suppressing
  /// report has arrived at the station's members).
  void CancelOutstanding(GroupState& gs);
  /// Exact mode: clears outstanding deadlines the way per-host delivery
  /// would — skipping the frame's own sender (a host never hears its own
  /// report) and members who joined at or after `sent_at` (their
  /// attachment postdates the delivery snapshot).
  void CancelOutstandingExact(GroupState& gs, SimTime sent_at,
                              std::int64_t exempt_slot);
  /// A report for the group left this station at Now(): schedule the
  /// internal suppression arrival one subnet delay later. `sender_slot`
  /// (exact mode) identifies the member whose frame it was.
  void NoteSelfReport(GroupState& gs, std::int64_t sender_slot = -1);

  void SendReports(GroupState& gs);
  void Send(Ipv4Address dst, const packet::IgmpMessage& msg);

  GroupState& StateFor(Ipv4Address group);
  GroupState* FindState(Ipv4Address group);
  const GroupState* FindState(Ipv4Address group) const;

  netsim::Simulator* sim_;
  NodeId self_;
  Mode mode_;
  CoresFn cores_for_;
  IndexFn index_for_;
  Ipv4Address address_;
  SimDuration subnet_delay_;
  int version_ = 3;
  std::uint64_t total_members_ = 0;

  std::vector<MemberSlot> slots_;  // exact mode, join order
  /// Deque, not vector: pending Timer events capture their Timer's
  /// address, so a GroupState must never relocate once created.
  std::deque<GroupState> groups_;
  std::map<Ipv4Address, std::uint32_t> group_index_;
  Stats stats_;
};

}  // namespace cbt::igmp
