#include "igmp/membership_aggregate.h"

#include <algorithm>
#include <cmath>

#include "packet/encap.h"

namespace cbt::igmp {

using packet::IgmpMessage;
using packet::IgmpType;
using packet::IpProtocol;

namespace {

/// Min-heap comparator over (deadline, slot index): earliest deadline
/// first, join order on ties — the order N per-host timers would fire.
struct LaterEntry {
  bool operator()(const std::pair<SimTime, std::uint32_t>& a,
                  const std::pair<SimTime, std::uint32_t>& b) const {
    return a > b;
  }
};

}  // namespace

MembershipAggregate::MembershipAggregate(netsim::Simulator& sim, NodeId self,
                                         Mode mode, CoresFn cores_for,
                                         IndexFn index_for)
    : sim_(&sim),
      self_(self),
      mode_(mode),
      cores_for_(std::move(cores_for)),
      index_for_(std::move(index_for)),
      address_(sim.PrimaryAddress(self)),
      subnet_delay_(sim.subnet(sim.interface(self, 0).subnet).delay) {}

void MembershipAggregate::Join(Ipv4Address group) {
  std::vector<Ipv4Address> cores =
      cores_for_ != nullptr ? cores_for_(group) : std::vector<Ipv4Address>{};
  const std::size_t target_index =
      index_for_ != nullptr ? index_for_(group) : 0;
  JoinWithCores(group, std::move(cores), target_index);
}

void MembershipAggregate::JoinWithCores(Ipv4Address group,
                                        std::vector<Ipv4Address> cores,
                                        std::size_t target_index) {
  netsim::AffinityScope affinity(*sim_, self_);
  GroupState& gs = StateFor(group);
  if (gs.active_count == 0 || gs.cores.empty()) {
    gs.cores = std::move(cores);
    gs.target_index = target_index < gs.cores.size() ? target_index : 0;
  }
  ++gs.active_count;
  ++total_members_;
  ++stats_.joins;
  const std::uint32_t group_idx = group_index_.at(group);

  if (mode_ == Mode::kExactHostEquivalence) {
    const auto slot_idx = static_cast<std::uint32_t>(slots_.size());
    slots_.push_back({group_idx, true, kNoDeadline, sim_->Now()});
    gs.fifo.push_back(slot_idx);
    // Unsolicited reports exactly like HostAgent::JoinGroupWithCores:
    // once now, once after 1 s if this member is still joined.
    SendReports(gs);
    NoteSelfReport(gs, slot_idx);
    sim_->Schedule(kSecond, [this, slot_idx, group_idx] {
      if (!slots_[slot_idx].active) return;
      GroupState& g = groups_[group_idx];
      SendReports(g);
      NoteSelfReport(g, slot_idx);
    });
    return;
  }

  // Coalesced: the join transient still costs one report pair per
  // membership event (control-message accounting must track churn), but
  // no per-member slot exists.
  SendReports(gs);
  NoteSelfReport(gs);
  sim_->Schedule(kSecond, [this, group_idx] {
    GroupState& g = groups_[group_idx];
    if (g.active_count == 0) return;
    SendReports(g);
    NoteSelfReport(g);
  });
}

void MembershipAggregate::Leave(Ipv4Address group) {
  netsim::AffinityScope affinity(*sim_, self_);
  GroupState* gs = FindState(group);
  if (gs == nullptr || gs->active_count == 0) return;

  if (mode_ == Mode::kExactHostEquivalence) {
    MemberSlot& slot = slots_[gs->fifo[gs->fifo_head++]];
    slot.active = false;
    // A pending response dies with the member (its heap entry is skipped
    // lazily); the coalesced timer may fire a no-op and re-arm.
    slot.deadline = kNoDeadline;
  } else if (gs->active_count == 1) {
    gs->pending_deadline = kNoDeadline;
    gs->response_timer.Cancel();
  }

  --gs->active_count;
  --total_members_;
  ++stats_.leaves;
  if (gs->active_count == 0) gs->confirmed = false;

  // IGMPv1 hosts have no leave message; v2/v3 always announce the
  // departure (HostAgent::LeaveGroup does not check for co-members).
  if (version_ >= 2) {
    IgmpMessage leave;
    leave.type = IgmpType::kLeaveGroup;
    leave.group = group;
    Send(kAllRoutersGroup, leave);
    ++stats_.leaves_sent;
  }
}

std::uint64_t MembershipAggregate::MemberCount(Ipv4Address group) const {
  const GroupState* gs = FindState(group);
  return gs != nullptr ? gs->active_count : 0;
}

std::size_t MembershipAggregate::GroupsPresent() const {
  std::size_t n = 0;
  for (const GroupState& gs : groups_) n += gs.active_count > 0 ? 1 : 0;
  return n;
}

bool MembershipAggregate::JoinConfirmed(Ipv4Address group) const {
  const GroupState* gs = FindState(group);
  return gs != nullptr && gs->confirmed;
}

std::uint64_t MembershipAggregate::ReceivedCount(Ipv4Address group) const {
  const GroupState* gs = FindState(group);
  return gs != nullptr ? gs->received : 0;
}

void MembershipAggregate::OnDatagram(VifIndex /*vif*/,
                                     Ipv4Address /*link_src*/,
                                     Ipv4Address /*link_dst*/,
                                     std::span<const std::uint8_t> datagram) {
  const auto parsed = packet::ParseDatagram(datagram);
  if (!parsed) return;
  const packet::Ipv4Header& ip = parsed->ip;

  switch (ip.protocol) {
    case IpProtocol::kIgmp: {
      if (const auto msg = packet::ExtractIgmp(*parsed)) HandleIgmp(*msg);
      return;
    }
    case IpProtocol::kCbt:
    case IpProtocol::kUdp:
      return;  // router business, exactly as HostAgent discards it
    default: {
      if (!ip.dst.IsMulticast()) return;
      GroupState* gs = FindState(ip.dst);
      if (gs == nullptr || gs->active_count == 0) return;
      // One frame on the wire, one delivery per aggregated member.
      gs->received += gs->active_count;
      return;
    }
  }
}

void MembershipAggregate::HandleIgmp(const IgmpMessage& msg) {
  switch (msg.type) {
    case IgmpType::kMembershipQuery:
      ++stats_.queries_seen;
      HandleQuery(msg);
      return;
    case IgmpType::kMembershipReport:
      HandleReportSeen(msg.group);
      return;
    case IgmpType::kJoinConfirmation: {
      GroupState* gs = FindState(msg.group);
      if (gs != nullptr && gs->active_count > 0) gs->confirmed = true;
      return;
    }
    default:
      return;
  }
}

void MembershipAggregate::HandleQuery(const IgmpMessage& msg) {
  const SimDuration max_delay =
      msg.code != 0 ? msg.code * (kSecond / 10) : kSecond;

  if (!msg.group.IsUnspecified()) {
    GroupState* gs = FindState(msg.group);
    if (gs == nullptr || gs->active_count == 0) return;
    DrawResponses(*gs, max_delay);
    return;
  }

  // General query. In exact mode the draw order must match N per-host
  // agents answering in attachment (= join) order, each for its single
  // group — so iterate the global chronological slot list, not
  // group-by-group.
  if (mode_ == Mode::kExactHostEquivalence) {
    const SimTime now = sim_->Now();
    // The query was put on the wire one subnet delay ago; members who
    // joined at or after that instant would not have been attached yet
    // as individual hosts, so they must not answer (see MemberSlot).
    const SimTime sent_at = now - subnet_delay_;
    for (std::uint32_t i = 0; i < slots_.size(); ++i) {
      MemberSlot& slot = slots_[i];
      if (!slot.active) continue;
      if (slot.joined_at >= sent_at) continue;  // attached after the send
      if (slot.deadline != kNoDeadline) continue;  // pending: no redraw
      const auto delay = static_cast<SimDuration>(
          sim_->rng().NextBelow(static_cast<std::uint64_t>(max_delay) + 1));
      slot.deadline = now + delay;
      GroupState& gs = groups_[slot.group_idx];
      gs.outstanding.emplace_back(slot.deadline, i);
      std::push_heap(gs.outstanding.begin(), gs.outstanding.end(),
                     LaterEntry{});
    }
    for (GroupState& gs : groups_) ArmResponseTimer(gs);
    return;
  }

  for (GroupState& gs : groups_) {
    if (gs.active_count > 0) DrawResponsesCoalesced(gs, max_delay);
  }
}

void MembershipAggregate::DrawResponses(GroupState& gs,
                                        SimDuration max_delay) {
  if (mode_ == Mode::kExactHostEquivalence) {
    DrawResponsesExact(gs, max_delay);
  } else {
    DrawResponsesCoalesced(gs, max_delay);
  }
}

void MembershipAggregate::DrawResponsesExact(GroupState& gs,
                                             SimDuration max_delay) {
  const SimTime now = sim_->Now();
  const SimTime sent_at = now - subnet_delay_;  // see general-query path
  for (std::size_t f = gs.fifo_head; f < gs.fifo.size(); ++f) {
    const std::uint32_t slot_idx = gs.fifo[f];
    MemberSlot& slot = slots_[slot_idx];
    if (slot.joined_at >= sent_at) continue;  // attached after the send
    if (slot.deadline != kNoDeadline) continue;  // pending: no redraw
    const auto delay = static_cast<SimDuration>(
        sim_->rng().NextBelow(static_cast<std::uint64_t>(max_delay) + 1));
    slot.deadline = now + delay;
    gs.outstanding.emplace_back(slot.deadline, slot_idx);
    std::push_heap(gs.outstanding.begin(), gs.outstanding.end(), LaterEntry{});
  }
  ArmResponseTimer(gs);
}

void MembershipAggregate::DrawResponsesCoalesced(GroupState& gs,
                                                 SimDuration max_delay) {
  if (gs.pending_deadline != kNoDeadline) return;  // pending: no redraw
  // With report suppression only the first responder normally reaches
  // the wire, so sample the minimum of active_count per-member uniform
  // delays directly: P(min > d) = (1 - d/M)^n, inverted through one
  // uniform draw. One draw and one timer per group present — the
  // O(groups) contract of the aggregate model.
  const double u = sim_->rng().NextDouble();
  const double n = static_cast<double>(gs.active_count);
  const double frac = 1.0 - std::pow(1.0 - u, 1.0 / n);
  auto delay = static_cast<SimDuration>(
      frac * static_cast<double>(max_delay));
  delay = std::clamp<SimDuration>(delay, 0, max_delay);
  gs.pending_deadline = sim_->Now() + delay;
  const std::uint32_t group_idx = group_index_.at(gs.group);
  gs.response_timer.Schedule(delay,
                             [this, group_idx] { OnResponseTimer(group_idx); });
}

void MembershipAggregate::ArmResponseTimer(GroupState& gs) {
  // Drop entries whose member left or already resolved.
  while (!gs.outstanding.empty()) {
    const auto& [deadline, slot_idx] = gs.outstanding.front();
    const MemberSlot& slot = slots_[slot_idx];
    if (slot.active && slot.deadline == deadline) break;
    std::pop_heap(gs.outstanding.begin(), gs.outstanding.end(), LaterEntry{});
    gs.outstanding.pop_back();
  }
  if (gs.outstanding.empty()) {
    gs.response_timer.Cancel();
    return;
  }
  const std::uint32_t group_idx = group_index_.at(gs.group);
  gs.response_timer.Schedule(gs.outstanding.front().first - sim_->Now(),
                             [this, group_idx] { OnResponseTimer(group_idx); });
}

void MembershipAggregate::OnResponseTimer(std::uint32_t group_idx) {
  GroupState& gs = groups_[group_idx];

  if (mode_ == Mode::kCoalesced) {
    if (gs.pending_deadline == kNoDeadline || gs.active_count == 0) return;
    gs.pending_deadline = kNoDeadline;
    SendReports(gs);
    NoteSelfReport(gs);
    return;
  }

  const SimTime now = sim_->Now();
  std::vector<std::uint32_t> senders;
  while (!gs.outstanding.empty()) {
    const auto [deadline, slot_idx] = gs.outstanding.front();
    MemberSlot& slot = slots_[slot_idx];
    if (!slot.active || slot.deadline != deadline) {
      std::pop_heap(gs.outstanding.begin(), gs.outstanding.end(),
                    LaterEntry{});
      gs.outstanding.pop_back();
      continue;
    }
    if (deadline > now) break;
    std::pop_heap(gs.outstanding.begin(), gs.outstanding.end(), LaterEntry{});
    gs.outstanding.pop_back();
    slot.deadline = kNoDeadline;
    SendReports(gs);
    senders.push_back(slot_idx);
  }
  // Re-arm before noting the self reports: a member whose deadline equals
  // the suppression arrival fires first (its per-host timer predates the
  // suppressing frame), so the response event must outrank the cancel
  // event at equal times.
  ArmResponseTimer(gs);
  for (const std::uint32_t sender : senders) NoteSelfReport(gs, sender);
}

void MembershipAggregate::CancelOutstanding(GroupState& gs) {
  if (gs.pending_deadline != kNoDeadline) {
    gs.pending_deadline = kNoDeadline;
    gs.response_timer.Cancel();
    ++stats_.responses_suppressed;
  }
}

void MembershipAggregate::CancelOutstandingExact(GroupState& gs,
                                                 SimTime sent_at,
                                                 std::int64_t exempt_slot) {
  // Per-host fidelity demands two filters a wholesale clear would break:
  // the sender never hears its own frame (its pending response survives
  // and fires again later, exactly like a real host's), and members
  // attached after the frame hit the wire never receive it.
  bool changed = false;
  for (const auto& [deadline, slot_idx] : gs.outstanding) {
    MemberSlot& slot = slots_[slot_idx];
    if (!slot.active || slot.deadline != deadline) continue;
    if (static_cast<std::int64_t>(slot_idx) == exempt_slot) continue;
    if (slot.joined_at >= sent_at) continue;  // attached after the send
    slot.deadline = kNoDeadline;
    ++stats_.responses_suppressed;
    changed = true;
  }
  // Invalidated heap entries are pruned lazily; re-arm so the timer
  // tracks the surviving minimum (or cancels when none survive).
  if (changed) ArmResponseTimer(gs);
}

void MembershipAggregate::NoteSelfReport(GroupState& gs,
                                         std::int64_t sender_slot) {
  // The station never hears its own frame, so model the suppression its
  // report causes among co-members internally: when the frame would have
  // arrived (one subnet delay), every response still outstanding is
  // cancelled — responses due before then still race onto the wire,
  // exactly like real hosts.
  if (mode_ == Mode::kExactHostEquivalence) {
    // One cancel per frame, carrying its send time and sender: the
    // per-host model delivers each report to every co-member except the
    // sender, so a shared coalesced cancel event would be unfaithful.
    const SimTime sent_at = sim_->Now();
    const std::uint32_t group_idx = group_index_.at(gs.group);
    sim_->Schedule(subnet_delay_, [this, group_idx, sent_at, sender_slot] {
      CancelOutstandingExact(groups_[group_idx], sent_at, sender_slot);
    });
    return;
  }
  if (gs.cancel_pending) return;  // an earlier arrival already covers it
  gs.cancel_pending = true;
  const std::uint32_t group_idx = group_index_.at(gs.group);
  gs.cancel_timer.Schedule(subnet_delay_, [this, group_idx] {
    GroupState& g = groups_[group_idx];
    g.cancel_pending = false;
    CancelOutstanding(g);
  });
}

void MembershipAggregate::HandleReportSeen(Ipv4Address group) {
  // Another station answered for the group: suppression on arrival. The
  // frame left its sender one subnet delay ago.
  GroupState* gs = FindState(group);
  if (gs == nullptr) return;
  if (mode_ == Mode::kExactHostEquivalence) {
    CancelOutstandingExact(*gs, sim_->Now() - subnet_delay_, -1);
  } else {
    CancelOutstanding(*gs);
  }
}

void MembershipAggregate::SendReports(GroupState& gs) {
  // RP/Core-Report first so the D-DR holds the <core,group> mapping when
  // the membership report triggers the join (spec section 2.5); IGMPv3
  // only, exactly like HostAgent::SendReports.
  if (version_ == 3 && !gs.cores.empty()) {
    IgmpMessage core_report;
    core_report.type = IgmpType::kRpCoreReport;
    core_report.code = packet::kCoreReportCodeCbt;
    core_report.group = gs.group;
    core_report.target_core_index = static_cast<std::uint8_t>(gs.target_index);
    core_report.cores = gs.cores;
    Send(gs.group, core_report);
    ++stats_.core_reports_sent;
  }

  IgmpMessage report;
  report.type = IgmpType::kMembershipReport;
  report.group = gs.group;
  Send(gs.group, report);
  ++stats_.reports_sent;
}

void MembershipAggregate::Send(Ipv4Address dst, const IgmpMessage& msg) {
  sim_->SendDatagram(self_, 0, dst,
                     packet::BuildIgmpDatagram(address_, dst, msg));
}

MembershipAggregate::GroupState& MembershipAggregate::StateFor(
    Ipv4Address group) {
  const auto it = group_index_.find(group);
  if (it != group_index_.end()) return groups_[it->second];
  const auto idx = static_cast<std::uint32_t>(groups_.size());
  group_index_.emplace(group, idx);
  GroupState gs;
  gs.group = group;
  gs.response_timer.BindTo(*sim_);
  gs.cancel_timer.BindTo(*sim_);
  groups_.push_back(std::move(gs));
  return groups_.back();
}

MembershipAggregate::GroupState* MembershipAggregate::FindState(
    Ipv4Address group) {
  const auto it = group_index_.find(group);
  return it != group_index_.end() ? &groups_[it->second] : nullptr;
}

const MembershipAggregate::GroupState* MembershipAggregate::FindState(
    Ipv4Address group) const {
  const auto it = group_index_.find(group);
  return it != group_index_.end() ? &groups_[it->second] : nullptr;
}

}  // namespace cbt::igmp
