// Deterministic parallel sweep: fan independent replicas over a Pool,
// reduce in replica order.
//
// Contract (see docs/PROTOCOL.md, "Parallel execution & determinism"):
//   * each replica runs under its own RunContext (logging, stdout
//     buffer, trace ring, metrics registry, seed) installed thread-
//     locally for the duration of the job;
//   * replicas share nothing mutable — anything they build (Simulator,
//     domains, registries) lives inside the job;
//   * the reducer runs on the calling thread, strictly in index order,
//     after all replicas finish: replica i's buffered stdout is flushed
//     to std::cout, its buffered log lines to std::cerr, and then
//     reduce(ctx, result) is invoked. Wall-clock never influences
//     ordering, so `--jobs N` output is byte-identical to `--jobs 1`.
//
// Timing: RunSweep measures per-replica and whole-sweep wall-clock and
// returns them (bench::ExecReport turns that into BENCH_exec.json).
#pragma once

#include <chrono>
#include <cstdint>
#include <iostream>
#include <memory>
#include <optional>
#include <type_traits>
#include <utility>
#include <vector>

#include "exec/pool.h"
#include "exec/run_context.h"

namespace cbt::exec {

struct SweepOptions {
  /// Replica i's seed: seeds[i] when provided, else base_seed + i.
  std::uint64_t base_seed = 1;
  std::vector<std::uint64_t> seeds;

  /// Give each replica a private trace ring (picked up by Simulators the
  /// replica builds). The reducer leaves the ring in ctx.trace for the
  /// caller to collect (bench::TraceSession adopts them).
  bool trace = false;
  obs::TraceLevel trace_level = obs::TraceLevel::kVerbose;
  std::size_t trace_capacity = std::size_t{1} << 18;
};

struct SweepTiming {
  int jobs = 1;
  double wall_seconds = 0;
  std::vector<double> replica_seconds;
};

/// Runs `job(ctx)` for `count` replicas on `pool` and feeds the results
/// to `reduce(ctx, result)` in replica order. Job must be callable from
/// worker threads and touch only its RunContext and job-local state.
template <typename Job, typename Reduce>
SweepTiming RunSweep(Pool& pool, std::size_t count,
                     const SweepOptions& options, Job&& job, Reduce&& reduce) {
  using Result = std::invoke_result_t<Job&, RunContext&>;
  using Clock = std::chrono::steady_clock;

  std::vector<std::unique_ptr<RunContext>> contexts;
  contexts.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    auto ctx = std::make_unique<RunContext>();
    ctx->index = i;
    ctx->seed = i < options.seeds.size()
                    ? options.seeds[i]
                    : options.base_seed + static_cast<std::uint64_t>(i);
    if (options.trace) {
      ctx->trace = std::make_unique<obs::TraceBuffer>(options.trace_capacity,
                                                      options.trace_level);
    }
    contexts.push_back(std::move(ctx));
  }

  std::vector<std::optional<Result>> results(count);
  SweepTiming timing;
  timing.jobs = pool.thread_count();
  timing.replica_seconds.assign(count, 0.0);

  const auto sweep_start = Clock::now();
  pool.Run(count, [&](std::size_t i) {
    RunContext& ctx = *contexts[i];
    ScopedRunContext scope(ctx);
    const auto start = Clock::now();
    results[i].emplace(job(ctx));
    timing.replica_seconds[i] =
        std::chrono::duration<double>(Clock::now() - start).count();
  });
  timing.wall_seconds =
      std::chrono::duration<double>(Clock::now() - sweep_start).count();

  for (std::size_t i = 0; i < count; ++i) {
    RunContext& ctx = *contexts[i];
    std::cout << ctx.out.str();
    std::cerr << ctx.log_out.str();
    reduce(ctx, std::move(*results[i]));
  }
  return timing;
}

}  // namespace cbt::exec
