// Space-parallel PDES runtime: shards one simulation across cores.
//
// The runtime implements netsim::ShardBackend. Install() partitions the
// topology (see partition.h) into regions, each owning a RegionQueue, a
// PacketArena, a trace side-log, and per-cut-subnet counter deltas, then
// routes the Simulator through itself. Synchronisation is conservative
// time-window: the coordinator repeatedly computes
//
//   B = min next event time over all region queues
//   E = min(bound, B + lookahead - 1)
//
// and has every region execute its events with time in [B, E] in
// parallel. A frame sent at t >= B crosses a region boundary no earlier
// than t + lookahead > E, so no region can receive a message for the
// window it is executing. Cross-region deliveries travel as byte-copy
// messages on per-region mutex inboxes, drained into the destination
// queue at the barrier; intra-region deliveries stay refcounted
// PacketRefs.
//
// Determinism: every event carries a partition-invariant key
// (when, scheduling context, per-context sequence) — see region_queue.h.
// Each node's execution sequence, RNG draws (per-node streams derived
// from the sim seed), counters, and trace emissions are therefore
// identical for ANY region count, including --shards 1, whose single
// region runs through this exact engine on the calling thread. Region
// trace side-logs merge into the simulation's base ring in key order at
// every barrier, and cut-subnet counter deltas flush before coordinator
// code can observe them, so all outputs are byte-identical across shard
// counts. (PDES mode is NOT byte-identical to the classic serial engine:
// the key tie-rule and per-node RNG streams intentionally differ; the
// serial path itself is untouched.)
//
// Threading: with worker threads enabled the coordinator runs inside
// exec::Pool::RunWith — one phase (= one RunUntil call) wakes the
// workers once; within the phase they spin on a window-generation
// counter, execute their regions (region r belongs to worker
// r % workers), and report a done count. Guards on region queues/arenas
// are released at the barriers for the coordinator<->worker handoff;
// memory is published by the barrier atomics.
#pragma once

#include <atomic>
#include <cstdint>
#include <limits>
#include <memory>
#include <mutex>
#include <vector>

#include "common/random.h"
#include "common/types.h"
#include "exec/pdes/partition.h"
#include "exec/pdes/region_queue.h"
#include "exec/pool.h"
#include "netsim/packet_arena.h"
#include "netsim/simulator.h"
#include "obs/trace.h"

namespace cbt::exec::pdes {

class Runtime final : public netsim::ShardBackend {
 public:
  /// `shards` = requested region count (clamped to [1, 64]). `threads`:
  /// 0 derives min(regions, hardware cores); 1 forces the single-thread
  /// engine (same windows, same bytes); N forces N pool workers (tests
  /// exercise the threaded barriers on any machine this way).
  explicit Runtime(netsim::Simulator& sim, int shards, int threads = 0);
  ~Runtime() override;

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  /// Partitions the topology and routes `sim` through this runtime. Call
  /// after topology construction, before anything schedules events.
  void Install();

  int region_count() const { return part_.regions; }
  int worker_count() const { return worker_count_; }
  SimDuration lookahead() const { return part_.lookahead; }
  const Partition& partition() const { return part_; }
  /// Region of `node`, assigning post-partition nodes on first use.
  int RegionOf(NodeId node) { return RegionOfNode(node.value()); }

  // --- netsim::ShardBackend ----------------------------------------------
  SimTime Now() const override;
  Rng& ContextRng() override;
  obs::TraceBuffer* ContextTrace() override;
  netsim::PacketArena& ContextArena() override;
  netsim::SubnetCounters& CountersFor(netsim::SubnetRecord& subnet) override;
  netsim::EventId Schedule(SimTime when, netsim::EventFn fn) override;
  bool Cancel(netsim::EventId id) override;
  void ScheduleDelivery(SimTime when, NodeId receiver, VifIndex vif,
                        Ipv4Address link_src, Ipv4Address link_dst,
                        const netsim::PacketRef& payload) override;
  void RunUntil(SimTime until) override;
  void RunUntilIdle(std::size_t max_events) override;
  std::int32_t ExchangeAffinity(std::int32_t node) override;

 private:
  /// A delivery that crossed a region boundary: the payload is copied to
  /// bytes (packet arenas are region-local) and the partition-invariant
  /// key travels with it, so the destination queue orders it exactly
  /// where any other region count would.
  struct BoundaryMessage {
    EventKey key;
    NodeId receiver;
    VifIndex vif = kInvalidVif;
    Ipv4Address link_src;
    Ipv4Address link_dst;
    std::vector<std::uint8_t> bytes;
  };

  /// One trace emission attributed to the event (key) that produced it;
  /// side-logs merge by key at barriers.
  struct TraceEntry {
    EventKey key;
    obs::TraceEvent event;
  };

  struct Region {
    // Arena precedes the queue: pending closures hold PacketRefs.
    netsim::PacketArena arena;
    RegionQueue queue;
    SimTime clock = 0;  // local time while executing a window
    std::uint64_t executed = 0;

    std::mutex inbox_mu;
    std::vector<BoundaryMessage> inbox;

    /// Scratch ring events are drained into per event, then the
    /// key-attributed side log merged at barriers. Null when tracing off.
    std::unique_ptr<obs::TraceBuffer> ring;
    std::vector<TraceEntry> trace_log;
    std::size_t trace_cursor = 0;  // merge scratch

    /// Cut-subnet counter deltas (indexed by subnet id) + dirty list.
    std::vector<netsim::SubnetCounters> cut_delta;
    std::vector<bool> cut_dirty;
    std::vector<std::int32_t> dirty_subnets;
  };

  /// Per-thread execution context; `runtime` scopes the slot so stale
  /// values from another runtime on the same thread are ignored.
  struct ThreadContext {
    Runtime* runtime = nullptr;
    int region = -1;  // executing region, -1 = coordinator
    std::int32_t affinity = -1;
  };
  static thread_local ThreadContext tls_;

  std::int32_t CurrentAffinity() const {
    return tls_.runtime == this ? tls_.affinity : -1;
  }
  int CurrentRegion() const {
    return tls_.runtime == this ? tls_.region : -1;
  }
  /// Region whose state the current context owns: the affinity node's
  /// region, else the executing region, else -1 (coordinator).
  int EffectiveRegion() const;

  int RegionOfNode(std::int32_t node);
  /// Grows the per-node tables (region, seq, rng) to sim_.node_count();
  /// coordinator-only (new nodes appear only between events).
  void EnsureNodeTables();
  std::uint64_t NextSeq(std::int32_t src);

  // Window machinery; all coordinator-side unless noted.
  void CoordinatorBody(SimTime until);
  /// Runs all region events with time <= bound (windowed).
  void AdvanceRegions(SimTime bound);
  void RunWindow(SimTime end);
  /// Executes one region's events with time <= end. Worker or
  /// coordinator thread, per the phase mode.
  void ExecuteRegionWindow(int region_index, SimTime end);
  void RunCoordinatorEventsAt(SimTime when);
  void DrainInboxes();
  void MergeRegionTraces();
  void FlushCutDeltas();
  void ReleaseRegionGuards();
  void WorkerPhase(std::size_t worker);
  /// Min next region event time, or kNoEvent.
  SimTime MinRegionTime();
  bool InboxesEmpty();
  std::uint64_t TotalExecuted() const;

  static constexpr SimTime kNoEvent =
      std::numeric_limits<SimTime>::max();
  /// Windows are also capped so trace side-logs and barrier batches stay
  /// small even when the lookahead is unbounded (single region). The cap
  /// is a constant, so window boundaries — and with them every output —
  /// remain partition-invariant... (width actually varies with lookahead
  /// across shard counts; only *outputs* must match, and they are
  /// window-boundary independent: merges append in key order.)
  static constexpr SimDuration kMaxWindowWidth = 64 * kMillisecond;
  static constexpr int kCoordRegionCode = 0x7F;  // EventId region field

  netsim::EventId EncodeId(int region, RegionQueue::Handle h) const;

  netsim::Simulator& sim_;
  const int requested_;
  const int threads_;
  bool installed_ = false;

  Partition part_;
  std::vector<std::unique_ptr<Region>> regions_;
  RegionQueue coord_queue_;
  SimTime now_ = 0;
  std::uint64_t coord_seq_ = 0;
  std::uint64_t coord_executed_ = 0;
  obs::TraceBuffer* base_trace_ = nullptr;

  std::vector<std::uint64_t> node_seq_;
  std::vector<std::unique_ptr<Rng>> node_rng_;
  std::uint64_t seed_base_ = 1;

  // Threaded-phase coordination (see file comment).
  std::unique_ptr<Pool> pool_;
  int worker_count_ = 1;
  bool threaded_phase_ = false;
  std::uint64_t phase_base_gen_ = 0;
  std::atomic<std::uint64_t> window_gen_{0};
  std::atomic<int> window_done_{0};
  std::atomic<bool> phase_over_{false};
  SimTime window_end_ = 0;  // published by window_gen_
};

}  // namespace cbt::exec::pdes
