// Topology partitioner for space-parallel PDES (see docs/PROTOCOL.md,
// "Space-parallel PDES & lookahead contract").
//
// A partition splits the simulator's nodes into `regions` disjoint
// regions, each of which runs as one conservatively-synchronised logical
// process. Correctness of the conservative synchronisation rests on one
// number: the *lookahead* L = the minimum link delay over every *cut*
// subnet (a subnet whose attachments span more than one region). Any
// frame a region emits at time t reaches another region no earlier than
// t + L, so all regions may execute a window of width L in parallel
// without ever receiving a message "from the past".
//
// To guarantee L > 0 the partitioner first contracts every zero-delay
// subnet: nodes joined by a 0-delay segment are fused into one supernode
// (union-find) and always land in the same region. Regions are then
// grown greedily by BFS from the lowest-id unassigned supernode to a
// target of ceil(nodes / regions) nodes each, which keeps regions
// connected (modulo disconnected input graphs, whose leftover components
// are folded into the open region deterministically).
//
// Everything here is a pure function of the topology and the requested
// region count — no RNG, no iteration-order dependence — so a partition
// is reproducible across runs and across region counts.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "common/types.h"
#include "netsim/simulator.h"

namespace cbt::exec::pdes {

struct Partition {
  /// Sentinel lookahead when no subnet is cut (single region): regions
  /// never exchange messages, so any window width is safe. Kept well
  /// away from SimTime overflow when added to a clock.
  static constexpr SimDuration kInfiniteLookahead =
      std::numeric_limits<SimTime>::max() / 4;

  /// Effective region count: min(requested, supernode count), then
  /// compacted so every region is non-empty. Always >= 1.
  int regions = 1;
  /// Node id -> region. Covers every node present at partition time;
  /// later nodes are assigned by ExtendPartition.
  std::vector<int> region_of_node;
  /// Subnet id -> region of its first attachment (0 for an unattached
  /// subnet). New nodes attached to the subnet inherit this region.
  std::vector<int> owner_of_subnet;
  /// Subnet id -> true when its attachments span more than one region.
  /// Cut-subnet counters are accumulated in per-region delta buffers.
  std::vector<bool> subnet_cut;
  /// min delay over cut subnets; kInfiniteLookahead when nothing is cut.
  SimDuration lookahead = kInfiniteLookahead;
};

/// Partitions the simulator's current topology into up to
/// `requested_regions` regions. `requested_regions` < 1 is clamped to 1.
Partition MakePartition(const netsim::Simulator& sim, int requested_regions);

/// Assigns any node not yet covered by `part` (e.g. a host attached
/// after partitioning) to the owner region of its first interface's
/// subnet — the LAN it joined stays whole, so the cut set (and with it
/// the lookahead) never grows. A node with no interfaces yet lands in
/// region 0. Extends region_of_node up to sim.node_count().
void ExtendPartition(Partition& part, const netsim::Simulator& sim);

}  // namespace cbt::exec::pdes
